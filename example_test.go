package windowctl_test

import (
	"fmt"

	"windowctl"
)

// The basic flow: describe an operating point, get the analytic loss of
// equation 4.7 and corroborate it by simulation.
func Example() {
	sys := windowctl.System{
		M:        25,  // message length in slots
		RhoPrime: 0.5, // offered channel load λ'·M·τ
		K:        50,  // deadline: two message times
		Seed:     1,
	}
	analytic, err := sys.AnalyticLoss()
	if err != nil {
		panic(err)
	}
	report, err := sys.Simulate(windowctl.SimOptions{EndTime: 2e5})
	if err != nil {
		panic(err)
	}
	fmt.Printf("analytic %.3f, simulated %.3f\n", analytic.Loss, report.Loss())
	// Output: analytic 0.033, simulated 0.037
}

// Comparing disciplines at the same operating point: the controlled
// protocol dominates the uncontrolled baselines.
func Example_disciplines() {
	for _, d := range []windowctl.Discipline{windowctl.Controlled, windowctl.FCFS, windowctl.LCFS} {
		sys := windowctl.System{M: 25, RhoPrime: 0.75, K: 50, Discipline: d}
		res, err := sys.AnalyticLoss()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-10s %.3f\n", d, res.Loss)
	}
	// Output:
	// controlled 0.101
	// fcfs       0.338
	// lcfs       0.163
}

// Regenerating one panel of the paper's figure 7 (analytic curves only;
// pass a non-disabled Figure7Options to add simulation points).
func Example_figure7() {
	panel, err := windowctl.Figure7Panel(
		windowctl.PanelSpec{RhoPrime: 0.25, M: 25, KOverM: []float64{1, 2}},
		windowctl.Figure7Options{Disable: true},
	)
	if err != nil {
		panic(err)
	}
	for _, pt := range panel.Points {
		fmt.Printf("K/M=%.0f: controlled %.4f, fcfs %.4f\n", pt.KOverM, pt.Controlled, pt.FCFS)
	}
	// Output:
	// K/M=1: controlled 0.0304, fcfs 0.0494
	// K/M=2: controlled 0.0037, fcfs 0.0058
}
