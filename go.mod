module windowctl

go 1.22
