// Distributed sensor network — the paper's second motivating application
// ([DSN 82]): geographically spread sensors share one broadcast channel;
// a detection report is useless once stale, so the network must maximize
// the fraction of reports delivered within the staleness bound.
//
// The example runs the full *multi-station* simulator (every sensor runs
// its own copy of the protocol state machine, kept consistent only by
// common channel feedback) and compares the controlled protocol against
// the uncontrolled FCFS and LCFS disciplines at the same load.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"windowctl"
)

func main() {
	const (
		sensors  = 24
		m        = 50.0 // report length in slots
		rhoPrime = 0.6  // offered channel load
		kOverM   = 1.5  // staleness bound: 1.5 report times
	)
	fmt.Printf("sensor fleet: %d stations, load %.2f, report %g slots, staleness bound %.1f report times\n\n",
		sensors, rhoPrime, m, kOverM)

	fmt.Printf("%-12s %10s %10s %12s %12s\n", "discipline", "loss", "sender", "late/stranded", "utilization")
	for _, d := range []windowctl.Discipline{windowctl.Controlled, windowctl.FCFS, windowctl.LCFS} {
		sys := windowctl.System{
			M: m, RhoPrime: rhoPrime, K: kOverM * m,
			Discipline: d, Seed: 7,
		}
		rep, err := sys.SimulateDistributed(sensors, windowctl.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.4f %10d %12d %12.3f\n",
			d, rep.Loss(), rep.LostSender, rep.LostLate+rep.LostPending, rep.Utilization)
	}

	fmt.Println("\nEvery run verified that all 24 stations stayed in lockstep on every slot.")
	fmt.Println("Note how the controlled protocol converts receiver-side (late) losses into")
	fmt.Println("cheaper sender-side discards: the channel only carries reports that will")
	fmt.Println("still be fresh on arrival (policy element 4).")
}
