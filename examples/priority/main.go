// Priority via per-station window sizes — the paper's §5 closing
// suggestion ("one form of priority can be achieved by permitting
// stations to choose different initial window sizes"), left there as
// future work.  This example explores it: one station stretches its
// membership window (answering probes for a wider slice of the past) and
// one shrinks it, while the rest stay truthful; per-station loss shows
// the resulting service differentiation.
//
// It also demonstrates the hazard that makes the idea "potentially
// difficult" (the paper's words): stations with inconsistent views can
// manufacture phantom collisions, so the splitting procedure needs a
// give-up bound to stay live (see windowctl.PriorityStretch).
//
//	go run ./examples/priority
package main

import (
	"fmt"
	"log"

	"windowctl"
)

func main() {
	const (
		m        = 25.0
		rhoPrime = 0.75
		kOverM   = 2.0
	)
	sys := windowctl.System{
		M: m, RhoPrime: rhoPrime, K: kOverM * m, Seed: 11,
	}

	// Station 0: high priority (1.5x window); station 1: low priority
	// (0.6x); stations 2..5: normal.  The floor of one slot keeps
	// collision resolution live under inconsistent views.
	transforms := []windowctl.Transform{
		windowctl.PriorityStretch(1.5, 1),
		windowctl.PriorityStretch(0.6, 1),
		nil, nil, nil, nil,
	}
	rep, err := sys.SimulateHeterogeneous(transforms, windowctl.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}

	labels := []string{"high (1.5x)", "low (0.6x)", "normal", "normal", "normal", "normal"}
	fmt.Printf("load %.2f, deadline %.0f slots, %d stations\n\n", rhoPrime, sys.K, len(transforms))
	fmt.Printf("%-12s %10s %10s %10s\n", "station", "offered", "loss", "accepted")
	for i, sr := range rep.Stations {
		fmt.Printf("%-12s %10d %10.4f %10d\n", labels[i], sr.Offered, sr.Loss(), sr.AcceptedInTime)
	}
	fmt.Printf("\nnetwork: loss %.4f, utilization %.3f\n", rep.Loss(), rep.Utilization)

	// Compare with the homogeneous network at the same load.
	base, err := sys.SimulateDistributed(len(transforms), windowctl.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("homogeneous reference: loss %.4f, utilization %.3f\n", base.Loss(), base.Utilization)
	fmt.Println("\nPriority differentiation is real but not free: phantom collisions and")
	fmt.Println("stranded messages (regions cleared while a lying station held the message)")
	fmt.Println("tax the whole network — exactly why the paper flags this as a hard problem.")
}
