// Asynchronous operation — the paper's §5 notes that the protocol assumes
// synchronized stations, that distributed synchronization is hard, and
// cites Molle's work on asynchronous variants.  This example quantifies
// the cost of imperfect synchronization: one station's clock is offset by
// a growing skew while the rest stay true, and the network's loss is
// measured with and without a Molle-style guard band (the skewed station
// shrinks its window view symmetrically to avoid answering probes it
// merely *thinks* cover its messages).
//
//	go run ./examples/asynchronous
package main

import (
	"fmt"
	"log"

	"windowctl"
)

func main() {
	sys := windowctl.System{
		M: 25, RhoPrime: 0.6, K: 50, Seed: 17,
	}
	fmt.Printf("load %.2f, deadline %.0f slots, 6 stations, station 0 skewed\n\n", sys.RhoPrime, sys.K)
	fmt.Printf("%8s %16s %16s %18s\n", "skew", "skewed-stn loss", "others' loss", "with guard=skew/2")

	for _, skew := range []float64{0, 0.5, 1, 2, 4} {
		noGuard, err := runWithSkew(sys, skew, 0)
		if err != nil {
			log.Fatal(err)
		}
		guarded, err := runWithSkew(sys, skew, skew/2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.1f %16.4f %16.4f %18.4f\n",
			skew, stationLoss(noGuard, 0), othersLoss(noGuard), stationLoss(guarded, 0))
	}

	fmt.Println("\nEven sub-slot skew hurts: the skewed station answers probes in the wrong")
	fmt.Println("slot (phantom collisions) and misses probes that cover its own messages,")
	fmt.Println("stranding them in regions everyone else considers examined.  A guard band")
	fmt.Println("trades those errors against eligibility and only partially compensates —")
	fmt.Println("the paper is right to call asynchronous operation a problem of its own.")
}

func runWithSkew(sys windowctl.System, skew, guard float64) (windowctl.HeterogeneousReport, error) {
	transforms := make([]windowctl.Transform, 6)
	if skew > 0 || guard > 0 {
		transforms[0] = windowctl.ClockSkew(skew, guard)
	}
	return sys.SimulateHeterogeneous(transforms, windowctl.SimOptions{EndTime: 4e5, Warmup: 4e4})
}

func stationLoss(rep windowctl.HeterogeneousReport, i int) float64 {
	return rep.Stations[i].Loss()
}

func othersLoss(rep windowctl.HeterogeneousReport) float64 {
	var lost, decided int64
	for _, sr := range rep.Stations[1:] {
		lost += sr.LostSender + sr.LostLate + sr.LostPending
		decided += sr.Offered
	}
	if decided == 0 {
		return 0
	}
	return float64(lost) / float64(decided)
}
