// Packetized voice over a shared bus — the motivating application of the
// paper's introduction.  A voice packet is useful only if delivered
// within a fixed playout deadline, and a small loss fraction is
// acceptable; this example sizes a 1983-style broadcast network: how many
// speakers can share the channel before loss exceeds the budget?
//
// Speakers are on/off (talkspurt) sources; their superposition across
// many stations is well approximated by the Poisson traffic the analysis
// assumes.  The example searches for the largest speaker population whose
// analytic loss (eq. 4.7) stays within budget, then corroborates the
// operating point by simulation.
//
//	go run ./examples/packetvoice
package main

import (
	"fmt"
	"log"

	"windowctl"
)

func main() {
	// Physical parameters of a km-scale 10 Mb/s bus (classic Ethernet
	// numbers, contemporary with the paper).
	const (
		tau        = 10e-6  // propagation delay: 10 µs end to end
		bitsPerPkt = 2000.0 // 250-byte voice packet
		rate       = 10e6   // 10 Mb/s
		deadline   = 0.050  // 50 ms playout deadline
		lossBudget = 0.01   // 1% packets may be late

		// Speech model: 64 kb/s PCM during talkspurts, so 32 pkt/s while
		// talking; talkspurts average 1 s, silences 1.35 s.
		pktRateOn  = 32.0
		meanOn     = 1.0
		meanOff    = 1.35
		activity   = meanOn / (meanOn + meanOff)
		pktPerSpkr = pktRateOn * activity // long-run packets/s per speaker
	)
	txTime := bitsPerPkt / rate // 200 µs per packet
	mSlots := txTime / tau      // M = 20 slots
	kOverTau := deadline / tau  // deadline in slots

	fmt.Printf("bus: tau=%.0fµs, packet=%.0fµs (M=%.0f slots), deadline=%.0fms (K=%.0f slots)\n",
		tau*1e6, txTime*1e6, mSlots, deadline*1e3, kOverTau)
	fmt.Printf("speaker: %.1f pkt/s average (%.0f pkt/s during talkspurts, %.0f%% activity)\n\n",
		pktPerSpkr, pktRateOn, activity*100)

	system := func(speakers int) windowctl.System {
		lambda := float64(speakers) * pktPerSpkr // packets per second
		return windowctl.System{
			Tau:      tau,
			M:        mSlots,
			RhoPrime: lambda * mSlots * tau, // λ'·M·τ
			K:        deadline,
			Seed:     42,
		}
	}

	// Find the largest speaker count within the loss budget.
	best := 0
	fmt.Printf("%10s %10s %12s\n", "speakers", "load", "loss (eq4.7)")
	for n := 50; ; n += 50 {
		sys := system(n)
		res, err := sys.AnalyticLoss()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10d %10.3f %12.5f\n", n, sys.RhoPrime, res.Loss)
		if res.Loss > lossBudget {
			break
		}
		best = n
	}
	if best == 0 {
		log.Fatal("no feasible speaker population")
	}

	// Refine within the last bracket.
	for n := best + 10; ; n += 10 {
		res, err := system(n).AnalyticLoss()
		if err != nil {
			log.Fatal(err)
		}
		if res.Loss > lossBudget {
			break
		}
		best = n
	}

	fmt.Printf("\nanalytic capacity: %d speakers (offered load %.3f) within the %.0f%% budget\n",
		best, system(best).RhoPrime, lossBudget*100)

	// The analytic model sits at the knee of the loss curve there, where
	// its approximations are most optimistic (service-time correlations
	// are ignored, §4.1) — so validate by simulation and back off until
	// the *measured* loss fits the budget.
	fmt.Println("validating by simulation:")
	for {
		sys := system(best)
		rep, err := sys.Simulate(windowctl.SimOptions{})
		if err != nil {
			log.Fatal(err)
		}
		lo, hi := rep.LossCI(0.95)
		fmt.Printf("  %4d speakers: measured loss %.5f (95%% CI [%.5f, %.5f]), utilization %.3f\n",
			best, rep.Loss(), lo, hi, rep.Utilization)
		if hi <= lossBudget {
			fmt.Printf("\nvalidated capacity: %d speakers; packet wait mean %.2f ms, p95 %.2f ms, p99 %.2f ms (deadline %.0f ms)\n",
				best, rep.TrueWait.Mean()*1e3,
				rep.WaitQuantile(0.95)*1e3, rep.WaitQuantile(0.99)*1e3, deadline*1e3)
			return
		}
		best -= 20
		if best <= 0 {
			log.Fatal("no feasible speaker population under simulation")
		}
	}
}
