// Quickstart: evaluate the controlled window protocol at one operating
// point — analytically (the paper's equation 4.7) and by simulation — and
// compare it against the uncontrolled FCFS baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"windowctl"
)

func main() {
	// The paper's middle panel: offered load ρ' = 0.5, messages of
	// M = 25 slots, deadline K = 2 message times.
	sys := windowctl.System{
		M:        25,
		RhoPrime: 0.5,
		K:        2 * 25,
		Seed:     1,
	}

	analytic, err := sys.AnalyticLoss()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controlled protocol, analytic (eq. 4.7):\n")
	fmt.Printf("  offered load with windowing overhead  rho = %.4f\n", analytic.Rho)
	fmt.Printf("  window content (element-2 heuristic)  G   = %.4f\n", analytic.WindowContent)
	fmt.Printf("  predicted loss                        p   = %.4f\n\n", analytic.Loss)

	report, err := sys.Simulate(windowctl.SimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := report.LossCI(0.95)
	fmt.Printf("controlled protocol, simulated (%d messages):\n", report.Offered)
	fmt.Printf("  measured loss            %.4f  (95%% CI [%.4f, %.4f])\n", report.Loss(), lo, hi)
	fmt.Printf("  mean true waiting time   %.2f slots\n", report.TrueWait.Mean())
	fmt.Printf("  scheduling overhead      %.2f slots/message\n", report.SchedulingSlots.Mean())
	fmt.Printf("  channel utilization      %.3f\n\n", report.Utilization)

	baseline := sys
	baseline.Discipline = windowctl.FCFS
	fc, err := baseline.AnalyticLoss()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uncontrolled FCFS baseline loses %.4f — the controlled policy cuts loss %.1fx\n",
		fc.Loss, fc.Loss/analytic.Loss)
}
