package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFloats(t *testing.T) {
	got, err := parseFloats(" 0.5, 1,2.25 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 1, 2.25}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "0", "1,,2", "NaN", "1,NaN", "Inf", "1,2,1", "0.5,0.50"} {
		if _, err := parseFloats(bad); err == nil {
			t.Errorf("parseFloats(%q) accepted", bad)
		}
	}
	// The zero-admitting variant (error-rate axes) still rejects
	// negatives, non-finites and duplicates.
	if _, err := parseAxis("0,0.01"); err != nil {
		t.Errorf("parseAxis rejected a zero: %v", err)
	}
	for _, bad := range []string{"-0.1", "NaN", "0,0"} {
		if _, err := parseAxis(bad); err == nil {
			t.Errorf("parseAxis(%q) accepted", bad)
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-seed", "0"},
		{"-loads", "0.5,NaN"},
		{"-loads", "0.5,0.5"},
		{"-km", "1,1"},
		{"-km", "-2"},
		{"-m", "0"},
		{"-messages", "0", "-sim"},
		{"-disciplines", "controlled,fifo"},
		{"-format", "tall"},
		{"-replications", "3"},             // requires -sim
		{"-metrics"},                       // requires -sim
		{"-cache-stats"},                   // requires -cache
		{"-error-rates", "0,0.01"},         // requires -sim
		{"-feedback-error", "0.01"},        // requires -sim
		{"-sim", "-feedback-error", "1.5"}, // probability out of range
		{"-sim", "-error-rates", "0,2"},    // scaled rate out of range
		{"-points", "3"},                   // default grid far exceeds 3 points
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if err := run(args, &out, &errBuf); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
		if out.Len() != 0 {
			t.Errorf("run(%v) emitted CSV despite failing", args)
		}
	}
}

// -h asks for the usage text; main must exit 0 for it, so run has to
// surface it as flag.ErrHelp rather than a generic error (the regression:
// help used to exit 2 like a validation failure).
func TestRunHelpIsNotAnError(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-h"}, &out, &errBuf)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("run(-h) = %v, want flag.ErrHelp", err)
	}
	if !bytes.Contains(errBuf.Bytes(), []byte("Usage")) {
		t.Errorf("usage text not printed:\n%s", errBuf.String())
	}
}

// goldenArgs is the tiny grid pinned by testdata/golden_small.csv.
var goldenArgs = []string{
	"-loads", "0.25,0.5", "-km", "1,2", "-m", "25",
	"-sim", "-messages", "2000", "-seed", "1983",
}

func runGolden(t *testing.T, extra ...string) (string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	if err := run(append(append([]string{}, goldenArgs...), extra...), &out, &errBuf); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", extra, err, errBuf.String())
	}
	return out.String(), errBuf.String()
}

// TestGoldenCSV pins the emitted bytes of a small simulated grid — and
// the tentpole determinism contract: serial, sharded and cache-warm runs
// all emit exactly the golden file.
func TestGoldenCSV(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_small.csv"))
	if err != nil {
		t.Fatal(err)
	}

	serial, _ := runGolden(t, "-workers", "1")
	if serial != string(golden) {
		t.Fatalf("serial run diverged from golden:\n got:\n%s\nwant:\n%s", serial, golden)
	}

	sharded, _ := runGolden(t, "-workers", "4")
	if sharded != serial {
		t.Fatal("sharded run diverged from serial")
	}

	dir := t.TempDir()
	cold, _ := runGolden(t, "-workers", "3", "-cache", dir, "-cache-stats")
	if cold != serial {
		t.Fatal("cold-cache run diverged from serial")
	}
	warm, warmErr := runGolden(t, "-workers", "2", "-cache", dir, "-cache-stats")
	if warm != serial {
		t.Fatal("warm-cache run diverged from serial")
	}
	if !strings.Contains(warmErr, "100.0% hits") {
		t.Fatalf("warm run not fully cached; stderr: %s", warmErr)
	}
}

// TestLongAndHeatmapFormats sanity-checks the alternative formats on the
// golden grid (shape only — the cell values are pinned by the sweep
// package's own determinism tests).
func TestLongAndHeatmapFormats(t *testing.T) {
	long, _ := runGolden(t, "-format", "long")
	lines := strings.Split(strings.TrimRight(long, "\n"), "\n")
	if len(lines) != 1+2*2*3 { // header + loads×km×disciplines
		t.Fatalf("long format has %d lines:\n%s", len(lines), long)
	}
	if !strings.HasPrefix(lines[0], "rho,m,k_over_m,k,discipline,error_rate,analytic,sim") {
		t.Fatalf("long header: %q", lines[0])
	}

	heat, _ := runGolden(t, "-format", "heatmap")
	if got := strings.Count(heat, "# loss surface"); got != 3 { // one per discipline
		t.Fatalf("heatmap emitted %d surfaces, want 3:\n%s", got, heat)
	}
}

// TestMetricsToStderr pins the stream split: CSV on stdout, grid metrics
// on stderr.
func TestMetricsToStderr(t *testing.T) {
	out, errText := runGolden(t, "-metrics")
	if strings.Contains(out, "grid slot metrics") {
		t.Fatal("metrics leaked into the CSV stream")
	}
	if !strings.Contains(errText, "grid slot metrics") {
		t.Fatalf("metrics missing from stderr: %s", errText)
	}
}

// TestProtocolAxis pins the zoo spelling of the discipline axis: a
// -protocol list replaces the default disciplines, the emitted wide CSV
// gets one analytic and one sim column per protocol (analytic cells
// empty for zoo protocols with no model), and the flag may not fight an
// explicit -disciplines.
func TestProtocolAxis(t *testing.T) {
	args := []string{
		"-loads", "0.5", "-km", "1,2", "-m", "25",
		"-sim", "-messages", "2000", "-seed", "1983",
		"-protocol", "acdc,tournament",
	}
	var out, errBuf bytes.Buffer
	if err := run(args, &out, &errBuf); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, errBuf.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if len(lines) != 1+2 { // header + loads×km rows
		t.Fatalf("wide CSV has %d lines:\n%s", len(lines), out.String())
	}
	const wantHeader = "rho,m,k_over_m,k,error_rate,acdc,tournament,sim_acdc,sim_tournament"
	if lines[0] != wantHeader {
		t.Fatalf("header %q, want %q", lines[0], wantHeader)
	}
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		if len(cells) != 9 {
			t.Fatalf("row %q has %d cells", line, len(cells))
		}
		// No analytic model for either zoo protocol: empty cells.
		if cells[5] != "" || cells[6] != "" {
			t.Errorf("zoo analytic cells not empty in %q", line)
		}
		// Both protocols simulated a loss value.
		if cells[7] == "" || cells[8] == "" {
			t.Errorf("missing simulated loss in %q", line)
		}
	}

	for _, bad := range [][]string{
		{"-disciplines", "controlled", "-protocol", "acdc"}, // both axes
		{"-protocol", "no-such-mac"},                        // unknown name
		{"-protocol", "acdc,acdc"},                          // duplicate
	} {
		var o, e bytes.Buffer
		if err := run(bad, &o, &e); err == nil {
			t.Errorf("run(%v) accepted", bad)
		}
	}
}
