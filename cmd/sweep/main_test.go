package main

import "testing"

func TestParseFloats(t *testing.T) {
	vals, err := parseFloats("0.25, 0.5,0.75")
	if err != nil || len(vals) != 3 || vals[1] != 0.5 {
		t.Fatalf("parse: %v %v", vals, err)
	}
	for _, bad := range []string{"", "a", "1,-2", "1,,2", "0"} {
		if _, err := parseFloats(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestFormat(t *testing.T) {
	if format(0.25) != "0.25" || format(25) != "25" {
		t.Fatal("format")
	}
}
