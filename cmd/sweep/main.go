// Command sweep evaluates the protocol across a parameter grid and emits
// CSV for plotting — now at phase-diagram scale: the grid is the cross
// product of the -loads, -m, -km, -disciplines and -error-rates axes,
// cache misses fan out over all cores (-workers), and a content-addressed
// result cache (-cache DIR) makes re-runs, resumed runs and superset
// grids incremental.  Output is bit-identical at any worker count and
// across cold/warm cache runs.
//
// Usage:
//
//	sweep [-m 25] [-loads 0.25,0.5,0.75] [-km 0.5,1,2,4]
//	      [-disciplines controlled,fcfs,lcfs] [-protocol tournament,acdc]
//	      [-format wide|long|heatmap]
//	      [-sim] [-messages 50000] [-replications N] [-seed 1983]
//	      [-workers N] [-cache DIR] [-cache-stats] [-points BUDGET]
//	      [-error-rates 0,0.01,0.05]
//	      [-feedback-error P] [-feedback-error-erasure P]
//	      [-feedback-error-false-collision P] [-feedback-error-missed-collision P]
//	      [-feedback-error-seed S]
//	      [-metrics] [-cpuprofile FILE] [-memprofile FILE] > out.csv
//
// Formats: "wide" (default) emits one row per grid cell with one
// analytic and one simulated column per discipline — the shape this
// command has always produced, extended with an error_rate column after
// k.  "long" emits one row per point with every measurement (CIs, mean
// wait, utilization, counts).  "heatmap" emits one loss-surface matrix
// (ρ′ rows × K/M columns) per (M, discipline, ε).
//
// The discipline axis ranges over the full MAC zoo: -protocol is the
// zoo spelling of -disciplines (same axis, overrides the default list),
// so cross-protocol comparison surfaces — the paper's protocol against
// the tournament MAC and AC/DC-RA admission control — come out of one
// run.  Zoo protocols without an analytic model leave their analytic
// column empty and simulate like any other discipline.
//
// The -error-rates axis sweeps feedback degradation: at grid value ε the
// injected per-kind fault probabilities are the -feedback-error family
// scaled by ε (all three kinds at ε when no family flag is given), with
// common random numbers across ε so cells differ only through the
// injected faults.  Giving only the -feedback-error family (no
// -error-rates) injects those rates into every simulated point, as
// before.  Analytic columns always stay perfect-feedback for comparison.
//
// With -sim -metrics one shared slot-level collector aggregates every
// executed simulation run of the grid — each run is still individually
// verified against the conservation invariants — and the grid totals are
// printed to stderr after the CSV, so the CSV on stdout stays clean.
// Cache hits contribute nothing to -metrics: their runs happened in an
// earlier sweep.  -cpuprofile and -memprofile write pprof profiles.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"windowctl"
	"windowctl/internal/profiling"
	"windowctl/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		// -h lands here as flag.ErrHelp: the usage text was already
		// printed and asking for help is not an error.
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(0)
		}
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(2)
	}
}

// run is the whole command behind a testable seam: parse args, build the
// sweep space, run the driver, emit.  Everything the user sees goes
// through stdout/stderr, so tests can pin bytes.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ms := fs.String("m", "25", "comma-separated message lengths in slots")
	loads := fs.String("loads", "0.25,0.5,0.75", "comma-separated offered loads ρ'")
	kms := fs.String("km", "0.5,1,1.5,2,3,4,6,8", "comma-separated constraints in message times")
	disciplines := fs.String("disciplines", "controlled,fcfs,lcfs", "comma-separated disciplines (controlled,fcfs,lcfs,random,tournament,acdc)")
	proto := fs.String("protocol", "", "comma-separated protocol names for the discipline axis (the MAC zoo; overrides -disciplines)")
	format := fs.String("format", "wide", "output format: wide, long or heatmap")
	sim := fs.Bool("sim", false, "add simulated loss columns")
	messages := fs.Float64("messages", 5e4, "offered messages per simulation point")
	replications := fs.Int("replications", 1, "independent replications per simulated point (>= 2 adds cross-replication CIs; requires -sim)")
	seed := fs.Uint64("seed", 1983, "simulation seed (must be nonzero)")
	workers := fs.Int("workers", 0, "concurrent point evaluations (0 = all cores, 1 = serial; results identical at any setting)")
	cacheDir := fs.String("cache", "", "content-addressed result cache directory (reused and extended across runs)")
	cacheStats := fs.Bool("cache-stats", false, "print cache hit/miss statistics to stderr (requires -cache)")
	points := fs.Int("points", 1_000_000, "refuse grids larger than this many points (0 = unlimited)")
	errorRates := fs.String("error-rates", "", "comma-separated feedback-error grid values ε (requires -sim)")
	feAll := fs.Float64("feedback-error", 0, "per-slot probability applied to all three feedback-fault kinds (requires -sim)")
	feErasure := fs.Float64("feedback-error-erasure", 0, "per-slot erasure probability (overrides -feedback-error)")
	feFalse := fs.Float64("feedback-error-false-collision", 0, "per-slot false-collision probability (overrides -feedback-error)")
	feMissed := fs.Float64("feedback-error-missed-collision", 0, "per-slot missed-collision probability (overrides -feedback-error)")
	feSeed := fs.Uint64("feedback-error-seed", 0, "fault-schedule seed (0 = derive from -seed)")
	metricsFlag := fs.Bool("metrics", false, "aggregate slot-level metrics over the grid and print them to stderr (requires -sim)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Validate flags up front: a bad probability or a zero seed is a
	// usage error, not something to discover mid-grid.
	if !(*messages > 0) || math.IsInf(*messages, 0) {
		return fmt.Errorf("-messages must be positive and finite, got %v", *messages)
	}
	if *seed == 0 {
		return fmt.Errorf("-seed 0 is not a valid seed (0 is reserved as the derive-from-base sentinel of -feedback-error-seed); pick any nonzero value")
	}
	if *replications > 1 && !*sim {
		return fmt.Errorf("-replications requires -sim (there is nothing to replicate analytically)")
	}
	if *metricsFlag && !*sim {
		return fmt.Errorf("-metrics requires -sim (there is nothing to collect from analytic rows)")
	}
	if *cacheStats && *cacheDir == "" {
		return fmt.Errorf("-cache-stats requires -cache (there are no statistics without a cache)")
	}

	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	kindRate := func(name string, v float64) float64 {
		if explicit[name] {
			return v
		}
		return *feAll
	}
	mix := windowctl.FaultRates{
		Erasure:         kindRate("feedback-error-erasure", *feErasure),
		FalseCollision:  kindRate("feedback-error-false-collision", *feFalse),
		MissedCollision: kindRate("feedback-error-missed-collision", *feMissed),
	}
	faulted := !mix.Zero() || explicit["error-rates"]
	if faulted && !*sim {
		return fmt.Errorf("-error-rates and the -feedback-error family require -sim (faults only exist in simulation)")
	}

	space := sweep.Space{
		Seed:         *seed,
		FaultSeed:    *feSeed,
		Replications: *replications,
	}
	if *sim {
		space.Messages = *messages
	}
	var err error
	if space.Loads, err = parseFloats(*loads); err != nil {
		return fmt.Errorf("-loads: %w", err)
	}
	if space.Ms, err = parseFloats(*ms); err != nil {
		return fmt.Errorf("-m: %w", err)
	}
	if space.KOverM, err = parseFloats(*kms); err != nil {
		return fmt.Errorf("-km: %w", err)
	}
	// -protocol is the zoo spelling of the discipline axis; it replaces
	// the -disciplines default but may not fight an explicit one.
	discFlag, discList := "-disciplines", *disciplines
	if *proto != "" {
		if explicit["disciplines"] {
			return fmt.Errorf("set -disciplines or -protocol, not both")
		}
		discFlag, discList = "-protocol", *proto
	}
	for _, name := range strings.Split(discList, ",") {
		d, err := sweep.ParseDiscipline(strings.TrimSpace(name))
		if err != nil {
			return fmt.Errorf("%s: %w", discFlag, err)
		}
		space.Disciplines = append(space.Disciplines, d)
	}
	switch {
	case explicit["error-rates"]:
		// Sweep the ε axis; per-kind flags weigh the mix at ε = 1 (all
		// three kinds equally when no family flag is given).
		if space.ErrorRates, err = parseAxis(*errorRates); err != nil {
			return fmt.Errorf("-error-rates: %w", err)
		}
		space.Mix = mix
	case !mix.Zero():
		// Family flags without an ε axis: inject exactly those rates into
		// every simulated point (the pre-axis behavior, ε = 1).
		space.ErrorRates = []float64{1}
		space.Mix = mix
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
		}
	}()

	opt := sweep.Options{Workers: *workers, MaxPoints: *points}
	if *metricsFlag {
		opt.Metrics = &windowctl.SlotMetrics{}
	}
	if *cacheDir != "" {
		if opt.Cache, err = sweep.Open(*cacheDir); err != nil {
			return err
		}
	}

	outs, err := sweep.Run(space, opt)
	if err != nil {
		return err
	}

	norm, err := space.Normalize()
	if err != nil {
		return err
	}
	switch *format {
	case "wide":
		err = sweep.WriteWideCSV(stdout, norm, outs)
	case "long":
		err = sweep.WriteCSV(stdout, outs)
	case "heatmap":
		err = sweep.WriteHeatmaps(stdout, norm, outs)
	default:
		return fmt.Errorf("-format must be wide, long or heatmap, got %q", *format)
	}
	if err != nil {
		return err
	}

	if opt.Metrics != nil {
		if err := opt.Metrics.Publish("sweep"); err != nil {
			fmt.Fprintln(stderr, "sweep: expvar publish:", err)
		}
		fmt.Fprintf(stderr, "grid slot metrics (every executed run's invariants verified)\n%s", opt.Metrics.Format())
	}
	if *cacheStats {
		st := opt.Cache.Stats()
		fmt.Fprintf(stderr, "cache %s: %d entries (%d loaded, %d skipped), %d hits / %d misses (%.1f%% hits)\n",
			st.Dir, st.Entries, st.Loaded, st.Skipped, st.Hits, st.Misses, 100*st.HitRate())
	}
	return nil
}

// parseFloats parses a comma-separated positive axis, rejecting the
// silent-footgun inputs: NaN/Inf (ParseFloat accepts them) and duplicate
// values (almost always a flag typo, and they would double-count rows in
// every emitted surface).
func parseFloats(s string) ([]float64, error) {
	out, err := parseList(s)
	if err != nil {
		return nil, err
	}
	for _, v := range out {
		if v <= 0 {
			return nil, fmt.Errorf("values must be positive, got %v", v)
		}
	}
	return out, nil
}

// parseAxis is parseFloats for axes that admit zero (error rates).
func parseAxis(s string) ([]float64, error) {
	out, err := parseList(s)
	if err != nil {
		return nil, err
	}
	for _, v := range out {
		if v < 0 {
			return nil, fmt.Errorf("values must be non-negative, got %v", v)
		}
	}
	return out, nil
}

func parseList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", part, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("value %q is not finite", strings.TrimSpace(part))
		}
		for _, prev := range out {
			if prev == v {
				return nil, fmt.Errorf("duplicate value %v", v)
			}
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
