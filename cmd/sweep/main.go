// Command sweep evaluates the protocol across a parameter grid and emits
// CSV for plotting: one row per (load, K) point with the analytic and
// simulated loss of the selected disciplines.
//
// With -sim -metrics one shared slot-level collector aggregates every
// simulation run of the grid — each run is still individually verified
// against the conservation invariants — and the grid totals (slots,
// splits, discards, utilization) are printed to stderr after the CSV, so
// the CSV on stdout stays clean.  -cpuprofile and -memprofile write
// pprof profiles.
//
// Usage:
//
//	sweep [-m 25] [-loads 0.25,0.5,0.75] [-km 0.5,1,2,4] [-sim] [-messages 50000]
//	      [-feedback-error P] [-feedback-error-erasure P]
//	      [-feedback-error-false-collision P] [-feedback-error-missed-collision P]
//	      [-feedback-error-seed S]
//	      [-metrics] [-cpuprofile FILE] [-memprofile FILE] > out.csv
//
// The -feedback-error family (requires -sim) injects imperfect channel
// feedback into every simulated point: -feedback-error sets the per-slot
// probability of all three fault kinds (erasure, false collision, missed
// collision) at once, the per-kind flags override it individually, and
// the analytic columns stay perfect-feedback for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"windowctl"
	"windowctl/internal/profiling"
)

func main() {
	m := flag.Float64("m", 25, "message length in slots")
	loads := flag.String("loads", "0.25,0.5,0.75", "comma-separated offered loads ρ'")
	kms := flag.String("km", "0.5,1,1.5,2,3,4,6,8", "comma-separated constraints in message times")
	sim := flag.Bool("sim", false, "add simulated loss columns")
	messages := flag.Float64("messages", 5e4, "offered messages per simulation point")
	seed := flag.Uint64("seed", 1983, "simulation seed")
	metricsFlag := flag.Bool("metrics", false, "aggregate slot-level metrics over the grid and print them to stderr (requires -sim)")
	feAll := flag.Float64("feedback-error", 0, "per-slot probability applied to all three feedback-fault kinds (requires -sim)")
	feErasure := flag.Float64("feedback-error-erasure", 0, "per-slot erasure probability (overrides -feedback-error)")
	feFalse := flag.Float64("feedback-error-false-collision", 0, "per-slot false-collision probability (overrides -feedback-error)")
	feMissed := flag.Float64("feedback-error-missed-collision", 0, "per-slot missed-collision probability (overrides -feedback-error)")
	feSeed := flag.Uint64("feedback-error-seed", 0, "fault-schedule seed (0 = derive from -seed)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// Validate numeric flags up front: a bad horizon or an out-of-range
	// probability is a usage error, not something to discover mid-grid.
	if !(*messages > 0) {
		fail(fmt.Errorf("-messages must be positive, got %v", *messages))
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	kindRate := func(name string, v float64) float64 {
		if explicit[name] {
			return v
		}
		return *feAll
	}
	faults := windowctl.FaultConfig{
		Rates: windowctl.FaultRates{
			Erasure:         kindRate("feedback-error-erasure", *feErasure),
			FalseCollision:  kindRate("feedback-error-false-collision", *feFalse),
			MissedCollision: kindRate("feedback-error-missed-collision", *feMissed),
		},
		Seed: *feSeed,
	}
	if err := faults.Validate(); err != nil {
		fail(err)
	}
	if faults.Enabled() && !*sim {
		fail(fmt.Errorf("-feedback-error requires -sim (faults only exist in simulation)"))
	}
	if faults.Seed == 0 {
		faults.Seed = *seed
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
		}
	}()

	// One collector aggregates the whole grid: the runs are sequential,
	// and each one checkpoints the counters so its own conservation
	// invariants are still verified individually.  No histogram — the
	// grid's (K) values differ, so their wait bins are not comparable.
	var sm *windowctl.SlotMetrics
	if *metricsFlag {
		if !*sim {
			fail(fmt.Errorf("-metrics requires -sim (there is nothing to collect from analytic rows)"))
		}
		sm = &windowctl.SlotMetrics{}
	}

	loadVals, err := parseFloats(*loads)
	if err != nil {
		fail(err)
	}
	kmVals, err := parseFloats(*kms)
	if err != nil {
		fail(err)
	}

	header := "rho,m,k_over_m,k,controlled,fcfs,lcfs"
	if *sim {
		header += ",sim_controlled,sim_fcfs,sim_lcfs"
	}
	fmt.Println(header)
	for _, rho := range loadVals {
		for _, km := range kmVals {
			k := km * *m
			row := []string{
				format(rho), format(*m), format(km), format(k),
			}
			for _, d := range []windowctl.Discipline{windowctl.Controlled, windowctl.FCFS, windowctl.LCFS} {
				sys := windowctl.System{M: *m, RhoPrime: rho, K: k, Discipline: d}
				res, err := sys.AnalyticLoss()
				if err != nil {
					row = append(row, "")
					continue
				}
				row = append(row, fmt.Sprintf("%.6f", res.Loss))
			}
			if *sim {
				for _, d := range []windowctl.Discipline{windowctl.Controlled, windowctl.FCFS, windowctl.LCFS} {
					sys := windowctl.System{M: *m, RhoPrime: rho, K: k, Discipline: d, Seed: *seed}
					opt := windowctl.SimOptions{EndTime: *messages / sys.Lambda(), Faults: faults}
					if sm != nil {
						opt.Collector = sm
					}
					rep, err := sys.Simulate(opt)
					if err != nil {
						row = append(row, "")
						continue
					}
					row = append(row, fmt.Sprintf("%.6f", rep.Loss()))
				}
			}
			fmt.Println(strings.Join(row, ","))
		}
	}

	if sm != nil {
		sm.Publish("sweep")
		fmt.Fprintf(os.Stderr, "grid slot metrics (every run's invariants verified)\n%s", sm.Format())
	}
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", part, err)
		}
		if v <= 0 {
			return nil, fmt.Errorf("values must be positive, got %v", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func format(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(2)
}
