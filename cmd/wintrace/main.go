// Command wintrace replays the window protocol over a scripted set of
// arrival times and prints every probe — the textual counterpart of the
// paper's figures 1 and 4 (window splitting and the maintenance of
// t_past), plus the figure-2 view of the cleared time axis.
//
// Usage:
//
//	wintrace [-discipline controlled|fcfs|lcfs] [-k 20] [-m 4] [-len 8] arrival...
//
// With no arrivals given, the figure-4 style default scenario is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"windowctl/internal/trace"
	"windowctl/internal/window"
)

func main() {
	disc := flag.String("discipline", "controlled", "controlled | fcfs | lcfs")
	k := flag.Float64("k", 20, "time constraint K (0 = none)")
	m := flag.Float64("m", 4, "message length in slots")
	winLen := flag.Float64("len", 8, "initial window length")
	flag.Parse()

	arrivals := []float64{1.0, 2.2, 3.7, 6.5}
	if flag.NArg() > 0 {
		arrivals = nil
		for _, a := range flag.Args() {
			v, err := strconv.ParseFloat(a, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "wintrace: bad arrival %q: %v\n", a, err)
				os.Exit(2)
			}
			arrivals = append(arrivals, v)
		}
	}

	length := window.FixedLength(*winLen)
	var pol window.Policy
	switch *disc {
	case "controlled":
		pol = window.Controlled{Length: length}
	case "fcfs":
		pol = window.FCFS{Length: length}
	case "lcfs":
		pol = window.LCFS{Length: length}
	default:
		fmt.Fprintf(os.Stderr, "wintrace: unknown discipline %q\n", *disc)
		os.Exit(2)
	}

	tr, err := trace.Run(trace.Config{
		Policy:   pol,
		Arrivals: arrivals,
		M:        *m,
		K:        *k,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wintrace:", err)
		os.Exit(1)
	}
	fmt.Printf("discipline %s, %d scripted arrival(s), K=%g, M=%g\n\n", *disc, len(arrivals), *k, *m)
	fmt.Print(tr.Render())
	fmt.Printf("\ntime axis [0, %.2f) — '#' = known clear (figure 2 view):\n%s\n",
		tr.End, tr.RenderAxis(0, tr.End, 72))
	fmt.Printf("\npseudo-time compression (figure 3 view):\n%s\n",
		tr.RenderPseudoTime(0, tr.End, 72))
}
