// Command windowloss evaluates the analytic loss models at one operating
// point: equation 4.7 for the controlled protocol, or the uncontrolled
// FCFS/LCFS baselines of [Kurose 83].
//
// Usage:
//
//	windowloss -rho 0.75 -m 25 -k 50 [-discipline controlled|fcfs|lcfs] [-tau 1]
//
// K is given in absolute time (units of τ); use -km to give it in message
// times instead.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"windowctl"
)

func main() {
	rho := flag.Float64("rho", 0.5, "normalized offered load ρ' = λ'·M·τ")
	m := flag.Float64("m", 25, "message length M in slots")
	tau := flag.Float64("tau", 1, "slot time τ (propagation delay)")
	k := flag.Float64("k", 0, "time constraint K (absolute time)")
	km := flag.Float64("km", 0, "time constraint in message times (overrides -k)")
	disc := flag.String("discipline", "controlled", "controlled | fcfs | lcfs")
	flag.Parse()

	constraint := *k
	if *km > 0 {
		constraint = *km * *m * *tau
	}
	if constraint <= 0 {
		fmt.Fprintln(os.Stderr, "windowloss: provide a positive -k or -km")
		os.Exit(2)
	}
	var d windowctl.Discipline
	switch *disc {
	case "controlled":
		d = windowctl.Controlled
	case "fcfs":
		d = windowctl.FCFS
	case "lcfs":
		d = windowctl.LCFS
	default:
		fmt.Fprintf(os.Stderr, "windowloss: unknown discipline %q\n", *disc)
		os.Exit(2)
	}
	sys := windowctl.System{Tau: *tau, M: *m, RhoPrime: *rho, K: constraint, Discipline: d}
	res, err := sys.AnalyticLoss()
	if err != nil {
		fmt.Fprintln(os.Stderr, "windowloss:", err)
		os.Exit(1)
	}
	fmt.Printf("discipline        %s\n", d)
	fmt.Printf("lambda'           %.6g msgs/time\n", sys.Lambda())
	fmt.Printf("window content G  %.4f msgs\n", res.WindowContent)
	fmt.Printf("rho (w/overhead)  %.4f\n", res.Rho)
	if !math.IsNaN(res.ServerIdle) {
		fmt.Printf("P(server idle)    %.4f\n", res.ServerIdle)
	}
	fmt.Printf("K                 %.4g (= %.3g message times)\n", constraint, constraint/(*m**tau))
	fmt.Printf("p(loss)           %.6f\n", res.Loss)
}
