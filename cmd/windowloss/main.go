// Command windowloss evaluates the analytic loss models at one operating
// point: equation 4.7 for the controlled protocol, or the uncontrolled
// FCFS/LCFS baselines of [Kurose 83].
//
// Usage:
//
//	windowloss -rho 0.75 -m 25 -k 50 [-discipline controlled|fcfs|lcfs] [-tau 1]
//	windowloss -rho 0.75 -m 25 -kms 0.5,1,2,4 [-discipline all]
//
// K is given in absolute time (units of τ); use -km to give it in message
// times instead.  -kms takes a comma-separated list of constraints in
// message times and evaluates the whole grid through the batched multi-K
// solvers, which share one convolution series across the constraints
// (discipline "all" tabulates every curve).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"windowctl"
	"windowctl/internal/queueing"
)

func main() {
	rho := flag.Float64("rho", 0.5, "normalized offered load ρ' = λ'·M·τ")
	m := flag.Float64("m", 25, "message length M in slots")
	tau := flag.Float64("tau", 1, "slot time τ (propagation delay)")
	k := flag.Float64("k", 0, "time constraint K (absolute time)")
	km := flag.Float64("km", 0, "time constraint in message times (overrides -k)")
	kms := flag.String("kms", "", "comma-separated constraint grid in message times (batched mode)")
	disc := flag.String("discipline", "controlled", "controlled | fcfs | lcfs | all (grid mode only)")
	flag.Parse()

	if *kms != "" {
		gridMode(*rho, *m, *tau, *kms, *disc)
		return
	}

	constraint := *k
	if *km > 0 {
		constraint = *km * *m * *tau
	}
	if constraint <= 0 {
		fmt.Fprintln(os.Stderr, "windowloss: provide a positive -k, -km or -kms")
		os.Exit(2)
	}
	var d windowctl.Discipline
	switch *disc {
	case "controlled":
		d = windowctl.Controlled
	case "fcfs":
		d = windowctl.FCFS
	case "lcfs":
		d = windowctl.LCFS
	default:
		fmt.Fprintf(os.Stderr, "windowloss: unknown discipline %q\n", *disc)
		os.Exit(2)
	}
	sys := windowctl.System{Tau: *tau, M: *m, RhoPrime: *rho, K: constraint, Discipline: d}
	res, err := sys.AnalyticLoss()
	if err != nil {
		fmt.Fprintln(os.Stderr, "windowloss:", err)
		os.Exit(1)
	}
	fmt.Printf("discipline        %s\n", d)
	fmt.Printf("lambda'           %.6g msgs/time\n", sys.Lambda())
	fmt.Printf("window content G  %.4f msgs\n", res.WindowContent)
	fmt.Printf("rho (w/overhead)  %.4f\n", res.Rho)
	if !math.IsNaN(res.ServerIdle) {
		fmt.Printf("P(server idle)    %.4f\n", res.ServerIdle)
	}
	fmt.Printf("K                 %.4g (= %.3g message times)\n", constraint, constraint/(*m**tau))
	fmt.Printf("p(loss)           %.6f\n", res.Loss)
}

// gridMode evaluates a whole constraint grid through the batched multi-K
// solvers (one shared convolution series per service law and quadrature
// grid instead of one per constraint).
func gridMode(rho, m, tau float64, kms, disc string) {
	var ks, kmVals []float64
	for _, f := range strings.Split(kms, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "windowloss: bad -kms entry %q\n", f)
			os.Exit(2)
		}
		kmVals = append(kmVals, v)
		ks = append(ks, v*m*tau)
	}
	model := queueing.ProtocolModel{Tau: tau, M: m, RhoPrime: rho}

	switch disc {
	case "all":
		grids, err := model.LossGrids(ks)
		if err != nil {
			fmt.Fprintln(os.Stderr, "windowloss:", err)
			os.Exit(1)
		}
		fmt.Printf("rho'=%.2f M=%g tau=%g\n", rho, m, tau)
		fmt.Printf("%8s %10s %12s %12s %12s\n", "K/M", "K", "controlled", "fcfs", "lcfs")
		for i := range ks {
			fmt.Printf("%8.2f %10.1f %12.6f %12s %12s\n",
				kmVals[i], ks[i], grids.Controlled[i].Loss,
				fmtMaybe(grids.FCFS[i]), fmtMaybe(grids.LCFS[i]))
		}
		return
	case "controlled":
		res, err := model.ControlledLossGrid(ks)
		if err != nil {
			fmt.Fprintln(os.Stderr, "windowloss:", err)
			os.Exit(1)
		}
		printGrid(rho, m, tau, disc, kmVals, ks, func(i int) float64 { return res[i].Loss })
	case "fcfs":
		losses, err := model.FCFSLossGrid(ks)
		if err != nil {
			fmt.Fprintln(os.Stderr, "windowloss:", err)
			os.Exit(1)
		}
		printGrid(rho, m, tau, disc, kmVals, ks, func(i int) float64 { return losses[i] })
	case "lcfs":
		losses, err := model.LCFSLossGrid(ks)
		if err != nil {
			fmt.Fprintln(os.Stderr, "windowloss:", err)
			os.Exit(1)
		}
		printGrid(rho, m, tau, disc, kmVals, ks, func(i int) float64 { return losses[i] })
	default:
		fmt.Fprintf(os.Stderr, "windowloss: unknown discipline %q\n", disc)
		os.Exit(2)
	}
}

func printGrid(rho, m, tau float64, disc string, kmVals, ks []float64, loss func(int) float64) {
	fmt.Printf("rho'=%.2f M=%g tau=%g discipline=%s\n", rho, m, tau, disc)
	fmt.Printf("%8s %10s %12s\n", "K/M", "K", "p(loss)")
	for i := range ks {
		fmt.Printf("%8.2f %10.1f %12s\n", kmVals[i], ks[i], fmtMaybe(loss(i)))
	}
}

func fmtMaybe(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.6f", v)
}
