// Command windowsim simulates the window protocol at one operating point
// and prints the measured loss, delay and channel statistics.  It can run
// either the fast global-view simulator or the full multi-station
// simulator (which verifies that all distributed stations stay in
// lockstep).
//
// With -metrics the run is instrumented with a slot-level collector: the
// idle/success/collision slot counts, window splits, element-(4)
// discards and the accepted-wait histogram are printed after the report,
// and the run's conservation invariants (see docs/OBSERVABILITY.md) are
// verified.  -cpuprofile and -memprofile write pprof profiles.
//
// Usage:
//
//	windowsim -rho 0.75 -m 25 -km 2 [-discipline controlled|fcfs|lcfs|random|tournament|acdc]
//	          [-protocol NAME] [-stations N] [-messages 1e5] [-seed S] [-g G]
//	          [-feedback-error P] [-feedback-error-erasure P]
//	          [-feedback-error-false-collision P] [-feedback-error-missed-collision P]
//	          [-feedback-error-seed S] [-feedback-error-per-station]
//	          [-metrics] [-cpuprofile FILE] [-memprofile FILE]
//
// The -feedback-error family injects imperfect channel feedback: erased
// slots, false collisions and missed collisions at the given per-slot
// probabilities, with the protocol's recovery path enabled.
// -feedback-error sets all three kinds at once; the per-kind flags
// override it individually.  With -feedback-error-per-station (multi-
// station runs only) each station senses the channel independently and
// stations can desynchronize — detected desyncs and recoveries appear in
// the -metrics output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"windowctl"
	"windowctl/internal/profiling"
)

func main() {
	rho := flag.Float64("rho", 0.5, "normalized offered load ρ' = λ'·M·τ")
	m := flag.Float64("m", 25, "message length M in slots")
	tau := flag.Float64("tau", 1, "slot time τ")
	k := flag.Float64("k", 0, "time constraint K (absolute)")
	km := flag.Float64("km", 2, "time constraint in message times (used when -k is 0)")
	disc := flag.String("discipline", "controlled", "controlled | fcfs | lcfs | random | tournament | acdc")
	proto := flag.String("protocol", "", "registered protocol name (the MAC zoo; overrides -discipline): "+strings.Join(windowctl.ProtocolNames(), " | "))
	stations := flag.Int("stations", 0, "run the full multi-station simulator with N stations (0 = global view)")
	messages := flag.Float64("messages", 1e5, "approximate offered messages")
	seed := flag.Uint64("seed", 1, "random seed")
	g := flag.Float64("g", 0, "mean window content G (0 = heuristic optimum)")
	replications := flag.Int("replications", 0, "run N independent replications and report a cross-replication CI")
	expLen := flag.Bool("explen", false, "exponential message lengths (mean M·τ) instead of fixed")
	metricsFlag := flag.Bool("metrics", false, "collect and print slot-level metrics (verifies conservation invariants)")
	feAll := flag.Float64("feedback-error", 0, "per-slot probability applied to all three feedback-fault kinds")
	feErasure := flag.Float64("feedback-error-erasure", 0, "per-slot erasure probability (overrides -feedback-error)")
	feFalse := flag.Float64("feedback-error-false-collision", 0, "per-slot false-collision probability (overrides -feedback-error)")
	feMissed := flag.Float64("feedback-error-missed-collision", 0, "per-slot missed-collision probability (overrides -feedback-error)")
	feSeed := flag.Uint64("feedback-error-seed", 0, "fault-schedule seed (0 = derive from -seed)")
	fePerStation := flag.Bool("feedback-error-per-station", false, "stations sense the channel independently and can desynchronize (needs -stations)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "windowsim: "+format+"\n", args...)
		os.Exit(2)
	}
	// Validate numeric flags up front: a negative count or an out-of-range
	// probability is a usage error, not something to discover mid-run.
	if !(*messages > 0) {
		usage("-messages must be positive, got %v", *messages)
	}
	if !(*tau > 0) || !(*m > 0) || !(*rho > 0) {
		usage("-tau, -m and -rho must be positive (got %v, %v, %v)", *tau, *m, *rho)
	}
	if *k < 0 || (*k == 0 && !(*km > 0)) {
		usage("need a positive constraint: -k %v / -km %v", *k, *km)
	}
	if *replications < 0 {
		usage("-replications must be >= 0, got %d", *replications)
	}
	if *stations < 0 {
		usage("-stations must be >= 0, got %d", *stations)
	}
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	kindRate := func(name string, v float64) float64 {
		if explicit[name] {
			return v
		}
		return *feAll
	}
	faults := windowctl.FaultConfig{
		Rates: windowctl.FaultRates{
			Erasure:         kindRate("feedback-error-erasure", *feErasure),
			FalseCollision:  kindRate("feedback-error-false-collision", *feFalse),
			MissedCollision: kindRate("feedback-error-missed-collision", *feMissed),
		},
		Seed:       *feSeed,
		PerStation: *fePerStation,
	}
	if err := faults.Validate(); err != nil {
		usage("%v", err)
	}
	if faults.PerStation && *stations == 0 {
		usage("-feedback-error-per-station needs -stations > 0 (the global view has no stations to desynchronize)")
	}
	if faults.Seed == 0 {
		faults.Seed = *seed
	}

	stopProfiles, profErr := profiling.Start(*cpuProfile, *memProfile)
	if profErr != nil {
		fmt.Fprintln(os.Stderr, "windowsim:", profErr)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "windowsim:", err)
		}
	}()

	constraint := *k
	if constraint == 0 {
		constraint = *km * *m * *tau
	}
	if !(constraint > 0) || constraint > 1e15 {
		// An overflow-scale K would previously turn into a negative
		// histogram bin count (float→int overflow) and panic under -metrics.
		usage("constraint K must be positive and finite (≤ 1e15), got %v", constraint)
	}
	// -protocol selects any registered zoo protocol by name; -discipline
	// remains the classic enum spelling.  Protocol names that correspond
	// to disciplines are normalized by the library, so both routes reach
	// the same construction.
	name := *disc
	if *proto != "" {
		if explicit["discipline"] {
			usage("set -discipline or -protocol, not both")
		}
		name = *proto
	}
	sys := windowctl.System{
		Tau: *tau, M: *m, RhoPrime: *rho, K: constraint,
		Seed: *seed, WindowG: *g,
	}
	if d, err := windowctl.ParseDiscipline(name); err == nil {
		sys.Discipline = d
	} else {
		sys.Protocol = name
	}
	if _, err := sys.Policy(); err != nil {
		usage("%v", err)
	}
	if *expLen {
		sys.TxLengths = windowctl.ExponentialLength(*m * *tau)
	}
	opt := windowctl.SimOptions{EndTime: *messages / sys.Lambda(), Faults: faults}
	var sm *windowctl.SlotMetrics
	if *metricsFlag {
		if *replications > 1 {
			fmt.Fprintln(os.Stderr, "windowsim: -metrics does not combine with -replications (replications run concurrently)")
			os.Exit(2)
		}
		// Clamp before the float→int conversion (which overflows past int
		// range); longer waits land in the overflow bin.
		b := constraint / *tau
		if !(b >= 0) || b > 1<<20 {
			b = 1 << 20
		}
		bins := int(b)
		sm = windowctl.NewSlotMetrics(*tau, bins+64)
		opt.Collector = sm
	}

	if *replications > 1 {
		r, err := sys.SimulateReplicated(*replications, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "windowsim:", err)
			os.Exit(1)
		}
		fmt.Printf("discipline          %s (%d replications)\n", name, *replications)
		fmt.Printf("loss                %.5f ± %.5f (95%% t-interval)\n", r.LossMean, r.LossHalfWidth)
		fmt.Printf("mean true wait      %.4f ± %.4f\n", r.WaitMean, r.WaitHalfWidth)
		return
	}

	var rep windowctl.Report
	var err error
	if *stations > 0 {
		rep, err = sys.SimulateDistributed(*stations, opt)
	} else {
		rep, err = sys.Simulate(opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "windowsim:", err)
		os.Exit(1)
	}

	lo, hi := rep.LossCI(0.95)
	fmt.Printf("discipline          %s\n", name)
	fmt.Printf("offered messages    %d\n", rep.Offered)
	fmt.Printf("loss                %.5f  (95%% CI [%.5f, %.5f])\n", rep.Loss(), lo, hi)
	fmt.Printf("  at sender         %d\n", rep.LostSender)
	fmt.Printf("  late at receiver  %d\n", rep.LostLate)
	fmt.Printf("  stranded pending  %d\n", rep.LostPending)
	fmt.Printf("mean true wait      %.4f  (max %.4f)\n", rep.TrueWait.Mean(), rep.TrueWait.Max())
	fmt.Printf("sched slots/msg     %.4f\n", rep.SchedulingSlots.Mean())
	fmt.Printf("channel utilization %.4f\n", rep.Utilization)
	fmt.Printf("idle/collision slots %d / %d\n", rep.IdleSlots, rep.CollisionSlots)
	fmt.Printf("max backlog         %d\n", rep.MaxBacklog)

	if sm != nil {
		// The run already verified the conservation invariants (it would
		// have failed above otherwise); publish for expvar consumers too.
		if err := sm.Publish("windowsim"); err != nil {
			fmt.Fprintln(os.Stderr, "windowsim: expvar publish:", err)
		}
		fmt.Printf("\nslot metrics (invariants verified)\n%s", sm.Format())
	}
}
