package main

import (
	"os/exec"
	"strings"
	"testing"
)

// buildCmd compiles the command once per test binary so the exit-code
// assertions run against the real executable (main calls os.Exit, which
// cannot be observed in-process).
func buildCmd(t *testing.T) string {
	t.Helper()
	bin := t.TempDir() + "/windowsim"
	out, err := exec.Command("go", "build", "-o", bin, "windowctl/cmd/windowsim").CombinedOutput()
	if err != nil {
		t.Fatalf("building windowsim: %v\n%s", err, out)
	}
	return bin
}

// Exit-path contract (the PR 4 convention): validation errors exit 2 with
// a diagnostic, never 0 and never a panic; -h exits 0.
func TestExitPaths(t *testing.T) {
	bin := buildCmd(t)
	cases := []struct {
		name     string
		args     []string
		wantExit int
		wantMsg  string
	}{
		{"help", []string{"-h"}, 0, "Usage"},
		{"bad tau", []string{"-tau", "0"}, 2, "-tau"},
		{"bad rho", []string{"-rho", "-1"}, 2, "-rho"},
		{"negative k", []string{"-k", "-5"}, 2, "constraint"},
		{"zero km with zero k", []string{"-km", "0"}, 2, "constraint"},
		{"bad messages", []string{"-messages", "0"}, 2, "-messages"},
		// The regression this file pins: an overflow-scale K used to pass
		// validation and panic in histogram construction under -metrics.
		{"overflow k", []string{"-k", "1e300", "-metrics"}, 2, "finite"},
		{"both protocol and discipline", []string{"-protocol", "acdc", "-discipline", "fcfs"}, 2, "not both"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			exit := 0
			if ee, ok := err.(*exec.ExitError); ok {
				exit = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("running: %v", err)
			}
			if exit != tc.wantExit {
				t.Errorf("exit %d, want %d\noutput:\n%s", exit, tc.wantExit, out)
			}
			if !strings.Contains(string(out), tc.wantMsg) {
				t.Errorf("output missing %q:\n%s", tc.wantMsg, out)
			}
			if strings.Contains(string(out), "panic") {
				t.Errorf("command panicked:\n%s", out)
			}
		})
	}
}

// A tiny happy-path run with -metrics: exit 0 and the invariant marker.
func TestMetricsRun(t *testing.T) {
	bin := buildCmd(t)
	out, err := exec.Command(bin, "-rho", "0.5", "-m", "10", "-km", "1", "-messages", "2000", "-metrics").CombinedOutput()
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "invariants verified") {
		t.Errorf("missing invariant marker:\n%s", out)
	}
}
