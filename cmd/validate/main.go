// Command validate runs the reproduction's cross-model validation battery
// and prints a fidelity report: at each operating point it compares
//
//   - the §3 semi-Markov decision model (exact within its span-only state),
//   - the §4 impatient-queue model (equation 4.7, plain and coupled),
//   - direct integration of the §4.1 integro-differential equation, and
//   - the event simulation (ground truth),
//
// and checks the expected relationships (SMDP <= eq4.7 ~= ODE <= sim; see
// DESIGN.md §8).  It is EXPERIMENTS.md as executable code.
//
// Usage:
//
//	validate [-messages 100000] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"windowctl"
	"windowctl/internal/queueing"
	"windowctl/internal/sim"
	"windowctl/internal/smdp"
	"windowctl/internal/window"
)

func main() {
	messages := flag.Float64("messages", 1e5, "offered messages per simulation point")
	seed := flag.Uint64("seed", 7, "simulation seed")
	flag.Parse()

	points := []struct {
		rho float64
		m   int
		km  float64
	}{
		{0.25, 25, 1}, {0.25, 25, 2},
		{0.50, 25, 1}, {0.50, 25, 2},
		{0.75, 25, 1}, {0.75, 25, 2},
		{0.50, 100, 1},
	}

	// Solve eq 4.7 once per (rho', M) group through the batched multi-K
	// solver: all of a group's constraints share one convolution series.
	type group struct{ rho, m float64 }
	gridKs := map[group][]float64{}
	for _, pt := range points {
		g := group{pt.rho, float64(pt.m)}
		gridKs[g] = append(gridKs[g], pt.km*float64(pt.m))
	}
	eq47 := map[group][]queueing.Result{}
	for g, ks := range gridKs {
		model := queueing.ProtocolModel{Tau: 1, M: g.m, RhoPrime: g.rho}
		res, err := model.ControlledLossGrid(ks)
		if err != nil {
			fail(err)
		}
		eq47[g] = res
	}
	gridPos := map[group]int{}

	fmt.Printf("%8s %5s %5s | %9s %9s %9s %9s | %9s  %s\n",
		"rho'", "M", "K/M", "smdp", "eq4.7", "coupled", "ode", "sim", "verdict")
	failures := 0
	for _, pt := range points {
		k := pt.km * float64(pt.m)
		lambda := pt.rho / float64(pt.m)

		// §3 decision model (exact discrete occupancy).
		p := -math.Expm1(-lambda)
		mod, err := smdp.NewModel(int(k), pt.m, p)
		if err != nil {
			fail(err)
		}
		opt, err := mod.PolicyIteration(nil, 0)
		if err != nil {
			fail(err)
		}

		// §4 queueing model, plain (from the batched grid) and coupled.
		g := group{pt.rho, float64(pt.m)}
		plain := eq47[g][gridPos[g]]
		gridPos[g]++
		model := queueing.ProtocolModel{Tau: 1, M: float64(pt.m), RhoPrime: pt.rho}
		curve, err := model.ControlledLossCurve([]float64{k / 2, k})
		if err != nil {
			fail(err)
		}
		coupled := curve[len(curve)-1]

		// §4.1 integro-differential equation, solved directly.
		svc, err := model.Service(model.WindowContent(k))
		if err != nil {
			fail(err)
		}
		ode, err := queueing.UnfinishedWorkODE{Lambda: lambda, Service: svc}.Solve(k)
		if err != nil {
			fail(err)
		}

		// Ground truth.
		cfg := sim.Config{
			Policy: window.Controlled{Length: window.FixedG(windowctl.OptimalWindowContent())},
			Tau:    1, M: float64(pt.m), Lambda: lambda, K: k,
			EndTime: *messages / lambda, Warmup: *messages / lambda / 20, Seed: *seed,
		}
		rep, err := sim.RunGlobal(cfg)
		if err != nil {
			fail(err)
		}
		simLoss := rep.Loss()

		verdict := "ok"
		if !(opt.LossFraction <= plain.Loss+1e-6) {
			verdict = "FAIL smdp>eq4.7"
		}
		if math.Abs(plain.Loss-ode.Loss) > 0.02*plain.Loss+1e-3 {
			verdict = "FAIL ode!=series"
		}
		if math.Abs(plain.Loss-simLoss) > 0.35*simLoss+0.01 {
			verdict = "FAIL eq4.7 vs sim"
		}
		if verdict != "ok" {
			failures++
		}
		fmt.Printf("%8.2f %5d %5.1f | %9.5f %9.5f %9.5f %9.5f | %9.5f  %s\n",
			pt.rho, pt.m, pt.km, opt.LossFraction, plain.Loss, coupled.Loss, ode.Loss, simLoss, verdict)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "validate: %d point(s) failed\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall validation relationships hold (smdp <= eq4.7 ≈ ode ≈ coupled <= sim within tolerance)")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "validate:", err)
	os.Exit(1)
}
