package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"windowctl"
	"windowctl/internal/metrics"
	"windowctl/internal/rngutil"
	"windowctl/internal/sim"
	"windowctl/internal/window"
)

// options is windowd's runtime configuration: the protocol operating
// point plus the service knobs.  The zero value is not usable; main
// builds one from flags and /config POST builds amended copies.
type options struct {
	listen       string
	listenTCP    string // binary ingest plane address ("" = disabled)
	maxOwed      int64  // shed TCP frames past this owed backlog (0 = unbounded)
	pprof        bool
	protocol     string
	tau          float64
	m            float64
	k            float64 // absolute constraint; 0 means km·m·tau
	km           float64
	load         float64 // ρ′, the channel-time arrival rate target
	g            float64 // mean window content (0 = heuristic optimum)
	seed         uint64
	synthetic    bool // generate arrivals internally instead of ingest
	estimateRate bool // derive initial windows from a live rate estimate
	maxBacklog   int
	drainTimeout time.Duration
}

func (o options) constraint() float64 {
	if o.k != 0 {
		return o.k
	}
	return o.km * o.m * o.tau
}

// lambda is the virtual-time arrival rate λ′ = ρ′/(M·τ) the pump releases
// ingested messages at; it is also the rate the policy's view is built
// from when no estimator is running.
func (o options) lambda() float64 { return o.load / (o.m * o.tau) }

func (o options) validate() error {
	if !(o.tau > 0) || !(o.m > 0) {
		return fmt.Errorf("need positive -tau and -m (got %v, %v)", o.tau, o.m)
	}
	if !(o.load > 0) {
		return fmt.Errorf("need positive -load (got %v)", o.load)
	}
	if c := o.constraint(); !(c > 0) || c > 1e15 {
		return fmt.Errorf("need a positive finite constraint (-k/-km give %v)", c)
	}
	if o.g < 0 {
		return fmt.Errorf("-g must be >= 0, got %v", o.g)
	}
	if o.maxBacklog < 0 {
		return fmt.Errorf("-max-backlog must be >= 0, got %d", o.maxBacklog)
	}
	if o.maxOwed < 0 {
		return fmt.Errorf("-tcp-max-owed must be >= 0, got %d", o.maxOwed)
	}
	if o.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", o.drainTimeout)
	}
	return nil
}

// engine builds the incremental engine for this configuration: the policy
// comes from the protocol registry exactly as the batch CLIs build it, so
// the service runs the same control law the simulators measure.
func (o options) engine(col metrics.Collector) (*sim.Stepper, *window.RateEstimator, error) {
	sys := windowctl.System{
		Tau: o.tau, M: o.m, RhoPrime: o.load, K: o.constraint(),
		Seed: o.seed, WindowG: o.g,
	}
	if d, err := windowctl.ParseDiscipline(o.protocol); err == nil {
		sys.Discipline = d
	} else {
		sys.Protocol = o.protocol
	}
	pol, err := sys.Policy()
	if err != nil {
		return nil, nil, err
	}
	cfg := sim.Config{
		Policy: pol, Tau: o.tau, M: o.m, Lambda: o.lambda(), K: o.constraint(),
		Seed: o.seed, MaxBacklog: o.maxBacklog, Collector: col,
	}
	var est *window.RateEstimator
	if o.estimateRate {
		// Online re-derivation of the element-(2) initial-window rule: the
		// policy's view rate comes from this estimator instead of the
		// configured λ′, updated from every completed windowing process.
		// The half-life spans a few hundred message times so the estimate
		// rides load swings without chasing per-window noise.
		est = window.NewRateEstimator(cfg.Lambda, 200*o.m*o.tau)
		cfg.RateEstimator = est
	}
	st, err := sim.NewStepper(cfg)
	if err != nil {
		return nil, nil, err
	}
	return st, est, nil
}

// engineStatus is the pump's published state, refreshed at step
// boundaries (where the conservation invariants hold exactly) and
// exported as the "windowd_engine" expvar.
type engineStatus struct {
	Protocol     string  `json:"protocol"`
	RhoPrime     float64 `json:"rho_prime"`
	Lambda       float64 `json:"lambda"`
	K            float64 `json:"k"`
	VirtualNow   float64 `json:"virtual_now"`
	Backlog      int     `json:"backlog"`
	OwedArrivals int64   `json:"owed_arrivals"`
	Steps        uint64  `json:"steps"`
	RateEstimate float64 `json:"rate_estimate,omitempty"`
	Conservation string  `json:"conservation"`
	Draining     bool    `json:"draining"`
	Finished     bool    `json:"finished"`
}

type finalResult struct {
	rep sim.Report
	err error
}

type ctrlMsg struct {
	opts  options
	reply chan error
}

// server owns the engine pump and the HTTP surface.  All engine access
// happens on the single pump goroutine; handlers communicate through the
// ingested counter, the notify channel and the ctrl channel.
type server struct {
	shared *metrics.Shared

	ingested      atomic.Int64 // accepted by handlers, not yet absorbed
	totalIngested atomic.Int64
	ingestedHTTP  atomic.Int64 // per-transport slices of totalIngested
	ingestedTCP   atomic.Int64
	tcpFrames     atomic.Int64 // counts frames absorbed by the TCP plane
	tcpConns      atomic.Int64 // open TCP ingest connections (gauge)
	owedGauge     atomic.Int64 // pump's owed ledger, refreshed every iteration

	tcp     *tcpPlane // nil when -listen-tcp is off
	maxOwed int64
	pprofOn bool

	draining  atomic.Bool
	notify    chan struct{}
	ctrl      chan ctrlMsg
	drainCh   chan struct{}
	drainOnce sync.Once
	done      chan struct{}

	status atomic.Pointer[engineStatus]
	final  atomic.Pointer[finalResult]

	optsMu sync.Mutex
	opts   options

	startWall time.Time
}

func newServer(o options) (*server, error) {
	// An enormous constraint must not translate into an enormous
	// histogram; waits past the covered range land in the overflow bin.
	// Clamp before the float→int conversion: past int range the
	// conversion itself is implementation-defined (negative on amd64)
	// and would slip under an int-side clamp.
	b := o.constraint() / o.tau
	if !(b >= 0) || b > 1<<20 {
		b = 1 << 20
	}
	bins := int(b)
	s := &server{
		shared:    metrics.NewShared(o.tau, bins+64),
		notify:    make(chan struct{}, 1),
		ctrl:      make(chan ctrlMsg),
		drainCh:   make(chan struct{}),
		done:      make(chan struct{}),
		opts:      o,
		maxOwed:   o.maxOwed,
		pprofOn:   o.pprof,
		startWall: time.Now(),
	}
	st, est, err := o.engine(s.shared)
	if err != nil {
		return nil, err
	}
	if err := s.shared.Publish("windowd"); err != nil {
		return nil, err
	}
	if err := metrics.PublishVar("windowd_engine", expvar.Func(func() any {
		if st := s.status.Load(); st != nil {
			return *st
		}
		return engineStatus{}
	})); err != nil {
		return nil, err
	}
	if err := metrics.PublishVar("windowd_ingest", expvar.Func(func() any {
		return map[string]int64{
			"total":  s.totalIngested.Load(),
			"http":   s.ingestedHTTP.Load(),
			"tcp":    s.ingestedTCP.Load(),
			"frames": s.tcpFrames.Load(),
			"conns":  s.tcpConns.Load(),
		}
	})); err != nil {
		return nil, err
	}
	s.status.Store(&engineStatus{Protocol: o.protocol, RhoPrime: o.load, Lambda: o.lambda(), K: o.constraint(), Conservation: "ok"})
	go s.pump(st, o, est)
	return s, nil
}

// currentOpts returns the configuration in effect (the pump updates it on
// reconfiguration).
func (s *server) currentOpts() options {
	s.optsMu.Lock()
	defer s.optsMu.Unlock()
	return s.opts
}

func (s *server) setOpts(o options) {
	s.optsMu.Lock()
	s.opts = o
	s.optsMu.Unlock()
}

// beginDrain asks the pump to run the backlog dry and finish; it is
// idempotent and safe from any goroutine.
func (s *server) beginDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		if s.tcp != nil {
			// Stop the ingest plane first so readers wind down while the
			// pump runs the backlog dry; drain() waits for them before its
			// final accounting.
			s.tcp.close()
		}
		close(s.drainCh)
	})
}

// pumpState is the pump goroutine's working set: the engine, the release
// RNG and the owed-arrival ledger.
type pumpState struct {
	s     *server
	st    *sim.Stepper
	o     options
	lam   float64
	est   *window.RateEstimator
	rel   *rngutil.Stream
	owed  int64
	steps uint64
}

// pump is the single goroutine owning the engine.  Each iteration absorbs
// the ingest counter, advances one decision epoch, and releases absorbed
// arrivals into the engine at the configured virtual rate λ′ — so under
// saturation the materialized arrival process is Poisson(λ′) in channel
// time, matching the batch simulator's arrival law, while the owed ledger
// (a plain integer) absorbs any wall-clock burst without allocating.
func (s *server) pump(st *sim.Stepper, o options, est *window.RateEstimator) {
	defer close(s.done)
	p := &pumpState{
		s: s, st: st, o: o, lam: o.lambda(), est: est,
		// The release stream is separate from the engine's seed so the
		// engine's own randomness stays aligned with an equally-seeded
		// batch run.
		rel: rngutil.New(o.seed ^ 0x6a09e667f3bcc909),
	}
	for {
		select {
		case m := <-s.ctrl:
			p.reconfigure(m)
			continue
		case <-s.drainCh:
			p.drain()
			return
		default:
		}
		p.owed += s.ingested.Swap(0)
		s.owedGauge.Store(p.owed)
		if !p.o.synthetic && p.owed == 0 && p.st.Backlog() == 0 {
			// Idle: nothing to schedule and nothing owed.  Freeze virtual
			// time and park until an ingest, reconfiguration or drain.
			p.publish(p.st.CheckNow())
			select {
			case <-s.notify:
			case m := <-s.ctrl:
				p.reconfigure(m)
			case <-s.drainCh:
				p.drain()
				return
			}
			continue
		}
		if err := p.advance(); err != nil {
			p.fail(err)
			return
		}
		if p.steps&1023 == 0 {
			p.publish(p.st.CheckNow())
		}
	}
}

// advance runs one decision epoch and releases owed arrivals matched to
// the channel time it consumed.  This is the ingest→schedule hot path:
// with the engine warm it performs zero allocations per call.
func (p *pumpState) advance() error {
	before := p.st.Now()
	if err := p.st.Step(); err != nil {
		return err
	}
	elapsed := p.st.Now() - before
	n := int64(p.rel.Poisson(p.lam * elapsed))
	if !p.o.synthetic {
		if n > p.owed {
			n = p.owed
		}
		p.owed -= n
	}
	p.st.Inject(int(n))
	p.steps++
	return nil
}

// reconfigure swaps the engine for one built from the new options: the
// new engine is constructed first (construction errors leave the old one
// running), then the old engine is finished — its conservation invariants
// verified — and the shared collector simply keeps accumulating across
// the swap.  Messages still queued in the outgoing engine are re-injected
// into the incoming one so a /config POST under load does not shed the
// in-flight backlog; the outgoing engine's Finish books them as censored
// residents and the incoming engine counts them as fresh arrivals, so the
// cumulative arrival counter advances by the carried count at each swap
// (see docs/SERVICE.md).
func (p *pumpState) reconfigure(m ctrlMsg) {
	st, est, err := m.opts.engine(p.s.shared)
	if err != nil {
		m.reply <- err
		return
	}
	carry := p.st.Backlog()
	if _, err := p.st.Finish(); err != nil {
		// The outgoing engine's books do not balance: surface it to the
		// caller and keep serving with the fresh engine.
		m.reply <- fmt.Errorf("finishing previous engine: %w", err)
	} else {
		m.reply <- nil
	}
	p.st, p.est, p.o, p.lam = st, est, m.opts, m.opts.lambda()
	if carry > 0 {
		p.st.Inject(carry)
	}
	p.s.setOpts(m.opts)
	p.publish(nil)
}

// drain runs the engine dry: absorb the last ingested arrivals, release
// and schedule until nothing is pending (or the drain timeout expires),
// then finish — classifying any stranded residents — and verify the
// conservation invariants one final time.
func (p *pumpState) drain() {
	// The TCP readers were cut off by beginDrain; wait (bounded) for them
	// to finish so every frame acknowledged before the cut is booked
	// before the final accounting below.
	p.s.shutdownTCP(2 * time.Second)
	deadline := time.Now().Add(p.o.drainTimeout)
	p.o.synthetic = false // stop generating; only owed messages remain
	for time.Now().Before(deadline) {
		// Re-absorb the counter every iteration: a request that passed
		// accept()'s draining check just as beginDrain fired may add to
		// ingested after drain has started, and a single up-front Swap
		// would strand those acknowledged messages unscheduled.
		p.owed += p.s.ingested.Swap(0)
		p.s.owedGauge.Store(p.owed)
		if p.owed == 0 && p.st.Backlog() == 0 {
			break
		}
		if err := p.advance(); err != nil {
			p.fail(err)
			return
		}
		if p.steps&1023 == 0 {
			p.publish(nil)
		}
	}
	if p.owed += p.s.ingested.Swap(0); p.owed > 0 {
		// Timeout (or a last racing accept) with messages still owed:
		// materialize them so the books balance; Finish classifies them
		// as censored residents.
		p.st.Inject(int(p.owed))
		p.owed = 0
	}
	p.s.owedGauge.Store(0)
	rep, err := p.st.Finish()
	p.s.final.Store(&finalResult{rep: rep, err: err})
	p.publishFinished(err)
}

func (p *pumpState) fail(err error) {
	rep, _ := p.st.Finish()
	p.s.final.Store(&finalResult{rep: rep, err: err})
	p.publishFinished(err)
}

func (p *pumpState) publish(conservation error) {
	st := &engineStatus{
		Protocol: p.o.protocol, RhoPrime: p.o.load, Lambda: p.lam, K: p.o.constraint(),
		VirtualNow: p.st.Now(), Backlog: p.st.Backlog(), OwedArrivals: p.owed,
		Steps: p.steps, Conservation: "ok", Draining: p.s.draining.Load(),
	}
	if p.est != nil {
		st.RateEstimate = p.est.Rate()
	}
	if conservation != nil {
		st.Conservation = conservation.Error()
	}
	s := p.s
	s.status.Store(st)
}

func (p *pumpState) publishFinished(err error) {
	p.publish(err)
	st := *p.s.status.Load()
	st.Finished = true
	p.s.status.Store(&st)
}

// routes builds the HTTP surface.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /ingest.bin", s.handleIngestBin)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /config", s.handleConfigGet)
	mux.HandleFunc("POST /config", s.handleConfigPost)
	mux.Handle("GET /debug/vars", expvar.Handler())
	if s.pprofOn {
		mux.HandleFunc("GET /debug/pprof/", httppprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("POST /debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", httppprof.Trace)
	}
	return mux
}

// book credits n externally arrived messages to a transport counter and
// wakes the pump.  It is the single booking point shared by the HTTP
// handlers and the TCP readers — one atomic add per batch, no locks.
func (s *server) book(n int64, transport *atomic.Int64) {
	s.ingested.Add(n)
	s.totalIngested.Add(n)
	transport.Add(n)
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// accept books n externally arrived messages from an HTTP request.
func (s *server) accept(w http.ResponseWriter, n int64) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.book(n, &s.ingestedHTTP)
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, "{\"accepted\":%d}\n", n)
}

// handleIngest accepts newline-delimited JSON records, one batch per
// line: {"count": N}.  An empty object (or omitted count) means one
// message.  The whole body is booked atomically at the end.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	sc := bufio.NewScanner(io.LimitReader(r.Body, 16<<20))
	sc.Buffer(make([]byte, 0, 64<<10), 64<<10)
	var total int64
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Count *int64 `json:"count"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			http.Error(w, fmt.Sprintf("bad record %q: %v", line, err), http.StatusBadRequest)
			return
		}
		n := int64(1)
		if rec.Count != nil {
			n = *rec.Count
		}
		if n < 0 {
			http.Error(w, fmt.Sprintf("negative count %d", n), http.StatusBadRequest)
			return
		}
		total += n
	}
	if err := sc.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.accept(w, total)
}

// handleIngestBin accepts the allocation-light wire format the load
// generator uses: a body of big-endian uint32 batch counts (usually just
// one), summed and booked in a single atomic add.
func (s *server) handleIngestBin(w http.ResponseWriter, r *http.Request) {
	var buf [4096]byte
	var total int64
	rem := 0
	for {
		n, err := r.Body.Read(buf[rem:])
		n += rem
		for i := 0; i+4 <= n; i += 4 {
			total += int64(binary.BigEndian.Uint32(buf[i : i+4]))
		}
		rem = n % 4
		copy(buf[:rem], buf[n-rem:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if rem != 0 {
		http.Error(w, "body length is not a multiple of 4", http.StatusBadRequest)
		return
	}
	s.accept(w, total)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.done:
		http.Error(w, "pump stopped", http.StatusServiceUnavailable)
		return
	default:
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if st := s.status.Load(); st != nil && st.Conservation != "ok" {
		http.Error(w, "conservation violated: "+st.Conservation, http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the counters in the Prometheus text exposition
// format.  The wait quantiles live here (not in the expvar snapshot)
// because a quantile in the histogram's overflow region is +Inf, which
// this format can represent and JSON cannot.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.shared.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	line := func(name string, v any) {
		switch x := v.(type) {
		case float64:
			fmt.Fprintf(w, "%s %s\n", name, formatFloat(x))
		default:
			fmt.Fprintf(w, "%s %v\n", name, v)
		}
	}
	line("windowd_arrivals_total", snap.Arrivals)
	line("windowd_ingested_total", s.totalIngested.Load())
	fmt.Fprintf(w, "windowd_ingested_total{transport=\"http\"} %d\n", s.ingestedHTTP.Load())
	fmt.Fprintf(w, "windowd_ingested_total{transport=\"tcp\"} %d\n", s.ingestedTCP.Load())
	line("windowd_ingest_frames_total", s.tcpFrames.Load())
	line("windowd_ingest_conns", s.tcpConns.Load())
	line("windowd_transmissions_total", snap.Transmissions)
	line("windowd_accepted_total", snap.Accepted)
	line("windowd_late_total", snap.Late)
	line("windowd_shed_total", snap.Discards)
	line("windowd_shed_fraction", snap.DiscardFraction)
	line("windowd_splits_total", snap.Splits)
	line("windowd_idle_slots_total", snap.IdleSlots)
	line("windowd_success_slots_total", snap.SuccessSlots)
	line("windowd_collision_slots_total", snap.CollisionSlots)
	line("windowd_channel_utilization", snap.Utilization)
	line("windowd_wait_mean", snap.WaitMean)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(w, "windowd_wait_quantile{q=\"%g\"} %s\n", q, formatFloat(s.shared.WaitQuantile(q)))
	}
	if st := s.status.Load(); st != nil {
		line("windowd_virtual_now", st.VirtualNow)
		line("windowd_backlog", st.Backlog)
		line("windowd_owed_arrivals", st.OwedArrivals)
		line("windowd_steps_total", st.Steps)
		if st.RateEstimate != 0 {
			line("windowd_rate_estimate", st.RateEstimate)
		}
		healthy := 0
		if st.Conservation == "ok" {
			healthy = 1
		}
		line("windowd_conservation_ok", healthy)
	}
}

// formatFloat renders a float for the text exposition format, spelling
// infinities the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (s *server) handleConfigGet(w http.ResponseWriter, r *http.Request) {
	o := s.currentOpts()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"protocol": o.protocol, "tau": o.tau, "m": o.m, "k": o.constraint(),
		"load": o.load, "g": o.g, "seed": o.seed,
		"synthetic": o.synthetic, "estimate_rate": o.estimateRate,
		"max_backlog": o.maxBacklog, "drain_timeout": o.drainTimeout.String(),
		"listen_tcp": o.listenTCP, "tcp_addr": s.tcpAddr(),
		"tcp_max_owed": o.maxOwed,
	})
}

// handleConfigPost retunes the running service: the request carries the
// fields to change (protocol, k or km, load, g, seed, synthetic), the new
// engine is built and swapped on the pump goroutine, and the previous
// engine's conservation invariants are verified during the handoff.  Tau
// cannot change at runtime: the shared collector's histogram bin width is
// fixed at τ.
func (s *server) handleConfigPost(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Protocol  *string  `json:"protocol"`
		M         *float64 `json:"m"`
		K         *float64 `json:"k"`
		KM        *float64 `json:"km"`
		Load      *float64 `json:"load"`
		G         *float64 `json:"g"`
		Seed      *uint64  `json:"seed"`
		Synthetic *bool    `json:"synthetic"`
		Tau       *float64 `json:"tau"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Tau != nil {
		http.Error(w, "tau cannot change at runtime (metrics bin width is fixed at tau)", http.StatusBadRequest)
		return
	}
	o := s.currentOpts()
	if req.Protocol != nil {
		o.protocol = *req.Protocol
	}
	if req.M != nil {
		o.m = *req.M
	}
	if req.K != nil {
		o.k = *req.K
	}
	if req.KM != nil {
		o.km = *req.KM
		if req.K == nil {
			o.k = 0 // km only: drop a previous absolute constraint
		}
	}
	if req.Load != nil {
		o.load = *req.Load
	}
	if req.G != nil {
		o.g = *req.G
	}
	if req.Seed != nil {
		o.seed = *req.Seed
	}
	if req.Synthetic != nil {
		o.synthetic = *req.Synthetic
	}
	if err := o.validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	m := ctrlMsg{opts: o, reply: make(chan error, 1)}
	select {
	case s.ctrl <- m:
	case <-s.done:
		http.Error(w, "pump stopped", http.StatusServiceUnavailable)
		return
	case <-time.After(5 * time.Second):
		http.Error(w, "pump busy", http.StatusServiceUnavailable)
		return
	}
	if err := <-m.reply; err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.handleConfigGet(w, r)
}
