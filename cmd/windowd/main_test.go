package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"windowctl"
	"windowctl/internal/metrics"
	"windowctl/internal/rngutil"
)

func testOptions() options {
	return options{
		listen: "127.0.0.1:0", protocol: "controlled",
		tau: 1, m: 10, km: 1, load: 0.9, seed: 7,
		drainTimeout: 5 * time.Second,
	}
}

// scrape pulls the "windowd" collector snapshot and engine status out of
// /debug/vars, the exact path a monitoring agent uses.
func scrape(t *testing.T, base string) (metrics.Snapshot, engineStatus) {
	t.Helper()
	resp, err := http.Get(base + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Windowd metrics.Snapshot `json:"windowd"`
		Engine  engineStatus     `json:"windowd_engine"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decoding /debug/vars: %v", err)
	}
	return vars.Windowd, vars.Engine
}

func postNDJSON(t *testing.T, base string, body string) {
	t.Helper()
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/ingest: status %d", resp.StatusCode)
	}
}

// The tentpole's end-to-end contract: start the server, POST arrivals,
// watch transmissions and element-(4) sheds appear in /debug/vars, drain,
// and verify the books balance exactly.
func TestServerEndToEnd(t *testing.T) {
	s, err := newServer(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	const batches, perBatch = 5, 300
	for i := 0; i < batches; i++ {
		postNDJSON(t, ts.URL, fmt.Sprintf("{\"count\":%d}\n", perBatch))
	}

	// The pump schedules asynchronously; wait for it to work through the
	// ingested load (scheduled as Poisson(λ′) in virtual time).
	deadline := time.Now().Add(10 * time.Second)
	var snap metrics.Snapshot
	for {
		snap, _ = scrape(t, ts.URL)
		if snap.Transmissions > 0 && snap.Arrivals == batches*perBatch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pump never caught up: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: status %d", resp.StatusCode)
	}

	s.beginDrain()
	select {
	case <-s.done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
	fin := s.final.Load()
	if fin == nil {
		t.Fatal("no final result")
	}
	if fin.err != nil {
		t.Fatalf("drain failed conservation: %v", fin.err)
	}

	snap = s.shared.Snapshot()
	if snap.Arrivals != batches*perBatch {
		t.Errorf("arrivals = %d, want %d", snap.Arrivals, batches*perBatch)
	}
	resident := int64(fin.rep.EndBacklog)
	if snap.Transmissions+snap.Discards+resident != snap.Arrivals {
		t.Errorf("conservation: tx %d + shed %d + resident %d != arrivals %d",
			snap.Transmissions, snap.Discards, resident, snap.Arrivals)
	}
	// At K/M = 1 and ρ′ = 0.9 element (4) must be shedding.
	if snap.Discards == 0 {
		t.Error("expected nonzero element-(4) sheds at K/M=1, ρ'=0.9")
	}

	// After drain the ingest surface must refuse work.
	resp, err = http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader("{\"count\":1}\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("ingest while drained: status %d, want 503", resp.StatusCode)
	}
}

// Runtime retuning: a /config POST swaps engines under load; the shared
// collector keeps accumulating across the swap and the previous engine's
// conservation invariants are verified during the handoff.
func TestServerConfigSwap(t *testing.T) {
	s, err := newServer(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	postNDJSON(t, ts.URL, "{\"count\":400}\n")
	resp, err := http.Post(ts.URL+"/config", "application/json",
		strings.NewReader(`{"km": 4, "load": 0.5, "protocol": "controlled"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/config POST: status %d: %s", resp.StatusCode, body)
	}
	var cfg map[string]any
	if err := json.Unmarshal(body, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg["k"] != 40.0 || cfg["load"] != 0.5 {
		t.Errorf("config did not apply: %v", cfg)
	}

	// The swapped engine must schedule arrivals ingested after the swap.
	// Arrivals may exceed the 800 ingested: backlog carried across the
	// swap is booked again by the incoming engine (see docs/SERVICE.md).
	postNDJSON(t, ts.URL, "{\"count\":400}\n")
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, _ := scrape(t, ts.URL)
		if snap.Arrivals >= 800 && snap.Transmissions > 400 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-swap engine stalled: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}

	s.beginDrain()
	<-s.done
	if fin := s.final.Load(); fin == nil || fin.err != nil {
		t.Fatalf("drain after swap: %+v", fin)
	}

	// Tau is pinned: the histogram bin width cannot change at runtime.
	resp, err = http.Post(ts.URL+"/config", "application/json", strings.NewReader(`{"tau": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("changing tau: status %d, want 400", resp.StatusCode)
	}
}

// barePump builds a pumpState outside newServer so reconfigure/drain can
// be exercised deterministically, without the pump goroutine owning the
// engine or the expvar surface being touched.
func barePump(t *testing.T, o options) (*server, *pumpState) {
	t.Helper()
	srv := &server{shared: metrics.NewShared(o.tau, 256), opts: o}
	st, est, err := o.engine(srv.shared)
	if err != nil {
		t.Fatal(err)
	}
	return srv, &pumpState{s: srv, st: st, o: o, lam: o.lambda(), est: est, rel: rngutil.New(o.seed ^ 0x6a09e667f3bcc909)}
}

// A /config swap under load must not shed the in-engine backlog: every
// message still pending in the outgoing engine is re-injected into the
// incoming one.
func TestReconfigureCarriesBacklog(t *testing.T) {
	o := testOptions()
	_, p := barePump(t, o)
	for i := 0; i < 5; i++ {
		if err := p.st.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Injected after the last Step, these 50 are still in the engine
	// (queued) when the swap lands — the backlog a /config POST under
	// load would previously have shed.
	p.st.Inject(50)
	carried := p.st.Backlog()
	if carried != 50 {
		t.Fatalf("setup: backlog = %d, want 50", carried)
	}
	o2 := o
	o2.km, o2.load = 4, 0.5
	m := ctrlMsg{opts: o2, reply: make(chan error, 1)}
	p.reconfigure(m)
	if err := <-m.reply; err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	if got := p.st.Backlog(); got != carried {
		t.Errorf("backlog after swap = %d, want the carried %d", got, carried)
	}
	// The carried messages must actually be schedulable by the new engine.
	for i := 0; i < 20000 && p.st.Backlog() > 0; i++ {
		if err := p.st.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if p.st.Backlog() != 0 {
		t.Errorf("carried backlog never drained: %d left", p.st.Backlog())
	}
}

// drain must keep re-absorbing the ingest counter: a request that passes
// accept()'s draining check just as beginDrain fires books messages after
// drain has begun, and they must still be scheduled, not stranded.
func TestDrainAbsorbsLateIngest(t *testing.T) {
	o := testOptions()
	srv, p := barePump(t, o)
	srv.ingested.Add(37) // booked by an accept() racing beginDrain
	p.drain()
	fin := srv.final.Load()
	if fin == nil || fin.err != nil {
		t.Fatalf("drain: %+v", fin)
	}
	snap := srv.shared.Snapshot()
	if snap.Arrivals != 37 {
		t.Errorf("arrivals = %d, want 37", snap.Arrivals)
	}
	if snap.Transmissions+snap.Discards != 37 {
		t.Errorf("late-booked messages stranded: tx %d + shed %d != 37",
			snap.Transmissions, snap.Discards)
	}
}

// Validation admits constraints up to 1e15; with a tiny tau the bin count
// constraint/tau can exceed int range, and the float→int conversion must
// not slip under the clamp and panic the histogram constructors.
func TestServerExtremeConstraintNoPanic(t *testing.T) {
	o := testOptions()
	o.tau, o.k = 1e-10, 1e14
	if err := o.validate(); err != nil {
		t.Fatalf("options should validate: %v", err)
	}
	s, err := newServer(o)
	if err != nil {
		t.Fatal(err)
	}
	s.beginDrain()
	select {
	case <-s.done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
	if fin := s.final.Load(); fin == nil || fin.err != nil {
		t.Fatalf("empty run should finish cleanly: %+v", fin)
	}
}

// The binary ingest format: big-endian uint32 counts, any number per
// body, rejecting ragged lengths.
func TestServerBinaryIngest(t *testing.T) {
	s, err := newServer(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	body := []byte{0, 0, 0, 100, 0, 0, 1, 44} // 100 + 300
	resp, err := http.Post(ts.URL+"/ingest.bin", "application/octet-stream", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("/ingest.bin: status %d", resp.StatusCode)
	}
	if got := s.totalIngested.Load(); got != 400 {
		t.Errorf("ingested %d, want 400", got)
	}

	resp, err = http.Post(ts.URL+"/ingest.bin", "application/octet-stream", strings.NewReader("abc"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("ragged body: status %d, want 400", resp.StatusCode)
	}

	s.beginDrain()
	<-s.done
}

// The acceptance criterion's statistical half: the live shed fraction at
// K/M = 1 must match the batch simulator's element-(4) discard rate.  A
// synthetic-mode server is the controlled comparison — its pump draws the
// same Poisson(λ′) law in virtual time the batch engine draws.
func TestServerSyntheticShedMatchesBatch(t *testing.T) {
	o := testOptions()
	o.synthetic = true
	batchSys := windowctl.System{Tau: o.tau, M: o.m, RhoPrime: o.load, K: o.km * o.m * o.tau, Seed: 99}
	batch, err := batchSys.Simulate(windowctl.SimOptions{EndTime: 300000, Warmup: 1})
	if err != nil {
		t.Fatal(err)
	}
	batchShed := float64(batch.LostSender) / float64(batch.Offered)

	s, err := newServer(o)
	if err != nil {
		t.Fatal(err)
	}
	// Free-run the synthetic pump for a bounded wall time, then drain.
	time.Sleep(300 * time.Millisecond)
	s.beginDrain()
	select {
	case <-s.done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
	fin := s.final.Load()
	if fin == nil || fin.err != nil {
		t.Fatalf("synthetic run failed: %+v", fin)
	}
	snap := s.shared.Snapshot()
	if snap.Arrivals < 10000 {
		t.Skipf("machine too slow for a statistical comparison (only %d arrivals)", snap.Arrivals)
	}
	liveShed := float64(snap.Discards) / float64(snap.Arrivals)
	if batchShed <= 0 || liveShed <= 0 {
		t.Fatalf("expected shedding on both sides: batch=%v live=%v", batchShed, liveShed)
	}
	if diff := math.Abs(batchShed - liveShed); diff > 0.05 {
		t.Errorf("shed fraction diverges: batch %.4f vs live %.4f (|Δ| = %.4f > 0.05)", batchShed, liveShed, diff)
	}
}

// CLI exit-path contract (PR 4 convention): validation errors are usage
// errors, -h is not an error at all.
func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"bad tau", []string{"-tau", "-1"}},
		{"bad load", []string{"-load", "0"}},
		{"bad km", []string{"-km", "-2"}},
		{"unknown protocol", []string{"-protocol", "nosuch"}},
		{"positional junk", []string{"extra"}},
		{"bad drain timeout", []string{"-drain-timeout", "-1s"}},
		{"inf k", []string{"-k", "1e300"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(append(tc.args, "-listen", "127.0.0.1:0"), io.Discard, io.Discard, nil)
			if err == nil {
				t.Fatal("run returned nil for invalid flags")
			}
			if !errors.As(err, new(usageError)) && !strings.Contains(err.Error(), "invalid") {
				t.Errorf("want a usage error, got %T: %v", err, err)
			}
		})
	}
	if err := run([]string{"-h"}, io.Discard, io.Discard, nil); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: want flag.ErrHelp, got %v", err)
	}
}
