package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"windowctl/internal/metrics"
	"windowctl/internal/wire"
)

// startTCPServer builds a pump-backed server with a TCP ingest plane on
// loopback plus the HTTP surface, mirroring what -listen-tcp wires up.
func startTCPServer(t *testing.T, o options) (*server, string, string) {
	t.Helper()
	s, err := newServer(o)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.startTCP(ln)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts.URL, ln.Addr().String()
}

// TestTCPIngestEndToEnd drives the binary plane through the full life of
// the service: framed ingest, pump absorption, the Prometheus and
// /config surfaces, drain, and exact conservation.
func TestTCPIngestEndToEnd(t *testing.T) {
	s, base, tcpAddr := startTCPServer(t, testOptions())

	c, err := wire.Dial(tcpAddr, wire.ClientConfig{CRC: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const frames, per = 200, 5
	for i := 0; i < frames; i++ {
		if err := c.Send([]uint32{per}); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The final ack arrives after the server booked every frame.
	if got := s.totalIngested.Load(); got != frames*per {
		t.Fatalf("ingested %d, want %d", got, frames*per)
	}

	// Wait for the pump to materialize everything into the engine.
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, _ := scrape(t, base)
		if snap.Arrivals == frames*per {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pump never absorbed the TCP ingest: %+v", snap)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Satellite: the per-transport exposition lines.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"windowd_ingested_total{transport=\"tcp\"} 1000\n",
		"windowd_ingested_total{transport=\"http\"} 0\n",
		"windowd_ingest_frames_total 200\n",
		"windowd_ingest_conns ",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /config GET advertises the bound ingest address for autodiscovery.
	resp, err = http.Get(base + "/config")
	if err != nil {
		t.Fatal(err)
	}
	var cfg map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cfg["tcp_addr"] != tcpAddr {
		t.Errorf("config tcp_addr = %v, want %v", cfg["tcp_addr"], tcpAddr)
	}

	s.beginDrain()
	select {
	case <-s.done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
	fin := s.final.Load()
	if fin == nil || fin.err != nil {
		t.Fatalf("drain: %+v", fin)
	}
	snap := s.shared.Snapshot()
	resident := int64(fin.rep.EndBacklog)
	if snap.Transmissions+snap.Discards+resident != snap.Arrivals || snap.Arrivals != frames*per {
		t.Errorf("conservation: tx %d + shed %d + resident %d != arrivals %d (want %d)",
			snap.Transmissions, snap.Discards, resident, snap.Arrivals, frames*per)
	}

	// The plane is closed once draining: a fresh client cannot ingest.
	if c2, err := wire.Dial(tcpAddr, wire.ClientConfig{}); err == nil {
		defer c2.Close()
		var sendErr error
		for i := 0; i < 100 && sendErr == nil; i++ {
			sendErr = c2.Send([]uint32{1})
		}
		if sendErr == nil {
			sendErr = c2.Drain()
		}
		if sendErr == nil {
			t.Error("ingest after drain succeeded")
		}
	}
}

// bareTCPServer is a plane with no pump: the ingest counter is never
// absorbed, so the overload bound trips deterministically.
func bareTCPServer(t *testing.T, maxOwed int64) (*server, string) {
	t.Helper()
	srv := &server{
		shared:  metrics.NewShared(1, 256),
		notify:  make(chan struct{}, 1),
		maxOwed: maxOwed,
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.startTCP(ln)
	t.Cleanup(func() { srv.tcp.close() })
	return srv, ln.Addr().String()
}

// TestTCPOverloadShed: past -tcp-max-owed the server answers with an
// overloaded frame and does NOT absorb the shed frame; the client
// surfaces wire.ErrOverloaded with the absorbed prefix acknowledged.
func TestTCPOverloadShed(t *testing.T) {
	srv, addr := bareTCPServer(t, 10)
	c, err := wire.Dial(addr, wire.ClientConfig{Credit: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var sendErr error
	for i := 0; i < 200 && sendErr == nil; i++ {
		sendErr = c.Send([]uint32{100})
	}
	if sendErr == nil {
		sendErr = c.Drain()
	}
	if !errors.Is(sendErr, wire.ErrOverloaded) {
		t.Fatalf("got %v, want wire.ErrOverloaded", sendErr)
	}
	if c.Acked() != 1 {
		t.Errorf("acked %d frames, want the 1 absorbed before the bound tripped", c.Acked())
	}
	if got := srv.totalIngested.Load(); got != 100 {
		t.Errorf("ingested %d, want 100 (shed frames must not be absorbed)", got)
	}
}

// TestTCPDrainAbsorbsInflight: a drain racing a live sender must book
// every frame the server acknowledged and balance the books exactly —
// absorbed-then-verified, like the HTTP 202 path.
func TestTCPDrainAbsorbsInflight(t *testing.T) {
	s, _, tcpAddr := startTCPServer(t, testOptions())
	c, err := wire.Dial(tcpAddr, wire.ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	clientDone := make(chan error, 1)
	go func() {
		var err error
		for err == nil {
			err = c.Send([]uint32{3})
		}
		clientDone <- err
	}()

	// Let some frames land, then cut the plane mid-stream.
	deadline := time.Now().Add(5 * time.Second)
	for s.totalIngested.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no frames absorbed")
		}
		time.Sleep(time.Millisecond)
	}
	s.beginDrain()
	if err := <-clientDone; err == nil {
		t.Error("sender kept succeeding across the drain cut")
	}
	select {
	case <-s.done:
	case <-time.After(15 * time.Second):
		t.Fatal("drain did not complete")
	}
	fin := s.final.Load()
	if fin == nil || fin.err != nil {
		t.Fatalf("drain conservation: %+v", fin)
	}
	snap := s.shared.Snapshot()
	if snap.Arrivals != s.totalIngested.Load() {
		t.Errorf("arrivals %d != booked %d: acknowledged frames stranded", snap.Arrivals, s.totalIngested.Load())
	}
	resident := int64(fin.rep.EndBacklog)
	if snap.Transmissions+snap.Discards+resident != snap.Arrivals {
		t.Errorf("conservation: tx %d + shed %d + resident %d != arrivals %d",
			snap.Transmissions, snap.Discards, resident, snap.Arrivals)
	}
}

// TestPprofFlag: the profiling surface mounts only when asked for.
func TestPprofFlag(t *testing.T) {
	get := func(pprof bool) int {
		o := testOptions()
		o.pprof = pprof
		s, err := newServer(o)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { s.beginDrain(); <-s.done }()
		ts := httptest.NewServer(s.routes())
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(true); code != http.StatusOK {
		t.Errorf("-pprof on: /debug/pprof/ = %d, want 200", code)
	}
	if code := get(false); code != http.StatusNotFound {
		t.Errorf("-pprof off: /debug/pprof/ = %d, want 404", code)
	}
}

// TestHTTPvsTCPSaturation is the acceptance criterion: under identical
// per-operation batching (one count of 64 per HTTP POST / per TCP
// frame), the binary plane must sustain at least 5× the HTTP-path
// message rate over loopback, with both servers draining to zero owed
// backlog and exact conservation afterwards.
func TestHTTPvsTCPSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation comparison skipped in -short")
	}
	const batch = 64
	const totalMsgs = 1 << 21 // ~2.1M messages per leg
	const ops = totalMsgs / batch

	o := testOptions()
	o.drainTimeout = 60 * time.Second

	drainAndVerify := func(s *server, want int64) {
		t.Helper()
		s.beginDrain()
		select {
		case <-s.done:
		case <-time.After(90 * time.Second):
			t.Fatal("drain did not complete")
		}
		fin := s.final.Load()
		if fin == nil || fin.err != nil {
			t.Fatalf("drain: %+v", fin)
		}
		if st := s.status.Load(); st == nil || st.OwedArrivals != 0 {
			t.Fatalf("owed backlog nonzero after drain: %+v", st)
		}
		snap := s.shared.Snapshot()
		if snap.Arrivals != want {
			t.Errorf("arrivals %d, want %d", snap.Arrivals, want)
		}
		resident := int64(fin.rep.EndBacklog)
		if snap.Transmissions+snap.Discards+resident != snap.Arrivals {
			t.Errorf("conservation: tx %d + shed %d + resident %d != arrivals %d",
				snap.Transmissions, snap.Discards, resident, snap.Arrivals)
		}
	}

	// HTTP leg: one keep-alive connection, one 4-byte count per POST.
	httpRate := func() float64 {
		s, base, _ := startTCPServer(t, o)
		var body [4]byte
		binary.BigEndian.PutUint32(body[:], batch)
		client := &http.Client{}
		start := time.Now()
		for i := 0; i < ops; i++ {
			resp, err := client.Post(base+"/ingest.bin", "application/octet-stream", bytes.NewReader(body[:]))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("/ingest.bin: status %d", resp.StatusCode)
			}
		}
		elapsed := time.Since(start)
		drainAndVerify(s, ops*batch)
		return float64(ops*batch) / elapsed.Seconds()
	}()

	// TCP leg: same message count, one frame per operation, acks consumed.
	tcpRate := func() float64 {
		s, _, tcpAddr := startTCPServer(t, o)
		// A deep credit window keeps flushes threshold-driven (~32 KiB
		// writes) instead of ack-gated: the server's acks accumulate in
		// the socket buffer and the client reads them in bursts.
		c, err := wire.Dial(tcpAddr, wire.ClientConfig{Credit: 1 << 14})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		counts := []uint32{batch}
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := c.Send(counts); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
		}
		if err := c.Drain(); err != nil {
			t.Fatalf("drain: %v", err)
		}
		elapsed := time.Since(start)
		drainAndVerify(s, ops*batch)
		return float64(ops*batch) / elapsed.Seconds()
	}()

	t.Logf("http %.3g msgs/s, tcp %.3g msgs/s, ratio %.1fx", httpRate, tcpRate, tcpRate/httpRate)
	if httpRate < 1e4 {
		t.Skipf("machine too slow for a meaningful comparison (http leg %.0f msgs/s)", httpRate)
	}
	if tcpRate < 5*httpRate {
		t.Errorf("tcp plane %.3g msgs/s is only %.1fx the http path %.3g msgs/s, want >= 5x",
			tcpRate, tcpRate/httpRate, httpRate)
	}
}
