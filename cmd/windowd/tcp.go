package main

import (
	"io"
	"net"
	"sync"
	"time"

	"windowctl/internal/wire"
)

// tcpPlane is the binary ingest plane: one accept loop, one reader
// goroutine per connection, frames decoded straight into the owed-
// arrival ledger.  There are no channel hops and no per-message locks —
// a decoded counts frame becomes one atomic add, the same booking an
// HTTP 202 performs, so everything downstream (pump absorption, release
// law, drain accounting) is transport-agnostic.
type tcpPlane struct {
	s  *server
	ln net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// startTCP attaches a TCP ingest listener to the server and starts its
// accept loop.  It must be called before serving begins.
func (s *server) startTCP(ln net.Listener) {
	t := &tcpPlane{s: s, ln: ln, conns: make(map[net.Conn]struct{})}
	s.tcp = t
	t.wg.Add(1)
	go t.acceptLoop()
}

// tcpAddr reports the bound ingest address ("" when the plane is off);
// /config GET exposes it so clients can autodiscover the fast path.
func (s *server) tcpAddr() string {
	if s.tcp == nil {
		return ""
	}
	return s.tcp.ln.Addr().String()
}

func (t *tcpPlane) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed (drain) or fatal accept error
		}
		if !t.register(conn) {
			conn.Close()
			return
		}
		t.wg.Add(1)
		go t.handle(conn)
	}
}

func (t *tcpPlane) register(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[conn] = struct{}{}
	return true
}

func (t *tcpPlane) unregister(conn net.Conn) {
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
}

// close shuts the listener and every open connection; it is idempotent
// and safe from any goroutine (beginDrain calls it).
func (t *tcpPlane) close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	t.ln.Close()
	for c := range t.conns {
		c.Close()
	}
}

// shutdownTCP closes the plane and waits (bounded) for the reader
// goroutines to finish, so the pump's final drain accounting runs after
// the last in-flight frame has been absorbed.  No-op without a plane.
func (s *server) shutdownTCP(timeout time.Duration) {
	if s.tcp == nil {
		return
	}
	s.tcp.close()
	done := make(chan struct{})
	go func() { s.tcp.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
	}
}

// handle is the per-connection reader: a connection-scoped decoder
// buffer sized from the frame bound, counts frames summed in place and
// booked with one atomic add, an ack every wire.AckEvery frames and a
// final ack at half-close.  Frames arriving once the server is draining
// or past its owed-arrival bound are answered with an overloaded frame
// — NOT absorbed — and the connection closes; everything acknowledged
// before that point is absorbed-then-verified exactly like an HTTP 202.
func (t *tcpPlane) handle(conn net.Conn) {
	defer t.wg.Done()
	defer t.unregister(conn)
	defer conn.Close()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	s := t.s
	s.tcpConns.Add(1)
	defer s.tcpConns.Add(-1)

	dec := wire.NewDecoder(conn, wire.DefaultMaxCounts)
	var f wire.Frame
	var frames uint64
	out := make([]byte, 0, wire.HeaderSize+8+wire.CRCSize)
	for {
		err := dec.Next(&f)
		if err == io.EOF {
			// Clean half-close: a final ack settles the client's Drain.
			conn.Write(wire.AppendControl(out[:0], wire.TypeAck, frames, false))
			return
		}
		if err != nil {
			return // closed mid-frame, torn stream, or protocol violation
		}
		if f.Type != wire.TypeCounts {
			return // clients may only send counts frames
		}
		if s.draining.Load() || s.tcpOverloaded() {
			conn.Write(wire.AppendControl(out[:0], wire.TypeOverloaded, frames, false))
			return
		}
		s.book(int64(f.Sum()), &s.ingestedTCP)
		frames++
		s.tcpFrames.Add(1)
		if frames%wire.AckEvery == 0 {
			if _, err := conn.Write(wire.AppendControl(out[:0], wire.TypeAck, frames, false)); err != nil {
				return
			}
		}
	}
}

// tcpOverloaded reports whether the owed-arrival backlog exceeds the
// configured bound.  The estimate sums the un-absorbed ingest counter
// (exact) and the pump's owed ledger gauge (refreshed every pump
// iteration), so detection lags true overload by at most one epoch.
func (s *server) tcpOverloaded() bool {
	if s.maxOwed <= 0 {
		return false
	}
	return s.ingested.Load()+s.owedGauge.Load() > s.maxOwed
}
