// Command windowd runs the controlled window protocol as a long-running
// admission-control service: element (4) of the paper's control policy —
// discard messages whose waiting-time constraint can no longer be met —
// applied online to a live arrival stream instead of a batch simulation
// horizon.
//
// Arrivals are ingested over HTTP (newline-delimited JSON on /ingest,
// big-endian uint32 batch counts on /ingest.bin — the format cmd/windowload
// speaks), over the binary TCP plane (-listen-tcp: internal/wire framed
// counts decoded straight into the owed-arrival ledger, an order of
// magnitude past the HTTP path), or generated internally with
// -synthetic.  A single pump
// goroutine owns the incremental engine (sim.Stepper): each iteration it
// absorbs the ingest counter, advances one decision epoch of virtual
// channel time, and releases absorbed arrivals into the engine at the
// configured rate λ′ = ρ′/(M·τ), so under saturation the materialized
// arrival process is Poisson(λ′) in channel time — the same law the batch
// simulator draws, which is what makes the live shed fraction comparable
// to the batch element-(4) discard rate.  The ingest→schedule hot path is
// allocation-free at steady state.
//
// Observability: /debug/vars exposes the shared slot-level collector
// ("windowd") and the pump status ("windowd_engine") as expvar JSON;
// /metrics renders the same counters in the Prometheus text format
// (including wait quantiles, which can be +Inf and so cannot live in the
// JSON surface); /healthz reports liveness, drain state and the
// conservation invariants, which are re-verified at every published step
// boundary.  /config GET returns the running configuration and /config
// POST retunes protocol, constraint, load, window content or seed at
// runtime by swapping engines — the outgoing engine's conservation
// invariants are verified during the handoff.
//
// On SIGTERM or SIGINT the service drains: ingest returns 503, the pump
// schedules the remaining backlog (bounded by -drain-timeout), the engine
// is finished — stranded messages classified exactly as a batch run would
// — and the conservation checker must balance the books before the
// process exits 0.  The final report and metrics are printed to stdout.
//
// Usage:
//
//	windowd [-listen :8343] [-listen-tcp ADDR] [-tcp-max-owed N]
//	        [-protocol controlled] [-tau 1] [-m 25]
//	        [-k K | -km 2] [-load 0.75] [-g G] [-seed 1]
//	        [-synthetic] [-estimate-rate] [-max-backlog N]
//	        [-drain-timeout 10s] [-pprof]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"windowctl"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr, nil)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case errors.As(err, new(usageError)):
		fmt.Fprintln(os.Stderr, "windowd:", err)
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "windowd:", err)
		os.Exit(1)
	}
}

// usageError marks a command-line validation failure (exit 2, per the
// repo's CLI convention), as opposed to a runtime failure (exit 1).
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

// run is the whole command behind a testable seam.  ready, when non-nil,
// receives the bound listen address once the server is accepting.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("windowd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", ":8343", "HTTP listen address")
	listenTCP := fs.String("listen-tcp", "", "binary-ingest TCP listen address (empty = disabled)")
	maxOwed := fs.Int64("tcp-max-owed", 0, "shed TCP ingest while the owed-arrival backlog exceeds N messages (0 = unbounded)")
	pprofFlag := fs.Bool("pprof", false, "expose net/http/pprof handlers under /debug/pprof/ on the HTTP listener")
	proto := fs.String("protocol", "controlled", "protocol to schedule with: "+strings.Join(windowctl.ProtocolNames(), " | "))
	tau := fs.Float64("tau", 1, "slot time τ (virtual channel time units)")
	m := fs.Float64("m", 25, "message length M in slots")
	k := fs.Float64("k", 0, "waiting-time constraint K (absolute; 0 = use -km)")
	km := fs.Float64("km", 2, "waiting-time constraint in message times (used when -k is 0)")
	load := fs.Float64("load", 0.75, "design load ρ′: sets the virtual-time release rate λ′ = ρ′/(M·τ)")
	g := fs.Float64("g", 0, "mean window content G (0 = heuristic optimum)")
	seed := fs.Uint64("seed", 1, "random seed")
	synthetic := fs.Bool("synthetic", false, "generate Poisson(λ′) arrivals internally instead of requiring ingest")
	estimateRate := fs.Bool("estimate-rate", false, "derive initial windows from a live rate estimate instead of the configured λ′")
	maxBacklog := fs.Int("max-backlog", 0, "abort if the scheduled backlog exceeds N (0 = engine default)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "max wall time to run the backlog dry on shutdown")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err}
	}
	if fs.NArg() > 0 {
		return usageError{fmt.Errorf("unexpected arguments: %v", fs.Args())}
	}
	o := options{
		listen: *listen, listenTCP: *listenTCP, maxOwed: *maxOwed,
		pprof: *pprofFlag, protocol: *proto, tau: *tau, m: *m, k: *k, km: *km,
		load: *load, g: *g, seed: *seed, synthetic: *synthetic,
		estimateRate: *estimateRate, maxBacklog: *maxBacklog,
		drainTimeout: *drainTimeout,
	}
	if err := o.validate(); err != nil {
		return usageError{err}
	}

	s, err := newServer(o)
	if err != nil {
		return usageError{err} // a bad protocol/constraint is a usage error
	}
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "windowd: listening on %s (protocol=%s rho'=%g K=%g)\n",
		ln.Addr(), o.protocol, o.load, o.constraint())
	if o.listenTCP != "" {
		tln, err := net.Listen("tcp", o.listenTCP)
		if err != nil {
			ln.Close()
			return err
		}
		s.startTCP(tln)
		fmt.Fprintf(stderr, "windowd: tcp ingest on %s\n", tln.Addr())
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	httpSrv := &http.Server{Handler: s.routes()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case <-ctx.Done():
		fmt.Fprintln(stderr, "windowd: shutdown signal; draining")
	case err := <-serveErr:
		return err
	case <-s.done:
		// The pump died on its own (engine error); fall through to report.
	}
	s.beginDrain()
	<-s.done

	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shCtx)

	fin := s.final.Load()
	if fin == nil {
		return fmt.Errorf("pump exited without a final report")
	}
	fmt.Fprintf(stdout, "windowd: drained (ingested %d): %s\n", s.totalIngested.Load(), fin.rep.String())
	fmt.Fprintf(stdout, "%s", s.shared.Format())
	if fin.err != nil {
		return fin.err
	}
	fmt.Fprintln(stdout, "windowd: conservation invariants verified; clean exit")
	return nil
}
