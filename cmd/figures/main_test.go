package main

import "testing"

func TestSelectPanels(t *testing.T) {
	all, err := selectPanels("all")
	if err != nil || len(all) != 6 {
		t.Fatalf("all: %v, %d panels", err, len(all))
	}
	one, err := selectPanels("0.75,25")
	if err != nil || len(one) != 1 {
		t.Fatalf("single: %v", err)
	}
	if one[0].RhoPrime != 0.75 || one[0].M != 25 {
		t.Fatalf("parsed %+v", one[0])
	}
	// Whitespace tolerated.
	if _, err := selectPanels(" 0.5 , 100 "); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "0.75", "a,b", "0.75,x", "-1,25", "0.5,0"} {
		if _, err := selectPanels(bad); err == nil {
			t.Errorf("selector %q accepted", bad)
		}
	}
}
