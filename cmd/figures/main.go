// Command figures regenerates the evaluation of the paper — every panel
// of figure 7 — as text tables: the analytic loss curves (equation 4.7
// for the controlled protocol, the Beneš series for the FCFS baseline,
// the busy-period transform for LCFS) together with corroborating
// simulation points, exactly the content of the paper's six plots.
//
// Usage:
//
//	figures [-panel all|RHO,M] [-sim] [-baselines] [-messages N] [-seed S]
//
// Examples:
//
//	figures                        # all six panels, analytic only
//	figures -sim                   # with controlled-protocol simulation
//	figures -sim -baselines        # also simulate FCFS and LCFS
//	figures -panel 0.75,25 -sim    # a single panel
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"windowctl"
)

func main() {
	panelFlag := flag.String("panel", "all", "panel selector: \"all\" or \"RHO,M\" (e.g. \"0.75,25\")")
	simFlag := flag.Bool("sim", false, "corroborate the controlled curve by simulation")
	baseFlag := flag.Bool("baselines", false, "also simulate the FCFS and LCFS baselines (implies -sim)")
	chartFlag := flag.Bool("chart", false, "render each panel as an ASCII chart too")
	messages := flag.Float64("messages", 1e5, "approximate offered messages per simulation run")
	seed := flag.Uint64("seed", 1983, "simulation seed")
	flag.Parse()

	specs, err := selectPanels(*panelFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	for _, spec := range specs {
		opt := windowctl.Figure7Options{
			Disable:   !*simFlag && !*baseFlag,
			Baselines: *baseFlag,
			Seed:      *seed,
		}
		if !opt.Disable {
			lambda := spec.RhoPrime / spec.M
			opt.EndTime = *messages / lambda
			opt.Warmup = opt.EndTime / 20
		}
		panel, err := windowctl.Figure7Panel(spec, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		fmt.Println(panel.Format())
		if *chartFlag {
			fmt.Println(panel.Chart(64, 18))
		}
	}
}

func selectPanels(sel string) ([]windowctl.PanelSpec, error) {
	if sel == "all" {
		return windowctl.AllFigure7Panels(), nil
	}
	parts := strings.Split(sel, ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad -panel %q (want \"all\" or \"RHO,M\")", sel)
	}
	rho, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return nil, fmt.Errorf("bad rho in -panel: %v", err)
	}
	m, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return nil, fmt.Errorf("bad M in -panel: %v", err)
	}
	if rho <= 0 || m <= 0 {
		return nil, fmt.Errorf("-panel values must be positive")
	}
	return []windowctl.PanelSpec{{RhoPrime: rho, M: m}}, nil
}
