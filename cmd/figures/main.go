// Command figures regenerates the evaluation of the paper — every panel
// of figure 7 — as text tables: the analytic loss curves (equation 4.7
// for the controlled protocol, the Beneš series for the FCFS baseline,
// the busy-period transform for LCFS) together with corroborating
// simulation points, exactly the content of the paper's six plots.
//
// Usage:
//
//	figures [-panel all|RHO,M] [-sim] [-baselines] [-messages N] [-seed S]
//	        [-parallel] [-workers N]
//
// Examples:
//
//	figures                        # all six panels, analytic only
//	figures -sim                   # with controlled-protocol simulation
//	figures -sim -baselines        # also simulate FCFS and LCFS
//	figures -panel 0.75,25 -sim    # a single panel
//	figures -sim -parallel=false   # force sequential evaluation
//
// Evaluation is parallel by default: the per-panel analytic solves and
// per-(constraint, protocol) simulation runs are fanned over a bounded
// worker pool.  The output is bit-identical to -parallel=false.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"windowctl"
)

func main() {
	panelFlag := flag.String("panel", "all", "panel selector: \"all\" or \"RHO,M\" (e.g. \"0.75,25\")")
	simFlag := flag.Bool("sim", false, "corroborate the controlled curve by simulation")
	baseFlag := flag.Bool("baselines", false, "also simulate the FCFS and LCFS baselines (implies -sim)")
	chartFlag := flag.Bool("chart", false, "render each panel as an ASCII chart too")
	messages := flag.Float64("messages", 1e5, "approximate offered messages per simulation run")
	seed := flag.Uint64("seed", 1983, "simulation seed")
	parallel := flag.Bool("parallel", true, "evaluate panels over a worker pool (output is identical either way)")
	workers := flag.Int("workers", 0, "worker count for -parallel (0 = GOMAXPROCS)")
	flag.Parse()

	specs, err := selectPanels(*panelFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	opt := windowctl.Figure7Options{
		Disable:   !*simFlag && !*baseFlag,
		Baselines: *baseFlag,
		Messages:  *messages,
		Seed:      *seed,
		Workers:   *workers,
	}
	if !*parallel {
		opt.Workers = 1
	}
	panels, err := windowctl.Figure7Panels(specs, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	for _, panel := range panels {
		fmt.Println(panel.Format())
		if *chartFlag {
			fmt.Println(panel.Chart(64, 18))
		}
	}
}

func selectPanels(sel string) ([]windowctl.PanelSpec, error) {
	if sel == "all" {
		return windowctl.AllFigure7Panels(), nil
	}
	parts := strings.Split(sel, ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad -panel %q (want \"all\" or \"RHO,M\")", sel)
	}
	rho, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return nil, fmt.Errorf("bad rho in -panel: %v", err)
	}
	m, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return nil, fmt.Errorf("bad M in -panel: %v", err)
	}
	if rho <= 0 || m <= 0 {
		return nil, fmt.Errorf("-panel values must be positive")
	}
	return []windowctl.PanelSpec{{RhoPrime: rho, M: m}}, nil
}
