// Command figures regenerates the evaluation of the paper — every panel
// of figure 7 — as text tables: the analytic loss curves (equation 4.7
// for the controlled protocol, the Beneš series for the FCFS baseline,
// the busy-period transform for LCFS) together with corroborating
// simulation points, exactly the content of the paper's six plots.
//
// Usage:
//
//	figures [-panel all|RHO,M] [-sim] [-baselines] [-metrics] [-messages N]
//	        [-seed S] [-parallel] [-workers N] [-protocol NAME]
//	        [-degradation] [-error-rates 0,0.01,...]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// Examples:
//
//	figures                        # all six panels, analytic only
//	figures -sim                   # with controlled-protocol simulation
//	figures -sim -baselines        # also simulate FCFS and LCFS
//	figures -panel 0.75,25 -sim    # a single panel
//	figures -sim -metrics          # print per-run slot metrics tables too
//	figures -sim -parallel=false   # force sequential evaluation
//	figures -degradation           # loss vs. feedback-error rate per panel
//	figures -protocol tournament -panel 0.5,25   # a zoo protocol's curve
//
// -protocol swaps which registered protocol (see docs/PROTOCOLS.md) the
// simulated curve runs — against the unchanged analytic curves and
// FCFS/LCFS baselines — in both the figure-7 and -degradation modes;
// empty keeps the paper's controlled protocol.
//
// -degradation switches the harness into its imperfect-feedback mode: for
// every constraint of each selected panel the controlled protocol is
// simulated across a grid of feedback-error rates (-error-rates; all
// three fault kinds — erasures, false collisions, missed collisions — at
// the grid probability), and the panel table shows loss versus error
// rate.  The rate-0 column is bit-identical to the perfect-feedback
// simulation with the same seed; with -metrics the fault and recovery
// counters of every faulty run are printed too, each run's conservation
// invariants verified.
//
// Evaluation is parallel by default: the per-panel analytic solves and
// per-(constraint, protocol) simulation runs are fanned over a bounded
// worker pool.  The output is bit-identical to -parallel=false.
//
// -metrics (which implies -sim) attaches a slot-level collector to every
// simulation run and prints each panel's metrics table — idle / success /
// collision slots, window splits, utilization and the element-(4) discard
// accounting of §4.2; every instrumented run's conservation invariants
// are verified and a violation fails the command.  -cpuprofile and
// -memprofile write pprof profiles of the whole evaluation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"windowctl"
	"windowctl/internal/profiling"
)

func main() {
	panelFlag := flag.String("panel", "all", "panel selector: \"all\" or \"RHO,M\" (e.g. \"0.75,25\")")
	simFlag := flag.Bool("sim", false, "corroborate the controlled curve by simulation")
	baseFlag := flag.Bool("baselines", false, "also simulate the FCFS and LCFS baselines (implies -sim)")
	chartFlag := flag.Bool("chart", false, "render each panel as an ASCII chart too")
	messages := flag.Float64("messages", 1e5, "approximate offered messages per simulation run")
	seed := flag.Uint64("seed", 1983, "simulation seed")
	parallel := flag.Bool("parallel", true, "evaluate panels over a worker pool (output is identical either way)")
	workers := flag.Int("workers", 0, "worker count for -parallel (0 = GOMAXPROCS)")
	metricsFlag := flag.Bool("metrics", false, "collect and print per-run slot metrics (implies -sim; verifies conservation invariants)")
	protoFlag := flag.String("protocol", "", "registered protocol for the simulated curve (implies -sim; empty = controlled): "+strings.Join(windowctl.ProtocolNames(), " | "))
	degradation := flag.Bool("degradation", false, "evaluate loss vs. feedback-error rate instead of the figure-7 curves")
	errorRates := flag.String("error-rates", "", "comma-separated feedback-error grid for -degradation (default 0,0.01,0.02,0.05,0.1,0.2)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	usage := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "figures: "+format+"\n", args...)
		os.Exit(2)
	}
	// Validate numeric flags up front: a negative worker count or an
	// out-of-range probability is a usage error, not a hang or a mid-run
	// failure.
	if *workers < 0 {
		usage("-workers must be >= 0, got %d", *workers)
	}
	if !(*messages > 0) {
		usage("-messages must be positive, got %v", *messages)
	}
	rates, err := parseRates(*errorRates)
	if err != nil {
		usage("%v", err)
	}
	if len(rates) > 0 && !*degradation {
		usage("-error-rates only applies to -degradation")
	}

	stopProfiles, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
		}
	}()

	specs, err := selectPanels(*panelFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(2)
	}
	opt := windowctl.Figure7Options{
		Disable:   !*simFlag && !*baseFlag && !*metricsFlag && *protoFlag == "",
		Baselines: *baseFlag,
		Messages:  *messages,
		Seed:      *seed,
		Workers:   *workers,
		Metrics:   *metricsFlag,
		Protocol:  *protoFlag,
	}
	if !*parallel {
		opt.Workers = 1
	}

	if *degradation {
		dpanels, err := windowctl.DegradationPanels(specs, windowctl.DegradationOptions{
			SimOptions: opt, ErrorRates: rates,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		for _, panel := range dpanels {
			fmt.Println(panel.Format())
			if *metricsFlag {
				fmt.Println(panel.FaultTable())
			}
		}
		return
	}

	panels, err := windowctl.Figure7Panels(specs, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	for _, panel := range panels {
		fmt.Println(panel.Format())
		if *metricsFlag {
			fmt.Println(panel.MetricsTable())
		}
		if *chartFlag {
			fmt.Println(panel.Chart(64, 18))
		}
	}
}

// parseRates parses the -error-rates grid; every value must be a
// probability, and 0 is allowed (it anchors the curve on the baseline).
func parseRates(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -error-rates value %q: %v", part, err)
		}
		if !(v >= 0 && v <= 1) {
			return nil, fmt.Errorf("-error-rates value %v outside [0, 1]", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func selectPanels(sel string) ([]windowctl.PanelSpec, error) {
	if sel == "all" {
		return windowctl.AllFigure7Panels(), nil
	}
	parts := strings.Split(sel, ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad -panel %q (want \"all\" or \"RHO,M\")", sel)
	}
	rho, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return nil, fmt.Errorf("bad rho in -panel: %v", err)
	}
	m, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return nil, fmt.Errorf("bad M in -panel: %v", err)
	}
	if rho <= 0 || m <= 0 {
		return nil, fmt.Errorf("-panel values must be positive")
	}
	return []windowctl.PanelSpec{{RhoPrime: rho, M: m}}, nil
}
