// Command simbench is the simulator benchmark-regression harness.
//
// Run mode (default) times the pinned engine workloads of
// internal/benchcase, measures each engine's steady-state allocations
// per message, prints a table and optionally writes the results as
// JSON:
//
//	go run ./cmd/simbench -out BENCH_5.json
//
// Check mode compares two result files and exits nonzero when any
// workload's ns/message regressed beyond the threshold (CI runs the
// harness on the merge-base and on HEAD on the same machine, then gates
// on this comparison — absolute numbers are hardware-bound, ratios are
// not):
//
//	go run ./cmd/simbench -check -baseline base.json -current head.json -threshold 0.20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"windowctl/internal/benchcase"
	"windowctl/internal/sim"
	"windowctl/internal/sweep"
)

// Result is one timed workload.
type Result struct {
	Name string `json:"name"`
	// Messages is the offered-message count of one run.
	Messages int64 `json:"messages"`
	// NsPerMessage is the best-of-reps wall time divided by Messages.
	NsPerMessage float64 `json:"ns_per_message"`
	// MessagesPerSec is the corresponding throughput.
	MessagesPerSec float64 `json:"messages_per_sec"`
	// AllocsPerMessage is the steady-state allocation rate: the malloc
	// delta between a double-length and a single-length run divided by
	// the message delta, so one-time setup (report, histogram, station
	// bank, buffer growth) cancels out.  Measured for every workload,
	// global and multi-station alike.
	AllocsPerMessage float64 `json:"allocs_per_message"`
}

// Output is the file format.
type Output struct {
	Schema    string   `json:"schema"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Results   []Result `json:"results"`
}

const schemaID = "windowctl-simbench/1"

func main() {
	var (
		check     = flag.Bool("check", false, "compare -baseline against -current instead of running")
		baseline  = flag.String("baseline", "", "baseline JSON (check mode)")
		current   = flag.String("current", "", "current JSON (check mode)")
		threshold = flag.Float64("threshold", 0.20, "allowed ns/message regression fraction (check mode)")
		out       = flag.String("out", "", "write results JSON to this file (run mode)")
		reps      = flag.Int("reps", 5, "timing repetitions per workload; best is kept (run mode)")
	)
	flag.Parse()
	if *check {
		if err := runCheck(*baseline, *current, *threshold); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if err := runBench(*out, *reps); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// timeGlobal returns the best wall time and the message count of cfg.
func timeGlobal(cfg sim.Config, reps int) (time.Duration, int64, error) {
	best := time.Duration(1<<63 - 1)
	var msgs int64
	for r := 0; r < reps; r++ {
		start := time.Now()
		rep, err := sim.RunGlobal(cfg)
		if err != nil {
			return 0, 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
		msgs = rep.Offered
	}
	return best, msgs, nil
}

func timeMulti(cfg sim.MultiConfig, reps int) (time.Duration, int64, error) {
	best := time.Duration(1<<63 - 1)
	var msgs int64
	for r := 0; r < reps; r++ {
		start := time.Now()
		rep, err := sim.RunMultiStation(cfg)
		if err != nil {
			return 0, 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
		msgs = rep.Offered
	}
	return best, msgs, nil
}

// mallocsOf runs fn once and returns the number of heap allocations it
// performed.
func mallocsOf(fn func() error) (uint64, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if err := fn(); err != nil {
		return 0, err
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, nil
}

// steadyAllocs measures an engine's marginal allocations per message:
// allocations and messages of a 2×-length run minus those of a
// 1×-length run.  Setup costs — including a million-station bank —
// cancel; what remains is the steady-state rate the zero-allocation hot
// path promises to keep at zero.  run executes the workload at the
// given EndTime scale and returns its offered-message count.
func steadyAllocs(run func(endScale float64) (int64, error)) (float64, error) {
	var shortMsgs, longMsgs int64
	shortAllocs, err := mallocsOf(func() error {
		var err error
		shortMsgs, err = run(1)
		return err
	})
	if err != nil {
		return 0, err
	}
	longAllocs, err := mallocsOf(func() error {
		var err error
		longMsgs, err = run(2)
		return err
	})
	if err != nil {
		return 0, err
	}
	dm := longMsgs - shortMsgs
	if dm <= 0 {
		return 0, fmt.Errorf("simbench: degenerate message delta %d", dm)
	}
	da := float64(longAllocs) - float64(shortAllocs)
	if da < 0 {
		da = 0 // GC noise can make the long run look cheaper
	}
	return da / float64(dm), nil
}

func steadyAllocsGlobal(cfg sim.Config) (float64, error) {
	return steadyAllocs(func(scale float64) (int64, error) {
		c := cfg
		c.EndTime = scale * cfg.EndTime
		rep, err := sim.RunGlobal(c)
		return rep.Offered, err
	})
}

func steadyAllocsMulti(cfg sim.MultiConfig) (float64, error) {
	return steadyAllocs(func(scale float64) (int64, error) {
		c := cfg
		c.EndTime = scale * cfg.EndTime
		rep, err := sim.RunMultiStation(c)
		return rep.Offered, err
	})
}

// timeSweepCold times one cache-cold sweep: every point simulated, the
// results persisted into a fresh cache directory.  Each repetition gets
// its own directory so no repetition ever sees a warm cache.
func timeSweepCold(space sweep.Space, reps int) (time.Duration, int, error) {
	best := time.Duration(1<<63 - 1)
	var points int
	for r := 0; r < reps; r++ {
		dir, err := os.MkdirTemp("", "simbench-sweep-*")
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		cache, err := sweep.Open(dir)
		if err == nil {
			var outs []sweep.Outcome
			outs, err = sweep.Run(space, sweep.Options{Cache: cache})
			points = len(outs)
		}
		d := time.Since(start)
		os.RemoveAll(dir)
		if err != nil {
			return 0, 0, err
		}
		if d < best {
			best = d
		}
	}
	return best, points, nil
}

// timeSweepWarm times the cache-warm replay: the directory is populated
// once (untimed), then every repetition pays the honest warm cost —
// opening the cache from disk plus answering every point from it.
func timeSweepWarm(space sweep.Space, reps int) (time.Duration, int, error) {
	dir, err := os.MkdirTemp("", "simbench-sweep-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	cache, err := sweep.Open(dir)
	if err != nil {
		return 0, 0, err
	}
	if _, err := sweep.Run(space, sweep.Options{Cache: cache}); err != nil {
		return 0, 0, err
	}
	best := time.Duration(1<<63 - 1)
	var points int
	for r := 0; r < reps; r++ {
		start := time.Now()
		warm, err := sweep.Open(dir)
		if err != nil {
			return 0, 0, err
		}
		outs, err := sweep.Run(space, sweep.Options{Cache: warm})
		if err != nil {
			return 0, 0, err
		}
		if st := warm.Stats(); st.Misses != 0 {
			return 0, 0, fmt.Errorf("simbench: warm sweep missed %d points", st.Misses)
		}
		points = len(outs)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, points, nil
}

func runBench(outPath string, reps int) error {
	o := Output{
		Schema:    schemaID,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
	}
	for _, c := range benchcase.Global() {
		best, msgs, err := timeGlobal(c.Cfg, reps)
		if err != nil {
			return fmt.Errorf("global/%s: %w", c.Name, err)
		}
		apm, err := steadyAllocsGlobal(c.Cfg)
		if err != nil {
			return fmt.Errorf("global/%s: %w", c.Name, err)
		}
		o.Results = append(o.Results, Result{
			Name:             "global/" + c.Name,
			Messages:         msgs,
			NsPerMessage:     float64(best.Nanoseconds()) / float64(msgs),
			MessagesPerSec:   float64(msgs) / best.Seconds(),
			AllocsPerMessage: apm,
		})
	}
	for _, c := range benchcase.Multi() {
		best, msgs, err := timeMulti(c.Cfg, reps)
		if err != nil {
			return fmt.Errorf("multi/%s: %w", c.Name, err)
		}
		apm, err := steadyAllocsMulti(c.Cfg)
		if err != nil {
			return fmt.Errorf("multi/%s: %w", c.Name, err)
		}
		o.Results = append(o.Results, Result{
			Name:             "multi/" + c.Name,
			Messages:         msgs,
			NsPerMessage:     float64(best.Nanoseconds()) / float64(msgs),
			MessagesPerSec:   float64(msgs) / best.Seconds(),
			AllocsPerMessage: apm,
		})
	}
	// Ingest workloads price the wire codec and the loopback TCP ingest
	// protocol per absorbed message.  Steady-state allocations are pinned
	// to zero by internal/wire's AllocsPerRun test, so the column is
	// suppressed rather than re-measured across goroutines and sockets.
	for _, c := range benchcase.Ingest() {
		best := time.Duration(1<<63 - 1)
		var msgs int64
		for r := 0; r < reps; r++ {
			d, m, err := benchcase.RunIngest(c)
			if err != nil {
				return fmt.Errorf("ingest/%s: %w", c.Name, err)
			}
			if d < best {
				best = d
			}
			msgs = m
		}
		o.Results = append(o.Results, Result{
			Name:             "ingest/" + c.Name,
			Messages:         msgs,
			NsPerMessage:     float64(best.Nanoseconds()) / float64(msgs),
			MessagesPerSec:   float64(msgs) / best.Seconds(),
			AllocsPerMessage: -1,
		})
	}
	// Sweep workloads measure the grid driver, so their unit is the grid
	// point, not the message: Messages holds the point count and
	// NsPerMessage is ns/point.  Allocations are not meaningful at grid
	// granularity (a point allocates its report and histogram by design),
	// so the column is suppressed.
	for _, c := range benchcase.Sweep() {
		for _, mode := range []struct {
			name string
			time func(sweep.Space, int) (time.Duration, int, error)
		}{{"cold", timeSweepCold}, {"warm", timeSweepWarm}} {
			best, points, err := mode.time(c.Space, reps)
			if err != nil {
				return fmt.Errorf("sweep/%s-%s: %w", c.Name, mode.name, err)
			}
			o.Results = append(o.Results, Result{
				Name:             "sweep/" + c.Name + "-" + mode.name,
				Messages:         int64(points),
				NsPerMessage:     float64(best.Nanoseconds()) / float64(points),
				MessagesPerSec:   float64(points) / best.Seconds(),
				AllocsPerMessage: -1,
			})
		}
	}
	fmt.Printf("%-24s %12s %14s %12s\n", "workload", "ns/msg", "msgs/sec", "allocs/msg")
	for _, r := range o.Results {
		apm := fmt.Sprintf("%.4f", r.AllocsPerMessage)
		if r.AllocsPerMessage < 0 {
			apm = "-"
		}
		fmt.Printf("%-24s %12.1f %14.0f %12s\n", r.Name, r.NsPerMessage, r.MessagesPerSec, apm)
	}
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(o, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, append(data, '\n'), 0o644)
}

func readOutput(path string) (Output, error) {
	var o Output
	data, err := os.ReadFile(path)
	if err != nil {
		return o, err
	}
	if err := json.Unmarshal(data, &o); err != nil {
		return o, fmt.Errorf("%s: %w", path, err)
	}
	if o.Schema != schemaID {
		return o, fmt.Errorf("%s: schema %q, want %q", path, o.Schema, schemaID)
	}
	return o, nil
}

func runCheck(basePath, curPath string, threshold float64) error {
	if basePath == "" || curPath == "" {
		return fmt.Errorf("simbench: -check needs -baseline and -current")
	}
	base, err := readOutput(basePath)
	if err != nil {
		return err
	}
	cur, err := readOutput(curPath)
	if err != nil {
		return err
	}
	baseBy := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	failed := false
	for _, r := range cur.Results {
		b, ok := baseBy[r.Name]
		if !ok {
			fmt.Printf("%-24s new workload, no baseline\n", r.Name)
			continue
		}
		ratio := r.NsPerMessage / b.NsPerMessage
		status := "ok"
		if ratio > 1+threshold {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-24s %10.1f -> %10.1f ns/msg  (%+.1f%%)  %s\n",
			r.Name, b.NsPerMessage, r.NsPerMessage, (ratio-1)*100, status)
	}
	if failed {
		return fmt.Errorf("simbench: ns/message regressed more than %.0f%%", threshold*100)
	}
	return nil
}
