// Command windowload drives a running windowd with synthetic load and
// reports what the service achieved: a saturation load generator for the
// admission-control story.
//
// Three arrival models:
//
//   - poisson (default): open-loop Poisson at -rate messages/second —
//     batch counts are drawn per tick, so the offered process is Poisson
//     regardless of tick granularity, and rates up to millions of
//     messages/second cost only one small HTTP request per tick.
//   - voice: -stations packet-voice speakers with exponential
//     talkspurt/silence alternation (32 pkt/s during 1 s talkspurts,
//     1.35 s silences — the examples/packetvoice model); -rate is ignored.
//   - sensor: -stations periodic sensors, each reporting once per
//     -period with uniform phase jitter (the examples/sensornet shape);
//     -rate is ignored.
//
// Two transports:
//
//   - http (default): counts ship on windowd's binary endpoint
//     (/ingest.bin, one big-endian uint32 per tick), so the generator
//     adds no parsing load to the system under test.
//   - tcp: counts ship as internal/wire frames over -conns pipelined
//     connections to the target's -listen-tcp plane (address
//     autodiscovered from /config, or set with -tcp-target); per-tick
//     draws split into batch counts of at most -batch messages, and the
//     reported ingest latency is the per-frame round trip from socket
//     write to covering ack.
//
// The generator scrapes /debug/vars before and after the run and prints
// the deltas: achieved throughput, element-(4) shed fraction, channel
// utilization — plus its own ingest-latency percentiles from a
// stats.Histogram.
//
// Exit status: 0 on a clean run, 1 when the target misbehaves (ingest
// rejected, scrape failed), 2 on usage errors.
//
// Usage:
//
//	windowload [-target http://127.0.0.1:8343] [-duration 10s]
//	           [-transport http|tcp] [-source poisson|voice|sensor]
//	           [-rate 1e6] [-stations 50] [-period 1s] [-tick 2ms]
//	           [-conns 4] [-batch 256] [-crc] [-tcp-target ADDR]
//	           [-seed 1]
package main

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"windowctl/internal/metrics"
	"windowctl/internal/rngutil"
	"windowctl/internal/stats"
	"windowctl/internal/wire"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(0)
	case errors.As(err, new(usageError)):
		fmt.Fprintln(os.Stderr, "windowload:", err)
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "windowload:", err)
		os.Exit(1)
	}
}

// usageError marks a command-line validation failure (exit 2).
type usageError struct{ err error }

func (u usageError) Error() string { return u.err.Error() }
func (u usageError) Unwrap() error { return u.err }

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("windowload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", "http://127.0.0.1:8343", "windowd base URL")
	duration := fs.Duration("duration", 10*time.Second, "how long to generate load")
	transport := fs.String("transport", "http", "ingest transport: http | tcp")
	sourceFlag := fs.String("source", "poisson", "arrival model: poisson | voice | sensor")
	rate := fs.Float64("rate", 1e6, "offered messages/second (poisson source)")
	stations := fs.Int("stations", 50, "number of sources (voice and sensor sources)")
	period := fs.Duration("period", time.Second, "per-sensor report period (sensor source)")
	tick := fs.Duration("tick", 2*time.Millisecond, "batching interval: one ingest operation per tick")
	conns := fs.Int("conns", 4, "parallel connections (tcp transport)")
	batch := fs.Int("batch", 256, "max messages per batch count in a TCP frame (tcp transport)")
	crc := fs.Bool("crc", false, "append CRC32C trailers to TCP frames (tcp transport)")
	tcpTarget := fs.String("tcp-target", "", "TCP ingest address (default: autodiscover from the target's /config)")
	seed := fs.Uint64("seed", 1, "random seed for the arrival draws")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usageError{err}
	}
	if fs.NArg() > 0 {
		return usageError{fmt.Errorf("unexpected arguments: %v", fs.Args())}
	}
	if *duration <= 0 || *tick <= 0 || *period <= 0 {
		return usageError{fmt.Errorf("need positive -duration, -tick and -period (got %v, %v, %v)", *duration, *tick, *period)}
	}
	if *rate <= 0 || *stations <= 0 {
		return usageError{fmt.Errorf("need positive -rate and -stations (got %v, %d)", *rate, *stations)}
	}
	if *transport != "http" && *transport != "tcp" {
		return usageError{fmt.Errorf("-transport must be http or tcp, got %q", *transport)}
	}
	if *conns <= 0 || *batch <= 0 {
		return usageError{fmt.Errorf("need positive -conns and -batch (got %d, %d)", *conns, *batch)}
	}
	src, err := newSource(*sourceFlag, *rate, *stations, *period, *tick, *seed)
	if err != nil {
		return usageError{err}
	}

	client := &http.Client{Timeout: 10 * time.Second}
	before, err := scrape(client, *target)
	if err != nil {
		return fmt.Errorf("scraping %s before the run: %w", *target, err)
	}

	// Ingest latency at 100 µs resolution out to 100 ms, overflow beyond.
	lat := stats.NewHistogram(1e-4, 1000)
	var sh shipper
	switch *transport {
	case "http":
		sh = &httpShipper{client: client, target: *target, lat: lat}
	case "tcp":
		addr := *tcpTarget
		if addr == "" {
			if addr, err = discoverTCP(client, *target); err != nil {
				return err
			}
		}
		ts := &tcpShipper{batch: uint32(*batch)}
		for i := 0; i < *conns; i++ {
			c, err := wire.Dial(addr, wire.ClientConfig{
				Credit: 1 << 12, CRC: *crc,
				OnAck: func(rtt time.Duration) { lat.Add(rtt.Seconds()) },
			})
			if err != nil {
				ts.closeAll()
				return fmt.Errorf("dialing tcp ingest %s: %w", addr, err)
			}
			ts.clients = append(ts.clients, c)
		}
		defer ts.closeAll()
		sh = ts
	}

	var sent, ops int64
	start := time.Now()
	ticker := time.NewTicker(*tick)
	defer ticker.Stop()
	for now := start; now.Sub(start) < *duration; now = <-ticker.C {
		n := src.draw()
		if n == 0 {
			continue
		}
		done, err := sh.ship(n)
		ops += done
		if err != nil {
			return fmt.Errorf("after %d operations: %w", ops, err)
		}
		sent += int64(n)
	}
	// Settle outstanding work (flush + acks on tcp) inside the timed span:
	// offered throughput only counts messages the target accounted for.
	if err := sh.finish(); err != nil {
		return fmt.Errorf("settling ingest after %d operations: %w", ops, err)
	}
	elapsed := time.Since(start).Seconds()

	after, err := scrape(client, *target)
	if err != nil {
		return fmt.Errorf("scraping %s after the run: %w", *target, err)
	}

	arr := after.Snap.Arrivals - before.Snap.Arrivals
	tx := after.Snap.Transmissions - before.Snap.Transmissions
	shed := after.Snap.Discards - before.Snap.Discards
	fmt.Fprintf(stdout, "windowload: source=%s transport=%s duration=%.2fs\n", *sourceFlag, *transport, elapsed)
	fmt.Fprintf(stdout, "offered             %d msgs (%.0f msgs/s over %d operations)\n", sent, float64(sent)/elapsed, ops)
	fmt.Fprintf(stdout, "scheduled by target %d msgs (owed backlog %d)\n", arr, after.Engine.OwedArrivals)
	fmt.Fprintf(stdout, "transmitted         %d msgs (%.0f msgs/s achieved)\n", tx, float64(tx)/elapsed)
	if d := tx + shed; d > 0 {
		fmt.Fprintf(stdout, "shed fraction       %.4f (%d element-(4) discards / %d decided)\n", float64(shed)/float64(d), shed, d)
	}
	fmt.Fprintf(stdout, "target virtual time %.0f (backlog %d, conservation %s)\n",
		after.Engine.VirtualNow, after.Engine.Backlog, after.Engine.Conservation)
	if lat.N() > 0 {
		fmt.Fprintf(stdout, "ingest latency      p50=%.3gms p95=%.3gms p99=%.3gms max-bin=%.3gms\n",
			1e3*lat.Quantile(0.5), 1e3*lat.Quantile(0.95), 1e3*lat.Quantile(0.99), 1e3*lat.Quantile(1))
	}
	if after.Engine.Conservation != "ok" {
		return fmt.Errorf("target reports a conservation violation: %s", after.Engine.Conservation)
	}
	if sent > 0 && arr == 0 && after.Engine.OwedArrivals == 0 {
		return fmt.Errorf("target never booked the offered load")
	}
	return nil
}

// shipper moves one tick's worth of messages to the target.  ship
// returns how many ingest operations (HTTP requests or TCP frames) it
// performed; finish settles anything still in flight.
type shipper interface {
	ship(n int) (ops int64, err error)
	finish() error
}

// httpShipper posts one batch count per tick on the binary ingest
// endpoint, timing each request.
type httpShipper struct {
	client *http.Client
	target string
	lat    *stats.Histogram
}

func (h *httpShipper) ship(n int) (int64, error) {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], uint32(n))
	t0 := time.Now()
	resp, err := h.client.Post(h.target+"/ingest.bin", "application/octet-stream", bytes.NewReader(buf[:]))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return 1, fmt.Errorf("ingest rejected: status %d", resp.StatusCode)
	}
	h.lat.Add(time.Since(t0).Seconds())
	return 1, nil
}

func (h *httpShipper) finish() error { return nil }

// tcpShipper frames each tick's draw as batch counts of at most batch
// messages, spreading frames round-robin over pipelined connections.
// Latency lands in the histogram through each client's OnAck callback.
type tcpShipper struct {
	clients []*wire.Client
	batch   uint32
	next    int
	counts  []uint32
}

func (t *tcpShipper) ship(n int) (int64, error) {
	if t.counts == nil {
		t.counts = make([]uint32, 0, wire.DefaultMaxCounts)
	}
	var ops int64
	for n > 0 {
		t.counts = t.counts[:0]
		for n > 0 && len(t.counts) < cap(t.counts) {
			c := n
			if c > int(t.batch) {
				c = int(t.batch)
			}
			t.counts = append(t.counts, uint32(c))
			n -= c
		}
		c := t.clients[t.next%len(t.clients)]
		t.next++
		if err := c.Send(t.counts); err != nil {
			return ops, err
		}
		ops++
	}
	return ops, nil
}

func (t *tcpShipper) finish() error {
	var first error
	for _, c := range t.clients {
		if err := c.Drain(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (t *tcpShipper) closeAll() {
	for _, c := range t.clients {
		c.Close()
	}
}

// discoverTCP asks the target's /config for its bound -listen-tcp
// address.
func discoverTCP(client *http.Client, target string) (string, error) {
	resp, err := client.Get(target + "/config")
	if err != nil {
		return "", fmt.Errorf("discovering tcp ingest via %s/config: %w", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("/config: status %d", resp.StatusCode)
	}
	var cfg struct {
		TCPAddr string `json:"tcp_addr"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		return "", err
	}
	if cfg.TCPAddr == "" {
		return "", fmt.Errorf("target has no TCP ingest plane (windowd -listen-tcp is off); use -tcp-target to override")
	}
	return cfg.TCPAddr, nil
}

// scrapeResult is the subset of /debug/vars the generator reads.
type scrapeResult struct {
	Snap   metrics.Snapshot `json:"windowd"`
	Engine struct {
		VirtualNow   float64 `json:"virtual_now"`
		Backlog      int     `json:"backlog"`
		OwedArrivals int64   `json:"owed_arrivals"`
		Conservation string  `json:"conservation"`
	} `json:"windowd_engine"`
}

func scrape(client *http.Client, target string) (scrapeResult, error) {
	var out scrapeResult
	resp, err := client.Get(target + "/debug/vars")
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("/debug/vars: status %d", resp.StatusCode)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// source draws the number of messages arriving in one tick.
type source interface{ draw() int }

func newSource(model string, rate float64, stations int, period, tick time.Duration, seed uint64) (source, error) {
	switch model {
	case "poisson":
		return &poissonSource{rng: rngutil.New(seed), mean: rate * tick.Seconds()}, nil
	case "voice":
		return newVoiceSource(stations, tick, seed), nil
	case "sensor":
		return newSensorSource(stations, period, tick, seed), nil
	}
	return nil, fmt.Errorf("-source must be poisson, voice or sensor, got %q", model)
}

// poissonSource is the open-loop saturation model: each tick carries a
// Poisson count, so the offered process is Poisson at any rate without
// per-message work.
type poissonSource struct {
	rng  *rngutil.Stream
	mean float64
}

func (p *poissonSource) draw() int { return int(p.rng.Poisson(p.mean)) }

// voiceSource is the examples/packetvoice speech model: each speaker
// alternates exponential talkspurts (mean 1 s, 32 pkt/s) and silences
// (mean 1.35 s); the tick count sums Poisson packet draws over the
// speakers currently talking.
type voiceSource struct {
	rng     *rngutil.Stream
	tick    float64
	on      []bool
	remain  []float64 // seconds until the speaker flips state
	pktTick float64   // mean packets per tick while talking
}

const (
	voicePktRateOn = 32.0
	voiceMeanOn    = 1.0
	voiceMeanOff   = 1.35
)

func newVoiceSource(stations int, tick time.Duration, seed uint64) *voiceSource {
	v := &voiceSource{
		rng: rngutil.New(seed), tick: tick.Seconds(),
		on: make([]bool, stations), remain: make([]float64, stations),
		pktTick: voicePktRateOn * tick.Seconds(),
	}
	activity := voiceMeanOn / (voiceMeanOn + voiceMeanOff)
	for i := range v.on {
		v.on[i] = v.rng.Bernoulli(activity)
		if v.on[i] {
			v.remain[i] = v.rng.Exp(1 / voiceMeanOn)
		} else {
			v.remain[i] = v.rng.Exp(1 / voiceMeanOff)
		}
	}
	return v
}

func (v *voiceSource) draw() int {
	n := 0
	for i := range v.on {
		if v.on[i] {
			n += int(v.rng.Poisson(v.pktTick))
		}
		if v.remain[i] -= v.tick; v.remain[i] <= 0 {
			v.on[i] = !v.on[i]
			if v.on[i] {
				v.remain[i] = v.rng.Exp(1 / voiceMeanOn)
			} else {
				v.remain[i] = v.rng.Exp(1 / voiceMeanOff)
			}
		}
	}
	return n
}

// sensorSource is the examples/sensornet shape: each sensor reports once
// per period, with phases spread uniformly so the aggregate is a smooth
// deterministic-ish stream (burstier than Poisson per sensor, smoother in
// aggregate).
type sensorSource struct {
	tick   float64
	period float64
	phase  []float64 // seconds until the sensor's next report
}

func newSensorSource(stations int, period, tick time.Duration, seed uint64) *sensorSource {
	s := &sensorSource{tick: tick.Seconds(), period: period.Seconds(), phase: make([]float64, stations)}
	rng := rngutil.New(seed)
	for i := range s.phase {
		s.phase[i] = rng.Float64() * s.period
	}
	return s
}

func (s *sensorSource) draw() int {
	n := 0
	for i := range s.phase {
		if s.phase[i] -= s.tick; s.phase[i] <= 0 {
			n++
			s.phase[i] += s.period
		}
	}
	return n
}
