package main

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"math"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// syscallTerm is SIGTERM; a var so the test file stays buildable if a
// future port lacks it.
var syscallTerm = syscall.SIGTERM

// Source models must offer approximately their nominal rate.
func TestSourceRates(t *testing.T) {
	const tick = 2 * time.Millisecond
	ticks := int(10 * time.Second / tick)
	cases := []struct {
		name string
		src  source
		want float64 // msgs/sec
		tol  float64 // relative
	}{
		{"poisson", &poissonSource{rng: nil, mean: 0}, 0, 0}, // replaced below
		{"voice", newVoiceSource(50, tick, 3), 50 * voicePktRateOn * voiceMeanOn / (voiceMeanOn + voiceMeanOff), 0.10},
		{"sensor", newSensorSource(40, time.Second, tick, 3), 40, 0.05},
	}
	ps, err := newSource("poisson", 5e5, 1, time.Second, tick, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases[0].src, cases[0].want, cases[0].tol = ps, 5e5, 0.02
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			total := 0
			for i := 0; i < ticks; i++ {
				n := tc.src.draw()
				if n < 0 {
					t.Fatalf("negative draw %d", n)
				}
				total += n
			}
			got := float64(total) / (float64(ticks) * tick.Seconds())
			if math.Abs(got-tc.want)/tc.want > tc.tol {
				t.Errorf("offered %.0f msgs/s, want %.0f ± %.0f%%", got, tc.want, 100*tc.tol)
			}
		})
	}
}

func TestNewSourceRejectsUnknownMode(t *testing.T) {
	if _, err := newSource("bogus", 1, 1, time.Second, time.Millisecond, 1); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// CLI exit-path contract: validation errors are usage errors; -h is help.
func TestRunFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-duration", "0s"},
		{"-rate", "-5"},
		{"-tick", "-1ms"},
		{"-source", "bogus"},
		{"-transport", "carrier-pigeon"},
		{"-conns", "0"},
		{"-conns", "-3", "-transport", "tcp"},
		{"-batch", "0"},
		{"-stations", "0"},
		{"extra-positional"},
	} {
		err := run(args, io.Discard, io.Discard)
		if err == nil {
			t.Errorf("run(%v) = nil, want usage error", args)
			continue
		}
		if !errors.As(err, new(usageError)) {
			t.Errorf("run(%v): want usageError, got %T: %v", args, err, err)
		}
	}
	if err := run([]string{"-h"}, io.Discard, io.Discard); !errors.Is(err, flag.ErrHelp) {
		t.Errorf("-h: want flag.ErrHelp, got %v", err)
	}
}

// An unreachable target is a runtime failure (exit 1 path), not a panic.
func TestRunUnreachableTarget(t *testing.T) {
	err := run([]string{"-target", "http://127.0.0.1:1", "-duration", "10ms"}, io.Discard, io.Discard)
	if err == nil || errors.As(err, new(usageError)) {
		t.Fatalf("want a runtime error, got %v", err)
	}
}

// Full-stack saturation check: a real windowd subprocess, driven hard by
// the generator over loopback HTTP, must book every offered message
// (scheduled or owed), keep its conservation invariants, and drain
// cleanly on SIGTERM — the CI smoke in miniature, pinned as a Go test.
func TestAgainstLiveWindowd(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess and sleeps")
	}
	bin := t.TempDir() + "/windowd"
	build := exec.Command("go", "build", "-o", bin, "windowctl/cmd/windowd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building windowd: %v\n%s", err, out)
	}
	srv := exec.Command(bin, "-listen", "127.0.0.1:0", "-listen-tcp", "127.0.0.1:0", "-m", "10", "-km", "1", "-load", "0.9")
	var serverOut bytes.Buffer
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	srv.Stdout = &serverOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The bound address is announced on stderr.
	line := make([]byte, 0, 256)
	buf := make([]byte, 1)
	for {
		if _, err := stderr.Read(buf); err != nil {
			t.Fatalf("windowd never announced its address: %v", err)
		}
		if buf[0] == '\n' {
			break
		}
		line = append(line, buf[0])
	}
	go io.Copy(io.Discard, stderr)
	fields := strings.Fields(string(line))
	if len(fields) < 4 {
		t.Fatalf("unexpected announcement %q", line)
	}
	target := "http://" + fields[3]

	var out bytes.Buffer
	err = run([]string{
		"-target", target, "-duration", "500ms", "-tick", "1ms",
		"-rate", "2e6", "-seed", "9",
	}, &out, io.Discard)
	t.Logf("windowload output:\n%s", out.String())
	if err != nil {
		t.Fatalf("load run failed: %v", err)
	}
	if !strings.Contains(out.String(), "conservation ok") {
		t.Error("target did not report balanced books mid-run")
	}

	// Same target over the binary plane, address autodiscovered from
	// /config, at a rate the HTTP path could not carry per-tick.
	out.Reset()
	err = run([]string{
		"-target", target, "-transport", "tcp", "-duration", "500ms",
		"-tick", "1ms", "-rate", "5e6", "-conns", "2", "-seed", "11",
	}, &out, io.Discard)
	t.Logf("windowload tcp output:\n%s", out.String())
	if err != nil {
		t.Fatalf("tcp load run failed: %v", err)
	}
	if !strings.Contains(out.String(), "transport=tcp") {
		t.Error("tcp run did not report its transport")
	}
	if !strings.Contains(out.String(), "conservation ok") {
		t.Error("target did not report balanced books after the tcp run")
	}

	if err := srv.Process.Signal(syscallTerm); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("windowd exited uncleanly after SIGTERM: %v\n%s", err, serverOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("windowd did not drain within 30s of SIGTERM")
	}
	if !strings.Contains(serverOut.String(), "conservation invariants verified") {
		t.Errorf("missing drain verification marker in:\n%s", serverOut.String())
	}
}
