// Command smdpsolve solves the §3 semi-Markov decision model by Howard
// policy iteration (appendix A): it prints the optimal window-length rule
// a*(i) for every pseudo-time state, the minimal long-run loss, and the
// comparison against the paper's min-mean-scheduling-time heuristic for
// policy element (2) — the characterization the paper reported as too
// expensive to compute in 1983.
//
// Usage:
//
//	smdpsolve -k 60 -m 25 -p 0.03
//
// where -k is the constraint in slots, -m the message length in slots and
// -p the per-slot arrival probability (1 − e^(−λτ)).
package main

import (
	"flag"
	"fmt"
	"os"

	"windowctl"
	"windowctl/internal/smdp"
)

func main() {
	k := flag.Int("k", 60, "time constraint K in slots")
	m := flag.Int("m", 25, "message length M in slots")
	p := flag.Float64("p", 0.03, "per-slot arrival probability")
	flag.Parse()

	mod, err := smdp.NewModel(*k, *m, *p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smdpsolve:", err)
		os.Exit(2)
	}
	gStar := windowctl.OptimalWindowContent()
	heurPol := mod.HeuristicPolicy(gStar)
	heur, err := mod.Evaluate(heurPol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smdpsolve:", err)
		os.Exit(1)
	}
	opt, err := mod.PolicyIteration(heurPol, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smdpsolve:", err)
		os.Exit(1)
	}

	fmt.Printf("model: K=%d slots, M=%d slots, P(arrival/slot)=%g\n", *k, *m, *p)
	fmt.Printf("policy iteration converged in %d round(s)\n\n", opt.Iterations)
	fmt.Printf("%-28s %-14s %s\n", "policy", "gain(loss/slot)", "loss fraction")
	fmt.Printf("%-28s %-14.6g %.6f\n", fmt.Sprintf("heuristic (G*=%.3f)", gStar), heur.Gain, heur.LossFraction)
	fmt.Printf("%-28s %-14.6g %.6f\n\n", "optimal (policy iteration)", opt.Gain, opt.LossFraction)

	fmt.Println("optimal window length a*(i) vs heuristic a_h(i) by pseudo-time state i:")
	fmt.Printf("%6s %8s %8s\n", "i", "a*(i)", "a_h(i)")
	for i := 1; i <= *k; i++ {
		marker := ""
		if opt.Policy[i] != heurPol[i] {
			marker = "   <- differs"
		}
		fmt.Printf("%6d %8d %8d%s\n", i, opt.Policy[i], heurPol[i], marker)
	}
}
