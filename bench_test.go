// Benchmarks regenerating the paper's evaluation.  Each table/figure of
// the paper maps onto one benchmark here (see DESIGN.md §5):
//
//   - BenchmarkFigure7/* — the six panels of figure 7 (the paper's whole
//     evaluation): analytic curves plus simulation points; each run logs
//     the panel table and reports the loss values at K = 2·M·τ as custom
//     metrics.
//   - BenchmarkEq47Limits — the paper's analytic sanity checks of
//     equation 4.7 (K→0 and K→∞).
//   - BenchmarkSMDPPolicyIteration — the appendix-A machinery: Howard
//     policy iteration on the §3 decision model.
//   - Benchmark*Ablation — the design-choice ablations called out in
//     DESIGN.md §6 (window size, split rule, sender discard, split
//     fraction) plus the global-vs-multistation fidelity check.
//
// Run with: go test -bench=. -benchmem
package windowctl_test

import (
	"fmt"
	"testing"
	"time"

	"windowctl"
	"windowctl/internal/benchcase"
	"windowctl/internal/numerics"
	"windowctl/internal/queueing"
	"windowctl/internal/sim"
	"windowctl/internal/smdp"
	"windowctl/internal/sweep"
	"windowctl/internal/window"
)

// benchSimEnd keeps per-iteration simulation time moderate; cmd/figures
// runs the long-horizon version.
const benchSimEnd = 2e5

// BenchmarkRunGlobal times the global-view engine on the pinned harness
// workloads (see internal/benchcase): a small-backlog operating point and
// an overloaded large-backlog one.  ns/msg and msgs/sec are derived from
// the offered-message count; run with -benchmem to see the allocation
// profile (steady-state steps are allocation-free — the sim package's
// TestGlobalStepZeroAlloc asserts it).  cmd/simbench runs the same
// workloads for the CI regression gate.
func BenchmarkRunGlobal(b *testing.B) {
	for _, c := range benchcase.Global() {
		c := c
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			var msgs int64
			for i := 0; i < b.N; i++ {
				rep, err := sim.RunGlobal(c.Cfg)
				if err != nil {
					b.Fatal(err)
				}
				msgs = rep.Offered
			}
			perIter := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(perIter*1e9/float64(msgs), "ns/msg")
			b.ReportMetric(float64(msgs)/perIter, "msgs/sec")
		})
	}
}

// BenchmarkRunMultiStation is the discrete-event-engine counterpart of
// BenchmarkRunGlobal.
func BenchmarkRunMultiStation(b *testing.B) {
	for _, c := range benchcase.Multi() {
		c := c
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			var msgs int64
			for i := 0; i < b.N; i++ {
				rep, err := sim.RunMultiStation(c.Cfg)
				if err != nil {
					b.Fatal(err)
				}
				msgs = rep.Offered
			}
			perIter := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(perIter*1e9/float64(msgs), "ns/msg")
			b.ReportMetric(float64(msgs)/perIter, "msgs/sec")
		})
	}
}

// BenchmarkIngest times the binary ingest path on the pinned wire
// workloads (see internal/benchcase): the codec alone, and the full
// loopback TCP protocol at shallow and deep frame batching.  Each
// iteration moves a fixed frame batch end to end, so ns/msg prices the
// whole decode + credit + ack machinery per absorbed message.
// cmd/simbench runs the same workloads for the CI regression gate.
func BenchmarkIngest(b *testing.B) {
	for _, c := range benchcase.Ingest() {
		c := c
		b.Run(c.Name, func(b *testing.B) {
			var msgs int64
			var total time.Duration
			for i := 0; i < b.N; i++ {
				d, m, err := benchcase.RunIngest(c)
				if err != nil {
					b.Fatal(err)
				}
				total += d
				msgs = m
			}
			perIter := total.Seconds() / float64(b.N)
			b.ReportMetric(perIter*1e9/float64(msgs), "ns/msg")
			b.ReportMetric(float64(msgs)/perIter, "msgs/sec")
		})
	}
}

// BenchmarkSweepGrid times the phase-diagram grid driver on the pinned
// sweep workload (see internal/benchcase), cache-cold (every point
// simulated, results persisted) and cache-warm (every point answered
// from the content-addressed store; cmd/simbench asserts the warm run
// is 100% hits).  ns/point and points/sec are the sweep-engine
// counterparts of the per-message metrics above; cmd/simbench records
// the same pair in BENCH_*.json for the CI regression gate.
func BenchmarkSweepGrid(b *testing.B) {
	for _, c := range benchcase.Sweep() {
		c := c
		b.Run(c.Name+"-cold", func(b *testing.B) {
			var points int
			for i := 0; i < b.N; i++ {
				cache, err := sweep.Open(b.TempDir())
				if err != nil {
					b.Fatal(err)
				}
				outs, err := sweep.Run(c.Space, sweep.Options{Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
				points = len(outs)
			}
			perIter := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(perIter*1e9/float64(points), "ns/point")
			b.ReportMetric(float64(points)/perIter, "points/sec")
		})
		b.Run(c.Name+"-warm", func(b *testing.B) {
			dir := b.TempDir()
			cache, err := sweep.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sweep.Run(c.Space, sweep.Options{Cache: cache}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var points int
			for i := 0; i < b.N; i++ {
				warm, err := sweep.Open(dir)
				if err != nil {
					b.Fatal(err)
				}
				outs, err := sweep.Run(c.Space, sweep.Options{Cache: warm})
				if err != nil {
					b.Fatal(err)
				}
				points = len(outs)
			}
			perIter := b.Elapsed().Seconds() / float64(b.N)
			b.ReportMetric(perIter*1e9/float64(points), "ns/point")
			b.ReportMetric(float64(points)/perIter, "points/sec")
		})
	}
}

// BenchmarkFigure7 regenerates each panel of figure 7.
func BenchmarkFigure7(b *testing.B) {
	for _, spec := range windowctl.AllFigure7Panels() {
		spec := spec
		name := fmt.Sprintf("rho=%.2f,M=%g", spec.RhoPrime, spec.M)
		b.Run(name, func(b *testing.B) {
			var panel windowctl.Panel
			for i := 0; i < b.N; i++ {
				var err error
				panel, err = windowctl.Figure7Panel(spec, windowctl.Figure7Options{
					Seed:      7,
					Baselines: true,
					EndTime:   benchSimEnd * spec.M / 25,
					Warmup:    benchSimEnd / 10 * spec.M / 25,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.Log("\n" + panel.Format())
			for _, pt := range panel.Points {
				if pt.KOverM == 2 {
					b.ReportMetric(pt.Controlled, "loss-ctrl@K2M")
					b.ReportMetric(pt.FCFS, "loss-fcfs@K2M")
					b.ReportMetric(pt.LCFS, "loss-lcfs@K2M")
					b.ReportMetric(pt.SimControlled, "loss-sim@K2M")
				}
			}
		})
	}
}

// BenchmarkFigure7AllPanels regenerates the whole figure — all six panels
// with baselines — through the multi-panel driver, sequentially and over
// the default worker pool.  The two variants produce bit-identical panels
// (asserted by the sim package's determinism test); compare their ns/op
// for the parallel speedup.
func BenchmarkFigure7AllPanels(b *testing.B) {
	specs := windowctl.AllFigure7Panels()
	opt := windowctl.Figure7Options{
		Seed:      7,
		Baselines: true,
		EndTime:   benchSimEnd,
		Warmup:    benchSimEnd / 10,
	}
	for _, c := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			o := opt
			o.Workers = c.workers
			for i := 0; i < b.N; i++ {
				if _, err := windowctl.Figure7Panels(specs, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure7Analytic times the batched analytic evaluation of one
// panel's three curves (the shared-convolution multi-K path behind
// Figure7Panel) and reports the FFT convolutions per panel; compare with
// BenchmarkFigure7AnalyticPerK, the one-series-per-point evaluation it
// replaces.
func BenchmarkFigure7Analytic(b *testing.B) {
	model := queueing.ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.75}
	var ks []float64
	for _, km := range sim.DefaultKOverM {
		ks = append(ks, km*25)
	}
	before := numerics.ConvolveFFTCount()
	for i := 0; i < b.N; i++ {
		if _, err := model.LossGrids(ks); err != nil {
			b.Fatal(err)
		}
	}
	convs := numerics.ConvolveFFTCount() - before
	b.ReportMetric(float64(convs)/float64(b.N), "convs/op")
}

// BenchmarkFigure7AnalyticPerK evaluates the same panel point by point,
// paying one convolution series per (constraint, curve).
func BenchmarkFigure7AnalyticPerK(b *testing.B) {
	model := queueing.ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.75}
	before := numerics.ConvolveFFTCount()
	for i := 0; i < b.N; i++ {
		for _, km := range sim.DefaultKOverM {
			k := km * 25
			if _, err := model.ControlledLoss(k); err != nil {
				b.Fatal(err)
			}
			if _, err := model.FCFSLoss(k); err != nil {
				b.Fatal(err)
			}
			if _, err := model.LCFSLoss(k); err != nil {
				b.Fatal(err)
			}
		}
	}
	convs := numerics.ConvolveFFTCount() - before
	b.ReportMetric(float64(convs)/float64(b.N), "convs/op")
}

// BenchmarkEq47Limits exercises the analytic limit checks the paper uses
// to validate equation 4.7: p(loss) → ρ/(1+ρ) as K → 0 and p(loss) → 0 as
// K → ∞.
func BenchmarkEq47Limits(b *testing.B) {
	sysSmall := windowctl.System{M: 25, RhoPrime: 0.5, K: 1e-3}
	sysLarge := windowctl.System{M: 25, RhoPrime: 0.5, K: 25 * 40}
	var small, large windowctl.AnalyticResult
	for i := 0; i < b.N; i++ {
		var err error
		small, err = sysSmall.AnalyticLoss()
		if err != nil {
			b.Fatal(err)
		}
		large, err = sysLarge.AnalyticLoss()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(small.Loss, "loss@K→0")
	b.ReportMetric(small.Rho/(1+small.Rho), "rho/(1+rho)")
	b.ReportMetric(large.Loss, "loss@K→∞")
}

// BenchmarkSMDPPolicyIteration times the appendix-A solution of the §3
// decision model and reports the optimal loss and the heuristic's excess.
func BenchmarkSMDPPolicyIteration(b *testing.B) {
	var opt, heur smdp.Solution
	for i := 0; i < b.N; i++ {
		mod, err := smdp.NewModel(60, 25, 0.03)
		if err != nil {
			b.Fatal(err)
		}
		opt, err = mod.PolicyIteration(nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		heur, err = mod.Evaluate(mod.HeuristicPolicy(windowctl.OptimalWindowContent()))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(opt.LossFraction, "loss-optimal")
	b.ReportMetric(heur.LossFraction, "loss-heuristic")
	b.ReportMetric(float64(opt.Iterations), "pi-rounds")
}

// BenchmarkWindowSizeAblation sweeps policy element (2) around the
// heuristic optimum G* and reports the simulated loss for each setting —
// the sensitivity study behind the §4 heuristic.
func BenchmarkWindowSizeAblation(b *testing.B) {
	gStar := windowctl.OptimalWindowContent()
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		mult := mult
		b.Run(fmt.Sprintf("G=%.2fx", mult), func(b *testing.B) {
			var loss float64
			for i := 0; i < b.N; i++ {
				sys := windowctl.System{
					M: 25, RhoPrime: 0.75, K: 50, Seed: 11,
					WindowG: gStar * mult,
				}
				rep, err := sys.Simulate(windowctl.SimOptions{EndTime: benchSimEnd, Warmup: benchSimEnd / 10})
				if err != nil {
					b.Fatal(err)
				}
				loss = rep.Loss()
			}
			b.ReportMetric(loss, "loss")
		})
	}
}

// BenchmarkSplitRuleAblation compares the Theorem-1 split rule against the
// degraded variants (element (3) ablation).
func BenchmarkSplitRuleAblation(b *testing.B) {
	length := window.FixedG(windowctl.OptimalWindowContent())
	cases := []struct {
		name   string
		policy window.Policy
	}{
		{"older-first", window.Controlled{Length: length}},
		{"newer-first", window.ControlledVariant{Length: length, Side: window.Newer}},
		{"lagged-position", window.ControlledVariant{Length: length, PositionLag: 12}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var loss float64
			for i := 0; i < b.N; i++ {
				rep, err := sim.RunGlobal(sim.Config{
					Policy: c.policy, Tau: 1, M: 25, Lambda: 0.03, K: 50,
					EndTime: benchSimEnd, Warmup: benchSimEnd / 10, Seed: 13,
				})
				if err != nil {
					b.Fatal(err)
				}
				loss = rep.Loss()
			}
			b.ReportMetric(loss, "loss")
		})
	}
}

// BenchmarkDiscardAblation isolates policy element (4): the same FCFS
// schedule with and without sender-side discard.
func BenchmarkDiscardAblation(b *testing.B) {
	length := window.FixedG(windowctl.OptimalWindowContent())
	cases := []struct {
		name   string
		policy window.Policy
	}{
		{"discard-on", window.Controlled{Length: length}},
		{"discard-off", window.FCFS{Length: length}},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var loss, util float64
			for i := 0; i < b.N; i++ {
				rep, err := sim.RunGlobal(sim.Config{
					Policy: c.policy, Tau: 1, M: 25, Lambda: 0.03, K: 50,
					EndTime: benchSimEnd, Warmup: benchSimEnd / 10, Seed: 17,
				})
				if err != nil {
					b.Fatal(err)
				}
				loss, util = rep.Loss(), rep.Utilization
			}
			b.ReportMetric(loss, "loss")
			b.ReportMetric(util, "utilization")
		})
	}
}

// BenchmarkSplitFractionAblation explores the §5 extension of non-binary
// splitting.
func BenchmarkSplitFractionAblation(b *testing.B) {
	for _, frac := range []float64{0.3, 0.5, 0.7} {
		frac := frac
		b.Run(fmt.Sprintf("frac=%.1f", frac), func(b *testing.B) {
			var loss float64
			for i := 0; i < b.N; i++ {
				sys := windowctl.System{
					M: 25, RhoPrime: 0.75, K: 50, Seed: 19, SplitFraction: frac,
				}
				rep, err := sys.Simulate(windowctl.SimOptions{EndTime: benchSimEnd, Warmup: benchSimEnd / 10})
				if err != nil {
					b.Fatal(err)
				}
				loss = rep.Loss()
			}
			b.ReportMetric(loss, "loss")
		})
	}
}

// BenchmarkLengthVariabilityAblation studies Theorem 1's premise (i.i.d.
// message lengths) beyond the paper's fixed-length evaluation: loss under
// fixed, Erlang-4 and exponential lengths of equal mean.
func BenchmarkLengthVariabilityAblation(b *testing.B) {
	cases := []struct {
		name string
		law  windowctl.Distribution
	}{
		{"fixed", nil},
		{"erlang4", windowctl.ErlangLength(4, 25)},
		{"exponential", windowctl.ExponentialLength(25)},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var simLoss, anLoss float64
			for i := 0; i < b.N; i++ {
				sys := windowctl.System{M: 25, RhoPrime: 0.5, K: 75, Seed: 29, TxLengths: c.law}
				rep, err := sys.Simulate(windowctl.SimOptions{EndTime: benchSimEnd, Warmup: benchSimEnd / 10})
				if err != nil {
					b.Fatal(err)
				}
				an, err := sys.AnalyticLoss()
				if err != nil {
					b.Fatal(err)
				}
				simLoss, anLoss = rep.Loss(), an.Loss
			}
			b.ReportMetric(simLoss, "loss-sim")
			b.ReportMetric(anLoss, "loss-analytic")
		})
	}
}

// BenchmarkSimulatorFidelity times the global-view simulator against the
// full multi-station one on the same operating point and reports both
// losses (they must agree statistically; the tests assert it).
func BenchmarkSimulatorFidelity(b *testing.B) {
	sys := windowctl.System{M: 25, RhoPrime: 0.5, K: 50, Seed: 23}
	b.Run("global", func(b *testing.B) {
		var loss float64
		for i := 0; i < b.N; i++ {
			rep, err := sys.Simulate(windowctl.SimOptions{EndTime: benchSimEnd, Warmup: benchSimEnd / 10})
			if err != nil {
				b.Fatal(err)
			}
			loss = rep.Loss()
		}
		b.ReportMetric(loss, "loss")
	})
	b.Run("multistation-16", func(b *testing.B) {
		var loss float64
		for i := 0; i < b.N; i++ {
			rep, err := sys.SimulateDistributed(16, windowctl.SimOptions{EndTime: benchSimEnd, Warmup: benchSimEnd / 10})
			if err != nil {
				b.Fatal(err)
			}
			loss = rep.Loss()
		}
		b.ReportMetric(loss, "loss")
	})
}

// BenchmarkAnalyticCurve times a full analytic loss curve (one panel's
// controlled line) — the eq. 4.7 numerical machinery end to end.
func BenchmarkAnalyticCurve(b *testing.B) {
	model := queueing.ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.75}
	for i := 0; i < b.N; i++ {
		for _, km := range sim.DefaultKOverM {
			if _, err := model.ControlledLoss(km * 25); err != nil {
				b.Fatal(err)
			}
		}
	}
}
