package windowctl_test

import (
	"math"
	"strings"
	"testing"

	"windowctl"
)

func TestQuickstartFlow(t *testing.T) {
	sys := windowctl.System{M: 25, RhoPrime: 0.5, K: 50, Seed: 1}
	an, err := sys.AnalyticLoss()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Simulate(windowctl.SimOptions{EndTime: 3e5, Warmup: 2e4})
	if err != nil {
		t.Fatal(err)
	}
	if an.Loss <= 0 || an.Loss >= 1 {
		t.Fatalf("analytic loss %v", an.Loss)
	}
	if math.Abs(rep.Loss()-an.Loss) > 0.5*an.Loss+0.02 {
		t.Fatalf("sim %v far from analytic %v", rep.Loss(), an.Loss)
	}
}

func TestFacadeDisciplines(t *testing.T) {
	for _, d := range []windowctl.Discipline{windowctl.Controlled, windowctl.FCFS, windowctl.LCFS, windowctl.Random} {
		sys := windowctl.System{M: 25, RhoPrime: 0.25, K: 75, Discipline: d, Seed: 2}
		rep, err := sys.Simulate(windowctl.SimOptions{EndTime: 1e5, Warmup: 1e4})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if rep.Transmissions == 0 {
			t.Fatalf("%v: nothing transmitted", d)
		}
	}
}

func TestFigure7Facade(t *testing.T) {
	panels := windowctl.AllFigure7Panels()
	if len(panels) != 6 {
		t.Fatalf("panels = %d", len(panels))
	}
	panel, err := windowctl.Figure7Panel(
		windowctl.PanelSpec{RhoPrime: 0.5, M: 25, KOverM: []float64{1, 2}},
		windowctl.Figure7Options{Disable: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(panel.Points) != 2 {
		t.Fatalf("points = %d", len(panel.Points))
	}
	if !strings.Contains(panel.Format(), "rho'=0.50") {
		t.Fatal("format header missing")
	}
	many, err := windowctl.Figure7Panels([]windowctl.PanelSpec{
		{RhoPrime: 0.25, M: 25, KOverM: []float64{2}},
		{RhoPrime: 0.75, M: 25, KOverM: []float64{2}},
	}, windowctl.Figure7Options{Disable: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != 2 || len(many[0].Points) != 1 || len(many[1].Points) != 1 {
		t.Fatalf("unexpected multi-panel shape: %+v", many)
	}
	if !(many[0].Points[0].Controlled < many[1].Points[0].Controlled) {
		t.Fatalf("loss should grow with load: %v vs %v",
			many[0].Points[0].Controlled, many[1].Points[0].Controlled)
	}
}

func TestVariableLengthsFacade(t *testing.T) {
	sys := windowctl.System{M: 25, RhoPrime: 0.5, K: 75, Seed: 9,
		TxLengths: windowctl.ExponentialLength(25)}
	an, err := sys.AnalyticLoss()
	if err != nil {
		t.Fatal(err)
	}
	fixed := sys
	fixed.TxLengths = nil
	anFixed, err := fixed.AnalyticLoss()
	if err != nil {
		t.Fatal(err)
	}
	if an.Loss <= anFixed.Loss {
		t.Fatalf("exponential lengths %v should lose more than fixed %v", an.Loss, anFixed.Loss)
	}
	// The other length constructors produce the requested means.
	if m := windowctl.FixedLength(25).Mean(); m != 25 {
		t.Fatalf("FixedLength mean %v", m)
	}
	if m := windowctl.ErlangLength(4, 25).Mean(); math.Abs(m-25) > 1e-9 {
		t.Fatalf("ErlangLength mean %v", m)
	}
}

func TestReplicatedFacade(t *testing.T) {
	sys := windowctl.System{M: 25, RhoPrime: 0.75, K: 25, Seed: 10}
	r, err := sys.SimulateReplicated(4, windowctl.SimOptions{EndTime: 8e4, Warmup: 8e3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 4 || r.LossHalfWidth <= 0 {
		t.Fatalf("replicated facade: %+v", r)
	}
}

func TestHeterogeneousFacade(t *testing.T) {
	sys := windowctl.System{M: 25, RhoPrime: 0.5, K: 50, Seed: 5}
	rep, err := sys.SimulateHeterogeneous([]windowctl.Transform{
		windowctl.PriorityStretch(1.3, 1),
		windowctl.ClockSkew(0.2, 0.1),
		nil,
	}, windowctl.SimOptions{EndTime: 1e5, Warmup: 1e4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Stations) != 3 {
		t.Fatalf("stations = %d", len(rep.Stations))
	}
	if rep.Transmissions == 0 {
		t.Fatal("nothing transmitted")
	}
}

func TestOptimalWindowContent(t *testing.T) {
	g := windowctl.OptimalWindowContent()
	if g < 0.8 || g > 1.5 {
		t.Fatalf("G* = %v implausible", g)
	}
}
