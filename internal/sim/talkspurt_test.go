package sim

import (
	"math"
	"testing"

	"windowctl/internal/station"
	"windowctl/internal/window"
)

// TestTalkspurtSuperpositionNearPoisson validates the packetized-voice
// example's modelling assumption: the superposition of many on/off
// (talkspurt) sources behaves close to Poisson traffic of the same mean
// rate, so the Poisson-based analysis applies.  With *few* sources the
// burstiness should show as extra loss.
func TestTalkspurtSuperpositionNearPoisson(t *testing.T) {
	const (
		m        = 25.0
		k        = 50.0
		rhoPrime = 0.6
	)
	lambda := rhoPrime / m

	base := Config{
		Policy: window.Controlled{Length: window.FixedG(gStar)},
		Tau:    1, M: m, Lambda: lambda, K: k,
		EndTime: 8e5, Warmup: 8e4, Seed: 51,
	}

	run := func(stations int, talkspurt bool) float64 {
		cfg := MultiConfig{Config: base, Stations: stations}
		if talkspurt {
			// Per-source mean rate λ/N; speech-like 40%% activity.
			perStation := lambda / float64(stations)
			cfg.Arrivals = func(int) station.ArrivalProcess {
				return &station.OnOff{
					OnRate:  perStation / 0.4,
					MeanOn:  400, // talkspurts long relative to packet gaps
					MeanOff: 600,
				}
			}
		}
		rep, err := RunMultiStation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Loss()
	}

	poisson := run(32, false)
	manyOnOff := run(32, true)
	fewOnOff := run(3, true)

	// Many superposed talkspurt sources ≈ Poisson.
	if math.Abs(manyOnOff-poisson) > 0.45*poisson+0.02 {
		t.Errorf("32 talkspurt sources loss %.4f far from Poisson %.4f", manyOnOff, poisson)
	}
	// Few bursty sources are worse than Poisson: loss strictly higher.
	if fewOnOff <= poisson {
		t.Errorf("3 bursty sources loss %.4f not above Poisson %.4f", fewOnOff, poisson)
	}
}

func TestArrivalsFactoryValidation(t *testing.T) {
	cfg := MultiConfig{
		Config: Config{
			Policy: window.Controlled{Length: window.FixedG(gStar)},
			Tau:    1, M: 25, Lambda: 0.02, K: 50,
			EndTime: 1e4, Warmup: 1e3, Seed: 1,
		},
		Stations: 2,
		Arrivals: func(int) station.ArrivalProcess { return nil },
	}
	if _, err := RunMultiStation(cfg); err == nil {
		t.Fatal("nil arrival process accepted")
	}
}
