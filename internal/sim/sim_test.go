package sim

import (
	"math"
	"strings"
	"testing"

	"windowctl/internal/queueing"
	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

// gStar is the shared element-(2) optimum.
var gStar = queueing.OptimalWindowContent()

// randomStream builds the common random sequence the Random policy shares
// across stations.
func randomStream(seed uint64) *rngutil.Stream { return rngutil.New(seed) }

func controlledCfg(rhoPrime, m, kOverM float64, seed uint64) Config {
	return Config{
		Policy: window.Controlled{Length: window.FixedG(gStar)},
		Tau:    1, M: m, Lambda: rhoPrime / m, K: kOverM * m,
		EndTime: 1.5e6 * m / 25, Warmup: 5e4 * m / 25, Seed: seed,
	}
}

func TestGlobalMatchesAnalytic(t *testing.T) {
	// The headline corroboration of §4.2: simulated loss tracks eq. 4.7.
	// The analytic model excludes a message's own windowing time from its
	// waiting time (the paper's approximation), so simulation runs
	// slightly above it; we accept 35% relative + 0.01 absolute slack.
	cases := []struct{ rhoPrime, m, kOverM float64 }{
		{0.25, 25, 1}, {0.50, 25, 2}, {0.75, 25, 1}, {0.75, 25, 4},
	}
	for _, c := range cases {
		cfg := controlledCfg(c.rhoPrime, c.m, c.kOverM, 1234)
		rep, err := RunGlobal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		model := queueing.ProtocolModel{Tau: 1, M: c.m, RhoPrime: c.rhoPrime}
		res, err := model.ControlledLoss(c.kOverM * c.m)
		if err != nil {
			t.Fatal(err)
		}
		diff := math.Abs(rep.Loss() - res.Loss)
		if diff > 0.35*res.Loss+0.01 {
			t.Errorf("rho'=%v K/M=%v: sim %.4f vs analytic %.4f", c.rhoPrime, c.kOverM, rep.Loss(), res.Loss)
		}
	}
}

func TestGlobalAccountingIdentity(t *testing.T) {
	cfg := controlledCfg(0.5, 25, 2, 5)
	cfg.EndTime = 3e5
	rep, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered != rep.Decided()+rep.Censored {
		t.Fatalf("accounting broken: offered=%d decided=%d censored=%d",
			rep.Offered, rep.Decided(), rep.Censored)
	}
	if rep.Offered < 1000 {
		t.Fatalf("too few offered messages: %d", rep.Offered)
	}
}

func TestControlledRarelyLate(t *testing.T) {
	// Under the controlled policy a transmitted message can only be late
	// by its own windowing time (excluded from the paper's waiting-time
	// definition), so late transmissions must be a small minority of all
	// losses and of all transmissions.
	cfg := controlledCfg(0.75, 25, 1, 6)
	cfg.EndTime = 5e5
	rep, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lateFrac := float64(rep.LostLate) / float64(rep.Decided())
	if lateFrac > 0.05 {
		t.Fatalf("late fraction %v too high for controlled policy", lateFrac)
	}
	// Any late message is late by at most the resolution of its own
	// process; the bulk of loss must be sender-side discard.
	if rep.LostSender == 0 {
		t.Fatal("no sender discards under overloaded controlled policy")
	}
}

func TestGlobalDeterministicReplay(t *testing.T) {
	cfg := controlledCfg(0.5, 25, 2, 77)
	cfg.EndTime = 2e5
	a, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Offered != b.Offered || a.Lost() != b.Lost() || a.Transmissions != b.Transmissions ||
		a.TrueWait.Mean() != b.TrueWait.Mean() {
		t.Fatalf("replay differs: %v vs %v", a, b)
	}
}

func TestGlobalSeedSensitivity(t *testing.T) {
	cfg := controlledCfg(0.5, 25, 2, 1)
	cfg.EndTime = 2e5
	a, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Offered == b.Offered && a.TrueWait.Mean() == b.TrueWait.Mean() {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestIdleFastForwardIsExact(t *testing.T) {
	// The idle fast-forward must produce bit-identical results to
	// probe-by-probe execution, for every deterministic policy.
	for _, pol := range []window.Policy{
		window.Controlled{Length: window.FixedG(gStar)},
		window.FCFS{Length: window.FixedG(gStar)},
		window.LCFS{Length: window.FixedG(gStar)},
	} {
		cfg := Config{
			Policy: pol, Tau: 1, M: 25, Lambda: 0.004, K: 100, // light load: long idle periods
			EndTime: 3e5, Warmup: 1e4, Seed: 88,
		}
		fast, err := RunGlobal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.DisableFastForward = true
		slow, err := RunGlobal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Offered != slow.Offered || fast.Lost() != slow.Lost() ||
			fast.Transmissions != slow.Transmissions ||
			fast.IdleSlots != slow.IdleSlots ||
			fast.CollisionSlots != slow.CollisionSlots ||
			fast.TrueWait.Mean() != slow.TrueWait.Mean() {
			t.Fatalf("%s: fast-forward diverged:\n fast: %v\n slow: %v", pol.Name(), fast, slow)
		}
	}
}

func TestWaitHistogramConsistentWithLoss(t *testing.T) {
	// For the uncontrolled FCFS baseline every loss is a late
	// transmission (plus end-of-run pending), so the histogram tail at K
	// must approximate the loss.
	cfg := controlledCfg(0.5, 25, 2, 9)
	cfg.Policy = window.FCFS{Length: window.FixedG(gStar)}
	cfg.EndTime = 8e5
	rep, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostSender != 0 {
		t.Fatal("FCFS baseline discarded at sender")
	}
	tail := rep.WaitHist.Tail(cfg.K)
	lateFrac := float64(rep.LostLate) / float64(rep.AcceptedInTime+rep.LostLate)
	if math.Abs(tail-lateFrac) > 0.01 {
		t.Fatalf("histogram tail %v vs late fraction %v", tail, lateFrac)
	}
}

func TestFCFSSimMatchesBenes(t *testing.T) {
	model := queueing.ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.5}
	k := 3.0 * 25
	want, err := model.FCFSLoss(k)
	if err != nil {
		t.Fatal(err)
	}
	cfg := controlledCfg(0.5, 25, 3, 10)
	cfg.Policy = window.FCFS{Length: window.FixedG(gStar)}
	rep, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Loss()-want) > 0.35*want+0.01 {
		t.Fatalf("FCFS sim %.4f vs Beneš %.4f", rep.Loss(), want)
	}
}

func TestLCFSSimMatchesTransform(t *testing.T) {
	model := queueing.ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.5}
	k := 2.0 * 25
	want, err := model.LCFSLoss(k)
	if err != nil {
		t.Fatal(err)
	}
	cfg := controlledCfg(0.5, 25, 2, 11)
	cfg.Policy = window.LCFS{Length: window.FixedG(gStar)}
	rep, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Loss()-want) > 0.35*want+0.015 {
		t.Fatalf("LCFS sim %.4f vs transform %.4f", rep.Loss(), want)
	}
}

func TestControlledBeatsBaselinesInSimulation(t *testing.T) {
	// The paper's central claim, measured rather than modelled.
	base := controlledCfg(0.75, 25, 2, 12)
	base.EndTime = 8e5
	ctrl, err := RunGlobal(base)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := base
	fcfg.Policy = window.FCFS{Length: window.FixedG(gStar)}
	fc, err := RunGlobal(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	lcfg := base
	lcfg.Policy = window.LCFS{Length: window.FixedG(gStar)}
	lc, err := RunGlobal(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Loss() >= fc.Loss() {
		t.Fatalf("controlled %.4f not better than FCFS %.4f", ctrl.Loss(), fc.Loss())
	}
	if ctrl.Loss() >= lc.Loss() {
		t.Fatalf("controlled %.4f not better than LCFS %.4f", ctrl.Loss(), lc.Loss())
	}
}

func TestRandomPolicyRuns(t *testing.T) {
	cfg := controlledCfg(0.5, 25, 2, 13)
	cfg.Policy = window.Random{Length: window.FixedG(gStar), Rng: randomStream(13)}
	cfg.EndTime = 2e5
	rep, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transmissions == 0 {
		t.Fatal("random policy transmitted nothing")
	}
}

func TestCapacityBoundary(t *testing.T) {
	// The analytic capacity (load at which service including overhead
	// saturates) must separate stable from unstable FCFS operation.
	capacity := queueing.Capacity(25)
	below := Config{
		Policy: window.FCFS{Length: window.FixedG(gStar)},
		Tau:    1, M: 25, Lambda: 0.95 * capacity / 25, K: 1e6,
		EndTime: 8e5, Warmup: 1e5, Seed: 71, MaxBacklog: 3000,
	}
	if _, err := RunGlobal(below); err != nil {
		t.Fatalf("5%% below capacity should be stable: %v", err)
	}
	above := below
	above.Lambda = 1.08 * capacity / 25
	above.EndTime = 4e6
	if _, err := RunGlobal(above); err == nil {
		t.Fatal("8% above capacity should blow the backlog bound")
	}
}

func TestBacklogAbort(t *testing.T) {
	// An overloaded baseline (ρ > 1 including overhead) must trip the
	// backlog guard rather than run forever.
	cfg := controlledCfg(1.3, 25, 2, 14)
	cfg.Policy = window.FCFS{Length: window.FixedG(gStar)}
	cfg.MaxBacklog = 200
	cfg.EndTime = 1e6
	if _, err := RunGlobal(cfg); err == nil {
		t.Fatal("overload did not abort")
	}
}

func TestConfigValidation(t *testing.T) {
	good := controlledCfg(0.5, 25, 2, 1)
	cases := []func(*Config){
		func(c *Config) { c.Policy = nil },
		func(c *Config) { c.Policy = window.Controlled{} }, // missing Length
		func(c *Config) { c.Tau = 0 },
		func(c *Config) { c.M = 0 },
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Warmup = c.EndTime },
		func(c *Config) { c.Warmup = -1 },
	}
	for i, mutate := range cases {
		c := good
		mutate(&c)
		if _, err := RunGlobal(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestMultiStationMatchesGlobal(t *testing.T) {
	base := controlledCfg(0.75, 25, 2, 21)
	base.EndTime = 4e5
	mcfg := MultiConfig{Config: base, Stations: 16, VerifyLockstep: true}
	mrep, err := RunMultiStation(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	grep, err := RunGlobal(base)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mrep.Loss()-grep.Loss()) > 0.02 {
		t.Fatalf("multi %.4f vs global %.4f", mrep.Loss(), grep.Loss())
	}
	if math.Abs(mrep.Utilization-grep.Utilization) > 0.02 {
		t.Fatalf("utilization: multi %.4f vs global %.4f", mrep.Utilization, grep.Utilization)
	}
	if math.Abs(mrep.TrueWait.Mean()-grep.TrueWait.Mean()) > 0.1*grep.TrueWait.Mean() {
		t.Fatalf("mean wait: multi %.4f vs global %.4f", mrep.TrueWait.Mean(), grep.TrueWait.Mean())
	}
}

func TestMultiStationLockstepAllPolicies(t *testing.T) {
	policies := []window.Policy{
		window.Controlled{Length: window.FixedG(gStar)},
		window.FCFS{Length: window.FixedG(gStar)},
		window.LCFS{Length: window.FixedG(gStar)},
		window.Random{Length: window.FixedG(gStar), Rng: randomStream(3)},
	}
	for _, p := range policies {
		cfg := MultiConfig{
			Config: Config{
				Policy: p, Tau: 1, M: 25, Lambda: 0.02, K: 50,
				EndTime: 5e4, Warmup: 5e3, Seed: 31,
			},
			Stations: 8, VerifyLockstep: true,
		}
		if _, err := RunMultiStation(cfg); err != nil {
			t.Fatalf("%s: lockstep broken: %v", p.Name(), err)
		}
	}
}

func TestMultiStationSingleStationDegenerate(t *testing.T) {
	// One station holding everything: every multi-message window jams,
	// but the protocol must still deliver.
	cfg := MultiConfig{
		Config: Config{
			Policy: window.Controlled{Length: window.FixedG(gStar)},
			Tau:    1, M: 25, Lambda: 0.02, K: 50,
			EndTime: 1e5, Warmup: 1e4, Seed: 41,
		},
		Stations: 1, VerifyLockstep: true,
	}
	rep, err := RunMultiStation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transmissions == 0 {
		t.Fatal("single-station network transmitted nothing")
	}
	if rep.Offered != rep.Decided()+rep.Censored {
		t.Fatal("accounting identity broken")
	}
}

func TestMultiStationValidation(t *testing.T) {
	cfg := MultiConfig{Config: controlledCfg(0.5, 25, 2, 1), Stations: 0}
	if _, err := RunMultiStation(cfg); err == nil {
		t.Fatal("zero stations accepted")
	}
}

func TestFigure7PanelAnalyticOnly(t *testing.T) {
	panel, err := Figure7Panel(PanelSpec{RhoPrime: 0.5, M: 25}, SimOptions{Disable: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(panel.Points) != len(DefaultKOverM) {
		t.Fatalf("points = %d", len(panel.Points))
	}
	prev := 1.1
	for _, pt := range panel.Points {
		// Controlled loss decreases in K and dominates the baselines.
		if pt.Controlled > prev+1e-9 {
			t.Fatalf("controlled loss not monotone at K/M=%v", pt.KOverM)
		}
		prev = pt.Controlled
		if !math.IsNaN(pt.FCFS) && pt.Controlled > pt.FCFS+5e-4 {
			t.Fatalf("controlled %v worse than FCFS %v at K/M=%v", pt.Controlled, pt.FCFS, pt.KOverM)
		}
		if !math.IsNaN(pt.SimControlled) {
			t.Fatal("simulation ran although disabled")
		}
	}
	if panel.Format() == "" {
		t.Fatal("empty format")
	}
}

func TestFigure7PanelWithSimulation(t *testing.T) {
	spec := PanelSpec{RhoPrime: 0.75, M: 25, KOverM: []float64{1, 2}}
	panel, err := Figure7Panel(spec, SimOptions{Seed: 5, EndTime: 4e5, Warmup: 4e4})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range panel.Points {
		if math.IsNaN(pt.SimControlled) {
			t.Fatal("missing simulation point")
		}
		// Simulation within 50% relative + 0.02 of the analytic curve.
		if math.Abs(pt.SimControlled-pt.Controlled) > 0.5*pt.Controlled+0.02 {
			t.Fatalf("K/M=%v: sim %v far from analytic %v", pt.KOverM, pt.SimControlled, pt.Controlled)
		}
		if pt.SimLo > pt.SimControlled || pt.SimHi < pt.SimControlled {
			t.Fatal("CI does not bracket the estimate")
		}
	}
}

func TestRunReplicated(t *testing.T) {
	cfg := controlledCfg(0.75, 25, 1, 44)
	cfg.EndTime = 1e5
	cfg.Warmup = 1e4
	r, err := RunReplicated(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 6 {
		t.Fatalf("runs = %d", len(r.Runs))
	}
	// Replications differ (distinct seeds) but agree statistically.
	if r.Runs[0].Offered == r.Runs[1].Offered && r.Runs[0].Loss() == r.Runs[1].Loss() {
		t.Fatal("replications identical — seeds not varied")
	}
	if r.LossHalfWidth <= 0 || r.LossHalfWidth > 0.05 {
		t.Fatalf("loss CI half width %v", r.LossHalfWidth)
	}
	// The analytic value should sit within a few half-widths.
	model := queueing.ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.75}
	an, err := model.ControlledLoss(25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.LossMean-an.Loss) > 6*r.LossHalfWidth+0.03 {
		t.Fatalf("replicated loss %v ± %v vs analytic %v", r.LossMean, r.LossHalfWidth, an.Loss)
	}
	if _, err := RunReplicated(cfg, 1); err == nil {
		t.Fatal("single replication accepted")
	}
	bad := cfg
	bad.Tau = 0
	if _, err := RunReplicated(bad, 3); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPanelChart(t *testing.T) {
	panel, err := Figure7Panel(PanelSpec{RhoPrime: 0.75, M: 25}, SimOptions{Disable: true})
	if err != nil {
		t.Fatal(err)
	}
	chart := panel.Chart(64, 18)
	for _, marker := range []string{"C", "F", "L"} {
		if !strings.Contains(chart, marker) {
			t.Fatalf("chart missing %q series:\n%s", marker, chart)
		}
	}
	if !strings.Contains(chart, "rho'=0.75") {
		t.Fatal("chart header missing")
	}
	// The top row (largest loss) must hold the FCFS curve, the paper's
	// worst performer at this load.
	lines := strings.Split(chart, "\n")
	if !strings.Contains(lines[1], "F") {
		t.Fatalf("top row is not FCFS:\n%s", chart)
	}
	// Degenerate sizes are clamped, empty panels render empty.
	if (Panel{}).Chart(5, 2) != "" {
		t.Fatal("empty panel should render empty")
	}
}

func TestReportStringAndCI(t *testing.T) {
	cfg := controlledCfg(0.5, 25, 1, 3)
	cfg.EndTime = 1e5
	rep, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
	lo, hi := rep.LossCI(0.95)
	if lo > rep.Loss() || hi < rep.Loss() {
		t.Fatalf("CI [%v, %v] does not contain %v", lo, hi, rep.Loss())
	}
}
