package sim

import (
	"math/bits"
	"testing"

	"windowctl/internal/rngutil"
)

// TestReplicationSeedDerivation is the regression test for the seed
// derivation in RunReplicated.  The XOR scheme it replaces —
// seed ^ (0x9e3779b97f4a7c15 * (i+1)) — degenerated on adversarial base
// seeds: base 0 made replication seeds pure multiples of the constant,
// base = the constant itself collided replication 1 onto related
// patterns, and neighbouring replications differed in few bits (strongly
// correlated rngutil streams).  The Mix64 avalanche must give pairwise
// distinct, non-degenerate, bit-decorrelated seeds for every base.
func TestReplicationSeedDerivation(t *testing.T) {
	const n = 64
	for _, base := range []uint64{0, 0x9e3779b97f4a7c15, ^uint64(0), 1, 1983} {
		seen := make(map[uint64]int, n)
		var prev uint64
		for i := 0; i < n; i++ {
			s := rngutil.Mix64(base, uint64(i+1))
			if s == 0 {
				t.Errorf("base %#x: replication %d derived the degenerate seed 0", base, i)
			}
			if s == base {
				t.Errorf("base %#x: replication %d derived the base seed itself", base, i)
			}
			if j, dup := seen[s]; dup {
				t.Errorf("base %#x: replications %d and %d collide on %#x", base, j, i, s)
			}
			seen[s] = i
			if i > 0 {
				// Avalanche: adjacent replications must differ in many
				// bits.  A perfect mixer averages 32; the XOR scheme often
				// managed single digits.
				if d := bits.OnesCount64(prev ^ s); d < 10 {
					t.Errorf("base %#x: seeds of replications %d and %d differ in only %d bits", base, i-1, i, d)
				}
			}
			prev = s
		}
	}
}
