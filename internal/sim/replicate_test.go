package sim

import (
	"math/bits"
	"testing"

	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

// TestRunReplicatedMatchesSerialRuns pins the pooled implementation:
// routing replications through the bounded runJobs worker pool (instead
// of one goroutine per replication) must leave every replication's
// report bit-identical to a direct serial RunGlobal call with the same
// derived seed.
func TestRunReplicatedMatchesSerialRuns(t *testing.T) {
	cfg := Config{
		Policy: window.Controlled{Length: window.FixedG(2.6)},
		Tau:    1, M: 25, Lambda: 0.5 / 25, K: 50,
		EndTime: 2e4, Warmup: 1e3, Seed: 1983,
	}
	const n = 9
	rep, err := RunReplicated(cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != n {
		t.Fatalf("got %d runs, want %d", len(rep.Runs), n)
	}
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = rngutil.Mix64(cfg.Seed, uint64(i+1))
		want, err := RunGlobal(c)
		if err != nil {
			t.Fatal(err)
		}
		got := rep.Runs[i]
		if got.Offered != want.Offered || got.Loss() != want.Loss() ||
			got.TrueWait.Mean() != want.TrueWait.Mean() ||
			got.Transmissions != want.Transmissions {
			t.Errorf("replication %d diverged from its serial run: got %v want %v", i, got, want)
		}
	}
}

// TestRunReplicatedErrorCarriesIndex pins the error contract the pooled
// implementation must preserve: a failing replication reports its index.
func TestRunReplicatedErrorCarriesIndex(t *testing.T) {
	cfg := Config{
		Policy: window.FCFS{Length: window.FixedG(2.6)},
		Tau:    1, M: 25, Lambda: 3.0 / 25, K: 1e9, // hopeless overload, no discards
		EndTime: 5e4, Warmup: 0, Seed: 7, MaxBacklog: 64,
	}
	if _, err := RunReplicated(cfg, 3); err == nil {
		t.Fatal("expected a backlog error from an unstable baseline")
	} else if got := err.Error(); !containsReplicationIndex(got) {
		t.Fatalf("error %q does not name a replication index", got)
	}
}

func containsReplicationIndex(s string) bool {
	for i := 0; i+len("replication ") < len(s); i++ {
		if s[i:i+len("replication ")] == "replication " {
			return true
		}
	}
	return false
}

// TestReplicationSeedDerivation is the regression test for the seed
// derivation in RunReplicated.  The XOR scheme it replaces —
// seed ^ (0x9e3779b97f4a7c15 * (i+1)) — degenerated on adversarial base
// seeds: base 0 made replication seeds pure multiples of the constant,
// base = the constant itself collided replication 1 onto related
// patterns, and neighbouring replications differed in few bits (strongly
// correlated rngutil streams).  The Mix64 avalanche must give pairwise
// distinct, non-degenerate, bit-decorrelated seeds for every base.
func TestReplicationSeedDerivation(t *testing.T) {
	const n = 64
	for _, base := range []uint64{0, 0x9e3779b97f4a7c15, ^uint64(0), 1, 1983} {
		seen := make(map[uint64]int, n)
		var prev uint64
		for i := 0; i < n; i++ {
			s := rngutil.Mix64(base, uint64(i+1))
			if s == 0 {
				t.Errorf("base %#x: replication %d derived the degenerate seed 0", base, i)
			}
			if s == base {
				t.Errorf("base %#x: replication %d derived the base seed itself", base, i)
			}
			if j, dup := seen[s]; dup {
				t.Errorf("base %#x: replications %d and %d collide on %#x", base, j, i, s)
			}
			seen[s] = i
			if i > 0 {
				// Avalanche: adjacent replications must differ in many
				// bits.  A perfect mixer averages 32; the XOR scheme often
				// managed single digits.
				if d := bits.OnesCount64(prev ^ s); d < 10 {
					t.Errorf("base %#x: seeds of replications %d and %d differ in only %d bits", base, i-1, i, d)
				}
			}
			prev = s
		}
	}
}
