package sim

import (
	"fmt"
	"math"

	"windowctl/internal/metrics"
)

// Stepper is the incremental run mode of the global-view engine: instead
// of simulating a Poisson arrival stream to a fixed horizon (RunGlobal),
// a Stepper accepts externally injected arrivals and advances one
// decision epoch per Step call, so a long-running process (cmd/windowd)
// can pump it forever, interleaving ingest, scheduling and scrapes.
//
// The simulated clock is virtual channel time in the configuration's
// units; it is decoupled from wall time and advances by at least one
// slot τ per Step.  Injected arrivals are buffered as a bare count and
// materialized into arrival stamps at the start of the next Step — see
// materialize for the stamping discipline — so Inject is O(1) and the
// ingest→schedule path stays allocation-free at steady state.
//
// A Stepper is not safe for concurrent use; the intended shape is one
// pump goroutine owning the Stepper, with other goroutines handing it
// counts through their own synchronization (windowd uses an atomic
// counter drained once per Step).
type Stepper struct {
	g *globalState

	// queued is the count of injected-but-not-yet-materialized arrivals.
	queued int
	// lastStamp is the largest arrival stamp handed to the pending queue;
	// stamps must be strictly increasing (duplicate keys would make a
	// collision unresolvable and split forever).
	lastStamp float64

	checkpoint metrics.Checkpoint
	checker    metrics.ConservationChecker
	finished   bool
	rep        Report
}

// NewStepper builds an incremental engine from the configuration.  The
// configuration is validated as for RunGlobal, with two adjustments:
// ExternalArrivals is forced on (the caller owns the arrival stream) and
// a zero EndTime means an unbounded horizon (+Inf).  A finite EndTime is
// honored: Step returns ErrHorizon once the clock reaches it.
func NewStepper(cfg Config) (*Stepper, error) {
	cfg.ExternalArrivals = true
	if cfg.EndTime == 0 {
		cfg.EndTime = math.Inf(1)
	}
	g, err := newGlobalState(cfg)
	if err != nil {
		return nil, err
	}
	s := &Stepper{g: g}
	s.checkpoint, s.checker = conservationStart(cfg.Collector)
	return s, nil
}

// ErrHorizon is returned by Step once the clock has reached a finite
// configured EndTime; the engine is still intact and Finish may be called.
var ErrHorizon = fmt.Errorf("sim: stepper reached the configured horizon")

// Inject adds n externally observed arrivals to be materialized at the
// next Step.  It panics on negative n and is a no-op for n == 0 or after
// Finish.
func (s *Stepper) Inject(n int) {
	if n < 0 {
		panic("sim: negative arrival count")
	}
	if s.finished {
		return
	}
	s.queued += n
}

// Step materializes the injected arrivals and advances the engine by one
// decision epoch (one windowing process, or one idle slot when there is
// nothing to examine).  The clock advances by at least τ.  Errors other
// than ErrHorizon (backlog overflow, engine invariant violations) leave
// the Stepper unusable except for Finish.
func (s *Stepper) Step() error {
	if s.finished {
		return fmt.Errorf("sim: Step after Finish")
	}
	if s.g.now >= s.g.cfg.EndTime {
		return ErrHorizon
	}
	s.materialize()
	return s.g.step()
}

// materialize converts the buffered arrival count into arrival stamps.
//
// The pending queue requires strictly increasing keys, and the protocol
// needs stamps spread over real channel time (n arrivals on one instant
// would look like an unresolvable burst).  The n stamps are therefore
// stratified uniformly over one slot-length interval (lo, lo+τ] with
// lo = max(lastStamp, now−τ): stamp_i = lo + (i + U_i)·τ/n with
// U_i ∈ (0,1) open, which is strictly increasing by construction, needs
// no sorting and allocates nothing.  Stamps may lead the clock by up to
// τ; such arrivals are invisible to the window machinery until the clock
// passes them, which is exactly how a future arrival should behave.
func (s *Stepper) materialize() {
	n := s.queued
	if n == 0 {
		return
	}
	s.queued = 0
	g := s.g
	lo := g.now - g.cfg.Tau
	if lo < s.lastStamp {
		lo = s.lastStamp
	}
	width := g.cfg.Tau / float64(n)
	for i := 0; i < n; i++ {
		stamp := lo + (float64(i)+g.rng.Float64Open())*width
		if stamp <= s.lastStamp {
			// 1-ulp backstop: with millions of stamps per slot the strata
			// can collapse below float resolution.
			stamp = math.Nextafter(s.lastStamp, math.Inf(1))
		}
		s.lastStamp = stamp
		g.pending.Push(stamp, stamp >= g.cfg.Warmup)
		if stamp >= g.cfg.Warmup {
			g.rep.Offered++
		}
	}
	g.col.RecordArrivals(int64(n))
	if l := g.pending.Len(); l > g.rep.MaxBacklog {
		g.rep.MaxBacklog = l
	}
}

// Now returns the current virtual channel time.
func (s *Stepper) Now() float64 { return s.g.now }

// Backlog returns the number of pending messages, including arrivals
// injected but not yet materialized.
func (s *Stepper) Backlog() int { return s.g.pending.Len() + s.queued }

// CheckNow verifies the conservation invariants against the collector at
// the current step boundary (between Step calls the engine's counters are
// exactly consistent).  The resident count deliberately excludes arrivals
// injected but not yet materialized: they are outside the collector's
// books until materialize records them, so counting them here would make
// the check fail spuriously whenever Inject was called since the last
// Step.  It returns nil when the configuration has no conservation-
// checking collector.
func (s *Stepper) CheckNow() error {
	if s.checker == nil {
		return nil
	}
	return s.checker.CheckConservation(s.checkpoint, int64(s.g.pending.Len()), s.g.now)
}

// Finish finalizes the run at the current clock: messages still pending
// are classified against their age now (not against a horizon), the
// conservation invariants are verified, and the report is returned.  The
// Stepper cannot be stepped afterwards.
func (s *Stepper) Finish() (Report, error) {
	if s.finished {
		return s.rep, nil
	}
	s.finished = true
	s.materialize()
	s.g.finishAt(s.g.now)
	s.rep = s.g.rep
	if s.checker != nil {
		if err := s.checker.CheckConservation(s.checkpoint, int64(s.g.pending.Len()), s.g.now); err != nil {
			return s.rep, fmt.Errorf("sim: %w", err)
		}
	}
	return s.rep, nil
}

// Report returns the finalized report; it is only meaningful after
// Finish.
func (s *Stepper) Report() Report { return s.rep }
