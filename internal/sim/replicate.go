package sim

import (
	"fmt"

	"windowctl/internal/rngutil"
	"windowctl/internal/stats"
)

// Replicated aggregates independent replications of one configuration.
type Replicated struct {
	// Runs holds the per-replication reports.
	Runs []Report
	// LossMean and LossHalfWidth give the Student-t 95% interval of the
	// loss across replications.
	LossMean, LossHalfWidth float64
	// WaitMean and WaitHalfWidth give the same for the mean true wait.
	WaitMean, WaitHalfWidth float64
}

// RunReplicated runs n independent replications of cfg (seeds derived
// from cfg.Seed) and aggregates cross-replication confidence intervals —
// the statistically sound way to report a simulation point, since
// within-run observations are correlated.  Replications run in parallel
// (they share nothing), and results are deterministic regardless of the
// degree of parallelism: replication i always uses the same derived seed.
func RunReplicated(cfg Config, n int) (Replicated, error) {
	if n < 2 {
		return Replicated{}, fmt.Errorf("sim: need >= 2 replications, got %d", n)
	}
	if cfg.RateEstimator != nil {
		return Replicated{}, fmt.Errorf("sim: a shared RateEstimator cannot be replicated; give each run its own")
	}
	if cfg.Collector != nil {
		return Replicated{}, fmt.Errorf("sim: a shared Collector cannot be replicated (replications run concurrently); collect per run and Merge instead")
	}
	// Replications run over the bounded runJobs pool (the PR-1 worker
	// pool behind Figure7Panels): min(n, GOMAXPROCS) goroutines pulling
	// jobs, instead of the n up-front goroutines (gated only after
	// spawning) this replaces — a million-replication request now costs
	// a handful of stacks, not a million.  Job i always uses the seed
	// derived from its own index, so results are bit-identical at any
	// degree of parallelism.
	runs := make([]Report, n)
	jobs := make([]func() error, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = func() error {
			c := cfg
			// Distinct, deterministic seeds per replication.  Mix64's
			// SplitMix64 avalanche keeps adjacent replications
			// decorrelated and never collides to a degenerate seed — the
			// raw XOR it replaces gave correlated streams to neighbouring
			// replications and mapped particular base seeds to seed 0.
			c.Seed = rngutil.Mix64(cfg.Seed, uint64(i+1))
			if c.Faults.Enabled() {
				// Replications are independent fault-schedule draws too.
				c.Faults.Seed = rngutil.Mix64(cfg.Faults.Seed, uint64(i+1), degradationFaultTag)
			}
			var err error
			runs[i], err = RunGlobal(c)
			if err != nil {
				return fmt.Errorf("replication %d: %w", i, err)
			}
			return nil
		}
	}
	if err := runJobs(jobs, 0); err != nil {
		return Replicated{}, err
	}
	out := Replicated{Runs: runs}
	losses := make([]float64, 0, n)
	waits := make([]float64, 0, n)
	for i := range runs {
		losses = append(losses, runs[i].Loss())
		waits = append(waits, runs[i].TrueWait.Mean())
	}
	var err error
	out.LossMean, out.LossHalfWidth, err = stats.MeanCI(losses, 0.95)
	if err != nil {
		return Replicated{}, err
	}
	out.WaitMean, out.WaitHalfWidth, err = stats.MeanCI(waits, 0.95)
	if err != nil {
		return Replicated{}, err
	}
	return out, nil
}
