package sim

import (
	"fmt"
	"runtime"
	"sync"

	"windowctl/internal/rngutil"
	"windowctl/internal/stats"
)

// Replicated aggregates independent replications of one configuration.
type Replicated struct {
	// Runs holds the per-replication reports.
	Runs []Report
	// LossMean and LossHalfWidth give the Student-t 95% interval of the
	// loss across replications.
	LossMean, LossHalfWidth float64
	// WaitMean and WaitHalfWidth give the same for the mean true wait.
	WaitMean, WaitHalfWidth float64
}

// RunReplicated runs n independent replications of cfg (seeds derived
// from cfg.Seed) and aggregates cross-replication confidence intervals —
// the statistically sound way to report a simulation point, since
// within-run observations are correlated.  Replications run in parallel
// (they share nothing), and results are deterministic regardless of the
// degree of parallelism: replication i always uses the same derived seed.
func RunReplicated(cfg Config, n int) (Replicated, error) {
	if n < 2 {
		return Replicated{}, fmt.Errorf("sim: need >= 2 replications, got %d", n)
	}
	if cfg.RateEstimator != nil {
		return Replicated{}, fmt.Errorf("sim: a shared RateEstimator cannot be replicated; give each run its own")
	}
	if cfg.Collector != nil {
		return Replicated{}, fmt.Errorf("sim: a shared Collector cannot be replicated (replications run concurrently); collect per run and Merge instead")
	}
	runs := make([]Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := cfg
			// Distinct, deterministic seeds per replication.  Mix64's
			// SplitMix64 avalanche keeps adjacent replications
			// decorrelated and never collides to a degenerate seed — the
			// raw XOR it replaces gave correlated streams to neighbouring
			// replications and mapped particular base seeds to seed 0.
			c.Seed = rngutil.Mix64(cfg.Seed, uint64(i+1))
			if c.Faults.Enabled() {
				// Replications are independent fault-schedule draws too.
				c.Faults.Seed = rngutil.Mix64(cfg.Faults.Seed, uint64(i+1), degradationFaultTag)
			}
			runs[i], errs[i] = RunGlobal(c)
		}(i)
	}
	wg.Wait()
	out := Replicated{Runs: runs}
	losses := make([]float64, 0, n)
	waits := make([]float64, 0, n)
	for i, err := range errs {
		if err != nil {
			return Replicated{}, fmt.Errorf("replication %d: %w", i, err)
		}
		losses = append(losses, runs[i].Loss())
		waits = append(waits, runs[i].TrueWait.Mean())
	}
	var err error
	out.LossMean, out.LossHalfWidth, err = stats.MeanCI(losses, 0.95)
	if err != nil {
		return Replicated{}, err
	}
	out.WaitMean, out.WaitHalfWidth, err = stats.MeanCI(waits, 0.95)
	if err != nil {
		return Replicated{}, err
	}
	return out, nil
}
