package sim

import (
	"math"
	"testing"

	"windowctl/internal/window"
)

// TestAdaptiveRateConvergesToTruth: an estimator seeded an order of
// magnitude wrong must converge to the true arrival rate from channel
// observations alone.
func TestAdaptiveRateConvergesToTruth(t *testing.T) {
	lambda := 0.03
	for _, wrong := range []float64{lambda * 10, lambda / 10} {
		est := window.NewRateEstimator(wrong, 2000)
		cfg := Config{
			Policy: window.Controlled{Length: window.FixedG(gStar)},
			Tau:    1, M: 25, Lambda: lambda, K: 50,
			EndTime: 4e5, Warmup: 4e4, Seed: 61,
			RateEstimator: est,
		}
		if _, err := RunGlobal(cfg); err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.Rate()-lambda) > 0.25*lambda {
			t.Fatalf("seeded at %v: estimate %v, truth %v", wrong, est.Rate(), lambda)
		}
		if !est.Seeded() {
			t.Fatal("estimator never observed anything")
		}
	}
}

// TestAdaptiveLossNearOracle: operating on the estimated rate must cost
// little versus knowing λ′ exactly.
func TestAdaptiveLossNearOracle(t *testing.T) {
	lambda := 0.03
	base := Config{
		Policy: window.Controlled{Length: window.FixedG(gStar)},
		Tau:    1, M: 25, Lambda: lambda, K: 50,
		EndTime: 8e5, Warmup: 1e5, Seed: 62,
	}
	oracle, err := RunGlobal(base)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := base
	adaptive.RateEstimator = window.NewRateEstimator(lambda*5, 2000)
	arep, err := RunGlobal(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(arep.Loss()-oracle.Loss()) > 0.2*oracle.Loss()+0.01 {
		t.Fatalf("adaptive loss %.4f vs oracle %.4f", arep.Loss(), oracle.Loss())
	}
}

func TestRateEstimatorUnit(t *testing.T) {
	e := window.NewRateEstimator(1, 10)
	// Constant-density observations pull the estimate to that density.
	for i := 0; i < 200; i++ {
		e.Observe(2, 10) // density 0.2
	}
	if math.Abs(e.Rate()-0.2) > 0.01 {
		t.Fatalf("estimate %v, want 0.2", e.Rate())
	}
	// Zero-measure observations are ignored.
	before := e.Rate()
	e.Observe(5, 0)
	if e.Rate() != before {
		t.Fatal("zero-measure observation changed the estimate")
	}
	// Long runs of empty observations floor at a tiny positive rate.
	for i := 0; i < 10000; i++ {
		e.Observe(0, 100)
	}
	if e.Rate() <= 0 {
		t.Fatal("estimate collapsed to zero")
	}
	for _, fn := range []func(){
		func() { window.NewRateEstimator(0, 1) },
		func() { window.NewRateEstimator(1, 0) },
		func() { e.Observe(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
