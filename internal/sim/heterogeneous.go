package sim

import (
	"fmt"
	"math"

	"windowctl/internal/channel"
	"windowctl/internal/des"
	"windowctl/internal/rngutil"
	"windowctl/internal/station"
	"windowctl/internal/stats"
	"windowctl/internal/window"
)

// Transform perturbs a station's *membership test*: the station transmits
// in a slot when it holds a pending message inside the transformed window
// rather than the commonly agreed one.  It models the §5 extensions the
// paper leaves as future work:
//
//   - station priority via per-station window sizes (a high-priority
//     station stretches its membership window and therefore joins more
//     probes, getting served earlier), and
//   - asynchronous operation (a clock-skewed station sees every window
//     shifted by its skew; a guard band shrinks the window symmetrically
//     to reduce boundary disagreements).
//
// The base protocol state machine stays common — the transform only
// changes who transmits — so this models small per-station perturbations
// of a synchronized system, the regime Molle's asynchronous analysis
// addresses.
type Transform func(w window.Window) window.Window

// IdentityTransform leaves the window unchanged (a perfectly synchronized
// station).
func IdentityTransform() Transform {
	return func(w window.Window) window.Window { return w }
}

// PriorityStretch scales the membership window's length by factor around
// its newest edge: factor > 1 raises the station's priority (it answers
// probes for a wider slice of the past), factor < 1 lowers it.  Below the
// length floor the station answers truthfully — without the floor, a
// stretched station can answer *every* probe of a contracting split
// sequence whose true occupant keeps answering too, and collision
// resolution livelocks (a genuine failure mode of naive per-station window
// sizes, worth knowing about when exploring the paper's §5 suggestion).
func PriorityStretch(factor, floor float64) Transform {
	if factor <= 0 {
		panic("sim: PriorityStretch needs a positive factor")
	}
	if floor <= 0 {
		panic("sim: PriorityStretch needs a positive length floor")
	}
	return func(w window.Window) window.Window {
		if w.Len() < floor {
			return w
		}
		return window.Window{Start: w.End - factor*w.Len(), End: w.End}
	}
}

// ClockSkew shifts the membership window by skew (the station's clock
// error) and symmetrically shrinks it by guard on both sides (Molle-style
// guard band).  A message near a window boundary may then be missed by
// its own station or claimed in the wrong slot — exactly the failure mode
// that makes asynchronous operation hard.
func ClockSkew(skew, guard float64) Transform {
	if guard < 0 {
		panic("sim: negative guard band")
	}
	return func(w window.Window) window.Window {
		return window.Window{Start: w.Start + skew + guard, End: w.End + skew - guard}
	}
}

// HeterogeneousConfig configures a multi-station run in which stations
// apply per-station membership transforms.
type HeterogeneousConfig struct {
	Config
	// Transforms gives one Transform per station (its length fixes the
	// station count; nil entries mean identity).
	Transforms []Transform
}

// StationReport carries per-station outcome counts.
type StationReport struct {
	// Offered counts measured arrivals at this station.
	Offered int64
	// AcceptedInTime, LostSender, LostLate and LostPending partition the
	// decided messages as in Report.
	AcceptedInTime, LostSender, LostLate, LostPending int64
	// TrueWait accumulates this station's transmitted-message waits.
	TrueWait stats.Accumulator
}

// Loss returns the station's measured loss fraction.
func (s StationReport) Loss() float64 {
	d := s.AcceptedInTime + s.LostSender + s.LostLate + s.LostPending
	if d == 0 {
		return 0
	}
	return float64(s.LostSender+s.LostLate+s.LostPending) / float64(d)
}

// HeterogeneousReport extends Report with per-station breakdowns.
type HeterogeneousReport struct {
	Report
	// Stations holds one report per station.
	Stations []StationReport
}

// RunHeterogeneous simulates stations whose membership tests are
// perturbed by per-station Transforms.  The common protocol state machine
// (window agreement, splitting, t_past) is driven by true channel
// feedback, as in RunMultiStation; a perturbed station may fail to answer
// a probe containing its message (the message region is then marked clear
// by everyone and the message strands until the end of the run) or answer
// a probe it should not (extra collisions).  Stranded messages are
// counted lost when their age exceeds K.
func RunHeterogeneous(cfg HeterogeneousConfig) (HeterogeneousReport, error) {
	if err := cfg.validate(); err != nil {
		return HeterogeneousReport{}, err
	}
	n := len(cfg.Transforms)
	if n < 1 {
		return HeterogeneousReport{}, fmt.Errorf("sim: need at least one transform/station")
	}
	h := &heteroState{cfg: cfg, kernel: des.New(), ch: channel.New(cfg.Tau, cfg.M*cfg.Tau)}
	h.rep.Report.WaitHist = stats.NewHistogram(cfg.Tau, int(cfg.K/cfg.Tau)+64)
	h.rep.Stations = make([]StationReport, n)
	root := rngutil.New(cfg.Seed)
	var nextID int64
	perStation := cfg.Lambda / float64(n)
	for i := 0; i < n; i++ {
		h.stations = append(h.stations, station.New(i, station.Poisson{Rate: perStation}, root.Spawn(), &nextID))
		tr := cfg.Transforms[i]
		if tr == nil {
			tr = IdentityTransform()
		}
		h.transforms = append(h.transforms, tr)
	}
	h.tracker = window.NewTracker(0, discardConstraint(cfg.Policy, cfg.K), cfg.Policy.Discards())
	h.maxBacklog = cfg.MaxBacklog
	if h.maxBacklog <= 0 {
		h.maxBacklog = 1 << 20
	}
	h.discardFn = func(d station.Message) {
		if h.measured(d.Arrival) {
			h.rep.LostSender++
			h.rep.Stations[d.Origin].LostSender++
		}
	}

	h.slotFn = h.slot

	h.kernel.Schedule(0, 0, h.slotFn)
	h.kernel.RunUntil(cfg.EndTime)
	if h.runErr != nil {
		return h.rep, h.runErr
	}
	h.finish()
	return h.rep, nil
}

type heteroState struct {
	cfg        HeterogeneousConfig
	kernel     *des.Simulator
	ch         *channel.Channel
	stations   []*station.Station
	transforms []Transform
	tracker    *window.Tracker
	resolver   window.Resolver // recycled via Reset each decision epoch
	inProcess  bool
	maxBacklog int
	rep        HeterogeneousReport
	lastTxEnd  float64
	runErr     error
	discardFn  func(station.Message)
	slotFn     func() // h.slot bound once; a fresh method value per Schedule would allocate every slot
}

func (h *heteroState) measured(arrival float64) bool {
	return arrival >= h.cfg.Warmup && arrival < h.cfg.EndTime
}

func (h *heteroState) slot() {
	now := h.kernel.Now()
	if now >= h.cfg.EndTime {
		return
	}
	backlog := 0
	for _, s := range h.stations {
		s.GenerateUntil(now)
		backlog += s.QueueLen()
	}
	// A perturbed membership test can strand messages forever (see the
	// RunHeterogeneous doc), so without element-(4) discards the backlog
	// of a hopelessly misconfigured run grows without bound; the cap
	// aborts such runs just as the other engines do.
	if backlog > h.maxBacklog {
		h.runErr = fmt.Errorf("sim: backlog exceeded %d at t=%v", h.maxBacklog, now)
		h.kernel.Stop()
		return
	}

	if !h.inProcess {
		if h.cfg.Policy.Discards() {
			horizon := h.tracker.Horizon(now)
			for _, s := range h.stations {
				s.DiscardArrivedBeforeFunc(horizon, h.discardFn)
			}
		}
		view := h.tracker.View(now, h.cfg.Tau, h.cfg.Lambda)
		// Inconsistent stations can produce phantom collisions; bound the
		// splitting so resolution gives up instead of looping (see
		// window.View.MinSplitLen).
		view.MinSplitLen = h.cfg.Tau / 1024
		if view.TNewest-view.TPast <= 0 {
			h.kernel.ScheduleAfter(h.cfg.Tau, 0, h.slotFn)
			return
		}
		if err := h.resolver.Reset(h.cfg.Policy, view); err != nil {
			h.runErr = err
			h.kernel.Stop()
			return
		}
		h.inProcess = true
	}

	enabled := h.resolver.Enabled()
	totalTx := 0
	txStation := -1
	for i, s := range h.stations {
		member := h.transforms[i](enabled)
		if member.Empty() {
			continue
		}
		if c := s.CountIn(member); c > 0 {
			totalTx += c
			txStation = i
		}
	}
	fb, dur := h.ch.ResolveSlot(totalTx)
	h.resolver.OnFeedback(fb)

	if fb == window.Success {
		member := h.transforms[txStation](enabled)
		msg, ok := h.stations[txStation].PopOldestIn(member)
		if !ok {
			h.runErr = fmt.Errorf("sim: heterogeneous success without a message")
			h.kernel.Stop()
			return
		}
		h.rep.Transmissions++
		trueWait := now - msg.Arrival
		if h.measured(msg.Arrival) {
			h.rep.TrueWait.Add(trueWait)
			h.rep.Stations[txStation].TrueWait.Add(trueWait)
			h.rep.WaitHist.Add(trueWait)
			schedStart := math.Max(h.lastTxEnd, msg.Arrival)
			h.rep.SchedulingSlots.Add((now - schedStart) / h.cfg.Tau)
			if trueWait > h.cfg.K {
				h.rep.LostLate++
				h.rep.Stations[txStation].LostLate++
			} else {
				h.rep.AcceptedInTime++
				h.rep.Stations[txStation].AcceptedInTime++
			}
		}
		h.lastTxEnd = now + dur
	}

	if h.resolver.Done() {
		h.tracker.Commit(now+dur, h.resolver.Examined())
		h.inProcess = false
	}
	h.kernel.ScheduleAfter(dur, 0, h.slotFn)
}

func (h *heteroState) finish() {
	end := h.cfg.EndTime
	all := window.Window{Start: 0, End: end + 1}
	for i, s := range h.stations {
		for {
			msg, ok := s.PopOldestIn(all)
			if !ok {
				break
			}
			if !h.measured(msg.Arrival) {
				continue
			}
			if end-msg.Arrival > h.cfg.K {
				h.rep.LostPending++
				h.rep.Stations[i].LostPending++
			} else {
				h.rep.Censored++
			}
			h.rep.EndBacklog++
		}
	}
	st := h.ch.Stats()
	h.rep.IdleSlots = st.IdleSlots
	h.rep.CollisionSlots = st.CollisionSlots
	h.rep.Utilization = st.Utilization()
	h.rep.Offered = h.rep.Decided() + h.rep.Censored
	for i := range h.rep.Stations {
		sr := &h.rep.Stations[i]
		sr.Offered = sr.AcceptedInTime + sr.LostSender + sr.LostLate + sr.LostPending
	}
}
