package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"windowctl/internal/metrics"
	"windowctl/internal/window"
)

func collectorFor(cfg Config) *metrics.SlotMetrics {
	return metrics.NewSlotMetrics(cfg.Tau, int(cfg.K/cfg.Tau)+64)
}

// TestConservationMatrix runs the global simulator instrumented across a
// (ρ′, M, K, discipline) matrix.  RunGlobal itself verifies both
// conservation invariants at the end of every instrumented run and fails
// on violation, so a nil error is the assertion; the matrix makes sure
// the invariants hold across loads, constraints and policies (with and
// without element-(4) discards, with and without the idle fast-forward).
func TestConservationMatrix(t *testing.T) {
	for _, rho := range []float64{0.25, 0.75} {
		for _, m := range []float64{25, 100} {
			for _, km := range []float64{1, 4} {
				for _, disc := range []string{"controlled", "fcfs", "lcfs"} {
					name := fmt.Sprintf("rho=%v/M=%v/KoverM=%v/%s", rho, m, km, disc)
					t.Run(name, func(t *testing.T) {
						g := window.FixedG(1.1)
						var pol window.Policy
						switch disc {
						case "controlled":
							pol = window.Controlled{Length: g}
						case "fcfs":
							pol = window.FCFS{Length: g}
						case "lcfs":
							pol = window.LCFS{Length: g}
						}
						cfg := Config{
							Policy: pol, Tau: 1, M: m, Lambda: rho / m,
							K: km * m, EndTime: 4e4, Warmup: 2e3,
							Seed: 0xFACE ^ uint64(int(rho*100)<<8) ^ uint64(int(km)),
						}
						sm := collectorFor(cfg)
						cfg.Collector = sm
						rep, err := RunGlobal(cfg)
						if err != nil {
							t.Fatalf("instrumented run failed: %v", err)
						}
						if sm.Arrivals == 0 || sm.Transmissions == 0 {
							t.Fatalf("collector saw nothing: %+v", sm.Snapshot())
						}
						// The collector sees every slot the report counts (it
						// additionally sees the pre-protocol startup slots).
						if sm.IdleSlots < rep.IdleSlots {
							t.Errorf("collector idle slots %d < report %d", sm.IdleSlots, rep.IdleSlots)
						}
						if sm.CollisionSlots != rep.CollisionSlots {
							t.Errorf("collector collision slots %d != report %d", sm.CollisionSlots, rep.CollisionSlots)
						}
						if sm.Transmissions != rep.Transmissions {
							t.Errorf("collector transmissions %d != report %d", sm.Transmissions, rep.Transmissions)
						}
					})
				}
			}
		}
	}
}

// lossyCollector drops one arrival from every reported batch — a
// deliberately broken Collector standing in for an accounting bug.  The
// embedded SlotMetrics still provides Checkpoint/CheckConservation, so
// the simulators verify it.
type lossyCollector struct{ *metrics.SlotMetrics }

func (l lossyCollector) RecordArrivals(n int64) { l.SlotMetrics.RecordArrivals(n - 1) }

// TestConservationDetectsViolation makes sure the end-of-run check is
// real: a collector that misses events during the run must fail it.
func TestConservationDetectsViolation(t *testing.T) {
	cfg := Config{
		Policy: window.Controlled{Length: window.FixedG(1.1)},
		Tau:    1, M: 25, Lambda: 0.02, K: 50, EndTime: 1e4, Seed: 7,
	}
	cfg.Collector = lossyCollector{collectorFor(cfg)}
	_, err := RunGlobal(cfg)
	if err == nil || !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("run with lossy collector returned %v, want conservation error", err)
	}
	// A dirty-but-consistent collector is fine: pre-run counts are
	// checkpointed away (the sequential-reuse pattern of cmd/sweep).
	sm := collectorFor(cfg)
	sm.RecordArrivals(3)
	cfg.Collector = sm
	if _, err := RunGlobal(cfg); err != nil {
		t.Fatalf("checkpointed reuse failed: %v", err)
	}
}

// TestMetricsReportAgreement pins the exact relationship between the
// collector's channel-level accounting and the warmup-filtered Report:
// with Warmup = 0 the two views count the same messages, so every
// message counter — and therefore the loss — agrees exactly.
func TestMetricsReportAgreement(t *testing.T) {
	for _, disc := range []string{"controlled", "fcfs"} {
		t.Run(disc, func(t *testing.T) {
			g := window.FixedG(1.1)
			var pol window.Policy = window.Controlled{Length: g}
			if disc == "fcfs" {
				pol = window.FCFS{Length: g}
			}
			cfg := Config{
				Policy: pol, Tau: 1, M: 25, Lambda: 0.03, K: 50,
				EndTime: 5e4, Warmup: 0, Seed: 99,
			}
			sm := collectorFor(cfg)
			cfg.Collector = sm
			rep, err := RunGlobal(cfg)
			if err != nil {
				t.Fatalf("run failed: %v", err)
			}
			if sm.Arrivals != rep.Offered {
				t.Errorf("arrivals %d != offered %d (every arrival is measured at Warmup=0)",
					sm.Arrivals, rep.Offered)
			}
			if sm.Accepted != rep.AcceptedInTime {
				t.Errorf("accepted %d != report %d", sm.Accepted, rep.AcceptedInTime)
			}
			if sm.Late != rep.LostLate {
				t.Errorf("late %d != report %d", sm.Late, rep.LostLate)
			}
			if sm.Discards != rep.LostSender {
				t.Errorf("discards %d != report %d", sm.Discards, rep.LostSender)
			}
			if sm.PendingLost != rep.LostPending || sm.PendingCensored != rep.Censored {
				t.Errorf("pending %d/%d != report %d/%d",
					sm.PendingLost, sm.PendingCensored, rep.LostPending, rep.Censored)
			}
			if sm.Loss() != rep.Loss() {
				t.Errorf("counter loss %v != report loss %v (must be exact at Warmup=0)",
					sm.Loss(), rep.Loss())
			}
			if rep.Lost() > 0 && sm.Lost() != rep.Lost() {
				t.Errorf("lost %d != report %d", sm.Lost(), rep.Lost())
			}
		})
	}
}

// TestMultiStationMetrics instruments the distributed simulator: the
// conservation invariants must hold over channel/station-level events,
// only one station's resolver may report splits, and at Warmup = 0 the
// message counters agree with the report exactly.
func TestMultiStationMetrics(t *testing.T) {
	cfg := MultiConfig{
		Config: Config{
			Policy: window.Controlled{Length: window.FixedG(1.1)},
			Tau:    1, M: 25, Lambda: 0.03, K: 50,
			EndTime: 2e4, Warmup: 0, Seed: 4242,
		},
		Stations:       5,
		VerifyLockstep: true,
	}
	sm := collectorFor(cfg.Config)
	cfg.Collector = sm
	rep, err := RunMultiStation(cfg)
	if err != nil {
		t.Fatalf("instrumented multi-station run failed: %v", err)
	}
	if sm.Splits == 0 {
		t.Error("no window splits observed at ρ'=0.75 — resolver not instrumented?")
	}
	if sm.CollisionSlots != rep.CollisionSlots || sm.IdleSlots != rep.IdleSlots {
		t.Errorf("slot counts %d/%d != report %d/%d (channel records every slot here)",
			sm.IdleSlots, sm.CollisionSlots, rep.IdleSlots, rep.CollisionSlots)
	}
	if sm.Accepted != rep.AcceptedInTime || sm.Late != rep.LostLate ||
		sm.Discards != rep.LostSender || sm.PendingLost != rep.LostPending {
		t.Errorf("message counters disagree with report:\n%+v\n%+v", sm.Snapshot(), rep)
	}
	if sm.Loss() != rep.Loss() {
		t.Errorf("counter loss %v != report loss %v", sm.Loss(), rep.Loss())
	}
}

// TestFigure7Metrics exercises SimOptions.Metrics end to end: every
// simulated point must surface verified collectors, and the panel table
// must render them.
func TestFigure7Metrics(t *testing.T) {
	spec := PanelSpec{RhoPrime: 0.5, M: 25, KOverM: []float64{1, 2}}
	panel, err := Figure7Panel(spec, SimOptions{
		Baselines: true, Metrics: true, Messages: 3000, Seed: 11,
	})
	if err != nil {
		t.Fatalf("Figure7Panel: %v", err)
	}
	for i, pt := range panel.Points {
		if pt.ControlledMetrics == nil {
			t.Fatalf("point %d: no controlled metrics", i)
		}
		if pt.ControlledMetrics.Transmissions == 0 {
			t.Errorf("point %d: empty controlled metrics", i)
		}
		if pt.SimFCFSErr == nil && pt.FCFSMetrics == nil {
			t.Errorf("point %d: FCFS succeeded but surfaced no metrics", i)
		}
		if pt.SimLCFSErr == nil && pt.LCFSMetrics == nil {
			t.Errorf("point %d: LCFS succeeded but surfaced no metrics", i)
		}
	}
	table := panel.MetricsTable()
	for _, want := range []string{"controlled", "util", "discards", "splits"} {
		if !strings.Contains(table, want) {
			t.Errorf("MetricsTable missing %q:\n%s", want, table)
		}
	}

	// Without the option no collectors are attached and the table says so.
	plain, err := Figure7Panel(spec, SimOptions{Messages: 1500, Seed: 11})
	if err != nil {
		t.Fatalf("Figure7Panel (plain): %v", err)
	}
	if plain.Points[0].ControlledMetrics != nil {
		t.Error("metrics surfaced without SimOptions.Metrics")
	}
	if !strings.Contains(plain.MetricsTable(), "no metrics collected") {
		t.Errorf("empty MetricsTable should say so:\n%s", plain.MetricsTable())
	}
}

// TestReplicatedRejectsCollector: a shared collector would be written by
// concurrent replications, so RunReplicated must refuse it.
func TestReplicatedRejectsCollector(t *testing.T) {
	cfg := Config{
		Policy: window.Controlled{Length: window.FixedG(1.1)},
		Tau:    1, M: 25, Lambda: 0.02, K: 50, EndTime: 1e3, Seed: 1,
	}
	cfg.Collector = new(metrics.SlotMetrics)
	if _, err := RunReplicated(cfg, 2); err == nil {
		t.Fatal("RunReplicated accepted a shared Collector")
	}
}

// TestInstrumentationPreservesResults pins that observing a run does not
// perturb it: the report of an instrumented run is identical to the
// uninstrumented one (same seed, same everything).
func TestInstrumentationPreservesResults(t *testing.T) {
	cfg := Config{
		Policy: window.Controlled{Length: window.FixedG(1.1)},
		Tau:    1, M: 25, Lambda: 0.03, K: 50, EndTime: 3e4, Warmup: 1e3, Seed: 321,
	}
	plain, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Collector = collectorFor(cfg)
	instrumented, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Loss() != instrumented.Loss() || plain.Offered != instrumented.Offered ||
		plain.Transmissions != instrumented.Transmissions ||
		plain.TrueWait.Mean() != instrumented.TrueWait.Mean() {
		t.Errorf("instrumentation changed the run:\nplain        %v\ninstrumented %v", plain, instrumented)
	}
}

// BenchmarkCollectorOverhead compares an uninstrumented run against the
// no-op collector (the default inside the engines) and full SlotMetrics
// accounting; the nil→Nop difference is the cost every existing caller
// pays for the observability layer and must stay at noise level.
func BenchmarkCollectorOverhead(b *testing.B) {
	base := Config{
		Policy: window.Controlled{Length: window.FixedG(1.1)},
		Tau:    1, M: 25, Lambda: 0.03, K: 50, EndTime: 2e4, Warmup: 1e3, Seed: 5,
	}
	run := func(b *testing.B, mk func() metrics.Collector) {
		var loss float64
		for i := 0; i < b.N; i++ {
			cfg := base
			if mk != nil {
				cfg.Collector = mk()
			}
			rep, err := RunGlobal(cfg)
			if err != nil {
				b.Fatal(err)
			}
			loss = rep.Loss()
		}
		if math.IsNaN(loss) {
			b.Fatal("NaN loss")
		}
	}
	b.Run("uninstrumented", func(b *testing.B) { run(b, nil) })
	b.Run("nop", func(b *testing.B) { run(b, func() metrics.Collector { return metrics.Nop{} }) })
	b.Run("slotmetrics", func(b *testing.B) {
		run(b, func() metrics.Collector { return collectorFor(base) })
	})
}
