package sim

import (
	"testing"

	"windowctl/internal/window"
)

// TestTheorem1EmpiricalOptimality verifies the paper's Theorem 1 on the
// measured (actual) loss: with element (4) in force, degrading element (1)
// (window position) or element (3) (older-half-first) can only increase
// the fraction of messages lost.  The SMDP proves this in pseudo time;
// simulation confirms it in actual time, which is where the two differ
// (Lemma 1/2).
func TestTheorem1EmpiricalOptimality(t *testing.T) {
	base := Config{
		Tau: 1, M: 25, Lambda: 0.75 / 25, K: 50,
		EndTime: 1.2e6, Warmup: 5e4, Seed: 99,
	}
	run := func(p window.Policy) float64 {
		cfg := base
		cfg.Policy = p
		rep, err := RunGlobal(cfg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		return rep.Loss()
	}
	length := window.FixedG(gStar)
	optimal := run(window.Controlled{Length: length})
	newerFirst := run(window.ControlledVariant{Length: length, Side: window.Newer})
	lagged := run(window.ControlledVariant{Length: length, Side: window.Older, PositionLag: 12})
	laggedNewer := run(window.ControlledVariant{Length: length, Side: window.Newer, PositionLag: 12})

	// Allow a hair of Monte Carlo noise on the comparisons.
	const eps = 0.004
	if optimal > newerFirst+eps {
		t.Errorf("Theorem 1 (element 3): optimal %.4f worse than newer-first %.4f", optimal, newerFirst)
	}
	if optimal > lagged+eps {
		t.Errorf("Theorem 1 (element 1): optimal %.4f worse than lagged %.4f", optimal, lagged)
	}
	if optimal > laggedNewer+eps {
		t.Errorf("Theorem 1 (both): optimal %.4f worse than lagged+newer %.4f", optimal, laggedNewer)
	}
	// The fully degraded variant should be measurably worse, not a tie.
	if laggedNewer < optimal+0.005 {
		t.Errorf("degraded variant %.4f suspiciously close to optimal %.4f", laggedNewer, optimal)
	}
}
