package sim

import (
	"math"
	"sort"
	"testing"

	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

// runLemmaProbe drives the protocol over random arrivals with the given
// policy, checking at every decision epoch that each pending message
// satisfies Lemma 1 (pseudo delay <= actual delay), and — when exact is
// true (the Theorem-1 policy) — Lemma 2 (pseudo delay == actual delay).
func runLemmaProbe(t *testing.T, pol window.Policy, exact bool, seed uint64) {
	t.Helper()
	r := rngutil.New(seed)
	lambda := 0.03
	tracker := window.NewTracker(0, math.Inf(1), pol.Discards())
	now := 0.0
	nextArr := r.Exp(lambda)
	var pending []float64
	const txTime = 25.0
	for processes := 0; processes < 400; processes++ {
		for nextArr <= now {
			pending = append(pending, nextArr)
			nextArr += r.Exp(lambda)
		}
		sort.Float64s(pending)
		// Lemma checks at the decision epoch.
		for _, a := range pending {
			pd := tracker.PseudoDelay(now, a)
			actual := now - a
			if pd > actual+1e-9 {
				t.Fatalf("Lemma 1 violated: pseudo %v > actual %v", pd, actual)
			}
			if exact && math.Abs(pd-actual) > 1e-9 {
				t.Fatalf("Lemma 2 violated under Theorem-1 policy: pseudo %v != actual %v", pd, actual)
			}
		}
		view := tracker.View(now, 1, lambda)
		if view.TNewest-view.TPast <= 0 {
			now++
			continue
		}
		rep, err := window.RunProcess(pol, view, func(w window.Window) int {
			lo := sort.SearchFloat64s(pending, w.Start)
			hi := sort.SearchFloat64s(pending, w.End)
			return hi - lo
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range rep.Steps {
			if s.Outcome == window.Success {
				now += txTime
			} else {
				now++
			}
		}
		tracker.Commit(now, rep.Examined)
		if rep.Success {
			lo := sort.SearchFloat64s(pending, rep.SuccessWindow.Start)
			pending = append(pending[:lo], pending[lo+1:]...)
		}
	}
}

// TestLemma2PseudoEqualsActualUnderTheorem1: the controlled (Theorem-1)
// policy leaves no gaps older than any live message, so pseudo and actual
// delay coincide — the property that lets the paper collapse the state
// space to a single number.
func TestLemma2PseudoEqualsActualUnderTheorem1(t *testing.T) {
	runLemmaProbe(t, window.Controlled{Length: window.FixedG(gStar)}, true, 101)
	runLemmaProbe(t, window.FCFS{Length: window.FixedG(gStar)}, true, 102)
}

// TestLemma1PseudoBelowActualUnderLCFS: LCFS clears interior gaps, so old
// messages' pseudo delays lag their actual delays (strict inequality must
// occur somewhere), while Lemma 1 still bounds them.
func TestLemma1PseudoBelowActualUnderLCFS(t *testing.T) {
	pol := window.LCFS{Length: window.FixedG(gStar)}
	r := rngutil.New(103)
	lambda := 0.036 // load 0.9: backlogs form, so interior gaps appear
	tracker := window.NewTracker(0, math.Inf(1), false)
	now := 0.0
	nextArr := r.Exp(lambda)
	var pending []float64
	sawStrict := false
	for processes := 0; processes < 6000; processes++ {
		for nextArr <= now {
			pending = append(pending, nextArr)
			nextArr += r.Exp(lambda)
		}
		sort.Float64s(pending)
		for _, a := range pending {
			pd := tracker.PseudoDelay(now, a)
			actual := now - a
			if pd > actual+1e-9 {
				t.Fatalf("Lemma 1 violated: pseudo %v > actual %v", pd, actual)
			}
			if pd < actual-1e-6 {
				sawStrict = true
			}
		}
		view := tracker.View(now, 1, lambda)
		if view.TNewest-view.TPast <= 0 {
			now++
			continue
		}
		rep, err := window.RunProcess(pol, view, func(w window.Window) int {
			lo := sort.SearchFloat64s(pending, w.Start)
			hi := sort.SearchFloat64s(pending, w.End)
			return hi - lo
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range rep.Steps {
			if s.Outcome == window.Success {
				now += 25
			} else {
				now++
			}
		}
		tracker.Commit(now, rep.Examined)
		if rep.Success {
			lo := sort.SearchFloat64s(pending, rep.SuccessWindow.Start)
			pending = append(pending[:lo], pending[lo+1:]...)
		}
	}
	if !sawStrict {
		t.Fatal("LCFS never produced pseudo < actual — gap compression untested")
	}
}

func TestPseudoDelayPanicsOnFuture(t *testing.T) {
	tr := window.NewTracker(0, math.Inf(1), false)
	defer func() {
		if recover() == nil {
			t.Fatal("future arrival accepted")
		}
	}()
	tr.PseudoDelay(1, 2)
}
