package sim

import (
	"math"
	"testing"

	"windowctl/internal/metrics"
	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

func stepperConfig() Config {
	return Config{
		Policy: window.Controlled{Length: window.FixedG(2.6)},
		Tau:    1,
		M:      25,
		Lambda: 0.75 / 25,
		K:      100,
		Seed:   97,
	}
}

// drive pumps the stepper for the given virtual duration, injecting a
// Poisson arrival count matched to the channel time each Step consumed —
// the open-loop analogue of the internal arrival stream.
func drive(t *testing.T, s *Stepper, lambda, duration float64, seed uint64) {
	t.Helper()
	rng := rngutil.New(seed)
	end := s.Now() + duration
	for s.Now() < end {
		before := s.Now()
		if err := s.Step(); err != nil {
			t.Fatalf("Step at t=%v: %v", s.Now(), err)
		}
		elapsed := s.Now() - before
		if elapsed < 0 {
			t.Fatalf("clock went backwards: %v", elapsed)
		}
		s.Inject(int(rng.Poisson(lambda * elapsed)))
	}
}

// The stepper's books must balance exactly like a horizon run's: every
// arrival is transmitted, discarded or still resident, and the collector's
// channel-time accounting covers the whole clock.
func TestStepperConservation(t *testing.T) {
	cfg := stepperConfig()
	col := metrics.NewSlotMetrics(cfg.Tau, 200)
	cfg.Collector = col
	s, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}

	drive(t, s, cfg.Lambda, 50000, 11)
	// Mid-run checks at step boundaries must already hold.
	if err := s.CheckNow(); err != nil {
		t.Fatalf("mid-run conservation: %v", err)
	}
	drive(t, s, cfg.Lambda, 50000, 12)

	rep, err := s.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	snap := col.Snapshot()
	if snap.Arrivals == 0 || rep.Transmissions == 0 {
		t.Fatalf("run did nothing: arrivals=%d transmissions=%d", snap.Arrivals, rep.Transmissions)
	}
	if got := snap.Transmissions + snap.Discards + int64(rep.EndBacklog); got != snap.Arrivals {
		t.Errorf("message conservation: tx %d + discards %d + resident %d = %d, want arrivals %d",
			snap.Transmissions, snap.Discards, rep.EndBacklog, got, snap.Arrivals)
	}
	if rep.Offered != rep.AcceptedInTime+rep.LostSender+rep.LostLate+rep.LostPending+rep.Censored+int64(unmeasuredResident(rep)) {
		// Offered counts measured arrivals; all of them must be classified.
		t.Errorf("report classification does not cover Offered: %+v", rep)
	}
}

// unmeasuredResident is the slack term in the measured-message balance:
// with Warmup 0 every resident message is measured, and the end-of-run
// classifier assigns each to LostPending or Censored, so the slack is 0.
func unmeasuredResident(Report) int { return 0 }

// CheckNow must hold right after Inject: queued arrivals are outside the
// collector's books until the next Step materializes them, so counting
// them as resident would report a phantom conservation violation on the
// exact sequence windowd's pump runs (Step → Inject → CheckNow).
func TestStepperCheckNowAfterInject(t *testing.T) {
	cfg := stepperConfig()
	col := metrics.NewSlotMetrics(cfg.Tau, 200)
	cfg.Collector = col
	s, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Inject(3)
	if err := s.CheckNow(); err != nil {
		t.Fatalf("conservation falsely violated with queued arrivals: %v", err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		s.Inject(2)
		if err := s.CheckNow(); err != nil {
			t.Fatalf("step %d: conservation with queued arrivals: %v", i, err)
		}
	}
	if _, err := s.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

// Finishing at the current clock must classify residents by their *age
// now*: a message injected moments ago is censored, not lost.
func TestStepperFinishClassifiesByAge(t *testing.T) {
	cfg := stepperConfig()
	s, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Let the clock move, then inject fresh arrivals and finish at once:
	// their age is < τ ≪ K, so they must land in Censored.
	for i := 0; i < 10; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	s.Inject(5)
	rep, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostPending != 0 {
		t.Errorf("fresh residents counted lost: LostPending=%d", rep.LostPending)
	}
	if rep.Censored != 5 {
		t.Errorf("Censored = %d, want 5", rep.Censored)
	}
}

// A finite EndTime keeps its meaning in stepped mode: Step refuses to run
// past the horizon.
func TestStepperHorizon(t *testing.T) {
	cfg := stepperConfig()
	cfg.EndTime = 20 // a few slots
	s, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		err := s.Step()
		if err == ErrHorizon {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if steps++; steps > 1000 {
			t.Fatal("horizon never reached")
		}
	}
	if s.Now() < 20 {
		t.Errorf("stopped at t=%v before the horizon", s.Now())
	}
	if _, err := s.Finish(); err != nil {
		t.Errorf("Finish after horizon: %v", err)
	}
}

// The element-(4) shed fraction of a stepped run fed open-loop Poisson
// counts must agree with the batch simulator's internal Poisson stream at
// the same operating point — the acceptance criterion that windowd's
// shedding is the same control law, not a lookalike.
func TestStepperShedMatchesBatch(t *testing.T) {
	cfg := stepperConfig()
	cfg.M = 10
	cfg.K = cfg.M * cfg.Tau // K/M = 1: heavy element-(4) shedding
	cfg.Lambda = 0.9 / (cfg.M * cfg.Tau)
	cfg.EndTime = 300000

	batch, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}

	scfg := cfg
	scfg.EndTime = 0
	s, err := NewStepper(scfg)
	if err != nil {
		t.Fatal(err)
	}
	drive(t, s, cfg.Lambda, 300000, 23)
	stepped, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}

	shed := func(r Report) float64 { return float64(r.LostSender) / float64(r.Offered) }
	b, sf := shed(batch), shed(stepped)
	if b <= 0 || sf <= 0 {
		t.Fatalf("expected shedding at K/M=1: batch=%v stepped=%v", b, sf)
	}
	if diff := math.Abs(b - sf); diff > 0.03 {
		t.Errorf("shed fraction diverges: batch %.4f vs stepped %.4f (|Δ| = %.4f > 0.03)", b, sf, diff)
	}
}

// The ingest→schedule hot path inherits the engine's zero-allocation
// contract: once warm, Inject+Step allocates nothing.
func TestStepperZeroAlloc(t *testing.T) {
	cfg := stepperConfig()
	s, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rngutil.New(5)
	pump := func() {
		before := s.Now()
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		s.Inject(int(rng.Poisson(cfg.Lambda * (s.Now() - before))))
	}
	for i := 0; i < 200000; i++ {
		pump()
	}
	if avg := testing.AllocsPerRun(100000, pump); avg != 0 {
		t.Fatalf("steady-state Inject+Step allocates %v times per run; the ingest→schedule hot path must be allocation-free", avg)
	}
}

// Stamps handed to the pending queue must be strictly increasing even
// under burst injection far beyond one arrival per slot — the queue
// panics on decreasing keys and collisions between equal keys would
// split forever, so this is load-bearing for windowd under saturation.
func TestStepperBurstInjection(t *testing.T) {
	cfg := stepperConfig()
	cfg.MaxBacklog = 1 << 21
	s, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Inject(1 << 20) // a million arrivals in one slot
	for i := 0; i < 2000; i++ {
		if err := s.Step(); err != nil {
			t.Fatalf("step %d under burst: %v", i, err)
		}
	}
	rep, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transmissions == 0 && rep.LostSender == 0 {
		t.Error("burst produced no protocol activity")
	}
}
