package sim

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders the panel's loss curves as an ASCII plot — the closest a
// terminal gets to the paper's figure 7.  The y axis is logarithmic
// (loss spans decades); series markers: C = controlled (analytic),
// F = FCFS, L = LCFS, * = simulated controlled.  Markers overwrite in
// that order, so a '*' on top of the C curve is the corroboration the
// paper's figure shows.
func (p Panel) Chart(width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 8 {
		height = 16
	}
	if len(p.Points) == 0 {
		return ""
	}
	// Y range: log10 of loss, floored to keep zeros plottable.
	const floor = 1e-4
	yMin, yMax := math.Inf(1), math.Inf(-1)
	consider := func(v float64) {
		if math.IsNaN(v) {
			return
		}
		if v < floor {
			v = floor
		}
		l := math.Log10(v)
		if l < yMin {
			yMin = l
		}
		if l > yMax {
			yMax = l
		}
	}
	for _, pt := range p.Points {
		consider(pt.Controlled)
		consider(pt.FCFS)
		consider(pt.LCFS)
		consider(pt.SimControlled)
	}
	if math.IsInf(yMin, 1) {
		return ""
	}
	if yMax-yMin < 0.5 {
		yMax = yMin + 0.5
	}
	xMin, xMax := p.Points[0].KOverM, p.Points[len(p.Points)-1].KOverM

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(kOverM, v float64, marker byte) {
		if math.IsNaN(v) {
			return
		}
		if v < floor {
			v = floor
		}
		x := int(float64(width-1) * (kOverM - xMin) / (xMax - xMin))
		// Row 0 is the top of the chart (largest loss).
		r := height - 1 - int(float64(height-1)*(math.Log10(v)-yMin)/(yMax-yMin))
		if r < 0 || r >= height || x < 0 || x >= width {
			return
		}
		grid[r][x] = marker
	}
	for _, pt := range p.Points {
		plot(pt.KOverM, pt.FCFS, 'F')
		plot(pt.KOverM, pt.LCFS, 'L')
		plot(pt.KOverM, pt.Controlled, 'C')
		plot(pt.KOverM, pt.SimControlled, '*')
	}

	var b strings.Builder
	fmt.Fprintf(&b, "loss (log scale) vs K/M — rho'=%.2f M=%g   [C analytic, * sim, F fcfs, L lcfs]\n",
		p.Spec.RhoPrime, p.Spec.M)
	for r := 0; r < height; r++ {
		// Left axis label: the log10 value at this row.
		val := yMax - (yMax-yMin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.4f |%s|\n", math.Pow(10, val), grid[r])
	}
	fmt.Fprintf(&b, "%8s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  K/M = %.2g%s%.2g\n", "", xMin,
		strings.Repeat(" ", max(1, width-12)), xMax)
	return b.String()
}
