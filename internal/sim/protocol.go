package sim

import (
	"fmt"
	"math"

	"windowctl/internal/protocol"
	"windowctl/internal/window"
)

// resolveProtocol materializes Config.Protocol into Config.Policy via
// the plugin registry.  It is a no-op when Protocol is empty, and
// setting both fields is an error — a name would silently shadow (or
// be shadowed by) the concrete value otherwise.
func (c *Config) resolveProtocol() error {
	if c.Protocol == "" {
		return nil
	}
	if c.Policy != nil {
		return fmt.Errorf("sim: set Policy or Protocol, not both (got policy %q and protocol %q)", c.Policy.Name(), c.Protocol)
	}
	pol, err := protocol.Build(c.Protocol, protocol.Params{
		Tau: c.Tau, M: c.M, Lambda: c.Lambda, K: c.K, Seed: c.Seed,
	})
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	c.Policy = pol
	return nil
}

// discardConstraint returns the effective element-(4) constraint the
// discard tracker enforces: protocols with the protocol.Admission
// capability may tighten the deadline k to an admission horizon; the
// result is clamped to (0, k] so a misbehaving plugin cannot widen the
// paper's guarantee or break the tracker.  Report classification
// (late vs. in time) always uses the true deadline k.
func discardConstraint(p window.Policy, k float64) float64 {
	a, ok := p.(protocol.Admission)
	if !ok {
		return k
	}
	d := a.AdmissionDelay(k)
	if math.IsNaN(d) || d <= 0 || d >= k {
		return k
	}
	return d
}
