package sim

import (
	"math"
	"testing"

	"windowctl/internal/queueing"
	"windowctl/internal/smdp"
	"windowctl/internal/window"
)

// TestThreeWayModelOrdering cross-validates the three views of the
// controlled protocol on one operating point:
//
//   - the §3 semi-Markov decision model (exact within its span-only state
//     and Assumption 1),
//   - the §4 impatient-queue model (eq. 4.7),
//   - the event simulation (ground truth).
//
// The span-only SMDP state redraws window content at each decision
// (Assumption 1 discards the occupancy knowledge carried by released
// sibling windows and by surviving backlog), so it *underestimates* the
// loss; eq. 4.7 models the message queue directly and lands close to, but
// slightly below, the simulation (whose waiting time includes the
// message's own windowing, excluded by the analytic definition).  This
// ordering is itself a reproduction finding — it is why the paper turned
// to the queueing model for performance numbers.
func TestThreeWayModelOrdering(t *testing.T) {
	p := 0.03
	mDur := 25
	for _, k := range []int{25, 50} {
		mod, err := smdp.NewModel(k, mDur, p)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := mod.PolicyIteration(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		lambda := -math.Log(1 - p)
		pm := queueing.ProtocolModel{Tau: 1, M: float64(mDur), RhoPrime: lambda * float64(mDur)}
		an, err := pm.ControlledLoss(float64(k))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Policy: window.Controlled{Length: window.FixedG(queueing.OptimalWindowContent())},
			Tau:    1, M: float64(mDur), Lambda: lambda, K: float64(k),
			EndTime: 1.5e6, Warmup: 1e5, Seed: 8,
		}
		rep, err := RunGlobal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		simLoss := rep.Loss()
		if !(opt.LossFraction < an.Loss && an.Loss < simLoss) {
			t.Fatalf("K=%d: expected smdp (%v) < eq4.7 (%v) < sim (%v)",
				k, opt.LossFraction, an.Loss, simLoss)
		}
		// The queueing model must stay within 35%% of the simulation; the
		// SMDP is structural, not a numeric predictor, so no tight bound.
		if math.Abs(an.Loss-simLoss) > 0.35*simLoss {
			t.Fatalf("K=%d: eq4.7 %v too far from sim %v", k, an.Loss, simLoss)
		}
	}
}

// TestSMDPOptimalWindowNearHeuristic checks that the min-scheduling-time
// heuristic for element (2) is near-optimal *within the decision model*:
// its gain is within a few percent of the policy-iteration optimum.  This
// is the quantitative justification the paper could not compute in 1983.
func TestSMDPOptimalWindowNearHeuristic(t *testing.T) {
	for _, p := range []float64{0.02, 0.05} {
		mod, err := smdp.NewModel(40, 25, p)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := mod.PolicyIteration(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		heur, err := mod.Evaluate(mod.HeuristicPolicy(queueing.OptimalWindowContent()))
		if err != nil {
			t.Fatal(err)
		}
		if opt.Gain > heur.Gain+1e-12 {
			t.Fatalf("p=%v: optimum %v worse than heuristic %v", p, opt.Gain, heur.Gain)
		}
		if heur.Gain > 1.6*opt.Gain+1e-9 {
			t.Fatalf("p=%v: heuristic gain %v much worse than optimal %v", p, heur.Gain, opt.Gain)
		}
	}
}
