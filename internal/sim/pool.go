package sim

import "sync"

// pool fans contiguous index shards across persistent worker goroutines.
// The dense multi-station engine uses it for its O(M) per-slot loops
// (window membership counting, feedback fan-out, tracker commits); the
// goroutines outlive individual run calls so a slot pays two channel
// hops per worker, not a goroutine spawn.
//
// Determinism contract: run's fn must touch only index-disjoint or
// worker-private state, and callers merge per-worker results afterward in
// shard order.  Shard boundaries depend only on (n, workers), so every
// result — and therefore every simulation report — is bit-identical at
// any worker count.
type pool struct {
	workers int
	fn      func(w, lo, hi int)
	req     []chan [2]int
	wg      sync.WaitGroup
}

// newPool returns a pool of the given width; <= 1 runs everything inline
// with no goroutines.  Close must be called on wider pools when done.
func newPool(workers int) *pool {
	p := &pool{workers: workers}
	if workers <= 1 {
		p.workers = 1
		return p
	}
	p.req = make([]chan [2]int, workers)
	for w := range p.req {
		ch := make(chan [2]int, 1)
		p.req[w] = ch
		go func(w int, ch chan [2]int) {
			for span := range ch {
				p.fn(w, span[0], span[1])
				p.wg.Done()
			}
		}(w, ch)
	}
	return p
}

// run invokes fn over [0, n) split into at most workers contiguous
// shards and returns when all have completed.  Worker w always receives
// the w-th shard, so worker-indexed scratch slots line up with shard
// order.  Tiny ranges run inline.
func (p *pool) run(n int, fn func(w, lo, hi int)) {
	if p.workers == 1 || n < 2*p.workers {
		fn(0, 0, n)
		return
	}
	p.fn = fn
	chunk := (n + p.workers - 1) / p.workers
	used := (n + chunk - 1) / chunk
	p.wg.Add(used)
	for w := 0; w < used; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		p.req[w] <- [2]int{lo, hi}
	}
	p.wg.Wait()
	p.fn = nil
}

// close releases the worker goroutines (no-op for inline pools).
func (p *pool) close() {
	for _, ch := range p.req {
		close(ch)
	}
}
