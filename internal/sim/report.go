// Package sim provides the experiment drivers that corroborate the
// analytic models: a fast global-view simulator of the window protocol, a
// full multi-station simulator running the distributed state machines over
// the broadcast-channel model, and the harness that regenerates every
// panel of the paper's figure 7.
//
// Loss is measured exactly as in §4.2 of the paper: a message is counted
// lost when its *true* waiting time — arrival at the sender to the start
// of its successful transmission — exceeds the constraint K, whether the
// loss happens at the sender (discarded under policy element (4)) or at
// the receiver (transmitted too late).
//
// Both simulators accept a metrics.Collector (Config.Collector) that
// receives every slot-level protocol event of the run; when the
// collector can verify the conservation invariants (as
// *metrics.SlotMetrics can), the simulators check them after the run and
// fail on violation, so instrumented runs audit their own accounting.
// See internal/metrics and docs/OBSERVABILITY.md.
package sim

import (
	"fmt"
	"math"

	"windowctl/internal/metrics"
	"windowctl/internal/stats"
)

// conservationStart checkpoints a collector that supports conservation
// checking; the returned checker is nil when c is nil or cannot verify
// invariants.
func conservationStart(c metrics.Collector) (metrics.Checkpoint, metrics.ConservationChecker) {
	if checker, ok := c.(metrics.ConservationChecker); ok {
		return checker.Checkpoint(), checker
	}
	return metrics.Checkpoint{}, nil
}

// Report aggregates the outcome of one simulation run.  Counters cover
// only messages arriving after the warmup period.
type Report struct {
	// Offered counts measured message arrivals.
	Offered int64
	// AcceptedInTime counts messages transmitted with true wait <= K.
	AcceptedInTime int64
	// LostSender counts messages discarded at the sender (element (4)).
	LostSender int64
	// LostLate counts messages transmitted with true wait > K (receiver
	// discard; possible for the uncontrolled baselines and, rarely, for
	// the controlled protocol whose *own* windowing time is excluded from
	// the analytic waiting-time definition).
	LostLate int64
	// LostPending counts messages still untransmitted at the end of the
	// run whose age already exceeded K — they can only be lost.
	LostPending int64
	// Censored counts messages still pending at the end with age <= K;
	// their fate is unknown and they are excluded from the loss ratio.
	Censored int64

	// TrueWait accumulates the true waiting times of transmitted messages.
	TrueWait stats.Accumulator
	// WaitHist is the waiting-time histogram of transmitted messages
	// (bin width = τ), from which quantiles can be read.
	WaitHist *stats.Histogram
	// SchedulingSlots accumulates the wasted (idle + collision) slots
	// attributed to each transmitted message — the simulated counterpart
	// of the scheduling-time component of §4's service time.
	SchedulingSlots stats.Accumulator

	// IdleSlots, CollisionSlots and Transmissions count channel activity
	// over the whole run (including warmup).
	IdleSlots, CollisionSlots, Transmissions int64
	// Utilization is the fraction of channel time spent on successful
	// transmissions.
	Utilization float64
	// MaxBacklog is the largest number of simultaneously pending messages.
	MaxBacklog int
	// EndBacklog is the number pending when the run ended.
	EndBacklog int
}

// Decided returns the number of measured messages with a known fate.
func (r Report) Decided() int64 {
	return r.AcceptedInTime + r.LostSender + r.LostLate + r.LostPending
}

// Lost returns the number of measured messages known lost.
func (r Report) Lost() int64 { return r.LostSender + r.LostLate + r.LostPending }

// Loss returns the measured loss fraction (0 when nothing was decided).
func (r Report) Loss() float64 {
	d := r.Decided()
	if d == 0 {
		return 0
	}
	return float64(r.Lost()) / float64(d)
}

// LossCI returns a Wilson confidence interval for the loss at the given
// level.
func (r Report) LossCI(level float64) (lo, hi float64) {
	p := stats.Proportion{Successes: r.Lost(), Trials: r.Decided()}
	return p.ConfidenceInterval(level)
}

// WaitQuantile returns the q-quantile of the true waiting time of
// transmitted messages (from the run's histogram; +Inf when q falls in
// the overflow region, NaN when nothing was transmitted).
func (r Report) WaitQuantile(q float64) float64 {
	if r.WaitHist == nil || r.WaitHist.N() == 0 {
		return math.NaN()
	}
	return r.WaitHist.Quantile(q)
}

// String summarizes the run.
func (r Report) String() string {
	return fmt.Sprintf("offered=%d loss=%.4f (sender=%d late=%d pending=%d) censored=%d util=%.3f meanWait=%.3f schedSlots=%.3f",
		r.Offered, r.Loss(), r.LostSender, r.LostLate, r.LostPending, r.Censored,
		r.Utilization, r.TrueWait.Mean(), r.SchedulingSlots.Mean())
}
