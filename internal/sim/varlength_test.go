package sim

import (
	"math"
	"testing"

	"windowctl/internal/dist"
	"windowctl/internal/queueing"
	"windowctl/internal/window"
)

// TestVariableMessageLengths exercises Theorem 1's actual premise —
// message lengths need only be *identically distributed*, not constant —
// and validates the M/G/1 machinery with a genuinely non-deterministic B:
// exponential transmission times with mean M·τ.
func TestVariableMessageLengths(t *testing.T) {
	const (
		rhoPrime = 0.5
		m        = 25.0
		k        = 75.0
	)
	lambda := rhoPrime / m
	txLaw := dist.NewExponential(1 / m) // mean M·τ with τ = 1

	cfg := Config{
		Policy: window.Controlled{Length: window.FixedG(gStar)},
		Tau:    1, M: m, Lambda: lambda, K: k,
		EndTime: 2e6, Warmup: 1e5, Seed: 90,
		TxLengths: txLaw,
	}
	rep, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := queueing.ProtocolModel{Tau: 1, M: m, RhoPrime: rhoPrime, TxDist: txLaw}
	res, err := model.ControlledLoss(k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Loss()-res.Loss) > 0.35*res.Loss+0.01 {
		t.Fatalf("exponential lengths: sim %.4f vs analytic %.4f", rep.Loss(), res.Loss)
	}

	// Variability hurts: at the same load and constraint, exponential
	// lengths must lose more than fixed ones (E[X²] doubles), in both
	// the analysis and the simulation.
	fixedModel := queueing.ProtocolModel{Tau: 1, M: m, RhoPrime: rhoPrime}
	fixedRes, err := fixedModel.ControlledLoss(k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss <= fixedRes.Loss {
		t.Fatalf("analytic: exponential %.4f should exceed fixed %.4f", res.Loss, fixedRes.Loss)
	}
	fixedCfg := cfg
	fixedCfg.TxLengths = nil
	fixedRep, err := RunGlobal(fixedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loss() <= fixedRep.Loss() {
		t.Fatalf("simulated: exponential %.4f should exceed fixed %.4f", rep.Loss(), fixedRep.Loss())
	}
}

// TestVariableLengthsServiceMoments sanity-checks the composed service
// law against its defining moments.
func TestVariableLengthsServiceMoments(t *testing.T) {
	txLaw := dist.NewExponential(1.0 / 25)
	model := queueing.ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.5, TxDist: txLaw}
	svc, err := model.Service(1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Mean = overhead mean + 25.
	overhead := svc.Mean() - 25
	if overhead <= 0 || overhead > 2 {
		t.Fatalf("overhead %v implausible", overhead)
	}
	// CDF is a valid distribution function.
	prev := 0.0
	for x := 0.0; x < 300; x += 5 {
		c := svc.CDF(x)
		if c < prev-1e-12 || c < 0 || c > 1 {
			t.Fatalf("service CDF invalid at %v: %v", x, c)
		}
		prev = c
	}
	if prev < 0.999 {
		t.Fatalf("service CDF at 300 only %v", prev)
	}
	// Zero window content with TxDist returns the bare length law.
	svc0, err := model.Service(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(svc0.Mean()-25) > 1e-9 {
		t.Fatalf("zero-content service mean %v", svc0.Mean())
	}
}
