package sim

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// panelsBitIdentical compares evaluated panels field by field, treating
// floats by their bit pattern so that NaN placeholders (disabled or failed
// curves) compare equal — reflect.DeepEqual would report NaN != NaN.
func panelsBitIdentical(a, b []Panel) bool {
	if len(a) != len(b) {
		return false
	}
	same := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	for i := range a {
		if !reflect.DeepEqual(a[i].Spec, b[i].Spec) || len(a[i].Points) != len(b[i].Points) {
			return false
		}
		for j := range a[i].Points {
			p, q := a[i].Points[j], b[i].Points[j]
			if !same(p.KOverM, q.KOverM) || !same(p.K, q.K) ||
				!same(p.Controlled, q.Controlled) || !same(p.FCFS, q.FCFS) || !same(p.LCFS, q.LCFS) ||
				!same(p.SimControlled, q.SimControlled) || !same(p.SimLo, q.SimLo) || !same(p.SimHi, q.SimHi) ||
				!same(p.SimFCFS, q.SimFCFS) || !same(p.SimLCFS, q.SimLCFS) {
				return false
			}
			if (p.SimFCFSErr == nil) != (q.SimFCFSErr == nil) ||
				(p.SimLCFSErr == nil) != (q.SimLCFSErr == nil) {
				return false
			}
		}
	}
	return true
}

// The reproducibility contract of the parallel pipeline: the fully
// evaluated panels — analytic curves, simulated losses and confidence
// intervals — must be bit-identical at every worker count, because each
// work item's seed is derived from the item's identity rather than from
// scheduling order.
func TestFigure7PanelsDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation panel in -short mode")
	}
	specs := []PanelSpec{
		{RhoPrime: 0.25, M: 25, KOverM: []float64{0.5, 1, 2}},
		{RhoPrime: 0.75, M: 25, KOverM: []float64{1, 4}},
	}
	opt := SimOptions{Baselines: true, Messages: 5000, Seed: 99}

	optSeq := opt
	optSeq.Workers = 1
	seq, err := Figure7Panels(specs, optSeq)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, workers := range []int{0, 2, runtime.GOMAXPROCS(0) + 3} {
		optPar := opt
		optPar.Workers = workers
		par, err := Figure7Panels(specs, optPar)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !panelsBitIdentical(seq, par) {
			t.Errorf("workers=%d: parallel result differs from sequential\nseq: %+v\npar: %+v",
				workers, seq, par)
		}
	}
}

// Figure7Panel must be exactly the single-spec case of Figure7Panels.
func TestFigure7PanelMatchesPanels(t *testing.T) {
	spec := PanelSpec{RhoPrime: 0.5, M: 25, KOverM: []float64{1, 2}}
	opt := SimOptions{Disable: true}
	one, err := Figure7Panel(spec, opt)
	if err != nil {
		t.Fatalf("Figure7Panel: %v", err)
	}
	many, err := Figure7Panels([]PanelSpec{spec}, opt)
	if err != nil {
		t.Fatalf("Figure7Panels: %v", err)
	}
	if !panelsBitIdentical([]Panel{one}, many) {
		t.Errorf("Figure7Panel differs from Figure7Panels[0]")
	}
}

// Distinct work items must get distinct seeds, and the same item the same
// seed, whatever order items are generated in.
func TestItemSeedIdentity(t *testing.T) {
	a := PanelSpec{RhoPrime: 0.25, M: 25, Tau: 1}
	b := PanelSpec{RhoPrime: 0.25, M: 100, Tau: 1}
	seen := map[uint64]string{}
	for _, spec := range []PanelSpec{a, b} {
		for k := 0; k < 8; k++ {
			for proto := protoControlled; proto <= protoLCFS; proto++ {
				s := itemSeed(7, spec, k, proto)
				id := fmt.Sprintf("M=%g k=%d proto=%d", spec.M, k, proto)
				if prev, ok := seen[s]; ok {
					t.Fatalf("seed collision between %q and %q", prev, id)
				}
				seen[s] = id
			}
		}
	}
	if itemSeed(7, a, 1, protoFCFS) != itemSeed(7, a, 1, protoFCFS) {
		t.Fatal("itemSeed not deterministic")
	}
	if itemSeed(7, a, 1, protoFCFS) == itemSeed(8, a, 1, protoFCFS) {
		t.Fatal("base seed ignored")
	}
}

// Recorded baseline failures must surface in the rendered table.
func TestFormatShowsBaselineErrors(t *testing.T) {
	p := Panel{
		Spec: PanelSpec{RhoPrime: 0.5, M: 25},
		Points: []Point{{
			KOverM: 1, K: 25,
			SimFCFSErr: errors.New("fcfs exploded"),
			SimLCFSErr: errors.New("lcfs exploded"),
		}},
	}
	out := p.Format()
	if !strings.Contains(out, "sim(fcfs) failed at K/M=1.00: fcfs exploded") {
		t.Errorf("FCFS error not rendered:\n%s", out)
	}
	if !strings.Contains(out, "sim(lcfs) failed at K/M=1.00: lcfs exploded") {
		t.Errorf("LCFS error not rendered:\n%s", out)
	}
}
