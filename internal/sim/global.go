package sim

import (
	"fmt"
	"math"

	"windowctl/internal/dist"
	"windowctl/internal/fault"
	"windowctl/internal/metrics"
	"windowctl/internal/pendq"
	"windowctl/internal/rngutil"
	"windowctl/internal/stats"
	"windowctl/internal/window"
)

// Config parameterizes a simulation run in the paper's units.
type Config struct {
	// Policy is the window control policy under test.  Exactly one of
	// Policy and Protocol must be set.
	Policy window.Policy
	// Protocol selects a registered protocol plugin by name (see
	// internal/protocol) instead of a concrete Policy value.  It is
	// materialized at validation time from this configuration's
	// (Tau, M, Lambda, K, Seed), so replications and sweep points each
	// get their own correctly seeded instance.
	Protocol string
	// Tau is the slot time (propagation delay); must be positive.
	Tau float64
	// M is the message length in slots; transmission takes M·τ.
	M float64
	// Lambda is the total network arrival rate λ′ (all messages).
	Lambda float64
	// K is the waiting-time constraint; must be positive (may be +Inf
	// for unconstrained runs measuring delay only).
	K float64
	// EndTime is the simulated horizon; must exceed Warmup.
	EndTime float64
	// Warmup excludes initial transient arrivals from the statistics.
	Warmup float64
	// Seed drives all randomness.
	Seed uint64
	// MaxBacklog aborts the run if the pending count exceeds it
	// (protection against simulating a hopelessly unstable baseline);
	// 0 means 1<<20.
	MaxBacklog int
	// DisableFastForward forces probe-by-probe execution of idle periods.
	// The fast-forward is exact (the tests verify run-for-run equality),
	// so this exists only for that verification and for debugging.
	DisableFastForward bool
	// TxLengths, when non-nil, draws each message's transmission time
	// from this law instead of the constant M·τ (Theorem 1 only asks
	// that lengths be identically distributed).  Its mean should equal
	// M·τ so RhoPrime keeps its meaning.  Supported by the global
	// simulator only.
	TxLengths dist.Distribution
	// RateEstimator, when non-nil, replaces the known arrival rate in
	// the policy's view with this protocol-side estimate, updated from
	// each completed windowing process — adaptive operation for networks
	// where λ′ is unknown.  Supported by the global simulator only.
	RateEstimator *window.RateEstimator
	// Collector, when non-nil, receives every slot-level protocol event
	// of the run (arrivals, probe outcomes, splits, discards,
	// transmissions) — see internal/metrics.  Collectors implementing
	// metrics.ConservationChecker (as *metrics.SlotMetrics does) have
	// their conservation invariants verified at the end of the run, and
	// an inconsistency fails the run.  Nil costs nothing.
	Collector metrics.Collector
	// Faults configures imperfect-feedback injection (see internal/fault):
	// per-slot probabilities of erasures, false collisions and missed
	// collisions corrupting the feedback the protocol perceives, with
	// resolvers switched to their recovery path.  The zero value (all
	// rates zero) disables the layer entirely and is bit-identical to the
	// perfect-feedback simulation.  Faults do not combine with
	// RateEstimator: corrupted idle/success observations would poison the
	// estimate in ways the paper's adaptive extension does not model.
	Faults fault.Config
	// ExternalArrivals disables the internal Poisson arrival stream: no
	// messages appear unless they are pushed in from outside (see Stepper).
	// Lambda is still required — it remains the rate the policy's view is
	// built from when no RateEstimator is installed.
	ExternalArrivals bool
}

func (c *Config) validate() error {
	if err := c.resolveProtocol(); err != nil {
		return err
	}
	if c.Policy == nil {
		return fmt.Errorf("sim: missing policy")
	}
	if err := window.Validate(c.Policy); err != nil {
		return err
	}
	if c.Tau <= 0 || c.M <= 0 {
		return fmt.Errorf("sim: need positive Tau and M (got %v, %v)", c.Tau, c.M)
	}
	if c.Lambda <= 0 {
		return fmt.Errorf("sim: need positive Lambda (got %v)", c.Lambda)
	}
	if c.K <= 0 || math.IsNaN(c.K) {
		return fmt.Errorf("sim: need positive K (got %v)", c.K)
	}
	if c.EndTime <= c.Warmup || c.Warmup < 0 {
		return fmt.Errorf("sim: need 0 <= Warmup < EndTime (got %v, %v)", c.Warmup, c.EndTime)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	if c.Faults.Enabled() && c.RateEstimator != nil {
		return fmt.Errorf("sim: Faults do not combine with RateEstimator (corrupted feedback would poison the estimate)")
	}
	return nil
}

// RhoPrime returns the normalized offered load λ′·M·τ of the
// configuration.
func (c Config) RhoPrime() float64 { return c.Lambda * c.M * c.Tau }

// globalState is the single-view protocol simulation: because every
// station's state machine is a deterministic function of the common
// feedback, the network evolves exactly like one queue of arrival times
// plus one Resolver — this simulator exploits that for speed, and the
// multi-station simulator verifies the equivalence.
//
// The hot path is allocation-free at steady state: the pending set is an
// indexed queue that reclaims storage in place, the single Resolver is
// recycled across processes, and all scratch space lives in the state.
// sim_alloc_test.go asserts this with testing.AllocsPerRun.
type globalState struct {
	cfg        Config
	rng        *rngutil.Stream
	tracker    *window.Tracker
	col        metrics.Collector // never nil (Nop when uninstrumented)
	inj        *fault.Injector   // nil unless fault injection is enabled
	fo         metrics.FaultObserver
	slotIdx    int64 // probe-slot counter indexing the fault schedule
	now        float64
	pending    pendq.Queue[bool] // key: arrival time; item: measured flag
	nextArr    float64
	maxBacklog int
	rep        Report

	// res is the recycled windowing-process state machine; discardFn and
	// ffScratch keep the element-(4) and fast-forward paths closure- and
	// slice-literal-free.
	res       window.Resolver
	discardFn func(arrival float64, measured bool)
	ffScratch [1]window.Window

	// lastTxEnd is the end time of the most recent transmission; the
	// scheduling time of the next transmitted message runs from
	// max(lastTxEnd, its own arrival) to the start of its transmission,
	// exactly §4's definition of the scheduling-time service component.
	lastTxEnd float64
}

// RunGlobal simulates the protocol with the global-view engine and
// returns the measured report.
func RunGlobal(cfg Config) (Report, error) {
	g, err := newGlobalState(cfg)
	if err != nil {
		return Report{}, err
	}
	return g.run()
}

// waitHistBins sizes the waiting-time histogram to cover the constraint K
// at slot resolution, clamped so an overflow-scale or infinite K (legal
// for unconstrained runs) yields a bounded histogram instead of a
// float→int overflow and a panicking negative bin count.
func waitHistBins(k, tau float64) int {
	const maxBins = 1 << 20
	b := k / tau
	if !(b >= 0) || b > maxBins-64 {
		return maxBins
	}
	return int(b) + 64
}

// newGlobalState validates the configuration and builds a ready-to-step
// engine.  It exists separately from RunGlobal so the allocation tests
// can warm a state and then measure a bare step cycle.
func newGlobalState(cfg Config) (*globalState, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	g := &globalState{
		cfg:     cfg,
		rng:     rngutil.New(cfg.Seed),
		tracker: window.NewTracker(0, discardConstraint(cfg.Policy, cfg.K), cfg.Policy.Discards()),
		col:     metrics.OrNop(cfg.Collector),
		fo:      metrics.FaultObserverOrNop(cfg.Collector),
	}
	if cfg.Faults.Enabled() {
		inj, err := fault.NewInjector(cfg.Faults)
		if err != nil {
			return nil, err
		}
		g.inj = inj
	}
	g.rep.WaitHist = stats.NewHistogram(cfg.Tau, waitHistBins(cfg.K, cfg.Tau))
	if cfg.ExternalArrivals {
		g.nextArr = math.Inf(1)
	} else {
		g.nextArr = g.rng.Exp(cfg.Lambda)
	}
	g.maxBacklog = cfg.MaxBacklog
	if g.maxBacklog <= 0 {
		g.maxBacklog = 1 << 20
	}
	g.discardFn = func(arrival float64, measured bool) {
		if measured {
			g.rep.LostSender++
		}
	}
	return g, nil
}

// step advances the simulation by one decision epoch: materialize
// arrivals, check the backlog bound, run one windowing process.
func (g *globalState) step() error {
	g.fill(g.now)
	if g.pending.Len() > g.maxBacklog {
		return fmt.Errorf("sim: backlog exceeded %d at t=%v (unstable configuration)", g.maxBacklog, g.now)
	}
	return g.oneProcess()
}

// run steps the engine to EndTime and finalizes the report.
func (g *globalState) run() (Report, error) {
	checkpoint, check := conservationStart(g.cfg.Collector)
	for g.now < g.cfg.EndTime {
		if err := g.step(); err != nil {
			return g.rep, err
		}
	}
	g.finishAt(g.cfg.EndTime)
	if check != nil {
		if err := check.CheckConservation(checkpoint, int64(g.pending.Len()), g.now); err != nil {
			return g.rep, fmt.Errorf("sim: %w", err)
		}
	}
	return g.rep, nil
}

// fill materializes arrivals with time <= t.
func (g *globalState) fill(t float64) {
	added := int64(0)
	for g.nextArr <= t {
		g.pending.Push(g.nextArr, g.nextArr >= g.cfg.Warmup && g.nextArr < g.cfg.EndTime)
		if g.nextArr >= g.cfg.Warmup {
			g.rep.Offered++
		}
		added++
		g.nextArr += g.rng.Exp(g.cfg.Lambda)
	}
	if added > 0 {
		g.col.RecordArrivals(added)
	}
	if n := g.pending.Len(); n > g.rep.MaxBacklog {
		g.rep.MaxBacklog = n
	}
}

// feedFromOracle probes the resolver's enabled window against the pending
// set (the content oracle) and feeds the resulting perfect feedback.
func (g *globalState) feedFromOracle() {
	w := g.res.Enabled()
	switch n := g.pending.CountIn(w.Start, w.End); {
	case n == 0:
		g.res.OnFeedback(window.Idle)
	case n == 1:
		g.res.OnFeedback(window.Success)
	default:
		g.res.OnFeedback(window.Collision)
	}
}

// oneProcess runs a single windowing process: sender discard at the
// decision epoch, window selection, resolution, time accounting and
// message bookkeeping.
func (g *globalState) oneProcess() error {
	// Element (4): discard messages already older than K.
	if g.cfg.Policy.Discards() {
		horizon := g.tracker.Horizon(g.now)
		if n := g.pending.DiscardBelow(horizon, g.discardFn); n > 0 {
			g.col.RecordDiscards(int64(n))
		}
	}

	lambdaView := g.cfg.Lambda
	if g.cfg.RateEstimator != nil {
		lambdaView = g.cfg.RateEstimator.Rate()
	}
	view := g.tracker.View(g.now, g.cfg.Tau, lambdaView)
	if view.TNewest-view.TPast <= 0 {
		// Nothing unexamined (start-up corner): let time pass one slot.
		// The channel is idle for it; the collector must see the slot so
		// the slot-time conservation invariant accounts for all of g.now
		// (Report.IdleSlots deliberately excludes this pre-protocol slot).
		g.col.RecordSlots(metrics.SlotIdle, 1, g.cfg.Tau)
		g.now += g.cfg.Tau
		return nil
	}
	if g.inj != nil {
		// Imperfect feedback: run the process probe by probe against the
		// fault layer (the idle fast-forward is unsound here — any slot,
		// idle ones included, can be faulted).
		return g.resolveFaulty(view)
	}
	if g.cfg.RateEstimator == nil && g.fastForwardIdle(view) {
		// (With an estimator, idle probes carry information — they must
		// be observed one by one, so the fast path is skipped.)
		return nil
	}
	if err := g.res.Reset(g.cfg.Policy, view); err != nil {
		return err
	}
	g.res.Observe(g.col)
	for !g.res.Done() {
		g.feedFromOracle()
	}
	if g.cfg.RateEstimator != nil {
		examined := 0.0
		for _, w := range g.res.Examined() {
			examined += w.Len()
		}
		found := 0
		if g.res.Success() {
			found = 1
		}
		g.cfg.RateEstimator.Observe(found, examined)
	}

	// Advance the clock step by step; record the success start time.
	successStart := math.NaN()
	txTime := g.cfg.M * g.cfg.Tau
	if g.cfg.TxLengths != nil && g.res.Success() {
		txTime = g.cfg.TxLengths.Sample(g.rng)
	}
	for _, s := range g.res.Steps() {
		if s.Outcome == window.Success {
			successStart = g.now
			g.col.RecordSlots(metrics.SlotSuccess, 1, txTime)
			g.now += txTime
		} else {
			g.now += g.cfg.Tau
			if s.Outcome == window.Idle {
				g.rep.IdleSlots++
				g.col.RecordSlots(metrics.SlotIdle, 1, g.cfg.Tau)
			} else {
				g.rep.CollisionSlots++
				g.col.RecordSlots(metrics.SlotCollision, 1, g.cfg.Tau)
			}
		}
	}
	g.tracker.Commit(g.now, g.res.Examined())

	if !g.res.Success() {
		return nil
	}
	return g.deliver(g.res.SuccessWindow(), successStart)
}

// resolveFaulty runs one windowing process under imperfect feedback: each
// probe's true outcome (from the content oracle) passes through the fault
// injector before reaching the fault-tolerant resolver, and message
// delivery is gated on the *perceived* success of a truly successful slot
// (a sender that misreads its own slot aborts the transmission; see the
// internal/fault package doc for the physical-layer semantics).  Slot
// accounting follows the physics: idle slots stay idle whatever the
// perception, delivered successes cost the transmission time, and true
// collisions or aborted transmissions cost τ as collision slots.
func (g *globalState) resolveFaulty(view window.View) error {
	// A false collision on an idle window starts a phantom split spiral:
	// every probe comes back idle, the ">= 2 arrivals" belief is never
	// contradicted, and only the depth bound (~100 wasted slots) stops it.
	// The phantom give-up bound (window.View.MinSplitLen, the same defense
	// the heterogeneous engine uses) cuts the spiral at sub-slot window
	// lengths instead.
	view.MinSplitLen = g.cfg.Tau / 1024
	r := &g.res
	if err := r.Reset(g.cfg.Policy, view); err != nil {
		return err
	}
	r.SetFaultTolerant(true)
	r.Observe(g.cfg.Collector)
	for !r.Done() {
		enabled := r.Enabled()
		n := g.pending.CountIn(enabled.Start, enabled.End)
		var truth window.Feedback
		switch {
		case n == 0:
			truth = window.Idle
		case n == 1:
			truth = window.Success
		default:
			truth = window.Collision
		}
		perceived, kind, faulted := g.inj.Perceive(g.slotIdx, 0, truth)
		g.slotIdx++
		if faulted {
			g.fo.RecordFault(kind)
		}
		if truth == window.Success && perceived == window.Success {
			txTime := g.cfg.M * g.cfg.Tau
			if g.cfg.TxLengths != nil {
				txTime = g.cfg.TxLengths.Sample(g.rng)
			}
			successStart := g.now
			g.col.RecordSlots(metrics.SlotSuccess, 1, txTime)
			g.now += txTime
			if err := g.deliver(enabled, successStart); err != nil {
				return err
			}
		} else if truth == window.Idle {
			g.rep.IdleSlots++
			g.col.RecordSlots(metrics.SlotIdle, 1, g.cfg.Tau)
			g.now += g.cfg.Tau
		} else {
			// True collision, or a success aborted by the sender's misread.
			g.rep.CollisionSlots++
			g.col.RecordSlots(metrics.SlotCollision, 1, g.cfg.Tau)
			g.now += g.cfg.Tau
		}
		r.OnFeedback(perceived)
	}
	g.tracker.Commit(g.now, r.Examined())
	if r.Recovered() {
		g.fo.RecordRecovery()
	}
	return nil
}

// deliver removes the single pending message inside the window of a
// delivered success and records its outcome.  The feedback said exactly
// one message lies inside, so anything else is an engine bug.
func (g *globalState) deliver(w window.Window, successStart float64) error {
	switch n := g.pending.CountIn(w.Start, w.End); {
	case n == 0:
		return fmt.Errorf("sim: success window %v holds no pending message", w)
	case n > 1:
		return fmt.Errorf("sim: success window %v holds more than one message", w)
	}
	arrival, measured, _ := g.pending.PopFirstIn(w.Start, w.End)
	g.rep.Transmissions++

	trueWait := successStart - arrival
	g.col.RecordTransmission(trueWait, trueWait <= g.cfg.K)
	if measured {
		g.rep.TrueWait.Add(trueWait)
		g.rep.WaitHist.Add(trueWait)
		schedStart := math.Max(g.lastTxEnd, arrival)
		g.rep.SchedulingSlots.Add((successStart - schedStart) / g.cfg.Tau)
		if trueWait > g.cfg.K {
			g.rep.LostLate++
		} else {
			g.rep.AcceptedInTime++
		}
	}
	g.lastTxEnd = g.now
	return nil
}

// fastForwardIdle bulk-skips idle probes.  When no messages are pending
// and the policy's next initial window covers the entire unexamined span,
// the probe is certainly idle and examines everything up to now; the
// protocol then repeats one such whole-span probe per slot until the next
// arrival.  Skipping them in one step is *exact* — the post-skip protocol
// state (cleared region, clock, idle-slot count) equals what probe-by-
// probe execution produces — and it is what makes long lightly-loaded
// runs (e.g. the M = 100 figure panels) affordable.  Policies with
// per-decision randomness never take this path: their windows must be
// drawn one decision at a time to keep the common random sequence
// aligned.
func (g *globalState) fastForwardIdle(view window.View) bool {
	if g.cfg.DisableFastForward || g.pending.Len() != 0 {
		return false
	}
	if _, random := g.cfg.Policy.(window.ForkablePolicy); random {
		return false
	}
	if math.IsInf(g.nextArr, 1) {
		// No known future arrival (external-arrival mode): the skip count
		// would be unbounded, and a server's clock must stay near the
		// injected stamps, so advance probe by probe instead.
		return false
	}
	w := g.cfg.Policy.InitialWindow(view)
	if w.Start > view.TPast || w.End < view.TNewest {
		return false // window would not clear the whole span
	}
	// One idle probe clears the span; any further full slots before the
	// next arrival are idle single-slot probes.  The skip also stops at
	// EndTime — probe-by-probe execution never runs probes beyond it.
	skip := 1 + int(math.Max(0, (g.nextArr-g.now-g.cfg.Tau)/g.cfg.Tau))
	if !math.IsInf(g.cfg.EndTime, 1) {
		// (An infinite horizon has no limit, and int(+Inf) would overflow.)
		if limit := int(math.Ceil((g.cfg.EndTime - g.now) / g.cfg.Tau)); skip > limit {
			skip = limit
		}
	}
	if skip < 1 {
		skip = 1
	}
	g.rep.IdleSlots += int64(skip)
	g.col.RecordSlots(metrics.SlotIdle, int64(skip), float64(skip)*g.cfg.Tau)
	g.now += float64(skip) * g.cfg.Tau
	g.ffScratch[0] = window.Window{Start: view.TPast, End: g.now - g.cfg.Tau}
	g.tracker.Commit(g.now, g.ffScratch[:])
	return true
}

// finishAt classifies the messages still pending at the reference time
// (EndTime for horizon runs, the current clock for stepped runs) and
// computes utilization.
func (g *globalState) finishAt(ref float64) {
	g.pending.ForEach(func(arrival float64, measured bool) {
		if !measured {
			return
		}
		if ref-arrival > g.cfg.K {
			g.rep.LostPending++
		} else {
			g.rep.Censored++
		}
	})
	g.col.RecordEndPending(g.rep.LostPending, g.rep.Censored)
	g.rep.EndBacklog = g.pending.Len()
	busy := float64(g.rep.Transmissions) * g.cfg.M * g.cfg.Tau
	wasted := float64(g.rep.IdleSlots+g.rep.CollisionSlots) * g.cfg.Tau
	if busy+wasted > 0 {
		g.rep.Utilization = busy / (busy + wasted)
	}
}
