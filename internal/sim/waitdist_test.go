package sim

import (
	"math"
	"testing"

	"windowctl/internal/queueing"
	"windowctl/internal/window"
)

// TestAcceptedWaitDistributionMatchesSimulation validates equation 4.4:
// the waiting-time distribution of *accepted* messages under the
// controlled protocol, F(w)/F(K), against the simulated histogram of true
// waits.  The analytic wait excludes the message's own windowing time, so
// agreement within a few percent (plus half a slot of horizontal slack)
// is the expected outcome.
func TestAcceptedWaitDistributionMatchesSimulation(t *testing.T) {
	const (
		rhoPrime = 0.6
		m        = 25.0
		k        = 50.0
	)
	cfg := Config{
		Policy: window.Controlled{Length: window.FixedG(gStar)},
		Tau:    1, M: m, Lambda: rhoPrime / m, K: k,
		EndTime: 2e6, Warmup: 1e5, Seed: 31,
	}
	rep, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := queueing.ProtocolModel{Tau: 1, M: m, RhoPrime: rhoPrime}
	q := queueing.ImpatientMG1{Lambda: model.Lambda()}
	svc, err := model.Service(model.WindowContent(k))
	if err != nil {
		t.Fatal(err)
	}
	q.Service = svc

	ws := []float64{0.25 * k, 0.5 * k, 0.75 * k, k}
	analytic, err := q.AcceptedWaitCDF(k, ws)
	if err != nil {
		t.Fatal(err)
	}
	// Simulated accepted-wait CDF: histogram of true waits conditioned on
	// wait <= K.
	accMass := rep.WaitHist.CDF(k)
	if accMass <= 0 {
		t.Fatal("no accepted messages")
	}
	for i, w := range ws {
		got := rep.WaitHist.CDF(w) / accMass
		if math.Abs(got-analytic[i]) > 0.06 {
			t.Errorf("accepted-wait CDF at %v: sim %.4f vs analytic %.4f", w, got, analytic[i])
		}
	}
}

// TestTransmissionConservation checks flow conservation in a controlled
// run: every offered, decided message is either transmitted or lost at
// the sender, and the transmission count matches.
func TestTransmissionConservation(t *testing.T) {
	cfg := Config{
		Policy: window.Controlled{Length: window.FixedG(gStar)},
		Tau:    1, M: 25, Lambda: 0.02, K: 75,
		EndTime: 4e5, Warmup: 0, Seed: 32,
	}
	rep, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With Warmup = 0 every message is measured, so transmissions equal
	// accepted + late.
	if rep.Transmissions != rep.AcceptedInTime+rep.LostLate {
		t.Fatalf("transmissions %d != accepted %d + late %d",
			rep.Transmissions, rep.AcceptedInTime, rep.LostLate)
	}
	if rep.Offered != rep.Transmissions+rep.LostSender+rep.LostPending+rep.Censored {
		t.Fatalf("message conservation broken: %+v", rep)
	}
}
