package sim

import (
	"fmt"
	"math"

	"windowctl/internal/channel"
	"windowctl/internal/des"
	"windowctl/internal/fault"
	"windowctl/internal/metrics"
	"windowctl/internal/rngutil"
	"windowctl/internal/station"
	"windowctl/internal/stats"
	"windowctl/internal/window"
)

// MultiConfig parameterizes the full multi-station simulation.
type MultiConfig struct {
	Config
	// Stations is the number of senders; the total rate Lambda is split
	// evenly among them.  Must be >= 1.
	Stations int
	// VerifyLockstep asserts, every slot, that all stations' protocol
	// state machines agree on the enabled window — the distributed-
	// consistency property the protocol depends on.  Costs O(N) per slot.
	VerifyLockstep bool
	// Arrivals, when non-nil, supplies each station's arrival process
	// (e.g. an on/off talkspurt source) instead of the default Poisson
	// split of Lambda.  Config.Lambda must still give the aggregate mean
	// rate — it parameterizes the window-length rule.
	Arrivals func(station int) station.ArrivalProcess
}

// multiState is the distributed simulation: every station runs its own
// Tracker and Resolver fed only by common channel feedback, exactly as the
// protocol prescribes.  A station holding two or more pending messages
// inside the enabled window jams the slot (it cannot transmit both), so
// channel feedback reflects the network-wide *message* count in the
// window, matching the paper's model in which message arrivals, not
// stations, are the windowed entities.
type multiState struct {
	cfg       MultiConfig
	kernel    *des.Simulator
	ch        *channel.Channel
	stations  []*station.Station
	trackers  []*window.Tracker
	resolvers []*window.Resolver // persistent, recycled via Reset each epoch
	inProcess bool               // a windowing process is underway
	policies  []window.Policy    // per-station replica (common randomness)
	col       metrics.Collector
	inj       *fault.Injector // nil unless fault injection is enabled
	fo        metrics.FaultObserver
	slotIdx   int64 // probe-slot counter indexing the fault schedule
	perceived []window.Feedback
	rep       Report
	lastTxEnd float64
	resident  int64 // messages still queued anywhere when the run ended
	runErr    error
	discardFn func(station.Message)
	slotFn    func() // m.slot bound once; a fresh method value per Schedule would allocate every slot
}

// RunMultiStation simulates the distributed protocol and returns the
// measured report.  Its results are statistically equivalent to RunGlobal
// (the tests verify this); it exists to exercise — and validate — the
// distributed operation over the channel model.
func RunMultiStation(cfg MultiConfig) (Report, error) {
	if err := cfg.validate(); err != nil {
		return Report{}, err
	}
	if cfg.Stations < 1 {
		return Report{}, fmt.Errorf("sim: need >= 1 station, got %d", cfg.Stations)
	}
	m := &multiState{
		cfg:    cfg,
		kernel: des.New(),
		ch:     channel.New(cfg.Tau, cfg.M*cfg.Tau),
		col:    metrics.OrNop(cfg.Collector),
		fo:     metrics.FaultObserverOrNop(cfg.Collector),
	}
	if cfg.Faults.Enabled() {
		inj, err := fault.NewInjector(cfg.Faults)
		if err != nil {
			return Report{}, err
		}
		m.inj = inj
		m.perceived = make([]window.Feedback, cfg.Stations)
	}
	// Slots are recorded by the channel, arrivals and discards by the
	// stations; the collector sees the same event stream the global-view
	// simulator reports directly.
	m.ch.Observe(cfg.Collector)
	m.rep.WaitHist = stats.NewHistogram(cfg.Tau, int(cfg.K/cfg.Tau)+64)
	root := rngutil.New(cfg.Seed)
	var nextID int64
	perStation := cfg.Lambda / float64(cfg.Stations)
	for i := 0; i < cfg.Stations; i++ {
		var proc station.ArrivalProcess = station.Poisson{Rate: perStation}
		if cfg.Arrivals != nil {
			proc = cfg.Arrivals(i)
			if proc == nil {
				return Report{}, fmt.Errorf("sim: Arrivals returned nil for station %d", i)
			}
		}
		st := station.New(i, proc, root.Spawn(), &nextID)
		st.Observe(cfg.Collector)
		m.stations = append(m.stations, st)
		m.trackers = append(m.trackers, window.NewTracker(0, cfg.K, cfg.Policy.Discards()))
		// A policy carrying common randomness is replicated per station:
		// each replica makes the same draw sequence, as real stations
		// seeded with one agreed value would.
		if f, ok := cfg.Policy.(window.ForkablePolicy); ok {
			m.policies = append(m.policies, f.Fork())
		} else {
			m.policies = append(m.policies, cfg.Policy)
		}
	}
	m.resolvers = make([]*window.Resolver, cfg.Stations)
	for i := range m.resolvers {
		m.resolvers[i] = &window.Resolver{}
		if cfg.Faults.Enabled() {
			m.resolvers[i].SetFaultTolerant(true)
		}
	}
	// Only one of the (identical, lockstep) resolvers observes, or every
	// split would be counted once per station.
	m.resolvers[0].Observe(cfg.Collector)
	m.discardFn = func(d station.Message) {
		if m.measured(d.Arrival) {
			m.rep.LostSender++
		}
	}
	m.slotFn = m.slot

	checkpoint, check := conservationStart(cfg.Collector)
	m.kernel.Schedule(0, 0, m.slotFn)
	m.kernel.RunUntil(cfg.EndTime)
	if m.runErr != nil {
		return m.rep, m.runErr
	}
	m.finish()
	if check != nil {
		if err := check.CheckConservation(checkpoint, m.resident, m.ch.Stats().TotalTime()); err != nil {
			return m.rep, fmt.Errorf("sim: %w", err)
		}
	}
	return m.rep, nil
}

func (m *multiState) fail(err error) {
	m.runErr = err
	m.kernel.Stop()
}

// slot executes one protocol slot: decision epoch if needed, one probe,
// feedback distribution, and scheduling of the next slot.
func (m *multiState) slot() {
	now := m.kernel.Now()
	if now >= m.cfg.EndTime {
		return
	}
	for _, s := range m.stations {
		s.GenerateUntil(now)
	}
	backlog := 0
	for _, s := range m.stations {
		backlog += s.QueueLen()
	}
	if backlog > m.rep.MaxBacklog {
		m.rep.MaxBacklog = backlog
	}
	maxBacklog := m.cfg.MaxBacklog
	if maxBacklog <= 0 {
		maxBacklog = 1 << 20
	}
	if backlog > maxBacklog {
		m.fail(fmt.Errorf("sim: backlog exceeded %d at t=%v", maxBacklog, now))
		return
	}

	if !m.inProcess {
		// Decision epoch at every station.
		if !m.beginProcess(now) {
			// Nothing unexamined yet: idle for one slot.
			m.kernel.ScheduleAfter(m.cfg.Tau, 0, m.slotFn)
			return
		}
	}

	if m.inj != nil {
		m.faultySlot(now)
		return
	}

	enabled := m.resolvers[0].Enabled()
	if m.cfg.VerifyLockstep {
		for i, r := range m.resolvers {
			if r.Enabled() != enabled {
				m.fail(fmt.Errorf("sim: station %d enabled %v, station 0 enabled %v — lockstep broken",
					i, r.Enabled(), enabled))
				return
			}
		}
	}

	// Stations transmit; multiple messages at one station jam the slot.
	totalMsgs := 0
	txStation := -1
	for i, s := range m.stations {
		c := s.CountIn(enabled)
		if c > 0 {
			totalMsgs += c
			txStation = i
		}
	}
	fb, dur := m.ch.ResolveSlot(totalMsgs)

	for _, r := range m.resolvers {
		r.OnFeedback(fb)
	}

	if fb == window.Success {
		msg, ok := m.stations[txStation].PopOldestIn(enabled)
		if !ok {
			m.fail(fmt.Errorf("sim: station %d vanished message in %v", txStation, enabled))
			return
		}
		m.recordTransmission(msg, now, now+dur)
	}

	if m.resolvers[0].Done() {
		examined := m.resolvers[0].Examined()
		end := now + dur
		for _, tr := range m.trackers {
			tr.Commit(end, examined)
		}
		m.inProcess = false
	}
	m.kernel.ScheduleAfter(dur, 0, m.slotFn)
}

// faultySlot executes one protocol slot under imperfect feedback: the
// channel classifies the true outcome, every station perceives it through
// the fault layer (independently under Config.Faults.PerStation), message
// delivery is gated on the *sender's own* perception (a sender that
// misreads its successful slot aborts the transmission, which then costs
// τ as a collision slot — see the internal/fault package doc), and the
// engine watches for desynchronization, answering it with the network-
// wide recovery protocol: every station aborts its process, nothing is
// committed, and the next decision epoch re-enables the window from the
// common pre-process state, with element-(4) deadline discards still
// enforced on whatever the re-enabled window holds.
func (m *multiState) faultySlot(now float64) {
	// Each station transmits by its own resolver's view.  The views agree
	// whenever this point is reached: desynchronization is detected and
	// recovered in the very slot it first manifests, before it can drive
	// divergent transmission decisions.
	totalMsgs := 0
	txStation := -1
	for i, s := range m.stations {
		c := s.CountIn(m.resolvers[i].Enabled())
		if c > 0 {
			totalMsgs += c
			txStation = i
		}
	}
	truth := channel.Classify(totalMsgs)
	slot := m.slotIdx
	m.slotIdx++
	if m.inj.PerStation() {
		// Independent per-station sensing: each misread is its own fault.
		for i := range m.stations {
			fb, kind, faulted := m.inj.Perceive(slot, i, truth)
			m.perceived[i] = fb
			if faulted {
				m.fo.RecordFault(kind)
			}
		}
	} else {
		// Common noise: the slot is corrupted once, for everyone.
		fb, kind, faulted := m.inj.Perceive(slot, 0, truth)
		if faulted {
			m.fo.RecordFault(kind)
		}
		for i := range m.perceived {
			m.perceived[i] = fb
		}
		if m.cfg.VerifyLockstep {
			// Shared perception preserves lockstep; keep asserting it.
			enabled := m.resolvers[0].Enabled()
			for i, r := range m.resolvers {
				if r.Enabled() != enabled {
					m.fail(fmt.Errorf("sim: station %d enabled %v, station 0 enabled %v — lockstep broken",
						i, r.Enabled(), enabled))
					return
				}
			}
		}
	}

	delivered := truth == window.Success && m.perceived[txStation] == window.Success
	dur := m.ch.AccountSlot(truth, delivered)
	if delivered {
		msg, ok := m.stations[txStation].PopOldestIn(m.resolvers[txStation].Enabled())
		if !ok {
			m.fail(fmt.Errorf("sim: station %d vanished message in %v", txStation, m.resolvers[txStation].Enabled()))
			return
		}
		m.recordTransmission(msg, now, now+dur)
	}

	for i, r := range m.resolvers {
		r.OnFeedback(m.perceived[i])
	}

	if m.inj.PerStation() && m.desynced() {
		m.fo.RecordDesync()
		m.fo.RecordRecovery()
		for _, r := range m.resolvers {
			r.Abort()
		}
		m.inProcess = false // commit nothing: trackers stay at the common pre-process state
	} else if m.resolvers[0].Done() {
		if m.resolvers[0].Recovered() {
			m.fo.RecordRecovery()
		}
		examined := m.resolvers[0].Examined()
		end := now + dur
		for _, tr := range m.trackers {
			tr.Commit(end, examined)
		}
		m.inProcess = false
	}
	m.kernel.ScheduleAfter(dur, 0, m.slotFn)
}

// desynced reports whether the stations' resolvers disagree after this
// slot's feedback: mid-process every resolver must enable the same window
// and agree on being unfinished; at process end all must agree on the
// outcome and on the intervals they examined.  The end-state comparison
// matters because stations perceiving different feedback can finish the
// same slot in *silently* divergent states (one marks the window
// examined after a perceived success while another released it after an
// erasure) — committing either view would fork the trackers for good.
func (m *multiState) desynced() bool {
	r0 := m.resolvers[0]
	for _, r := range m.resolvers[1:] {
		if r.Done() != r0.Done() {
			return true
		}
	}
	if !r0.Done() {
		for _, r := range m.resolvers[1:] {
			if r.Enabled() != r0.Enabled() {
				return true
			}
		}
		return false
	}
	ex0 := r0.Examined()
	for _, r := range m.resolvers[1:] {
		if r.Success() != r0.Success() {
			return true
		}
		ex := r.Examined()
		if len(ex) != len(ex0) {
			return true
		}
		for j := range ex {
			if ex[j] != ex0[j] {
				return true
			}
		}
	}
	return false
}

// beginProcess performs the common decision epoch: sender discard, view
// construction and resolver recycling at every station.  It returns false
// when there is nothing to examine yet.
func (m *multiState) beginProcess(now float64) bool {
	for i, s := range m.stations {
		if m.cfg.Policy.Discards() {
			horizon := m.trackers[i].Horizon(now)
			s.DiscardArrivedBeforeFunc(horizon, m.discardFn)
		}
	}
	view := m.trackers[0].View(now, m.cfg.Tau, m.cfg.Lambda)
	if view.TNewest-view.TPast <= 0 {
		return false
	}
	for i := range m.stations {
		v := m.trackers[i].View(now, m.cfg.Tau, m.cfg.Lambda)
		if m.inj != nil {
			// Phantom-split give-up bound: false collisions otherwise
			// spiral to the depth bound (see globalState.resolveFaulty).
			v.MinSplitLen = m.cfg.Tau / 1024
		}
		if err := m.resolvers[i].Reset(m.policies[i], v); err != nil {
			m.fail(fmt.Errorf("sim: station %d resolver: %w", i, err))
			return false
		}
	}
	m.inProcess = true
	return true
}

func (m *multiState) measured(arrival float64) bool {
	return arrival >= m.cfg.Warmup && arrival < m.cfg.EndTime
}

func (m *multiState) recordTransmission(msg station.Message, successStart, txEnd float64) {
	m.rep.Transmissions++
	trueWait := successStart - msg.Arrival
	m.col.RecordTransmission(trueWait, trueWait <= m.cfg.K)
	if m.measured(msg.Arrival) {
		m.rep.TrueWait.Add(trueWait)
		m.rep.WaitHist.Add(trueWait)
		schedStart := math.Max(m.lastTxEnd, msg.Arrival)
		m.rep.SchedulingSlots.Add((successStart - schedStart) / m.cfg.Tau)
		if trueWait > m.cfg.K {
			m.rep.LostLate++
		} else {
			m.rep.AcceptedInTime++
		}
	}
	m.lastTxEnd = txEnd
}

func (m *multiState) finish() {
	end := m.cfg.EndTime
	all := window.Window{Start: 0, End: end + 1}
	for _, s := range m.stations {
		for {
			msg, ok := s.PopOldestIn(all)
			if !ok {
				break
			}
			m.resident++
			if !m.measured(msg.Arrival) {
				continue
			}
			if end-msg.Arrival > m.cfg.K {
				m.rep.LostPending++
			} else {
				m.rep.Censored++
			}
			m.rep.EndBacklog++
		}
	}
	m.col.RecordEndPending(m.rep.LostPending, m.rep.Censored)
	st := m.ch.Stats()
	m.rep.IdleSlots = st.IdleSlots
	m.rep.CollisionSlots = st.CollisionSlots
	m.rep.Utilization = st.Utilization()
	// Every measured message lands in exactly one outcome bucket, so the
	// offered count is their sum (the report tests verify the identity
	// Offered = Decided + Censored on the global simulator, whose offered
	// count is taken at arrival time instead).
	m.rep.Offered = m.rep.Decided() + m.rep.Censored
}
