package sim

import (
	"fmt"
	"math"
	"runtime"

	"windowctl/internal/channel"
	"windowctl/internal/des"
	"windowctl/internal/fault"
	"windowctl/internal/metrics"
	"windowctl/internal/station"
	"windowctl/internal/stats"
	"windowctl/internal/window"
)

// MultiConfig parameterizes the full multi-station simulation.
type MultiConfig struct {
	Config
	// Stations is the number of senders; the total rate Lambda is split
	// evenly among them.  Must be >= 1.
	Stations int
	// VerifyLockstep verifies the distributed-consistency property the
	// protocol depends on — all stations' state machines, driven only by
	// common channel feedback, agree on the enabled window.  The check is
	// sampled: LockstepSample per-station state machines are maintained
	// and compared against the reference every LockstepEvery probe slots
	// and at every process end, costing O(sample) instead of the former
	// O(M) per slot.
	VerifyLockstep bool
	// LockstepEvery is the probe-slot period of the sampled comparison;
	// <= 0 means every 64 slots.
	LockstepEvery int
	// LockstepSample is how many stations' state machines are verified;
	// <= 0 means min(4, Stations).
	LockstepSample int
	// Arrivals, when non-nil, supplies each station's arrival process
	// (e.g. an on/off talkspurt source) instead of the default Poisson
	// split of Lambda.  Config.Lambda must still give the aggregate mean
	// rate — it parameterizes the window-length rule.  The factory is
	// called sequentially in station-index order.
	Arrivals func(station int) station.ArrivalProcess
	// Workers shards station-state initialization and, in the dense
	// per-station engine, the O(M) per-slot loops.  <= 0 means GOMAXPROCS.
	// Reports are bit-identical at any value.
	Workers int
	// EventQueue selects the kernel's pending-event backend
	// (des.QueueHeap, the zero value, or des.QueueCalendar with bucket
	// width Tau).  Both dispatch in identical order, so reports do not
	// depend on the choice.
	EventQueue des.QueueKind

	// forceDense routes the run through the per-station reference engine
	// even when the shared fast path applies (test-only: the equivalence
	// suite drives both engines over one config and requires bit-identical
	// reports).
	forceDense bool
	// lockstepFaultAt, when > 0, corrupts one verified state machine's
	// feedback from that probe slot onward (test-only: proves sampled
	// verification still catches desynchronization).
	lockstepFaultAt int64
}

// workerCount resolves the Workers field.
func (cfg *MultiConfig) workerCount() int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// lockstepPlan resolves the sampled-verification parameters: the
// comparison period and the verified station indices (evenly spread over
// the population, always including station 0's successor range).
func lockstepPlan(cfg MultiConfig) (every int64, idx []int) {
	if !cfg.VerifyLockstep {
		return 1, nil
	}
	every = int64(cfg.LockstepEvery)
	if every <= 0 {
		every = 64
	}
	sample := cfg.LockstepSample
	if sample <= 0 {
		sample = 4
	}
	if sample > cfg.Stations {
		sample = cfg.Stations
	}
	stride := cfg.Stations / sample
	for k := 0; k < sample; k++ {
		idx = append(idx, k*stride)
	}
	return every, idx
}

// multiState is the shared-state fast path of the multi-station engine.
//
// Under common feedback — perfect channels and common-noise faults — the
// protocol guarantees every station's Tracker and Resolver hold identical
// state at all times (that is the distributed-consistency property
// VerifyLockstep checks).  The engine therefore keeps ONE resolver, ONE
// tracker and one shared pending multiset (a station.Bank) instead of M
// replicas, making a probe slot O(log backlog) independent of M: the same
// decisions, the same feedback sequence, and bit-identical reports to the
// per-station reference engine (denseState), at a million stations.
//
// What remains genuinely per-station — the arrival streams — lives in the
// Bank's struct-of-arrays state.  Per-station feedback faults break the
// symmetry (stations truly diverge), so that one case routes to the dense
// engine instead.
type multiState struct {
	cfg       MultiConfig
	kernel    *des.Simulator
	ch        *channel.Channel
	bank      *station.Bank
	tracker   *window.Tracker
	resolver  *window.Resolver
	policy    window.Policy
	inProcess bool
	col       metrics.Collector
	inj       *fault.Injector // nil unless fault injection is enabled
	fo        metrics.FaultObserver
	slotIdx   int64 // probe-slot counter indexing the fault schedule
	rep       Report
	lastTxEnd float64
	resident  int64
	runErr    error
	discardFn func(arrival float64)
	slotFn    func() // m.slot bound once; a fresh method value per Schedule would allocate every slot

	// Lockstep verification: shadows are real per-station Resolver
	// replicas (with their own policy forks) driven by the same feedback
	// stream; they must shadow the shared resolver exactly.
	shadows    []*window.Resolver
	shadowPols []window.Policy
	lockEvery  int64
	probeSlots int64
}

// RunMultiStation simulates the distributed protocol and returns the
// measured report.  Its results are statistically equivalent to RunGlobal
// (the tests verify this); it exists to exercise — and validate — the
// distributed operation over the channel model.
func RunMultiStation(cfg MultiConfig) (Report, error) {
	if err := cfg.validate(); err != nil {
		return Report{}, err
	}
	if cfg.Stations < 1 {
		return Report{}, fmt.Errorf("sim: need >= 1 station, got %d", cfg.Stations)
	}
	if cfg.EventQueue != des.QueueHeap && cfg.EventQueue != des.QueueCalendar {
		return Report{}, fmt.Errorf("sim: unknown event queue kind %d", cfg.EventQueue)
	}
	// Per-station fault perception breaks the cross-station symmetry the
	// shared fast path rests on; only that case needs the O(M)-per-slot
	// reference engine.
	if cfg.forceDense || (cfg.Faults.Enabled() && cfg.Faults.PerStation) {
		return runMultiDense(cfg)
	}
	m, err := newMultiState(cfg)
	if err != nil {
		return Report{}, err
	}
	return m.run()
}

// newMultiState builds the shared-path engine without running it (the
// allocation tests drive the kernel step by step).
func newMultiState(cfg MultiConfig) (*multiState, error) {
	m := &multiState{
		cfg:    cfg,
		kernel: des.NewWithQueue(cfg.EventQueue, cfg.Tau),
		ch:     channel.New(cfg.Tau, cfg.M*cfg.Tau),
		col:    metrics.OrNop(cfg.Collector),
		fo:     metrics.FaultObserverOrNop(cfg.Collector),
	}
	if cfg.Faults.Enabled() {
		inj, err := fault.NewInjector(cfg.Faults)
		if err != nil {
			return nil, err
		}
		m.inj = inj
	}
	m.ch.Observe(cfg.Collector)
	m.rep.WaitHist = stats.NewHistogram(cfg.Tau, int(cfg.K/cfg.Tau)+64)
	bank, err := station.NewBank(cfg.Stations, cfg.Seed, cfg.Lambda/float64(cfg.Stations), cfg.Arrivals, cfg.workerCount())
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	bank.Observe(cfg.Collector)
	m.bank = bank
	m.tracker = window.NewTracker(0, discardConstraint(cfg.Policy, cfg.K), cfg.Policy.Discards())
	// The shared policy replica forks exactly like the per-station
	// replicas of the reference engine, so common-randomness draws match
	// it sequence for sequence.
	m.policy = cfg.Policy
	if f, ok := cfg.Policy.(window.ForkablePolicy); ok {
		m.policy = f.Fork()
	}
	m.resolver = &window.Resolver{}
	if cfg.Faults.Enabled() {
		m.resolver.SetFaultTolerant(true)
	}
	m.resolver.Observe(cfg.Collector)
	if cfg.VerifyLockstep {
		var idx []int
		m.lockEvery, idx = lockstepPlan(cfg)
		for range idx {
			r := &window.Resolver{}
			if cfg.Faults.Enabled() {
				r.SetFaultTolerant(true)
			}
			m.shadows = append(m.shadows, r)
			pol := cfg.Policy
			if f, ok := cfg.Policy.(window.ForkablePolicy); ok {
				pol = f.Fork()
			}
			m.shadowPols = append(m.shadowPols, pol)
		}
	}
	m.discardFn = func(arrival float64) {
		if m.measured(arrival) {
			m.rep.LostSender++
		}
	}
	m.slotFn = m.slot
	return m, nil
}

func (m *multiState) run() (Report, error) {
	checkpoint, check := conservationStart(m.cfg.Collector)
	m.kernel.Schedule(0, 0, m.slotFn)
	m.kernel.RunUntil(m.cfg.EndTime)
	if m.runErr != nil {
		return m.rep, m.runErr
	}
	m.finish()
	if check != nil {
		if err := check.CheckConservation(checkpoint, m.resident, m.ch.Stats().TotalTime()); err != nil {
			return m.rep, fmt.Errorf("sim: %w", err)
		}
	}
	return m.rep, nil
}

func (m *multiState) fail(err error) {
	m.runErr = err
	m.kernel.Stop()
}

// feedShadows distributes this slot's feedback to the verified shadow
// state machines (the test hook corrupts the last one at the configured
// probe slot).
func (m *multiState) feedShadows(fb window.Feedback) {
	if len(m.shadows) == 0 {
		return
	}
	corrupt := -1
	if m.cfg.lockstepFaultAt > 0 && m.probeSlots >= m.cfg.lockstepFaultAt {
		corrupt = len(m.shadows) - 1
	}
	for i, r := range m.shadows {
		if i == corrupt {
			r.OnFeedback(corruptFeedback(fb))
		} else {
			r.OnFeedback(fb)
		}
	}
}

// checkLockstep compares the shadow state machines against the shared
// resolver — the full state (done, outcome, examined intervals) whenever
// the process just ended, and the enabled window every lockEvery-th probe
// slot mid-process.
func (m *multiState) checkLockstep() bool {
	if len(m.shadows) == 0 {
		return true
	}
	r0 := m.resolver
	if !r0.Done() && m.probeSlots%m.lockEvery != 0 {
		return true
	}
	for i, r := range m.shadows {
		bad := r.Done() != r0.Done()
		if !bad && !r0.Done() {
			bad = r.Enabled() != r0.Enabled()
		}
		if !bad && r0.Done() {
			bad = r.Success() != r0.Success()
			ex0, ex := r0.Examined(), r.Examined()
			if !bad && len(ex) != len(ex0) {
				bad = true
			}
			if !bad {
				for j := range ex {
					if ex[j] != ex0[j] {
						bad = true
						break
					}
				}
			}
		}
		if bad {
			m.fail(fmt.Errorf("sim: shadow station %d diverged from the shared resolver — lockstep broken", i))
			return false
		}
	}
	return true
}

// slot executes one protocol slot: decision epoch if needed, one probe,
// feedback distribution, and scheduling of the next slot.
func (m *multiState) slot() {
	now := m.kernel.Now()
	if now >= m.cfg.EndTime {
		return
	}
	m.bank.GenerateUntil(now)
	backlog := m.bank.Len()
	if backlog > m.rep.MaxBacklog {
		m.rep.MaxBacklog = backlog
	}
	maxBacklog := m.cfg.MaxBacklog
	if maxBacklog <= 0 {
		maxBacklog = 1 << 20
	}
	if backlog > maxBacklog {
		m.fail(fmt.Errorf("sim: backlog exceeded %d at t=%v", maxBacklog, now))
		return
	}

	if !m.inProcess {
		// The common decision epoch.
		if !m.beginProcess(now) {
			// Nothing unexamined yet: idle for one slot.
			m.kernel.ScheduleAfter(m.cfg.Tau, 0, m.slotFn)
			return
		}
	}
	m.probeSlots++

	if m.inj != nil {
		m.faultySlot(now)
		return
	}

	// One station with one pending message in the window transmits;
	// several messages — at one station or many — jam the slot, so the
	// feedback depends only on the network-wide message count.
	enabled := m.resolver.Enabled()
	totalMsgs := m.bank.CountIn(enabled)
	fb, dur := m.ch.ResolveSlot(totalMsgs)

	m.resolver.OnFeedback(fb)
	m.feedShadows(fb)

	if fb == window.Success {
		arrival, _, ok := m.bank.PopOldestIn(enabled)
		if !ok {
			m.fail(fmt.Errorf("sim: success with no pending message in %v", enabled))
			return
		}
		m.recordTransmission(arrival, now, now+dur)
	}

	if m.resolver.Done() {
		m.tracker.Commit(now+dur, m.resolver.Examined())
		m.inProcess = false
	}
	if !m.checkLockstep() {
		return
	}
	m.kernel.ScheduleAfter(dur, 0, m.slotFn)
}

// faultySlot executes one protocol slot under common-noise imperfect
// feedback: the channel classifies the true outcome, the (shared)
// perception passes through the fault layer once for everyone, and
// message delivery is gated on the sender's perception (a sender that
// misreads its successful slot aborts the transmission, which then costs
// τ as a collision slot — see the internal/fault package doc).  Common
// noise cannot desynchronize the stations, so no recovery watch is
// needed here; per-station faults run on the dense engine.
func (m *multiState) faultySlot(now float64) {
	enabled := m.resolver.Enabled()
	totalMsgs := m.bank.CountIn(enabled)
	truth := channel.Classify(totalMsgs)
	slot := m.slotIdx
	m.slotIdx++
	fb, kind, faulted := m.inj.Perceive(slot, 0, truth)
	if faulted {
		m.fo.RecordFault(kind)
	}

	delivered := truth == window.Success && fb == window.Success
	dur := m.ch.AccountSlot(truth, delivered)
	if delivered {
		arrival, _, ok := m.bank.PopOldestIn(enabled)
		if !ok {
			m.fail(fmt.Errorf("sim: success with no pending message in %v", enabled))
			return
		}
		m.recordTransmission(arrival, now, now+dur)
	}

	m.resolver.OnFeedback(fb)
	m.feedShadows(fb)

	if m.resolver.Done() {
		if m.resolver.Recovered() {
			m.fo.RecordRecovery()
		}
		m.tracker.Commit(now+dur, m.resolver.Examined())
		m.inProcess = false
	}
	if !m.checkLockstep() {
		return
	}
	m.kernel.ScheduleAfter(dur, 0, m.slotFn)
}

// beginProcess performs the common decision epoch: sender discard, view
// construction and resolver recycling.  It returns false when there is
// nothing to examine yet.
func (m *multiState) beginProcess(now float64) bool {
	if m.cfg.Policy.Discards() {
		m.bank.DiscardBelowFunc(m.tracker.Horizon(now), m.discardFn)
	}
	v := m.tracker.View(now, m.cfg.Tau, m.cfg.Lambda)
	if v.TNewest-v.TPast <= 0 {
		return false
	}
	if m.inj != nil {
		// Phantom-split give-up bound: false collisions otherwise
		// spiral to the depth bound (see globalState.resolveFaulty).
		v.MinSplitLen = m.cfg.Tau / 1024
	}
	if err := m.resolver.Reset(m.policy, v); err != nil {
		m.fail(fmt.Errorf("sim: resolver: %w", err))
		return false
	}
	for i, r := range m.shadows {
		if err := r.Reset(m.shadowPols[i], v); err != nil {
			m.fail(fmt.Errorf("sim: shadow resolver %d: %w", i, err))
			return false
		}
	}
	m.inProcess = true
	return true
}

func (m *multiState) measured(arrival float64) bool {
	return arrival >= m.cfg.Warmup && arrival < m.cfg.EndTime
}

func (m *multiState) recordTransmission(arrival, successStart, txEnd float64) {
	m.rep.Transmissions++
	trueWait := successStart - arrival
	m.col.RecordTransmission(trueWait, trueWait <= m.cfg.K)
	if m.measured(arrival) {
		m.rep.TrueWait.Add(trueWait)
		m.rep.WaitHist.Add(trueWait)
		schedStart := math.Max(m.lastTxEnd, arrival)
		m.rep.SchedulingSlots.Add((successStart - schedStart) / m.cfg.Tau)
		if trueWait > m.cfg.K {
			m.rep.LostLate++
		} else {
			m.rep.AcceptedInTime++
		}
	}
	m.lastTxEnd = txEnd
}

func (m *multiState) finish() {
	end := m.cfg.EndTime
	m.bank.ForEach(func(arrival float64, _ int32) {
		m.resident++
		if !m.measured(arrival) {
			return
		}
		if end-arrival > m.cfg.K {
			m.rep.LostPending++
		} else {
			m.rep.Censored++
		}
		m.rep.EndBacklog++
	})
	m.col.RecordEndPending(m.rep.LostPending, m.rep.Censored)
	st := m.ch.Stats()
	m.rep.IdleSlots = st.IdleSlots
	m.rep.CollisionSlots = st.CollisionSlots
	m.rep.Utilization = st.Utilization()
	// Every measured message lands in exactly one outcome bucket, so the
	// offered count is their sum (the report tests verify the identity
	// Offered = Decided + Censored on the global simulator, whose offered
	// count is taken at arrival time instead).
	m.rep.Offered = m.rep.Decided() + m.rep.Censored
}
