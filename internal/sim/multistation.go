package sim

import (
	"fmt"
	"math"

	"windowctl/internal/channel"
	"windowctl/internal/des"
	"windowctl/internal/metrics"
	"windowctl/internal/rngutil"
	"windowctl/internal/station"
	"windowctl/internal/stats"
	"windowctl/internal/window"
)

// MultiConfig parameterizes the full multi-station simulation.
type MultiConfig struct {
	Config
	// Stations is the number of senders; the total rate Lambda is split
	// evenly among them.  Must be >= 1.
	Stations int
	// VerifyLockstep asserts, every slot, that all stations' protocol
	// state machines agree on the enabled window — the distributed-
	// consistency property the protocol depends on.  Costs O(N) per slot.
	VerifyLockstep bool
	// Arrivals, when non-nil, supplies each station's arrival process
	// (e.g. an on/off talkspurt source) instead of the default Poisson
	// split of Lambda.  Config.Lambda must still give the aggregate mean
	// rate — it parameterizes the window-length rule.
	Arrivals func(station int) station.ArrivalProcess
}

// multiState is the distributed simulation: every station runs its own
// Tracker and Resolver fed only by common channel feedback, exactly as the
// protocol prescribes.  A station holding two or more pending messages
// inside the enabled window jams the slot (it cannot transmit both), so
// channel feedback reflects the network-wide *message* count in the
// window, matching the paper's model in which message arrivals, not
// stations, are the windowed entities.
type multiState struct {
	cfg       MultiConfig
	kernel    *des.Simulator
	ch        *channel.Channel
	stations  []*station.Station
	trackers  []*window.Tracker
	resolvers []*window.Resolver
	policies  []window.Policy // per-station replica (common randomness)
	col       metrics.Collector
	rep       Report
	lastTxEnd float64
	resident  int64 // messages still queued anywhere when the run ended
	runErr    error
}

// RunMultiStation simulates the distributed protocol and returns the
// measured report.  Its results are statistically equivalent to RunGlobal
// (the tests verify this); it exists to exercise — and validate — the
// distributed operation over the channel model.
func RunMultiStation(cfg MultiConfig) (Report, error) {
	if err := cfg.validate(); err != nil {
		return Report{}, err
	}
	if cfg.Stations < 1 {
		return Report{}, fmt.Errorf("sim: need >= 1 station, got %d", cfg.Stations)
	}
	m := &multiState{
		cfg:    cfg,
		kernel: des.New(),
		ch:     channel.New(cfg.Tau, cfg.M*cfg.Tau),
		col:    metrics.OrNop(cfg.Collector),
	}
	// Slots are recorded by the channel, arrivals and discards by the
	// stations; the collector sees the same event stream the global-view
	// simulator reports directly.
	m.ch.Observe(cfg.Collector)
	m.rep.WaitHist = stats.NewHistogram(cfg.Tau, int(cfg.K/cfg.Tau)+64)
	root := rngutil.New(cfg.Seed)
	var nextID int64
	perStation := cfg.Lambda / float64(cfg.Stations)
	for i := 0; i < cfg.Stations; i++ {
		var proc station.ArrivalProcess = station.Poisson{Rate: perStation}
		if cfg.Arrivals != nil {
			proc = cfg.Arrivals(i)
			if proc == nil {
				return Report{}, fmt.Errorf("sim: Arrivals returned nil for station %d", i)
			}
		}
		st := station.New(i, proc, root.Spawn(), &nextID)
		st.Observe(cfg.Collector)
		m.stations = append(m.stations, st)
		m.trackers = append(m.trackers, window.NewTracker(0, cfg.K, cfg.Policy.Discards()))
		// A policy carrying common randomness is replicated per station:
		// each replica makes the same draw sequence, as real stations
		// seeded with one agreed value would.
		if f, ok := cfg.Policy.(window.ForkablePolicy); ok {
			m.policies = append(m.policies, f.Fork())
		} else {
			m.policies = append(m.policies, cfg.Policy)
		}
	}
	m.resolvers = make([]*window.Resolver, cfg.Stations)

	checkpoint, check := conservationStart(cfg.Collector)
	m.kernel.Schedule(0, 0, m.slot)
	m.kernel.RunUntil(cfg.EndTime)
	if m.runErr != nil {
		return m.rep, m.runErr
	}
	m.finish()
	if check != nil {
		if err := check.CheckConservation(checkpoint, m.resident, m.ch.Stats().TotalTime()); err != nil {
			return m.rep, fmt.Errorf("sim: %w", err)
		}
	}
	return m.rep, nil
}

func (m *multiState) fail(err error) {
	m.runErr = err
	m.kernel.Stop()
}

// slot executes one protocol slot: decision epoch if needed, one probe,
// feedback distribution, and scheduling of the next slot.
func (m *multiState) slot() {
	now := m.kernel.Now()
	if now >= m.cfg.EndTime {
		return
	}
	for _, s := range m.stations {
		s.GenerateUntil(now)
	}
	backlog := 0
	for _, s := range m.stations {
		backlog += s.QueueLen()
	}
	if backlog > m.rep.MaxBacklog {
		m.rep.MaxBacklog = backlog
	}
	maxBacklog := m.cfg.MaxBacklog
	if maxBacklog <= 0 {
		maxBacklog = 1 << 20
	}
	if backlog > maxBacklog {
		m.fail(fmt.Errorf("sim: backlog exceeded %d at t=%v", maxBacklog, now))
		return
	}

	if m.resolvers[0] == nil {
		// Decision epoch at every station.
		if !m.beginProcess(now) {
			// Nothing unexamined yet: idle for one slot.
			m.kernel.ScheduleAfter(m.cfg.Tau, 0, m.slot)
			return
		}
	}

	enabled := m.resolvers[0].Enabled()
	if m.cfg.VerifyLockstep {
		for i, r := range m.resolvers {
			if r.Enabled() != enabled {
				m.fail(fmt.Errorf("sim: station %d enabled %v, station 0 enabled %v — lockstep broken",
					i, r.Enabled(), enabled))
				return
			}
		}
	}

	// Stations transmit; multiple messages at one station jam the slot.
	totalMsgs := 0
	txStation := -1
	for i, s := range m.stations {
		c := s.CountIn(enabled)
		if c > 0 {
			totalMsgs += c
			txStation = i
		}
	}
	fb, dur := m.ch.ResolveSlot(totalMsgs)

	for _, r := range m.resolvers {
		r.OnFeedback(fb)
	}

	if fb == window.Success {
		msg, ok := m.stations[txStation].PopOldestIn(enabled)
		if !ok {
			m.fail(fmt.Errorf("sim: station %d vanished message in %v", txStation, enabled))
			return
		}
		m.recordTransmission(msg, now, now+dur)
	}

	if m.resolvers[0].Done() {
		examined := m.resolvers[0].Examined()
		end := now + dur
		for i, tr := range m.trackers {
			tr.Commit(end, examined)
			m.resolvers[i] = nil
		}
	}
	m.kernel.ScheduleAfter(dur, 0, m.slot)
}

// beginProcess performs the common decision epoch: sender discard, view
// construction and resolver creation at every station.  It returns false
// when there is nothing to examine yet.
func (m *multiState) beginProcess(now float64) bool {
	for i, s := range m.stations {
		if m.cfg.Policy.Discards() {
			horizon := m.trackers[i].Horizon(now)
			for _, d := range s.DiscardArrivedBefore(horizon) {
				if m.measured(d.Arrival) {
					m.rep.LostSender++
				}
			}
		}
	}
	view := m.trackers[0].View(now, m.cfg.Tau, m.cfg.Lambda)
	if view.TNewest-view.TPast <= 0 {
		return false
	}
	for i := range m.stations {
		v := m.trackers[i].View(now, m.cfg.Tau, m.cfg.Lambda)
		r, err := window.NewResolver(m.policies[i], v)
		if err != nil {
			m.fail(fmt.Errorf("sim: station %d resolver: %w", i, err))
			return false
		}
		m.resolvers[i] = r
	}
	// Only one of the (identical, lockstep) resolvers observes, or every
	// split would be counted once per station.
	m.resolvers[0].Observe(m.cfg.Collector)
	return true
}

func (m *multiState) measured(arrival float64) bool {
	return arrival >= m.cfg.Warmup && arrival < m.cfg.EndTime
}

func (m *multiState) recordTransmission(msg station.Message, successStart, txEnd float64) {
	m.rep.Transmissions++
	trueWait := successStart - msg.Arrival
	m.col.RecordTransmission(trueWait, trueWait <= m.cfg.K)
	if m.measured(msg.Arrival) {
		m.rep.TrueWait.Add(trueWait)
		m.rep.WaitHist.Add(trueWait)
		schedStart := math.Max(m.lastTxEnd, msg.Arrival)
		m.rep.SchedulingSlots.Add((successStart - schedStart) / m.cfg.Tau)
		if trueWait > m.cfg.K {
			m.rep.LostLate++
		} else {
			m.rep.AcceptedInTime++
		}
	}
	m.lastTxEnd = txEnd
}

func (m *multiState) finish() {
	end := m.cfg.EndTime
	all := window.Window{Start: 0, End: end + 1}
	for _, s := range m.stations {
		for {
			msg, ok := s.PopOldestIn(all)
			if !ok {
				break
			}
			m.resident++
			if !m.measured(msg.Arrival) {
				continue
			}
			if end-msg.Arrival > m.cfg.K {
				m.rep.LostPending++
			} else {
				m.rep.Censored++
			}
			m.rep.EndBacklog++
		}
	}
	m.col.RecordEndPending(m.rep.LostPending, m.rep.Censored)
	st := m.ch.Stats()
	m.rep.IdleSlots = st.IdleSlots
	m.rep.CollisionSlots = st.CollisionSlots
	m.rep.Utilization = st.Utilization()
	// Every measured message lands in exactly one outcome bucket, so the
	// offered count is their sum (the report tests verify the identity
	// Offered = Decided + Censored on the global simulator, whose offered
	// count is taken at arrival time instead).
	m.rep.Offered = m.rep.Decided() + m.rep.Censored
}
