package sim

import (
	"fmt"
	"math"

	"windowctl/internal/channel"
	"windowctl/internal/des"
	"windowctl/internal/fault"
	"windowctl/internal/metrics"
	"windowctl/internal/rngutil"
	"windowctl/internal/station"
	"windowctl/internal/stats"
	"windowctl/internal/window"
)

// denseState is the one-object-per-station engine: every station runs its
// own Tracker and Resolver fed only by channel feedback, exactly as the
// protocol prescribes.  Its per-slot cost is O(M), so it serves the one
// case the shared-state fast path (multiState) cannot represent —
// per-station feedback faults, where stations genuinely perceive
// different channels and their state machines diverge — and acts as the
// reference implementation the fast path is verified against
// bit-for-bit.
//
// A station holding two or more pending messages inside the enabled
// window jams the slot (it cannot transmit both), so channel feedback
// reflects the network-wide *message* count in the window, matching the
// paper's model in which message arrivals, not stations, are the
// windowed entities.
//
// The O(M) per-station loops — window membership counting, feedback
// fan-out, resolver recycling and tracker commits — shard across
// MultiConfig.Workers via the pool, with order-independent merges (sum,
// max index, first error), so reports are bit-identical at any width.
type denseState struct {
	cfg       MultiConfig
	kernel    *des.Simulator
	ch        *channel.Channel
	stations  []*station.Station
	trackers  []*window.Tracker
	resolvers []*window.Resolver // persistent, recycled via Reset each epoch
	inProcess bool               // a windowing process is underway
	policies  []window.Policy    // per-station replica (common randomness)
	col       metrics.Collector
	inj       *fault.Injector // nil unless fault injection is enabled
	fo        metrics.FaultObserver
	slotIdx   int64 // probe-slot counter indexing the fault schedule
	perceived []window.Feedback
	rep       Report
	lastTxEnd float64
	resident  int64 // messages still queued anywhere when the run ended
	runErr    error
	discardFn func(station.Message)
	slotFn    func() // m.slot bound once; a fresh method value per Schedule would allocate every slot

	pool       *pool
	lockEvery  int64
	lockIdx    []int // sampled station indices for lockstep verification
	probeSlots int64

	// Shard scratch and parameters for the pooled loops.  The loop
	// closures are bound once and read these fields, so a slot does not
	// allocate a closure per fan-out.
	wTotal      []int
	wTx         []int
	wErr        []error
	curEnabled  window.Window
	curFb       window.Feedback
	curNow      float64
	curEnd      float64
	curExamined []window.Window
	countFn     func(w, lo, hi int) // CountIn over the common enabled window
	countOwnFn  func(w, lo, hi int) // CountIn over each resolver's own window
	feedFn      func(w, lo, hi int) // OnFeedback(curFb) fan-out
	feedOwnFn   func(w, lo, hi int) // OnFeedback(perceived[i]) fan-out
	resetFn     func(w, lo, hi int) // resolver Reset at curNow
	commitFn    func(w, lo, hi int) // tracker Commit(curEnd, curExamined)
}

// runMultiDense simulates with full per-station state.  cfg is already
// validated.
func runMultiDense(cfg MultiConfig) (Report, error) {
	m := &denseState{
		cfg:    cfg,
		kernel: des.NewWithQueue(cfg.EventQueue, cfg.Tau),
		ch:     channel.New(cfg.Tau, cfg.M*cfg.Tau),
		col:    metrics.OrNop(cfg.Collector),
		fo:     metrics.FaultObserverOrNop(cfg.Collector),
		pool:   newPool(cfg.workerCount()),
	}
	defer m.pool.close()
	if cfg.Faults.Enabled() {
		inj, err := fault.NewInjector(cfg.Faults)
		if err != nil {
			return Report{}, err
		}
		m.inj = inj
		m.perceived = make([]window.Feedback, cfg.Stations)
	}
	// Slots are recorded by the channel, arrivals and discards by the
	// stations; the collector sees the same event stream the global-view
	// simulator reports directly.
	m.ch.Observe(cfg.Collector)
	m.rep.WaitHist = stats.NewHistogram(cfg.Tau, int(cfg.K/cfg.Tau)+64)
	root := rngutil.New(cfg.Seed)
	var nextID int64
	perStation := cfg.Lambda / float64(cfg.Stations)
	for i := 0; i < cfg.Stations; i++ {
		var proc station.ArrivalProcess = station.Poisson{Rate: perStation}
		if cfg.Arrivals != nil {
			proc = cfg.Arrivals(i)
			if proc == nil {
				return Report{}, fmt.Errorf("sim: Arrivals returned nil for station %d", i)
			}
		}
		st := station.New(i, proc, root.Spawn(), &nextID)
		st.Observe(cfg.Collector)
		m.stations = append(m.stations, st)
		m.trackers = append(m.trackers, window.NewTracker(0, discardConstraint(cfg.Policy, cfg.K), cfg.Policy.Discards()))
		// A policy carrying common randomness is replicated per station:
		// each replica makes the same draw sequence, as real stations
		// seeded with one agreed value would.
		if f, ok := cfg.Policy.(window.ForkablePolicy); ok {
			m.policies = append(m.policies, f.Fork())
		} else {
			m.policies = append(m.policies, cfg.Policy)
		}
	}
	m.resolvers = make([]*window.Resolver, cfg.Stations)
	for i := range m.resolvers {
		m.resolvers[i] = &window.Resolver{}
		if cfg.Faults.Enabled() {
			m.resolvers[i].SetFaultTolerant(true)
		}
	}
	// Only one of the (identical, lockstep) resolvers observes, or every
	// split would be counted once per station.
	m.resolvers[0].Observe(cfg.Collector)
	m.discardFn = func(d station.Message) {
		if m.measured(d.Arrival) {
			m.rep.LostSender++
		}
	}
	m.slotFn = m.slot
	m.lockEvery, m.lockIdx = lockstepPlan(cfg)
	m.bindShardFns()

	checkpoint, check := conservationStart(cfg.Collector)
	m.kernel.Schedule(0, 0, m.slotFn)
	m.kernel.RunUntil(cfg.EndTime)
	if m.runErr != nil {
		return m.rep, m.runErr
	}
	m.finish()
	if check != nil {
		if err := check.CheckConservation(checkpoint, m.resident, m.ch.Stats().TotalTime()); err != nil {
			return m.rep, fmt.Errorf("sim: %w", err)
		}
	}
	return m.rep, nil
}

// bindShardFns builds the pooled loop bodies once.  Each writes only its
// own stations' state and its own worker scratch slot.
func (m *denseState) bindShardFns() {
	w := m.pool.workers
	m.wTotal = make([]int, w)
	m.wTx = make([]int, w)
	m.wErr = make([]error, w)
	m.countFn = func(w, lo, hi int) {
		total, tx := 0, -1
		for i := lo; i < hi; i++ {
			if c := m.stations[i].CountIn(m.curEnabled); c > 0 {
				total += c
				tx = i
			}
		}
		m.wTotal[w], m.wTx[w] = total, tx
	}
	m.countOwnFn = func(w, lo, hi int) {
		total, tx := 0, -1
		for i := lo; i < hi; i++ {
			if c := m.stations[i].CountIn(m.resolvers[i].Enabled()); c > 0 {
				total += c
				tx = i
			}
		}
		m.wTotal[w], m.wTx[w] = total, tx
	}
	m.feedFn = func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			m.resolvers[i].OnFeedback(m.curFb)
		}
	}
	m.feedOwnFn = func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			m.resolvers[i].OnFeedback(m.perceived[i])
		}
	}
	m.resetFn = func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := m.trackers[i].View(m.curNow, m.cfg.Tau, m.cfg.Lambda)
			if m.inj != nil {
				// Phantom-split give-up bound: false collisions otherwise
				// spiral to the depth bound (see globalState.resolveFaulty).
				v.MinSplitLen = m.cfg.Tau / 1024
			}
			if err := m.resolvers[i].Reset(m.policies[i], v); err != nil {
				m.wErr[w] = fmt.Errorf("sim: station %d resolver: %w", i, err)
				return
			}
		}
	}
	m.commitFn = func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			m.trackers[i].Commit(m.curEnd, m.curExamined)
		}
	}
}

// countAll merges the pooled membership count: the network-wide message
// total and the highest-index station holding any (the unique sender
// whenever the total is 1).
func (m *denseState) countAll(fn func(w, lo, hi int)) (total, txStation int) {
	for w := range m.wTotal {
		m.wTotal[w], m.wTx[w] = 0, -1
	}
	m.pool.run(len(m.stations), fn)
	txStation = -1
	for w := range m.wTotal {
		total += m.wTotal[w]
		if m.wTx[w] >= 0 {
			txStation = m.wTx[w]
		}
	}
	return total, txStation
}

func (m *denseState) fail(err error) {
	m.runErr = err
	m.kernel.Stop()
}

// verifySampledLockstep asserts that the sampled stations' resolvers
// agree with station 0 on the enabled window.  It runs every lockEvery-th
// probe slot rather than every slot, and over the sample rather than all
// M stations — the consistency it guards is global (all stations process
// identical feedback), so a divergence persists until a sampled
// comparison sees it.
func (m *denseState) verifySampledLockstep() bool {
	if !m.cfg.VerifyLockstep || m.probeSlots%m.lockEvery != 0 {
		return true
	}
	enabled := m.resolvers[0].Enabled()
	for _, i := range m.lockIdx {
		if r := m.resolvers[i]; r.Enabled() != enabled {
			m.fail(fmt.Errorf("sim: station %d enabled %v, station 0 enabled %v — lockstep broken",
				i, r.Enabled(), enabled))
			return false
		}
	}
	return true
}

// corruptSampledResolver implements the test-only desync injection hook:
// it feeds the last sampled station's resolver a flipped feedback value.
func corruptFeedback(fb window.Feedback) window.Feedback {
	if fb == window.Collision {
		return window.Idle
	}
	return window.Collision
}

// slot executes one protocol slot: decision epoch if needed, one probe,
// feedback distribution, and scheduling of the next slot.
func (m *denseState) slot() {
	now := m.kernel.Now()
	if now >= m.cfg.EndTime {
		return
	}
	for _, s := range m.stations {
		s.GenerateUntil(now)
	}
	backlog := 0
	for _, s := range m.stations {
		backlog += s.QueueLen()
	}
	if backlog > m.rep.MaxBacklog {
		m.rep.MaxBacklog = backlog
	}
	maxBacklog := m.cfg.MaxBacklog
	if maxBacklog <= 0 {
		maxBacklog = 1 << 20
	}
	if backlog > maxBacklog {
		m.fail(fmt.Errorf("sim: backlog exceeded %d at t=%v", maxBacklog, now))
		return
	}

	if !m.inProcess {
		// Decision epoch at every station.
		if !m.beginProcess(now) {
			// Nothing unexamined yet: idle for one slot.
			m.kernel.ScheduleAfter(m.cfg.Tau, 0, m.slotFn)
			return
		}
	}
	m.probeSlots++

	if m.inj != nil {
		m.faultySlot(now)
		return
	}

	if !m.verifySampledLockstep() {
		return
	}

	// Stations transmit; multiple messages at one station jam the slot.
	m.curEnabled = m.resolvers[0].Enabled()
	totalMsgs, txStation := m.countAll(m.countFn)
	fb, dur := m.ch.ResolveSlot(totalMsgs)

	if n := len(m.lockIdx); n > 0 && m.cfg.lockstepFaultAt > 0 && m.probeSlots >= m.cfg.lockstepFaultAt {
		for i, r := range m.resolvers {
			if i == m.lockIdx[n-1] {
				r.OnFeedback(corruptFeedback(fb))
			} else {
				r.OnFeedback(fb)
			}
		}
	} else {
		m.curFb = fb
		m.pool.run(len(m.resolvers), m.feedFn)
	}

	if fb == window.Success {
		msg, ok := m.stations[txStation].PopOldestIn(m.curEnabled)
		if !ok {
			m.fail(fmt.Errorf("sim: station %d vanished message in %v", txStation, m.curEnabled))
			return
		}
		m.recordTransmission(msg, now, now+dur)
	}

	if m.resolvers[0].Done() {
		m.curEnd = now + dur
		m.curExamined = m.resolvers[0].Examined()
		m.pool.run(len(m.trackers), m.commitFn)
		m.inProcess = false
	}
	m.kernel.ScheduleAfter(dur, 0, m.slotFn)
}

// faultySlot executes one protocol slot under imperfect feedback: the
// channel classifies the true outcome, every station perceives it through
// the fault layer (independently under Config.Faults.PerStation), message
// delivery is gated on the *sender's own* perception (a sender that
// misreads its successful slot aborts the transmission, which then costs
// τ as a collision slot — see the internal/fault package doc), and the
// engine watches for desynchronization, answering it with the network-
// wide recovery protocol: every station aborts its process, nothing is
// committed, and the next decision epoch re-enables the window from the
// common pre-process state, with element-(4) deadline discards still
// enforced on whatever the re-enabled window holds.
func (m *denseState) faultySlot(now float64) {
	// Each station transmits by its own resolver's view.  The views agree
	// whenever this point is reached: desynchronization is detected and
	// recovered in the very slot it first manifests, before it can drive
	// divergent transmission decisions.
	totalMsgs, txStation := m.countAll(m.countOwnFn)
	truth := channel.Classify(totalMsgs)
	slot := m.slotIdx
	m.slotIdx++
	if m.inj.PerStation() {
		// Independent per-station sensing: each misread is its own fault.
		for i := range m.stations {
			fb, kind, faulted := m.inj.Perceive(slot, i, truth)
			m.perceived[i] = fb
			if faulted {
				m.fo.RecordFault(kind)
			}
		}
	} else {
		// Common noise: the slot is corrupted once, for everyone.
		fb, kind, faulted := m.inj.Perceive(slot, 0, truth)
		if faulted {
			m.fo.RecordFault(kind)
		}
		for i := range m.perceived {
			m.perceived[i] = fb
		}
		// Shared perception preserves lockstep; keep asserting it.
		if !m.verifySampledLockstep() {
			return
		}
	}

	delivered := truth == window.Success && m.perceived[txStation] == window.Success
	dur := m.ch.AccountSlot(truth, delivered)
	if delivered {
		msg, ok := m.stations[txStation].PopOldestIn(m.resolvers[txStation].Enabled())
		if !ok {
			m.fail(fmt.Errorf("sim: station %d vanished message in %v", txStation, m.resolvers[txStation].Enabled()))
			return
		}
		m.recordTransmission(msg, now, now+dur)
	}

	m.pool.run(len(m.resolvers), m.feedOwnFn)

	if m.inj.PerStation() && m.desynced() {
		m.fo.RecordDesync()
		m.fo.RecordRecovery()
		for _, r := range m.resolvers {
			r.Abort()
		}
		m.inProcess = false // commit nothing: trackers stay at the common pre-process state
	} else if m.resolvers[0].Done() {
		if m.resolvers[0].Recovered() {
			m.fo.RecordRecovery()
		}
		m.curEnd = now + dur
		m.curExamined = m.resolvers[0].Examined()
		m.pool.run(len(m.trackers), m.commitFn)
		m.inProcess = false
	}
	m.kernel.ScheduleAfter(dur, 0, m.slotFn)
}

// desynced reports whether the stations' resolvers disagree after this
// slot's feedback: mid-process every resolver must enable the same window
// and agree on being unfinished; at process end all must agree on the
// outcome and on the intervals they examined.  The end-state comparison
// matters because stations perceiving different feedback can finish the
// same slot in *silently* divergent states (one marks the window
// examined after a perceived success while another released it after an
// erasure) — committing either view would fork the trackers for good.
func (m *denseState) desynced() bool {
	r0 := m.resolvers[0]
	for _, r := range m.resolvers[1:] {
		if r.Done() != r0.Done() {
			return true
		}
	}
	if !r0.Done() {
		for _, r := range m.resolvers[1:] {
			if r.Enabled() != r0.Enabled() {
				return true
			}
		}
		return false
	}
	ex0 := r0.Examined()
	for _, r := range m.resolvers[1:] {
		if r.Success() != r0.Success() {
			return true
		}
		ex := r.Examined()
		if len(ex) != len(ex0) {
			return true
		}
		for j := range ex {
			if ex[j] != ex0[j] {
				return true
			}
		}
	}
	return false
}

// beginProcess performs the common decision epoch: sender discard, view
// construction and resolver recycling at every station.  It returns false
// when there is nothing to examine yet.
func (m *denseState) beginProcess(now float64) bool {
	for i, s := range m.stations {
		if m.cfg.Policy.Discards() {
			horizon := m.trackers[i].Horizon(now)
			s.DiscardArrivedBeforeFunc(horizon, m.discardFn)
		}
	}
	view := m.trackers[0].View(now, m.cfg.Tau, m.cfg.Lambda)
	if view.TNewest-view.TPast <= 0 {
		return false
	}
	for w := range m.wErr {
		m.wErr[w] = nil
	}
	m.curNow = now
	m.pool.run(len(m.stations), m.resetFn)
	for _, err := range m.wErr {
		if err != nil {
			m.fail(err)
			return false
		}
	}
	m.inProcess = true
	return true
}

func (m *denseState) measured(arrival float64) bool {
	return arrival >= m.cfg.Warmup && arrival < m.cfg.EndTime
}

func (m *denseState) recordTransmission(msg station.Message, successStart, txEnd float64) {
	m.rep.Transmissions++
	trueWait := successStart - msg.Arrival
	m.col.RecordTransmission(trueWait, trueWait <= m.cfg.K)
	if m.measured(msg.Arrival) {
		m.rep.TrueWait.Add(trueWait)
		m.rep.WaitHist.Add(trueWait)
		schedStart := math.Max(m.lastTxEnd, msg.Arrival)
		m.rep.SchedulingSlots.Add((successStart - schedStart) / m.cfg.Tau)
		if trueWait > m.cfg.K {
			m.rep.LostLate++
		} else {
			m.rep.AcceptedInTime++
		}
	}
	m.lastTxEnd = txEnd
}

func (m *denseState) finish() {
	end := m.cfg.EndTime
	all := window.Window{Start: 0, End: end + 1}
	for _, s := range m.stations {
		for {
			msg, ok := s.PopOldestIn(all)
			if !ok {
				break
			}
			m.resident++
			if !m.measured(msg.Arrival) {
				continue
			}
			if end-msg.Arrival > m.cfg.K {
				m.rep.LostPending++
			} else {
				m.rep.Censored++
			}
			m.rep.EndBacklog++
		}
	}
	m.col.RecordEndPending(m.rep.LostPending, m.rep.Censored)
	st := m.ch.Stats()
	m.rep.IdleSlots = st.IdleSlots
	m.rep.CollisionSlots = st.CollisionSlots
	m.rep.Utilization = st.Utilization()
	// Every measured message lands in exactly one outcome bucket, so the
	// offered count is their sum (the report tests verify the identity
	// Offered = Decided + Censored on the global simulator, whose offered
	// count is taken at arrival time instead).
	m.rep.Offered = m.rep.Decided() + m.rep.Censored
}
