package sim

// Steady-state allocation contract of the global-view engine: once the
// pending queue, resolver scratch and tracker intervals have grown to
// their working sizes, a decision-epoch step allocates nothing.  This is
// the invariant the PERFORMANCE.md hot-path description promises and the
// benchmark-regression harness (cmd/simbench) assumes when it reports
// allocs/message.

import (
	"testing"

	"windowctl/internal/des"
	"windowctl/internal/window"
)

// allocConfig is a busy-but-stable operating point: ρ′ = 0.75 keeps the
// backlog non-empty most of the time (exercising counting, splitting,
// extraction and element-(4) discards) while still leaving idle stretches
// for the fast-forward path.  EndTime is effectively unbounded so the
// measured steps never hit the finish path.
var allocConfig = Config{
	Policy:  window.Controlled{Length: window.FixedG(2.6)},
	Tau:     1,
	M:       25,
	Lambda:  0.75 / 25,
	K:       100,
	EndTime: 1e15,
	Seed:    97,
}

func TestGlobalStepZeroAlloc(t *testing.T) {
	g, err := newGlobalState(allocConfig)
	if err != nil {
		t.Fatal(err)
	}
	// Warm every buffer past its working size: pending-queue capacity,
	// resolver step/interval scratch, tracker interval set, histogram.
	for i := 0; i < 200000; i++ {
		if err := g.step(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100000, func() {
		if err := g.step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state step allocates %v times per run; the hot path must be allocation-free", avg)
	}
}

// TestMultiStepZeroAlloc extends the contract to the shared-state
// multi-station fast path: once the Bank's arrival heap, the pending
// multiset and the resolver scratch have reached their working sizes, a
// kernel step (one protocol slot, including the sampled lockstep check)
// allocates nothing.  Run with both event-queue backends so the calendar
// bucket rings are covered too.
func TestMultiStepZeroAlloc(t *testing.T) {
	for _, q := range []struct {
		name string
		kind des.QueueKind
	}{
		{"heap", des.QueueHeap},
		{"calendar", des.QueueCalendar},
	} {
		t.Run(q.name, func(t *testing.T) {
			cfg := MultiConfig{
				Config:         allocConfig,
				Stations:       64,
				VerifyLockstep: true,
				EventQueue:     q.kind,
			}
			m, err := newMultiState(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m.kernel.Schedule(0, 0, m.slotFn)
			for i := 0; i < 200000; i++ {
				if !m.kernel.Step() {
					t.Fatal("kernel drained during warmup")
				}
				if m.runErr != nil {
					t.Fatal(m.runErr)
				}
			}
			avg := testing.AllocsPerRun(100000, func() {
				if !m.kernel.Step() {
					t.Fatal("kernel drained during measurement")
				}
				if m.runErr != nil {
					t.Fatal(m.runErr)
				}
			})
			if avg != 0 {
				t.Fatalf("steady-state multi slot allocates %v times per run; the decision-epoch hot path must be allocation-free", avg)
			}
		})
	}
}

// TestGlobalStepZeroAllocNoFastForward pins the probe-by-probe idle path
// (every idle slot runs a full process) to the same contract.
func TestGlobalStepZeroAllocNoFastForward(t *testing.T) {
	cfg := allocConfig
	cfg.DisableFastForward = true
	cfg.Lambda = 0.3 / 25 // idle-heavy: most processes find nothing
	g, err := newGlobalState(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		if err := g.step(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50000, func() {
		if err := g.step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state idle step allocates %v times per run", avg)
	}
}
