package sim

import (
	"fmt"
	"math"
	"strings"

	"windowctl/internal/queueing"
	"windowctl/internal/window"
)

// PanelSpec identifies one panel of the paper's figure 7: a (ρ′, M) pair
// and a grid of time constraints.
type PanelSpec struct {
	// RhoPrime is the normalized offered load λ′·M·τ.
	RhoPrime float64
	// M is the message length in slots.
	M float64
	// Tau is the slot time; 0 means 1 (the natural unit).
	Tau float64
	// KOverM lists the constraints in units of the message time M·τ;
	// empty means the standard grid {0.5, 1, 1.5, 2, 3, 4, 6, 8}.
	KOverM []float64
}

// DefaultKOverM is the standard constraint grid of the harness.
var DefaultKOverM = []float64{0.5, 1, 1.5, 2, 3, 4, 6, 8}

// AllPanels returns the six panels of figure 7:
// ρ′ ∈ {.25, .50, .75} × M ∈ {25, 100}.
func AllPanels() []PanelSpec {
	var out []PanelSpec
	for _, rp := range []float64{0.25, 0.50, 0.75} {
		for _, m := range []float64{25, 100} {
			out = append(out, PanelSpec{RhoPrime: rp, M: m})
		}
	}
	return out
}

func (p PanelSpec) withDefaults() PanelSpec {
	if p.Tau == 0 {
		p.Tau = 1
	}
	if len(p.KOverM) == 0 {
		p.KOverM = append([]float64(nil), DefaultKOverM...)
	}
	return p
}

// Point is one constraint value of a panel with every curve evaluated.
type Point struct {
	// KOverM and K give the constraint in message times and absolute time.
	KOverM, K float64
	// Controlled is the analytic loss of the controlled protocol (eq 4.7).
	Controlled float64
	// FCFS and LCFS are the analytic baseline losses; NaN if the baseline
	// queue is unstable at this load.
	FCFS, LCFS float64
	// SimControlled is the simulated loss of the controlled protocol
	// (NaN when simulation was disabled).
	SimControlled float64
	// SimLo and SimHi bound SimControlled at 95% confidence.
	SimLo, SimHi float64
	// SimFCFS and SimLCFS are simulated baseline losses (NaN when
	// disabled).
	SimFCFS, SimLCFS float64
}

// Panel is a fully evaluated figure-7 panel.
type Panel struct {
	Spec   PanelSpec
	Points []Point
}

// SimOptions controls the simulation side of the harness.
type SimOptions struct {
	// Disable skips all simulation (analytic curves only).
	Disable bool
	// Baselines additionally simulates the FCFS and LCFS protocols.
	Baselines bool
	// EndTime and Warmup configure each run; zero values choose horizons
	// long enough for ~1e5 offered messages.
	EndTime, Warmup float64
	// Seed drives the runs.
	Seed uint64
}

// Figure7Panel evaluates one panel: analytic curves from the queueing
// models, simulation points from the global-view simulator.
func Figure7Panel(spec PanelSpec, opt SimOptions) (Panel, error) {
	spec = spec.withDefaults()
	model := queueing.ProtocolModel{Tau: spec.Tau, M: spec.M, RhoPrime: spec.RhoPrime}
	lambda := model.Lambda()
	gStar := queueing.OptimalWindowContent()

	endTime := opt.EndTime
	if endTime == 0 {
		endTime = 1e5 / lambda // ~1e5 offered messages
	}
	warmup := opt.Warmup
	if warmup == 0 {
		warmup = endTime / 20
	}

	panel := Panel{Spec: spec}
	for _, km := range spec.KOverM {
		k := km * spec.M * spec.Tau
		pt := Point{KOverM: km, K: k,
			SimControlled: math.NaN(), SimLo: math.NaN(), SimHi: math.NaN(),
			SimFCFS: math.NaN(), SimLCFS: math.NaN()}

		res, err := model.ControlledLoss(k)
		if err != nil {
			return Panel{}, fmt.Errorf("controlled loss at K=%v: %w", k, err)
		}
		pt.Controlled = res.Loss
		if f, err := model.FCFSLoss(k); err == nil {
			pt.FCFS = f
		} else {
			pt.FCFS = math.NaN()
		}
		if l, err := model.LCFSLoss(k); err == nil {
			pt.LCFS = l
		} else {
			pt.LCFS = math.NaN()
		}

		if !opt.Disable {
			cfg := Config{
				Policy: window.Controlled{Length: window.FixedG(gStar)},
				Tau:    spec.Tau, M: spec.M, Lambda: lambda, K: k,
				EndTime: endTime, Warmup: warmup,
				Seed: opt.Seed ^ uint64(km*1024) ^ uint64(spec.M),
			}
			rep, err := RunGlobal(cfg)
			if err != nil {
				return Panel{}, fmt.Errorf("controlled simulation at K=%v: %w", k, err)
			}
			pt.SimControlled = rep.Loss()
			pt.SimLo, pt.SimHi = rep.LossCI(0.95)

			if opt.Baselines {
				fcfg := cfg
				fcfg.Policy = window.FCFS{Length: window.FixedG(gStar)}
				if frep, err := RunGlobal(fcfg); err == nil {
					pt.SimFCFS = frep.Loss()
				}
				lcfg := cfg
				lcfg.Policy = window.LCFS{Length: window.FixedG(gStar)}
				if lrep, err := RunGlobal(lcfg); err == nil {
					pt.SimLCFS = lrep.Loss()
				}
			}
		}
		panel.Points = append(panel.Points, pt)
	}
	return panel, nil
}

// Format renders the panel as an aligned text table, the library's
// counterpart of one figure-7 plot.
func (p Panel) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 panel: rho'=%.2f  M=%g  (loss fraction vs. constraint K)\n",
		p.Spec.RhoPrime, p.Spec.M)
	fmt.Fprintf(&b, "%8s %10s %12s %12s %12s %14s %12s %12s\n",
		"K/M", "K", "controlled", "fcfs", "lcfs", "sim(ctrl)", "sim(fcfs)", "sim(lcfs)")
	for _, pt := range p.Points {
		fmt.Fprintf(&b, "%8.2f %10.1f %12.5f %12s %12s %14s %12s %12s\n",
			pt.KOverM, pt.K, pt.Controlled,
			fmtLoss(pt.FCFS), fmtLoss(pt.LCFS),
			fmtSim(pt.SimControlled, pt.SimLo, pt.SimHi),
			fmtLoss(pt.SimFCFS), fmtLoss(pt.SimLCFS))
	}
	return b.String()
}

func fmtLoss(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.5f", v)
}

func fmtSim(v, lo, hi float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.4f±%.4f", v, (hi-lo)/2)
}
