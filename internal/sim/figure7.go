package sim

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"windowctl/internal/metrics"
	"windowctl/internal/protocol"
	"windowctl/internal/queueing"
	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

// PanelSpec identifies one panel of the paper's figure 7: a (ρ′, M) pair
// and a grid of time constraints.
type PanelSpec struct {
	// RhoPrime is the normalized offered load λ′·M·τ.
	RhoPrime float64
	// M is the message length in slots.
	M float64
	// Tau is the slot time; 0 means 1 (the natural unit).
	Tau float64
	// KOverM lists the constraints in units of the message time M·τ;
	// empty means the standard grid {0.5, 1, 1.5, 2, 3, 4, 6, 8}.
	KOverM []float64
}

// DefaultKOverM is the standard constraint grid of the harness.
var DefaultKOverM = []float64{0.5, 1, 1.5, 2, 3, 4, 6, 8}

// AllPanels returns the six panels of figure 7:
// ρ′ ∈ {.25, .50, .75} × M ∈ {25, 100}.
func AllPanels() []PanelSpec {
	var out []PanelSpec
	for _, rp := range []float64{0.25, 0.50, 0.75} {
		for _, m := range []float64{25, 100} {
			out = append(out, PanelSpec{RhoPrime: rp, M: m})
		}
	}
	return out
}

func (p PanelSpec) withDefaults() PanelSpec {
	if p.Tau == 0 {
		p.Tau = 1
	}
	if len(p.KOverM) == 0 {
		p.KOverM = append([]float64(nil), DefaultKOverM...)
	}
	return p
}

// Point is one constraint value of a panel with every curve evaluated.
type Point struct {
	// KOverM and K give the constraint in message times and absolute time.
	KOverM, K float64
	// Controlled is the analytic loss of the controlled protocol (eq 4.7).
	Controlled float64
	// FCFS and LCFS are the analytic baseline losses; NaN if the baseline
	// queue is unstable at this load.
	FCFS, LCFS float64
	// SimControlled is the simulated loss of the controlled protocol
	// (NaN when simulation was disabled).
	SimControlled float64
	// SimLo and SimHi bound SimControlled at 95% confidence.
	SimLo, SimHi float64
	// SimFCFS and SimLCFS are simulated baseline losses (NaN when
	// disabled or failed).
	SimFCFS, SimLCFS float64
	// SimFCFSErr and SimLCFSErr record why a requested baseline
	// simulation produced no value (nil when it succeeded or was not
	// requested).  The corresponding Sim* field is NaN on failure.
	SimFCFSErr, SimLCFSErr error
	// ControlledMetrics, FCFSMetrics and LCFSMetrics hold the slot-level
	// counters of each simulated run when SimOptions.Metrics is set (nil
	// otherwise, or when the run was skipped or failed).  Their
	// conservation invariants were verified by the run that filled them.
	ControlledMetrics, FCFSMetrics, LCFSMetrics *metrics.SlotMetrics
}

// Panel is a fully evaluated figure-7 panel.
type Panel struct {
	Spec   PanelSpec
	Points []Point
	// Protocol names the protocol the Sim* main curve ran
	// (SimOptions.Protocol; "controlled" when it was left empty).
	Protocol string
}

// SimOptions controls the simulation side of the harness.
type SimOptions struct {
	// Disable skips all simulation (analytic curves only).
	Disable bool
	// Baselines additionally simulates the FCFS and LCFS protocols.
	Baselines bool
	// EndTime and Warmup configure each run; zero values choose horizons
	// long enough for ~Messages offered messages.
	EndTime, Warmup float64
	// Messages is the target number of offered messages per run used to
	// derive the horizon when EndTime is zero; 0 means 1e5.
	Messages float64
	// Seed drives the runs.
	Seed uint64
	// Metrics attaches a fresh metrics.SlotMetrics to every simulation
	// run and surfaces it on the resulting Point, so per-panel slot,
	// utilization and discard accounting (the §4.2 quantities) comes out
	// of the pipeline itself; every instrumented run's conservation
	// invariants are checked and a violation fails the evaluation.
	Metrics bool
	// Workers bounds the number of work items (one per constraint and
	// protocol, plus one analytic job per panel) evaluated concurrently;
	// 0 means GOMAXPROCS, 1 means sequential.  The output is
	// bit-identical at every worker count: each item's random stream is
	// derived from the item's identity, never from scheduling order.
	Workers int
	// Protocol selects which registered protocol (see internal/protocol)
	// the main simulated curve runs; empty means "controlled", keeping
	// the paper's pipeline bit-identical to before the plugin registry
	// existed.  The analytic curves and the FCFS/LCFS baselines are
	// unaffected — they are the fixed comparison yardstick.
	Protocol string
}

// Work-item protocol tags mixed into per-item seeds.  The values are part
// of the reproducibility contract: changing them changes every simulated
// curve.
const (
	protoControlled = iota
	protoFCFS
	protoLCFS
)

// itemSeed derives the random seed of one simulation work item from the
// base seed and the item's full identity.  Seeding by identity rather
// than by loop position keeps every run reproducible under any worker
// count and under re-slicing of the panel list, and the SplitMix64
// avalanche keeps neighbouring items (same panel, adjacent constraints)
// statistically independent — unlike the XOR of truncated parameters it
// replaces, which collided whenever K/M·1024 and M shared bits.
func itemSeed(seed uint64, spec PanelSpec, kIndex, proto int) uint64 {
	return rngutil.Mix64(seed,
		math.Float64bits(spec.RhoPrime),
		math.Float64bits(spec.M),
		math.Float64bits(spec.Tau),
		uint64(kIndex),
		uint64(proto),
	)
}

// simPolicy materializes one simulation work item's protocol through
// the plugin registry.  The builtin builders reproduce the pre-registry
// construction exactly (pinned by the engine goldens), so routing the
// controlled curve and the FCFS/LCFS baselines through here changes no
// bits; named zoo protocols slot into the same pipeline.
func simPolicy(name string, spec PanelSpec, lambda, k, gStar float64, seed uint64) (window.Policy, error) {
	return protocol.Build(name, protocol.Params{
		Tau: spec.Tau, M: spec.M, Lambda: lambda, K: k, G: gStar, Seed: seed,
	})
}

// runJobs executes the jobs over a bounded worker pool and returns the
// lowest-indexed error, independent of scheduling order.  Each job owns
// the memory it writes, so the only synchronization needed is the final
// barrier.
func runJobs(jobs []func() error, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	errs := make([]error, len(jobs))
	if workers <= 1 {
		for i, job := range jobs {
			errs[i] = job()
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					errs[i] = jobs[i]()
				}
			}()
		}
		for i := range jobs {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Figure7Panels evaluates a set of panels by fanning the work — one
// batched analytic solve per panel plus one simulation run per
// (constraint, protocol) — over a bounded worker pool.  Results are
// bit-identical to sequential evaluation (Workers: 1); see
// SimOptions.Workers.  This is the driver behind cmd/figures -parallel.
func Figure7Panels(specs []PanelSpec, opt SimOptions) ([]Panel, error) {
	simProto := opt.Protocol
	if simProto == "" {
		simProto = "controlled"
	}
	panels := make([]Panel, len(specs))
	var jobs []func() error

	for pi := range specs {
		spec := specs[pi].withDefaults()
		model := queueing.ProtocolModel{Tau: spec.Tau, M: spec.M, RhoPrime: spec.RhoPrime}
		lambda := model.Lambda()
		gStar := queueing.OptimalWindowContent()

		pts := make([]Point, len(spec.KOverM))
		ks := make([]float64, len(spec.KOverM))
		for i, km := range spec.KOverM {
			ks[i] = km * spec.M * spec.Tau
			pts[i] = Point{KOverM: km, K: ks[i],
				FCFS: math.NaN(), LCFS: math.NaN(),
				SimControlled: math.NaN(), SimLo: math.NaN(), SimHi: math.NaN(),
				SimFCFS: math.NaN(), SimLCFS: math.NaN()}
		}
		panels[pi] = Panel{Spec: spec, Points: pts, Protocol: simProto}

		// One analytic job per panel: all three curves ride the batched
		// multi-K solver, sharing convolution series across the grid.
		jobs = append(jobs, func() error {
			grids, err := model.LossGrids(ks)
			if err != nil {
				return fmt.Errorf("panel rho'=%v M=%v: controlled loss: %w",
					spec.RhoPrime, spec.M, err)
			}
			for i := range pts {
				pts[i].Controlled = grids.Controlled[i].Loss
				pts[i].FCFS = grids.FCFS[i]
				pts[i].LCFS = grids.LCFS[i]
			}
			return nil
		})

		if opt.Disable {
			continue
		}
		endTime := opt.EndTime
		if endTime == 0 {
			messages := opt.Messages
			if messages == 0 {
				messages = 1e5
			}
			endTime = messages / lambda
		}
		warmup := opt.Warmup
		if warmup == 0 {
			warmup = endTime / 20
		}
		// newCollector gives each instrumented run its own fresh
		// SlotMetrics (they are not safe for sharing across the worker
		// pool), shaped like the run's own Report histogram.
		newCollector := func(k float64) *metrics.SlotMetrics {
			if !opt.Metrics {
				return nil
			}
			return metrics.NewSlotMetrics(spec.Tau, int(k/spec.Tau)+64)
		}
		for i := range pts {
			i := i
			base := Config{
				Tau: spec.Tau, M: spec.M, Lambda: lambda, K: ks[i],
				EndTime: endTime, Warmup: warmup,
			}
			jobs = append(jobs, func() error {
				cfg := base
				cfg.Seed = itemSeed(opt.Seed, spec, i, protoControlled)
				pol, err := simPolicy(simProto, spec, lambda, ks[i], gStar, cfg.Seed)
				if err != nil {
					return fmt.Errorf("panel rho'=%v M=%v: %w", spec.RhoPrime, spec.M, err)
				}
				cfg.Policy = pol
				sm := newCollector(cfg.K)
				if sm != nil {
					cfg.Collector = sm
				}
				rep, err := RunGlobal(cfg)
				if err != nil {
					return fmt.Errorf("panel rho'=%v M=%v: %s simulation at K=%v: %w",
						spec.RhoPrime, spec.M, simProto, ks[i], err)
				}
				pts[i].SimControlled = rep.Loss()
				pts[i].SimLo, pts[i].SimHi = rep.LossCI(0.95)
				pts[i].ControlledMetrics = sm
				return nil
			})
			if !opt.Baselines {
				continue
			}
			jobs = append(jobs, func() error {
				cfg := base
				cfg.Seed = itemSeed(opt.Seed, spec, i, protoFCFS)
				pol, err := simPolicy("fcfs", spec, lambda, ks[i], gStar, cfg.Seed)
				if err != nil {
					return err
				}
				cfg.Policy = pol
				sm := newCollector(cfg.K)
				if sm != nil {
					cfg.Collector = sm
				}
				if rep, err := RunGlobal(cfg); err == nil {
					pts[i].SimFCFS = rep.Loss()
					pts[i].FCFSMetrics = sm
				} else {
					pts[i].SimFCFSErr = err
				}
				return nil
			})
			jobs = append(jobs, func() error {
				cfg := base
				cfg.Seed = itemSeed(opt.Seed, spec, i, protoLCFS)
				pol, err := simPolicy("lcfs", spec, lambda, ks[i], gStar, cfg.Seed)
				if err != nil {
					return err
				}
				cfg.Policy = pol
				sm := newCollector(cfg.K)
				if sm != nil {
					cfg.Collector = sm
				}
				if rep, err := RunGlobal(cfg); err == nil {
					pts[i].SimLCFS = rep.Loss()
					pts[i].LCFSMetrics = sm
				} else {
					pts[i].SimLCFSErr = err
				}
				return nil
			})
		}
	}

	if err := runJobs(jobs, opt.Workers); err != nil {
		return nil, err
	}
	return panels, nil
}

// Figure7Panel evaluates one panel: analytic curves from the batched
// queueing solvers, simulation points from the global-view simulator,
// with the per-(constraint, protocol) work spread over SimOptions.Workers.
func Figure7Panel(spec PanelSpec, opt SimOptions) (Panel, error) {
	panels, err := Figure7Panels([]PanelSpec{spec}, opt)
	if err != nil {
		return Panel{}, err
	}
	return panels[0], nil
}

// Format renders the panel as an aligned text table, the library's
// counterpart of one figure-7 plot.  Baseline simulation failures are
// listed below the table.
func (p Panel) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 panel: rho'=%.2f  M=%g  (loss fraction vs. constraint K)%s\n",
		p.Spec.RhoPrime, p.Spec.M, p.protocolNote())
	fmt.Fprintf(&b, "%8s %10s %12s %12s %12s %14s %12s %12s\n",
		"K/M", "K", "controlled", "fcfs", "lcfs", p.simLabel(), "sim(fcfs)", "sim(lcfs)")
	for _, pt := range p.Points {
		fmt.Fprintf(&b, "%8.2f %10.1f %12.5f %12s %12s %14s %12s %12s\n",
			pt.KOverM, pt.K, pt.Controlled,
			fmtLoss(pt.FCFS), fmtLoss(pt.LCFS),
			fmtSim(pt.SimControlled, pt.SimLo, pt.SimHi),
			fmtLoss(pt.SimFCFS), fmtLoss(pt.SimLCFS))
	}
	for _, pt := range p.Points {
		if pt.SimFCFSErr != nil {
			fmt.Fprintf(&b, "note: sim(fcfs) failed at K/M=%.2f: %v\n", pt.KOverM, pt.SimFCFSErr)
		}
		if pt.SimLCFSErr != nil {
			fmt.Fprintf(&b, "note: sim(lcfs) failed at K/M=%.2f: %v\n", pt.KOverM, pt.SimLCFSErr)
		}
	}
	return b.String()
}

// MetricsTable renders the slot-level counters collected for the panel's
// simulation runs (SimOptions.Metrics) as an aligned text table: one row
// per (constraint, protocol) with slot counts, window splits, channel
// utilization and the sender-discard accounting behind the §4.2 ablation.
// Runs without metrics (disabled, skipped or failed) are omitted; the
// table says so when nothing was collected.
func (p Panel) MetricsTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Slot metrics: rho'=%.2f  M=%g  (per simulated run; invariants verified)%s\n",
		p.Spec.RhoPrime, p.Spec.M, p.protocolNote())
	mainLabel := p.Protocol
	if mainLabel == "" {
		mainLabel = "controlled"
	}
	fmt.Fprintf(&b, "%8s %-10s %10s %10s %10s %8s %8s %10s %10s %10s\n",
		"K/M", "protocol", "idle", "success", "collision", "splits", "util",
		"discards", "disc.frac", "loss")
	rows := 0
	for _, pt := range p.Points {
		for _, row := range []struct {
			name string
			sm   *metrics.SlotMetrics
		}{
			{mainLabel, pt.ControlledMetrics},
			{"fcfs", pt.FCFSMetrics},
			{"lcfs", pt.LCFSMetrics},
		} {
			if row.sm == nil {
				continue
			}
			rows++
			fmt.Fprintf(&b, "%8.2f %-10s %10d %10d %10d %8d %8.4f %10d %10.4f %10.4f\n",
				pt.KOverM, row.name,
				row.sm.IdleSlots, row.sm.SuccessSlots, row.sm.CollisionSlots,
				row.sm.Splits, row.sm.Utilization(),
				row.sm.Discards, row.sm.DiscardFraction(), row.sm.Loss())
		}
	}
	if rows == 0 {
		b.WriteString("(no metrics collected — run with SimOptions.Metrics / -metrics)\n")
	}
	return b.String()
}

// protocolNote annotates table titles when the simulated curve ran a
// zoo protocol instead of the paper's controlled protocol.
func (p Panel) protocolNote() string {
	if p.Protocol == "" || p.Protocol == "controlled" {
		return ""
	}
	return fmt.Sprintf("  [sim protocol: %s]", p.Protocol)
}

// simLabel is the column header of the main simulated curve.
func (p Panel) simLabel() string {
	if p.Protocol == "" || p.Protocol == "controlled" {
		return "sim(ctrl)"
	}
	return "sim(" + p.Protocol + ")"
}

func fmtLoss(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.5f", v)
}

func fmtSim(v, lo, hi float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.4f±%.4f", v, (hi-lo)/2)
}
