package sim

// Cross-engine oracle for the multi-station simulator: the shared-state
// fast path (multiState) must reproduce the per-station reference engine
// (denseState) bit for bit, at any worker count and with either kernel
// event-queue backend.  Fingerprints reuse the golden formatter, so
// "equal" means every report field equal, floats compared by their hex
// representation.

import (
	"strings"
	"testing"

	"windowctl/internal/des"
	"windowctl/internal/station"
)

// engineCase builds a fresh config per run: policies can carry stateful
// common-randomness streams, so sharing one config value across runs
// would let the first run perturb the second.
type engineCase struct {
	name string
	mk   func() MultiConfig
}

func engineCases() []engineCase {
	base := func(pol string, seed uint64, stations int) MultiConfig {
		return MultiConfig{
			Config: Config{
				Policy:  goldenPolicy(pol, 31),
				Tau:     1,
				M:       25,
				Lambda:  0.6 / 25,
				K:       50,
				EndTime: 20000,
				Warmup:  2000,
				Seed:    seed,
			},
			Stations:       stations,
			VerifyLockstep: true,
		}
	}
	return []engineCase{
		{"controlled", func() MultiConfig { return base("controlled", 2718, 8) }},
		{"random", func() MultiConfig { return base("random", 2719, 8) }},
		{"fcfs", func() MultiConfig { return base("fcfs", 2720, 8) }},
		{"faults/common", func() MultiConfig {
			cfg := base("controlled", 2818, 8)
			cfg.Faults = goldenFaultMix
			return cfg
		}},
		{"arrivals/onoff", func() MultiConfig {
			cfg := base("controlled", 3318, 8)
			cfg.Arrivals = onOffArrivals(8, cfg.Lambda)
			return cfg
		}},
		{"m1000", func() MultiConfig {
			cfg := base("controlled", 3518, 1000)
			cfg.Lambda = 0.5 / 25
			cfg.EndTime = 5000
			cfg.Warmup = 500
			return cfg
		}},
	}
}

func mustFingerprint(t *testing.T, cfg MultiConfig) string {
	t.Helper()
	rep, err := RunMultiStation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return goldenFingerprint(rep)
}

// TestMultiSharedMatchesDense pins the fast path to the reference engine.
func TestMultiSharedMatchesDense(t *testing.T) {
	for _, c := range engineCases() {
		t.Run(c.name, func(t *testing.T) {
			shared := mustFingerprint(t, c.mk())
			dense := c.mk()
			dense.forceDense = true
			if got := mustFingerprint(t, dense); got != shared {
				t.Errorf("dense engine diverged from shared fast path:\nshared: %s\ndense:  %s", shared, got)
			}
		})
	}
}

// TestMultiWorkersBitIdentical pins both engines' reports across worker
// counts: shards only partition index space, they never reorder results.
func TestMultiWorkersBitIdentical(t *testing.T) {
	for _, c := range engineCases()[:3] {
		t.Run(c.name, func(t *testing.T) {
			for _, dense := range []bool{false, true} {
				base := c.mk()
				base.Workers = 1
				base.forceDense = dense
				want := mustFingerprint(t, base)
				for _, workers := range []int{2, 5} {
					cfg := c.mk()
					cfg.Workers = workers
					cfg.forceDense = dense
					if got := mustFingerprint(t, cfg); got != want {
						t.Errorf("dense=%v workers=%d: report diverged:\nwant %s\ngot  %s", dense, workers, want, got)
					}
				}
			}
		})
	}
}

// TestMultiEventQueueBitIdentical pins the calendar-queue kernel to the
// heap kernel: both dispatch in identical order, so the whole simulation
// must not depend on the backend.
func TestMultiEventQueueBitIdentical(t *testing.T) {
	for _, c := range engineCases()[:2] {
		t.Run(c.name, func(t *testing.T) {
			want := mustFingerprint(t, c.mk())
			cfg := c.mk()
			cfg.EventQueue = des.QueueCalendar
			if got := mustFingerprint(t, cfg); got != want {
				t.Errorf("calendar kernel diverged from heap kernel:\nheap:     %s\ncalendar: %s", want, got)
			}
		})
	}
}

// TestMultiLockstepCatchesInjectedDesync corrupts one verified state
// machine's feedback mid-run and requires the sampled lockstep check to
// fail the run — on both engines.  This is the probe that keeps the
// sampled check honest: cheaper than the old every-slot/every-station
// scan, but still a real detector.
func TestMultiLockstepCatchesInjectedDesync(t *testing.T) {
	for _, dense := range []struct {
		name  string
		force bool
		every int
	}{
		{"shared", false, 0}, // default period; process-end compare catches it
		{"dense", true, 1},
	} {
		t.Run(dense.name, func(t *testing.T) {
			cfg := engineCases()[0].mk()
			cfg.forceDense = dense.force
			cfg.LockstepEvery = dense.every
			cfg.lockstepFaultAt = 97
			_, err := RunMultiStation(cfg)
			if err == nil || !strings.Contains(err.Error(), "lockstep") {
				t.Fatalf("injected desync not detected; err = %v", err)
			}
		})
	}
}

// TestMultiLockstepCleanRun double-checks the detector's false-positive
// rate: with no injected fault the sampled verification must stay silent
// even with an aggressive period and a full-population sample.
func TestMultiLockstepCleanRun(t *testing.T) {
	cfg := engineCases()[1].mk() // random policy: common-randomness forks
	cfg.LockstepEvery = 1
	cfg.LockstepSample = cfg.Stations
	if _, err := RunMultiStation(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMultiSharedRejectsNilArrival preserves the legacy factory contract.
func TestMultiSharedRejectsNilArrival(t *testing.T) {
	cfg := engineCases()[0].mk()
	cfg.Arrivals = func(int) station.ArrivalProcess { return nil }
	if _, err := RunMultiStation(cfg); err == nil {
		t.Fatal("nil arrival process accepted")
	}
}
