package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"windowctl/internal/fault"
	"windowctl/internal/protocol"
	"windowctl/internal/protocol/acdc"
	"windowctl/internal/protocol/tournament"
	"windowctl/internal/queueing"
	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

// protoTestConfig is a shared operating point for the protocol-plugin
// tests; callers override what they vary.
func protoTestConfig(seed uint64) Config {
	return Config{
		Tau: 1, M: 25, Lambda: 0.6 / 25, K: 50,
		EndTime: 30000, Warmup: 3000, Seed: seed,
	}
}

// directPolicy replicates the exact pre-registry construction of every
// protocol, including the Random baseline's historical seed derivation.
// If a registry builder drifts from this, the bit-identity test below
// catches it — the same contract the 47 engine goldens pin for the
// engines themselves.
func directPolicy(name string, cfg Config) window.Policy {
	g := window.FixedG(queueing.OptimalWindowContent())
	switch name {
	case "controlled":
		return window.Controlled{Length: g}
	case "fcfs":
		return window.FCFS{Length: g}
	case "lcfs":
		return window.LCFS{Length: g}
	case "random":
		// The pre-registry core.System.Policy derivation: run seed XOR
		// 0xC0FFEE.  Pinned — the goldens and sweep cache depend on it.
		return window.Random{Length: g, Rng: rngutil.New(cfg.Seed ^ 0xC0FFEE)}
	case tournament.Name:
		p, err := tournament.New(queueing.OptimalWindowContent(), cfg.Lambda, cfg.Seed)
		if err != nil {
			panic(err)
		}
		return p
	case acdc.Name:
		p, err := acdc.New(queueing.OptimalWindowContent(), acdc.DefaultBudget)
		if err != nil {
			panic(err)
		}
		return p
	}
	panic("unknown protocol " + name)
}

// TestProtocolRegistryBitIdentity pins the port of the resolvers onto
// the plugin registry: for every registered protocol, a run selected by
// Config.Protocol must be bit-identical (goldenFingerprint — floats by
// hex) to the same run with the directly constructed Policy value.
// Together with TestEngineGoldenEquivalence (which pins the direct
// constructions against the 47 pre-refactor goldens) this proves the
// registry path changed nothing.
func TestProtocolRegistryBitIdentity(t *testing.T) {
	for _, name := range protocol.Names() {
		switch name {
		case "controlled", "fcfs", "lcfs", "random", tournament.Name, acdc.Name:
		default:
			continue // test-registered throwaways from other files
		}
		t.Run(name, func(t *testing.T) {
			byName := protoTestConfig(9091)
			byName.Protocol = name
			gotByName, err := RunGlobal(byName)
			if err != nil {
				t.Fatalf("RunGlobal(Protocol=%q): %v", name, err)
			}
			byValue := protoTestConfig(9091)
			byValue.Policy = directPolicy(name, byValue)
			gotByValue, err := RunGlobal(byValue)
			if err != nil {
				t.Fatalf("RunGlobal(direct %q): %v", name, err)
			}
			if fp, fv := goldenFingerprint(gotByName), goldenFingerprint(gotByValue); fp != fv {
				t.Errorf("registry-built run diverged from direct construction:\n name  %s\n value %s", fp, fv)
			}
		})
	}
}

// TestProtocolConservationMatrix runs every registered zoo protocol
// through the instrumented global engine across (ρ′, K, ε): RunGlobal
// verifies both conservation invariants (message and slot-time
// conservation) at the end of every instrumented run, so a nil error is
// the assertion.  The ε > 0 column exercises the fault-injection path —
// plugins must stay conserving under erased and corrupted feedback.
func TestProtocolConservationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run not worth it in -short mode")
	}
	names := []string{"controlled", "fcfs", "lcfs", "random", tournament.Name, acdc.Name}
	for _, name := range names {
		for _, rho := range []float64{0.3, 0.75} {
			for _, km := range []float64{1, 2} {
				for _, eps := range []float64{0, 0.05} {
					label := fmt.Sprintf("%s/rho=%v/KoverM=%v/eps=%v", name, rho, km, eps)
					t.Run(label, func(t *testing.T) {
						cfg := Config{
							Protocol: name,
							Tau:      1, M: 25, Lambda: rho / 25, K: km * 25,
							EndTime: 20000, Warmup: 2000,
							Seed: rngutil.Mix64(uint64(rho*100), uint64(km), 0xBEEF),
						}
						if eps > 0 {
							cfg.Faults = fault.Config{
								Rates: fault.Rates{Erasure: eps, FalseCollision: eps, MissedCollision: eps},
								Seed:  cfg.Seed + 1,
							}
						}
						sm := collectorFor(cfg)
						cfg.Collector = sm
						rep, err := RunGlobal(cfg)
						if err != nil {
							t.Fatalf("instrumented run failed: %v", err)
						}
						if sm.Arrivals == 0 || sm.Transmissions == 0 {
							t.Fatalf("collector saw nothing: %+v", sm.Snapshot())
						}
						if loss := rep.Loss(); math.IsNaN(loss) || loss < 0 || loss > 1 {
							t.Errorf("loss %v outside [0,1]", loss)
						}
						// Every measured message has exactly one fate.
						if rep.Decided()+rep.Censored != rep.Offered {
							t.Errorf("fates do not cover arrivals: %d decided + %d censored != %d offered",
								rep.Decided(), rep.Censored, rep.Offered)
						}
					})
				}
			}
		}
	}
}

// TestProtocolMultiStation runs every zoo protocol through the
// distributed engine with lockstep verification: per-station replicas
// (forked where the protocol is randomized) must make identical
// decisions, and the instrumented run must conserve.
func TestProtocolMultiStation(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed runs not worth it in -short mode")
	}
	for _, name := range []string{"controlled", "fcfs", "lcfs", "random", tournament.Name, acdc.Name} {
		t.Run(name, func(t *testing.T) {
			cfg := MultiConfig{
				Config: Config{
					Protocol: name,
					Tau:      1, M: 25, Lambda: 0.6 / 25, K: 50,
					EndTime: 10000, Warmup: 1000, Seed: 777,
				},
				Stations:       6,
				VerifyLockstep: true,
			}
			sm := collectorFor(cfg.Config)
			cfg.Collector = sm
			if _, err := RunMultiStation(cfg); err != nil {
				t.Fatalf("multi-station %q: %v", name, err)
			}
		})
	}
}

// TestConfigProtocolErrors pins the Config-level selection rules.
func TestConfigProtocolErrors(t *testing.T) {
	both := protoTestConfig(1)
	both.Policy = window.Controlled{Length: window.FixedG(1.1)}
	both.Protocol = "fcfs"
	if _, err := RunGlobal(both); err == nil || !strings.Contains(err.Error(), "not both") {
		t.Errorf("Policy+Protocol accepted: %v", err)
	}

	unknown := protoTestConfig(1)
	unknown.Protocol = "no-such-mac"
	if _, err := RunGlobal(unknown); err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Errorf("unknown protocol accepted: %v", err)
	}

	neither := protoTestConfig(1)
	if _, err := RunGlobal(neither); err == nil {
		t.Error("config with neither Policy nor Protocol accepted")
	}
}

// admissionStub lets the clamp test drive arbitrary AdmissionDelay
// returns through a valid policy.
type admissionStub struct {
	window.Controlled
	d float64
}

func (a admissionStub) AdmissionDelay(float64) float64 { return a.d }

// TestDiscardConstraint pins the engine-side clamp of the Admission
// capability: in-range delays tighten element (4), everything else
// (non-positive, NaN, >= K) falls back to the plain deadline, so a
// buggy plugin can never panic the Tracker or loosen the constraint.
func TestDiscardConstraint(t *testing.T) {
	base := window.Controlled{Length: window.FixedG(1.1)}
	if got := discardConstraint(base, 50); got != 50 {
		t.Errorf("non-admission policy: %v, want 50", got)
	}
	cases := []struct{ d, want float64 }{
		{37.5, 37.5},      // in range: tightened
		{50, 50},          // exactly K: plain deadline
		{80, 50},          // beyond K: clamped back
		{0, 50},           // degenerate: fall back
		{-3, 50},          // negative: fall back
		{math.NaN(), 50},  // NaN: fall back
		{math.Inf(1), 50}, // +Inf: fall back
	}
	for _, c := range cases {
		if got := discardConstraint(admissionStub{base, c.d}, 50); got != c.want {
			t.Errorf("AdmissionDelay=%v: discardConstraint = %v, want %v", c.d, got, c.want)
		}
	}
	// Unconstrained runs: Budget·Inf = Inf is >= K, so the plain
	// (infinite) deadline survives.
	a, _ := acdc.New(1.1, 0.75)
	if got := discardConstraint(a, math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("K=+Inf: discardConstraint = %v, want +Inf", got)
	}
	if got := discardConstraint(a, 50); got != 37.5 {
		t.Errorf("acdc at K=50: discardConstraint = %v, want 37.5", got)
	}
}

// TestAdmissionShedding verifies the AC/DC behavior end to end: the
// sender sheds at Budget·K, so sender-side losses appear and every
// accepted message still meets the true deadline.  The controlled
// protocol at the same point keeps its losses at the same element-(4)
// horizon K, so acdc must shed no later than controlled discards.
func TestAdmissionShedding(t *testing.T) {
	run := func(name string) Report {
		cfg := protoTestConfig(4321)
		cfg.Protocol = name
		rep, err := RunGlobal(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return rep
	}
	ar := run(acdc.Name)
	if ar.LostSender == 0 {
		t.Error("acdc shed nothing at ρ'=0.6 — admission control inactive?")
	}
	if ar.LostLate != 0 {
		t.Errorf("acdc lost %d messages late at the receiver; shedding at 0.75·K plus resolution should beat the deadline", ar.LostLate)
	}
	if ar.LostLate == 0 && ar.TrueWait.N() > 0 && ar.TrueWait.Max() > 50 {
		t.Errorf("transmitted wait %v exceeds K yet nothing counted late", ar.TrueWait.Max())
	}
}

// TestProtocolReplicated makes sure named selection composes with the
// replication driver: each replication materializes its own instance
// from its own derived seed (a shared *rngutil.Stream across concurrent
// replications would race).
func TestProtocolReplicated(t *testing.T) {
	for _, name := range []string{"random", tournament.Name} {
		cfg := protoTestConfig(2024)
		cfg.Protocol = name
		cfg.EndTime, cfg.Warmup = 10000, 1000
		r, err := RunReplicated(cfg, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.IsNaN(r.LossMean) || r.LossMean < 0 || r.LossMean > 1 {
			t.Errorf("%s: replicated loss %v", name, r.LossMean)
		}
	}
}
