package sim

import (
	"fmt"
	"reflect"
	"testing"

	"windowctl/internal/fault"
	"windowctl/internal/window"
)

// faultMixes are the fault-rate combinations the conservation matrix
// exercises: each kind alone, all together, and a heavy mixed load.
var faultMixes = []struct {
	name  string
	rates fault.Rates
}{
	{"erasure", fault.Rates{Erasure: 0.05}},
	{"false-collision", fault.Rates{FalseCollision: 0.05}},
	{"missed-collision", fault.Rates{MissedCollision: 0.2}},
	{"all", fault.Rates{Erasure: 0.03, FalseCollision: 0.03, MissedCollision: 0.1}},
	{"heavy", fault.Rates{Erasure: 0.15, FalseCollision: 0.15, MissedCollision: 0.5}},
}

// TestFaultConservationGlobal runs the instrumented global simulator over
// the fault-mix matrix.  RunGlobal verifies both conservation invariants
// at the end of every instrumented run (a violation is an error), so a
// nil error is the core assertion; on top the test checks the message
// identity explicitly and that faults were actually injected.
func TestFaultConservationGlobal(t *testing.T) {
	for _, mix := range faultMixes {
		t.Run(mix.name, func(t *testing.T) {
			cfg := controlledCfg(0.5, 25, 2, 0xBEEF)
			cfg.EndTime, cfg.Warmup = 5e4, 2e3
			cfg.Faults = fault.Config{Rates: mix.rates, Seed: 42}
			sm := collectorFor(cfg)
			cfg.Collector = sm
			rep, err := RunGlobal(cfg)
			if err != nil {
				t.Fatalf("instrumented faulty run failed: %v", err)
			}
			if sm.Faults() == 0 {
				t.Fatal("no faults injected at nonzero rates")
			}
			if got := sm.Transmissions + sm.Discards + int64(rep.EndBacklog); sm.Arrivals != got {
				t.Errorf("conservation: arrivals %d != transmitted %d + discarded %d + resident %d",
					sm.Arrivals, sm.Transmissions, sm.Discards, rep.EndBacklog)
			}
			if mix.rates.Erasure > 0 && sm.Recoveries == 0 {
				t.Error("erasures injected but no recoveries recorded")
			}
		})
	}
}

// TestFaultConservationMultiStation is the multi-station counterpart,
// additionally covering per-station perception (where stations can
// desynchronize and the engine must detect and recover).  The engine's
// own end-of-run conservation check is the assertion.
func TestFaultConservationMultiStation(t *testing.T) {
	for _, mix := range faultMixes {
		for _, perStation := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/perStation=%v", mix.name, perStation), func(t *testing.T) {
				cfg := controlledCfg(0.5, 25, 2, 0xBEEF)
				cfg.EndTime, cfg.Warmup = 3e4, 2e3
				cfg.Faults = fault.Config{Rates: mix.rates, Seed: 42, PerStation: perStation}
				sm := collectorFor(cfg)
				cfg.Collector = sm
				_, err := RunMultiStation(MultiConfig{
					Config: cfg, Stations: 3, VerifyLockstep: !perStation,
				})
				if err != nil {
					t.Fatalf("instrumented faulty run failed: %v", err)
				}
				if sm.Faults() == 0 {
					t.Fatal("no faults injected at nonzero rates")
				}
				if perStation && sm.Desyncs == 0 {
					t.Error("independent per-station perception produced no desyncs")
				}
				if !perStation && sm.Desyncs != 0 {
					t.Errorf("shared perception recorded %d desyncs", sm.Desyncs)
				}
			})
		}
	}
}

// TestFaultScheduleDeterministic pins the counter-based fault schedule:
// the same Config.Faults seed must reproduce the run bit for bit, and a
// different fault seed (same traffic seed) must change it.
func TestFaultScheduleDeterministic(t *testing.T) {
	cfg := controlledCfg(0.5, 25, 2, 7)
	cfg.EndTime, cfg.Warmup = 5e4, 2e3
	cfg.Faults = fault.Config{Rates: fault.Rates{Erasure: 0.03, FalseCollision: 0.03, MissedCollision: 0.1}, Seed: 11}
	a, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same fault seed, different runs:\n%v\n%v", a, b)
	}
	cfg.Faults.Seed = 12
	c, err := RunGlobal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Loss() == c.Loss() && a.TrueWait.Mean() == c.TrueWait.Mean() {
		t.Fatal("different fault seeds produced identical runs")
	}
}

// TestFaultZeroRateBitIdentical is the gating contract: all-zero rates —
// even with a nonzero fault seed — must leave both simulators bit-
// identical to a configuration without the fault layer at all.
func TestFaultZeroRateBitIdentical(t *testing.T) {
	base := controlledCfg(0.5, 25, 2, 7)
	base.EndTime, base.Warmup = 5e4, 2e3
	faulty := base
	faulty.Faults = fault.Config{Seed: 99, PerStation: true} // rates all zero

	ga, err := RunGlobal(base)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := RunGlobal(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ga, gb) {
		t.Fatalf("global: zero-rate fault config changed the run:\n%v\n%v", ga, gb)
	}

	ma, err := RunMultiStation(MultiConfig{Config: base, Stations: 3, VerifyLockstep: true})
	if err != nil {
		t.Fatal(err)
	}
	mb, err := RunMultiStation(MultiConfig{Config: faulty, Stations: 3, VerifyLockstep: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ma, mb) {
		t.Fatalf("multi-station: zero-rate fault config changed the run:\n%v\n%v", ma, mb)
	}
}

// TestFaultsRejectRateEstimator pins the declared incompatibility.
func TestFaultsRejectRateEstimator(t *testing.T) {
	cfg := controlledCfg(0.5, 25, 2, 7)
	cfg.Faults = fault.Config{Rates: fault.Rates{Erasure: 0.01}}
	cfg.RateEstimator = window.NewRateEstimator(cfg.Lambda, 0.05)
	if _, err := RunGlobal(cfg); err == nil {
		t.Fatal("Faults + RateEstimator accepted")
	}
	cfg.RateEstimator = nil
	cfg.Faults.Rates.Erasure = 1.5
	if _, err := RunGlobal(cfg); err == nil {
		t.Fatal("out-of-range fault rate accepted")
	}
}

// degradationSpec is the small panel the degradation tests evaluate.
var degradationSpec = PanelSpec{RhoPrime: 0.5, M: 25, KOverM: []float64{2, 4}}

// TestDegradationRateZeroMatchesFigure7 pins the anchoring contract: the
// ε = 0 column of a degradation curve is the perfect-feedback simulation
// of the same seed, bit for bit.
func TestDegradationRateZeroMatchesFigure7(t *testing.T) {
	opt := SimOptions{Messages: 4000, Seed: 1983}
	baseline, err := Figure7Panels([]PanelSpec{degradationSpec}, opt)
	if err != nil {
		t.Fatal(err)
	}
	curves, err := DegradationPanels([]PanelSpec{degradationSpec}, DegradationOptions{
		SimOptions: opt, ErrorRates: []float64{0, 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range curves[0].Rows {
		want := baseline[0].Points[i].SimControlled
		if got := row.Points[0].Loss; got != want {
			t.Errorf("K/M=%v: rate-0 loss %v != figure-7 simulation %v", row.KOverM, got, want)
		}
		if lo, hi := row.Points[0].Lo, row.Points[0].Hi; lo != baseline[0].Points[i].SimLo || hi != baseline[0].Points[i].SimHi {
			t.Errorf("K/M=%v: rate-0 CI differs from figure-7 simulation", row.KOverM)
		}
	}
}

// TestDegradationDeterministicAcrossWorkers runs the same degradation
// evaluation sequentially and with a worker pool: the fault schedules are
// counter-based and item seeds identity-derived, so the results must be
// bit-identical at any worker count.
func TestDegradationDeterministicAcrossWorkers(t *testing.T) {
	opt := DegradationOptions{
		SimOptions: SimOptions{Messages: 3000, Seed: 7},
		ErrorRates: []float64{0, 0.05, 0.1},
	}
	seq := opt
	seq.Workers = 1
	par := opt
	par.Workers = 4
	a, err := DegradationPanels([]PanelSpec{degradationSpec}, seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DegradationPanels([]PanelSpec{degradationSpec}, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("worker count changed the degradation curve:\n%v\n%v", a, b)
	}
}

// TestDegradationMonotone checks the headline property of the curve: at a
// fixed constraint, loss does not decrease as the feedback-error rate
// grows.  The grid shares one simulation seed per constraint and one
// fault-word stream across rates (nested fault schedules — common random
// numbers), so the comparison is far less noisy than independent runs; a
// small slack still absorbs the residual divergence.
func TestDegradationMonotone(t *testing.T) {
	curves, err := DegradationPanels([]PanelSpec{degradationSpec}, DegradationOptions{
		SimOptions: SimOptions{Messages: 6000, Seed: 1983},
		ErrorRates: []float64{0, 0.05, 0.15},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range curves[0].Rows {
		for j := 1; j < len(row.Points); j++ {
			prev, cur := row.Points[j-1], row.Points[j]
			if cur.Loss < prev.Loss-0.005 {
				t.Errorf("K/M=%v: loss fell from %.5f (eps=%v) to %.5f (eps=%v)",
					row.KOverM, prev.Loss, prev.Rate, cur.Loss, cur.Rate)
			}
		}
		if last := row.Points[len(row.Points)-1]; last.Loss <= row.Points[0].Loss {
			t.Errorf("K/M=%v: heavy faults did not raise loss (%.5f -> %.5f)",
				row.KOverM, row.Points[0].Loss, last.Loss)
		}
	}
}

// TestDegradationValidation rejects out-of-range grids and mixes.
func TestDegradationValidation(t *testing.T) {
	if _, err := DegradationPanels([]PanelSpec{degradationSpec}, DegradationOptions{
		SimOptions: SimOptions{Messages: 1000},
		ErrorRates: []float64{-0.1},
	}); err == nil {
		t.Fatal("negative error rate accepted")
	}
	if _, err := DegradationPanels([]PanelSpec{degradationSpec}, DegradationOptions{
		SimOptions: SimOptions{Messages: 1000},
		Mix:        fault.Rates{Erasure: 2},
	}); err == nil {
		t.Fatal("out-of-range mix weight accepted")
	}
}
