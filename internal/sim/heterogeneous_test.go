package sim

import (
	"math"
	"testing"

	"windowctl/internal/window"
)

func heteroBase(seed uint64) HeterogeneousConfig {
	return HeterogeneousConfig{
		Config: Config{
			Policy: window.Controlled{Length: window.FixedG(gStar)},
			Tau:    1, M: 25, Lambda: 0.75 / 25, K: 50,
			EndTime: 4e5, Warmup: 3e4, Seed: seed,
		},
	}
}

func TestHeterogeneousIdentityMatchesMultiStation(t *testing.T) {
	cfg := heteroBase(61)
	cfg.Transforms = make([]Transform, 8) // nil entries = identity
	hrep, err := RunHeterogeneous(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mrep, err := RunMultiStation(MultiConfig{Config: cfg.Config, Stations: 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hrep.Loss()-mrep.Loss()) > 0.02 {
		t.Fatalf("identity-transform loss %v vs multistation %v", hrep.Loss(), mrep.Loss())
	}
	if hrep.Offered != hrep.Decided()+hrep.Censored {
		t.Fatal("accounting identity broken")
	}
	// Per-station reports partition the totals.
	var acc, lost int64
	for _, sr := range hrep.Stations {
		acc += sr.AcceptedInTime
		lost += sr.LostSender + sr.LostLate + sr.LostPending
	}
	if acc != hrep.AcceptedInTime || lost != hrep.Lost() {
		t.Fatalf("per-station partition broken: %d/%d vs %d/%d",
			acc, lost, hrep.AcceptedInTime, hrep.Lost())
	}
}

func TestPriorityStretchFavorsHighPriority(t *testing.T) {
	// Station 0 stretches its membership window (higher priority);
	// station 1 shrinks it.  Theorem-5 extension: station 0 should see
	// clearly lower loss than station 1.
	cfg := heteroBase(62)
	cfg.Transforms = []Transform{
		PriorityStretch(1.6, 1),
		PriorityStretch(0.5, 1),
		nil, nil,
	}
	rep, err := RunHeterogeneous(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hi, lo := rep.Stations[0], rep.Stations[1]
	if hi.Offered < 500 || lo.Offered < 500 {
		t.Fatalf("too few messages: %d, %d", hi.Offered, lo.Offered)
	}
	if hi.Loss() >= lo.Loss() {
		t.Fatalf("priority inversion: stretched station loss %.4f vs shrunk %.4f",
			hi.Loss(), lo.Loss())
	}
	// Note: the *conditional* mean wait of accepted messages is NOT a
	// valid priority metric here — the shrunk station only gets its
	// youngest messages through (survivorship), so its accepted waits
	// look short even though it loses far more.  Loss is the honest
	// measure, as in the paper.
}

func TestClockSkewDegradesLoss(t *testing.T) {
	// A skewed station misses probes for its own messages and answers
	// others spuriously; its loss must exceed the synchronized stations'.
	cfg := heteroBase(63)
	cfg.Transforms = []Transform{
		ClockSkew(3.0, 0), // badly skewed clock
		nil, nil, nil,
	}
	rep, err := RunHeterogeneous(cfg)
	if err != nil {
		t.Fatal(err)
	}
	skewed := rep.Stations[0].Loss()
	syncLoss := 0.0
	var syncDecided int64
	for _, sr := range rep.Stations[1:] {
		syncLoss += float64(sr.LostSender + sr.LostLate + sr.LostPending)
		syncDecided += sr.Offered
	}
	syncLoss /= float64(syncDecided)
	if skewed <= syncLoss {
		t.Fatalf("skewed station loss %.4f not worse than synchronized %.4f", skewed, syncLoss)
	}
}

func TestClockSkewGuardBandTradeoff(t *testing.T) {
	// With a *small* skew, a guard band can only be a trade: it avoids
	// wrong-slot answers at the cost of shrinking eligibility.  Verify it
	// runs and produces sane accounting; the direction of the trade is
	// workload-dependent, so only sanity is asserted.
	cfg := heteroBase(64)
	cfg.Transforms = []Transform{ClockSkew(0.4, 0.5), nil, nil, nil}
	rep, err := RunHeterogeneous(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transmissions == 0 {
		t.Fatal("guarded run transmitted nothing")
	}
	if rep.Offered != rep.Decided()+rep.Censored {
		t.Fatal("accounting identity broken")
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	cfg := heteroBase(65)
	if _, err := RunHeterogeneous(cfg); err == nil {
		t.Fatal("no transforms accepted")
	}
	for _, fn := range []func(){
		func() { PriorityStretch(0, 1) },
		func() { PriorityStretch(2, 0) },
		func() { ClockSkew(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
