package sim

import (
	"fmt"
	"math"
	"strings"

	"windowctl/internal/fault"
	"windowctl/internal/metrics"
	"windowctl/internal/queueing"
	"windowctl/internal/rngutil"
)

// DefaultErrorRates is the standard feedback-error grid of the
// degradation mode.  It starts at exactly 0 so every curve anchors on the
// perfect-feedback baseline.
var DefaultErrorRates = []float64{0, 0.01, 0.02, 0.05, 0.1, 0.2}

// DegradationOptions parameterizes DegradationPanels.  The embedded
// SimOptions keep their meaning (horizon, seed, metrics, workers,
// protocol — Protocol swaps which registered protocol degrades);
// Disable and Baselines are ignored — the degradation mode simulates
// one protocol only.
type DegradationOptions struct {
	SimOptions
	// ErrorRates is the feedback-error grid ε; empty means
	// DefaultErrorRates.  Each entry must lie in [0, 1].
	ErrorRates []float64
	// Mix sets the relative weight of the three fault kinds: at grid
	// value ε the injected rates are Mix.Scale(ε).  The zero value means
	// every kind at weight 1 (erasure = false collision = missed
	// collision = ε); weights must lie in [0, 1] so the scaled rates stay
	// probabilities.
	Mix fault.Rates
}

// degradationFaultTag separates the fault schedule's seed stream from the
// simulation seed it is derived from.  Like the proto* tags it is part of
// the reproducibility contract.
const degradationFaultTag = 0xfee0

// DegradationPoint is one (constraint, error-rate) cell of a curve.
type DegradationPoint struct {
	// Rate is the grid value ε; Rates the effective per-kind
	// probabilities Mix.Scale(ε) injected at this point.
	Rate  float64
	Rates fault.Rates
	// Loss is the simulated loss of the controlled protocol, with
	// Lo and Hi its 95% within-run confidence bounds.
	Loss, Lo, Hi float64
	// Metrics holds the run's slot- and fault-level counters when
	// SimOptions.Metrics is set (nil otherwise).  Its conservation
	// invariants were verified by the run that filled it.
	Metrics *metrics.SlotMetrics
}

// DegradationRow is one constraint's loss curve across the error grid.
type DegradationRow struct {
	// KOverM and K give the constraint in message times and absolute time.
	KOverM, K float64
	// Points holds one entry per error rate, in grid order.
	Points []DegradationPoint
}

// DegradationPanel is a fully evaluated degradation curve: loss versus
// feedback-error rate for every constraint of one (ρ′, M) panel.
type DegradationPanel struct {
	Spec  PanelSpec
	Rates []float64
	Rows  []DegradationRow
	// Protocol names the protocol that degraded (SimOptions.Protocol;
	// "controlled" when it was left empty).
	Protocol string
}

// DegradationPanels evaluates loss-versus-feedback-error curves for the
// given panels: for every (constraint, error rate) cell one controlled-
// protocol run with fault injection at Mix.Scale(rate).  Three
// reproducibility properties are part of the contract, all enforced by
// tests: results are bit-identical at any Workers count (work-item seeds
// derive from item identity, not scheduling order); the rate-0 column is
// bit-identical to the corresponding Figure7Panels simulation (same item
// seed, fault layer disabled); and all rates of one constraint share one
// simulation seed (common random numbers), so a cell differs from its
// neighbour only through the injected faults.
func DegradationPanels(specs []PanelSpec, opt DegradationOptions) ([]DegradationPanel, error) {
	rates := opt.ErrorRates
	if len(rates) == 0 {
		rates = append([]float64(nil), DefaultErrorRates...)
	}
	for _, r := range rates {
		if r < 0 || r > 1 || math.IsNaN(r) {
			return nil, fmt.Errorf("sim: error rate %v outside [0, 1]", r)
		}
	}
	mix := opt.Mix
	if mix.Zero() {
		mix = fault.Rates{Erasure: 1, FalseCollision: 1, MissedCollision: 1}
	}
	if err := mix.Validate(); err != nil {
		return nil, err
	}

	simProto := opt.Protocol
	if simProto == "" {
		simProto = "controlled"
	}
	panels := make([]DegradationPanel, len(specs))
	var jobs []func() error
	for pi := range specs {
		spec := specs[pi].withDefaults()
		model := queueing.ProtocolModel{Tau: spec.Tau, M: spec.M, RhoPrime: spec.RhoPrime}
		lambda := model.Lambda()
		gStar := queueing.OptimalWindowContent()

		endTime := opt.EndTime
		if endTime == 0 {
			messages := opt.Messages
			if messages == 0 {
				messages = 1e5
			}
			endTime = messages / lambda
		}
		warmup := opt.Warmup
		if warmup == 0 {
			warmup = endTime / 20
		}

		rows := make([]DegradationRow, len(spec.KOverM))
		panels[pi] = DegradationPanel{Spec: spec, Rates: append([]float64(nil), rates...), Protocol: simProto}
		panels[pi].Rows = rows
		for i, km := range spec.KOverM {
			i := i
			k := km * spec.M * spec.Tau
			rows[i] = DegradationRow{KOverM: km, K: k, Points: make([]DegradationPoint, len(rates))}
			pts := rows[i].Points
			// One simulation seed per constraint, shared by every rate of
			// the row — and equal to the Figure7Panels item seed, pinning
			// the ε = 0 cell to the perfect-feedback baseline bit for bit.
			simSeed := itemSeed(opt.Seed, spec, i, protoControlled)
			faultSeed := rngutil.Mix64(simSeed, degradationFaultTag)
			for j, rate := range rates {
				j, rate := j, rate
				jobs = append(jobs, func() error {
					pol, err := simPolicy(simProto, spec, lambda, k, gStar, simSeed)
					if err != nil {
						return fmt.Errorf("panel rho'=%v M=%v: %w", spec.RhoPrime, spec.M, err)
					}
					cfg := Config{
						Policy: pol,
						Tau:    spec.Tau, M: spec.M, Lambda: lambda, K: k,
						EndTime: endTime, Warmup: warmup, Seed: simSeed,
						Faults: fault.Config{Rates: mix.Scale(rate), Seed: faultSeed},
					}
					var sm *metrics.SlotMetrics
					if opt.Metrics {
						sm = metrics.NewSlotMetrics(spec.Tau, int(k/spec.Tau)+64)
						cfg.Collector = sm
					}
					rep, err := RunGlobal(cfg)
					if err != nil {
						return fmt.Errorf("panel rho'=%v M=%v: degradation run at K=%v rate=%v: %w",
							spec.RhoPrime, spec.M, k, rate, err)
					}
					lo, hi := rep.LossCI(0.95)
					pts[j] = DegradationPoint{
						Rate: rate, Rates: cfg.Faults.Rates,
						Loss: rep.Loss(), Lo: lo, Hi: hi, Metrics: sm,
					}
					return nil
				})
			}
		}
	}
	if err := runJobs(jobs, opt.Workers); err != nil {
		return nil, err
	}
	return panels, nil
}

// Format renders the panel as an aligned text table: one row per
// constraint, one loss column per feedback-error rate.
func (p DegradationPanel) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Degradation curve: rho'=%.2f  M=%g  (loss fraction vs. feedback-error rate)%s\n",
		p.Spec.RhoPrime, p.Spec.M, degradationNote(p.Protocol))
	fmt.Fprintf(&b, "%8s", "K/M")
	for _, r := range p.Rates {
		fmt.Fprintf(&b, " %12s", fmt.Sprintf("eps=%g", r))
	}
	b.WriteByte('\n')
	for _, row := range p.Rows {
		fmt.Fprintf(&b, "%8.2f", row.KOverM)
		for _, pt := range row.Points {
			fmt.Fprintf(&b, " %12.5f", pt.Loss)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// degradationNote annotates table titles when a zoo protocol degraded
// instead of the paper's controlled protocol.
func degradationNote(name string) string {
	if name == "" || name == "controlled" {
		return ""
	}
	return fmt.Sprintf("  [protocol: %s]", name)
}

// FaultTable renders the fault and recovery counters of the panel's
// instrumented runs (DegradationOptions.Metrics), one row per
// (constraint, rate) cell with nonzero injected rates.
func (p DegradationPanel) FaultTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault metrics: rho'=%.2f  M=%g  (per run; invariants verified)\n",
		p.Spec.RhoPrime, p.Spec.M)
	fmt.Fprintf(&b, "%8s %8s %10s %12s %12s %11s %10s %10s\n",
		"K/M", "eps", "erasures", "false-coll", "missed-coll", "recoveries", "discards", "loss")
	rows := 0
	for _, row := range p.Rows {
		for _, pt := range row.Points {
			if pt.Metrics == nil || pt.Rate == 0 {
				continue
			}
			rows++
			fmt.Fprintf(&b, "%8.2f %8g %10d %12d %12d %11d %10d %10.4f\n",
				row.KOverM, pt.Rate,
				pt.Metrics.Erasures, pt.Metrics.FalseCollisions, pt.Metrics.MissedCollisions,
				pt.Metrics.Recoveries, pt.Metrics.Discards, pt.Metrics.Loss())
		}
	}
	if rows == 0 {
		b.WriteString("(no metrics collected — run with Metrics / -metrics and a nonzero rate)\n")
	}
	return b.String()
}
