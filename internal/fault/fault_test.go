package fault

import (
	"math"
	"testing"

	"windowctl/internal/metrics"
	"windowctl/internal/window"
)

func TestRatesValidate(t *testing.T) {
	good := []Rates{{}, {Erasure: 1}, {Erasure: 0.5, FalseCollision: 0.5, MissedCollision: 0.5}}
	for _, r := range good {
		if err := r.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", r, err)
		}
	}
	bad := []Rates{
		{Erasure: -0.1},
		{FalseCollision: 1.01},
		{MissedCollision: math.NaN()},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("%+v accepted", r)
		}
	}
	if !(Rates{}).Zero() || (Rates{MissedCollision: 1e-9}).Zero() {
		t.Error("Zero() misclassifies")
	}
	if (Config{}).Enabled() || !(Config{Rates: Rates{Erasure: 0.1}}).Enabled() {
		t.Error("Enabled() misclassifies")
	}
	if _, err := NewInjector(Config{Rates: Rates{Erasure: 2}}); err == nil {
		t.Error("NewInjector accepted an invalid rate")
	}
}

func TestScale(t *testing.T) {
	s := Rates{Erasure: 1, FalseCollision: 0.5, MissedCollision: 0}.Scale(0.1)
	want := Rates{Erasure: 0.1, FalseCollision: 0.05}
	if s != want {
		t.Fatalf("Scale: got %+v want %+v", s, want)
	}
}

// TestPerceiveIsPure pins the counter-based contract: Perceive is a pure
// function of (seed, slot, station, truth) — same inputs, same output, in
// any call order, which is what makes fault schedules independent of
// worker scheduling.
func TestPerceiveIsPure(t *testing.T) {
	inj, err := NewInjector(Config{
		Rates: Rates{Erasure: 0.2, FalseCollision: 0.2, MissedCollision: 0.2},
		Seed:  7, PerStation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	truths := []window.Feedback{window.Idle, window.Success, window.Collision}
	type key struct {
		slot    int64
		station int
		truth   window.Feedback
	}
	first := map[key]window.Feedback{}
	for pass := 0; pass < 2; pass++ {
		for slot := int64(0); slot < 200; slot++ {
			for station := 0; station < 3; station++ {
				for _, truth := range truths {
					got, _, _ := inj.Perceive(slot, station, truth)
					k := key{slot, station, truth}
					if pass == 0 {
						first[k] = got
					} else if first[k] != got {
						t.Fatalf("Perceive(%v) not pure: %v then %v", k, first[k], got)
					}
				}
			}
		}
	}
}

// TestPerceiveTransitions checks each fault maps truth to the right
// perception and kind, and that impossible transitions never occur.
func TestPerceiveTransitions(t *testing.T) {
	inj, _ := NewInjector(Config{
		Rates: Rates{Erasure: 0.3, FalseCollision: 0.3, MissedCollision: 0.3},
		Seed:  99,
	})
	counts := map[metrics.FaultKind]int{}
	for slot := int64(0); slot < 5000; slot++ {
		for _, truth := range []window.Feedback{window.Idle, window.Success, window.Collision} {
			got, kind, faulted := inj.Perceive(slot, 0, truth)
			if !faulted {
				if got != truth {
					t.Fatalf("unfaulted slot changed %v to %v", truth, got)
				}
				continue
			}
			counts[kind]++
			switch kind {
			case metrics.FaultErasure:
				if got != window.Erased {
					t.Fatalf("erasure perceived as %v", got)
				}
			case metrics.FaultFalseCollision:
				if got != window.Collision || truth == window.Collision {
					t.Fatalf("false collision: truth %v perceived %v", truth, got)
				}
			case metrics.FaultMissedCollision:
				if got != window.Success || truth != window.Collision {
					t.Fatalf("missed collision: truth %v perceived %v", truth, got)
				}
			default:
				t.Fatalf("unknown fault kind %v", kind)
			}
		}
	}
	for _, k := range []metrics.FaultKind{metrics.FaultErasure, metrics.FaultFalseCollision, metrics.FaultMissedCollision} {
		if counts[k] == 0 {
			t.Errorf("no %v observed in 5000 slots at rate 0.3", k)
		}
	}
}

// TestPerceiveRates checks the empirical fault frequencies track the
// configured probabilities (law of large numbers; 3σ tolerance).
func TestPerceiveRates(t *testing.T) {
	const n = 200000
	p := 0.1
	inj, _ := NewInjector(Config{Rates: Rates{Erasure: p}, Seed: 5})
	faults := 0
	for slot := int64(0); slot < n; slot++ {
		if _, _, faulted := inj.Perceive(slot, 0, window.Idle); faulted {
			faults++
		}
	}
	got := float64(faults) / n
	sigma := math.Sqrt(p * (1 - p) / n)
	if math.Abs(got-p) > 3*sigma {
		t.Fatalf("erasure frequency %v, want %v +- %v", got, p, 3*sigma)
	}
}

// TestPerStationIndependence: with PerStation unset every station
// perceives a slot identically; with it set, stations must disagree on
// some slots (independent draws).
func TestPerStationIndependence(t *testing.T) {
	rates := Rates{Erasure: 0.2, FalseCollision: 0.2, MissedCollision: 0.2}
	shared, _ := NewInjector(Config{Rates: rates, Seed: 3})
	indep, _ := NewInjector(Config{Rates: rates, Seed: 3, PerStation: true})
	disagreements := 0
	for slot := int64(0); slot < 2000; slot++ {
		s0, _, _ := shared.Perceive(slot, 0, window.Success)
		s1, _, _ := shared.Perceive(slot, 1, window.Success)
		if s0 != s1 {
			t.Fatalf("shared perception diverged at slot %d: %v vs %v", slot, s0, s1)
		}
		i0, _, _ := indep.Perceive(slot, 0, window.Success)
		i1, _, _ := indep.Perceive(slot, 1, window.Success)
		if i0 != i1 {
			disagreements++
		}
	}
	if disagreements == 0 {
		t.Fatal("per-station perception never disagreed in 2000 slots at rate 0.2")
	}
}

func TestPerceiveBadTruthPanics(t *testing.T) {
	// No erasure rate: the erasure draw cannot fire, so the type switch —
	// and its panic on a non-truth value — is always reached.
	inj, _ := NewInjector(Config{Rates: Rates{MissedCollision: 0.1}, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Perceive accepted Erased as truth")
		}
	}()
	inj.Perceive(0, 0, window.Erased)
}
