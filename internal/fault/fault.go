// Package fault injects imperfect channel feedback into the simulators:
// a deterministic, seedable model of the sensing errors real multiple-
// access channels exhibit (Galtier's tournament-MAC motivation for
// 802.11), sitting between the channel's true slot outcome and the
// feedback each station's Resolver consumes.
//
// Three fault kinds are modelled, each with an independent per-slot
// probability:
//
//   - erasure: the station reads the slot as noise and cannot classify it
//     at all; the resolver must treat the probed window conservatively
//     (it aborts to a bounded re-enable — see window.Resolver recovery);
//   - false collision: an idle or success slot is misread as a collision,
//     driving phantom window splits;
//   - missed collision: a collision is misread as a success, silently
//     stranding the collided messages inside a window the protocol
//     believes examined.
//
// Perception is a pure function of (seed, slot index, station): the model
// draws no state from a sequential stream, so the fault schedule of a run
// is bit-identical at any worker count and under any re-ordering of the
// work, and two stations perceive the same slot identically unless
// PerStation is set (in which case their draws are independent and the
// distributed state machines can disagree — the desynchronization the
// engines detect and recover from).
//
// Physical-layer semantics (documented here once, relied on by both
// engines): faults corrupt *perception only* — carrier sensing and slot
// durations stay reliable, and message delivery is gated on the sending
// station's own perception.  A true success whose sender misreads its
// slot is an aborted transmission: the slot costs τ, the message stays
// queued.  A missed collision delivers nothing — the collided messages
// remain pending inside a region the (deceived) protocol marks examined,
// to be rescued only by element-(4) deadline discards.
package fault

import (
	"fmt"

	"windowctl/internal/metrics"
	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

// Rates holds the independent per-slot fault probabilities, each in [0, 1].
type Rates struct {
	// Erasure is the probability a station reads a slot as noise.
	Erasure float64
	// FalseCollision is the probability an idle or success slot is
	// misread as a collision.
	FalseCollision float64
	// MissedCollision is the probability a collision is misread as a
	// success.
	MissedCollision float64
}

// Zero reports whether every rate is exactly zero.
func (r Rates) Zero() bool { return r.Erasure == 0 && r.FalseCollision == 0 && r.MissedCollision == 0 }

// Validate checks every rate lies in [0, 1].
func (r Rates) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"erasure", r.Erasure},
		{"false-collision", r.FalseCollision},
		{"missed-collision", r.MissedCollision},
	} {
		if p.v < 0 || p.v > 1 || p.v != p.v {
			return fmt.Errorf("fault: %s rate %v outside [0, 1]", p.name, p.v)
		}
	}
	return nil
}

// Scale returns the rates multiplied by f (the degradation-curve axis).
func (r Rates) Scale(f float64) Rates {
	return Rates{
		Erasure:         r.Erasure * f,
		FalseCollision:  r.FalseCollision * f,
		MissedCollision: r.MissedCollision * f,
	}
}

// Config configures the fault model of one run.  The zero value disables
// fault injection entirely: a Config with all-zero Rates is exactly the
// perfect-feedback protocol, bit for bit.
type Config struct {
	// Rates are the per-slot fault probabilities.
	Rates Rates
	// Seed drives the fault schedule, independently of the simulation's
	// own randomness (so the same traffic can be replayed under different
	// fault schedules and vice versa).
	Seed uint64
	// PerStation draws each station's perception independently, so
	// stations can disagree about the same slot and desynchronize; when
	// false every station perceives the same (possibly corrupted)
	// feedback.  Only the multi-station simulator distinguishes stations.
	PerStation bool
}

// Enabled reports whether the model can inject anything.
func (c Config) Enabled() bool { return !c.Rates.Zero() }

// Validate checks the configuration.
func (c Config) Validate() error { return c.Rates.Validate() }

// Injector perceives slots for one run.  It is stateless apart from the
// configuration and safe for concurrent use.
type Injector struct {
	cfg Config
}

// NewInjector validates cfg and returns the run's injector.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg}, nil
}

// PerStation reports whether stations draw independent perceptions.
func (inj *Injector) PerStation() bool { return inj.cfg.PerStation }

// Draw tags separating the independent uniforms of one (slot, station).
const (
	drawErasure = iota + 1
	drawMisread
)

// uniform returns the counter-based uniform in [0, 1) for one decision.
func (inj *Injector) uniform(slot int64, station int, tag uint64) float64 {
	if !inj.cfg.PerStation {
		station = 0
	}
	u := rngutil.Mix64(inj.cfg.Seed, uint64(slot), uint64(station), tag)
	return float64(u>>11) / (1 << 53)
}

// Perceive returns the feedback the given station perceives for slot
// index slot whose true outcome is truth, together with the fault kind
// injected (valid only when faulted is true).  Erasure is drawn first;
// the kind-specific misread applies only to un-erased slots.  Truth must
// be one of Idle, Success, Collision.
func (inj *Injector) Perceive(slot int64, station int, truth window.Feedback) (perceived window.Feedback, kind metrics.FaultKind, faulted bool) {
	if inj.cfg.Rates.Erasure > 0 && inj.uniform(slot, station, drawErasure) < inj.cfg.Rates.Erasure {
		return window.Erased, metrics.FaultErasure, true
	}
	switch truth {
	case window.Idle, window.Success:
		if inj.cfg.Rates.FalseCollision > 0 && inj.uniform(slot, station, drawMisread) < inj.cfg.Rates.FalseCollision {
			return window.Collision, metrics.FaultFalseCollision, true
		}
	case window.Collision:
		if inj.cfg.Rates.MissedCollision > 0 && inj.uniform(slot, station, drawMisread) < inj.cfg.Rates.MissedCollision {
			return window.Success, metrics.FaultMissedCollision, true
		}
	default:
		panic(fmt.Sprintf("fault: cannot perceive truth %v", truth))
	}
	return truth, 0, false
}
