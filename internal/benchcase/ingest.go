package benchcase

import (
	"fmt"
	"io"
	"net"
	"time"

	"windowctl/internal/wire"
)

// IngestCase is one wire-ingest workload: Frames frames of Counts batch
// counts (one message per count, so messages = Frames × Counts and the
// per-message figure prices the full decode + accounting path, not batch
// amortization tricks).  Loopback cases run the whole protocol — client
// credit loop, kernel sockets, acks — against an in-process sink shaped
// like windowd's per-connection reader; the codec case prices the
// encode/decode pair alone.
type IngestCase struct {
	Name     string
	Counts   int // batch counts per frame
	Frames   int
	CRC      bool
	Loopback bool // false = in-memory codec only
}

// Ingest returns the wire-ingest workloads.  The b16/b1024 pair brackets
// framing overhead: at 16 counts the header and ack machinery dominate,
// at 1024 the payload scan does.
func Ingest() []IngestCase {
	return []IngestCase{
		{Name: "codec-b256", Counts: 256, Frames: 20_000, CRC: true},
		{Name: "tcp-b16", Counts: 16, Frames: 20_000, Loopback: true},
		{Name: "tcp-b1024", Counts: 1024, Frames: 4_000, Loopback: true},
	}
}

// RunIngest executes one workload and returns its wall time and message
// count.  The absorbed total is verified against the offered total, so a
// codec or protocol bug cannot masquerade as a fast run.
func RunIngest(c IngestCase) (time.Duration, int64, error) {
	counts := make([]uint32, c.Counts)
	for i := range counts {
		counts[i] = 1
	}
	msgs := int64(c.Counts) * int64(c.Frames)
	if !c.Loopback {
		var f wire.Frame
		buf := make([]byte, 0, wire.MaxFrameSize(c.Counts))
		var total uint64
		start := time.Now()
		for i := 0; i < c.Frames; i++ {
			buf = wire.AppendCounts(buf[:0], counts, c.CRC)
			if _, err := wire.Decode(buf, 0, &f); err != nil {
				return 0, 0, err
			}
			total += f.Sum()
		}
		d := time.Since(start)
		if total != uint64(msgs) {
			return 0, 0, fmt.Errorf("benchcase: codec absorbed %d messages, want %d", total, msgs)
		}
		return d, msgs, nil
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer ln.Close()
	type sunk struct {
		total uint64
		err   error
	}
	sinkDone := make(chan sunk, 1)
	go func() {
		total, err := ingestSink(ln)
		sinkDone <- sunk{total, err}
	}()

	cl, err := wire.Dial(ln.Addr().String(), wire.ClientConfig{Credit: 1 << 12, CRC: c.CRC})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	start := time.Now()
	for i := 0; i < c.Frames; i++ {
		if err := cl.Send(counts); err != nil {
			return 0, 0, fmt.Errorf("benchcase: frame %d: %w", i, err)
		}
	}
	if err := cl.Drain(); err != nil {
		return 0, 0, fmt.Errorf("benchcase: drain: %w", err)
	}
	d := time.Since(start)
	got := <-sinkDone
	if got.err != nil {
		return 0, 0, fmt.Errorf("benchcase: sink: %w", got.err)
	}
	if got.total != uint64(msgs) {
		return 0, 0, fmt.Errorf("benchcase: sink absorbed %d messages, want %d", got.total, msgs)
	}
	return d, msgs, nil
}

// ingestSink is windowd's reader loop in miniature: one connection,
// counts frames summed and accumulated, an ack every wire.AckEvery
// frames and a final ack at half-close.
func ingestSink(ln net.Listener) (uint64, error) {
	conn, err := ln.Accept()
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	dec := wire.NewDecoder(conn, 0)
	var f wire.Frame
	var frames, total uint64
	var out []byte
	for {
		err := dec.Next(&f)
		if err == io.EOF {
			_, err := conn.Write(wire.AppendControl(out[:0], wire.TypeAck, frames, false))
			return total, err
		}
		if err != nil {
			return total, err
		}
		if f.Type != wire.TypeCounts {
			return total, fmt.Errorf("unexpected %s frame", f.Type)
		}
		total += f.Sum()
		frames++
		if frames%wire.AckEvery == 0 {
			if _, err := conn.Write(wire.AppendControl(out[:0], wire.TypeAck, frames, false)); err != nil {
				return total, err
			}
		}
	}
}
