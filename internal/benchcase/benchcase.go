// Package benchcase pins the workloads of the simulator benchmark-
// regression harness.  bench_test.go (go test -bench) and cmd/simbench
// (the CI regression gate and BENCH_*.json writer) must time the same
// operating points, so both import their cases from here.
//
// The two backlog regimes bracket the pending-queue cost:
//
//   - small: a stable load where the backlog is mostly a handful of
//     messages — the regime every figure-7 panel runs in;
//   - large: a deliberate overload where element-(4) discards bound the
//     backlog at several hundred messages — the regime where the old
//     sorted-slice queue paid an O(n) memmove per extraction and per
//     discard batch, and the indexed queue's O(log n) operations pay off.
package benchcase

import (
	"windowctl/internal/core"
	"windowctl/internal/sim"
	"windowctl/internal/sweep"
	"windowctl/internal/window"
)

// GlobalCase is one RunGlobal workload.
type GlobalCase struct {
	Name string
	Cfg  sim.Config
}

// MultiCase is one RunMultiStation workload.
type MultiCase struct {
	Name string
	Cfg  sim.MultiConfig
}

// SweepCase is one grid-driver workload: the harness times the same
// space cold (empty cache, every point simulated) and warm (second run
// on the same cache directory, every point answered from disk), so the
// recorded points/sec pair pins both the sharded-execution and the
// cache-lookup paths against regression.
type SweepCase struct {
	Name  string
	Space sweep.Space
}

// globalEnd keeps one iteration around tens of milliseconds.
const globalEnd = 2e5

// Global returns the global-view engine workloads.
func Global() []GlobalCase {
	g := window.FixedG(2.6)
	return []GlobalCase{
		{
			Name: "small-backlog",
			Cfg: sim.Config{
				Policy:  window.Controlled{Length: g},
				Tau:     1,
				M:       25,
				Lambda:  0.5 / 25,
				K:       50,
				EndTime: globalEnd,
				Seed:    101,
			},
		},
		{
			// ρ′ = 2: twice the channel capacity.  Discards keep the run
			// stable with a standing backlog of several hundred messages.
			Name: "large-backlog",
			Cfg: sim.Config{
				Policy:  window.Controlled{Length: g},
				Tau:     1,
				M:       25,
				Lambda:  2.0 / 25,
				K:       5000,
				EndTime: globalEnd,
				Seed:    103,
			},
		},
	}
}

// Multi returns the multi-station (discrete-event) engine workloads.
//
// The two backlog cases mirror the global pair at a small population;
// the M-scaling trio holds the operating point fixed (ρ′ = 0.5, the
// stable figure-7 regime) while the population grows a thousandfold, so
// any per-slot cost that is secretly O(M) — the old engine's window
// counting and feedback fan-out were — shows up as a thousandfold
// ns/message blowup instead of hiding inside a single point.
func Multi() []MultiCase {
	g := window.FixedG(2.6)
	mScale := func(name string, stations int, seed uint64) MultiCase {
		return MultiCase{
			Name: name,
			Cfg: sim.MultiConfig{
				Config: sim.Config{
					Policy:  window.Controlled{Length: g},
					Tau:     1,
					M:       25,
					Lambda:  0.5 / 25,
					K:       50,
					EndTime: 2e5,
					Seed:    seed,
				},
				Stations: stations,
			},
		}
	}
	return []MultiCase{
		{
			Name: "small-backlog",
			Cfg: sim.MultiConfig{
				Config: sim.Config{
					Policy:  window.Controlled{Length: g},
					Tau:     1,
					M:       25,
					Lambda:  0.5 / 25,
					K:       50,
					EndTime: 2e4,
					Seed:    107,
				},
				Stations: 16,
			},
		},
		{
			Name: "large-backlog",
			Cfg: sim.MultiConfig{
				Config: sim.Config{
					Policy:  window.Controlled{Length: g},
					Tau:     1,
					M:       25,
					Lambda:  1.5 / 25,
					K:       1000,
					EndTime: 2e4,
					Seed:    109,
				},
				Stations: 16,
			},
		},
		mScale("m1e3", 1_000, 113),
		mScale("m1e5", 100_000, 127),
		mScale("m1e6", 1_000_000, 131),
	}
}

// Sweep returns the grid-driver workloads: a figure-7-shaped controlled
// grid (one panel's load triple over the full constraint axis), sized so
// one cold evaluation takes tens of milliseconds and the warm replay is
// dominated by cache open + lookup.
func Sweep() []SweepCase {
	return []SweepCase{
		{
			Name: "grid24",
			Space: sweep.Space{
				Loads:       []float64{0.25, 0.5, 0.75},
				Ms:          []float64{25},
				KOverM:      []float64{0.5, 1, 1.5, 2, 3, 4, 6, 8},
				Disciplines: []core.Discipline{core.Controlled},
				Messages:    2e4,
				Seed:        1983,
			},
		},
	}
}
