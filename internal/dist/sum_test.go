package dist

import (
	"math"
	"testing"

	"windowctl/internal/rngutil"
)

func TestAtomizeLaws(t *testing.T) {
	// Deterministic: single atom.
	e, err := Atomize(NewDeterministic(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	xs, ps := e.Support()
	if len(xs) != 1 || xs[0] != 3 || ps[0] != 1 {
		t.Fatalf("deterministic atoms: %v %v", xs, ps)
	}
	// Geometric lattice: mass conserved, mean preserved.
	g := NewGeometricLattice(2, 0.5)
	e, err = Atomize(g, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Mean()-g.Mean()) > 1e-6 {
		t.Fatalf("atomized mean %v vs %v", e.Mean(), g.Mean())
	}
	_, ps = e.Support()
	sum := 0.0
	for _, p := range ps {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("atom mass %v", sum)
	}
	// Shifted discrete law.
	e, err = Atomize(NewShifted(NewDeterministic(1), 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	xs, _ = e.Support()
	if xs[0] != 3 {
		t.Fatalf("shifted atom at %v", xs[0])
	}
	// Zero-mean lattice degenerates to the zero atom.
	e, err = Atomize(NewGeometricLattice(0, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Mean() != 0 {
		t.Fatal("zero lattice not degenerate")
	}
	// Continuous laws refuse.
	if _, err := Atomize(NewExponential(1), 0); err == nil {
		t.Fatal("continuous law atomized")
	}
	if _, err := Atomize(NewShifted(NewExponential(1), 1), 0); err == nil {
		t.Fatal("shifted continuous law atomized")
	}
}

func TestAtomicSumAgainstConvolutionFacts(t *testing.T) {
	// D = atoms {0: .5, 1: .5}; Y = Exp(1).  Then
	// F(t) = .5·F_Y(t) + .5·F_Y(t−1).
	d, err := NewEmpirical([]float64{0, 1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	y := NewExponential(1)
	s, err := NewAtomicSum(d, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.2, 0.9, 1.5, 4} {
		want := 0.5*y.CDF(x) + 0.5*y.CDF(x-1)
		if math.Abs(s.CDF(x)-want) > 1e-12 {
			t.Fatalf("CDF(%v) = %v, want %v", x, s.CDF(x), want)
		}
	}
	if math.Abs(s.Mean()-1.5) > 1e-12 {
		t.Fatalf("mean %v", s.Mean())
	}
	// E[(D+Y)²] = E[D²] + 2E[D]E[Y] + E[Y²] = .5 + 1 + 2 = 3.5.
	if math.Abs(s.SecondMoment()-3.5) > 1e-12 {
		t.Fatalf("second moment %v", s.SecondMoment())
	}
	// LST factorizes.
	if math.Abs(s.LST(0.7)-d.LST(0.7)*y.LST(0.7)) > 1e-12 {
		t.Fatal("LST does not factorize")
	}
}

func TestAtomicSumSampling(t *testing.T) {
	d, _ := NewEmpirical([]float64{0, 2}, []float64{1, 3})
	y := NewUniform(1, 2)
	s, err := NewAtomicSum(d, y)
	if err != nil {
		t.Fatal(err)
	}
	r := rngutil.New(81)
	const n = 200000
	mean := 0.0
	for i := 0; i < n; i++ {
		v := s.Sample(r)
		if v < 1 || v > 4 {
			t.Fatalf("sample %v outside support", v)
		}
		mean += v
	}
	mean /= n
	if math.Abs(mean-s.Mean()) > 0.01 {
		t.Fatalf("sampled mean %v vs %v", mean, s.Mean())
	}
}

func TestAtomicSumValidation(t *testing.T) {
	if _, err := NewAtomicSum(nil, NewExponential(1)); err == nil {
		t.Fatal("nil atoms accepted")
	}
	d, _ := NewEmpirical([]float64{0}, []float64{1})
	if _, err := NewAtomicSum(d, nil); err == nil {
		t.Fatal("nil second law accepted")
	}
}
