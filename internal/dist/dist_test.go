package dist

import (
	"math"
	"testing"
	"testing/quick"

	"windowctl/internal/rngutil"
)

// allLaws returns a representative instance of every Distribution for
// table-driven invariant testing.
func allLaws() []Distribution {
	emp, err := NewEmpirical([]float64{0, 1, 2.5, 4}, []float64{1, 2, 3, 4})
	if err != nil {
		panic(err)
	}
	return []Distribution{
		NewDeterministic(3),
		NewExponential(0.5),
		NewUniform(1, 4),
		NewErlang(3, 2),
		NewGeometricLattice(1.5, 0.25),
		NewShifted(NewExponential(1), 2),
		emp,
	}
}

func TestSampleMeanMatchesMean(t *testing.T) {
	r := rngutil.New(99)
	for _, d := range allLaws() {
		st := r.Spawn()
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += d.Sample(st)
		}
		mean := sum / n
		want := d.Mean()
		tol := 0.02*want + 0.02
		if math.Abs(mean-want) > tol {
			t.Errorf("%v: sample mean %v, want %v", d, mean, want)
		}
	}
}

func TestSampleSecondMomentMatches(t *testing.T) {
	r := rngutil.New(100)
	for _, d := range allLaws() {
		st := r.Spawn()
		const n = 300000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := d.Sample(st)
			sum += v * v
		}
		m2 := sum / n
		want := d.SecondMoment()
		tol := 0.03*want + 0.03
		if math.Abs(m2-want) > tol {
			t.Errorf("%v: sample E[X²] %v, want %v", d, m2, want)
		}
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	for _, d := range allLaws() {
		prev := -1.0
		for x := -1.0; x <= 20; x += 0.05 {
			c := d.CDF(x)
			if c < 0 || c > 1 {
				t.Fatalf("%v: CDF(%v)=%v outside [0,1]", d, x, c)
			}
			if c < prev-1e-12 {
				t.Fatalf("%v: CDF decreased at %v", d, x)
			}
			prev = c
		}
		if d.CDF(-0.5) != 0 {
			t.Errorf("%v: CDF(-0.5) != 0", d)
		}
		if d.CDF(1e6) < 1-1e-9 {
			t.Errorf("%v: CDF(1e6) = %v, want ~1", d, d.CDF(1e6))
		}
	}
}

func TestLSTBasicProperties(t *testing.T) {
	for _, d := range allLaws() {
		if got := d.LST(0); math.Abs(got-1) > 1e-9 {
			t.Errorf("%v: LST(0)=%v, want 1", d, got)
		}
		prev := 1.0
		for s := 0.1; s < 10; s += 0.1 {
			v := d.LST(s)
			if v < 0 || v > 1+1e-12 {
				t.Fatalf("%v: LST(%v)=%v outside [0,1]", d, s, v)
			}
			if v > prev+1e-12 {
				t.Fatalf("%v: LST increased at s=%v", d, s)
			}
			prev = v
		}
	}
}

// LST'(0) = -mean: check by finite differences.
func TestLSTDerivativeIsMean(t *testing.T) {
	for _, d := range allLaws() {
		h := 1e-6
		deriv := (d.LST(h) - 1) / h
		if math.Abs(-deriv-d.Mean()) > 1e-3*(1+d.Mean()) {
			t.Errorf("%v: -LST'(0) = %v, want mean %v", d, -deriv, d.Mean())
		}
	}
}

func TestCDFMatchesSampledFrequencies(t *testing.T) {
	r := rngutil.New(101)
	for _, d := range allLaws() {
		st := r.Spawn()
		const n = 100000
		// Check at the 3 quartile-ish points of each law.
		probe := []float64{0.5 * d.Mean(), d.Mean(), 2 * d.Mean()}
		counts := make([]int, len(probe))
		for i := 0; i < n; i++ {
			v := d.Sample(st)
			for j, p := range probe {
				if v <= p {
					counts[j]++
				}
			}
		}
		for j, p := range probe {
			got := float64(counts[j]) / n
			want := d.CDF(p)
			if math.Abs(got-want) > 0.01 {
				t.Errorf("%v: empirical CDF(%v)=%v, analytic %v", d, p, got, want)
			}
		}
	}
}

func TestVarianceAndSCV(t *testing.T) {
	exp := NewExponential(2)
	if v := Variance(exp); math.Abs(v-0.25) > 1e-12 {
		t.Fatalf("exp variance %v, want 0.25", v)
	}
	if s := SCV(exp); math.Abs(s-1) > 1e-12 {
		t.Fatalf("exp SCV %v, want 1", s)
	}
	det := NewDeterministic(5)
	if s := SCV(det); s != 0 {
		t.Fatalf("deterministic SCV %v, want 0", s)
	}
	erl := NewErlang(4, 1)
	if s := SCV(erl); math.Abs(s-0.25) > 1e-12 {
		t.Fatalf("Erlang-4 SCV %v, want 1/4", s)
	}
}

func TestDeterministicExact(t *testing.T) {
	d := NewDeterministic(2.5)
	if d.CDF(2.4999) != 0 || d.CDF(2.5) != 1 {
		t.Fatal("deterministic CDF step misplaced")
	}
	r := rngutil.New(1)
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 2.5 {
			t.Fatal("deterministic sample varies")
		}
	}
}

func TestErlangCDFAgainstExponential(t *testing.T) {
	// Erlang(1, rate) must coincide with Exponential(rate).
	e1 := NewErlang(1, 0.7)
	ex := NewExponential(0.7)
	for x := 0.0; x < 10; x += 0.3 {
		if math.Abs(e1.CDF(x)-ex.CDF(x)) > 1e-12 {
			t.Fatalf("Erlang(1) CDF differs from exponential at %v", x)
		}
	}
}

func TestGeometricLatticeMeanAndCDF(t *testing.T) {
	g := NewGeometricLattice(3, 0.5) // mean 3 steps of 0.5 => mean 1.5
	if math.Abs(g.Mean()-1.5) > 1e-12 {
		t.Fatalf("geometric lattice mean %v, want 1.5", g.Mean())
	}
	// P(X = 0) = 1-q = 1/4.
	if math.Abs(g.CDF(0)-0.25) > 1e-12 {
		t.Fatalf("P(X<=0) = %v, want 0.25", g.CDF(0))
	}
	// Zero mean degenerates to the constant 0.
	z := NewGeometricLattice(0, 1)
	r := rngutil.New(2)
	for i := 0; i < 10; i++ {
		if z.Sample(r) != 0 {
			t.Fatal("zero-mean geometric lattice sampled nonzero")
		}
	}
}

func TestShiftedComposition(t *testing.T) {
	base := NewExponential(1)
	s := NewShifted(base, 3)
	if math.Abs(s.Mean()-4) > 1e-12 {
		t.Fatalf("shifted mean %v, want 4", s.Mean())
	}
	// E[(X+3)²] = 2 + 6 + 9 = 17 for Exp(1).
	if math.Abs(s.SecondMoment()-17) > 1e-12 {
		t.Fatalf("shifted second moment %v, want 17", s.SecondMoment())
	}
	if s.CDF(2.9) != 0 {
		t.Fatal("shifted CDF nonzero below offset")
	}
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical(nil, nil); err == nil {
		t.Fatal("empty empirical accepted")
	}
	if _, err := NewEmpirical([]float64{1, 1}, []float64{1, 1}); err == nil {
		t.Fatal("non-ascending support accepted")
	}
	if _, err := NewEmpirical([]float64{1}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewEmpirical([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero-mass empirical accepted")
	}
	if _, err := NewEmpirical([]float64{-1, 0}, []float64{1, 1}); err == nil {
		t.Fatal("negative support accepted")
	}
}

func TestEmpiricalExactValues(t *testing.T) {
	e, err := NewEmpirical([]float64{0, 1, 2}, []float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Mean()-(0*0.25+1*0.25+2*0.5)) > 1e-12 {
		t.Fatalf("empirical mean wrong: %v", e.Mean())
	}
	if math.Abs(e.CDF(1)-0.5) > 1e-12 {
		t.Fatalf("empirical CDF(1) = %v, want 0.5", e.CDF(1))
	}
	if math.Abs(e.CDF(0.5)-0.25) > 1e-12 {
		t.Fatalf("empirical CDF(0.5) = %v, want 0.25", e.CDF(0.5))
	}
	xs, ps := e.Support()
	if len(xs) != 3 || len(ps) != 3 {
		t.Fatal("support length wrong")
	}
	sum := ps[0] + ps[1] + ps[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

// Property: for every law, samples are non-negative.
func TestSamplesNonNegativeProperty(t *testing.T) {
	laws := allLaws()
	f := func(seed uint64, pick uint8) bool {
		d := laws[int(pick)%len(laws)]
		r := rngutil.New(seed)
		for i := 0; i < 20; i++ {
			if d.Sample(r) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CDF evaluated at a sample is in [0,1] and the empirical check
// P(X <= median draws) is consistent with CDF at that point.
func TestCDFAtSamplesProperty(t *testing.T) {
	laws := allLaws()
	f := func(seed uint64, pick uint8) bool {
		d := laws[int(pick)%len(laws)]
		r := rngutil.New(seed)
		for i := 0; i < 20; i++ {
			c := d.CDF(d.Sample(r))
			if c < 0 || c > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewDeterministic(-1) },
		func() { NewExponential(0) },
		func() { NewUniform(2, 1) },
		func() { NewUniform(-1, 1) },
		func() { NewErlang(0, 1) },
		func() { NewErlang(2, 0) },
		func() { NewGeometricLattice(-1, 1) },
		func() { NewGeometricLattice(1, 0) },
		func() { NewShifted(NewExponential(1), -1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
