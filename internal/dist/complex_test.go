package dist

import (
	"math"
	"math/cmplx"
	"testing"

	"windowctl/internal/rngutil"
)

// TestLSTComplexMatchesRealOnAxis: on the real axis the complex LST must
// coincide with the real implementation, for every law.
func TestLSTComplexMatchesRealOnAxis(t *testing.T) {
	for _, d := range allLaws() {
		for s := 0.0; s <= 5; s += 0.25 {
			got, err := LSTComplex(d, complex(s, 0))
			if err != nil {
				t.Fatalf("%v: %v", d, err)
			}
			want := d.LST(s)
			if math.Abs(real(got)-want) > 1e-10 || math.Abs(imag(got)) > 1e-10 {
				t.Fatalf("%v at s=%v: complex %v vs real %v", d, s, got, want)
			}
		}
	}
}

// TestLSTComplexCharacteristicConsistency: |φ(iω)| <= 1 for all ω — the
// transform on the imaginary axis is a characteristic function.
func TestLSTComplexCharacteristicConsistency(t *testing.T) {
	for _, d := range allLaws() {
		for w := -10.0; w <= 10; w += 0.5 {
			v, err := LSTComplex(d, complex(0, w))
			if err != nil {
				t.Fatal(err)
			}
			if cmplx.Abs(v) > 1+1e-10 {
				t.Fatalf("%v: |phi(i%v)| = %v > 1", d, w, cmplx.Abs(v))
			}
		}
	}
}

// TestLSTComplexMonteCarlo cross-checks E[e^{-sX}] at a complex point by
// sampling.
func TestLSTComplexMonteCarlo(t *testing.T) {
	r := rngutil.New(71)
	s := complex(0.5, 0.7)
	for _, d := range allLaws() {
		want, err := LSTComplex(d, s)
		if err != nil {
			t.Fatal(err)
		}
		st := r.Spawn()
		const n = 200000
		var acc complex128
		for i := 0; i < n; i++ {
			acc += cmplx.Exp(-s * complex(d.Sample(st), 0))
		}
		got := acc / complex(n, 0)
		if cmplx.Abs(got-want) > 0.01 {
			t.Fatalf("%v: MC %v vs analytic %v", d, got, want)
		}
	}
}

// fakeDist is an unknown Distribution implementation.
type fakeDist struct{ Deterministic }

func TestLSTComplexUnknownType(t *testing.T) {
	if _, err := LSTComplex(fakeDist{}, 1); err == nil {
		t.Fatal("unknown distribution type accepted")
	}
	// Shifted propagates inner errors.
	if _, err := LSTComplex(Shifted{Base: fakeDist{}, Offset: 1}, 1); err == nil {
		t.Fatal("shifted unknown base accepted")
	}
}
