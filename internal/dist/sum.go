package dist

import (
	"fmt"
	"math"

	"windowctl/internal/rngutil"
)

// Atomize converts a discrete law into an explicit Empirical atom list,
// truncating any infinite support once the remaining tail mass falls
// below tol (the tail is folded into the final atom so mass is
// conserved).  It supports the discrete laws of this package; continuous
// laws return an error.
func Atomize(d Distribution, tol float64) (*Empirical, error) {
	if tol <= 0 {
		tol = 1e-12
	}
	switch v := d.(type) {
	case *Empirical:
		return v, nil
	case Deterministic:
		return NewEmpirical([]float64{v.Value}, []float64{1})
	case GeometricLattice:
		if v.Q == 0 {
			return NewEmpirical([]float64{0}, []float64{1})
		}
		var xs, ws []float64
		p := 1 - v.Q
		mass := 0.0
		for n := 0; ; n++ {
			w := p * math.Pow(v.Q, float64(n))
			xs = append(xs, float64(n)*v.Step)
			ws = append(ws, w)
			mass += w
			if 1-mass < tol {
				ws[len(ws)-1] += 1 - mass // fold the tail
				break
			}
			if n > 1<<20 {
				return nil, fmt.Errorf("dist: geometric lattice did not truncate")
			}
		}
		return NewEmpirical(xs, ws)
	case Shifted:
		base, err := Atomize(v.Base, tol)
		if err != nil {
			return nil, err
		}
		xs, ps := base.Support()
		for i := range xs {
			xs[i] += v.Offset
		}
		return NewEmpirical(xs, ps)
	default:
		return nil, fmt.Errorf("dist: cannot atomize %T", d)
	}
}

// AtomicSum is the law of D + Y for independent D (discrete, given by its
// atoms) and Y (any law).  It is how the protocol's service time is
// composed when message lengths are random: a discrete number of wasted
// slots plus a general transmission time.
type AtomicSum struct {
	d *Empirical
	y Distribution
}

// NewAtomicSum builds the sum law; both components are required.
func NewAtomicSum(d *Empirical, y Distribution) (*AtomicSum, error) {
	if d == nil || y == nil {
		return nil, fmt.Errorf("dist: AtomicSum needs both components")
	}
	return &AtomicSum{d: d, y: y}, nil
}

// Mean implements Distribution.
func (s *AtomicSum) Mean() float64 { return s.d.Mean() + s.y.Mean() }

// SecondMoment implements Distribution.
func (s *AtomicSum) SecondMoment() float64 {
	// E[(D+Y)²] = E[D²] + 2·E[D]E[Y] + E[Y²].
	return s.d.SecondMoment() + 2*s.d.Mean()*s.y.Mean() + s.y.SecondMoment()
}

// CDF implements Distribution: P(D+Y <= t) = Σ_i p_i F_Y(t − x_i).
func (s *AtomicSum) CDF(t float64) float64 {
	xs, ps := s.d.Support()
	sum := 0.0
	for i, x := range xs {
		if t < x {
			break // atoms ascend; later terms are zero
		}
		sum += ps[i] * s.y.CDF(t-x)
	}
	return sum
}

// LST implements Distribution.
func (s *AtomicSum) LST(u float64) float64 { return s.d.LST(u) * s.y.LST(u) }

// Sample implements Distribution.
func (s *AtomicSum) Sample(r *rngutil.Stream) float64 {
	return s.d.Sample(r) + s.y.Sample(r)
}

// String implements Distribution.
func (s *AtomicSum) String() string { return fmt.Sprintf("(%v + %v)", s.d, s.y) }
