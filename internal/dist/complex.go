package dist

import (
	"fmt"
	"math/cmplx"
)

// LSTComplex evaluates the Laplace–Stieltjes transform E[e^(−sX)] at a
// complex argument with Re(s) >= 0.  It is required by the transform-
// inversion analyses (busy periods, LCFS waiting times), which evaluate
// the transform along a Bromwich contour.  Every law in this package is
// supported; unknown implementations return an error.
func LSTComplex(d Distribution, s complex128) (complex128, error) {
	switch v := d.(type) {
	case Deterministic:
		return cmplx.Exp(-s * complex(v.Value, 0)), nil
	case Exponential:
		return complex(v.Rate, 0) / (complex(v.Rate, 0) + s), nil
	case Uniform:
		if s == 0 {
			return 1, nil
		}
		num := cmplx.Exp(-s*complex(v.Low, 0)) - cmplx.Exp(-s*complex(v.High, 0))
		return num / (s * complex(v.High-v.Low, 0)), nil
	case Erlang:
		base := complex(v.Rate, 0) / (complex(v.Rate, 0) + s)
		return cmplx.Pow(base, complex(float64(v.K), 0)), nil
	case GeometricLattice:
		return complex(1-v.Q, 0) / (1 - complex(v.Q, 0)*cmplx.Exp(-s*complex(v.Step, 0))), nil
	case Shifted:
		inner, err := LSTComplex(v.Base, s)
		if err != nil {
			return 0, err
		}
		return cmplx.Exp(-s*complex(v.Offset, 0)) * inner, nil
	case *Empirical:
		sum := complex(0, 0)
		for i, x := range v.xs {
			sum += complex(v.ps[i], 0) * cmplx.Exp(-s*complex(x, 0))
		}
		return sum, nil
	case *AtomicSum:
		a, err := LSTComplex(v.d, s)
		if err != nil {
			return 0, err
		}
		b, err := LSTComplex(v.y, s)
		if err != nil {
			return 0, err
		}
		return a * b, nil
	default:
		return 0, fmt.Errorf("dist: no complex LST for %T", d)
	}
}
