// Package dist provides the probability distributions used throughout the
// window-protocol models: as arrival processes, as message-length and
// service-time laws for the analytic queueing models, and as variate
// generators for the simulator.
//
// A Distribution exposes exactly what the analyses in the paper consume:
// moments (for ρ and the residual-service law), the CDF (for the unfinished
// work recursion of §4.1), the Laplace–Stieltjes transform (for the
// busy-period and LCFS baseline analyses), and sampling (for simulation).
// All distributions here are non-negative, as befits times.
package dist

import (
	"fmt"
	"math"

	"windowctl/internal/rngutil"
)

// Distribution is a non-negative probability law.
type Distribution interface {
	// Mean returns the first moment E[X].
	Mean() float64
	// SecondMoment returns E[X²].
	SecondMoment() float64
	// CDF returns P(X <= x).  CDF(x) = 0 for x < 0.
	CDF(x float64) float64
	// LST returns the Laplace–Stieltjes transform E[e^(−sX)] for s >= 0.
	LST(s float64) float64
	// Sample draws one variate using the given stream.
	Sample(r *rngutil.Stream) float64
	// String describes the law and its parameters.
	String() string
}

// Variance returns Var(X) for any Distribution.
func Variance(d Distribution) float64 {
	m := d.Mean()
	return d.SecondMoment() - m*m
}

// SCV returns the squared coefficient of variation Var(X)/E[X]²; it is 0
// for deterministic laws and 1 for the exponential.
func SCV(d Distribution) float64 {
	m := d.Mean()
	if m == 0 {
		return 0
	}
	return Variance(d) / (m * m)
}

// ---------------------------------------------------------------------------
// Deterministic
// ---------------------------------------------------------------------------

// Deterministic is the law of a constant: P(X = Value) = 1.  The paper's
// evaluation uses fixed message lengths (M·τ), which this models.
type Deterministic struct{ Value float64 }

// NewDeterministic returns the constant law at v; it panics if v < 0.
func NewDeterministic(v float64) Deterministic {
	if v < 0 {
		panic("dist: negative deterministic value")
	}
	return Deterministic{Value: v}
}

// Mean implements Distribution.
func (d Deterministic) Mean() float64 { return d.Value }

// SecondMoment implements Distribution.
func (d Deterministic) SecondMoment() float64 { return d.Value * d.Value }

// CDF implements Distribution.
func (d Deterministic) CDF(x float64) float64 {
	if x >= d.Value {
		return 1
	}
	return 0
}

// LST implements Distribution.
func (d Deterministic) LST(s float64) float64 { return math.Exp(-s * d.Value) }

// Sample implements Distribution.
func (d Deterministic) Sample(*rngutil.Stream) float64 { return d.Value }

// String implements Distribution.
func (d Deterministic) String() string { return fmt.Sprintf("Deterministic(%g)", d.Value) }

// ---------------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------------

// Exponential is the exponential law with the given Rate (mean 1/Rate).
type Exponential struct{ Rate float64 }

// NewExponential returns an exponential law; it panics if rate <= 0.
func NewExponential(rate float64) Exponential {
	if rate <= 0 {
		panic("dist: non-positive exponential rate")
	}
	return Exponential{Rate: rate}
}

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// SecondMoment implements Distribution.
func (e Exponential) SecondMoment() float64 { return 2 / (e.Rate * e.Rate) }

// CDF implements Distribution.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

// LST implements Distribution.
func (e Exponential) LST(s float64) float64 { return e.Rate / (e.Rate + s) }

// Sample implements Distribution.
func (e Exponential) Sample(r *rngutil.Stream) float64 { return r.Exp(e.Rate) }

// String implements Distribution.
func (e Exponential) String() string { return fmt.Sprintf("Exponential(rate=%g)", e.Rate) }

// ---------------------------------------------------------------------------
// Uniform
// ---------------------------------------------------------------------------

// Uniform is the continuous uniform law on [Low, High].
type Uniform struct{ Low, High float64 }

// NewUniform returns a uniform law on [low, high]; it panics unless
// 0 <= low < high.
func NewUniform(low, high float64) Uniform {
	if low < 0 || high <= low {
		panic("dist: invalid uniform bounds")
	}
	return Uniform{Low: low, High: high}
}

// Mean implements Distribution.
func (u Uniform) Mean() float64 { return (u.Low + u.High) / 2 }

// SecondMoment implements Distribution.
func (u Uniform) SecondMoment() float64 {
	// E[X²] = (a² + ab + b²)/3.
	return (u.Low*u.Low + u.Low*u.High + u.High*u.High) / 3
}

// CDF implements Distribution.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Low:
		return 0
	case x >= u.High:
		return 1
	default:
		return (x - u.Low) / (u.High - u.Low)
	}
}

// LST implements Distribution.
func (u Uniform) LST(s float64) float64 {
	if s == 0 {
		return 1
	}
	return (math.Exp(-s*u.Low) - math.Exp(-s*u.High)) / (s * (u.High - u.Low))
}

// Sample implements Distribution.
func (u Uniform) Sample(r *rngutil.Stream) float64 {
	return u.Low + (u.High-u.Low)*r.Float64()
}

// String implements Distribution.
func (u Uniform) String() string { return fmt.Sprintf("Uniform[%g,%g]", u.Low, u.High) }

// ---------------------------------------------------------------------------
// Erlang
// ---------------------------------------------------------------------------

// Erlang is the Erlang-k law: the sum of K independent exponentials of the
// given Rate.  It interpolates between exponential (K=1) and deterministic
// (K→∞) service variability, which makes it useful for sensitivity studies
// of the M/G/1 model.
type Erlang struct {
	K    int
	Rate float64
}

// NewErlang returns an Erlang law; it panics unless k >= 1 and rate > 0.
func NewErlang(k int, rate float64) Erlang {
	if k < 1 || rate <= 0 {
		panic("dist: invalid Erlang parameters")
	}
	return Erlang{K: k, Rate: rate}
}

// Mean implements Distribution.
func (e Erlang) Mean() float64 { return float64(e.K) / e.Rate }

// SecondMoment implements Distribution.
func (e Erlang) SecondMoment() float64 {
	k := float64(e.K)
	return k * (k + 1) / (e.Rate * e.Rate)
}

// CDF implements Distribution.  Uses the closed-form lower regularized
// gamma function for integer shape: 1 − e^{−λx} Σ_{n<K} (λx)ⁿ/n!.
func (e Erlang) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	lx := e.Rate * x
	sum := 0.0
	term := 1.0
	for n := 0; n < e.K; n++ {
		if n > 0 {
			term *= lx / float64(n)
		}
		sum += term
	}
	return 1 - math.Exp(-lx)*sum
}

// LST implements Distribution.
func (e Erlang) LST(s float64) float64 {
	return math.Pow(e.Rate/(e.Rate+s), float64(e.K))
}

// Sample implements Distribution.
func (e Erlang) Sample(r *rngutil.Stream) float64 {
	sum := 0.0
	for i := 0; i < e.K; i++ {
		sum += r.Exp(e.Rate)
	}
	return sum
}

// String implements Distribution.
func (e Erlang) String() string { return fmt.Sprintf("Erlang(k=%d,rate=%g)", e.K, e.Rate) }

// ---------------------------------------------------------------------------
// Geometric-on-a-lattice
// ---------------------------------------------------------------------------

// GeometricLattice is a geometric law on the lattice {0, Step, 2·Step, ...}:
// P(X = n·Step) = (1−q)·qⁿ, with mean Step·q/(1−q).
//
// This is exactly the service-time model [Kurose 83] uses for the
// *scheduling* component of a message's service time: a geometrically
// distributed number of wasted windowing slots, each of duration τ (the
// Step).  The controlled-protocol analysis of §4 inherits it.
type GeometricLattice struct {
	Q    float64 // success-run parameter in [0, 1)
	Step float64 // lattice spacing (> 0)
}

// NewGeometricLattice returns the geometric lattice law with the given mean
// number of steps and step size.  meanSteps = q/(1−q), so q =
// meanSteps/(1+meanSteps).  It panics if meanSteps < 0 or step <= 0.
func NewGeometricLattice(meanSteps, step float64) GeometricLattice {
	if meanSteps < 0 || step <= 0 {
		panic("dist: invalid geometric lattice parameters")
	}
	return GeometricLattice{Q: meanSteps / (1 + meanSteps), Step: step}
}

// Mean implements Distribution.
func (g GeometricLattice) Mean() float64 { return g.Step * g.Q / (1 - g.Q) }

// SecondMoment implements Distribution.
func (g GeometricLattice) SecondMoment() float64 {
	// For N ~ Geom(q) on {0,1,...}: E[N] = q/(1−q), Var(N) = q/(1−q)².
	// E[N²] = Var + mean² = q(1+q)/(1−q)².
	q := g.Q
	en2 := q * (1 + q) / ((1 - q) * (1 - q))
	return g.Step * g.Step * en2
}

// CDF implements Distribution.
func (g GeometricLattice) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	n := math.Floor(x / g.Step)
	// P(N <= n) = 1 − q^{n+1}.
	return 1 - math.Pow(g.Q, n+1)
}

// LST implements Distribution.
func (g GeometricLattice) LST(s float64) float64 {
	// E[e^{−sN·Step}] = (1−q) / (1 − q e^{−s·Step}).
	return (1 - g.Q) / (1 - g.Q*math.Exp(-s*g.Step))
}

// Sample implements Distribution.
func (g GeometricLattice) Sample(r *rngutil.Stream) float64 {
	if g.Q == 0 {
		return 0
	}
	return g.Step * float64(r.Geometric(1-g.Q))
}

// String implements Distribution.
func (g GeometricLattice) String() string {
	return fmt.Sprintf("GeometricLattice(q=%g,step=%g)", g.Q, g.Step)
}

// ---------------------------------------------------------------------------
// Shifted distribution (X + c)
// ---------------------------------------------------------------------------

// Shifted is the law of Base + Offset, Offset >= 0.  The paper's message
// service time is exactly such a sum: a geometric scheduling time plus a
// constant transmission time M·τ.
type Shifted struct {
	Base   Distribution
	Offset float64
}

// NewShifted returns the law of base + offset; it panics if offset < 0.
func NewShifted(base Distribution, offset float64) Shifted {
	if offset < 0 {
		panic("dist: negative shift offset")
	}
	return Shifted{Base: base, Offset: offset}
}

// Mean implements Distribution.
func (s Shifted) Mean() float64 { return s.Base.Mean() + s.Offset }

// SecondMoment implements Distribution.
func (s Shifted) SecondMoment() float64 {
	// E[(X+c)²] = E[X²] + 2c·E[X] + c².
	return s.Base.SecondMoment() + 2*s.Offset*s.Base.Mean() + s.Offset*s.Offset
}

// CDF implements Distribution.
func (s Shifted) CDF(x float64) float64 { return s.Base.CDF(x - s.Offset) }

// LST implements Distribution.
func (s Shifted) LST(u float64) float64 { return math.Exp(-u*s.Offset) * s.Base.LST(u) }

// Sample implements Distribution.
func (s Shifted) Sample(r *rngutil.Stream) float64 { return s.Base.Sample(r) + s.Offset }

// String implements Distribution.
func (s Shifted) String() string { return fmt.Sprintf("%v + %g", s.Base, s.Offset) }

// ---------------------------------------------------------------------------
// Empirical (tabulated) distribution
// ---------------------------------------------------------------------------

// Empirical is a discrete law over tabulated support points, used to carry
// exact windowing-time distributions computed by internal/sched into the
// queueing model.
type Empirical struct {
	xs []float64 // ascending support
	ps []float64 // probabilities, sum 1
	cs []float64 // cumulative
}

// NewEmpirical builds a discrete law from support points and weights.  The
// weights are normalized; points must be non-negative and ascending.
func NewEmpirical(xs, ws []float64) (*Empirical, error) {
	if len(xs) == 0 || len(xs) != len(ws) {
		return nil, fmt.Errorf("dist: empirical needs equal, non-empty xs/ws (got %d/%d)", len(xs), len(ws))
	}
	total := 0.0
	for i, w := range ws {
		if w < 0 {
			return nil, fmt.Errorf("dist: negative weight at %d", i)
		}
		if xs[i] < 0 {
			return nil, fmt.Errorf("dist: negative support point at %d", i)
		}
		if i > 0 && xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("dist: support not strictly ascending at %d", i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: weights sum to zero")
	}
	e := &Empirical{
		xs: append([]float64(nil), xs...),
		ps: make([]float64, len(ws)),
		cs: make([]float64, len(ws)),
	}
	run := 0.0
	for i, w := range ws {
		e.ps[i] = w / total
		run += e.ps[i]
		e.cs[i] = run
	}
	e.cs[len(e.cs)-1] = 1 // defend against rounding
	return e, nil
}

// Mean implements Distribution.
func (e *Empirical) Mean() float64 {
	sum := 0.0
	for i, x := range e.xs {
		sum += x * e.ps[i]
	}
	return sum
}

// SecondMoment implements Distribution.
func (e *Empirical) SecondMoment() float64 {
	sum := 0.0
	for i, x := range e.xs {
		sum += x * x * e.ps[i]
	}
	return sum
}

// CDF implements Distribution.
func (e *Empirical) CDF(x float64) float64 {
	if x < e.xs[0] {
		return 0
	}
	// Binary search for the last support point <= x.
	lo, hi := 0, len(e.xs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if e.xs[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return e.cs[lo]
}

// LST implements Distribution.
func (e *Empirical) LST(s float64) float64 {
	sum := 0.0
	for i, x := range e.xs {
		sum += e.ps[i] * math.Exp(-s*x)
	}
	return sum
}

// Sample implements Distribution.
func (e *Empirical) Sample(r *rngutil.Stream) float64 {
	u := r.Float64()
	lo, hi := 0, len(e.cs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if e.cs[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return e.xs[lo]
}

// String implements Distribution.
func (e *Empirical) String() string {
	return fmt.Sprintf("Empirical(%d points, mean=%.4g)", len(e.xs), e.Mean())
}

// Support returns copies of the support points and their probabilities.
func (e *Empirical) Support() (xs, ps []float64) {
	return append([]float64(nil), e.xs...), append([]float64(nil), e.ps...)
}
