package queueing

import (
	"fmt"
	"math"
	"sync"

	"windowctl/internal/dist"
	"windowctl/internal/sched"
)

// SchedulingMode selects how the windowing-overhead component of the
// service time is modelled.
type SchedulingMode int

// SchedulingMode values.
const (
	// GeometricScheduling uses the paper-faithful [Kurose 83] model: a
	// geometric number of wasted slots with the analytically computed
	// mean.
	GeometricScheduling SchedulingMode = iota
	// ExactScheduling uses the exact slot-count distribution computed by
	// internal/sched — a fidelity upgrade over the 1983 approximation.
	ExactScheduling
)

// ProtocolModel maps a window-protocol operating point, in the paper's
// parameterization, onto the analytic queueing models:
//
//   - τ (Tau): the slot time, the end-to-end propagation delay;
//   - M: the fixed message length in units of τ;
//   - ρ′ (RhoPrime): the normalized offered channel load λ′·M·τ, counting
//     every message, lost or not.
//
// The initial window length follows the element-(2) heuristic: content
// G* ≈ argmin of mean windowing time per scheduled message, capped so the
// window never exceeds the unexamined span (at most K under element (4)).
type ProtocolModel struct {
	// Tau is the slot time; must be positive.
	Tau float64
	// M is the message length in slots; must be positive.
	M float64
	// RhoPrime is the normalized offered load λ′·M·τ; must be positive.
	RhoPrime float64
	// Mode selects the scheduling-time model (default geometric).
	Mode SchedulingMode
	// IncludeEmptyProbes counts empty initial windows as service time too.
	// The default (false) attributes them to server idle time, which is
	// exact in the K → 0 limit and differs by < 0.4·τ per message
	// elsewhere; see internal/sched.ResolutionSlotPMF.
	IncludeEmptyProbes bool
	// Step overrides the convolution grid spacing (0 = automatic).
	Step float64
	// MaxSlots truncates the exact scheduling distribution (0 = 512).
	MaxSlots int
	// TxDist, when non-nil, replaces the paper's fixed transmission time
	// M·τ with a general i.i.d. message-length law (its mean should be
	// M·τ so RhoPrime keeps its meaning).  Theorem 1 needs only
	// identically distributed lengths, so the controlled analysis still
	// applies; the service law becomes windowing overhead + TxDist.
	TxDist dist.Distribution
}

var optimalGOnce struct {
	sync.Once
	g float64
}

// OptimalWindowContent returns the pure number G* minimizing the mean
// windowing time per scheduled message (the element-(2) heuristic),
// computed once and cached.
func OptimalWindowContent() float64 {
	optimalGOnce.Do(func() {
		optimalGOnce.g, _ = sched.OptimalG()
	})
	return optimalGOnce.g
}

func (m ProtocolModel) validate() error {
	if m.Tau <= 0 || m.M <= 0 || m.RhoPrime <= 0 {
		return fmt.Errorf("queueing: ProtocolModel needs positive Tau, M, RhoPrime (got %v, %v, %v)",
			m.Tau, m.M, m.RhoPrime)
	}
	return nil
}

// Lambda returns the total message arrival rate λ′ = ρ′/(M·τ).
func (m ProtocolModel) Lambda() float64 { return m.RhoPrime / (m.M * m.Tau) }

// WindowContent returns the mean window content G actually used at
// constraint K: the optimum G*, reduced when element (4) caps the
// unexamined span (and hence the window) at K.
func (m ProtocolModel) WindowContent(k float64) float64 {
	g := OptimalWindowContent()
	if spanContent := m.Lambda() * k; spanContent < g {
		return spanContent
	}
	return g
}

// Service builds the service-time law for mean window content g > 0:
// windowing overhead plus the transmission time (the fixed M·τ, or TxDist
// when set).
func (m ProtocolModel) Service(g float64) (dist.Distribution, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	tx := m.M * m.Tau
	if g <= 0 {
		if m.TxDist != nil {
			return m.TxDist, nil
		}
		return dist.NewDeterministic(tx), nil
	}
	// Build the scheduling-overhead law (a lattice of wasted slots).
	var overhead dist.Distribution
	switch m.Mode {
	case GeometricScheduling:
		o := sched.Analyze(g)
		meanSlots := o.ResolutionSlots
		if m.IncludeEmptyProbes {
			meanSlots = o.TotalSlots()
		}
		overhead = dist.NewGeometricLattice(meanSlots, m.Tau)
	case ExactScheduling:
		maxSlots := m.MaxSlots
		if maxSlots <= 0 {
			maxSlots = 512
		}
		var pmf []float64
		if m.IncludeEmptyProbes {
			pmf = sched.SlotPMF(g, maxSlots)
		} else {
			pmf = sched.ResolutionSlotPMF(g, maxSlots)
		}
		xs := make([]float64, len(pmf))
		for j := range pmf {
			xs[j] = float64(j) * m.Tau
		}
		emp, err := dist.NewEmpirical(xs, pmf)
		if err != nil {
			return nil, err
		}
		overhead = emp
	default:
		return nil, fmt.Errorf("queueing: unknown scheduling mode %d", m.Mode)
	}
	if m.TxDist == nil {
		return dist.NewShifted(overhead, tx), nil
	}
	atoms, err := dist.Atomize(overhead, 1e-12)
	if err != nil {
		return nil, fmt.Errorf("queueing: composing service with random lengths: %w", err)
	}
	return dist.NewAtomicSum(atoms, m.TxDist)
}

// ControlledLoss evaluates the paper's equation 4.7 for the controlled
// protocol at constraint K: the distributed queue under optimal elements
// (1), (3), (4) is the impatient M/G/1 queue.
func (m ProtocolModel) ControlledLoss(k float64) (Result, error) {
	if err := m.validate(); err != nil {
		return Result{}, err
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("queueing: constraint K=%v must be positive", k)
	}
	svc, err := m.Service(m.WindowContent(k))
	if err != nil {
		return Result{}, err
	}
	q := ImpatientMG1{Lambda: m.Lambda(), Service: svc, Step: m.Step}
	return q.Solve(k)
}

// ControlledLossGrid evaluates equation 4.7 at every constraint of ks,
// sharing the convolution series among constraints with the same window
// content (element (4) caps the window at λ′K below G*, so short
// constraints carry their own service law while everything at or above
// G*/λ′ shares one).  Results match per-K ControlledLoss to rounding
// error; a full figure-7 panel costs one convolution series plus one
// cheap series per capped constraint instead of one series per point.
func (m ProtocolModel) ControlledLossGrid(ks []float64) ([]Result, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	out := make([]Result, len(ks))
	byContent := map[float64][]int{}
	var order []float64 // deterministic group order
	for i, k := range ks {
		if k <= 0 {
			return nil, fmt.Errorf("queueing: constraint K=%v must be positive", k)
		}
		g := m.WindowContent(k)
		if _, ok := byContent[g]; !ok {
			order = append(order, g)
		}
		byContent[g] = append(byContent[g], i)
	}
	for _, g := range order {
		idx := byContent[g]
		svc, err := m.Service(g)
		if err != nil {
			return nil, err
		}
		sub := make([]float64, len(idx))
		for n, i := range idx {
			sub[n] = ks[i]
		}
		q := ImpatientMG1{Lambda: m.Lambda(), Service: svc, Step: m.Step}
		res, err := q.SolveGrid(sub)
		if err != nil {
			return nil, err
		}
		for n, i := range idx {
			out[i] = res[n]
		}
	}
	return out, nil
}

// FCFSLossGrid returns the uncontrolled-FCFS loss P(W > K) at every
// constraint of ks via one shared Beneš series per quadrature grid.
func (m ProtocolModel) FCFSLossGrid(ks []float64) ([]float64, error) {
	q, err := m.baselineQueue()
	if err != nil {
		return nil, err
	}
	return q.LossFCFSGrid(ks)
}

// LCFSLossGrid returns the uncontrolled-LCFS loss P(W > K) at every
// constraint of ks, building the baseline queue (and its service law) once.
func (m ProtocolModel) LCFSLossGrid(ks []float64) ([]float64, error) {
	q, err := m.baselineQueue()
	if err != nil {
		return nil, err
	}
	return q.LossLCFSGrid(ks)
}

// GridLosses carries the three analytic loss curves of one constraint
// grid — the full analytic content of a figure-7 panel.
type GridLosses struct {
	// Controlled is the eq 4.7 result at each constraint.
	Controlled []Result
	// FCFS and LCFS are the baseline losses; NaN-filled when the
	// uncontrolled queue is unstable (ρ ≥ 1, no steady state) or, for
	// LCFS, when the transform inversion fails at a point.
	FCFS, LCFS []float64
}

// LossGrids evaluates all three analytic curves on one constraint grid
// with maximal convolution sharing: beyond the per-curve batching of
// ControlledLossGrid and FCFSLossGrid, the eq 4.7 z-series and the FCFS
// Beneš series integrate powers of the *same* residual density β wherever
// the controlled window is uncapped (G = G*, the same window content the
// baselines always use), so both curves ride a single convolution series
// there.  This is the analytic engine behind sim.Figure7Panel.
func (m ProtocolModel) LossGrids(ks []float64) (GridLosses, error) {
	if err := m.validate(); err != nil {
		return GridLosses{}, err
	}
	out := GridLosses{
		Controlled: make([]Result, len(ks)),
		FCFS:       make([]float64, len(ks)),
		LCFS:       make([]float64, len(ks)),
	}
	for i, k := range ks {
		if k <= 0 {
			return GridLosses{}, fmt.Errorf("queueing: constraint K=%v must be positive", k)
		}
		out.FCFS[i] = math.NaN()
		out.LCFS[i] = math.NaN()
	}
	lambda := m.Lambda()
	gStar := OptimalWindowContent()

	// One service law per distinct window content, built lazily.
	type lawInfo struct {
		svc  dist.Distribution
		xbar float64
	}
	laws := map[float64]lawInfo{}
	lawFor := func(g float64) (lawInfo, error) {
		if l, ok := laws[g]; ok {
			return l, nil
		}
		svc, err := m.Service(g)
		if err != nil {
			return lawInfo{}, err
		}
		l := lawInfo{svc: svc, xbar: svc.Mean()}
		laws[g] = l
		return l, nil
	}
	starLaw, err := lawFor(gStar)
	if err != nil {
		return GridLosses{}, err
	}
	baselineStable := lambda*starLaw.xbar < 1

	// Bucket the work by (window content, quadrature step): every request
	// in a bucket shares one β tabulation and one convolution series.
	type bucketKey struct{ g, step float64 }
	type bucket struct {
		key  bucketKey
		kMax float64
		ctrl []int // constraint indices wanting the z-series
		fcfs []int // constraint indices wanting the Beneš series
	}
	var buckets []*bucket
	byKey := map[bucketKey]*bucket{}
	add := func(g, xbar, k float64, i int, fcfs bool) {
		step := m.Step
		if step <= 0 {
			step = math.Min(k, xbar) / 512
		}
		key := bucketKey{g: g, step: step}
		b, ok := byKey[key]
		if !ok {
			b = &bucket{key: key}
			byKey[key] = b
			buckets = append(buckets, b)
		}
		if k > b.kMax {
			b.kMax = k
		}
		if fcfs {
			b.fcfs = append(b.fcfs, i)
		} else {
			b.ctrl = append(b.ctrl, i)
		}
	}
	for i, k := range ks {
		g := m.WindowContent(k)
		law, err := lawFor(g)
		if err != nil {
			return GridLosses{}, err
		}
		add(g, law.xbar, k, i, false)
		if baselineStable {
			add(gStar, starLaw.xbar, k, i, true)
		}
	}

	for _, b := range buckets {
		law := laws[b.key.g]
		rho := lambda * law.xbar
		q := ImpatientMG1{Lambda: lambda, Service: law.svc}
		beta := q.residualGridStep(b.kMax, b.key.step)
		reqs := make([]*seriesReq, 0, len(b.ctrl)+len(b.fcfs))
		for _, i := range b.ctrl {
			reqs = append(reqs, &seriesReq{k: ks[i], clamp: true, tol: 1e-10, rhoGuard: true})
		}
		for _, i := range b.fcfs {
			reqs = append(reqs, &seriesReq{k: ks[i], tol: 1e-12})
		}
		if err := runSeries(rho, beta, 0, reqs); err != nil {
			if len(b.ctrl) > 0 {
				return GridLosses{}, err
			}
			continue // baseline-only bucket: leave those FCFS points NaN
		}
		for n, i := range b.ctrl {
			z := reqs[n].sum
			loss := 1 - z/(1+rho*z)
			if loss < 0 {
				loss = 0
			}
			if loss > 1 {
				loss = 1
			}
			out.Controlled[i] = Result{
				Loss: loss, ServerIdle: 1 / (1 + rho*z), Rho: rho, Z: z,
				Terms: reqs[n].terms,
			}
		}
		for n, i := range b.fcfs {
			cdf := (1 - rho) * reqs[len(b.ctrl)+n].sum
			if cdf > 1 {
				cdf = 1
			}
			out.FCFS[i] = 1 - cdf
		}
	}

	if baselineStable {
		lq := MG1{Lambda: lambda, Service: starLaw.svc, Step: m.Step}
		for i, k := range ks {
			if loss, err := lq.LossLCFS(k); err == nil {
				out.LCFS[i] = loss
			}
		}
	}
	return out, nil
}

// Capacity returns the maximum sustainable offered load ρ′_max of the
// window protocol for message length M (in slots): the load at which the
// arrival rate equals the service rate including windowing overhead,
//
//	λ_max·(s̄(G*)·τ + M·τ) = 1  ⇒  ρ′_max = M / (s̄(G*) + M),
//
// where s̄(G*) is the mean wasted slots per scheduled message at the
// optimal window content.  This is the protocol's counterpart of the
// classic splitting-algorithm throughput figures: it tends to 1 as
// M → ∞ (overhead amortizes) and shrinks for short messages.  Beyond
// this load the *uncontrolled* protocols diverge; the controlled one
// sheds the excess at the sender instead.
func Capacity(mSlots float64) float64 {
	if mSlots <= 0 {
		panic("queueing: Capacity needs positive message length")
	}
	sbar := sched.Analyze(OptimalWindowContent()).TotalSlots()
	return mSlots / (sbar + mSlots)
}

// ControlledLossCurve evaluates equation 4.7 over an ascending grid of
// constraints using the paper's §4.1 *coupled* iteration: the scheduling
// component of the service time depends on the fraction of messages that
// actually get scheduled, so the loss at the n-th constraint is computed
// with the accepted fraction from the (n−1)-st, starting from the K → 0
// boundary where the scheduling delay is exactly zero.  Concretely, the
// window content at step n is G_n = min(G*, λ′·(1−p_{n−1})·K_n): the
// unexamined span near the horizon carries only messages that have not
// already been discarded.
func (m ProtocolModel) ControlledLossCurve(ks []float64) ([]Result, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	for i, k := range ks {
		if k <= 0 {
			return nil, fmt.Errorf("queueing: constraint %v must be positive", k)
		}
		if i > 0 && ks[i] <= ks[i-1] {
			return nil, fmt.Errorf("queueing: constraints must ascend (%v after %v)", ks[i], ks[i-1])
		}
	}
	// K → 0 boundary: no scheduling, service = M·τ, loss = ρ/(1+ρ).
	rho0 := m.RhoPrime
	prevLoss := rho0 / (1 + rho0)
	gStar := OptimalWindowContent()
	out := make([]Result, 0, len(ks))
	for _, k := range ks {
		g := m.Lambda() * (1 - prevLoss) * k
		if g > gStar {
			g = gStar
		}
		svc, err := m.Service(g)
		if err != nil {
			return nil, err
		}
		q := ImpatientMG1{Lambda: m.Lambda(), Service: svc, Step: m.Step}
		res, err := q.Solve(k)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
		prevLoss = res.Loss
	}
	return out, nil
}

// baselineQueue builds the plain M/G/1 for the uncontrolled protocols: no
// element (4), so the window length is not K-capped and uses G*.
func (m ProtocolModel) baselineQueue() (MG1, error) {
	if err := m.validate(); err != nil {
		return MG1{}, err
	}
	svc, err := m.Service(OptimalWindowContent())
	if err != nil {
		return MG1{}, err
	}
	return MG1{Lambda: m.Lambda(), Service: svc, Step: m.Step}, nil
}

// FCFSLoss returns the loss P(W > K) of the uncontrolled FCFS window
// protocol of [Kurose 83].
func (m ProtocolModel) FCFSLoss(k float64) (float64, error) {
	q, err := m.baselineQueue()
	if err != nil {
		return 0, err
	}
	return q.LossFCFS(k)
}

// LCFSLoss returns the loss P(W > K) of the uncontrolled LCFS window
// protocol of [Kurose 83].
func (m ProtocolModel) LCFSLoss(k float64) (float64, error) {
	q, err := m.baselineQueue()
	if err != nil {
		return 0, err
	}
	return q.LossLCFS(k)
}
