package queueing

import (
	"fmt"
	"sync"

	"windowctl/internal/dist"
	"windowctl/internal/sched"
)

// SchedulingMode selects how the windowing-overhead component of the
// service time is modelled.
type SchedulingMode int

// SchedulingMode values.
const (
	// GeometricScheduling uses the paper-faithful [Kurose 83] model: a
	// geometric number of wasted slots with the analytically computed
	// mean.
	GeometricScheduling SchedulingMode = iota
	// ExactScheduling uses the exact slot-count distribution computed by
	// internal/sched — a fidelity upgrade over the 1983 approximation.
	ExactScheduling
)

// ProtocolModel maps a window-protocol operating point, in the paper's
// parameterization, onto the analytic queueing models:
//
//   - τ (Tau): the slot time, the end-to-end propagation delay;
//   - M: the fixed message length in units of τ;
//   - ρ′ (RhoPrime): the normalized offered channel load λ′·M·τ, counting
//     every message, lost or not.
//
// The initial window length follows the element-(2) heuristic: content
// G* ≈ argmin of mean windowing time per scheduled message, capped so the
// window never exceeds the unexamined span (at most K under element (4)).
type ProtocolModel struct {
	// Tau is the slot time; must be positive.
	Tau float64
	// M is the message length in slots; must be positive.
	M float64
	// RhoPrime is the normalized offered load λ′·M·τ; must be positive.
	RhoPrime float64
	// Mode selects the scheduling-time model (default geometric).
	Mode SchedulingMode
	// IncludeEmptyProbes counts empty initial windows as service time too.
	// The default (false) attributes them to server idle time, which is
	// exact in the K → 0 limit and differs by < 0.4·τ per message
	// elsewhere; see internal/sched.ResolutionSlotPMF.
	IncludeEmptyProbes bool
	// Step overrides the convolution grid spacing (0 = automatic).
	Step float64
	// MaxSlots truncates the exact scheduling distribution (0 = 512).
	MaxSlots int
	// TxDist, when non-nil, replaces the paper's fixed transmission time
	// M·τ with a general i.i.d. message-length law (its mean should be
	// M·τ so RhoPrime keeps its meaning).  Theorem 1 needs only
	// identically distributed lengths, so the controlled analysis still
	// applies; the service law becomes windowing overhead + TxDist.
	TxDist dist.Distribution
}

var optimalGOnce struct {
	sync.Once
	g float64
}

// OptimalWindowContent returns the pure number G* minimizing the mean
// windowing time per scheduled message (the element-(2) heuristic),
// computed once and cached.
func OptimalWindowContent() float64 {
	optimalGOnce.Do(func() {
		optimalGOnce.g, _ = sched.OptimalG()
	})
	return optimalGOnce.g
}

func (m ProtocolModel) validate() error {
	if m.Tau <= 0 || m.M <= 0 || m.RhoPrime <= 0 {
		return fmt.Errorf("queueing: ProtocolModel needs positive Tau, M, RhoPrime (got %v, %v, %v)",
			m.Tau, m.M, m.RhoPrime)
	}
	return nil
}

// Lambda returns the total message arrival rate λ′ = ρ′/(M·τ).
func (m ProtocolModel) Lambda() float64 { return m.RhoPrime / (m.M * m.Tau) }

// WindowContent returns the mean window content G actually used at
// constraint K: the optimum G*, reduced when element (4) caps the
// unexamined span (and hence the window) at K.
func (m ProtocolModel) WindowContent(k float64) float64 {
	g := OptimalWindowContent()
	if spanContent := m.Lambda() * k; spanContent < g {
		return spanContent
	}
	return g
}

// Service builds the service-time law for mean window content g > 0:
// windowing overhead plus the transmission time (the fixed M·τ, or TxDist
// when set).
func (m ProtocolModel) Service(g float64) (dist.Distribution, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	tx := m.M * m.Tau
	if g <= 0 {
		if m.TxDist != nil {
			return m.TxDist, nil
		}
		return dist.NewDeterministic(tx), nil
	}
	// Build the scheduling-overhead law (a lattice of wasted slots).
	var overhead dist.Distribution
	switch m.Mode {
	case GeometricScheduling:
		o := sched.Analyze(g)
		meanSlots := o.ResolutionSlots
		if m.IncludeEmptyProbes {
			meanSlots = o.TotalSlots()
		}
		overhead = dist.NewGeometricLattice(meanSlots, m.Tau)
	case ExactScheduling:
		maxSlots := m.MaxSlots
		if maxSlots <= 0 {
			maxSlots = 512
		}
		var pmf []float64
		if m.IncludeEmptyProbes {
			pmf = sched.SlotPMF(g, maxSlots)
		} else {
			pmf = sched.ResolutionSlotPMF(g, maxSlots)
		}
		xs := make([]float64, len(pmf))
		for j := range pmf {
			xs[j] = float64(j) * m.Tau
		}
		emp, err := dist.NewEmpirical(xs, pmf)
		if err != nil {
			return nil, err
		}
		overhead = emp
	default:
		return nil, fmt.Errorf("queueing: unknown scheduling mode %d", m.Mode)
	}
	if m.TxDist == nil {
		return dist.NewShifted(overhead, tx), nil
	}
	atoms, err := dist.Atomize(overhead, 1e-12)
	if err != nil {
		return nil, fmt.Errorf("queueing: composing service with random lengths: %w", err)
	}
	return dist.NewAtomicSum(atoms, m.TxDist)
}

// ControlledLoss evaluates the paper's equation 4.7 for the controlled
// protocol at constraint K: the distributed queue under optimal elements
// (1), (3), (4) is the impatient M/G/1 queue.
func (m ProtocolModel) ControlledLoss(k float64) (Result, error) {
	if err := m.validate(); err != nil {
		return Result{}, err
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("queueing: constraint K=%v must be positive", k)
	}
	svc, err := m.Service(m.WindowContent(k))
	if err != nil {
		return Result{}, err
	}
	q := ImpatientMG1{Lambda: m.Lambda(), Service: svc, Step: m.Step}
	return q.Solve(k)
}

// Capacity returns the maximum sustainable offered load ρ′_max of the
// window protocol for message length M (in slots): the load at which the
// arrival rate equals the service rate including windowing overhead,
//
//	λ_max·(s̄(G*)·τ + M·τ) = 1  ⇒  ρ′_max = M / (s̄(G*) + M),
//
// where s̄(G*) is the mean wasted slots per scheduled message at the
// optimal window content.  This is the protocol's counterpart of the
// classic splitting-algorithm throughput figures: it tends to 1 as
// M → ∞ (overhead amortizes) and shrinks for short messages.  Beyond
// this load the *uncontrolled* protocols diverge; the controlled one
// sheds the excess at the sender instead.
func Capacity(mSlots float64) float64 {
	if mSlots <= 0 {
		panic("queueing: Capacity needs positive message length")
	}
	sbar := sched.Analyze(OptimalWindowContent()).TotalSlots()
	return mSlots / (sbar + mSlots)
}

// ControlledLossCurve evaluates equation 4.7 over an ascending grid of
// constraints using the paper's §4.1 *coupled* iteration: the scheduling
// component of the service time depends on the fraction of messages that
// actually get scheduled, so the loss at the n-th constraint is computed
// with the accepted fraction from the (n−1)-st, starting from the K → 0
// boundary where the scheduling delay is exactly zero.  Concretely, the
// window content at step n is G_n = min(G*, λ′·(1−p_{n−1})·K_n): the
// unexamined span near the horizon carries only messages that have not
// already been discarded.
func (m ProtocolModel) ControlledLossCurve(ks []float64) ([]Result, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	for i, k := range ks {
		if k <= 0 {
			return nil, fmt.Errorf("queueing: constraint %v must be positive", k)
		}
		if i > 0 && ks[i] <= ks[i-1] {
			return nil, fmt.Errorf("queueing: constraints must ascend (%v after %v)", ks[i], ks[i-1])
		}
	}
	// K → 0 boundary: no scheduling, service = M·τ, loss = ρ/(1+ρ).
	rho0 := m.RhoPrime
	prevLoss := rho0 / (1 + rho0)
	gStar := OptimalWindowContent()
	out := make([]Result, 0, len(ks))
	for _, k := range ks {
		g := m.Lambda() * (1 - prevLoss) * k
		if g > gStar {
			g = gStar
		}
		svc, err := m.Service(g)
		if err != nil {
			return nil, err
		}
		q := ImpatientMG1{Lambda: m.Lambda(), Service: svc, Step: m.Step}
		res, err := q.Solve(k)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
		prevLoss = res.Loss
	}
	return out, nil
}

// baselineQueue builds the plain M/G/1 for the uncontrolled protocols: no
// element (4), so the window length is not K-capped and uses G*.
func (m ProtocolModel) baselineQueue() (MG1, error) {
	if err := m.validate(); err != nil {
		return MG1{}, err
	}
	svc, err := m.Service(OptimalWindowContent())
	if err != nil {
		return MG1{}, err
	}
	return MG1{Lambda: m.Lambda(), Service: svc, Step: m.Step}, nil
}

// FCFSLoss returns the loss P(W > K) of the uncontrolled FCFS window
// protocol of [Kurose 83].
func (m ProtocolModel) FCFSLoss(k float64) (float64, error) {
	q, err := m.baselineQueue()
	if err != nil {
		return 0, err
	}
	return q.LossFCFS(k)
}

// LCFSLoss returns the loss P(W > K) of the uncontrolled LCFS window
// protocol of [Kurose 83].
func (m ProtocolModel) LCFSLoss(k float64) (float64, error) {
	q, err := m.baselineQueue()
	if err != nil {
		return 0, err
	}
	return q.LossLCFS(k)
}
