package queueing

import (
	"math"
	"testing"

	"windowctl/internal/dist"
	"windowctl/internal/rngutil"
)

// simulateImpatientLoss estimates the loss of the impatient M/G/1 queue by
// direct virtual-work (Lindley) recursion: an arrival joins iff the
// unfinished work it finds is below k.
func simulateImpatientLoss(lambda float64, service dist.Distribution, k float64, n int, seed uint64) float64 {
	r := rngutil.New(seed)
	v := 0.0 // unfinished work just before the next arrival
	lost := 0
	for i := 0; i < n; i++ {
		gap := r.Exp(lambda)
		v = math.Max(v-gap, 0)
		if v > k {
			lost++
			continue
		}
		v += service.Sample(r)
	}
	return float64(lost) / float64(n)
}

// simulateFCFSWaitTail estimates P(W > k) in a plain M/G/1 FCFS queue.
func simulateFCFSWaitTail(lambda float64, service dist.Distribution, k float64, n int, seed uint64) float64 {
	r := rngutil.New(seed)
	v := 0.0
	late := 0
	for i := 0; i < n; i++ {
		gap := r.Exp(lambda)
		v = math.Max(v-gap, 0)
		if v > k {
			late++
		}
		v += service.Sample(r)
	}
	return float64(late) / float64(n)
}

// simulateLCFSWaitTail estimates P(W > k) in a non-preemptive LCFS M/G/1
// queue by event-driven simulation with a pushdown stack.
func simulateLCFSWaitTail(lambda float64, service dist.Distribution, k float64, n int, seed uint64) float64 {
	r := rngutil.New(seed)
	type cust struct{ arrival float64 }
	var stack []cust
	now := 0.0
	nextArrival := r.Exp(lambda)
	serverFreeAt := 0.0
	late, served := 0, 0
	for served < n {
		if nextArrival < serverFreeAt || len(stack) == 0 {
			// Next event: arrival.
			now = nextArrival
			if now >= serverFreeAt && len(stack) == 0 {
				// Server idle: enter service immediately (wait 0).
				if 0 > k {
					late++
				}
				served++
				serverFreeAt = now + service.Sample(r)
			} else {
				stack = append(stack, cust{arrival: now})
			}
			nextArrival = now + r.Exp(lambda)
			continue
		}
		// Next event: service completion; pop the youngest waiter.
		now = serverFreeAt
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if now-c.arrival > k {
			late++
		}
		served++
		serverFreeAt = now + service.Sample(r)
	}
	return float64(late) / float64(served)
}

func TestImpatientLimitKZero(t *testing.T) {
	// K → 0: p(loss) → ρ/(1+ρ) (the paper's stated check).
	svc := dist.NewDeterministic(1)
	q := ImpatientMG1{Lambda: 0.6, Service: svc}
	res, err := q.Solve(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.6 / 1.6
	if math.Abs(res.Loss-want) > 1e-3 {
		t.Fatalf("K→0 loss %v, want %v", res.Loss, want)
	}
	if math.Abs(res.ServerIdle-1/1.6) > 1e-3 {
		t.Fatalf("K→0 idle %v, want %v", res.ServerIdle, 1/1.6)
	}
}

func TestImpatientLimitKLarge(t *testing.T) {
	// K → ∞ with ρ < 1: p(loss) → 0 and P(0) → 1−ρ.
	svc := dist.NewExponential(1)
	q := ImpatientMG1{Lambda: 0.5, Service: svc}
	res, err := q.Solve(40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Loss > 1e-6 {
		t.Fatalf("large-K loss %v", res.Loss)
	}
	if math.Abs(res.ServerIdle-0.5) > 1e-4 {
		t.Fatalf("large-K idle %v, want 0.5", res.ServerIdle)
	}
}

func TestImpatientExponentialClosedForm(t *testing.T) {
	// For exponential service the residual is again exponential and
	// z(K,ρ) = Σ ρ^i · P(Erlang(i, μ) <= K) exactly.
	lambda, mu, k := 0.7, 1.0, 3.0
	q := ImpatientMG1{Lambda: lambda, Service: dist.NewExponential(mu)}
	res, err := q.Solve(k)
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	z := 1.0
	pow := rho
	for i := 1; i < 200; i++ {
		z += pow * dist.NewErlang(i, mu).CDF(k)
		pow *= rho
	}
	wantLoss := 1 - z/(1+rho*z)
	if math.Abs(res.Z-z) > 2e-3*z {
		t.Fatalf("z = %v, closed form %v", res.Z, z)
	}
	if math.Abs(res.Loss-wantLoss) > 1e-4 {
		t.Fatalf("loss = %v, closed form %v", res.Loss, wantLoss)
	}
}

func TestImpatientAgainstSimulation(t *testing.T) {
	cases := []struct {
		name    string
		lambda  float64
		service dist.Distribution
		k       float64
	}{
		{"MM1 moderate", 0.8, dist.NewExponential(1), 2},
		{"MM1 overload", 1.5, dist.NewExponential(1), 2},
		{"MD1", 0.7, dist.NewDeterministic(1), 1.5},
		{"geom+det service", 0.03, dist.NewShifted(dist.NewGeometricLattice(1.5, 1), 25), 60},
	}
	for _, c := range cases {
		q := ImpatientMG1{Lambda: c.lambda, Service: c.service}
		res, err := q.Solve(c.k)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		sim := simulateImpatientLoss(c.lambda, c.service, c.k, 400000, 99)
		if math.Abs(res.Loss-sim) > 0.01 {
			t.Fatalf("%s: analytic %v, simulated %v", c.name, res.Loss, sim)
		}
	}
}

func TestImpatientLossMonotoneInK(t *testing.T) {
	q := ImpatientMG1{Lambda: 0.9, Service: dist.NewExponential(1)}
	prev := 1.1
	for _, k := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		res, err := q.Solve(k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Loss > prev+1e-9 {
			t.Fatalf("loss not monotone at K=%v: %v > %v", k, res.Loss, prev)
		}
		prev = res.Loss
	}
}

func TestImpatientValidation(t *testing.T) {
	svc := dist.NewExponential(1)
	cases := []struct {
		q ImpatientMG1
		k float64
	}{
		{ImpatientMG1{Lambda: 0, Service: svc}, 1},
		{ImpatientMG1{Lambda: 1}, 1},
		{ImpatientMG1{Lambda: 1, Service: svc}, 0},
		{ImpatientMG1{Lambda: 1, Service: svc}, math.Inf(1)},
		{ImpatientMG1{Lambda: 1, Service: svc}, math.NaN()},
	}
	for i, c := range cases {
		if _, err := c.q.Solve(c.k); err == nil {
			t.Errorf("case %d: invalid input accepted", i)
		}
	}
}

func TestAcceptedWaitCDF(t *testing.T) {
	q := ImpatientMG1{Lambda: 0.8, Service: dist.NewExponential(1)}
	k := 2.0
	cdf, err := q.AcceptedWaitCDF(k, []float64{0, 0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	// CDF must be monotone and reach 1 at K.
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1]-1e-9 {
			t.Fatalf("accepted-wait CDF not monotone: %v", cdf)
		}
	}
	if math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
		t.Fatalf("CDF at K = %v, want 1", cdf[len(cdf)-1])
	}
	if _, err := q.AcceptedWaitCDF(k, []float64{3}); err == nil {
		t.Fatal("point beyond K accepted")
	}
}

// --- Plain M/G/1 baselines ---------------------------------------------------

func TestMM1WaitClosedForm(t *testing.T) {
	// M/M/1: P(W <= w) = 1 − ρ·e^{−μ(1−ρ)w}.
	lambda, mu := 0.6, 1.0
	q := MG1{Lambda: lambda, Service: dist.NewExponential(mu)}
	ws := []float64{0, 0.5, 1, 2, 5}
	got, err := q.WaitCDF(ws)
	if err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	for i, w := range ws {
		want := 1 - rho*math.Exp(-mu*(1-rho)*w)
		if math.Abs(got[i]-want) > 2e-3 {
			t.Fatalf("W CDF(%v) = %v, closed form %v", w, got[i], want)
		}
	}
}

func TestPKMeanWait(t *testing.T) {
	// M/D/1: E[W] = ρ·x/(2(1−ρ)).
	q := MG1{Lambda: 0.5, Service: dist.NewDeterministic(1)}
	mw, err := q.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * 1 / (2 * 0.5)
	if math.Abs(mw-want) > 1e-12 {
		t.Fatalf("PK mean %v, want %v", mw, want)
	}
}

func TestFCFSLossAgainstSimulation(t *testing.T) {
	lambda := 0.75
	svc := dist.NewExponential(1)
	q := MG1{Lambda: lambda, Service: svc}
	for _, k := range []float64{1, 3, 6} {
		loss, err := q.LossFCFS(k)
		if err != nil {
			t.Fatal(err)
		}
		sim := simulateFCFSWaitTail(lambda, svc, k, 400000, 7)
		if math.Abs(loss-sim) > 0.01 {
			t.Fatalf("K=%v: analytic %v, simulated %v", k, loss, sim)
		}
	}
}

func TestMG1UnstableRejected(t *testing.T) {
	q := MG1{Lambda: 1.2, Service: dist.NewExponential(1)}
	if _, err := q.WaitCDF([]float64{1}); err == nil {
		t.Fatal("unstable queue accepted")
	}
	if _, err := q.LossFCFS(1); err == nil {
		t.Fatal("unstable queue accepted by LossFCFS")
	}
	if _, err := q.LossFCFS(-1); err == nil {
		t.Fatal("negative K accepted")
	}
}

// --- LCFS --------------------------------------------------------------------

func TestLCFSAtZeroAndMonotone(t *testing.T) {
	q := MG1{Lambda: 0.6, Service: dist.NewExponential(1)}
	c0, err := q.WaitCDFLCFS(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c0-0.4) > 1e-9 {
		t.Fatalf("P(W=0) = %v, want 1−ρ", c0)
	}
	prev := c0
	for _, w := range []float64{0.5, 1, 2, 4, 8, 16} {
		c, err := q.WaitCDFLCFS(w)
		if err != nil {
			t.Fatal(err)
		}
		if c < prev-1e-6 {
			t.Fatalf("LCFS CDF not monotone at %v: %v < %v", w, c, prev)
		}
		prev = c
	}
	if prev < 0.97 {
		t.Fatalf("LCFS CDF at 16 only %v", prev)
	}
}

func TestLCFSMeanEqualsFCFSMean(t *testing.T) {
	// Non-preemptive LCFS has the same mean wait as FCFS (both PK).
	q := MG1{Lambda: 0.6, Service: dist.NewExponential(1)}
	pk, err := q.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	lc, err := q.MeanWaitLCFS(60, 600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lc-pk) > 0.02*pk {
		t.Fatalf("LCFS mean %v, PK mean %v", lc, pk)
	}
}

func TestLCFSAgainstSimulation(t *testing.T) {
	lambda := 0.7
	svc := dist.NewExponential(1)
	q := MG1{Lambda: lambda, Service: svc}
	for _, k := range []float64{1, 4, 10} {
		loss, err := q.LossLCFS(k)
		if err != nil {
			t.Fatal(err)
		}
		sim := simulateLCFSWaitTail(lambda, svc, k, 300000, 11)
		if math.Abs(loss-sim) > 0.012 {
			t.Fatalf("K=%v: analytic %v, simulated %v", k, loss, sim)
		}
	}
}

func TestLCFSFCFSCrossover(t *testing.T) {
	// Same mean, larger variance: at tight constraints LCFS wins (a fresh
	// arrival may be served at once), but its busy-period tail eventually
	// makes it lose — the crossover structure of the [Kurose 83] curves.
	// At ρ = 0.8 with exponential service the crossover lies in (8, 15).
	q := MG1{Lambda: 0.8, Service: dist.NewExponential(1)}
	for _, k := range []float64{0.5, 2, 8} {
		f, err := q.LossFCFS(k)
		if err != nil {
			t.Fatal(err)
		}
		l, err := q.LossLCFS(k)
		if err != nil {
			t.Fatal(err)
		}
		if l >= f {
			t.Fatalf("K=%v (tight): LCFS %v should beat FCFS %v", k, l, f)
		}
	}
	for _, k := range []float64{15.0, 25.0, 40.0} {
		f, err := q.LossFCFS(k)
		if err != nil {
			t.Fatal(err)
		}
		l, err := q.LossLCFS(k)
		if err != nil {
			t.Fatal(err)
		}
		if l <= f {
			t.Fatalf("K=%v (loose): LCFS tail %v not heavier than FCFS %v", k, l, f)
		}
	}
}

func TestImpatientBeatsBaselines(t *testing.T) {
	// The controlled queue (sender discard) must lose no more than the
	// uncontrolled FCFS queue at every K — the headline comparison of
	// figure 7.
	lambda := 0.85
	svc := dist.NewExponential(1)
	imp := ImpatientMG1{Lambda: lambda, Service: svc}
	base := MG1{Lambda: lambda, Service: svc}
	for _, k := range []float64{0.5, 1, 2, 4, 8} {
		ri, err := imp.Solve(k)
		if err != nil {
			t.Fatal(err)
		}
		lf, err := base.LossFCFS(k)
		if err != nil {
			t.Fatal(err)
		}
		if ri.Loss > lf+1e-6 {
			t.Fatalf("K=%v: controlled loss %v exceeds FCFS %v", k, ri.Loss, lf)
		}
	}
}

func BenchmarkImpatientSolve(b *testing.B) {
	q := ImpatientMG1{Lambda: 0.03, Service: dist.NewShifted(dist.NewGeometricLattice(1.2, 1), 25)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Solve(75); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLCFSWaitCDF(b *testing.B) {
	q := MG1{Lambda: 0.7, Service: dist.NewExponential(1)}
	for i := 0; i < b.N; i++ {
		if _, err := q.WaitCDFLCFS(3); err != nil {
			b.Fatal(err)
		}
	}
}
