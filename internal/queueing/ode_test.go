package queueing

import (
	"math"
	"testing"

	"windowctl/internal/dist"
)

// TestODEMatchesSeriesSolution: the two derivation paths of §4.1 — the
// Beneš convolution series (eq. 4.4/4.7) and direct integration of the
// integro-differential equation (eq. 4.2a) — must produce the same loss.
func TestODEMatchesSeriesSolution(t *testing.T) {
	cases := []struct {
		name    string
		lambda  float64
		service dist.Distribution
		k       float64
	}{
		{"MM1", 0.8, dist.NewExponential(1), 2.5},
		{"MM1 overload", 1.4, dist.NewExponential(1), 2},
		{"MD1", 0.7, dist.NewDeterministic(1), 2},
		{"Erlang service", 0.5, dist.NewErlang(3, 3), 3},
		{"protocol service", 0.028, dist.NewShifted(dist.NewGeometricLattice(0.8, 1), 25), 60},
	}
	for _, c := range cases {
		series, err := ImpatientMG1{Lambda: c.lambda, Service: c.service}.Solve(c.k)
		if err != nil {
			t.Fatalf("%s series: %v", c.name, err)
		}
		ode, err := UnfinishedWorkODE{Lambda: c.lambda, Service: c.service}.Solve(c.k)
		if err != nil {
			t.Fatalf("%s ode: %v", c.name, err)
		}
		if math.Abs(series.Loss-ode.Loss) > 2e-3 {
			t.Errorf("%s: series loss %v vs ODE loss %v", c.name, series.Loss, ode.Loss)
		}
		if math.Abs(series.ServerIdle-ode.ServerIdle) > 2e-3 {
			t.Errorf("%s: series P0 %v vs ODE P0 %v", c.name, series.ServerIdle, ode.ServerIdle)
		}
	}
}

// TestODEWorkCDFProperties: the solved distribution must be a valid
// sub-CDF: F(0) = P(0), non-decreasing, F(K) = p(accept) <= 1.
func TestODEWorkCDFProperties(t *testing.T) {
	ode, err := UnfinishedWorkODE{Lambda: 0.9, Service: dist.NewExponential(1)}.Solve(3)
	if err != nil {
		t.Fatal(err)
	}
	f := ode.WorkCDF
	if math.Abs(f.Y[0]-ode.ServerIdle) > 1e-12 {
		t.Fatalf("F(0) = %v, want P(0) = %v", f.Y[0], ode.ServerIdle)
	}
	prev := f.Y[0]
	for i := 1; i < f.Len(); i++ {
		if f.Y[i] < prev-1e-9 {
			t.Fatalf("work CDF decreasing at %d", i)
		}
		prev = f.Y[i]
	}
	accept := f.Y[f.Len()-1]
	if math.Abs((1-accept)-ode.Loss) > 1e-9 {
		t.Fatalf("F(K) = %v inconsistent with loss %v", accept, ode.Loss)
	}
}

// TestODEMatchesMM1ClosedFormDensity: for exponential service the
// unfinished-work density below K is P0·λ·e^{(λ−μ)w}; check the CDF shape
// against its integral.
func TestODEMatchesMM1ClosedFormDensity(t *testing.T) {
	lambda, mu, k := 0.6, 1.0, 2.0
	ode, err := UnfinishedWorkODE{Lambda: lambda, Service: dist.NewExponential(mu)}.Solve(k)
	if err != nil {
		t.Fatal(err)
	}
	p0 := ode.ServerIdle
	for _, w := range []float64{0.5, 1, 1.5, 2} {
		// F(w) = P0·(1 + λ/(λ−μ)·(e^{(λ−μ)w} − 1)) for λ ≠ μ.
		want := p0 * (1 + lambda/(lambda-mu)*(math.Exp((lambda-mu)*w)-1))
		got := ode.WorkCDF.At(w)
		if math.Abs(got-want) > 2e-3 {
			t.Fatalf("F(%v) = %v, closed form %v", w, got, want)
		}
	}
}

func TestODEValidation(t *testing.T) {
	svc := dist.NewExponential(1)
	cases := []UnfinishedWorkODE{
		{Lambda: 0, Service: svc},
		{Lambda: 1},
	}
	for i, c := range cases {
		if _, err := c.Solve(1); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := (UnfinishedWorkODE{Lambda: 1, Service: svc}).Solve(0); err == nil {
		t.Error("K=0 accepted")
	}
}

func BenchmarkODESolve(b *testing.B) {
	o := UnfinishedWorkODE{Lambda: 0.028, Service: dist.NewShifted(dist.NewGeometricLattice(0.8, 1), 25)}
	for i := 0; i < b.N; i++ {
		if _, err := o.Solve(60); err != nil {
			b.Fatal(err)
		}
	}
}
