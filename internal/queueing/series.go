package queueing

import (
	"fmt"
	"math"

	"windowctl/internal/numerics"
)

// This file holds the shared convolution-series engine behind the batched
// multi-K solvers.  Both analytic waiting-time laws of the harness are
// truncated power series over i-fold self-convolutions of the residual
// service density β:
//
//	eq 4.7 (controlled):  z(K,ρ)   = Σ ρ^i ∫₀ᴷ β⁽ⁱ⁾       (masses clamped)
//	Beneš  (FCFS):        P(W≤K)/(1−ρ) = Σ ρ^i ∫₀ᴷ β⁽ⁱ⁾
//
// The β⁽ⁱ⁾ are by far the dominant cost (one FFT convolution per term), and
// they do not depend on K at all — only the prefix integrals do.  The
// engine therefore runs the convolution series once per (service law, grid)
// pair and lets any number of "requests" — different constraints K, and
// even different series flavours — accumulate their prefix sums from the
// same β⁽ⁱ⁾ stream.  A figure-7 panel that used to pay one series per
// curve point pays one series per panel.

// seriesReq is one consumer of a shared ρ^i·β⁽ⁱ⁾ convolution series: a
// prefix-integration point K with the stopping rule of the solver it
// belongs to.  Stopping is evaluated per request, exactly as the per-K
// solvers do, so batched results match per-K results term for term.
type seriesReq struct {
	// k is the prefix-integration point ∫₀ᵏ β⁽ⁱ⁾.
	k float64
	// clamp enforces non-increasing masses (the eq 4.7 z-series guards
	// against trapezoid overshoot on lattice service laws this way).
	clamp bool
	// tol freezes the request once its term drops below this value.
	tol float64
	// rhoGuard additionally requires mass < 1/(2ρ) before freezing when
	// ρ ≥ 1 (the impatient queue is stable beyond ρ = 1; the plain Beneš
	// series is only ever run with ρ < 1 and does not need the guard).
	rhoGuard bool

	// sum accumulates 1 + Σ ρ^i·mass_i; terms counts the summed terms
	// including the i = 0 atom.
	sum      float64
	prevMass float64
	terms    int
	done     bool
}

// runSeries advances the shared convolution series until every request has
// frozen, convolving β with itself once per term through a cached FFT plan.
// It errors if any request is still accumulating after maxTerms terms.
func runSeries(rho float64, beta *numerics.Grid, maxTerms int, reqs []*seriesReq) error {
	if maxTerms <= 0 {
		maxTerms = 4096
	}
	remaining := 0
	for _, r := range reqs {
		r.sum = 1 // i = 0 term: unit atom at 0
		r.prevMass = 1
		r.terms = 1
		if !r.done {
			remaining++
		}
	}
	if remaining == 0 {
		return nil
	}
	conv := beta.Clone()
	plan := numerics.NewConvolver(beta)
	pow := rho
	for i := 1; i <= maxTerms; i++ {
		for _, r := range reqs {
			if r.done {
				continue
			}
			mass := conv.IntegralTo(r.k)
			// Trapezoid quadrature over service laws with atoms (the
			// geometric-lattice scheduling component) can overshoot the
			// true mass by O(step); the true masses are provably
			// non-increasing, so clamp rather than propagate the wiggle.
			if r.clamp && mass > r.prevMass {
				mass = r.prevMass
			}
			r.prevMass = mass
			term := pow * mass
			r.sum += term
			r.terms = i + 1
			// Tail bound: a_{i+j} <= a_i · a₁^j is valid but a₁ can
			// exceed 1/ρ early on; stop when the current term is tiny
			// and (for the guarded series) provably decaying.
			if term < r.tol && (!r.rhoGuard || rho < 1 || mass < 1/(2*rho)) {
				r.done = true
				remaining--
			}
		}
		if remaining == 0 {
			return nil
		}
		if i == maxTerms {
			return fmt.Errorf("queueing: convolution series did not converge in %d terms", maxTerms)
		}
		plan.ConvolveInto(conv, conv)
		pow *= rho
	}
	return nil
}

// seriesBatch partitions constraints so that every member of a partition
// runs on the identical quadrature grid its per-K solver would have chosen,
// keeping batched results interchangeable with per-K results.  With an
// explicit step every constraint shares one partition; with the automatic
// spacing min(K, E[X])/512, constraints at or above the mean service time
// share the spacing E[X]/512 (one partition — the common case on a figure-7
// panel) while shorter constraints get their own finer grid.
type seriesBatch struct {
	step float64
	idx  []int // positions into the caller's constraint slice
}

// partitionConstraints groups the constraints at positions idx of ks (nil
// meaning all of them) into seriesBatch runs; step <= 0 selects the
// automatic per-K spacing rule.
func partitionConstraints(ks []float64, idx []int, step, xbar float64) []seriesBatch {
	if idx == nil {
		idx = make([]int, len(ks))
		for i := range ks {
			idx[i] = i
		}
	}
	if step > 0 {
		return []seriesBatch{{step: step, idx: idx}}
	}
	var batches []seriesBatch
	byStep := map[float64]int{} // default step -> position in batches
	for _, i := range idx {
		s := math.Min(ks[i], xbar) / 512
		b, ok := byStep[s]
		if !ok {
			b = len(batches)
			byStep[s] = b
			batches = append(batches, seriesBatch{step: s})
		}
		batches[b].idx = append(batches[b].idx, i)
	}
	return batches
}
