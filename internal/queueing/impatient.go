package queueing

import (
	"fmt"
	"math"

	"windowctl/internal/dist"
	"windowctl/internal/numerics"
)

// ImpatientMG1 is the M/G/1 queue with impatient customers of §4.1
// (figure 5b): Poisson arrivals at rate Lambda join the FCFS queue if and
// only if the unfinished work they find is below the constraint; otherwise
// they are lost.  Service times follow the law Service.
type ImpatientMG1 struct {
	// Lambda is the arrival rate of all messages, lost or not.
	Lambda float64
	// Service is the service-time law (scheduling + transmission).
	Service dist.Distribution
	// Step is the grid spacing for the numerical convolutions; if zero, a
	// spacing of min(K, mean service)/512 is chosen.
	Step float64
	// MaxTerms bounds the convolution series; 0 means 4096.
	MaxTerms int
}

// Result carries the solved queue quantities.
type Result struct {
	// Loss is p(loss) of equation 4.7: the probability an arriving
	// message finds unfinished work above K and is lost.
	Loss float64
	// ServerIdle is P(0), the probability the server is idle.
	ServerIdle float64
	// Rho is the offered load λ·E[service].
	Rho float64
	// Z is the truncated-series value z(K, ρ) of equation 4.7.
	Z float64
	// Terms is the number of series terms summed.
	Terms int
}

// Solve computes the loss probability for constraint K > 0 using the
// paper's equation 4.7:
//
//	p(loss) = 1 − z/(1 + ρ·z),   z(K,ρ) = Σ_{i≥0} ρ^i ∫₀ᴷ β⁽ⁱ⁾(w) dw,
//
// where β is the residual-service density and β⁽ⁱ⁾ its i-fold convolution
// (β⁽⁰⁾ is the unit atom at 0, contributing 1).  Unlike the plain M/G/1,
// the impatient queue is stable for any ρ, and the series converges for
// ρ ≥ 1 too because ∫₀ᴷβ⁽ⁱ⁾ eventually decays super-geometrically.
func (q ImpatientMG1) Solve(k float64) (Result, error) {
	res, err := q.SolveGrid([]float64{k})
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}

// SolveGrid computes equation 4.7 at every constraint of ks in one pass:
// the i-fold convolutions β⁽ⁱ⁾ do not depend on K, so one shared series
// feeds the prefix integrals ∫₀ᵏʲ β⁽ⁱ⁾ of every constraint, and a grid of
// constraints costs one convolution series instead of len(ks).  Results
// match per-K Solve to rounding error: constraints are partitioned onto
// exactly the quadrature grids Solve would have chosen (with the automatic
// spacing, every constraint at or above the mean service time shares one
// grid; shorter constraints keep their own finer grid), and each
// constraint stops accumulating by its own per-K stopping rule.
func (q ImpatientMG1) SolveGrid(ks []float64) ([]Result, error) {
	if len(ks) == 0 {
		return nil, nil
	}
	for _, k := range ks {
		if err := q.validate(k); err != nil {
			return nil, err
		}
	}
	xbar := q.Service.Mean()
	rho := q.Lambda * xbar
	out := make([]Result, len(ks))
	for _, batch := range partitionConstraints(ks, nil, q.Step, xbar) {
		kMax := 0.0
		for _, i := range batch.idx {
			if ks[i] > kMax {
				kMax = ks[i]
			}
		}
		beta := q.residualGridStep(kMax, batch.step)
		reqs := make([]*seriesReq, len(batch.idx))
		for n, i := range batch.idx {
			reqs[n] = &seriesReq{k: ks[i], clamp: true, tol: 1e-10, rhoGuard: true}
		}
		if err := runSeries(rho, beta, q.MaxTerms, reqs); err != nil {
			return nil, err
		}
		for n, i := range batch.idx {
			z := reqs[n].sum
			// p(loss) = 1 − z/(1+ρz); equivalently the paper's
			// 1 − ρ⁻¹ + 1/(ρ+ρ²z).
			loss := 1 - z/(1+rho*z)
			p0 := 1 / (1 + rho*z) // ρ·p(accept) = 1 − P(0), p(accept) = P(0)·z
			if loss < 0 {
				loss = 0
			}
			if loss > 1 {
				loss = 1
			}
			out[i] = Result{Loss: loss, ServerIdle: p0, Rho: rho, Z: z, Terms: reqs[n].terms}
		}
	}
	return out, nil
}

func (q ImpatientMG1) validate(k float64) error {
	if q.Lambda <= 0 {
		return fmt.Errorf("queueing: arrival rate %v must be positive", q.Lambda)
	}
	if q.Service == nil {
		return fmt.Errorf("queueing: missing service distribution")
	}
	if q.Service.Mean() <= 0 {
		return fmt.Errorf("queueing: service mean must be positive")
	}
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		return fmt.Errorf("queueing: constraint K=%v must be positive and finite", k)
	}
	return nil
}

// residualGrid tabulates the residual-service density
// β(w) = (1 − B(w))/E[X] on [0, k].
func (q ImpatientMG1) residualGrid(k float64) *numerics.Grid {
	step := q.Step
	if step <= 0 {
		step = math.Min(k, q.Service.Mean()) / 512
	}
	return q.residualGridStep(k, step)
}

// residualGridStep tabulates β on [0, k] at an explicit spacing.
func (q ImpatientMG1) residualGridStep(k, step float64) *numerics.Grid {
	n := int(k/step) + 2
	xbar := q.Service.Mean()
	return numerics.Tabulate(func(w float64) float64 {
		return (1 - q.Service.CDF(w)) / xbar
	}, step, n)
}

// AcceptedWaitCDF returns the waiting-time distribution of *accepted*
// messages evaluated at w <= K:
//
//	P(W <= w | accepted) = F(w)/F(K),  F(w) = P(0)·Σ ρ^i ∫₀ʷ β⁽ⁱ⁾
//
// (equation 4.4 normalized by the acceptance probability).
func (q ImpatientMG1) AcceptedWaitCDF(k float64, ws []float64) ([]float64, error) {
	if err := q.validate(k); err != nil {
		return nil, err
	}
	for _, w := range ws {
		if w < 0 || w > k {
			return nil, fmt.Errorf("queueing: evaluation point %v outside [0, K]", w)
		}
	}
	rho := q.Lambda * q.Service.Mean()
	beta := q.residualGrid(k)
	maxTerms := q.MaxTerms
	if maxTerms <= 0 {
		maxTerms = 4096
	}
	sums := make([]float64, len(ws)) // Σ ρ^i ∫₀^{w_j} β⁽ⁱ⁾
	for j := range sums {
		sums[j] = 1 // i = 0 atom
	}
	zK := 1.0
	conv := beta.Clone()
	plan := numerics.NewConvolver(beta)
	pow := rho
	for i := 1; i <= maxTerms; i++ {
		mass := conv.IntegralTo(k)
		term := pow * mass
		zK += term
		for j, w := range ws {
			sums[j] += pow * conv.IntegralTo(w)
		}
		if term < 1e-10 && (rho < 1 || mass < 1/(2*rho)) {
			break
		}
		plan.ConvolveInto(conv, conv)
		pow *= rho
	}
	out := make([]float64, len(ws))
	for j := range ws {
		out[j] = sums[j] / zK
		if out[j] > 1 {
			out[j] = 1
		}
	}
	return out, nil
}
