// Package queueing implements the analytic performance models of §4 of the
// paper and of the [Kurose 83] baselines it compares against:
//
//   - An M/G/1 queue with impatient customers (customers balk when the
//     unfinished work exceeds the constraint K), whose loss probability is
//     the paper's equation 4.7.  This models the *controlled* window
//     protocol: policy elements (1), (3) and (4) make the distributed
//     queue FCFS with sender-side discard.
//   - The Beneš / Takács virtual-waiting-time distribution of the plain
//     M/G/1 queue, giving the loss (fraction of messages later than K) of
//     the uncontrolled FCFS window protocol.
//   - The waiting-time law of the non-preemptive LCFS M/G/1 queue via its
//     Laplace–Stieltjes transform and numerical inversion, giving the loss
//     of the uncontrolled LCFS window protocol.
//
// All three share the message service-time law: windowing (scheduling)
// overhead plus transmission time, built by internal/sched.
package queueing

import (
	"fmt"
	"math"

	"windowctl/internal/dist"
	"windowctl/internal/numerics"
)

// ImpatientMG1 is the M/G/1 queue with impatient customers of §4.1
// (figure 5b): Poisson arrivals at rate Lambda join the FCFS queue if and
// only if the unfinished work they find is below the constraint; otherwise
// they are lost.  Service times follow the law Service.
type ImpatientMG1 struct {
	// Lambda is the arrival rate of all messages, lost or not.
	Lambda float64
	// Service is the service-time law (scheduling + transmission).
	Service dist.Distribution
	// Step is the grid spacing for the numerical convolutions; if zero, a
	// spacing of min(K, mean service)/512 is chosen.
	Step float64
	// MaxTerms bounds the convolution series; 0 means 4096.
	MaxTerms int
}

// Result carries the solved queue quantities.
type Result struct {
	// Loss is p(loss) of equation 4.7: the probability an arriving
	// message finds unfinished work above K and is lost.
	Loss float64
	// ServerIdle is P(0), the probability the server is idle.
	ServerIdle float64
	// Rho is the offered load λ·E[service].
	Rho float64
	// Z is the truncated-series value z(K, ρ) of equation 4.7.
	Z float64
	// Terms is the number of series terms summed.
	Terms int
}

// Solve computes the loss probability for constraint K > 0 using the
// paper's equation 4.7:
//
//	p(loss) = 1 − z/(1 + ρ·z),   z(K,ρ) = Σ_{i≥0} ρ^i ∫₀ᴷ β⁽ⁱ⁾(w) dw,
//
// where β is the residual-service density and β⁽ⁱ⁾ its i-fold convolution
// (β⁽⁰⁾ is the unit atom at 0, contributing 1).  Unlike the plain M/G/1,
// the impatient queue is stable for any ρ, and the series converges for
// ρ ≥ 1 too because ∫₀ᴷβ⁽ⁱ⁾ eventually decays super-geometrically.
func (q ImpatientMG1) Solve(k float64) (Result, error) {
	if err := q.validate(k); err != nil {
		return Result{}, err
	}
	xbar := q.Service.Mean()
	rho := q.Lambda * xbar
	z, terms, err := q.seriesZ(k)
	if err != nil {
		return Result{}, err
	}
	// p(loss) = 1 − z/(1+ρz); equivalently the paper's 1 − ρ⁻¹ + 1/(ρ+ρ²z).
	loss := 1 - z/(1+rho*z)
	p0 := 1 / (1 + rho*z) // from ρ·p(accept) = 1 − P(0) and p(accept) = P(0)·z
	if loss < 0 {
		loss = 0
	}
	if loss > 1 {
		loss = 1
	}
	return Result{Loss: loss, ServerIdle: p0, Rho: rho, Z: z, Terms: terms}, nil
}

func (q ImpatientMG1) validate(k float64) error {
	if q.Lambda <= 0 {
		return fmt.Errorf("queueing: arrival rate %v must be positive", q.Lambda)
	}
	if q.Service == nil {
		return fmt.Errorf("queueing: missing service distribution")
	}
	if q.Service.Mean() <= 0 {
		return fmt.Errorf("queueing: service mean must be positive")
	}
	if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		return fmt.Errorf("queueing: constraint K=%v must be positive and finite", k)
	}
	return nil
}

// residualGrid tabulates the residual-service density
// β(w) = (1 − B(w))/E[X] on [0, k].
func (q ImpatientMG1) residualGrid(k float64) *numerics.Grid {
	step := q.Step
	if step <= 0 {
		step = math.Min(k, q.Service.Mean()) / 512
	}
	n := int(k/step) + 2
	xbar := q.Service.Mean()
	return numerics.Tabulate(func(w float64) float64 {
		return (1 - q.Service.CDF(w)) / xbar
	}, step, n)
}

// seriesZ evaluates z(K, ρ) = Σ ρ^i ∫₀ᴷ β⁽ⁱ⁾.
func (q ImpatientMG1) seriesZ(k float64) (float64, int, error) {
	maxTerms := q.MaxTerms
	if maxTerms <= 0 {
		maxTerms = 4096
	}
	rho := q.Lambda * q.Service.Mean()
	beta := q.residualGrid(k)
	const tol = 1e-10

	sum := 1.0 // i = 0 term: unit atom at 0
	conv := beta.Clone()
	pow := rho
	terms := 1
	// a₁ = ∫₀ᴷ β; the masses a_i are non-increasing (each convolution with
	// a sub-probability density on [0,K] cannot increase truncated mass),
	// so once ρ·a_i < 1 the tail is geometrically dominated.
	prevMass := 1.0
	for i := 1; i <= maxTerms; i++ {
		mass := conv.IntegralTo(k)
		// Trapezoid quadrature over service laws with atoms (the
		// geometric-lattice scheduling component) can overshoot the true
		// mass by O(step); the true masses are provably non-increasing,
		// so clamp rather than propagate the quadrature wiggle.
		if mass > prevMass {
			mass = prevMass
		}
		prevMass = mass
		term := pow * mass
		sum += term
		terms = i + 1
		// Tail bound: a_{i+j} <= a_i · a₁^j is valid but a₁ can exceed
		// 1/ρ early on; stop when the current term is tiny and decaying.
		if term < tol && (rho < 1 || mass < 1/(2*rho)) {
			break
		}
		if i == maxTerms {
			return 0, 0, fmt.Errorf("queueing: z-series did not converge in %d terms (last=%v)", maxTerms, term)
		}
		conv = conv.ConvolveFFT(beta)
		pow *= rho
	}
	return sum, terms, nil
}

// AcceptedWaitCDF returns the waiting-time distribution of *accepted*
// messages evaluated at w <= K:
//
//	P(W <= w | accepted) = F(w)/F(K),  F(w) = P(0)·Σ ρ^i ∫₀ʷ β⁽ⁱ⁾
//
// (equation 4.4 normalized by the acceptance probability).
func (q ImpatientMG1) AcceptedWaitCDF(k float64, ws []float64) ([]float64, error) {
	if err := q.validate(k); err != nil {
		return nil, err
	}
	for _, w := range ws {
		if w < 0 || w > k {
			return nil, fmt.Errorf("queueing: evaluation point %v outside [0, K]", w)
		}
	}
	rho := q.Lambda * q.Service.Mean()
	beta := q.residualGrid(k)
	maxTerms := q.MaxTerms
	if maxTerms <= 0 {
		maxTerms = 4096
	}
	sums := make([]float64, len(ws)) // Σ ρ^i ∫₀^{w_j} β⁽ⁱ⁾
	for j := range sums {
		sums[j] = 1 // i = 0 atom
	}
	zK := 1.0
	conv := beta.Clone()
	pow := rho
	for i := 1; i <= maxTerms; i++ {
		mass := conv.IntegralTo(k)
		term := pow * mass
		zK += term
		for j, w := range ws {
			sums[j] += pow * conv.IntegralTo(w)
		}
		if term < 1e-10 && (rho < 1 || mass < 1/(2*rho)) {
			break
		}
		conv = conv.ConvolveFFT(beta)
		pow *= rho
	}
	out := make([]float64, len(ws))
	for j := range ws {
		out[j] = sums[j] / zK
		if out[j] > 1 {
			out[j] = 1
		}
	}
	return out, nil
}
