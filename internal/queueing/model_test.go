package queueing

import (
	"math"
	"testing"

	"windowctl/internal/sched"
)

func TestOptimalWindowContentCachedAndPlausible(t *testing.T) {
	g1 := OptimalWindowContent()
	g2 := OptimalWindowContent()
	if g1 != g2 {
		t.Fatal("cached value changed")
	}
	if g1 < 0.5 || g1 > 3 {
		t.Fatalf("G* = %v outside plausible range", g1)
	}
}

func TestProtocolModelLambdaAndContent(t *testing.T) {
	m := ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.5}
	if math.Abs(m.Lambda()-0.02) > 1e-12 {
		t.Fatalf("lambda = %v, want 0.02", m.Lambda())
	}
	gStar := OptimalWindowContent()
	// Large K: the heuristic optimum applies.
	if g := m.WindowContent(1e6); g != gStar {
		t.Fatalf("uncapped content %v, want %v", g, gStar)
	}
	// Small K: content capped at λ′·K.
	if g := m.WindowContent(10); math.Abs(g-0.2) > 1e-12 {
		t.Fatalf("capped content %v, want 0.2", g)
	}
}

func TestServiceMeanComposition(t *testing.T) {
	m := ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.5}
	g := 1.0
	svc, err := m.Service(g)
	if err != nil {
		t.Fatal(err)
	}
	want := 25 + sched.Analyze(g).ResolutionSlots
	if math.Abs(svc.Mean()-want) > 1e-9 {
		t.Fatalf("service mean %v, want %v", svc.Mean(), want)
	}
	// Empty-probe variant is strictly larger.
	m2 := m
	m2.IncludeEmptyProbes = true
	svc2, err := m2.Service(g)
	if err != nil {
		t.Fatal(err)
	}
	if svc2.Mean() <= svc.Mean() {
		t.Fatal("empty probes did not add service time")
	}
	// Exact mode mean matches the geometric mode mean.
	m3 := m
	m3.Mode = ExactScheduling
	svc3, err := m3.Service(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(svc3.Mean()-want) > 0.01 {
		t.Fatalf("exact service mean %v, want %v", svc3.Mean(), want)
	}
	// Zero content degenerates to the bare transmission time.
	svc0, err := m.Service(0)
	if err != nil {
		t.Fatal(err)
	}
	if svc0.Mean() != 25 {
		t.Fatalf("zero-content service mean %v", svc0.Mean())
	}
}

func TestControlledLossCurveShape(t *testing.T) {
	m := ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.5}
	prev := 1.1
	for _, k := range []float64{5, 12.5, 25, 50, 100, 200} {
		res, err := m.ControlledLoss(k)
		if err != nil {
			t.Fatalf("K=%v: %v", k, err)
		}
		if res.Loss < 0 || res.Loss > 1 {
			t.Fatalf("K=%v: loss %v out of range", k, res.Loss)
		}
		if res.Loss > prev+1e-9 {
			t.Fatalf("loss not monotone in K at %v: %v > %v", k, res.Loss, prev)
		}
		prev = res.Loss
	}
	// Loose constraint: negligible loss at ρ′ = .5.
	if prev > 0.01 {
		t.Fatalf("loss at K=200 still %v", prev)
	}
}

func TestControlledBeatsBaselinesAcrossPanel(t *testing.T) {
	// One figure-7-style panel: the controlled curve must dominate both
	// uncontrolled baselines for all K.
	m := ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.75}
	for _, k := range []float64{25, 50, 100, 200, 400} {
		c, err := m.ControlledLoss(k)
		if err != nil {
			t.Fatal(err)
		}
		f, err := m.FCFSLoss(k)
		if err != nil {
			t.Fatal(err)
		}
		l, err := m.LCFSLoss(k)
		if err != nil {
			t.Fatal(err)
		}
		// 5e-4 absorbs grid-truncation noise where both losses are ~0.
		const tol = 5e-4
		if c.Loss > f+tol {
			t.Fatalf("K=%v: controlled %v worse than FCFS %v", k, c.Loss, f)
		}
		if c.Loss > l+tol {
			t.Fatalf("K=%v: controlled %v worse than LCFS %v", k, c.Loss, l)
		}
	}
}

func TestLossOrderedByLoad(t *testing.T) {
	// Higher ρ′ must produce higher loss at the same K — the ordering of
	// the figure-7 panels.
	k := 75.0
	prev := -1.0
	for _, rp := range []float64{0.25, 0.5, 0.75} {
		m := ProtocolModel{Tau: 1, M: 25, RhoPrime: rp}
		res, err := m.ControlledLoss(k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Loss < prev {
			t.Fatalf("loss not increasing in load at ρ′=%v: %v < %v", rp, res.Loss, prev)
		}
		prev = res.Loss
	}
}

func TestProtocolModelValidation(t *testing.T) {
	bad := []ProtocolModel{
		{Tau: 0, M: 25, RhoPrime: 0.5},
		{Tau: 1, M: 0, RhoPrime: 0.5},
		{Tau: 1, M: 25, RhoPrime: 0},
	}
	for i, m := range bad {
		if _, err := m.ControlledLoss(10); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
	}
	m := ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.5}
	if _, err := m.ControlledLoss(0); err == nil {
		t.Error("K=0 accepted")
	}
	m.Mode = SchedulingMode(99)
	if _, err := m.Service(1); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestCapacity(t *testing.T) {
	// Capacity approaches 1 for long messages and degrades for short.
	c25 := Capacity(25)
	c100 := Capacity(100)
	c1 := Capacity(1)
	if !(c1 < c25 && c25 < c100 && c100 < 1) {
		t.Fatalf("capacity ordering broken: %v %v %v", c1, c25, c100)
	}
	if c25 < 0.9 || c25 > 0.99 {
		t.Fatalf("capacity(25) = %v implausible", c25)
	}
	// Consistency with the service model: at load = capacity the
	// utilization including overhead is exactly 1.
	m := ProtocolModel{Tau: 1, M: 25, RhoPrime: c25, IncludeEmptyProbes: true}
	svcAll, err := m.Service(OptimalWindowContent())
	if err != nil {
		t.Fatal(err)
	}
	rho := m.Lambda() * svcAll.Mean()
	if math.Abs(rho-1) > 1e-9 {
		t.Fatalf("rho at capacity = %v, want 1", rho)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-positive M accepted")
			}
		}()
		Capacity(0)
	}()
}

func TestControlledLossCurveCoupled(t *testing.T) {
	m := ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.75}
	ks := []float64{5, 12.5, 25, 50, 100}
	curve, err := m.ControlledLossCurve(ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != len(ks) {
		t.Fatal("curve length")
	}
	prev := 1.1
	for i, res := range curve {
		if res.Loss > prev+1e-9 {
			t.Fatalf("coupled curve not monotone at K=%v", ks[i])
		}
		prev = res.Loss
		// The coupled and uncoupled models must agree closely — the
		// coupling is a second-order correction.
		plain, err := m.ControlledLoss(ks[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Loss-plain.Loss) > 0.15*plain.Loss+0.01 {
			t.Fatalf("K=%v: coupled %v vs plain %v", ks[i], res.Loss, plain.Loss)
		}
	}
	// Validation of inputs.
	if _, err := m.ControlledLossCurve([]float64{5, 5}); err == nil {
		t.Fatal("non-ascending grid accepted")
	}
	if _, err := m.ControlledLossCurve([]float64{0}); err == nil {
		t.Fatal("zero K accepted")
	}
}

func TestGeometricVsExactModeAgree(t *testing.T) {
	// The two scheduling models should give very close loss values: the
	// scheduling overhead is a small part of the service time.
	for _, rp := range []float64{0.25, 0.75} {
		mg := ProtocolModel{Tau: 1, M: 25, RhoPrime: rp}
		me := ProtocolModel{Tau: 1, M: 25, RhoPrime: rp, Mode: ExactScheduling}
		for _, k := range []float64{25, 100} {
			rg, err := mg.ControlledLoss(k)
			if err != nil {
				t.Fatal(err)
			}
			re, err := me.ControlledLoss(k)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(rg.Loss-re.Loss) > 0.01 {
				t.Fatalf("ρ′=%v K=%v: geometric %v vs exact %v", rp, k, rg.Loss, re.Loss)
			}
		}
	}
}
