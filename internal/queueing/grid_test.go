package queueing

import (
	"math"
	"testing"

	"windowctl/internal/dist"
	"windowctl/internal/numerics"
)

// gridServiceLaws covers the three service-law shapes the batched solvers
// must agree with their per-K counterparts on: no variance, memoryless,
// and in-between (Erlang-3).
func gridServiceLaws() map[string]dist.Distribution {
	return map[string]dist.Distribution{
		"deterministic": dist.Deterministic{Value: 1.3},
		"exponential":   dist.Exponential{Rate: 1 / 1.3},
		"erlang":        dist.Erlang{K: 3, Rate: 3 / 1.3},
	}
}

// SolveGrid must agree with per-K Solve on every constraint, including
// short constraints that fall on their own finer quadrature grid.
func TestSolveGridMatchesSolve(t *testing.T) {
	ks := []float64{0.4, 0.9, 1.3, 2.6, 3.9, 6.5, 10.4}
	for name, svc := range gridServiceLaws() {
		for _, lambda := range []float64{0.3, 0.7, 1.1} {
			q := ImpatientMG1{Lambda: lambda, Service: svc}
			grid, err := q.SolveGrid(ks)
			if err != nil {
				t.Fatalf("%s λ=%v: SolveGrid: %v", name, lambda, err)
			}
			for i, k := range ks {
				single, err := q.Solve(k)
				if err != nil {
					t.Fatalf("%s λ=%v K=%v: Solve: %v", name, lambda, k, err)
				}
				if d := math.Abs(grid[i].Loss - single.Loss); d > 1e-9 {
					t.Errorf("%s λ=%v K=%v: grid loss %v vs per-K %v (|Δ|=%g)",
						name, lambda, k, grid[i].Loss, single.Loss, d)
				}
				if grid[i].Terms != single.Terms {
					t.Errorf("%s λ=%v K=%v: grid summed %d terms, per-K %d",
						name, lambda, k, grid[i].Terms, single.Terms)
				}
			}
		}
	}
}

func TestLossFCFSGridMatchesPerK(t *testing.T) {
	ks := []float64{0, 0.4, 1.3, 2.6, 5.2, 10.4}
	for name, svc := range gridServiceLaws() {
		q := MG1{Lambda: 0.6, Service: svc}
		grid, err := q.LossFCFSGrid(ks)
		if err != nil {
			t.Fatalf("%s: LossFCFSGrid: %v", name, err)
		}
		for i, k := range ks {
			single, err := q.LossFCFS(k)
			if err != nil {
				t.Fatalf("%s K=%v: LossFCFS: %v", name, k, err)
			}
			if d := math.Abs(grid[i] - single); d > 1e-9 {
				t.Errorf("%s K=%v: grid %v vs per-K %v (|Δ|=%g)", name, k, grid[i], single, d)
			}
		}
	}
}

func TestLossLCFSGridMatchesPerK(t *testing.T) {
	ks := []float64{0.4, 1.3, 5.2}
	q := MG1{Lambda: 0.6, Service: dist.Exponential{Rate: 1 / 1.3}}
	grid, err := q.LossLCFSGrid(ks)
	if err != nil {
		t.Fatalf("LossLCFSGrid: %v", err)
	}
	for i, k := range ks {
		single, err := q.LossLCFS(k)
		if err != nil {
			t.Fatalf("K=%v: LossLCFS: %v", k, err)
		}
		if grid[i] != single {
			t.Errorf("K=%v: grid %v vs per-K %v", k, grid[i], single)
		}
	}
}

// The ProtocolModel grid entry points (including the fused LossGrids
// panel solver) must reproduce the per-K methods on a figure-7 style
// constraint grid mixing capped and uncapped window contents.
func TestProtocolModelGridsMatchPerK(t *testing.T) {
	for _, rhoPrime := range []float64{0.25, 0.75} {
		m := ProtocolModel{Tau: 1, M: 25, RhoPrime: rhoPrime}
		var ks []float64
		for _, km := range []float64{0.5, 1, 2, 4, 8} {
			ks = append(ks, km*m.M)
		}
		ctrl, err := m.ControlledLossGrid(ks)
		if err != nil {
			t.Fatalf("ρ'=%v: ControlledLossGrid: %v", rhoPrime, err)
		}
		fcfs, err := m.FCFSLossGrid(ks)
		if err != nil {
			t.Fatalf("ρ'=%v: FCFSLossGrid: %v", rhoPrime, err)
		}
		lcfs, err := m.LCFSLossGrid(ks)
		if err != nil {
			t.Fatalf("ρ'=%v: LCFSLossGrid: %v", rhoPrime, err)
		}
		joint, err := m.LossGrids(ks)
		if err != nil {
			t.Fatalf("ρ'=%v: LossGrids: %v", rhoPrime, err)
		}
		for i, k := range ks {
			want, err := m.ControlledLoss(k)
			if err != nil {
				t.Fatalf("ρ'=%v K=%v: ControlledLoss: %v", rhoPrime, k, err)
			}
			if d := math.Abs(ctrl[i].Loss - want.Loss); d > 1e-9 {
				t.Errorf("ρ'=%v K=%v: controlled grid %v vs per-K %v", rhoPrime, k, ctrl[i].Loss, want.Loss)
			}
			if d := math.Abs(joint.Controlled[i].Loss - want.Loss); d > 1e-9 {
				t.Errorf("ρ'=%v K=%v: joint controlled %v vs per-K %v", rhoPrime, k, joint.Controlled[i].Loss, want.Loss)
			}
			wantF, err := m.FCFSLoss(k)
			if err != nil {
				t.Fatalf("ρ'=%v K=%v: FCFSLoss: %v", rhoPrime, k, err)
			}
			if d := math.Abs(fcfs[i] - wantF); d > 1e-9 {
				t.Errorf("ρ'=%v K=%v: fcfs grid %v vs per-K %v", rhoPrime, k, fcfs[i], wantF)
			}
			if d := math.Abs(joint.FCFS[i] - wantF); d > 1e-9 {
				t.Errorf("ρ'=%v K=%v: joint fcfs %v vs per-K %v", rhoPrime, k, joint.FCFS[i], wantF)
			}
			wantL, err := m.LCFSLoss(k)
			if err != nil {
				t.Fatalf("ρ'=%v K=%v: LCFSLoss: %v", rhoPrime, k, err)
			}
			if lcfs[i] != wantL {
				t.Errorf("ρ'=%v K=%v: lcfs grid %v vs per-K %v", rhoPrime, k, lcfs[i], wantL)
			}
			if joint.LCFS[i] != wantL {
				t.Errorf("ρ'=%v K=%v: joint lcfs %v vs per-K %v", rhoPrime, k, joint.LCFS[i], wantL)
			}
		}
	}
}

// Past the baseline capacity the uncontrolled M/G/1 has no steady state:
// LossGrids must still solve the controlled curve (stable at any load) and
// report the baselines as NaN rather than failing the panel.
func TestLossGridsUnstableBaseline(t *testing.T) {
	m := ProtocolModel{Tau: 1, M: 25, RhoPrime: 1.1}
	q, err := m.baselineQueue()
	if err != nil {
		t.Fatalf("baselineQueue: %v", err)
	}
	if q.Rho() < 1 {
		t.Fatalf("baseline unexpectedly stable at ρ'=1.1 (ρ=%v); pick a higher load", q.Rho())
	}
	ks := []float64{25, 50}
	joint, err := m.LossGrids(ks)
	if err != nil {
		t.Fatalf("LossGrids: %v", err)
	}
	for i, k := range ks {
		want, err := m.ControlledLoss(k)
		if err != nil {
			t.Fatalf("K=%v: ControlledLoss: %v", k, err)
		}
		if d := math.Abs(joint.Controlled[i].Loss - want.Loss); d > 1e-9 {
			t.Errorf("K=%v: controlled %v vs per-K %v", k, joint.Controlled[i].Loss, want.Loss)
		}
		if !math.IsNaN(joint.FCFS[i]) || !math.IsNaN(joint.LCFS[i]) {
			t.Errorf("K=%v: baselines should be NaN past capacity, got fcfs=%v lcfs=%v",
				k, joint.FCFS[i], joint.LCFS[i])
		}
	}
}

// The whole point of the batched path: a figure-7 panel's analytic curves
// must cost at least 4x fewer FFT convolutions than per-K evaluation.
// On an uncapped constraint grid (K >= G*/λ') the controlled and FCFS
// series additionally fuse into a single convolution stream.
func TestLossGridsConvolutionSharing(t *testing.T) {
	m := ProtocolModel{Tau: 1, M: 25, RhoPrime: 0.75}
	var ks []float64
	for _, km := range []float64{1.5, 2, 3, 4, 6, 8} {
		ks = append(ks, km*m.M)
	}

	before := numerics.ConvolveFFTCount()
	if _, err := m.LossGrids(ks); err != nil {
		t.Fatalf("LossGrids: %v", err)
	}
	batched := numerics.ConvolveFFTCount() - before

	before = numerics.ConvolveFFTCount()
	for _, k := range ks {
		if _, err := m.ControlledLoss(k); err != nil {
			t.Fatalf("ControlledLoss(%v): %v", k, err)
		}
		if _, err := m.FCFSLoss(k); err != nil {
			t.Fatalf("FCFSLoss(%v): %v", k, err)
		}
	}
	perK := numerics.ConvolveFFTCount() - before

	if batched == 0 || perK == 0 {
		t.Fatalf("convolution counter did not advance (batched=%d, perK=%d)", batched, perK)
	}
	if ratio := float64(perK) / float64(batched); ratio < 4 {
		t.Errorf("batched panel used %d convolutions vs %d per-K (ratio %.2fx, want >= 4x)",
			batched, perK, ratio)
	} else {
		t.Logf("convolution sharing: %d batched vs %d per-K (%.1fx)", batched, perK, ratio)
	}
}
