// Package queueing implements the analytic performance models of §4 of the
// paper and of the [Kurose 83] baselines it compares against:
//
//   - An M/G/1 queue with impatient customers (customers balk when the
//     unfinished work exceeds the constraint K), whose loss probability is
//     the paper's equation 4.7.  This models the *controlled* window
//     protocol: policy elements (1), (3) and (4) make the distributed
//     queue FCFS with sender-side discard.
//   - The Beneš / Takács virtual-waiting-time distribution of the plain
//     M/G/1 queue, giving the loss (fraction of messages later than K) of
//     the uncontrolled FCFS window protocol.
//   - The waiting-time law of the non-preemptive LCFS M/G/1 queue via its
//     Laplace–Stieltjes transform and numerical inversion, giving the loss
//     of the uncontrolled LCFS window protocol.
//
// All three share the message service-time law: windowing (scheduling)
// overhead plus transmission time, built by internal/sched.
package queueing
