package queueing

import (
	"fmt"

	"windowctl/internal/numerics"
)

// UnfinishedWorkODE solves the paper's equation 4.2a directly — the
// integro-differential equation for the stationary distribution F(w) of
// unfinished work in the impatient M/G/1 queue, on 0 < w <= K:
//
//	0 = dF/dw − λ·F(w) + λ·∫₀ʷ B(w−x) dF(x)
//
// It is an independent derivation path from the Beneš-series solution
// (equation 4.4) used by ImpatientMG1.Solve: here the equation is
// integrated forward as a Volterra problem from the atom F(0) = P(0),
// and P(0) is then fixed by the same flow-conservation argument
// (figure 6): ρ·p(accept) = 1 − P(0) with p(accept) = F(K)
// (normalizing F as the *unnormalized* work distribution with F(0) = 1
// and scaling at the end).  Agreement between the two paths — asserted
// by the tests — validates both the series machinery and the equation
// manipulation in §4.1.
//
// The forward integration uses the trapezoid (Crank–Nicolson-style)
// discretization of the convolution term on a uniform grid of n steps.
type UnfinishedWorkODE struct {
	// Lambda is the arrival rate of all messages.
	Lambda float64
	// Service is the service-time law B.
	Service interface {
		CDF(x float64) float64
		Mean() float64
	}
	// Steps is the grid resolution (0 means 4096).
	Steps int
}

// ODEResult carries the solved quantities.
type ODEResult struct {
	// Loss is p(loss) = 1 − p(accept).
	Loss float64
	// ServerIdle is P(0).
	ServerIdle float64
	// WorkCDF is the distribution of unfinished work on [0, K], already
	// scaled so WorkCDF.At(0) = P(0); WorkCDF.At(K) = p(accept).
	WorkCDF *numerics.Grid
}

// Solve integrates equation 4.2a on (0, K] and applies flow conservation.
func (o UnfinishedWorkODE) Solve(k float64) (ODEResult, error) {
	if o.Lambda <= 0 {
		return ODEResult{}, fmt.Errorf("queueing: ODE needs positive Lambda")
	}
	if o.Service == nil || o.Service.Mean() <= 0 {
		return ODEResult{}, fmt.Errorf("queueing: ODE needs a service law with positive mean")
	}
	if k <= 0 {
		return ODEResult{}, fmt.Errorf("queueing: ODE needs positive K")
	}
	n := o.Steps
	if n <= 0 {
		n = 4096
	}
	hStep := k / float64(n)
	lam := o.Lambda

	// Work with the unnormalized G(w) = F(w)/P(0), so G(0) = 1.
	// G'(w) = λ·G(w) − λ·∫₀ʷ B(w−x) dG(x).
	// The Stieltjes integral has an atom at x = 0 of mass G(0) = 1 plus
	// the absolutely continuous part with density G'(x):
	//   ∫₀ʷ B(w−x) dG(x) = B(w)·1 + ∫₀ʷ B(w−x) G'(x) dx.
	g := make([]float64, n+1)  // G on the grid
	gp := make([]float64, n+1) // G' on the grid
	g[0] = 1
	// Right-hand side at w = 0⁺: G'(0) = λ·1 − λ·B(0).
	gp[0] = lam * (1 - o.Service.CDF(0))
	// March forward: at each step solve the implicit trapezoid update for
	// G'(w_i), which appears linearly (through the convolution's i-th
	// endpoint with B(0) weight and through G(w_i)).
	b := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		b[i] = o.Service.CDF(float64(i) * hStep)
	}
	for i := 1; i <= n; i++ {
		// conv_i = B(w_i) + Σ'_{j=0..i} B(w_i − w_j)·G'(w_j)·h (trapezoid)
		// Split off the j = i term (weight h/2, factor B(0)·G'(w_i)).
		conv := b[i]
		for j := 0; j < i; j++ {
			wgt := hStep
			if j == 0 {
				wgt = hStep / 2
			}
			conv += wgt * b[i-j] * gp[j]
		}
		// Trapezoid update of G and the defining equation:
		//   G(w_i)  = G(w_{i-1}) + h/2·(G'(w_{i-1}) + G'(w_i))
		//   G'(w_i) = λ·G(w_i) − λ·(conv + h/2·B(0)·G'(w_i))
		// Substitute and solve for G'(w_i):
		//   G'(w_i)·(1 − λh/2 + λh/2·B(0)) =
		//       λ·(G(w_{i-1}) + h/2·G'(w_{i-1})) − λ·conv
		den := 1 - lam*hStep/2 + lam*hStep/2*b[0]
		num := lam*(g[i-1]+hStep/2*gp[i-1]) - lam*conv
		gp[i] = num / den
		g[i] = g[i-1] + hStep/2*(gp[i-1]+gp[i])
	}

	// Flow conservation: p(accept) = P(0)·G(K) (since F = P(0)·G) and
	// ρ·p(accept) = 1 − P(0)  ⇒  P(0) = 1/(1 + ρ·G(K)).
	rho := lam * o.Service.Mean()
	p0 := 1 / (1 + rho*g[n])
	accept := p0 * g[n]
	loss := 1 - accept
	if loss < 0 {
		loss = 0
	}
	if loss > 1 {
		loss = 1
	}
	cdf := numerics.NewGrid(hStep, n+1)
	for i := range cdf.Y {
		cdf.Y[i] = p0 * g[i]
	}
	return ODEResult{Loss: loss, ServerIdle: p0, WorkCDF: cdf}, nil
}
