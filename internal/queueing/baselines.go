package queueing

import (
	"fmt"
	"math"

	"windowctl/internal/dist"
	"windowctl/internal/numerics"
)

// MG1 is a plain (infinitely patient) M/G/1 queue, modelling the
// *uncontrolled* window protocols of [Kurose 83]: every message is
// eventually transmitted; a message counts as lost when its waiting time
// exceeds the constraint, but it still consumes the channel.
type MG1 struct {
	// Lambda is the Poisson arrival rate.
	Lambda float64
	// Service is the service-time law.
	Service dist.Distribution
	// Step is the convolution grid spacing (0 = automatic).
	Step float64
	// MaxTerms bounds the Beneš series (0 = 4096).
	MaxTerms int
}

// Rho returns the offered load λ·E[X].
func (q MG1) Rho() float64 { return q.Lambda * q.Service.Mean() }

func (q MG1) validate() error {
	if q.Lambda <= 0 {
		return fmt.Errorf("queueing: arrival rate %v must be positive", q.Lambda)
	}
	if q.Service == nil || q.Service.Mean() <= 0 {
		return fmt.Errorf("queueing: invalid service distribution")
	}
	if q.Rho() >= 1 {
		return fmt.Errorf("queueing: unstable M/G/1 (rho=%v >= 1); the uncontrolled baseline has no steady state", q.Rho())
	}
	return nil
}

// MeanWait returns the Pollaczek–Khinchine mean waiting time
// λ·E[X²] / (2(1−ρ)).
func (q MG1) MeanWait() (float64, error) {
	if err := q.validate(); err != nil {
		return 0, err
	}
	return q.Lambda * q.Service.SecondMoment() / (2 * (1 - q.Rho())), nil
}

// WaitCDF evaluates the FCFS waiting-time distribution at the given points
// using the Beneš / Takács series
//
//	P(W <= w) = (1−ρ) Σ_{i≥0} ρ^i ∫₀ʷ β⁽ⁱ⁾(u) du ,
//
// the unfinished-work law whose truncation at K the paper's equation 4.4
// reuses.  P(W > K) is the loss fraction of the uncontrolled FCFS window
// protocol.
func (q MG1) WaitCDF(ws []float64) ([]float64, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	wMax := 0.0
	for _, w := range ws {
		if w < 0 {
			return nil, fmt.Errorf("queueing: negative evaluation point %v", w)
		}
		if w > wMax {
			wMax = w
		}
	}
	rho := q.Rho()
	if wMax == 0 {
		out := make([]float64, len(ws))
		for i := range out {
			out[i] = 1 - rho // P(W = 0) = P(idle)
		}
		return out, nil
	}
	step := q.Step
	if step <= 0 {
		step = math.Min(wMax, q.Service.Mean()) / 512
	}
	n := int(wMax/step) + 2
	xbar := q.Service.Mean()
	beta := numerics.Tabulate(func(u float64) float64 {
		return (1 - q.Service.CDF(u)) / xbar
	}, step, n)

	maxTerms := q.MaxTerms
	if maxTerms <= 0 {
		maxTerms = 4096
	}
	sums := make([]float64, len(ws))
	for j := range sums {
		sums[j] = 1 // i = 0 atom at zero
	}
	conv := beta.Clone()
	plan := numerics.NewConvolver(beta)
	pow := rho
	const tol = 1e-12
	for i := 1; i <= maxTerms; i++ {
		mass := conv.IntegralTo(wMax)
		for j, w := range ws {
			sums[j] += pow * conv.IntegralTo(w)
		}
		if pow*mass < tol {
			break
		}
		if i == maxTerms {
			return nil, fmt.Errorf("queueing: Beneš series did not converge in %d terms", maxTerms)
		}
		plan.ConvolveInto(conv, conv)
		pow *= rho
	}
	out := make([]float64, len(ws))
	for j := range ws {
		out[j] = (1 - rho) * sums[j]
		if out[j] > 1 {
			out[j] = 1
		}
	}
	return out, nil
}

// LossFCFS returns P(W > K) for the FCFS baseline.
func (q MG1) LossFCFS(k float64) (float64, error) {
	if k < 0 {
		return 0, fmt.Errorf("queueing: negative constraint %v", k)
	}
	cdf, err := q.WaitCDF([]float64{k})
	if err != nil {
		return 0, err
	}
	return 1 - cdf[0], nil
}

// LossFCFSGrid returns P(W > K) for every constraint of ks at the cost of
// one Beneš series per shared quadrature grid instead of one per
// constraint (see ImpatientMG1.SolveGrid for the partitioning rule; the
// i-fold convolutions β⁽ⁱ⁾ are K-independent, so constraints on the same
// grid share them).  Results match per-K LossFCFS to rounding error.
func (q MG1) LossFCFSGrid(ks []float64) ([]float64, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	for _, k := range ks {
		if k < 0 {
			return nil, fmt.Errorf("queueing: negative constraint %v", k)
		}
	}
	rho := q.Rho()
	xbar := q.Service.Mean()
	out := make([]float64, len(ks))
	var zero []int // K = 0 constraints: P(W <= 0) = 1 − ρ exactly
	var pos []int
	for i, k := range ks {
		if k == 0 {
			zero = append(zero, i)
		} else {
			pos = append(pos, i)
		}
	}
	for _, i := range zero {
		out[i] = rho
	}
	for _, batch := range partitionConstraints(ks, pos, q.Step, xbar) {
		kMax := 0.0
		for _, i := range batch.idx {
			if ks[i] > kMax {
				kMax = ks[i]
			}
		}
		n := int(kMax/batch.step) + 2
		beta := numerics.Tabulate(func(u float64) float64 {
			return (1 - q.Service.CDF(u)) / xbar
		}, batch.step, n)
		reqs := make([]*seriesReq, len(batch.idx))
		for j, i := range batch.idx {
			reqs[j] = &seriesReq{k: ks[i], tol: 1e-12}
		}
		if err := runSeries(rho, beta, q.MaxTerms, reqs); err != nil {
			return nil, err
		}
		for j, i := range batch.idx {
			cdf := (1 - rho) * reqs[j].sum
			if cdf > 1 {
				cdf = 1
			}
			out[i] = 1 - cdf
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// LCFS (non-preemptive) baseline via transform inversion
// ---------------------------------------------------------------------------

// busyPeriodLST returns the busy-period transform θ(s), the unique root in
// the unit disk of θ = B*(s + λ − λθ), by functional iteration.
func (q MG1) busyPeriodLST(s complex128) (complex128, error) {
	lambda := complex(q.Lambda, 0)
	var iterErr error
	theta := numerics.SolveFunctionalFixedPoint(func(th complex128) complex128 {
		v, err := dist.LSTComplex(q.Service, s+lambda-lambda*th)
		if err != nil {
			iterErr = err
			return th
		}
		return v
	}, 1e-13, 20000)
	return theta, iterErr
}

// waitLSTLCFS returns the waiting-time LST of the non-preemptive LCFS
// M/G/1 queue:
//
//	W*(s) = (1−ρ) + ρ·R*(s + λ − λθ(s)) ,
//
// where R* is the residual-service transform (1 − B*(u))/(u·E[X]) and θ
// the busy-period transform: an arriving customer waits for the residual
// service of the customer in service plus the full sub-busy periods of
// everyone arriving during that residual time (they are younger and go
// first under LCFS).
func (q MG1) waitLSTLCFS(s complex128) (complex128, error) {
	rho := q.Rho()
	theta, err := q.busyPeriodLST(s)
	if err != nil {
		return 0, err
	}
	u := s + complex(q.Lambda, 0)*(1-theta)
	bu, err := dist.LSTComplex(q.Service, u)
	if err != nil {
		return 0, err
	}
	var rStar complex128
	if u == 0 {
		rStar = 1
	} else {
		rStar = (1 - bu) / (u * complex(q.Service.Mean(), 0))
	}
	return complex(1-rho, 0) + complex(rho, 0)*rStar, nil
}

// WaitCDFLCFS evaluates the LCFS-NP waiting-time distribution at w > 0 by
// Euler inversion of W*(s)/s.  The result is clamped to [1−ρ, 1]: P(W=0)
// is exactly 1−ρ, so no smaller value is meaningful.
func (q MG1) WaitCDFLCFS(w float64) (float64, error) {
	if err := q.validate(); err != nil {
		return 0, err
	}
	if w <= 0 {
		return 1 - q.Rho(), nil
	}
	var inner error
	v := numerics.InvertLaplaceEuler(func(s complex128) complex128 {
		lst, err := q.waitLSTLCFS(s)
		if err != nil {
			inner = err
			return 0
		}
		return lst / s
	}, w)
	if inner != nil {
		return 0, inner
	}
	lo := 1 - q.Rho()
	if v < lo {
		v = lo
	}
	if v > 1 {
		v = 1
	}
	return v, nil
}

// LossLCFS returns P(W > K) for the LCFS baseline.
func (q MG1) LossLCFS(k float64) (float64, error) {
	cdf, err := q.WaitCDFLCFS(k)
	if err != nil {
		return 0, err
	}
	return 1 - cdf, nil
}

// LossLCFSGrid returns P(W > K) for every constraint of ks.  The LCFS law
// is inverted per constraint (Euler inversion has no cross-K sharing), but
// the batched entry point validates once and matches the other *Grid
// solvers so callers can evaluate a whole panel curve in one call.
func (q MG1) LossLCFSGrid(ks []float64) ([]float64, error) {
	if err := q.validate(); err != nil {
		return nil, err
	}
	out := make([]float64, len(ks))
	for i, k := range ks {
		loss, err := q.LossLCFS(k)
		if err != nil {
			return nil, fmt.Errorf("queueing: LCFS loss at K=%v: %w", k, err)
		}
		out[i] = loss
	}
	return out, nil
}

// MeanWaitLCFS integrates the LCFS waiting tail numerically:
// E[W] = ∫₀^∞ P(W > t) dt.  For the non-preemptive LCFS discipline this
// must equal the FCFS (PK) mean — a strong internal consistency check used
// by the tests.
func (q MG1) MeanWaitLCFS(upTo float64, panels int) (float64, error) {
	if err := q.validate(); err != nil {
		return 0, err
	}
	var inner error
	v := numerics.Trapezoid(func(t float64) float64 {
		if t == 0 {
			return q.Rho()
		}
		cdf, err := q.WaitCDFLCFS(t)
		if err != nil {
			inner = err
			return 0
		}
		return 1 - cdf
	}, 0, upTo, panels)
	if inner != nil {
		return 0, inner
	}
	return v, nil
}
