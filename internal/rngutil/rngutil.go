// Package rngutil provides deterministic, splittable pseudo-random number
// streams for simulation.
//
// Reproducibility is a first-class requirement for the experiment harness:
// every simulation run is driven by an explicit 64-bit seed, and independent
// model components (stations, arrival processes, replications) each draw
// from their own substream so that changing the amount of randomness
// consumed by one component does not perturb any other component.  The
// substream spawning scheme follows the SplitMix64 construction of Steele,
// Lea and Flood, which is also the stream-seeding function recommended by
// the xoshiro authors.
//
// The generator itself is xoshiro256**, a small, fast all-purpose generator
// with a 2^256-1 period and no known linear artifacts in its output; it is
// the same family used by the Go runtime for its fallback generator.  Only
// the Go standard library is used.
package rngutil

import (
	"fmt"
	"math"
)

// splitmix64 advances the given state and returns the next SplitMix64
// output.  It is used both to seed xoshiro state from a single word and to
// derive child stream seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes any number of 64-bit words into a single well-mixed seed
// word by folding each through SplitMix64.  It is the recommended way to
// derive a per-work-item seed from a base seed plus the item's identity
// (panel parameters, constraint index, protocol, ...): unlike XOR-ing the
// raw words together, every input bit avalanches across the whole output,
// so items whose identities differ in only a low bit still get
// uncorrelated streams.
func Mix64(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		sm := h ^ w
		h = splitmix64(&sm)
	}
	return h
}

// Stream is a deterministic pseudo-random stream.  It is not safe for
// concurrent use; give each goroutine its own Stream (see Spawn).
type Stream struct {
	s    [4]uint64
	seed uint64 // original seed, for diagnostics
	next uint64 // child counter for Spawn
}

// New returns a Stream seeded from a single 64-bit value.  Distinct seeds
// yield statistically independent streams.
//
// An all-zero state is the single forbidden xoshiro state; SplitMix64
// cannot produce four consecutive zeros from any seed, but Seeded guards
// anyway.
func New(seed uint64) *Stream {
	st := Seeded(seed)
	return &st
}

// Seed returns the seed the stream was created with.
func (r *Stream) Seed() uint64 { return r.seed }

// Clone returns an independent replica at the stream's current position:
// the clone and the original produce the same future draws.  This supports
// the protocol's common-randomness policies, where every station holds a
// replica of one agreed pseudo-random sequence.
func (r *Stream) Clone() *Stream {
	cp := *r
	return &cp
}

// String implements fmt.Stringer for diagnostics.
func (r *Stream) String() string {
	return fmt.Sprintf("rngutil.Stream(seed=%#x)", r.seed)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Spawn returns a new Stream that is statistically independent of the
// parent and of every other spawned child.  Children are derived from the
// parent's seed and a child counter, not from the parent's state, so the
// identity of child k does not depend on how much randomness the parent
// has consumed.
func (r *Stream) Spawn() *Stream {
	r.next++
	return New(ChildSeed(r.seed, r.next))
}

// ChildSeed returns the seed of the k-th (1-based) child a Stream seeded
// with parent would produce via Spawn.  Because child identity is a pure
// function of (parent seed, child index), work sharded across any number
// of workers can derive each child stream directly — the million-station
// engine seeds its struct-of-arrays station state this way, bit-identical
// at any worker count.  ChildSeed(parent, k) == the seed of the k-th
// New(parent).Spawn() result; the tests pin the equivalence.
func ChildSeed(parent uint64, k uint64) uint64 {
	// Mix seed and counter through SplitMix64 twice for avalanche.
	sm := parent ^ (k * 0xd1342543de82ef95)
	return splitmix64(&sm)
}

// Seeded returns a Stream by value, seeded exactly like New.  It exists
// for struct-of-arrays state that stores millions of streams in one flat
// slice: `streams[i] = rngutil.Seeded(seed)` initializes in place with no
// per-stream heap allocation.
func Seeded(seed uint64) Stream {
	var st Stream
	st.seed = seed
	sm := seed
	for i := range st.s {
		st.s[i] = splitmix64(&sm)
	}
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return st
}

// SpawnN returns n independent child streams (see Spawn).
func (r *Stream) SpawnN(n int) []*Stream {
	out := make([]*Stream, n)
	for i := range out {
		out[i] = r.Spawn()
	}
	return out
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in the open interval (0, 1); it never
// returns exactly 0, which makes it safe as the argument of math.Log.
func (r *Stream) Float64Open() float64 {
	for {
		if v := r.Float64(); v > 0 {
			return v
		}
	}
}

// Intn returns a uniform value in [0, n).  It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rngutil: Intn with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, bound) without modulo bias,
// using Lemire's multiply-shift rejection method.
func (r *Stream) boundedUint64(bound uint64) uint64 {
	if bound == 0 {
		panic("rngutil: zero bound")
	}
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid1 := t & mask
	c1 := t >> 32
	t = aLo*bHi + mid1
	mid2 := t & mask
	c2 := t >> 32
	hi = aHi*bHi + c1 + c2
	lo |= mid2 << 32
	return hi, lo
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate).  It panics if rate <= 0.
func (r *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rngutil: Exp with non-positive rate")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Bernoulli returns true with probability p.
func (r *Stream) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials; support {0, 1, 2, ...}, mean (1-p)/p.  It panics if
// p is not in (0, 1].
func (r *Stream) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rngutil: Geometric with p outside (0,1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(ln U / ln(1-p)).
	u := r.Float64Open()
	return int(math.Floor(math.Log(u) / math.Log1p(-p)))
}

// Poisson returns a Poisson-distributed value with the given mean.  For
// small means it uses Knuth multiplication; for large means it uses the
// normal approximation with continuity correction (adequate for the
// workload generators here, which use it only for sanity tooling).
func (r *Stream) Poisson(mean float64) int {
	if mean < 0 {
		panic("rngutil: Poisson with negative mean")
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64Open()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Normal approximation for large means.
	for {
		v := mean + math.Sqrt(mean)*r.Normal()
		if v >= 0 {
			return int(v + 0.5)
		}
	}
}

// Normal returns a standard normal value using the Marsaglia polar method.
func (r *Stream) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Shuffle pseudo-randomly permutes the first n elements using swap, in the
// manner of the Fisher-Yates shuffle.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
