package rngutil

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with distinct seeds produced %d identical draws", same)
	}
}

func TestCloneReplaysFuture(t *testing.T) {
	a := New(42)
	for i := 0; i < 13; i++ {
		a.Uint64() // advance to an arbitrary mid-stream position
	}
	b := a.Clone()
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("clone diverged at draw %d", i)
		}
	}
	// Advancing the clone does not disturb the original.
	c := a.Clone()
	c.Uint64()
	want := b.Uint64()
	if a.Uint64() != want {
		t.Fatal("clone consumption leaked into original")
	}
}

func TestSpawnIndependentOfConsumption(t *testing.T) {
	a := New(7)
	b := New(7)
	// Consume different amounts from the parents before spawning.
	for i := 0; i < 17; i++ {
		a.Uint64()
	}
	ca := a.Spawn()
	cb := b.Spawn()
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("child identity depends on parent consumption")
		}
	}
}

func TestSpawnChildrenDistinct(t *testing.T) {
	p := New(9)
	kids := p.SpawnN(8)
	seen := map[uint64]bool{}
	for _, k := range kids {
		v := k.Uint64()
		if seen[v] {
			t.Fatal("two spawned children produced the same first draw")
		}
		seen[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnUnbiased(t *testing.T) {
	r := New(5)
	const n, buckets = 120000, 6
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", b, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(6)
	const n = 200000
	rate := 2.5
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp mean = %v, want %v", mean, 1/rate)
	}
}

func TestExpMemoryless(t *testing.T) {
	// P(X > a+b | X > a) should equal P(X > b).
	r := New(16)
	const n = 300000
	rate, a, b := 1.0, 0.7, 0.9
	countA, countAB, countB := 0, 0, 0
	for i := 0; i < n; i++ {
		x := r.Exp(rate)
		if x > a {
			countA++
			if x > a+b {
				countAB++
			}
		}
		if r.Exp(rate) > b {
			countB++
		}
	}
	condProb := float64(countAB) / float64(countA)
	probB := float64(countB) / float64(n)
	if math.Abs(condProb-probB) > 0.01 {
		t.Fatalf("memorylessness violated: %v vs %v", condProb, probB)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(8)
	p := 0.3
	const n = 200000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p
	if math.Abs(mean-want) > 0.03 {
		t.Fatalf("Geometric mean = %v, want %v", mean, want)
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(8)
	for i := 0; i < 100; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) must be 0")
		}
	}
}

func TestPoissonMeanVariance(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 12, 80} {
		r := New(uint64(10 + mean))
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			sum += v
			sumSq += v * v
		}
		m := sum / n
		va := sumSq/n - m*m
		if math.Abs(m-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(va-mean) > 0.1*mean+0.1 {
			t.Fatalf("Poisson(%v) variance = %v", mean, va)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 300000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("Normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Normal variance = %v", variance)
	}
}

func TestBernoulliProbability(t *testing.T) {
	r := New(12)
	p := 0.37
	const n = 200000
	count := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			count++
		}
	}
	got := float64(count) / n
	if math.Abs(got-p) > 0.005 {
		t.Fatalf("Bernoulli(%v) frequency = %v", p, got)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(13)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if v < 0 || v >= len(xs) || seen[v] {
			t.Fatalf("not a permutation: %v", xs)
		}
		seen[v] = true
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(14)
	for i := 0; i < 100000; i++ {
		if r.Float64Open() <= 0 {
			t.Fatal("Float64Open returned non-positive value")
		}
	}
}

// Property: Intn always falls inside [0, n) for arbitrary seeds and bounds.
func TestIntnRangeProperty(t *testing.T) {
	f := func(seed uint64, bound uint16) bool {
		n := int(bound%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Exp is always strictly positive.
func TestExpPositiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			if r.Exp(1.5) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(1)
	}
}

func TestMix64(t *testing.T) {
	if Mix64(1, 2, 3) != Mix64(1, 2, 3) {
		t.Fatal("Mix64 not deterministic")
	}
	// Order and identity must matter: the XOR-fold failure mode this
	// replaces made (a^b) collide with (b^a) and with (a^b, 0).
	if Mix64(1, 2) == Mix64(2, 1) {
		t.Error("Mix64 is order-insensitive")
	}
	if Mix64(1) == Mix64(1, 0) {
		t.Error("Mix64 ignores trailing zero words")
	}
	// Low-bit neighbours must avalanche: count collisions over a dense
	// grid of near-identical identities.
	seen := map[uint64]bool{}
	for a := uint64(0); a < 64; a++ {
		for b := uint64(0); b < 64; b++ {
			h := Mix64(42, a, b)
			if seen[h] {
				t.Fatalf("collision at (%d, %d)", a, b)
			}
			seen[h] = true
		}
	}
}

func TestChildSeedMatchesSpawn(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0x9e3779b97f4a7c15, ^uint64(0)} {
		root := New(seed)
		for k := uint64(1); k <= 64; k++ {
			child := root.Spawn()
			if got, want := ChildSeed(seed, k), child.Seed(); got != want {
				t.Fatalf("ChildSeed(%#x, %d) = %#x, Spawn gave %#x", seed, k, got, want)
			}
		}
	}
}

func TestSeededMatchesNew(t *testing.T) {
	for _, seed := range []uint64{0, 7, 0xdeadbeef} {
		a := New(seed)
		b := Seeded(seed)
		for i := 0; i < 100; i++ {
			if av, bv := a.Uint64(), b.Uint64(); av != bv {
				t.Fatalf("seed %#x draw %d: New gave %#x, Seeded gave %#x", seed, i, av, bv)
			}
		}
	}
}
