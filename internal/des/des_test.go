package des

import (
	"math"
	"testing"
	"testing/quick"

	"windowctl/internal/rngutil"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, 0, func() { order = append(order, 3) })
	s.Schedule(1, 0, func() { order = append(order, 1) })
	s.Schedule(2, 0, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v", s.Now())
	}
	if s.Dispatched() != 3 {
		t.Fatal("dispatched count")
	}
}

func TestTieBreakByPriorityThenSeq(t *testing.T) {
	s := New()
	var order []string
	s.Schedule(1, 5, func() { order = append(order, "low-prio-first-inserted") })
	s.Schedule(1, 1, func() { order = append(order, "high-prio") })
	s.Schedule(1, 5, func() { order = append(order, "low-prio-second-inserted") })
	s.Run()
	want := []string{"high-prio", "low-prio-first-inserted", "low-prio-second-inserted"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestScheduleAfter(t *testing.T) {
	s := New()
	var at float64
	s.Schedule(2, 0, func() {
		s.ScheduleAfter(3, 0, func() { at = s.Now() })
	})
	s.Run()
	if at != 5 {
		t.Fatalf("relative event fired at %v", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.Schedule(5, 0, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.Schedule(4, 0, func() {})
	})
	s.Run()
}

func TestNonFiniteTimePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("NaN time accepted")
		}
	}()
	s.Schedule(math.NaN(), 0, func() {})
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(1, 0, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !e.Canceled() {
		t.Fatal("event not marked canceled")
	}
	// Double cancel and nil cancel are safe.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelInterleaved(t *testing.T) {
	s := New()
	var fired []int
	var e2 *Event
	s.Schedule(1, 0, func() {
		fired = append(fired, 1)
		s.Cancel(e2)
	})
	e2 = s.Schedule(2, 0, func() { fired = append(fired, 2) })
	s.Schedule(3, 0, func() { fired = append(fired, 3) })
	s.Run()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, tt := range []float64{1, 2, 3, 4, 5} {
		tt := tt
		s.Schedule(tt, 0, func() { fired = append(fired, tt) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v", fired)
	}
	if s.Now() != 3 {
		t.Fatalf("clock %v", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("pending %d", s.Pending())
	}
	// Continue to the end.
	s.RunUntil(10)
	if len(fired) != 5 || s.Now() != 10 {
		t.Fatalf("fired %v, now %v", fired, s.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(7)
	if s.Now() != 7 {
		t.Fatalf("idle clock %v", s.Now())
	}
}

func TestRunUntilPastPanics(t *testing.T) {
	s := New()
	s.RunUntil(5)
	defer func() {
		if recover() == nil {
			t.Fatal("RunUntil into the past accepted")
		}
	}()
	s.RunUntil(4)
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(float64(i), 0, func() {
			count++
			if count == 4 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 4 {
		t.Fatalf("stop ignored: count=%d", count)
	}
	// Run can resume afterwards.
	s.Run()
	if count != 10 {
		t.Fatalf("resume failed: count=%d", count)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New()
	depth := 0
	var grow func()
	grow = func() {
		depth++
		if depth < 100 {
			s.ScheduleAfter(0.5, 0, grow)
		}
	}
	s.Schedule(0, 0, grow)
	s.Run()
	if depth != 100 {
		t.Fatalf("depth = %d", depth)
	}
}

// Property: any random schedule dispatches in non-decreasing time order.
func TestDispatchOrderProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		count := int(n%60) + 1
		r := rngutil.New(seed)
		s := New()
		var times []float64
		for i := 0; i < count; i++ {
			tt := r.Float64() * 100
			s.Schedule(tt, r.Intn(3), func() { times = append(times, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: identical seeds produce identical dispatch traces.
func TestDeterministicReplayProperty(t *testing.T) {
	run := func(seed uint64) []float64 {
		r := rngutil.New(seed)
		s := New()
		var trace []float64
		var pump func()
		n := 0
		pump = func() {
			trace = append(trace, s.Now())
			n++
			if n < 50 {
				s.ScheduleAfter(r.Exp(1), 0, pump)
			}
		}
		s.Schedule(0, 0, pump)
		s.Run()
		return trace
	}
	f := func(seed uint64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleDispatch(b *testing.B) {
	s := New()
	r := rngutil.New(1)
	// Keep a rolling window of 1000 pending events.
	for i := 0; i < 1000; i++ {
		s.ScheduleAfter(r.Exp(1), 0, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScheduleAfter(r.Exp(1), 0, func() {})
		s.Step()
	}
}
