package des

import "container/heap"

// heapQueue is the binary-heap event backend.  Cancellation removes
// eagerly, so every queued event is live.
type heapQueue struct {
	events eventHeap
}

type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

func (q *heapQueue) push(e *Event) { heap.Push(&q.events, e) }

func (q *heapQueue) next() *Event {
	for len(q.events) > 0 && q.events[0].canceled {
		heap.Pop(&q.events)
	}
	if len(q.events) == 0 {
		return nil
	}
	return q.events[0]
}

func (q *heapQueue) pop() *Event {
	if q.next() == nil {
		return nil
	}
	return heap.Pop(&q.events).(*Event)
}

func (q *heapQueue) unlink(e *Event) {
	if e.index >= 0 {
		heap.Remove(&q.events, e.index)
	}
}

func (q *heapQueue) live() int {
	n := 0
	for _, e := range q.events {
		if !e.canceled {
			n++
		}
	}
	return n
}
