package des

import (
	"testing"

	"windowctl/internal/rngutil"
)

func TestNewCalendarBadWidthPanics(t *testing.T) {
	for _, w := range []float64{0, -1, nan(), inf()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCalendar(%v) did not panic", w)
				}
			}()
			NewCalendar(w)
		}()
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

// record drives one simulator through a deterministic schedule derived
// from seed — slot-like advances, bursts of ties, far-future jumps, events
// scheduled from inside callbacks, and cancellations — and returns the
// dispatch log.
func record(s *Simulator, seed uint64) []float64 {
	rng := rngutil.New(seed)
	var log []float64
	var cancelable []*Event
	schedule := func(t float64, prio int) {
		e := s.Schedule(t, prio, func() {
			log = append(log, s.Now())
			// A quarter of callbacks schedule follow-up work, half of it
			// slot-synchronous, half far ahead.
			if rng.Intn(4) == 0 {
				dt := 1.0
				if rng.Intn(2) == 0 {
					dt = 1 + float64(rng.Intn(400))
				}
				s.ScheduleAfter(dt, rng.Intn(3), func() {
					log = append(log, -s.Now())
				})
			}
		})
		if rng.Intn(5) == 0 {
			cancelable = append(cancelable, e)
		}
	}
	t := 0.0
	for i := 0; i < 500; i++ {
		switch rng.Intn(10) {
		case 0: // far-future jump
			t += float64(1 + rng.Intn(300))
		case 1, 2: // tie burst at the same instant
			for j := 0; j < 1+rng.Intn(4); j++ {
				schedule(t, rng.Intn(3))
			}
		default: // slot-like advance
			t += rng.Float64() * 2
		}
		schedule(t, rng.Intn(3))
	}
	for i, e := range cancelable {
		if i%2 == 0 {
			s.Cancel(e)
		}
	}
	s.Run()
	return log
}

// TestCalendarMatchesHeap pins the two backends to the same total dispatch
// order on adversarial random schedules, across bucket widths much smaller
// and much larger than the typical inter-event gap.
func TestCalendarMatchesHeap(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		want := record(New(), seed)
		for _, width := range []float64{0.01, 1, 64} {
			got := record(NewCalendar(width), seed)
			if len(got) != len(want) {
				t.Fatalf("seed %d width %v: %d dispatches, heap had %d", seed, width, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d width %v: dispatch %d at %v, heap at %v", seed, width, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCalendarSteadyStateNoAlloc checks the slot-synchronous hot loop —
// one event per slot, each scheduling the next — runs allocation-free
// once the freelist and buckets are warm.
func TestCalendarSteadyStateNoAlloc(t *testing.T) {
	s := NewCalendar(1)
	var slot func()
	slot = func() { s.ScheduleAfter(1, 0, slot) }
	s.Schedule(0, 0, slot)
	for i := 0; i < 1000; i++ {
		s.Step()
	}
	if avg := testing.AllocsPerRun(1000, func() { s.Step() }); avg != 0 {
		t.Fatalf("steady-state Step allocates %v times per slot", avg)
	}
}

func BenchmarkScheduleDispatchCalendar(b *testing.B) {
	s := NewCalendar(1)
	var slot func()
	slot = func() { s.ScheduleAfter(1, 0, slot) }
	s.Schedule(0, 0, slot)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
