package des

import (
	"fmt"
	"math"
)

// calendarQueue is the calendar (bucket) event backend of Brown's classic
// design, specialized for the kernel's slot-synchronous workloads: time is
// divided into "days" of a fixed bucket width, day d hashes to ring bucket
// d mod nbuckets, and extraction scans forward from the current day.  When
// consecutive event times advance by about one bucket width — the protocol
// engines schedule the next slot boundary τ or M·τ ahead — both insert and
// extract are O(1) amortized.  Events far in the future sit in their ring
// bucket and are skipped (not removed) whenever the scan passes their
// position in an earlier "year"; a full-ring scan without a match falls
// back to a direct minimum search, so arbitrary schedules stay correct,
// just not O(1).
//
// Cancellation is lazy: canceled events keep their slot until the scan
// reaches them, then are dropped.  Dispatch order is identical to the heap
// backend — eventLess compares (Time, Priority, seq) — which the
// equivalence tests pin on random schedules.
type calendarQueue struct {
	width   float64
	buckets [][]*Event
	mask    int64
	curDay  int64 // scan start; never above the earliest queued event's day
	size    int   // queued events, canceled included

	// cached memoizes the earliest live event between mutations so that a
	// next/pop pair costs one scan, not two.
	cached  *Event
	cachedB int // ring bucket holding cached
	cachedI int // index of cached within its bucket
}

const calendarInitialBuckets = 16

func newCalendarQueue(bucketWidth float64) *calendarQueue {
	if bucketWidth <= 0 || math.IsNaN(bucketWidth) || math.IsInf(bucketWidth, 0) {
		panic(fmt.Sprintf("des: calendar bucket width %v must be positive and finite", bucketWidth))
	}
	return &calendarQueue{
		width:   bucketWidth,
		buckets: make([][]*Event, calendarInitialBuckets),
		mask:    calendarInitialBuckets - 1,
	}
}

func (q *calendarQueue) day(t float64) int64 { return int64(math.Floor(t / q.width)) }

func (q *calendarQueue) push(e *Event) {
	if q.size >= 4*len(q.buckets) {
		q.grow()
	}
	d := q.day(e.Time)
	b := int(d & q.mask)
	q.buckets[b] = append(q.buckets[b], e)
	q.size++
	if q.size == 1 || d < q.curDay {
		q.curDay = d
	}
	if q.cached != nil && eventLess(e, q.cached) {
		q.cached = e
		q.cachedB = b
		q.cachedI = len(q.buckets[b]) - 1
	}
}

// grow doubles the ring and redistributes every queued event; amortized
// O(1) per push.  Physically dropped canceled events shrink size first.
func (q *calendarQueue) grow() {
	old := q.buckets
	q.buckets = make([][]*Event, 2*len(old))
	q.mask = int64(len(q.buckets) - 1)
	q.size = 0
	q.cached = nil
	for _, bucket := range old {
		for _, e := range bucket {
			if e.canceled {
				continue
			}
			b := int(q.day(e.Time) & q.mask)
			q.buckets[b] = append(q.buckets[b], e)
			q.size++
		}
	}
}

// dropAt swap-removes index i of bucket b, preserving the position of a
// tracked index (returned adjusted) when the swapped-in tail element was
// the tracked one.
func (q *calendarQueue) dropAt(b, i, tracked int) int {
	bucket := q.buckets[b]
	last := len(bucket) - 1
	if tracked == last {
		tracked = i
	}
	bucket[i] = bucket[last]
	bucket[last] = nil
	q.buckets[b] = bucket[:last]
	q.size--
	return tracked
}

// findMin locates the earliest live event and memoizes it; nil when the
// queue holds none.  Canceled events encountered along the way are
// physically dropped.
func (q *calendarQueue) findMin() *Event {
	if q.cached != nil {
		return q.cached
	}
	if q.size == 0 {
		return nil
	}
	// Calendar scan: the first day (from curDay) owning a live event
	// contains the global minimum — later days cannot hold earlier times.
	n := len(q.buckets)
	for scanned, d := 0, q.curDay; scanned < n; scanned, d = scanned+1, d+1 {
		b := int(d & q.mask)
		best, bestIdx := (*Event)(nil), -1
		bucket := q.buckets[b]
		for i := 0; i < len(bucket); {
			e := bucket[i]
			if e.canceled {
				bestIdx = q.dropAt(b, i, bestIdx)
				bucket = q.buckets[b]
				continue
			}
			if q.day(e.Time) == d && (best == nil || eventLess(e, best)) {
				best, bestIdx = e, i
			}
			i++
		}
		if best != nil {
			q.curDay = d
			q.cached, q.cachedB, q.cachedI = best, b, bestIdx
			return best
		}
	}
	// Every queued event lies more than a full ring ahead: locate the
	// minimum directly and jump the scan to its day.
	best, bestB, bestIdx := (*Event)(nil), -1, -1
	for b := range q.buckets {
		bucket := q.buckets[b]
		for i := 0; i < len(bucket); {
			e := bucket[i]
			if e.canceled {
				if b == bestB {
					bestIdx = q.dropAt(b, i, bestIdx)
				} else {
					q.dropAt(b, i, -1)
				}
				bucket = q.buckets[b]
				continue
			}
			if best == nil || eventLess(e, best) {
				best, bestB, bestIdx = e, b, i
			}
			i++
		}
	}
	if best == nil {
		return nil
	}
	q.curDay = q.day(best.Time)
	q.cached, q.cachedB, q.cachedI = best, bestB, bestIdx
	return best
}

func (q *calendarQueue) next() *Event { return q.findMin() }

func (q *calendarQueue) pop() *Event {
	e := q.findMin()
	if e == nil {
		return nil
	}
	q.dropAt(q.cachedB, q.cachedI, -1)
	q.cached = nil
	return e
}

// unlink is lazy: the canceled flag set by the caller makes the scan drop
// the event when it next passes; only the memoized minimum needs care.
func (q *calendarQueue) unlink(e *Event) {
	if q.cached == e {
		q.cached = nil
	}
}

func (q *calendarQueue) live() int {
	n := 0
	for _, bucket := range q.buckets {
		for _, e := range bucket {
			if !e.canceled {
				n++
			}
		}
	}
	return n
}
