// Package des is a deterministic discrete-event simulation kernel.
//
// It drives the full multi-station protocol simulator: stations schedule
// arrival events, the channel schedules slot-boundary and end-of-
// transmission events, and the kernel dispatches them in global time order.
// Determinism matters — two events at the same instant are dispatched in
// (priority, insertion-order) sequence, so a simulation run is a pure
// function of its seed.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback.  The pointer returned by Schedule stays
// valid until the event fires: fired events are recycled by the kernel
// for later Schedule calls (the engines schedule one event per slot, and
// the freelist makes that allocation-free), so a retained pointer must
// not be used — in particular not passed to Cancel — once the event has
// run.  Canceled events are never recycled.
type Event struct {
	// Time is the simulation time at which the event fires.
	Time float64
	// Priority breaks ties at equal times: lower fires first.  Use it to
	// order, e.g., "channel slot boundary" before "station reaction".
	Priority int
	// Fn is the callback; it runs with the clock set to Time.
	Fn func()

	seq      uint64 // insertion order, final tie-break
	index    int    // heap index, -1 when not queued
	canceled bool
}

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	if h[i].Priority != h[j].Priority {
		return h[i].Priority < h[j].Priority
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the clock and the pending-event set.
type Simulator struct {
	now        float64
	events     eventHeap
	seq        uint64
	dispatched uint64
	running    bool
	free       []*Event // fired events awaiting reuse
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Dispatched returns the number of events executed so far.
func (s *Simulator) Dispatched() uint64 { return s.dispatched }

// Pending returns the number of queued (non-canceled) events.
func (s *Simulator) Pending() int {
	n := 0
	for _, e := range s.events {
		if !e.canceled {
			n++
		}
	}
	return n
}

// Schedule queues fn to run at the absolute time t with the given
// priority.  Scheduling in the past panics — it always indicates a model
// bug.  The returned Event may be passed to Cancel.
func (s *Simulator) Schedule(t float64, priority int, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("des: scheduling at non-finite time %v", t))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
		*e = Event{Time: t, Priority: priority, Fn: fn, seq: s.seq}
	} else {
		e = &Event{Time: t, Priority: priority, Fn: fn, seq: s.seq}
	}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// ScheduleAfter queues fn to run delay time units from now.
func (s *Simulator) ScheduleAfter(delay float64, priority int, fn func()) *Event {
	return s.Schedule(s.now+delay, priority, fn)
}

// Cancel marks a queued event so it will not fire.  Canceling an already
// canceled event (or nil) is a no-op.  A fired event must not be passed:
// the kernel has recycled it, so the pointer may identify a different,
// still-queued event (see the Event doc).
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&s.events, e.index)
}

// Step dispatches the single next event.  It returns false when no events
// remain.
func (s *Simulator) Step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.Time
		s.dispatched++
		// Recycle before dispatch: the callback typically schedules the
		// next slot, which can then reuse this very event.
		fn := e.Fn
		e.Fn = nil
		s.free = append(s.free, e)
		fn()
		return true
	}
	return false
}

// Run dispatches events until the queue is empty.
func (s *Simulator) Run() {
	s.running = true
	for s.running && s.Step() {
	}
	s.running = false
}

// RunUntil dispatches events with Time <= tEnd, then advances the clock to
// exactly tEnd.  Events scheduled beyond tEnd remain queued.
func (s *Simulator) RunUntil(tEnd float64) {
	if tEnd < s.now {
		panic(fmt.Sprintf("des: RunUntil(%v) before now %v", tEnd, s.now))
	}
	s.running = true
	for s.running {
		// Peek.
		var next *Event
		for len(s.events) > 0 && s.events[0].canceled {
			heap.Pop(&s.events)
		}
		if len(s.events) == 0 {
			break
		}
		next = s.events[0]
		if next.Time > tEnd {
			break
		}
		s.Step()
	}
	s.running = false
	if s.now < tEnd {
		s.now = tEnd
	}
}

// Stop makes a Run/RunUntil in progress return after the current event.
func (s *Simulator) Stop() { s.running = false }
