// Package des is a deterministic discrete-event simulation kernel.
//
// It drives the full multi-station protocol simulator: stations schedule
// arrival events, the channel schedules slot-boundary and end-of-
// transmission events, and the kernel dispatches them in global time order.
// Determinism matters — two events at the same instant are dispatched in
// (priority, insertion-order) sequence, so a simulation run is a pure
// function of its seed.
//
// Two pending-event structures are available, selected at construction and
// dispatching in exactly the same order (the tests drive both against
// random schedules and demand identical pop sequences):
//
//   - a binary heap (New), O(log n) per operation — the general default;
//   - a calendar queue (NewCalendar), O(1) amortized insert and extract for
//     the slot-synchronous workloads the protocol engines generate, where
//     event times advance in near-uniform slot increments.
package des

import (
	"fmt"
	"math"
)

// Event is a scheduled callback.  The pointer returned by Schedule stays
// valid until the event fires: fired events are recycled by the kernel
// for later Schedule calls (the engines schedule one event per slot, and
// the freelist makes that allocation-free), so a retained pointer must
// not be used — in particular not passed to Cancel — once the event has
// run.  Canceled events are never recycled.
type Event struct {
	// Time is the simulation time at which the event fires.
	Time float64
	// Priority breaks ties at equal times: lower fires first.  Use it to
	// order, e.g., "channel slot boundary" before "station reaction".
	Priority int
	// Fn is the callback; it runs with the clock set to Time.
	Fn func()

	seq      uint64 // insertion order, final tie-break
	index    int    // heap index, -1 when not queued (heap backend only)
	canceled bool
}

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.canceled }

// eventLess is the kernel's total dispatch order.
func eventLess(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

// eventQueue is the pending-event set.  Implementations must dispatch in
// eventLess order.
type eventQueue interface {
	push(e *Event)
	// next returns the earliest non-canceled event without removing it,
	// physically discarding canceled events as they surface; nil when none
	// remain.
	next() *Event
	// pop removes and returns the earliest non-canceled event; nil when
	// none remain.
	pop() *Event
	// unlink removes a just-canceled event eagerly where the structure
	// affords it; lazy implementations leave the canceled flag to pop/next.
	unlink(e *Event)
	// live counts queued non-canceled events.
	live() int
}

// QueueKind selects the pending-event structure backing a Simulator.
type QueueKind int

const (
	// QueueHeap is the binary-heap backend, O(log n) per operation.
	QueueHeap QueueKind = iota
	// QueueCalendar is the calendar-queue backend, O(1) amortized for
	// slot-synchronous workloads (see NewCalendar).
	QueueCalendar
)

// String implements fmt.Stringer.
func (k QueueKind) String() string {
	switch k {
	case QueueHeap:
		return "heap"
	case QueueCalendar:
		return "calendar"
	default:
		return fmt.Sprintf("QueueKind(%d)", int(k))
	}
}

// Simulator owns the clock and the pending-event set.
type Simulator struct {
	now        float64
	q          eventQueue
	seq        uint64
	dispatched uint64
	running    bool
	free       []*Event // fired events awaiting reuse
}

// New returns an empty simulator with the clock at zero, backed by the
// binary heap.
func New() *Simulator {
	return &Simulator{q: &heapQueue{}}
}

// NewCalendar returns an empty simulator backed by a calendar queue with
// the given bucket width — use the workload's characteristic inter-event
// gap (the slot time τ for the protocol engines).  It panics on a
// non-positive or non-finite width.
func NewCalendar(bucketWidth float64) *Simulator {
	return &Simulator{q: newCalendarQueue(bucketWidth)}
}

// NewWithQueue returns an empty simulator backed by the selected queue
// kind; bucketWidth parameterizes QueueCalendar and is ignored for
// QueueHeap.
func NewWithQueue(kind QueueKind, bucketWidth float64) *Simulator {
	switch kind {
	case QueueHeap:
		return New()
	case QueueCalendar:
		return NewCalendar(bucketWidth)
	default:
		panic(fmt.Sprintf("des: unknown queue kind %d", kind))
	}
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Dispatched returns the number of events executed so far.
func (s *Simulator) Dispatched() uint64 { return s.dispatched }

// Pending returns the number of queued (non-canceled) events.
func (s *Simulator) Pending() int { return s.q.live() }

// Schedule queues fn to run at the absolute time t with the given
// priority.  Scheduling in the past panics — it always indicates a model
// bug.  The returned Event may be passed to Cancel.
func (s *Simulator) Schedule(t float64, priority int, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling at %v before now %v", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("des: scheduling at non-finite time %v", t))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
		*e = Event{Time: t, Priority: priority, Fn: fn, seq: s.seq}
	} else {
		e = &Event{Time: t, Priority: priority, Fn: fn, seq: s.seq}
	}
	s.seq++
	s.q.push(e)
	return e
}

// ScheduleAfter queues fn to run delay time units from now.
func (s *Simulator) ScheduleAfter(delay float64, priority int, fn func()) *Event {
	return s.Schedule(s.now+delay, priority, fn)
}

// Cancel marks a queued event so it will not fire.  Canceling an already
// canceled event (or nil) is a no-op.  A fired event must not be passed:
// the kernel has recycled it, so the pointer may identify a different,
// still-queued event (see the Event doc).
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	s.q.unlink(e)
}

// Step dispatches the single next event.  It returns false when no events
// remain.
func (s *Simulator) Step() bool {
	e := s.q.pop()
	if e == nil {
		return false
	}
	s.now = e.Time
	s.dispatched++
	// Recycle before dispatch: the callback typically schedules the
	// next slot, which can then reuse this very event.
	fn := e.Fn
	e.Fn = nil
	s.free = append(s.free, e)
	fn()
	return true
}

// Run dispatches events until the queue is empty.
func (s *Simulator) Run() {
	s.running = true
	for s.running && s.Step() {
	}
	s.running = false
}

// RunUntil dispatches events with Time <= tEnd, then advances the clock to
// exactly tEnd.  Events scheduled beyond tEnd remain queued.
func (s *Simulator) RunUntil(tEnd float64) {
	if tEnd < s.now {
		panic(fmt.Sprintf("des: RunUntil(%v) before now %v", tEnd, s.now))
	}
	s.running = true
	for s.running {
		next := s.q.next()
		if next == nil || next.Time > tEnd {
			break
		}
		s.Step()
	}
	s.running = false
	if s.now < tEnd {
		s.now = tEnd
	}
}

// Stop makes a Run/RunUntil in progress return after the current event.
func (s *Simulator) Stop() { s.running = false }
