package tournament

import (
	"math"
	"testing"

	"windowctl/internal/protocol"
	"windowctl/internal/window"
)

// The policy must satisfy the full plugin surface: the Protocol method
// set, per-station forking, and self-validation.
var (
	_ protocol.Protocol       = Policy{}
	_ window.ForkablePolicy   = Policy{}
	_ protocol.SelfValidating = Policy{}
)

func TestNew(t *testing.T) {
	p, err := New(1.1, 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Length, 1.1/0.02; got != want {
		t.Errorf("Length = %v, want g/lambda = %v", got, want)
	}
	if err := window.Validate(p); err != nil {
		t.Errorf("fresh policy fails validation: %v", err)
	}
	for _, bad := range []struct{ g, lambda float64 }{
		{0, 0.02}, {-1, 0.02}, {math.NaN(), 0.02}, {math.Inf(1), 0.02},
		{1.1, 0}, {1.1, -3}, {1.1, math.NaN()}, {1.1, math.Inf(1)},
	} {
		if _, err := New(bad.g, bad.lambda, 7); err == nil {
			t.Errorf("New(%v, %v) accepted", bad.g, bad.lambda)
		}
	}
}

func TestValidatePolicy(t *testing.T) {
	good, _ := New(1.1, 0.02, 7)
	if err := good.ValidatePolicy(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Policy{
		{},                                   // nothing set
		{Length: 55},                         // no coin sequence
		{Length: -1, Rng: good.Rng},          // negative window
		{Length: math.NaN(), Rng: good.Rng},  // NaN window
		{Length: math.Inf(1), Rng: good.Rng}, // infinite window
	} {
		if err := bad.ValidatePolicy(); err == nil {
			t.Errorf("ValidatePolicy accepted %+v", bad)
		}
	}
}

// TestDecisions pins the per-slot contract: a constant window over the
// unexamined past, fair splits, no element-(4) discard.
func TestDecisions(t *testing.T) {
	p, _ := New(2.0, 0.1, 7)
	v := window.View{Now: 100, TPast: 30}
	w := p.InitialWindow(v)
	if w.Start != 30 || w.End != 50 {
		t.Errorf("InitialWindow = %+v, want [30, 50] (TPast + g/lambda)", w)
	}
	if got := p.SplitFraction(v, w, 0); got != 0.5 {
		t.Errorf("SplitFraction = %v, want 0.5", got)
	}
	if p.Discards() {
		t.Error("tournament MAC claims element-(4) discards")
	}
	if p.Name() != Name {
		t.Errorf("Name() = %q", p.Name())
	}
}

// TestCoinDeterminism pins the seeded coin: the same seed replays the
// same side sequence, a different seed diverges somewhere, and a fork
// stays in lockstep with its original — the property the multi-station
// engine's per-station replicas rely on.
func TestCoinDeterminism(t *testing.T) {
	const n = 256
	v := window.View{Now: 100, TPast: 30}
	w := window.Window{Start: 30, End: 50}
	draw := func(p Policy) []window.Side {
		sides := make([]window.Side, n)
		for i := range sides {
			sides[i] = p.ChooseSide(v, w, i)
		}
		return sides
	}

	a, _ := New(2.0, 0.1, 42)
	b, _ := New(2.0, 0.1, 42)
	fork := a.Fork().(Policy)
	sa, sfork, sb := draw(a), draw(fork), draw(b)
	diverged := false
	for i := 0; i < n; i++ {
		if sa[i] != sb[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
		if sa[i] != sfork[i] {
			t.Fatalf("fork left lockstep at draw %d", i)
		}
		if sa[i] != window.Older {
			diverged = true // saw at least one Newer: the coin is live
		}
	}
	if !diverged {
		t.Error("256 coin flips all landed Older — coin looks constant")
	}

	other, _ := New(2.0, 0.1, 43)
	so := draw(other)
	same := true
	for i := 0; i < n; i++ {
		if sa[i] != so[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 256-flip sequence")
	}
}

// TestRegistered checks the zoo entry: the builder derives the window
// from (G, lambda) and the coin from the run seed.
func TestRegistered(t *testing.T) {
	info, ok := protocol.Get(Name)
	if !ok {
		t.Fatal("tournament not registered")
	}
	if info.Citation == "" {
		t.Error("zoo entry has no citation")
	}
	pol, err := protocol.Build(Name, protocol.Params{
		Tau: 1, M: 25, Lambda: 0.02, K: 50, G: 1.3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	tp, ok := pol.(Policy)
	if !ok {
		t.Fatalf("built %T, want tournament.Policy", pol)
	}
	if got, want := tp.Length, 1.3/0.02; got != want {
		t.Errorf("built Length = %v, want G/lambda = %v", got, want)
	}
	if _, err := protocol.Build(Name, protocol.Params{Tau: 1, M: 25, K: 50}); err == nil {
		t.Error("builder accepted invalid Params")
	}
}
