package tournament

import (
	"fmt"
	"math"

	"windowctl/internal/protocol"
	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

// Name is the registry name of this protocol.
const Name = "tournament"

// seedTag is mixed into the run seed to derive the tournament coin
// sequence, keeping it distinct from every other protocol's randomness
// at the same seed.
const seedTag = 0x707e4a3e27a1c0de

// Policy is the constant-window tournament MAC.  The initial window
// always covers the oldest Length's worth of arrival time and each
// split side is decided by a common fair coin — one tournament round
// per split.  There is no sender-side discard.
type Policy struct {
	// Length is the constant window length (arrival-time span per
	// tournament); required.
	Length float64
	// Rng is the common coin sequence shared by all stations; required.
	Rng *rngutil.Stream
}

// New builds a tournament policy whose constant window holds G
// expected contenders at arrival rate lambda, with the coin sequence
// derived from seed.
func New(g, lambda float64, seed uint64) (Policy, error) {
	if g <= 0 || math.IsNaN(g) || math.IsInf(g, 0) {
		return Policy{}, fmt.Errorf("tournament: need positive finite window content (got %v)", g)
	}
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return Policy{}, fmt.Errorf("tournament: need positive finite lambda (got %v)", lambda)
	}
	return Policy{
		Length: g / lambda,
		Rng:    rngutil.New(rngutil.Mix64(seed, seedTag)),
	}, nil
}

// Name implements protocol.Protocol.
func (t Policy) Name() string { return Name }

// InitialWindow implements protocol.Protocol: a constant-length window
// over the oldest unexamined arrival time.  The engine clamps the end
// to the present.
func (t Policy) InitialWindow(v window.View) window.Window {
	return window.Window{Start: v.TPast, End: v.TPast + t.Length}
}

// ChooseSide implements protocol.Protocol: each split is one
// tournament round, decided by the common fair coin.
func (t Policy) ChooseSide(window.View, window.Window, int) window.Side {
	if t.Rng.Bernoulli(0.5) {
		return window.Older
	}
	return window.Newer
}

// SplitFraction implements protocol.Protocol: fair tournaments halve.
func (t Policy) SplitFraction(window.View, window.Window, int) float64 { return 0.5 }

// Discards implements protocol.Protocol: the MAC has no deadline
// knowledge, so element (4) is off and losses are deadline expiries.
func (t Policy) Discards() bool { return false }

// Fork implements window.ForkablePolicy: replicas share the coin
// sequence so per-station copies stay in lockstep.
func (t Policy) Fork() window.Policy {
	return Policy{Length: t.Length, Rng: t.Rng.Clone()}
}

// ValidatePolicy implements window.SelfValidating.
func (t Policy) ValidatePolicy() error {
	if t.Length <= 0 || math.IsNaN(t.Length) || math.IsInf(t.Length, 0) {
		return fmt.Errorf("tournament: need positive finite window length (got %v)", t.Length)
	}
	if t.Rng == nil {
		return fmt.Errorf("tournament: need a common coin sequence (Rng)")
	}
	return nil
}

func init() {
	protocol.MustRegister(protocol.Info{
		Name:     Name,
		Summary:  "constant-window tournament MAC: fixed window size, coin-flip splits, no sender discard",
		Citation: "Galtier, INRIA RR-6396 / Orange Labs, 2007",
		New: func(p protocol.Params) (protocol.Protocol, error) {
			if err := p.Validate(); err != nil {
				return nil, err
			}
			return New(p.WindowContent(), p.Lambda, p.Seed)
		},
	})
}
