// Package tournament implements Galtier's constant-window tournament
// MAC (INRIA RR-6396, Orange Labs 2007) as a protocol plugin.
//
// In Galtier's scheme contenders resolve a collision by a tournament:
// each round, every surviving contender flips a fair coin and only one
// cohort advances, until a single winner transmits.  The congestion
// window is held *constant* — the protocol never adapts window size to
// the backlog, which is exactly what makes it cheap to implement and
// interesting as a competitor to the paper's load-adaptive controlled
// window.
//
// The mapping onto the time-window engine is exact, not approximate:
// under Poisson arrivals the messages inside any window are i.i.d.
// uniform over it, so halving a window assigns each contender to a
// side by an independent fair coin — a window split with a randomly
// chosen side IS one tournament round.  The plugin therefore enables a
// constant-length window (G/λ of arrival time, so the expected number
// of contenders per tournament stays at G) and plays each round by a
// common seeded coin flip.  Unlike the controlled protocol it neither
// tracks the backlog horizon (beyond the resolver's shared interval
// bookkeeping) nor discards at the sender: losses are pure deadline
// expiries, as in Galtier's WLAN setting where the MAC has no deadline
// knowledge.  See docs/THEORY.md for how its assumptions map onto the
// paper's (ρ′, K, M) parameterization.
//
// All stations share the coin sequence (window.ForkablePolicy), so the
// multi-station engine keeps them in lockstep the same way it does the
// RANDOM baseline.
package tournament
