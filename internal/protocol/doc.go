// Package protocol is the plugin surface of the simulator: it defines the
// Protocol interface every multiple-access MAC in the zoo implements, a
// registry that maps canonical protocol names to validated builders, and
// the builtin ports of the paper's controlled window protocol and the
// [Kurose 83] FCFS/LCFS/RANDOM baselines.
//
// A Protocol is the per-slot decision surface the engines drive through
// window.Resolver: it chooses the enabled set (InitialWindow and, after a
// collision, ChooseSide/SplitFraction), observes the common ternary
// channel feedback through the resolver state machine, and exposes the
// paper's element-(4) deadline-discard hook (Discards, optionally
// tightened by the Admission capability).  Every station runs an
// identical copy on identical feedback — implementations must therefore
// be deterministic functions of their inputs, with any randomness drawn
// from an explicitly seeded common sequence (window.ForkablePolicy).
//
// Protocols register themselves under a canonical lowercase name
// (Register / MustRegister, usually from an init function) and are
// instantiated per run from a Params value (Build).  Anything registered
// here is automatically reachable from sim.Config.Protocol, the
// figure-7 and degradation pipelines, the sweep grid's discipline axis
// and the -protocol flag of cmd/windowsim, cmd/sweep and cmd/figures —
// with loss curves, conservation checking, fault injection and the
// content-addressed sweep cache for free.
//
// The shipped zoo lives in the subpackages tournament (Galtier's
// constant-window tournament MAC) and acdc (admission-control
// delay-constrained random access); subpackage zoo links them all.
// docs/PROTOCOLS.md is the protocol-author guide: the full interface
// contract (slot lifecycle, feedback semantics, fault-tolerant mode,
// determinism and seeding rules, conservation invariants) and a worked
// "write your own MAC" walkthrough.
package protocol
