package protocol

import (
	"fmt"
	"math"

	"windowctl/internal/queueing"
	"windowctl/internal/window"
)

// Protocol is the decision surface of one multiple-access MAC protocol.
// Its method set is exactly window.Policy — the per-slot contract the
// resolver state machine drives — so any Protocol plugs into all three
// engines unchanged, and every existing window.Policy already satisfies
// Protocol.  The methods correspond to the paper's four control
// elements: InitialWindow is elements (1)+(2) (where the window starts
// and how long it is), ChooseSide is element (3) (which part of a split
// to enable first), SplitFraction is the cut point, and Discards is
// element (4) (sender-side deadline discard).
//
// Feedback observation is indirect by design: the engines feed the
// common ternary channel outcome (Idle / Success / Collision, plus
// Erased under fault injection) into a window.Resolver, which calls
// back into the protocol only at decision points.  A protocol therefore
// never sees raw feedback it could mis-handle — the resolver owns the
// split bookkeeping and the fault-tolerant recovery path, and the
// protocol owns only the choices.  See docs/PROTOCOLS.md for the full
// slot lifecycle.
//
// Implementations must be deterministic functions of (View, Window,
// depth): every station runs an identical copy on identical feedback
// and the engines exploit that lockstep.  Randomized protocols must
// draw from an explicitly seeded common sequence and implement
// window.ForkablePolicy so per-station replicas replay the same
// decisions.
type Protocol = window.Policy

// Admission is an optional capability: a protocol that refuses service
// to messages before they are strictly deadline-dead.  AdmissionDelay
// returns the effective element-(4) discard constraint D given the
// deadline k — messages older than D are dropped at the sender even
// though they could still (just barely) make the deadline.  The engines
// clamp the result to (0, k]; returning k (or anything outside the
// range) keeps the paper's pure deadline discard.
//
// This models admission-control MACs (AC/DC-RA): shedding load early
// keeps the contention process stable under bursts, trading a few
// salvageable messages for bounded delay on the admitted ones.
type Admission interface {
	// AdmissionDelay maps the deadline k to the effective sender-side
	// discard constraint.
	AdmissionDelay(k float64) float64
}

// SelfValidating is an optional capability: a protocol that can check
// its own static configuration.  window.Validate — which the engines
// call once at start-up — invokes it for policy types it does not know
// structurally, so third-party plugins get the same fail-fast
// misconfiguration errors as the builtins.
type SelfValidating = window.SelfValidating

// Params carries everything a Builder may need to materialize a
// protocol instance for one run.  The fields mirror the paper's
// parameterization; builders ignore what they do not use.
type Params struct {
	// Tau is the slot time (end-to-end propagation delay); required.
	Tau float64
	// M is the mean message length in slots; required.
	M float64
	// Lambda is the network-wide message arrival rate λ′; required.
	Lambda float64
	// K is the delay constraint (absolute time); may be +Inf for
	// unconstrained runs.
	K float64
	// G overrides the mean initial-window content (element (2)); 0
	// selects the paper's heuristic optimum G*.
	G float64
	// SplitFraction overrides where windows are cut; 0 means the
	// protocol's default (the paper's ½).  Must lie in (0,1) when set.
	SplitFraction float64
	// Seed drives any common random sequence the protocol carries.
	// Builders must derive their streams from it via rngutil.Mix64 with
	// a protocol-specific tag so distinct protocols at the same seed do
	// not share randomness.
	Seed uint64
}

// Validate checks the parameter ranges shared by all builders.
func (p Params) Validate() error {
	if p.Tau <= 0 || math.IsNaN(p.Tau) || math.IsInf(p.Tau, 0) {
		return fmt.Errorf("protocol: need positive finite Tau (got %v)", p.Tau)
	}
	if p.M <= 0 || math.IsNaN(p.M) || math.IsInf(p.M, 0) {
		return fmt.Errorf("protocol: need positive finite M (got %v)", p.M)
	}
	if p.Lambda <= 0 || math.IsNaN(p.Lambda) || math.IsInf(p.Lambda, 0) {
		return fmt.Errorf("protocol: need positive finite Lambda (got %v)", p.Lambda)
	}
	if p.K <= 0 || math.IsNaN(p.K) {
		return fmt.Errorf("protocol: need positive K (got %v)", p.K)
	}
	if p.G < 0 || math.IsNaN(p.G) || math.IsInf(p.G, 0) {
		return fmt.Errorf("protocol: negative window content G %v", p.G)
	}
	if p.SplitFraction != 0 && (p.SplitFraction <= 0 || p.SplitFraction >= 1 || math.IsNaN(p.SplitFraction)) {
		return fmt.Errorf("protocol: SplitFraction %v outside (0,1)", p.SplitFraction)
	}
	return nil
}

// WindowContent returns the mean initial-window content to use: G when
// set, otherwise the paper's heuristic optimum G* (the element-(2) g
// minimizing mean windowing time per scheduled message).
func (p Params) WindowContent() float64 {
	if p.G > 0 {
		return p.G
	}
	return queueing.OptimalWindowContent()
}
