package protocol_test

import (
	"fmt"

	"windowctl/internal/protocol"
	"windowctl/internal/sim"
	"windowctl/internal/window"
)

// evenSplit is a minimal third-party protocol: a fixed-length window
// over the oldest unexamined arrival time, always resolving the older
// half first, with no sender-side discard.  It exists to show the
// complete plugin surface — the four decision methods plus a registry
// builder — in one screen of code; docs/PROTOCOLS.md walks through a
// richer version of the same construction.
type evenSplit struct {
	length float64 // window length in time units
}

func (e evenSplit) Name() string { return "example-even-split" }

func (e evenSplit) InitialWindow(v window.View) window.Window {
	return window.Window{Start: v.TPast, End: v.TPast + e.length}
}

func (e evenSplit) ChooseSide(window.View, window.Window, int) window.Side {
	return window.Older
}

func (e evenSplit) SplitFraction(window.View, window.Window, int) float64 {
	return 0.5
}

func (e evenSplit) Discards() bool { return false }

// Example registers a trivial protocol and runs it through the global
// simulator by name, exactly as a plugin package would from its init
// function.
func Example() {
	err := protocol.Register(protocol.Info{
		Name:    "example-even-split",
		Summary: "fixed window, older half first, no sender discard",
		New: func(p protocol.Params) (protocol.Protocol, error) {
			if err := p.Validate(); err != nil {
				return nil, err
			}
			// Element (2): size the window to hold the mean content
			// G* of contending arrivals at rate λ′.
			return evenSplit{length: p.WindowContent() / p.Lambda}, nil
		},
	})
	if err != nil {
		fmt.Println("register:", err)
		return
	}

	// Selecting Protocol by name makes the engine build the instance
	// from this configuration's own parameters — replications and sweep
	// points each get a correctly parameterized copy.
	rep, err := sim.RunGlobal(sim.Config{
		Protocol: "example-even-split",
		Tau:      1, M: 25, Lambda: 0.5 / 25, K: 50,
		EndTime: 100000, Warmup: 5000, Seed: 1983,
	})
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	fmt.Printf("offered %d messages, loss %.4f\n", rep.Offered, rep.Loss())
	// Output:
	// offered 1927 messages, loss 0.0774
}
