package protocol

import (
	"errors"
	"math"
	"strings"
	"testing"

	"windowctl/internal/queueing"
	"windowctl/internal/window"
)

// okParams is a valid builder input for the registry tests.
func okParams() Params {
	return Params{Tau: 1, M: 25, Lambda: 0.02, K: 50, Seed: 7}
}

// TestRegisterRejects pins the registry's admission rules: canonical
// names only, a real builder, and no double registration.  Plugin
// packages rely on MustRegister panicking at init time for any of these
// mistakes instead of silently shadowing another protocol.
func TestRegisterRejects(t *testing.T) {
	bad := []string{
		"",            // empty
		"9lives",      // starts with a digit
		"-dash",       // starts with a hyphen
		"CamelCase",   // uppercase
		"under_score", // underscore
		"dot.name",    // dot
		"sp ace",      // whitespace
		"unié",        // non-ASCII
	}
	builder := func(p Params) (Protocol, error) {
		return window.Controlled{Length: window.FixedG(1.1)}, nil
	}
	for _, name := range bad {
		if err := Register(Info{Name: name, New: builder}); err == nil {
			t.Errorf("Register accepted invalid name %q", name)
		}
	}
	if err := Register(Info{Name: "nil-builder-test"}); err == nil {
		t.Error("Register accepted a nil builder")
	}

	const name = "dup-test-proto"
	if err := Register(Info{Name: name, New: builder}); err != nil {
		t.Fatalf("first Register(%q): %v", name, err)
	}
	err := Register(Info{Name: name, New: builder})
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate Register(%q) returned %v, want already-registered error", name, err)
	}
}

// TestBuiltinsRegistered checks that the four classic disciplines are
// present, sorted, and build the exact pre-registry policy types.
func TestBuiltinsRegistered(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted/unique: %v", names)
		}
	}
	wantType := map[string]string{
		"controlled": "controlled",
		"fcfs":       "fcfs",
		"lcfs":       "lcfs",
		"random":     "random",
	}
	for name, want := range wantType {
		info, ok := Get(name)
		if !ok {
			t.Fatalf("builtin %q not registered (have %v)", name, names)
		}
		if info.Citation == "" || info.Summary == "" {
			t.Errorf("builtin %q missing zoo metadata: %+v", name, info)
		}
		pol, err := Build(name, okParams())
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if pol.Name() != want {
			t.Errorf("Build(%q).Name() = %q", name, pol.Name())
		}
		if err := window.Validate(pol); err != nil {
			t.Errorf("built %q fails window.Validate: %v", name, err)
		}
	}
	for _, name := range names {
		infos := Infos()
		found := false
		for _, info := range infos {
			if info.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("name %q missing from Infos()", name)
		}
	}
}

// TestBuildErrors pins the Build failure modes: unknown names list the
// registered ones, builder errors are wrapped with the protocol name,
// and a nil protocol from a buggy builder is rejected.
func TestBuildErrors(t *testing.T) {
	_, err := Build("no-such-protocol", okParams())
	if err == nil || !strings.Contains(err.Error(), `unknown protocol "no-such-protocol"`) {
		t.Fatalf("unknown-name error: %v", err)
	}
	if !strings.Contains(err.Error(), "controlled") {
		t.Errorf("unknown-name error does not list registrations: %v", err)
	}

	// Builders get invalid Params and must reject them (all builtins
	// route through Params.Validate).
	badParams := okParams()
	badParams.Lambda = 0
	if _, err := Build("controlled", badParams); err == nil {
		t.Error("Build(controlled) accepted Lambda = 0")
	}

	sentinel := errors.New("boom")
	MustRegister(Info{Name: "erroring-test-proto", New: func(Params) (Protocol, error) {
		return nil, sentinel
	}})
	_, err = Build("erroring-test-proto", okParams())
	if !errors.Is(err, sentinel) {
		t.Errorf("builder error not wrapped: %v", err)
	}

	MustRegister(Info{Name: "nil-return-test-proto", New: func(Params) (Protocol, error) {
		return nil, nil
	}})
	_, err = Build("nil-return-test-proto", okParams())
	if err == nil || !strings.Contains(err.Error(), "nil protocol") {
		t.Errorf("nil-returning builder not rejected: %v", err)
	}
}

// TestParamsValidate walks the shared parameter ranges every builder
// inherits.
func TestParamsValidate(t *testing.T) {
	if err := okParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	inf := math.Inf(1)
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"tau zero", func(p *Params) { p.Tau = 0 }},
		{"tau inf", func(p *Params) { p.Tau = inf }},
		{"m negative", func(p *Params) { p.M = -1 }},
		{"lambda zero", func(p *Params) { p.Lambda = 0 }},
		{"lambda nan", func(p *Params) { p.Lambda = math.NaN() }},
		{"k zero", func(p *Params) { p.K = 0 }},
		{"k nan", func(p *Params) { p.K = math.NaN() }},
		{"g negative", func(p *Params) { p.G = -0.5 }},
		{"g inf", func(p *Params) { p.G = inf }},
		{"split 1", func(p *Params) { p.SplitFraction = 1 }},
		{"split negative", func(p *Params) { p.SplitFraction = -0.25 }},
	}
	for _, c := range cases {
		p := okParams()
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", c.name, p)
		}
	}
	// +Inf K means an unconstrained run and is legal.
	p := okParams()
	p.K = inf
	if err := p.Validate(); err != nil {
		t.Errorf("K = +Inf rejected: %v", err)
	}
}

// TestWindowContent pins the element-(2) default: G when set, the
// paper's heuristic optimum G* otherwise.
func TestWindowContent(t *testing.T) {
	p := okParams()
	if got, want := p.WindowContent(), queueing.OptimalWindowContent(); got != want {
		t.Errorf("default window content %v, want G* = %v", got, want)
	}
	p.G = 2.5
	if got := p.WindowContent(); got != 2.5 {
		t.Errorf("explicit G ignored: got %v", got)
	}
}
