package protocol

import (
	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

// randomSeedTag is XORed into the run seed to derive the Random
// baseline's common sequence.  It predates the registry (it was
// hard-wired in core.System.Policy) and must never change: the 47
// engine goldens and the sweep golden CSV pin runs seeded through it.
const randomSeedTag = 0xC0FFEE

func init() {
	MustRegister(Info{
		Name:     "controlled",
		Summary:  "the paper's optimal policy: window at the discard horizon, older half first, sender-side deadline discard",
		Citation: "Kurose, Schwartz, Yemini, SIGCOMM 1983 (Theorem 1)",
		New: func(p Params) (Protocol, error) {
			if err := p.Validate(); err != nil {
				return nil, err
			}
			return window.Controlled{Length: window.FixedG(p.WindowContent()), Fraction: p.SplitFraction}, nil
		},
	})
	MustRegister(Info{
		Name:     "fcfs",
		Summary:  "uncontrolled global-FCFS baseline: oldest unexamined time first, no sender discard",
		Citation: "Kurose, Schwartz, Yemini, SIGCOMM 1983 (baseline)",
		New: func(p Params) (Protocol, error) {
			if err := p.Validate(); err != nil {
				return nil, err
			}
			return window.FCFS{Length: window.FixedG(p.WindowContent())}, nil
		},
	})
	MustRegister(Info{
		Name:     "lcfs",
		Summary:  "uncontrolled global-LCFS baseline: newest unexamined time first, no sender discard",
		Citation: "Kurose, Schwartz, Yemini, SIGCOMM 1983 (baseline)",
		New: func(p Params) (Protocol, error) {
			if err := p.Validate(); err != nil {
				return nil, err
			}
			return window.LCFS{Length: window.FixedG(p.WindowContent())}, nil
		},
	})
	MustRegister(Info{
		Name:     "random",
		Summary:  "uncontrolled random-order baseline: window placed uniformly in the unexamined span, coin-flip splits",
		Citation: "Kurose, Schwartz, Yemini, SIGCOMM 1983 (baseline)",
		New: func(p Params) (Protocol, error) {
			if err := p.Validate(); err != nil {
				return nil, err
			}
			return window.Random{
				Length: window.FixedG(p.WindowContent()),
				Rng:    rngutil.New(p.Seed ^ randomSeedTag),
			}, nil
		},
	})
}
