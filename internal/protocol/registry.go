package protocol

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Builder materializes a protocol instance for one run.  Builders must
// validate their inputs (returning an error, never panicking) and must
// construct any random stream from Params.Seed alone so a given
// (name, Params) pair always yields bit-identical behavior.
type Builder func(p Params) (Protocol, error)

// Info describes one registered protocol: the canonical name it is
// selected by (sim.Config.Protocol, the CLIs' -protocol flag, the sweep
// discipline axis), a one-line summary and literature citation for the
// zoo table, and the builder.
type Info struct {
	// Name is the canonical selector: lowercase letters, digits and
	// hyphens, starting with a letter.  Required, unique.
	Name string
	// Summary is a one-line description of the protocol's behavior.
	Summary string
	// Citation names the source (paper or report) the protocol comes
	// from; empty for ad-hoc protocols.
	Citation string
	// New builds an instance; required.
	New Builder
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Info{}
)

// validName reports whether a protocol name is canonical: non-empty,
// lowercase letters/digits/hyphens, starting with a letter.  The
// grammar keeps names safe as CLI flag values, comma-list elements and
// sweep cache-key components.
func validName(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
		case c == '-':
		default:
			return false
		}
	}
	return true
}

// Register adds a protocol to the registry.  It rejects empty or
// non-canonical names, duplicate registrations, and nil builders.
func Register(info Info) error {
	if !validName(info.Name) {
		return fmt.Errorf("protocol: invalid protocol name %q (want lowercase letters/digits/hyphens, starting with a letter)", info.Name)
	}
	if info.New == nil {
		return fmt.Errorf("protocol: protocol %q has a nil builder", info.Name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		return fmt.Errorf("protocol: protocol %q already registered", info.Name)
	}
	registry[info.Name] = info
	return nil
}

// MustRegister is Register for init functions: it panics on error.
func MustRegister(info Info) {
	if err := Register(info); err != nil {
		panic(err)
	}
}

// Get looks a protocol up by name.
func Get(name string) (Info, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	info, ok := registry[name]
	return info, ok
}

// Names returns all registered protocol names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Infos returns all registered protocols sorted by name (for zoo
// tables and -h listings).
func Infos() []Info {
	registryMu.RLock()
	defer registryMu.RUnlock()
	infos := make([]Info, 0, len(registry))
	for _, info := range registry {
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Build instantiates the named protocol from the given parameters.
func Build(name string, p Params) (Protocol, error) {
	info, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("protocol: unknown protocol %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	pol, err := info.New(p)
	if err != nil {
		return nil, fmt.Errorf("protocol: building %q: %w", name, err)
	}
	if pol == nil {
		return nil, fmt.Errorf("protocol: builder for %q returned a nil protocol", name)
	}
	return pol, nil
}
