// Package acdc implements admission-control delay-constrained random
// access (AC/DC-RA, Gürsu, Vilgelm, Alba, Berioli, Kellerer,
// arXiv:1903.11320) as a protocol plugin.
//
// AC/DC-RA targets machine-to-machine traffic where each message has a
// hard delay budget: instead of letting every backlogged message
// contend until its deadline expires on the channel, the protocol
// *admits* a message into contention only while it can still complete
// within a configured fraction of the budget, and sheds it at the
// sender the moment it cannot.  Shedding early keeps the contention
// process stable under bursts — the channel is never spent on messages
// that would miss their deadline anyway — at the cost of dropping a
// few messages that could still (just barely) have made it.
//
// The mapping onto the time-window engine strengthens the paper's
// element (4): the plugin keeps the controlled protocol's Theorem-1
// window placement and older-half splitting (contention resolution is
// traffic-agnostic, as AC/DC-RA requires) but discards at the sender
// against an *admission* constraint D = Budget·K with Budget ∈ (0,1],
// exposed through the protocol.Admission capability.  Budget = 1
// degenerates to the paper's pure deadline discard; smaller budgets
// trade admission drops for lower delay on admitted messages.  See
// docs/THEORY.md for how its assumptions map onto the paper's
// (ρ′, K, M) parameterization.
//
// The policy is fully deterministic — no common random sequence — so
// multi-station runs stay in lockstep structurally, exactly like the
// controlled protocol.
package acdc
