package acdc

import (
	"fmt"
	"math"

	"windowctl/internal/protocol"
	"windowctl/internal/window"
)

// Name is the registry name of this protocol.
const Name = "acdc"

// DefaultBudget is the fraction of the delay constraint within which a
// message must still be admissible; the registry builder uses it.
const DefaultBudget = 0.75

// Policy is the AC/DC-RA admission-control MAC: Theorem-1 window
// placement and older-half splitting, but the sender sheds any message
// older than Budget·K instead of waiting for the full deadline.
type Policy struct {
	// Length is the element-(2) rule; required.
	Length window.LengthRule
	// Budget is the admitted fraction of the delay constraint, in
	// (0,1]; 1 reproduces the paper's pure deadline discard.
	Budget float64
}

// New builds an AC/DC-RA policy with mean window content g and the
// given admission budget.
func New(g, budget float64) (Policy, error) {
	p := Policy{Budget: budget}
	if g <= 0 || math.IsNaN(g) || math.IsInf(g, 0) {
		return Policy{}, fmt.Errorf("acdc: need positive finite window content (got %v)", g)
	}
	p.Length = window.FixedG(g)
	if err := p.ValidatePolicy(); err != nil {
		return Policy{}, err
	}
	return p, nil
}

// Name implements protocol.Protocol.
func (a Policy) Name() string { return Name }

// InitialWindow implements protocol.Protocol: the window starts at the
// admission horizon (the engines move TPast up to now − Budget·K via
// AdmissionDelay), holding Theorem-1 placement within the admitted
// region.
func (a Policy) InitialWindow(v window.View) window.Window {
	l := a.Length(v)
	return window.Window{Start: v.TPast, End: v.TPast + l}
}

// ChooseSide implements protocol.Protocol: contention resolution is
// traffic-agnostic — always the older half, as in the controlled
// protocol.
func (a Policy) ChooseSide(window.View, window.Window, int) window.Side { return window.Older }

// SplitFraction implements protocol.Protocol.
func (a Policy) SplitFraction(window.View, window.Window, int) float64 { return 0.5 }

// Discards implements protocol.Protocol: admission control is
// sender-side shedding, so element (4) is in force.
func (a Policy) Discards() bool { return true }

// AdmissionDelay implements protocol.Admission: a message is admitted
// to contention only within Budget·K of its arrival.
func (a Policy) AdmissionDelay(k float64) float64 { return a.Budget * k }

// ValidatePolicy implements window.SelfValidating.
func (a Policy) ValidatePolicy() error {
	if a.Length == nil {
		return fmt.Errorf("acdc: need a Length rule")
	}
	if !(a.Budget > 0 && a.Budget <= 1) {
		return fmt.Errorf("acdc: admission budget %v outside (0,1]", a.Budget)
	}
	return nil
}

func init() {
	protocol.MustRegister(protocol.Info{
		Name:     Name,
		Summary:  fmt.Sprintf("admission-control delay-constrained random access: controlled windows, sender sheds messages older than %g·K", DefaultBudget),
		Citation: "Gürsu, Vilgelm, Alba, Berioli, Kellerer, arXiv:1903.11320",
		New: func(p protocol.Params) (protocol.Protocol, error) {
			if err := p.Validate(); err != nil {
				return nil, err
			}
			return New(p.WindowContent(), DefaultBudget)
		},
	})
}
