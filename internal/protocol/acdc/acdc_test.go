package acdc

import (
	"math"
	"testing"

	"windowctl/internal/protocol"
	"windowctl/internal/window"
)

// The policy must satisfy the Protocol method set plus the optional
// capabilities it advertises: admission control and self-validation.
var (
	_ protocol.Protocol       = Policy{}
	_ protocol.Admission      = Policy{}
	_ protocol.SelfValidating = Policy{}
)

func TestNew(t *testing.T) {
	p, err := New(1.1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if p.Budget != 0.6 {
		t.Errorf("Budget = %v", p.Budget)
	}
	if err := window.Validate(p); err != nil {
		t.Errorf("fresh policy fails validation: %v", err)
	}
	for _, bad := range []struct{ g, budget float64 }{
		{0, 0.6}, {-1, 0.6}, {math.NaN(), 0.6}, {math.Inf(1), 0.6},
		{1.1, 0}, {1.1, -0.5}, {1.1, 1.5}, {1.1, math.NaN()},
	} {
		if _, err := New(bad.g, bad.budget); err == nil {
			t.Errorf("New(%v, %v) accepted", bad.g, bad.budget)
		}
	}
	// Budget 1 is the paper's pure deadline discard and is legal.
	if _, err := New(1.1, 1); err != nil {
		t.Errorf("Budget = 1 rejected: %v", err)
	}
}

func TestValidatePolicy(t *testing.T) {
	for _, bad := range []Policy{
		{},                                      // nothing set
		{Budget: 0.75},                          // no length rule
		{Length: window.FixedG(1.1)},            // no budget
		{Length: window.FixedG(1.1), Budget: 2}, // budget > 1
		{Length: window.FixedG(1.1), Budget: -.1}, // negative budget
	} {
		if err := bad.ValidatePolicy(); err == nil {
			t.Errorf("ValidatePolicy accepted %+v", bad)
		}
	}
}

// TestDecisions pins the per-slot contract: Theorem-1 placement over
// the admitted region, older half first, element (4) in force.
func TestDecisions(t *testing.T) {
	p, _ := New(2.2, 0.75)
	v := window.View{Now: 100, TPast: 40, Lambda: 0.1}
	w := p.InitialWindow(v)
	if w.Start != 40 || w.End != 40+2.2/0.1 {
		t.Errorf("InitialWindow = %+v, want [40, %v]", w, 40+2.2/0.1)
	}
	if got := p.ChooseSide(v, w, 0); got != window.Older {
		t.Errorf("ChooseSide = %v, want Older", got)
	}
	if got := p.SplitFraction(v, w, 0); got != 0.5 {
		t.Errorf("SplitFraction = %v, want 0.5", got)
	}
	if !p.Discards() {
		t.Error("admission-control MAC reports no sender discard")
	}
	if p.Name() != Name {
		t.Errorf("Name() = %q", p.Name())
	}
}

// TestAdmissionDelay pins the capability the engines clamp on: the
// effective discard constraint is Budget·K, +Inf stays +Inf (the
// engines then fall back to the plain deadline).
func TestAdmissionDelay(t *testing.T) {
	p, _ := New(1.1, 0.75)
	if got := p.AdmissionDelay(50); got != 37.5 {
		t.Errorf("AdmissionDelay(50) = %v, want 37.5", got)
	}
	if got := p.AdmissionDelay(math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("AdmissionDelay(+Inf) = %v", got)
	}
	full, _ := New(1.1, 1)
	if got := full.AdmissionDelay(50); got != 50 {
		t.Errorf("Budget 1: AdmissionDelay(50) = %v, want 50 (pure deadline)", got)
	}
}

// TestRegistered checks the zoo entry builds with the default budget.
func TestRegistered(t *testing.T) {
	info, ok := protocol.Get(Name)
	if !ok {
		t.Fatal("acdc not registered")
	}
	if info.Citation == "" {
		t.Error("zoo entry has no citation")
	}
	pol, err := protocol.Build(Name, protocol.Params{
		Tau: 1, M: 25, Lambda: 0.02, K: 50, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	ap, ok := pol.(Policy)
	if !ok {
		t.Fatalf("built %T, want acdc.Policy", pol)
	}
	if ap.Budget != DefaultBudget {
		t.Errorf("built Budget = %v, want DefaultBudget %v", ap.Budget, DefaultBudget)
	}
	if _, err := protocol.Build(Name, protocol.Params{Tau: 1, M: 25, K: 50}); err == nil {
		t.Error("builder accepted invalid Params")
	}
}
