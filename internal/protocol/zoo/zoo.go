// Package zoo links every shipped protocol plugin into the registry.
// Importing it (for side effects) makes the full MAC zoo — the
// builtins plus tournament and acdc — reachable by name from
// sim.Config.Protocol, core.System, the sweep discipline axis and the
// CLIs' -protocol flag.  internal/core imports it, so anything built
// on the facade gets the zoo transitively.
package zoo

import (
	// The builtins (controlled, fcfs, lcfs, random) register from
	// internal/protocol itself; the plugins register from their own
	// packages.
	_ "windowctl/internal/protocol/acdc"
	_ "windowctl/internal/protocol/tournament"
)
