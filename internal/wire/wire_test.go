package wire

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"testing"
	"testing/iotest"
	"time"
)

// TestRoundTrip encodes a random frame sequence and decodes it back,
// both frame-by-frame from the flat buffer and through a Decoder fed
// one byte at a time (the worst-case refill/compaction path).
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	type sent struct {
		t      Type
		counts []uint32
		cum    uint64
	}
	var frames []sent
	var buf []byte
	for i := 0; i < 200; i++ {
		crc := rng.Intn(2) == 0
		switch rng.Intn(3) {
		case 0:
			counts := make([]uint32, rng.Intn(50))
			for j := range counts {
				counts[j] = rng.Uint32()
			}
			buf = AppendCounts(buf, counts, crc)
			frames = append(frames, sent{t: TypeCounts, counts: counts})
		case 1:
			c := rng.Uint64()
			buf = AppendControl(buf, TypeAck, c, crc)
			frames = append(frames, sent{t: TypeAck, cum: c})
		default:
			c := rng.Uint64()
			buf = AppendControl(buf, TypeOverloaded, c, crc)
			frames = append(frames, sent{t: TypeOverloaded, cum: c})
		}
	}

	check := func(t *testing.T, i int, f *Frame) {
		t.Helper()
		want := frames[i]
		if f.Type != want.t {
			t.Fatalf("frame %d: type %v, want %v", i, f.Type, want.t)
		}
		if want.t == TypeCounts {
			if f.NumCounts() != len(want.counts) {
				t.Fatalf("frame %d: %d counts, want %d", i, f.NumCounts(), len(want.counts))
			}
			var sum uint64
			for j, c := range want.counts {
				if got := f.Count(j); got != c {
					t.Fatalf("frame %d count %d: %d, want %d", i, j, got, c)
				}
				sum += uint64(c)
			}
			if got := f.Sum(); got != sum {
				t.Fatalf("frame %d: Sum %d, want %d", i, got, sum)
			}
		} else if got := f.Cumulative(); got != want.cum {
			t.Fatalf("frame %d: cumulative %d, want %d", i, got, want.cum)
		}
	}

	t.Run("flat", func(t *testing.T) {
		rest := buf
		var f Frame
		for i := range frames {
			n, err := Decode(rest, 0, &f)
			if err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			check(t, i, &f)
			rest = rest[n:]
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes", len(rest))
		}
	})
	t.Run("streamed-one-byte", func(t *testing.T) {
		dec := NewDecoder(iotest.OneByteReader(bytes.NewReader(buf)), 0)
		var f Frame
		for i := range frames {
			if err := dec.Next(&f); err != nil {
				t.Fatalf("frame %d: %v", i, err)
			}
			check(t, i, &f)
		}
		if err := dec.Next(&f); err != io.EOF {
			t.Fatalf("after last frame: %v, want io.EOF", err)
		}
	})
}

// TestDecodeErrors pins the protocol-violation taxonomy: each corruption
// maps to its sentinel, and every strict prefix of a valid frame is
// ErrShort, never a panic or a bogus success.
func TestDecodeErrors(t *testing.T) {
	valid := AppendCounts(nil, []uint32{1, 2, 3}, true)
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"bad magic", []byte{0x00, 1, 1, 0, 0, 0, 0, 4}, ErrMagic},
		{"bad version", []byte{Magic, 9, 1, 0, 0, 0, 0, 4}, ErrVersion},
		{"bad type", []byte{Magic, 1, 7, 0, 0, 0, 0, 4}, ErrType},
		{"reserved flags", []byte{Magic, 1, 1, 0x82, 0, 0, 0, 4}, ErrFlags},
		{"ragged counts", []byte{Magic, 1, 1, 0, 0, 0, 0, 3}, ErrRagged},
		{"oversized counts", []byte{Magic, 1, 1, 0, 0xFF, 0xFF, 0xFF, 0xFC}, ErrTooLarge},
		{"bad ack size", []byte{Magic, 1, 2, 0, 0, 0, 0, 4}, ErrBadControl},
		{"bad overloaded size", []byte{Magic, 1, 3, 0, 0, 0, 0, 12}, ErrBadControl},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var f Frame
			n, err := Decode(tc.buf, 0, &f)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode = (%d, %v), want %v", n, err, tc.want)
			}
			if n != 0 {
				t.Fatalf("consumed %d bytes of a bad frame", n)
			}
		})
	}
	t.Run("crc mismatch", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[len(bad)-1] ^= 0xFF
		var f Frame
		if _, err := Decode(bad, 0, &f); !errors.Is(err, ErrCRC) {
			t.Fatalf("Decode = %v, want ErrCRC", err)
		}
	})
	t.Run("prefixes are short", func(t *testing.T) {
		var f Frame
		for i := 0; i < len(valid); i++ {
			n, err := Decode(valid[:i], 0, &f)
			if !errors.Is(err, ErrShort) || n != 0 {
				t.Fatalf("prefix %d: Decode = (%d, %v), want (0, ErrShort)", i, n, err)
			}
		}
	})
	t.Run("small bound rejects", func(t *testing.T) {
		big := AppendCounts(nil, make([]uint32, 100), false)
		var f Frame
		if _, err := Decode(big, 10, &f); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("Decode with bound 10 = %v, want ErrTooLarge", err)
		}
	})
	t.Run("truncated stream", func(t *testing.T) {
		dec := NewDecoder(bytes.NewReader(valid[:len(valid)-2]), 0)
		var f Frame
		if err := dec.Next(&f); err != io.ErrUnexpectedEOF {
			t.Fatalf("Next = %v, want io.ErrUnexpectedEOF", err)
		}
	})
}

// repeatReader serves one encoded frame forever, a frame at a time —
// an infinite, allocation-free frame source for the steady-state test.
type repeatReader struct {
	frame []byte
	off   int
}

func (r *repeatReader) Read(p []byte) (int, error) {
	n := copy(p, r.frame[r.off:])
	r.off = (r.off + n) % len(r.frame)
	return n, nil
}

// TestSteadyStateZeroAlloc is the acceptance criterion's allocation
// half: encoding a frame into a reused buffer and decoding from a warm
// Decoder must not allocate.
func TestSteadyStateZeroAlloc(t *testing.T) {
	counts := []uint32{5, 10, 15, 20, 1, 2, 3, 4}
	buf := make([]byte, 0, 256)
	var f Frame
	if allocs := testing.AllocsPerRun(1000, func() {
		buf = AppendCounts(buf[:0], counts, true)
		n, err := Decode(buf, 0, &f)
		if err != nil || n != len(buf) {
			t.Fatalf("Decode = (%d, %v)", n, err)
		}
		if f.Sum() != 60 {
			t.Fatal("bad sum")
		}
	}); allocs != 0 {
		t.Errorf("encode+decode allocates %.1f per frame, want 0", allocs)
	}

	dec := NewDecoder(&repeatReader{frame: AppendCounts(nil, counts, false)}, 0)
	if err := dec.Next(&f); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := dec.Next(&f); err != nil {
			t.Fatal(err)
		}
		if f.Sum() != 60 {
			t.Fatal("bad sum")
		}
	}); allocs != 0 {
		t.Errorf("streamed decode allocates %.1f per frame, want 0", allocs)
	}
}

// sinkServer is a minimal in-test ingest peer: decode counts frames,
// accumulate the sum, ack per protocol, final ack at half-close.  When
// shedAfter > 0 it answers frame shedAfter+1 with an overloaded frame.
func sinkServer(t *testing.T, ln net.Listener, shedAfter uint64, total *uint64) {
	t.Helper()
	conn, err := ln.Accept()
	if err != nil {
		return
	}
	defer conn.Close()
	dec := NewDecoder(conn, 0)
	var f Frame
	var frames uint64
	var out []byte
	for {
		err := dec.Next(&f)
		if err == io.EOF {
			conn.Write(AppendControl(out[:0], TypeAck, frames, false))
			return
		}
		if err != nil {
			return
		}
		if f.Type != TypeCounts {
			return
		}
		if shedAfter > 0 && frames >= shedAfter {
			conn.Write(AppendControl(out[:0], TypeOverloaded, frames, false))
			return
		}
		*total += f.Sum()
		frames++
		if frames%AckEvery == 0 {
			conn.Write(AppendControl(out[:0], TypeAck, frames, false))
		}
	}
}

func loopbackPair(t *testing.T) (net.Listener, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln, ln.Addr().String()
}

// TestClientServer runs the full protocol over loopback TCP: credit
// blocking, batched flushes, per-frame round-trip callbacks, and a
// drain that accounts for every frame.
func TestClientServer(t *testing.T) {
	ln, addr := loopbackPair(t)
	var got uint64
	done := make(chan struct{})
	go func() { defer close(done); sinkServer(t, ln, 0, &got) }()

	var rtts int
	c, err := Dial(addr, ClientConfig{Credit: 32, CRC: true, OnAck: func(rtt time.Duration) {
		if rtt < 0 {
			t.Error("negative round trip")
		}
		rtts++
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const frames = 500
	var want uint64
	for i := 0; i < frames; i++ {
		counts := []uint32{uint32(i), 7}
		want += uint64(i) + 7
		if err := c.Send(counts); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if out := c.Sent() - c.Acked(); out > 32 {
			t.Fatalf("frame %d: %d frames outstanding, credit 32", i, out)
		}
	}
	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	<-done
	if got != want {
		t.Errorf("server absorbed %d messages, want %d", got, want)
	}
	if c.Acked() != frames {
		t.Errorf("acked %d frames, want %d", c.Acked(), frames)
	}
	if rtts != frames {
		t.Errorf("round-trip callback fired %d times, want %d", rtts, frames)
	}
}

// TestClientOverloaded: the server sheds mid-stream; the client must
// surface ErrOverloaded (not hang, not report success) and the ack
// counter must reflect only the absorbed prefix.
func TestClientOverloaded(t *testing.T) {
	ln, addr := loopbackPair(t)
	var got uint64
	go sinkServer(t, ln, 40, &got)

	c, err := Dial(addr, ClientConfig{Credit: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var sendErr error
	for i := 0; i < 200 && sendErr == nil; i++ {
		sendErr = c.Send([]uint32{1})
	}
	if sendErr == nil {
		sendErr = c.Drain()
	}
	if !errors.Is(sendErr, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", sendErr)
	}
	if c.Acked() != 40 {
		t.Errorf("acked %d frames, want the 40 absorbed before the shed", c.Acked())
	}
}

// TestClientRejectsOversizedBatch: the encoder enforces the same frame
// bound the decoder does.
func TestClientRejectsOversizedBatch(t *testing.T) {
	var buf bytes.Buffer
	c := NewClient(&buf, ClientConfig{MaxCounts: 8})
	if err := c.Send(make([]uint32, 9)); err == nil {
		t.Fatal("oversized batch accepted")
	}
}
