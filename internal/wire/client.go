package wire

import (
	"fmt"
	"io"
	"net"
	"time"
)

// ClientConfig tunes a Client.  The zero value is usable: credit 64, no
// CRC trailers, DefaultMaxCounts, no ack callback.
type ClientConfig struct {
	// Credit is the maximum number of unacknowledged counts frames; Send
	// blocks reading acks once it is reached.  Values below MinCredit
	// (including 0) are raised to max(MinCredit, 64).
	Credit int
	// CRC appends a CRC32C trailer to every outgoing frame.
	CRC bool
	// MaxCounts bounds the counts per outgoing frame (encoder side) and
	// is the decoder bound for the ack stream.
	MaxCounts int
	// OnAck, when set, is called once per acknowledged counts frame with
	// the time from the frame's socket write to its covering ack — the
	// per-frame ingest round trip under credit pressure.
	OnAck func(rtt time.Duration)
}

// Client is the sending half of the ingest protocol: it frames batch
// counts, batches frames into large writes, enforces the credit bound by
// consuming acks, and surfaces server overload as ErrOverloaded.  A
// Client is single-goroutine: all ack reading happens inside Send, Flush
// and Drain, so no locking or reader goroutine is needed.
type Client struct {
	conn    io.ReadWriter
	dec     *Decoder
	cfg     ClientConfig
	wbuf    []byte
	f       Frame
	sent    uint64 // counts frames appended (encoded)
	flushed uint64 // counts frames written to the socket
	acked   uint64 // counts frames acknowledged by the server
	times   []time.Time
	err     error
}

// flushThreshold triggers an automatic socket write when the encode
// buffer reaches this size, amortizing one syscall over many frames.
const flushThreshold = 32 << 10

// NewClient wraps a connection (anything io.ReadWriter; net.Conn in
// production) in a Client.
func NewClient(conn io.ReadWriter, cfg ClientConfig) *Client {
	if cfg.Credit < MinCredit {
		cfg.Credit = MinCredit
		if cfg.Credit < 64 {
			cfg.Credit = 64
		}
	}
	if cfg.MaxCounts <= 0 {
		cfg.MaxCounts = DefaultMaxCounts
	}
	return &Client{
		conn:  conn,
		dec:   NewDecoder(conn, cfg.MaxCounts),
		cfg:   cfg,
		wbuf:  make([]byte, 0, flushThreshold+MaxFrameSize(cfg.MaxCounts)),
		times: make([]time.Time, cfg.Credit),
	}
}

// Sent returns the number of counts frames handed to Send so far.
func (c *Client) Sent() uint64 { return c.sent }

// Acked returns the number of counts frames the server has acknowledged.
func (c *Client) Acked() uint64 { return c.acked }

// Send frames the batch counts and queues them for the socket.  It
// blocks consuming acks when the credit bound is reached, and flushes
// automatically when the encode buffer is full.
func (c *Client) Send(counts []uint32) error {
	if c.err != nil {
		return c.err
	}
	if len(counts) > c.cfg.MaxCounts {
		return c.fail(fmt.Errorf("wire: batch of %d counts exceeds the frame bound %d", len(counts), c.cfg.MaxCounts))
	}
	for c.sent-c.acked >= uint64(c.cfg.Credit) {
		if err := c.flush(); err != nil {
			return err
		}
		if err := c.readAck(); err != nil {
			return err
		}
	}
	c.wbuf = AppendCounts(c.wbuf, counts, c.cfg.CRC)
	c.sent++
	if len(c.wbuf) >= flushThreshold {
		return c.flush()
	}
	return nil
}

// Flush writes any buffered frames to the socket.
func (c *Client) Flush() error {
	if c.err != nil {
		return c.err
	}
	return c.flush()
}

func (c *Client) flush() error {
	if len(c.wbuf) == 0 {
		return nil
	}
	if _, err := c.conn.Write(c.wbuf); err != nil {
		return c.fail(err)
	}
	c.wbuf = c.wbuf[:0]
	// The frames just hit the socket: stamp them for round-trip timing.
	now := time.Now()
	for seq := c.flushed; seq < c.sent; seq++ {
		c.times[seq%uint64(len(c.times))] = now
	}
	c.flushed = c.sent
	return nil
}

// readAck consumes one server frame and applies it.
func (c *Client) readAck() error {
	if err := c.dec.Next(&c.f); err != nil {
		return c.fail(err)
	}
	switch c.f.Type {
	case TypeAck:
		c.applyAck(c.f.Cumulative())
		return nil
	case TypeOverloaded:
		c.applyAck(c.f.Cumulative())
		return c.fail(ErrOverloaded)
	}
	return c.fail(fmt.Errorf("wire: unexpected %s frame from server", c.f.Type))
}

func (c *Client) applyAck(cum uint64) {
	if cum > c.flushed {
		cum = c.flushed // a lying server must not corrupt the ring
	}
	now := time.Now()
	for seq := c.acked; seq < cum; seq++ {
		if c.cfg.OnAck != nil {
			c.cfg.OnAck(now.Sub(c.times[seq%uint64(len(c.times))]))
		}
	}
	if cum > c.acked {
		c.acked = cum
	}
}

// Drain flushes, half-closes the write side so the server emits its
// final ack, and consumes acks until every sent frame is accounted for.
// After Drain the client cannot send.  It returns ErrOverloaded when the
// server shed the tail of the stream.
func (c *Client) Drain() error {
	if c.err != nil {
		return c.err
	}
	if err := c.flush(); err != nil {
		return err
	}
	if cw, ok := c.conn.(interface{ CloseWrite() error }); ok {
		if err := cw.CloseWrite(); err != nil {
			return c.fail(err)
		}
	}
	for c.acked < c.sent {
		if err := c.readAck(); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return c.fail(fmt.Errorf("wire: server closed with %d of %d frames unacknowledged", c.sent-c.acked, c.sent))
			}
			return err
		}
	}
	return nil
}

// Close closes the underlying connection when it supports it.
func (c *Client) Close() error {
	if cl, ok := c.conn.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// Dial connects to a windowd TCP ingest address and wraps the
// connection in a Client.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewClient(conn, cfg), nil
}

func (c *Client) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return c.err
}
