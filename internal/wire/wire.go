// Package wire is the length-prefixed binary framing codec of windowd's
// TCP ingest plane.  It exists because the HTTP ingest path spends its
// budget on request overhead: at millions of messages per second the
// admission controller is limited not by the window protocol but by
// header parsing, response writing and per-request goroutine churn.  A
// frame here costs a fixed 8-byte header plus 4 bytes per batch count,
// and both directions of the codec are allocation-free in steady state,
// so the ingest plane can run at the speed of the scheduler it feeds.
//
// # Frame layout (version 1)
//
//	offset  size  field
//	0       1     magic 0x57 ('W')
//	1       1     version (0x01)
//	2       1     type: 1 counts, 2 ack, 3 overloaded
//	3       1     flags: bit 0 = CRC32C trailer present (other bits must be 0)
//	4       4     payload length N, big-endian uint32
//	8       N     payload
//	8+N     0|4   CRC32C (Castagnoli) over bytes [0, 8+N), big-endian
//
// A counts frame (client → server) carries N/4 big-endian uint32 batch
// counts; N must be a multiple of 4 and at most 4·MaxCounts for the
// decoder's configured bound.  An ack or overloaded frame (server →
// client) carries exactly 8 payload bytes: the big-endian uint64
// cumulative number of counts frames the server has absorbed on this
// connection.
//
// # Versioning and compatibility
//
// The version byte is a hard gate: a decoder only accepts frames of its
// own version, and any redefinition of the layout — new types beyond
// the three above, new flag bits, a different payload shape — must bump
// it.  Unknown types and unknown flag bits are decode errors rather
// than ignorable extensions precisely so a future version can assign
// them without silently corrupting old peers.
//
// # Flow control and overload
//
// The client may keep at most its credit (MinCredit or more) counts
// frames unacknowledged; the server acknowledges every AckEvery-th
// counts frame and sends a final ack when the client half-closes.
// Because credit ≥ 2·AckEvery, a client blocked on credit always has an
// ack boundary in flight, so the protocol cannot deadlock.  A server
// that is shedding load (draining, or past its owed-arrival bound)
// answers a counts frame with an overloaded frame instead of absorbing
// it and closes the connection; Client surfaces that as ErrOverloaded.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	// Magic is the first byte of every frame.
	Magic = 0x57
	// Version is the codec version this package encodes and accepts.
	Version = 1
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 8
	// CRCSize is the length of the optional CRC32C trailer.
	CRCSize = 4
	// DefaultMaxCounts bounds the batch counts per frame (payload 32 KiB)
	// unless the decoder is built with an explicit bound.
	DefaultMaxCounts = 8192
	// AckEvery is the server's acknowledgement cadence: one ack per
	// AckEvery counts frames (plus a final ack at half-close).
	AckEvery = 16
	// MinCredit is the smallest admissible client credit.  It is twice
	// AckEvery so a credit-blocked client always has an ack in flight.
	MinCredit = 2 * AckEvery
)

// flagCRC marks a frame carrying a CRC32C trailer; all other flag bits
// are reserved and rejected.
const flagCRC = 0x01

// Type identifies a frame's role on the wire.
type Type uint8

const (
	// TypeCounts is a client→server batch of uint32 arrival counts.
	TypeCounts Type = 1
	// TypeAck is a server→client cumulative frame acknowledgement.
	TypeAck Type = 2
	// TypeOverloaded is a server→client load-shed notice: the frame that
	// provoked it was NOT absorbed and the connection is closing.
	TypeOverloaded Type = 3
)

func (t Type) String() string {
	switch t {
	case TypeCounts:
		return "counts"
	case TypeAck:
		return "ack"
	case TypeOverloaded:
		return "overloaded"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Decode errors.  ErrShort alone means "valid so far, need more bytes";
// every other error is a protocol violation and the stream is dead.
var (
	ErrShort      = errors.New("wire: incomplete frame")
	ErrMagic      = errors.New("wire: bad magic byte")
	ErrVersion    = errors.New("wire: unsupported version")
	ErrType       = errors.New("wire: unknown frame type")
	ErrFlags      = errors.New("wire: reserved flag bits set")
	ErrTooLarge   = errors.New("wire: frame exceeds the configured bound")
	ErrRagged     = errors.New("wire: counts payload is not a multiple of 4")
	ErrBadControl = errors.New("wire: ack/overloaded payload is not 8 bytes")
	ErrCRC        = errors.New("wire: checksum mismatch")
	// ErrOverloaded is what Client returns once the server has answered
	// with an overloaded frame: the last frames were shed, not absorbed.
	ErrOverloaded = errors.New("wire: server overloaded")
)

// castagnoli is the CRC32C table; Castagnoli is hardware-accelerated on
// the platforms this service targets.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded frame.  Counts-frame accessors read the payload
// in place — the payload aliases the decoder's buffer and is only valid
// until the next decode into the same Frame or Decoder.
type Frame struct {
	Type    Type
	payload []byte
}

// NumCounts returns the number of batch counts in a counts frame.
func (f *Frame) NumCounts() int { return len(f.payload) / 4 }

// Count returns the i-th batch count of a counts frame.
func (f *Frame) Count(i int) uint32 {
	return binary.BigEndian.Uint32(f.payload[4*i:])
}

// Sum returns the total message count of a counts frame.  It cannot
// overflow: a frame holds at most 2^32 counts of at most 2^32-1 each.
func (f *Frame) Sum() uint64 {
	var sum uint64
	for p := f.payload; len(p) >= 4; p = p[4:] {
		sum += uint64(binary.BigEndian.Uint32(p))
	}
	return sum
}

// Cumulative returns the cumulative absorbed-frame count carried by an
// ack or overloaded frame.
func (f *Frame) Cumulative() uint64 {
	return binary.BigEndian.Uint64(f.payload)
}

// AppendCounts appends one counts frame carrying the given batch counts
// to dst and returns the extended slice.  With sufficient capacity in
// dst it performs no allocation.  It panics when len(counts) exceeds
// DefaultMaxCounts — the encoder-side mirror of the decode bound.
func AppendCounts(dst []byte, counts []uint32, crc bool) []byte {
	if len(counts) > DefaultMaxCounts {
		panic("wire: counts frame exceeds DefaultMaxCounts")
	}
	start := len(dst)
	dst = appendHeader(dst, TypeCounts, crc, 4*len(counts))
	for _, c := range counts {
		dst = binary.BigEndian.AppendUint32(dst, c)
	}
	return appendCRC(dst, start, crc)
}

// AppendControl appends an ack or overloaded frame carrying the
// cumulative absorbed-frame count.  It panics on a counts type.
func AppendControl(dst []byte, t Type, cumulative uint64, crc bool) []byte {
	if t != TypeAck && t != TypeOverloaded {
		panic("wire: AppendControl wants an ack or overloaded type")
	}
	start := len(dst)
	dst = appendHeader(dst, t, crc, 8)
	dst = binary.BigEndian.AppendUint64(dst, cumulative)
	return appendCRC(dst, start, crc)
}

func appendHeader(dst []byte, t Type, crc bool, n int) []byte {
	var flags byte
	if crc {
		flags = flagCRC
	}
	dst = append(dst, Magic, Version, byte(t), flags)
	return binary.BigEndian.AppendUint32(dst, uint32(n))
}

func appendCRC(dst []byte, start int, crc bool) []byte {
	if !crc {
		return dst
	}
	sum := crc32.Checksum(dst[start:], castagnoli)
	return binary.BigEndian.AppendUint32(dst, sum)
}

// Decode parses the first frame in buf into f and returns the number of
// bytes it occupies.  maxCounts bounds the batch counts a counts frame
// may carry (0 means DefaultMaxCounts).  When buf holds a prefix of a
// frame that is valid so far, Decode returns (0, ErrShort); any other
// error is a protocol violation.  Decode never reads past len(buf) and
// never allocates: f's payload aliases buf.
func Decode(buf []byte, maxCounts int, f *Frame) (int, error) {
	if maxCounts <= 0 {
		maxCounts = DefaultMaxCounts
	}
	// Validate the header prefix byte by byte so garbage is rejected as
	// early as possible — before waiting for bytes that will never come.
	if len(buf) < 1 {
		return 0, ErrShort
	}
	if buf[0] != Magic {
		return 0, ErrMagic
	}
	if len(buf) < 2 {
		return 0, ErrShort
	}
	if buf[1] != Version {
		return 0, fmt.Errorf("%w: got %d, want %d", ErrVersion, buf[1], Version)
	}
	if len(buf) < 3 {
		return 0, ErrShort
	}
	t := Type(buf[2])
	if t != TypeCounts && t != TypeAck && t != TypeOverloaded {
		return 0, fmt.Errorf("%w: %d", ErrType, buf[2])
	}
	if len(buf) < 4 {
		return 0, ErrShort
	}
	flags := buf[3]
	if flags&^byte(flagCRC) != 0 {
		return 0, fmt.Errorf("%w: 0x%02x", ErrFlags, flags)
	}
	if len(buf) < HeaderSize {
		return 0, ErrShort
	}
	n := int(binary.BigEndian.Uint32(buf[4:8]))
	switch t {
	case TypeCounts:
		if n > 4*maxCounts {
			return 0, fmt.Errorf("%w: %d payload bytes > %d", ErrTooLarge, n, 4*maxCounts)
		}
		if n%4 != 0 {
			return 0, fmt.Errorf("%w: %d bytes", ErrRagged, n)
		}
	default:
		if n != 8 {
			return 0, fmt.Errorf("%w: %d bytes", ErrBadControl, n)
		}
	}
	total := HeaderSize + n
	if flags&flagCRC != 0 {
		total += CRCSize
	}
	if len(buf) < total {
		return 0, ErrShort
	}
	if flags&flagCRC != 0 {
		want := binary.BigEndian.Uint32(buf[total-CRCSize : total])
		if got := crc32.Checksum(buf[:total-CRCSize], castagnoli); got != want {
			return 0, fmt.Errorf("%w: computed %08x, trailer %08x", ErrCRC, got, want)
		}
	}
	f.Type = t
	f.payload = buf[HeaderSize : HeaderSize+n]
	return total, nil
}

// MaxFrameSize returns the largest frame the given counts bound admits,
// including header and CRC trailer.
func MaxFrameSize(maxCounts int) int {
	if maxCounts <= 0 {
		maxCounts = DefaultMaxCounts
	}
	return HeaderSize + 4*maxCounts + CRCSize
}

// Decoder reads a frame stream from an io.Reader through one
// connection-scoped buffer sized from the frame bound.  Steady-state
// Next calls perform no allocations; decoded payloads alias the buffer
// and are valid until the next Next call.
type Decoder struct {
	r         io.Reader
	buf       []byte
	lo, hi    int // buffered bytes live in buf[lo:hi]
	maxCounts int
}

// NewDecoder builds a Decoder with the given per-frame counts bound
// (0 means DefaultMaxCounts).  The read buffer holds several maximal
// frames so one syscall feeds many decodes.
func NewDecoder(r io.Reader, maxCounts int) *Decoder {
	if maxCounts <= 0 {
		maxCounts = DefaultMaxCounts
	}
	size := 4 * MaxFrameSize(maxCounts)
	if size < 64<<10 {
		size = 64 << 10
	}
	return &Decoder{r: r, buf: make([]byte, size), maxCounts: maxCounts}
}

// Next decodes the next frame into f.  A clean end of stream at a frame
// boundary is io.EOF; an end of stream inside a frame is
// io.ErrUnexpectedEOF; protocol violations are the Decode errors.
func (d *Decoder) Next(f *Frame) error {
	for {
		n, err := Decode(d.buf[d.lo:d.hi], d.maxCounts, f)
		if err == nil {
			d.lo += n
			return nil
		}
		if !errors.Is(err, ErrShort) {
			return err
		}
		if err := d.fill(); err != nil {
			if err == io.EOF && d.lo != d.hi {
				return io.ErrUnexpectedEOF
			}
			return err
		}
	}
}

// fill reads more bytes into the buffer, compacting the partial frame to
// the front when the tail has no room.
func (d *Decoder) fill() error {
	if d.lo == d.hi {
		d.lo, d.hi = 0, 0
	} else if d.hi == len(d.buf) {
		copy(d.buf, d.buf[d.lo:d.hi])
		d.hi -= d.lo
		d.lo = 0
	}
	n, err := d.r.Read(d.buf[d.hi:])
	d.hi += n
	if n > 0 {
		return nil // bytes first; a terminal error resurfaces next call
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}
