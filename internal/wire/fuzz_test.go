package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecode throws torn, oversized and garbage byte streams at the
// decoder.  The contract under attack: Decode never panics, never
// over-reads (consumed bytes bounded by the input), never consumes a
// bad frame, and the streaming Decoder terminates on every input.
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendCounts(nil, []uint32{1, 2, 3}, false))
	f.Add(AppendCounts(nil, []uint32{0xFFFFFFFF, 0}, true))
	f.Add(AppendControl(nil, TypeAck, 1<<40, false))
	f.Add(AppendControl(nil, TypeOverloaded, 7, true))
	valid := AppendCounts(nil, []uint32{9, 9, 9, 9}, true)
	f.Add(valid[:len(valid)-3])                                 // torn frame
	f.Add([]byte{Magic, Version, 1, 0, 0xFF, 0xFF, 0xFF, 0xFF}) // huge length
	f.Add([]byte{Magic, 2, 1, 0, 0, 0, 0, 0})                   // future version
	f.Add(append(AppendCounts(nil, []uint32{4}, false), 0xDE, 0xAD))

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		n, err := Decode(data, DefaultMaxCounts, &fr)
		if n < 0 || n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		if err != nil && n != 0 {
			t.Fatalf("Decode consumed %d bytes AND returned %v", n, err)
		}
		if err == nil {
			if n < HeaderSize {
				t.Fatalf("accepted a %d-byte frame below the header size", n)
			}
			// Accessors on an accepted frame must be in-bounds.
			switch fr.Type {
			case TypeCounts:
				var sum uint64
				for i := 0; i < fr.NumCounts(); i++ {
					sum += uint64(fr.Count(i))
				}
				if sum != fr.Sum() {
					t.Fatalf("Sum %d != per-count total %d", fr.Sum(), sum)
				}
			case TypeAck, TypeOverloaded:
				_ = fr.Cumulative()
			default:
				t.Fatalf("accepted unknown type %v", fr.Type)
			}
			// A decoded frame must re-decode identically from its own bytes.
			var fr2 Frame
			n2, err2 := Decode(data[:n], DefaultMaxCounts, &fr2)
			if err2 != nil || n2 != n || fr2.Type != fr.Type {
				t.Fatalf("re-decode diverged: (%d, %v)", n2, err2)
			}
		}

		// The streaming decoder must terminate without panicking on any
		// byte stream, including with a tighter frame bound.
		dec := NewDecoder(bytes.NewReader(data), 16)
		for {
			if err := dec.Next(&fr); err != nil {
				if errors.Is(err, ErrShort) {
					t.Fatalf("Decoder surfaced ErrShort: %v", err)
				}
				break
			}
		}
	})
}
