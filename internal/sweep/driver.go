package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"windowctl/internal/core"
	"windowctl/internal/fault"
	"windowctl/internal/metrics"
)

// Options tunes a sweep run.
type Options struct {
	// Workers bounds the number of points evaluated concurrently; 0
	// means GOMAXPROCS, 1 means serial.  The outcomes are bit-identical
	// at every worker count: each point's random streams derive from
	// its identity, never from scheduling order.
	Workers int
	// Cache, when non-nil, answers points from the content-addressed
	// store and persists every freshly computed result.  Nil disables
	// caching entirely.
	Cache *Cache
	// MaxPoints, when positive, is the evaluation budget: Run refuses a
	// space that enumerates to more points, before doing any work.  A
	// guard against accidentally launching a week-long grid.
	MaxPoints int
	// FlushEvery bounds how many freshly computed results may sit
	// unflushed in the cache buffer; 0 means 4096.  A crashed sweep
	// loses at most this many points.
	FlushEvery int
	// Metrics, when non-nil, aggregates the slot-level counters of
	// every *executed* simulation run into one collector (cache hits
	// contribute nothing — their runs happened in an earlier sweep).
	// Each run gets its own fresh collector, so its conservation
	// invariants are still verified individually; the per-run counters
	// are merged in after the run.  Incompatible with Replications >= 2
	// (replications cannot share a collector).
	Metrics *metrics.SlotMetrics
}

// Outcome pairs a point with its (computed or cached) result.
type Outcome struct {
	Point  Point
	Key    string
	Result Result
	// Cached reports whether the result came from the cache.
	Cached bool
}

// Run enumerates the space and evaluates every point, answering what it
// can from the cache and fanning the misses over a sharded worker pool:
// the miss list is split into Workers contiguous shards, one persistent
// goroutine each, and results land in enumeration-order slots so the
// returned slice — and anything emitted from it — is bit-identical at
// any worker count and across cold/warm cache runs.
func Run(space Space, opt Options) ([]Outcome, error) {
	norm, err := space.Normalize()
	if err != nil {
		return nil, err
	}
	if opt.Metrics != nil && norm.Replications > 1 {
		return nil, fmt.Errorf("sweep: Metrics cannot aggregate replicated runs (replications share no collector)")
	}
	pts, err := norm.Enumerate()
	if err != nil {
		return nil, err
	}
	if opt.MaxPoints > 0 && len(pts) > opt.MaxPoints {
		return nil, fmt.Errorf("sweep: grid has %d points, over the %d-point budget (raise -points or shrink an axis)",
			len(pts), opt.MaxPoints)
	}

	outs := make([]Outcome, len(pts))
	var misses []int
	for i, p := range pts {
		key := p.Key()
		outs[i] = Outcome{Point: p, Key: key}
		if r, ok := opt.Cache.Get(key); ok {
			outs[i].Result = r
			outs[i].Cached = true
			continue
		}
		misses = append(misses, i)
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(misses) {
		workers = len(misses)
	}
	flushEvery := opt.FlushEvery
	if flushEvery <= 0 {
		flushEvery = 4096
	}

	// commit folds one computed result into the shared state: the cache
	// (with a bounded-staleness flush) and the aggregate collector.
	var mu sync.Mutex
	var commitErr error
	commit := func(i int, sm *metrics.SlotMetrics) {
		mu.Lock()
		defer mu.Unlock()
		if opt.Metrics != nil && sm != nil {
			opt.Metrics.Merge(sm)
		}
		if commitErr != nil {
			return
		}
		if err := opt.Cache.Put(outs[i].Key, outs[i].Point, outs[i].Result); err != nil {
			commitErr = err
			return
		}
		if opt.Cache.Dirty() >= flushEvery {
			commitErr = opt.Cache.Flush()
		}
	}
	evalSpan := func(lo, hi int) {
		for _, i := range misses[lo:hi] {
			var sm *metrics.SlotMetrics
			if opt.Metrics != nil {
				sm = &metrics.SlotMetrics{}
			}
			outs[i].Result = evaluate(outs[i].Point, sm)
			commit(i, sm)
		}
	}

	if workers <= 1 {
		evalSpan(0, len(misses))
	} else {
		chunk := (len(misses) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > len(misses) {
				hi = len(misses)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				evalSpan(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	if commitErr != nil {
		return nil, commitErr
	}
	if err := opt.Cache.Flush(); err != nil {
		return nil, err
	}
	return outs, nil
}

// evaluate computes one point: the §4 analytic prediction plus, when
// the point carries a simulation budget, the simulated loss (replicated
// when Replications >= 2).  Simulation failures (unstable baselines
// exceeding MaxBacklog) are recorded in the result, not returned — a
// hopeless cell is a legitimate, cacheable answer for a surface.
func evaluate(p Point, sm *metrics.SlotMetrics) Result {
	var res Result
	disc, err := ParseDiscipline(p.Discipline)
	if err != nil {
		res.AnalyticErr = err.Error()
		res.SimErr = err.Error()
		return res
	}
	sys := core.System{
		Tau: p.Tau, M: p.M, RhoPrime: p.RhoPrime, K: p.K(),
		Discipline: disc, Seed: p.Seed,
	}
	if a, err := sys.AnalyticLoss(); err == nil {
		res.AnalyticLoss = fin(a.Loss)
		res.AnalyticOK = true
	} else {
		res.AnalyticErr = err.Error()
	}
	if p.Messages <= 0 {
		return res
	}

	opt := core.SimOptions{
		EndTime: p.Messages / sys.Lambda(),
		Faults:  fault.Config{Rates: p.Rates, Seed: p.FaultSeed},
	}
	if p.Replications >= 2 {
		rep, err := sys.SimulateReplicated(p.Replications, opt)
		if err != nil {
			res.SimErr = err.Error()
			return res
		}
		res.SimOK = true
		res.SimLoss = fin(rep.LossMean)
		res.SimLo = fin(rep.LossMean - rep.LossHalfWidth)
		res.SimHi = fin(rep.LossMean + rep.LossHalfWidth)
		res.MeanWait = fin(rep.WaitMean)
		var util float64
		for _, r := range rep.Runs {
			res.Offered += r.Offered
			res.Decided += r.Decided()
			util += r.Utilization
		}
		res.Utilization = fin(util / float64(len(rep.Runs)))
		return res
	}

	sopt := opt
	if sm != nil {
		sopt.Collector = sm
	}
	rep, err := sys.Simulate(sopt)
	if err != nil {
		res.SimErr = err.Error()
		return res
	}
	lo, hi := rep.LossCI(0.95)
	res.SimOK = true
	res.SimLoss = fin(rep.Loss())
	res.SimLo = fin(lo)
	res.SimHi = fin(hi)
	res.MeanWait = fin(rep.TrueWait.Mean())
	res.Utilization = fin(rep.Utilization)
	res.Offered = rep.Offered
	res.Decided = rep.Decided()
	return res
}
