package sweep

import (
	"os"
	"path/filepath"
	"testing"
)

func cachePoint(i int) (string, Point, Result) {
	p := Point{
		Tau: 1, RhoPrime: 0.1 * float64(i+1), M: 25, KOverM: 2,
		Discipline: "controlled", Seed: uint64(i + 1),
		Messages: 1000, Replications: 1,
	}
	r := Result{AnalyticLoss: 0.25 * float64(i+1), AnalyticOK: true}
	return p.Key(), p, r
}

func TestCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const n = 40 // enough keys to touch many shards
	for i := 0; i < n; i++ {
		k, p, r := cachePoint(i)
		if err := c.Put(k, p, r); err != nil {
			t.Fatal(err)
		}
	}
	if c.Dirty() != n || c.Len() != n {
		t.Fatalf("dirty %d len %d, want %d", c.Dirty(), c.Len(), n)
	}
	// Re-putting an existing key is a no-op: results are pure functions
	// of the key, the first one wins.
	k0, p0, _ := cachePoint(0)
	if err := c.Put(k0, p0, Result{AnalyticLoss: 99}); err != nil {
		t.Fatal(err)
	}
	if c.Dirty() != n {
		t.Fatalf("duplicate Put buffered a line: dirty %d", c.Dirty())
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Dirty() != 0 {
		t.Fatalf("flush left %d dirty", c.Dirty())
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Loaded != n || st.Entries != n || st.Skipped != 0 {
		t.Fatalf("reloaded stats %+v, want %d clean entries", st, n)
	}
	for i := 0; i < n; i++ {
		k, _, want := cachePoint(i)
		got, ok := c2.Get(k)
		if !ok || got != want {
			t.Fatalf("key %d: got %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
	if _, ok := c2.Get("not-a-key"); ok {
		t.Fatal("phantom hit")
	}
	st = c2.Stats()
	if st.Hits != int64(n) || st.Misses != 1 {
		t.Fatalf("traffic stats %+v", st)
	}
	if hr := st.HitRate(); hr <= 0.97 || hr >= 1 {
		t.Fatalf("hit rate %v", hr)
	}
}

// TestCacheToleratesCorruptLines pins the crash- and forward-
// compatibility contract: a torn final line (the one corruption an
// O_APPEND flush can produce), garbage, blank lines and foreign-schema
// entries are skipped and counted, never fatal, and never shadow good
// entries.
func TestCacheToleratesCorruptLines(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k, p, r := cachePoint(0)
	if err := c.Put(k, p, r); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	shard := filepath.Join(dir, "shard-"+k[:1]+".jsonl")
	good, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	junk := []byte("\n{\"schema\":\"windowctl-sweep/999\",\"key\":\"zz\"}\nnot json at all\n")
	torn := good[:len(good)/2] // a flush cut off mid-line by a crash
	if err := os.WriteFile(shard, append(append(junk, good...), torn...), 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Loaded != 1 || st.Skipped != 3 {
		t.Fatalf("stats %+v, want 1 loaded and 3 skipped", st)
	}
	got, ok := c2.Get(k)
	if !ok || got != r {
		t.Fatalf("good entry lost among corruption: %+v ok=%v", got, ok)
	}
}

// TestNilCache pins that a nil *Cache is a valid always-miss cache, so
// the driver needs no branching on whether caching is enabled.
func TestNilCache(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	k, p, r := cachePoint(0)
	if err := c.Put(k, p, r); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Dirty() != 0 || c.Len() != 0 {
		t.Fatal("nil cache holds state")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
}

func TestShardOfCoversHexAlphabet(t *testing.T) {
	seen := map[int]bool{}
	for _, ch := range "0123456789abcdef" {
		s := shardOf(string(ch) + "rest")
		if s < 0 || s >= shardCount {
			t.Fatalf("shard %d out of range for %q", s, ch)
		}
		if seen[s] {
			t.Fatalf("shard collision at %q", ch)
		}
		seen[s] = true
	}
	if shardOf("") != 0 {
		t.Fatal("empty key must map to shard 0")
	}
}
