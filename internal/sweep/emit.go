package sweep

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The emitters render outcome slices (in enumeration order, as Run
// returns them) into plot-ready CSV.  All values are printed from the
// Point and Result structs with fixed formats, so emitted bytes are
// identical across worker counts and across cold/warm cache runs.
//
//   - WriteCSV: long format, one row per point — the general surface
//     format (every axis is a column), for dataframes and pivoting.
//   - WriteWideCSV: one row per (ρ′, M, K/M, ε) with one analytic and
//     one simulated column per discipline — the shape cmd/sweep has
//     always emitted, extended with the error-rate axis.
//   - WriteHeatmaps: one matrix block per (M, discipline, ε) surface
//     with ρ′ rows and K/M columns — loss surfaces for gnuplot
//     `matrix`, numpy loadtxt or spreadsheet conditional formatting.

// axisFmt renders an axis value exactly (shortest round-trip form).
func axisFmt(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// lossFmt renders a loss/ratio cell.
func lossFmt(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }

// simCell returns the simulated-loss cell of an outcome ("" when the
// point was not simulated or the run failed).
func simCell(o Outcome) string {
	if !o.Result.SimOK {
		return ""
	}
	return lossFmt(o.Result.SimLoss)
}

// analyticCell returns the analytic-loss cell ("" when no model).
func analyticCell(o Outcome) string {
	if !o.Result.AnalyticOK {
		return ""
	}
	return lossFmt(o.Result.AnalyticLoss)
}

// WriteCSV emits the long format: one row per point with every axis and
// every measured quantity as its own column.
func WriteCSV(w io.Writer, outs []Outcome) error {
	if _, err := fmt.Fprintln(w,
		"rho,m,k_over_m,k,discipline,error_rate,analytic,sim,sim_lo,sim_hi,mean_wait,utilization,offered,decided"); err != nil {
		return err
	}
	for _, o := range outs {
		p := o.Point
		row := []string{
			axisFmt(p.RhoPrime), axisFmt(p.M), axisFmt(p.KOverM), axisFmt(p.K()),
			p.Discipline, axisFmt(p.ErrorRate),
			analyticCell(o),
		}
		if o.Result.SimOK {
			row = append(row,
				lossFmt(o.Result.SimLoss), lossFmt(o.Result.SimLo), lossFmt(o.Result.SimHi),
				lossFmt(o.Result.MeanWait), lossFmt(o.Result.Utilization),
				strconv.FormatInt(o.Result.Offered, 10), strconv.FormatInt(o.Result.Decided, 10))
		} else {
			row = append(row, "", "", "", "", "", "", "")
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// indexer maps (load, m, km, eps, disc) axis positions to the
// enumeration-order outcome index.  It trusts the Run contract: outs
// was produced from the same normalized space, disciplines innermost.
type indexer struct {
	s Space
}

func (ix indexer) at(outs []Outcome, li, mi, ki, ei, di int) Outcome {
	n := len(ix.s.Disciplines)
	i := ((((li*len(ix.s.Ms)+mi)*len(ix.s.KOverM)+ki)*len(ix.s.ErrorRates) + ei) * n) + di
	return outs[i]
}

// checkShape verifies outs matches the normalized space.
func checkShape(s Space, outs []Outcome) (Space, error) {
	norm, err := s.Normalize()
	if err != nil {
		return norm, err
	}
	if len(outs) != norm.Size() {
		return norm, fmt.Errorf("sweep: %d outcomes do not tile the %d-point space", len(outs), norm.Size())
	}
	return norm, nil
}

// WriteWideCSV emits one row per (ρ′, M, K/M, ε) cell with one analytic
// column per discipline and — when the space simulates — one simulated
// column per discipline.
func WriteWideCSV(w io.Writer, s Space, outs []Outcome) error {
	norm, err := checkShape(s, outs)
	if err != nil {
		return err
	}
	ix := indexer{norm}
	header := []string{"rho", "m", "k_over_m", "k", "error_rate"}
	for _, d := range norm.Disciplines {
		header = append(header, d.String())
	}
	if norm.Messages > 0 {
		for _, d := range norm.Disciplines {
			header = append(header, "sim_"+d.String())
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for li, rho := range norm.Loads {
		for mi, m := range norm.Ms {
			for ki, km := range norm.KOverM {
				for ei, eps := range norm.ErrorRates {
					row := []string{
						axisFmt(rho), axisFmt(m), axisFmt(km),
						axisFmt(km * m * norm.Tau), axisFmt(eps),
					}
					for di := range norm.Disciplines {
						row = append(row, analyticCell(ix.at(outs, li, mi, ki, ei, di)))
					}
					if norm.Messages > 0 {
						for di := range norm.Disciplines {
							row = append(row, simCell(ix.at(outs, li, mi, ki, ei, di)))
						}
					}
					if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// WriteHeatmaps emits one loss-surface matrix per (M, discipline, ε):
// a comment line naming the surface, a header row of K/M values, then
// one row per ρ′.  Cells hold the simulated loss when the point was
// simulated, else the analytic loss, else an empty cell — so the same
// emitter renders simulation surfaces, analytic surfaces and
// degradation grids (fix M and discipline, compare ε blocks).
func WriteHeatmaps(w io.Writer, s Space, outs []Outcome) error {
	norm, err := checkShape(s, outs)
	if err != nil {
		return err
	}
	ix := indexer{norm}
	first := true
	for mi, m := range norm.Ms {
		for di, d := range norm.Disciplines {
			for ei, eps := range norm.ErrorRates {
				if !first {
					if _, err := fmt.Fprintln(w); err != nil {
						return err
					}
				}
				first = false
				if _, err := fmt.Fprintf(w, "# loss surface m=%s discipline=%s error_rate=%s\n",
					axisFmt(m), d.String(), axisFmt(eps)); err != nil {
					return err
				}
				header := []string{"rho\\k_over_m"}
				for _, km := range norm.KOverM {
					header = append(header, axisFmt(km))
				}
				if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
					return err
				}
				for li, rho := range norm.Loads {
					row := []string{axisFmt(rho)}
					for ki := range norm.KOverM {
						o := ix.at(outs, li, mi, ki, ei, di)
						switch {
						case o.Result.SimOK:
							row = append(row, lossFmt(o.Result.SimLoss))
						case o.Result.AnalyticOK:
							row = append(row, lossFmt(o.Result.AnalyticLoss))
						default:
							row = append(row, "")
						}
					}
					if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
