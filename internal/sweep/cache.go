package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// shardCount is the number of JSON-lines files a cache directory is
// split into, keyed by the first hex character of the content address.
// Sharding keeps individual files append-friendly and lets a future
// multi-process sweep partition the key space.
const shardCount = 16

// entry is one cache line.  The full Point rides along with the Result
// so shards are self-describing: a human (or a doctor tool) can recover
// what configuration produced any cached value without reversing the
// hash.
type entry struct {
	Schema string `json:"schema"`
	Key    string `json:"key"`
	Point  Point  `json:"point"`
	Result Result `json:"result"`
}

// Stats summarizes a cache's state and the traffic it has seen.
type Stats struct {
	// Dir is the cache directory.
	Dir string
	// Entries is the number of distinct keys currently held (loaded
	// plus newly computed).
	Entries int
	// Loaded is the number of entries read from disk at Open.
	Loaded int
	// Skipped counts unreadable or foreign-schema lines ignored at
	// Open (torn tails from a crash, future schema versions).
	Skipped int
	// Hits and Misses count Get traffic.
	Hits, Misses int64
}

// HitRate returns the fraction of Gets answered from the cache (0 when
// no Gets happened).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a content-addressed result store backed by sharded
// JSON-lines files.  The full index lives in memory (an entry is a few
// hundred bytes — a million-point cache is a few hundred MB of JSONL);
// Put buffers new entries and Flush appends them shard by shard with a
// single O_APPEND write per shard, so concurrent readers of the files
// and a crash mid-flush can at worst observe one torn final line, which
// the loader detects and skips.  A nil *Cache is valid and behaves as
// an always-miss, never-store cache.
//
// Cache methods are safe for concurrent use.
type Cache struct {
	dir string

	mu      sync.Mutex
	results map[string]Result
	pending [shardCount][]byte
	dirty   int // pending entries not yet flushed

	loaded, skipped int
	hits, misses    int64
}

// Open creates (if necessary) and loads a cache directory.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	c := &Cache{dir: dir, results: make(map[string]Result)}
	for s := 0; s < shardCount; s++ {
		if err := c.loadShard(s); err != nil {
			return nil, err
		}
	}
	c.loaded = len(c.results)
	return c, nil
}

// shardPath returns the file backing one shard.
func (c *Cache) shardPath(s int) string {
	return filepath.Join(c.dir, fmt.Sprintf("shard-%x.jsonl", s))
}

// shardOf maps a key to its shard by first hex character.
func shardOf(key string) int {
	if len(key) == 0 {
		return 0
	}
	ch := key[0]
	switch {
	case ch >= '0' && ch <= '9':
		return int(ch - '0')
	case ch >= 'a' && ch <= 'f':
		return int(ch-'a') + 10
	default:
		return 0
	}
}

// loadShard reads one shard file, skipping lines that do not parse or
// carry a foreign schema.  Skipping rather than failing makes the cache
// robust to the one corruption appends can produce (a torn final line
// after a crash) and forward-compatible with newer schemas.
func (c *Cache) loadShard(s int) error {
	f, err := os.Open(c.shardPath(s))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("sweep: cache shard: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(line, &e); err != nil || e.Schema != SchemaVersion || e.Key == "" {
			c.skipped++
			continue
		}
		c.results[e.Key] = e.Result
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("sweep: cache shard %s: %w", c.shardPath(s), err)
	}
	return nil
}

// Get looks a key up, counting the hit or miss.
func (c *Cache) Get(key string) (Result, bool) {
	if c == nil {
		return Result{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.results[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return r, ok
}

// Put stores a freshly computed result, buffering the on-disk append
// until the next Flush.  Re-putting an existing key is a no-op (the
// first result wins; results are pure functions of the key).
func (c *Cache) Put(key string, p Point, r Result) error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.results[key]; dup {
		return nil
	}
	line, err := json.Marshal(entry{Schema: SchemaVersion, Key: key, Point: p, Result: r})
	if err != nil {
		return fmt.Errorf("sweep: cache encode: %w", err)
	}
	c.results[key] = r
	s := shardOf(key)
	c.pending[s] = append(c.pending[s], line...)
	c.pending[s] = append(c.pending[s], '\n')
	c.dirty++
	return nil
}

// Flush appends all buffered entries to their shard files, one
// O_APPEND write per shard.  Safe to call at any time; a no-op when
// nothing is buffered.
func (c *Cache) Flush() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Cache) flushLocked() error {
	for s := range c.pending {
		buf := c.pending[s]
		if len(buf) == 0 {
			continue
		}
		f, err := os.OpenFile(c.shardPath(s), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("sweep: cache flush: %w", err)
		}
		_, werr := f.Write(buf)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("sweep: cache flush: %w", werr)
		}
		if cerr != nil {
			return fmt.Errorf("sweep: cache flush: %w", cerr)
		}
		c.pending[s] = nil
	}
	c.dirty = 0
	return nil
}

// Dirty returns the number of buffered entries not yet flushed.
func (c *Cache) Dirty() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dirty
}

// Len returns the number of distinct keys held.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.results)
}

// Stats returns a snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Dir: c.dir, Entries: len(c.results),
		Loaded: c.loaded, Skipped: c.skipped,
		Hits: c.hits, Misses: c.misses,
	}
}
