// Package sweep is the phase-diagram-scale grid evaluation engine: it
// turns a typed parameter space over (ρ′, M, K, discipline, feedback-
// error rate, replications) into canonical per-point configurations,
// addresses every point's result by a content hash of that
// configuration, and executes cache misses over a sharded worker driver
// that saturates all cores while staying bit-identical to a serial run.
//
// The paper's figure-7 panel is 18 points; the production questions the
// ROADMAP asks — loss and degradation surfaces over the full parameter
// space — need 1e5–1e6 point grids that must be cheap to *re-run*: a
// superset sweep, a crashed sweep resumed, or the same grid replayed
// after an unrelated code change should only pay for the points that
// are actually new.  Three design decisions carry that:
//
//   - Identity-derived randomness.  A point's simulation seed is a
//     Mix64 hash of the point's parameter values (not its grid
//     position), so the same operating point gets the same result in
//     any grid that contains it, at any worker count, in any execution
//     order.  Feedback-error grids reuse the degradation pipeline's
//     common-random-numbers scheme: every ε of one operating point
//     shares one simulation seed and one fault-schedule seed, so cells
//     differ only through the injected faults.
//
//   - Content-addressed results.  Point.Key is a SHA-256 over the
//     canonicalized configuration plus the schema and engine versions;
//     the on-disk cache (see Cache) maps keys to results in sharded
//     JSON-lines files.  Any code change that breaks the engines'
//     bit-identity contract must bump EngineVersion, invalidating every
//     cached result at once.
//
//   - Deterministic assembly.  Run returns outcomes in enumeration
//     order with all values taken from the (JSON-round-trip-exact)
//     Result, so emitted CSV is byte-identical across worker counts and
//     across cold/warm cache runs — pinned by tests and by the CI smoke
//     job.
package sweep

import (
	"fmt"
	"math"

	"windowctl/internal/core"
	"windowctl/internal/fault"
	"windowctl/internal/rngutil"
)

// DefaultDisciplines is the discipline axis used when a Space leaves it
// empty: the paper's controlled protocol and the two analytic baselines.
var DefaultDisciplines = []core.Discipline{core.Controlled, core.FCFS, core.LCFS}

// sweepFaultTag separates the fault-schedule seed stream from the
// simulation seed it derives from (the same role the degradation
// pipeline's tag plays).  It is part of the reproducibility contract:
// changing it changes every faulted point's schedule and therefore its
// key's result.
const sweepFaultTag = 0x53ee9

// Space is a typed parameter space: the cross product of its axes
// enumerates into canonical point configurations.  Axes that apply to
// every point (Tau, Messages, Replications, seeds) are scalars.
type Space struct {
	// Tau is the slot time; 0 means 1 (the natural unit).
	Tau float64
	// Loads is the offered-load axis ρ′; required, positive, no
	// duplicates.
	Loads []float64
	// Ms is the message-length axis (slots); required, positive, no
	// duplicates.
	Ms []float64
	// KOverM is the constraint axis in message times; required,
	// positive, no duplicates.  The absolute constraint of a point is
	// KOverM·M·Tau.
	KOverM []float64
	// Disciplines is the protocol axis; empty means DefaultDisciplines.
	Disciplines []core.Discipline
	// ErrorRates is the feedback-error axis ε; empty means {0} (perfect
	// feedback).  At grid value ε the injected per-slot fault rates are
	// Mix.Scale(ε), exactly as in the degradation pipeline.
	ErrorRates []float64
	// Mix weighs the three fault kinds at ε = 1; the zero value means
	// every kind at weight 1.  Scaled rates must stay in [0, 1].
	Mix fault.Rates
	// FaultSeed bases the fault-schedule seed derivation; 0 derives the
	// schedules from Seed.
	FaultSeed uint64
	// Replications is the number of independent simulation replications
	// per point; <= 1 means a single run (Wilson within-run CI), >= 2
	// aggregates a cross-replication Student-t CI.
	Replications int
	// Messages is the target number of offered messages per simulation
	// run; 0 disables simulation (analytic-only sweep).
	Messages float64
	// Seed drives all simulation randomness; required nonzero (0 is the
	// derive-from-base sentinel of the fault-seed convention and is
	// rejected to keep the two seed spaces disjoint).
	Seed uint64
}

// checkAxis validates one grid axis: nonempty, finite, positive unless
// allowZero, and duplicate-free.  Duplicate grid values are almost
// always a flag typo, and they would silently double-count rows in
// every emitted surface.
func checkAxis(name string, vals []float64, allowZero bool) error {
	if len(vals) == 0 {
		return fmt.Errorf("sweep: empty %s axis", name)
	}
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("sweep: %s[%d] = %v is not finite", name, i, v)
		}
		if v < 0 || (v == 0 && !allowZero) {
			return fmt.Errorf("sweep: %s[%d] = %v must be positive", name, i, v)
		}
		for j := 0; j < i; j++ {
			if vals[j] == v {
				return fmt.Errorf("sweep: duplicate %s value %v (positions %d and %d)", name, v, j, i)
			}
		}
	}
	return nil
}

// Normalize validates the space and fills defaults (Tau, Disciplines,
// ErrorRates, Mix, Replications).  Run normalizes internally; callers
// that index outcomes against the axes (the wide and heatmap emitters
// do) should normalize once and use the normalized space throughout.
func (s Space) Normalize() (Space, error) {
	if s.Tau == 0 {
		s.Tau = 1
	}
	if s.Tau < 0 || math.IsNaN(s.Tau) || math.IsInf(s.Tau, 0) {
		return s, fmt.Errorf("sweep: Tau %v must be positive and finite", s.Tau)
	}
	if s.Seed == 0 {
		return s, fmt.Errorf("sweep: Seed must be nonzero (0 is reserved as the derive-from-base fault-seed sentinel)")
	}
	if err := checkAxis("loads", s.Loads, false); err != nil {
		return s, err
	}
	if err := checkAxis("ms", s.Ms, false); err != nil {
		return s, err
	}
	if err := checkAxis("k/m", s.KOverM, false); err != nil {
		return s, err
	}
	if len(s.Disciplines) == 0 {
		s.Disciplines = append([]core.Discipline(nil), DefaultDisciplines...)
	}
	for i, d := range s.Disciplines {
		if _, err := ParseDiscipline(d.String()); err != nil {
			return s, fmt.Errorf("sweep: disciplines[%d]: %w", i, err)
		}
		for j := 0; j < i; j++ {
			if s.Disciplines[j] == d {
				return s, fmt.Errorf("sweep: duplicate discipline %v", d)
			}
		}
	}
	if len(s.ErrorRates) == 0 {
		s.ErrorRates = []float64{0}
	}
	if err := checkAxis("error-rates", s.ErrorRates, true); err != nil {
		return s, err
	}
	if s.Mix.Zero() {
		s.Mix = fault.Rates{Erasure: 1, FalseCollision: 1, MissedCollision: 1}
	}
	for _, eps := range s.ErrorRates {
		if err := s.Mix.Scale(eps).Validate(); err != nil {
			return s, fmt.Errorf("sweep: error rate %v: %w", eps, err)
		}
	}
	if s.Replications < 0 {
		return s, fmt.Errorf("sweep: negative Replications %d", s.Replications)
	}
	if s.Replications <= 1 {
		s.Replications = 1
	}
	if s.Messages < 0 || math.IsNaN(s.Messages) || math.IsInf(s.Messages, 0) {
		return s, fmt.Errorf("sweep: Messages %v must be non-negative and finite", s.Messages)
	}
	return s, nil
}

// Size returns the number of points the space enumerates to.
func (s Space) Size() int {
	n := len(s.Loads) * len(s.Ms) * len(s.KOverM)
	if d := len(s.Disciplines); d > 0 {
		n *= d
	} else {
		n *= len(DefaultDisciplines)
	}
	if e := len(s.ErrorRates); e > 0 {
		n *= e
	}
	return n
}

// Point is one canonical operating-point configuration: a pure value
// whose fields completely determine its Result.  Points are the unit of
// content addressing — see Key.
type Point struct {
	// Tau, RhoPrime, M and KOverM give the operating point in the
	// paper's parameterization; K = KOverM·M·Tau.
	Tau      float64 `json:"tau"`
	RhoPrime float64 `json:"rho_prime"`
	M        float64 `json:"m"`
	KOverM   float64 `json:"k_over_m"`
	// Discipline is the canonical protocol name (core.Discipline.String).
	Discipline string `json:"discipline"`
	// ErrorRate is the feedback-error grid value ε; Rates the effective
	// per-kind probabilities Mix.Scale(ε) injected at this point.
	ErrorRate float64     `json:"error_rate"`
	Rates     fault.Rates `json:"fault_rates"`
	// Seed is the identity-derived simulation seed; FaultSeed the
	// identity-derived fault-schedule seed (0 when Rates are all zero).
	Seed      uint64 `json:"seed"`
	FaultSeed uint64 `json:"fault_seed"`
	// Messages is the per-run offered-message target (0 = analytic
	// only); Replications the replication count (>= 1).
	Messages     float64 `json:"messages"`
	Replications int     `json:"replications"`
}

// K returns the absolute waiting-time constraint of the point.
func (p Point) K() float64 { return p.KOverM * p.M * p.Tau }

// ParseDiscipline maps a canonical discipline name back to its value.
// It accepts every core discipline — including the protocol-zoo
// entries (tournament, acdc) — so the sweep axis ranges over the full
// MAC zoo.
func ParseDiscipline(name string) (core.Discipline, error) {
	for _, d := range core.Disciplines() {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("sweep: unknown discipline %q", name)
}

// identitySeed derives a point-identity seed from a base seed and the
// operating point's parameter *values* — deliberately not its grid
// position and deliberately not ε, so that (a) the same operating point
// keys identically inside any grid that contains it (supersets reuse
// cached results) and (b) all error rates of one operating point share
// one simulation stream (common random numbers, as in the degradation
// pipeline: a cell differs from its ε-neighbour only through the
// injected faults).
func identitySeed(base uint64, tau, rho, m, km float64, disc core.Discipline) uint64 {
	return rngutil.Mix64(base,
		math.Float64bits(tau),
		math.Float64bits(rho),
		math.Float64bits(m),
		math.Float64bits(km),
		uint64(disc),
	)
}

// Enumerate expands the space into its canonical points, in row-major
// axis order: loads, ms, k/m, error rates, disciplines (disciplines
// innermost).  The order is part of the contract — the wide and heatmap
// emitters index outcomes against it.
func (s Space) Enumerate() ([]Point, error) {
	s, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	faultBase := s.FaultSeed
	if faultBase == 0 {
		faultBase = s.Seed
	}
	pts := make([]Point, 0, s.Size())
	for _, rho := range s.Loads {
		for _, m := range s.Ms {
			for _, km := range s.KOverM {
				for _, eps := range s.ErrorRates {
					for _, d := range s.Disciplines {
						p := Point{
							Tau: s.Tau, RhoPrime: rho, M: m, KOverM: km,
							Discipline:   d.String(),
							ErrorRate:    eps,
							Rates:        s.Mix.Scale(eps),
							Seed:         identitySeed(s.Seed, s.Tau, rho, m, km, d),
							Messages:     s.Messages,
							Replications: s.Replications,
						}
						if !p.Rates.Zero() {
							p.FaultSeed = rngutil.Mix64(
								identitySeed(faultBase, s.Tau, rho, m, km, d), sweepFaultTag)
						}
						pts = append(pts, p)
					}
				}
			}
		}
	}
	return pts, nil
}
