package sweep

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"windowctl/internal/core"
	"windowctl/internal/metrics"
)

// testSpace is a small but fully featured grid: three axes wide, two
// disciplines, one nonzero error rate, cheap enough for every test.
func testSpace() Space {
	return Space{
		Loads:       []float64{0.25, 0.5},
		Ms:          []float64{25},
		KOverM:      []float64{1, 2},
		Disciplines: []core.Discipline{core.Controlled, core.FCFS},
		ErrorRates:  []float64{0, 0.05},
		Messages:    2000,
		Seed:        1983,
	}
}

func mustRun(t *testing.T, s Space, opt Options) []Outcome {
	t.Helper()
	outs, err := Run(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

func TestSpaceValidation(t *testing.T) {
	base := testSpace()
	cases := []struct {
		name   string
		mutate func(*Space)
	}{
		{"zero seed", func(s *Space) { s.Seed = 0 }},
		{"empty loads", func(s *Space) { s.Loads = nil }},
		{"duplicate load", func(s *Space) { s.Loads = []float64{0.5, 0.25, 0.5} }},
		{"NaN load", func(s *Space) { s.Loads = []float64{0.5, math.NaN()} }},
		{"Inf km", func(s *Space) { s.KOverM = []float64{1, math.Inf(1)} }},
		{"negative km", func(s *Space) { s.KOverM = []float64{1, -2} }},
		{"zero m", func(s *Space) { s.Ms = []float64{0} }},
		{"error rate above 1", func(s *Space) { s.ErrorRates = []float64{0, 1.5} }},
		{"duplicate error rate", func(s *Space) { s.ErrorRates = []float64{0.05, 0.05} }},
		{"negative replications", func(s *Space) { s.Replications = -1 }},
		{"duplicate discipline", func(s *Space) {
			s.Disciplines = []core.Discipline{core.FCFS, core.FCFS}
		}},
	}
	for _, c := range cases {
		s := base
		c.mutate(&s)
		if _, err := s.Normalize(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := base.Normalize(); err != nil {
		t.Fatalf("base space rejected: %v", err)
	}
}

func TestEnumerateShapeAndOrder(t *testing.T) {
	s := testSpace()
	pts, err := s.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != s.Size() || len(pts) != 2*1*2*2*2 {
		t.Fatalf("got %d points, want %d", len(pts), s.Size())
	}
	// Disciplines innermost, then error rates, then k/m, then loads.
	if pts[0].Discipline != "controlled" || pts[1].Discipline != "fcfs" {
		t.Errorf("discipline order: %s, %s", pts[0].Discipline, pts[1].Discipline)
	}
	if pts[0].ErrorRate != 0 || pts[2].ErrorRate != 0.05 {
		t.Errorf("error-rate order: %v, %v", pts[0].ErrorRate, pts[2].ErrorRate)
	}
	if pts[0].KOverM != 1 || pts[4].KOverM != 2 {
		t.Errorf("k/m order: %v, %v", pts[0].KOverM, pts[4].KOverM)
	}
	if pts[0].RhoPrime != 0.25 || pts[8].RhoPrime != 0.5 {
		t.Errorf("load order: %v, %v", pts[0].RhoPrime, pts[8].RhoPrime)
	}
	for _, p := range pts {
		if p.Seed == 0 {
			t.Errorf("point %+v derived seed 0", p)
		}
		if p.Rates.Zero() != (p.FaultSeed == 0) {
			t.Errorf("point %+v: fault seed %d inconsistent with rates %+v", p, p.FaultSeed, p.Rates)
		}
	}
}

// TestCommonRandomNumbersAcrossErrorRates pins the degradation-style
// CRN contract: all error rates of one operating point share one
// simulation seed (and differ only in the injected rates), while
// different disciplines and constraints get independent seeds.
func TestCommonRandomNumbersAcrossErrorRates(t *testing.T) {
	pts, err := testSpace().Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string][]Point{}
	for _, p := range pts {
		id := p.Discipline + "|" + axisFmt(p.RhoPrime) + "|" + axisFmt(p.KOverM)
		byID[id] = append(byID[id], p)
	}
	seeds := map[uint64]bool{}
	for id, group := range byID {
		if len(group) != 2 {
			t.Fatalf("%s: %d ε-cells, want 2", id, len(group))
		}
		if group[0].Seed != group[1].Seed {
			t.Errorf("%s: ε-cells have different sim seeds %d, %d", id, group[0].Seed, group[1].Seed)
		}
		if group[0].Key() == group[1].Key() {
			t.Errorf("%s: ε-cells share a key", id)
		}
		if seeds[group[0].Seed] {
			t.Errorf("%s: sim seed %d collides with another operating point", id, group[0].Seed)
		}
		seeds[group[0].Seed] = true
	}
}

// TestSupersetKeysMatch pins the content-addressing property the cache
// depends on: a point's key is a function of its parameter values, not
// its grid position, so a superset grid reuses every key of a subset.
func TestSupersetKeysMatch(t *testing.T) {
	small := testSpace()
	big := small
	big.Loads = []float64{0.1, 0.25, 0.5, 0.75}
	big.KOverM = []float64{0.5, 1, 2, 4}

	smallPts, err := small.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	bigPts, err := big.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	bigKeys := map[string]bool{}
	for _, p := range bigPts {
		bigKeys[p.Key()] = true
	}
	for _, p := range smallPts {
		if !bigKeys[p.Key()] {
			t.Errorf("subset point %+v keys outside the superset", p)
		}
	}
}

// TestKeyPinned pins one canonical content address.  If this fails, the
// key derivation changed: that is an intentional cache-invalidation
// event (bump EngineVersion when the engines changed; update the pin
// either way).
func TestKeyPinned(t *testing.T) {
	p := Point{
		Tau: 1, RhoPrime: 0.5, M: 25, KOverM: 2,
		Discipline: "controlled", Seed: 1, Messages: 1000, Replications: 1,
	}
	const want = "0b8a83892ad2c3d1f5a33d1b2ee88a5e85153a416ac335747e7710b927f23bff"
	if got := p.Key(); got != want {
		t.Fatalf("pinned key changed:\n got %s\nwant %s", got, want)
	}
}

// TestRunDeterministicAcrossWorkersAndCache is the tentpole acceptance
// test: outcomes — and the CSV emitted from them — must be
// bit-identical across worker counts and across cold/warm cache runs.
func TestRunDeterministicAcrossWorkersAndCache(t *testing.T) {
	s := testSpace()
	serial := mustRun(t, s, Options{Workers: 1})
	sharded := mustRun(t, s, Options{Workers: 4})

	dir := t.TempDir()
	cold, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldOuts := mustRun(t, s, Options{Workers: 3, Cache: cold})
	warm, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	warmOuts := mustRun(t, s, Options{Workers: 2, Cache: warm})

	if st := warm.Stats(); st.Misses != 0 || st.Hits != int64(len(warmOuts)) {
		t.Fatalf("warm run not fully cached: %+v", st)
	}
	for i := range warmOuts {
		if !warmOuts[i].Cached {
			t.Fatalf("warm outcome %d not marked cached", i)
		}
	}

	emit := func(outs []Outcome) string {
		var long, wide, heat bytes.Buffer
		if err := WriteCSV(&long, outs); err != nil {
			t.Fatal(err)
		}
		if err := WriteWideCSV(&wide, s, outs); err != nil {
			t.Fatal(err)
		}
		if err := WriteHeatmaps(&heat, s, outs); err != nil {
			t.Fatal(err)
		}
		return long.String() + "\x00" + wide.String() + "\x00" + heat.String()
	}
	ref := emit(serial)
	for name, outs := range map[string][]Outcome{
		"sharded": sharded, "cold-cache": coldOuts, "warm-cache": warmOuts,
	} {
		if got := emit(outs); got != ref {
			t.Errorf("%s emission differs from serial", name)
		}
	}
}

func TestRunMaxPointsBudget(t *testing.T) {
	s := testSpace()
	if _, err := Run(s, Options{MaxPoints: s.Size() - 1}); err == nil {
		t.Fatal("over-budget grid accepted")
	}
	if _, err := Run(s, Options{MaxPoints: s.Size(), Workers: 4}); err != nil {
		t.Fatalf("at-budget grid rejected: %v", err)
	}
}

func TestRunAnalyticOnly(t *testing.T) {
	s := testSpace()
	s.Messages = 0
	s.ErrorRates = nil
	outs := mustRun(t, s, Options{})
	for _, o := range outs {
		if o.Result.SimOK {
			t.Fatalf("analytic-only point simulated: %+v", o)
		}
		if o.Point.Discipline == "controlled" && !o.Result.AnalyticOK {
			t.Fatalf("controlled analytic failed: %+v", o.Result)
		}
	}
}

func TestRunMetricsAggregation(t *testing.T) {
	s := testSpace()
	s.ErrorRates = nil // perfect feedback keeps the fault counters zero
	sm := &metrics.SlotMetrics{}
	outs := mustRun(t, s, Options{Workers: 4, Metrics: sm})
	if sm.Arrivals == 0 || sm.Transmissions == 0 {
		t.Fatalf("aggregate metrics empty: %+v", sm)
	}
	// The aggregate must equal the sum over per-point offered counts at
	// zero warmup... warmup is nonzero here, so just check plausibility:
	// arrivals cover at least the measured offered messages.
	var offered int64
	for _, o := range outs {
		offered += o.Result.Offered
	}
	if sm.Arrivals < offered {
		t.Fatalf("aggregate arrivals %d < measured offered %d", sm.Arrivals, offered)
	}

	// Replicated runs cannot share a collector.
	s.Replications = 3
	if _, err := Run(s, Options{Metrics: &metrics.SlotMetrics{}}); err == nil {
		t.Fatal("metrics+replications accepted")
	}
}

func TestRunReplicatedPoints(t *testing.T) {
	s := testSpace()
	s.Disciplines = []core.Discipline{core.Controlled}
	s.ErrorRates = nil
	s.Replications = 3
	s.Messages = 1000
	a := mustRun(t, s, Options{Workers: 1})
	b := mustRun(t, s, Options{Workers: 4})
	for i := range a {
		ra, rb := a[i].Result, b[i].Result
		if ra != rb {
			t.Fatalf("replicated point %d differs across workers: %+v vs %+v", i, ra, rb)
		}
		if !ra.SimOK || ra.SimLo > ra.SimLoss || ra.SimHi < ra.SimLoss {
			t.Fatalf("replicated point %d CI inconsistent: %+v", i, ra)
		}
	}
}

// TestFailedSimulationIsCached pins the failure-caching property: a
// hopeless cell (unstable baseline) is computed once, cached with its
// error, and answered from the cache on the next run.
func TestFailedSimulationIsCached(t *testing.T) {
	s := Space{
		// Eight times channel capacity with a constraint so loose FCFS
		// never discards: the backlog outgrows the engine's 1<<20 abort
		// threshold within the first ~1.2e6 arrivals.
		Loads:       []float64{8.0},
		Ms:          []float64{25},
		KOverM:      []float64{1e6},
		Disciplines: []core.Discipline{core.FCFS},
		Messages:    2e6,
		Seed:        7,
	}
	dir := t.TempDir()
	cache, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	outs := mustRun(t, s, Options{Cache: cache})
	if outs[0].Result.SimOK || outs[0].Result.SimErr == "" {
		t.Fatalf("unstable baseline did not record a sim error: %+v", outs[0].Result)
	}
	warm, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	outs2 := mustRun(t, s, Options{Cache: warm})
	if !outs2[0].Cached || outs2[0].Result.SimErr != outs[0].Result.SimErr {
		t.Fatalf("failure not served from cache: %+v", outs2[0])
	}
}

func TestWideCSVShape(t *testing.T) {
	s := testSpace()
	outs := mustRun(t, s, Options{Workers: 4})
	var b bytes.Buffer
	if err := WriteWideCSV(&b, s, outs); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	wantRows := 1 + len(s.Loads)*len(s.Ms)*len(s.KOverM)*2 // + header; 2 = ε cells
	if len(lines) != wantRows {
		t.Fatalf("wide CSV has %d lines, want %d", len(lines), wantRows)
	}
	wantHeader := "rho,m,k_over_m,k,error_rate,controlled,fcfs,sim_controlled,sim_fcfs"
	if lines[0] != wantHeader {
		t.Fatalf("header %q, want %q", lines[0], wantHeader)
	}
	wantCols := strings.Count(wantHeader, ",") + 1
	for i, l := range lines {
		if strings.Count(l, ",")+1 != wantCols {
			t.Fatalf("line %d has wrong arity: %q", i, l)
		}
	}

	// Mismatched shapes must be rejected, not mis-tiled.
	if err := WriteWideCSV(&b, s, outs[1:]); err == nil {
		t.Fatal("truncated outcomes accepted")
	}
}
