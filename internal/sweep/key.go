package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
)

// SchemaVersion names the cache entry layout.  Entries carrying a
// different schema are skipped at load (treated as misses), so a layout
// change never misreads old shards.
const SchemaVersion = "windowctl-sweep/1"

// EngineVersion names the simulators' bit-identity contract a cached
// result was computed under.  It is mixed into every key, so bumping it
// atomically invalidates the whole cache.  Bump it whenever the engine
// goldens (internal/sim/equiv_golden_test.go) are regenerated, or when
// the sweep seed-derivation scheme changes — any change that makes the
// same Point produce different bits.
const EngineVersion = "engine-goldens/6"

// Key returns the point's content address: a SHA-256 over the
// canonicalized configuration plus SchemaVersion and EngineVersion,
// rendered as lowercase hex.  Floats are hashed by their IEEE-754 bit
// patterns, so the canonical form is exact — no formatting or rounding
// is involved, and two points key equal iff every parameter is
// bit-equal.
func (p Point) Key() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", SchemaVersion, EngineVersion)
	fmt.Fprintf(h, "tau=%016x rho=%016x m=%016x km=%016x disc=%s eps=%016x",
		math.Float64bits(p.Tau), math.Float64bits(p.RhoPrime),
		math.Float64bits(p.M), math.Float64bits(p.KOverM),
		p.Discipline, math.Float64bits(p.ErrorRate))
	fmt.Fprintf(h, " er=%016x fc=%016x mc=%016x",
		math.Float64bits(p.Rates.Erasure),
		math.Float64bits(p.Rates.FalseCollision),
		math.Float64bits(p.Rates.MissedCollision))
	fmt.Fprintf(h, " seed=%016x fseed=%016x msgs=%016x reps=%d",
		p.Seed, p.FaultSeed, math.Float64bits(p.Messages), p.Replications)
	return hex.EncodeToString(h.Sum(nil))
}

// Result is the evaluated outcome of one Point.  Every field is finite
// (NaN and ±Inf are sanitized at construction), so the struct survives
// a JSON round trip bit-exactly — the property that makes warm-cache
// CSV byte-identical to cold-run CSV.
type Result struct {
	// AnalyticLoss is the §4 model prediction; valid only when
	// AnalyticOK (the Random discipline has no analytic model, and the
	// baseline queues can be unstable at high load).
	AnalyticLoss float64 `json:"analytic_loss"`
	AnalyticOK   bool    `json:"analytic_ok"`
	AnalyticErr  string  `json:"analytic_err,omitempty"`
	// SimLoss is the simulated loss fraction (the replication mean when
	// Replications >= 2), with [SimLo, SimHi] its 95% confidence
	// interval (Wilson within-run for a single run, Student-t across
	// replications otherwise).  Valid only when SimOK; SimErr records
	// why a requested simulation produced no value (e.g. an unstable
	// baseline exceeding MaxBacklog) — failures are cached too, so
	// re-runs do not re-simulate known-hopeless points.
	SimLoss float64 `json:"sim_loss"`
	SimLo   float64 `json:"sim_lo"`
	SimHi   float64 `json:"sim_hi"`
	SimOK   bool    `json:"sim_ok"`
	SimErr  string  `json:"sim_err,omitempty"`
	// MeanWait is the mean true waiting time of transmitted messages
	// and Utilization the fraction of channel time spent on successful
	// transmissions (both from the simulation; zero when not simulated).
	MeanWait    float64 `json:"mean_wait"`
	Utilization float64 `json:"utilization"`
	// Offered and Decided count the measured messages of the simulation
	// (summed across replications).
	Offered int64 `json:"offered"`
	Decided int64 `json:"decided"`
}

// fin sanitizes a float for the Result contract: NaN and ±Inf map to 0.
func fin(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}
