// Package linalg provides the dense linear algebra required by the
// semi-Markov decision model: the value-determination step of Howard's
// policy iteration solves a linear system v + g·r = −loss + P·v with one
// relative value pinned to zero, which is an (n×n) solve.  A partial-pivot
// LU factorization over float64 is entirely sufficient at the problem sizes
// involved (states = time-constraint K in slot units, typically < 10³).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	data       []float64
}

// NewMatrix allocates a zero matrix; it panics on non-positive dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j); it panics when out of range.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.Cols+j]
}

// Set assigns element (i, j); it panics when out of range.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.Cols+j] = v
}

// Add adds v to element (i, j).
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.Cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Clone returns an independent deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.data, m.data)
	return out
}

// MulVec returns m·x; it panics if dimensions disagree.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		sum := 0.0
		row := m.data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			sum += v * x[j]
		}
		out[i] = sum
	}
	return out
}

// Mul returns the matrix product m·other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic("linalg: Mul dimension mismatch")
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.data[i*m.Cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < other.Cols; j++ {
				out.data[i*out.Cols+j] += a * other.data[k*other.Cols+j]
			}
		}
	}
	return out
}

// LU is a partial-pivot LU factorization P·A = L·U.
type LU struct {
	lu    *Matrix
	pivot []int
	signs int
}

// Factor computes the LU factorization of a square matrix.  It returns an
// error if the matrix is singular to working precision.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Factor requires square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	for i := range pivot {
		pivot[i] = i
	}
	signs := 1
	for col := 0; col < n; col++ {
		// Partial pivoting: find the largest magnitude in this column.
		maxRow, maxVal := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > maxVal {
				maxRow, maxVal = r, v
			}
		}
		if maxVal == 0 {
			return nil, fmt.Errorf("linalg: singular matrix (zero pivot at column %d)", col)
		}
		if maxRow != col {
			for j := 0; j < n; j++ {
				t := lu.At(col, j)
				lu.Set(col, j, lu.At(maxRow, j))
				lu.Set(maxRow, j, t)
			}
			pivot[col], pivot[maxRow] = pivot[maxRow], pivot[col]
			signs = -signs
		}
		piv := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) / piv
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu.Add(r, j, -f*lu.At(col, j))
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, signs: signs}, nil
}

// Solve returns x with A·x = b for the factored A.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: Solve dimension mismatch (%d vs %d)", len(b), n)
	}
	// Apply permutation.
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution (L has implicit unit diagonal).
	for i := 1; i < n; i++ {
		sum := x[i]
		for j := 0; j < i; j++ {
			sum -= f.lu.At(i, j) * x[j]
		}
		x[i] = sum
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= f.lu.At(i, j) * x[j]
		}
		x[i] = sum / f.lu.At(i, i)
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.signs)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve is a convenience one-shot A·x = b solve.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// ResidualNorm returns ‖A·x − b‖∞, useful for verifying solutions in tests
// and for diagnosing ill-conditioned policy-iteration systems.
func ResidualNorm(a *Matrix, x, b []float64) float64 {
	ax := a.MulVec(x)
	worst := 0.0
	for i := range ax {
		if d := math.Abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
