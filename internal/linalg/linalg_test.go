package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"windowctl/internal/rngutil"
)

func TestIdentitySolve(t *testing.T) {
	a := Identity(4)
	b := []float64{1, 2, 3, 4}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-14 {
			t.Fatalf("identity solve: x=%v", x)
		}
	}
}

func TestKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10  => x = 1, y = 3.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("solve got %v, want [1 3]", x)
	}
}

func TestPivotingRequired(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("pivoted solve got %v, want [3 2]", x)
	}
}

func TestSingularDetected(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular matrix not detected")
	}
}

func TestDeterminant(t *testing.T) {
	a := NewMatrix(3, 3)
	vals := [][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}
	for i := range vals {
		for j := range vals[i] {
			a.Set(i, j, vals[i][j])
		}
	}
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-24) > 1e-12 {
		t.Fatalf("det = %v, want 24", f.Det())
	}
	// Swapping two rows flips the sign.
	b := NewMatrix(3, 3)
	order := []int{1, 0, 2}
	for i := range vals {
		for j := range vals[i] {
			b.Set(i, j, vals[order[i]][j])
		}
	}
	fb, err := Factor(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fb.Det()+24) > 1e-12 {
		t.Fatalf("swapped det = %v, want -24", fb.Det())
	}
}

func TestMulAndMulVec(t *testing.T) {
	a := NewMatrix(2, 3)
	for j := 0; j < 3; j++ {
		a.Set(0, j, float64(j+1)) // [1 2 3]
		a.Set(1, j, float64(j+4)) // [4 5 6]
	}
	v := a.MulVec([]float64{1, 1, 1})
	if v[0] != 6 || v[1] != 15 {
		t.Fatalf("MulVec got %v", v)
	}
	b := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		b.Set(i, 0, 1)
		b.Set(i, 1, 2)
	}
	c := a.Mul(b)
	if c.At(0, 0) != 6 || c.At(0, 1) != 12 || c.At(1, 0) != 15 || c.At(1, 1) != 30 {
		t.Fatalf("Mul wrong: %+v", c)
	}
}

func TestFactorReuse(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	// Solve two right-hand sides with the same factorization.
	x1, err := f.Solve([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	x2, err := f.Solve([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if r := ResidualNorm(a, x1, []float64{1, 0}); r > 1e-12 {
		t.Fatalf("residual 1: %v", r)
	}
	if r := ResidualNorm(a, x2, []float64{0, 1}); r > 1e-12 {
		t.Fatalf("residual 2: %v", r)
	}
}

func TestDimensionErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Factor(a); err == nil {
		t.Fatal("non-square factor accepted")
	}
	sq := Identity(2)
	f, _ := Factor(sq)
	if _, err := f.Solve([]float64{1, 2, 3}); err == nil {
		t.Fatal("wrong-length rhs accepted")
	}
}

func TestPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewMatrix(0, 1) },
		func() { NewMatrix(1, 1).At(1, 0) },
		func() { NewMatrix(1, 1).Set(0, 2, 1) },
		func() { NewMatrix(2, 2).MulVec([]float64{1}) },
		func() { NewMatrix(2, 3).Mul(NewMatrix(2, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: random diagonally dominant systems solve with tiny residuals.
func TestRandomSystemsProperty(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz%8) + 2
		r := rngutil.New(seed)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				v := 2*r.Float64() - 1
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			a.Add(i, i, rowSum+1) // ensure non-singularity
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = 10 * (r.Float64() - 0.5)
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return ResidualNorm(a, x, b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolve100(b *testing.B) {
	r := rngutil.New(1)
	n := 100
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.Float64())
		}
		a.Add(i, i, float64(n))
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
