// Package trace renders the operation of the window protocol as a textual
// timeline — the library's counterpart of the paper's figures 1 (window
// splitting), 2 (a station's view of the time axis) and 4 (maintenance of
// t_past under the controlled policy).  It drives the real protocol engine
// over a scripted set of arrival times, recording every probe.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"windowctl/internal/window"
)

// Event is one probe of the traced run.
type Event struct {
	// Time is when the probe started.
	Time float64
	// Enabled is the probed window.
	Enabled window.Window
	// Outcome is the channel feedback.
	Outcome window.Feedback
	// TPast is the oldest possibly-occupied time at the probe.
	TPast float64
	// Transmitted is the arrival time of the isolated message (success
	// probes only).
	Transmitted float64
	// Discarded lists arrival times dropped by element (4) at the
	// decision epoch immediately preceding this probe.
	Discarded []float64
}

// Trace is a recorded protocol run.
type Trace struct {
	// Events lists every probe in order.
	Events []Event
	// Sent lists transmitted arrival times in transmission order.
	Sent []float64
	// Lost lists arrival times discarded by element (4).
	Lost []float64
	// Cleared is the final set of intervals known to hold no
	// untransmitted arrivals.
	Cleared []window.Window
	// End is the clock when tracing stopped.
	End float64
}

// Config parameterizes a traced run.
type Config struct {
	// Policy is the control policy; required.
	Policy window.Policy
	// Arrivals are the scripted message arrival times (any order).
	Arrivals []float64
	// Tau is the slot time; 0 means 1.
	Tau float64
	// M is the message length in slots; 0 means 4 (kept short so traces
	// stay readable).
	M float64
	// K is the constraint; 0 means +Inf.
	K float64
	// Start is the initial clock; it must exceed every arrival.  0 means
	// just after the latest arrival.
	Start float64
	// MaxSteps bounds the run; 0 means 200.
	MaxSteps int
}

// Run drives the protocol over the scripted arrivals until all messages
// are transmitted or discarded, the clock reaches Start+K with nothing
// pending, or MaxSteps probes have happened.
func Run(cfg Config) (*Trace, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("trace: missing policy")
	}
	if err := window.Validate(cfg.Policy); err != nil {
		return nil, err
	}
	if cfg.Tau == 0 {
		cfg.Tau = 1
	}
	if cfg.M == 0 {
		cfg.M = 4
	}
	if cfg.K == 0 {
		cfg.K = math.Inf(1)
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 200
	}
	pending := append([]float64(nil), cfg.Arrivals...)
	sort.Float64s(pending)
	start := cfg.Start
	if start == 0 {
		if len(pending) > 0 {
			start = pending[len(pending)-1] + cfg.Tau
		} else {
			start = cfg.Tau
		}
	}
	if len(pending) > 0 && pending[len(pending)-1] >= start {
		return nil, fmt.Errorf("trace: arrivals must precede the start time %v", start)
	}

	tr := &Trace{}
	tracker := window.NewTracker(0, cfg.K, cfg.Policy.Discards())
	now := start
	steps := 0
	for steps < cfg.MaxSteps {
		var discarded []float64
		if cfg.Policy.Discards() {
			h := tracker.Horizon(now)
			cut := sort.SearchFloat64s(pending, h)
			discarded = append(discarded, pending[:cut]...)
			pending = pending[cut:]
			tr.Lost = append(tr.Lost, discarded...)
		}
		if len(pending) == 0 {
			break
		}
		view := tracker.View(now, cfg.Tau, 1)
		if view.TNewest-view.TPast <= 0 {
			now += cfg.Tau
			continue
		}
		count := func(w window.Window) int {
			lo := sort.SearchFloat64s(pending, w.Start)
			hi := sort.SearchFloat64s(pending, w.End)
			return hi - lo
		}
		rep, err := window.RunProcess(cfg.Policy, view, count)
		if err != nil {
			return nil, err
		}
		for si, s := range rep.Steps {
			ev := Event{Time: now, Enabled: s.Enabled, Outcome: s.Outcome, TPast: view.TPast}
			if si == 0 {
				ev.Discarded = discarded
			}
			if s.Outcome == window.Success {
				lo := sort.SearchFloat64s(pending, s.Enabled.Start)
				ev.Transmitted = pending[lo]
				tr.Sent = append(tr.Sent, pending[lo])
				pending = append(pending[:lo], pending[lo+1:]...)
				now += cfg.M * cfg.Tau
			} else {
				now += cfg.Tau
			}
			tr.Events = append(tr.Events, ev)
			steps++
		}
		tracker.Commit(now, rep.Examined)
	}
	tr.End = now
	tr.Cleared = tracker.AppendCleared(tr.Cleared[:0])
	return tr, nil
}

// Render formats the trace as one line per probe, in the style of the
// paper's figure 1 narrative.
func (t *Trace) Render() string {
	var b strings.Builder
	for _, e := range t.Events {
		fmt.Fprintf(&b, "t=%7.2f  t_past=%7.2f  enable %-22s -> %-9s", e.Time, e.TPast, e.Enabled, e.Outcome)
		if e.Outcome == window.Success {
			fmt.Fprintf(&b, "  transmit arrival@%.2f", e.Transmitted)
		}
		if len(e.Discarded) > 0 {
			fmt.Fprintf(&b, "  (discarded %d late message(s))", len(e.Discarded))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "sent %d message(s) in order %v; discarded %v\n", len(t.Sent), t.Sent, t.Lost)
	return b.String()
}

// RenderPseudoTime draws the figure-3 view: the actual time axis on top
// ('#' = examined/removed, '.' = may hold messages) and, below it, the
// compressed pseudo-time axis in which the removed intervals vanish, with
// '|' marking where each surviving actual-time sample lands.
func (t *Trace) RenderPseudoTime(lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	if hi <= lo {
		return ""
	}
	var covered window.IntervalSet
	for _, w := range t.Cleared {
		covered.Add(w)
	}
	var actual, pseudo strings.Builder
	actual.WriteString("actual: ")
	pseudo.WriteString("pseudo: ")
	for i := 0; i < width; i++ {
		x := lo + (hi-lo)*(float64(i)+0.5)/float64(width)
		if covered.Covers(x) {
			actual.WriteByte('#')
		} else {
			actual.WriteByte('.')
			pseudo.WriteByte('.')
		}
	}
	total := covered.UncoveredMeasure(lo, hi)
	return fmt.Sprintf("%s\n%s   (uncompressed span %.4g, pseudo span %.4g)",
		actual.String(), pseudo.String(), hi-lo, total)
}

// RenderAxis draws the figure-2 view of the time axis over [lo, hi): '#'
// marks intervals known to contain no untransmitted arrivals, '.' marks
// time that may still hold messages, and '|' closes the axis at the
// current time.
func (t *Trace) RenderAxis(lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	if hi <= lo {
		return ""
	}
	var covered window.IntervalSet
	for _, w := range t.Cleared {
		covered.Add(w)
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		x := lo + (hi-lo)*(float64(i)+0.5)/float64(width)
		if covered.Covers(x) {
			b.WriteByte('#')
		} else {
			b.WriteByte('.')
		}
	}
	b.WriteByte('|')
	return b.String()
}
