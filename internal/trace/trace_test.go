package trace

import (
	"math"
	"strings"
	"testing"

	"windowctl/internal/window"
)

func TestFigure1Scenario(t *testing.T) {
	// The figure-1 narrative: three stations with arrivals; the initial
	// window holds two, splitting isolates the older one.
	cfg := Config{
		Policy:   window.Controlled{Length: window.FixedLength(8)},
		Arrivals: []float64{1.0, 3.0, 6.5},
		Start:    8,
		K:        math.Inf(1),
	}
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Sent) != 3 {
		t.Fatalf("sent %v", tr.Sent)
	}
	// Controlled policy: global FCFS order.
	if tr.Sent[0] != 1.0 || tr.Sent[1] != 3.0 || tr.Sent[2] != 6.5 {
		t.Fatalf("not FCFS order: %v", tr.Sent)
	}
	if len(tr.Lost) != 0 {
		t.Fatalf("lost %v", tr.Lost)
	}
	out := tr.Render()
	for _, want := range []string{"collision", "success", "transmit arrival@1.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDiscardAppearsInTrace(t *testing.T) {
	// K small: the old arrival expires before it can be sent.
	cfg := Config{
		Policy:   window.Controlled{Length: window.FixedLength(2)},
		Arrivals: []float64{0.5, 9.5},
		Start:    10,
		K:        3,
		M:        4,
	}
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Lost) != 1 || tr.Lost[0] != 0.5 {
		t.Fatalf("lost %v, want the stale arrival", tr.Lost)
	}
	if len(tr.Sent) != 1 || tr.Sent[0] != 9.5 {
		t.Fatalf("sent %v", tr.Sent)
	}
	if !strings.Contains(tr.Render(), "discarded") {
		t.Fatal("render does not mention the discard")
	}
}

func TestLCFSTraceOrder(t *testing.T) {
	cfg := Config{
		Policy:   window.LCFS{Length: window.FixedLength(8)},
		Arrivals: []float64{1.0, 3.0, 6.5},
		Start:    8,
	}
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Sent) != 3 || tr.Sent[0] != 6.5 {
		t.Fatalf("LCFS should send the newest first: %v", tr.Sent)
	}
	// LCFS sweeps in pseudo time, so the stale messages are still
	// delivered (newest remaining first) rather than starving.
	if tr.Sent[1] != 3.0 || tr.Sent[2] != 1.0 {
		t.Fatalf("LCFS order: %v", tr.Sent)
	}
}

func TestRenderAxis(t *testing.T) {
	cfg := Config{
		Policy:   window.Controlled{Length: window.FixedLength(4)},
		Arrivals: []float64{2.0},
		Start:    4,
	}
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	axis := tr.RenderAxis(0, tr.End, 40)
	if !strings.Contains(axis, "#") {
		t.Fatalf("axis has no cleared region: %s", axis)
	}
	if !strings.HasSuffix(axis, "|") {
		t.Fatal("axis not terminated")
	}
	if tr.RenderAxis(5, 5, 40) != "" {
		t.Fatal("degenerate range should render empty")
	}
	// Tiny width is clamped.
	if len(tr.RenderAxis(0, tr.End, 1)) < 11 {
		t.Fatal("width clamp failed")
	}
}

func TestRenderPseudoTime(t *testing.T) {
	cfg := Config{
		Policy:   window.LCFS{Length: window.FixedLength(3)},
		Arrivals: []float64{1, 5},
		Start:    6,
		MaxSteps: 10,
	}
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := tr.RenderPseudoTime(0, tr.End, 60)
	if !strings.Contains(out, "actual:") || !strings.Contains(out, "pseudo:") {
		t.Fatalf("missing axes:\n%s", out)
	}
	// The pseudo line must be shorter than the actual line when anything
	// was examined (compression).
	lines := strings.Split(out, "\n")
	if len(lines) < 2 {
		t.Fatal("missing second axis")
	}
	actualDots := strings.Count(lines[0], ".") + strings.Count(lines[0], "#")
	pseudoDots := strings.Count(lines[1], ".")
	if pseudoDots >= actualDots {
		t.Fatalf("no compression visible:\n%s", out)
	}
	if tr.RenderPseudoTime(3, 3, 40) != "" {
		t.Fatal("degenerate range should render empty")
	}
}

func TestEmptyArrivals(t *testing.T) {
	cfg := Config{
		Policy: window.Controlled{Length: window.FixedLength(4)},
	}
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 0 || len(tr.Sent) != 0 {
		t.Fatal("empty scenario produced activity")
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("missing policy accepted")
	}
	if _, err := Run(Config{Policy: window.Controlled{}}); err == nil {
		t.Fatal("invalid policy accepted")
	}
	if _, err := Run(Config{
		Policy:   window.Controlled{Length: window.FixedLength(1)},
		Arrivals: []float64{5},
		Start:    3,
	}); err == nil {
		t.Fatal("arrival after start accepted")
	}
}

func TestMaxStepsBound(t *testing.T) {
	cfg := Config{
		Policy:   window.FCFS{Length: window.FixedLength(0.5)},
		Arrivals: []float64{1, 2, 3, 4, 5, 6, 7},
		Start:    8,
		MaxSteps: 3,
	}
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) > 3+2 { // one process may finish its last steps
		t.Fatalf("MaxSteps ignored: %d events", len(tr.Events))
	}
}

// Golden trace: the exact probe sequence for a deterministic scenario,
// pinned so any engine change that alters protocol behaviour is caught.
func TestGoldenTrace(t *testing.T) {
	cfg := Config{
		Policy:   window.Controlled{Length: window.FixedLength(8)},
		Arrivals: []float64{2.2, 3.7},
		Start:    8,
		M:        4,
	}
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type probe struct {
		w  window.Window
		fb window.Feedback
	}
	want := []probe{
		{window.Window{Start: 0, End: 8}, window.Collision},
		{window.Window{Start: 0, End: 4}, window.Collision},
		{window.Window{Start: 0, End: 2}, window.Idle},
		{window.Window{Start: 2, End: 3}, window.Success}, // 2.2 isolated
		// Second process picks up from t_past = 3.
	}
	if len(tr.Events) < len(want) {
		t.Fatalf("only %d events", len(tr.Events))
	}
	for i, w := range want {
		if tr.Events[i].Enabled != w.w || tr.Events[i].Outcome != w.fb {
			t.Fatalf("event %d: got %v %v, want %v %v",
				i, tr.Events[i].Enabled, tr.Events[i].Outcome, w.w, w.fb)
		}
	}
	if tr.Sent[0] != 2.2 || tr.Sent[1] != 3.7 {
		t.Fatalf("sent %v", tr.Sent)
	}
}
