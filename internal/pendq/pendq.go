// Package pendq provides the arrival-ordered indexed pending queue that
// backs the simulators' hot path.
//
// Both simulation engines maintain sets of untransmitted messages ordered
// by arrival time and repeatedly (1) count how many fall inside a probed
// window, (2) extract the single message of a successful window, and
// (3) discard every message older than the deadline horizon (policy
// element (4)).  A plain sorted slice makes (1) cheap but pays an O(n)
// memmove for every (2) and (3) — the dominant cost of heavy-backlog
// runs.
//
// Queue replaces the sorted slice with an arrival-ordered buffer plus a
// Fenwick (binary-indexed) tree of liveness flags:
//
//   - Push appends in arrival order (arrivals are generated monotonically),
//     amortized O(1);
//   - CountIn is two binary searches plus two prefix sums, O(log n);
//   - PopFirstIn marks the element dead in the tree instead of moving
//     memory (lazy deletion), O(log n);
//   - DiscardBelow advances a head index over the expired prefix,
//     amortized O(1) per discarded message.
//
// Dead slots are physically reclaimed only during compaction, which runs
// when the buffer fills and at least half of it is reclaimable; each
// element is moved O(1) times amortized, and once the buffer has grown to
// twice the peak live backlog the queue never allocates again — the
// engines' zero-steady-state-allocation invariant rests on this.
package pendq

import "fmt"

// Queue is an arrival-time-ordered multiset of items supporting
// logarithmic window counting and extraction.  Keys must be pushed in
// non-decreasing order.  The zero value is ready to use.
type Queue[T any] struct {
	keys  []float64 // non-decreasing, including dead slots
	items []T
	dead  []bool
	tree  []int32 // 1-indexed Fenwick tree over liveness; len = cap(keys)+1
	top   int32   // highest power of two <= cap(keys), for tree descent
	head  int     // slots below head are dead (reclaimed prefix)
	live  int
}

// Len returns the number of live items.
func (q *Queue[T]) Len() int { return q.live }

// treeAdd adds delta at 0-based slot i.
func (q *Queue[T]) treeAdd(i int, delta int32) {
	for j := i + 1; j < len(q.tree); j += j & -j {
		q.tree[j] += delta
	}
}

// treePrefix returns the number of live items in slots [0, i).
func (q *Queue[T]) treePrefix(i int) int {
	s := int32(0)
	for ; i > 0; i -= i & -i {
		s += q.tree[i]
	}
	return int(s)
}

// treeKth returns the 0-based slot of the k-th (1-based) live item.  The
// caller guarantees 1 <= k <= live.
func (q *Queue[T]) treeKth(k int) int {
	pos := 0
	rem := int32(k)
	for bit := q.top; bit > 0; bit >>= 1 {
		if next := pos + int(bit); next < len(q.tree) && q.tree[next] < rem {
			rem -= q.tree[next]
			pos = next
		}
	}
	return pos // treePrefix(pos) < k <= treePrefix(pos+1)
}

// lowerBound returns the first slot in [head, len) whose key is >= x.
func (q *Queue[T]) lowerBound(x float64) int {
	lo, hi := q.head, len(q.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.keys[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Push appends an item.  It panics if key is below the last pushed key:
// the queue relies on monotone arrival generation for its ordering.
func (q *Queue[T]) Push(key float64, item T) {
	if key != key {
		panic("pendq: NaN key")
	}
	if n := len(q.keys); n > 0 && key < q.keys[n-1] {
		panic(fmt.Sprintf("pendq: key %v below last key %v", key, q.keys[n-1]))
	}
	if len(q.keys) == cap(q.keys) {
		q.grow()
	}
	q.keys = append(q.keys, key)
	q.items = append(q.items, item)
	q.dead = append(q.dead, false)
	q.treeAdd(len(q.keys)-1, 1)
	q.live++
}

// grow makes room for at least one more slot.  If at least half the
// buffer is dead, the live items are compacted in place — no allocation;
// otherwise capacity doubles.  Either way the Fenwick tree is rebuilt in
// O(cap).
func (q *Queue[T]) grow() {
	capacity := cap(q.keys)
	if capacity-q.live >= capacity/2 && capacity >= 16 {
		q.compact(capacity)
		return
	}
	newCap := capacity * 2
	if newCap < 16 {
		newCap = 16
	}
	q.compact(newCap)
}

// compact rewrites the buffer with all dead slots dropped, into fresh
// arrays when newCap exceeds the current capacity and in place otherwise.
func (q *Queue[T]) compact(newCap int) {
	keys, items, dead := q.keys, q.items, q.dead
	if newCap > cap(q.keys) {
		keys = make([]float64, 0, newCap)
		items = make([]T, 0, newCap)
		dead = make([]bool, 0, newCap)
		q.tree = make([]int32, newCap+1)
		q.top = 1
		for q.top*2 <= int32(newCap) {
			q.top *= 2
		}
		keys = keys[:len(q.keys)]
		items = items[:len(q.items)]
		dead = dead[:len(q.dead)]
		copy(keys, q.keys)
		copy(items, q.items)
		copy(dead, q.dead)
	} else {
		clear(q.tree)
	}
	w := 0
	for r := q.head; r < len(keys); r++ {
		if dead[r] {
			continue
		}
		keys[w], items[w], dead[w] = keys[r], items[r], false
		w++
	}
	if w != q.live {
		panic(fmt.Sprintf("pendq: compaction found %d live, tracked %d", w, q.live))
	}
	var zero T
	for i := w; i < len(items); i++ {
		items[i] = zero // release references held by dead slots
	}
	q.keys, q.items, q.dead = keys[:w], items[:w], dead[:w]
	q.head = 0
	// O(cap) Fenwick build over w ones.  The sweep must cover the whole
	// tree, not just [1, w]: interior nodes above w hold partial sums of
	// their children and still have to propagate them upward.
	for i := 1; i < len(q.tree); i++ {
		if i <= w {
			q.tree[i]++
		}
		if j := i + (i & -i); j < len(q.tree) {
			q.tree[j] += q.tree[i]
		}
	}
}

// CountIn returns the number of live items with keys in [lo, hi).
func (q *Queue[T]) CountIn(lo, hi float64) int {
	if hi <= lo || q.live == 0 {
		return 0
	}
	i := q.lowerBound(lo)
	j := q.lowerBound(hi)
	if i == j {
		return 0
	}
	return q.treePrefix(j) - q.treePrefix(i)
}

// firstIn locates the oldest live item with key in [lo, hi), returning
// its slot or -1.
func (q *Queue[T]) firstIn(lo, hi float64) int {
	if hi <= lo || q.live == 0 {
		return -1
	}
	i := q.lowerBound(lo)
	k := q.treePrefix(i)
	if k >= q.live {
		return -1
	}
	idx := q.treeKth(k + 1)
	if idx >= len(q.keys) || q.keys[idx] >= hi {
		return -1
	}
	return idx
}

// FirstIn returns the oldest live item with key in [lo, hi) without
// removing it.
func (q *Queue[T]) FirstIn(lo, hi float64) (key float64, item T, ok bool) {
	idx := q.firstIn(lo, hi)
	if idx < 0 {
		var zero T
		return 0, zero, false
	}
	return q.keys[idx], q.items[idx], true
}

// PopFirstIn removes and returns the oldest live item with key in
// [lo, hi).
func (q *Queue[T]) PopFirstIn(lo, hi float64) (key float64, item T, ok bool) {
	idx := q.firstIn(lo, hi)
	if idx < 0 {
		var zero T
		return 0, zero, false
	}
	q.dead[idx] = true
	q.treeAdd(idx, -1)
	q.live--
	return q.keys[idx], q.items[idx], true
}

// DiscardBelow removes every live item with key < horizon — necessarily
// a prefix — calling fn (if non-nil) on each in arrival order, and
// returns how many were discarded.
func (q *Queue[T]) DiscardBelow(horizon float64, fn func(key float64, item T)) int {
	n := 0
	for q.head < len(q.keys) && q.keys[q.head] < horizon {
		h := q.head
		if !q.dead[h] {
			q.dead[h] = true
			q.treeAdd(h, -1)
			q.live--
			n++
			if fn != nil {
				fn(q.keys[h], q.items[h])
			}
		}
		q.head++
	}
	return n
}

// ForEach calls fn on every live item in arrival order.
func (q *Queue[T]) ForEach(fn func(key float64, item T)) {
	for i := q.head; i < len(q.keys); i++ {
		if !q.dead[i] {
			fn(q.keys[i], q.items[i])
		}
	}
}

// Reset empties the queue, retaining its capacity.
func (q *Queue[T]) Reset() {
	var zero T
	for i := range q.items {
		q.items[i] = zero
	}
	q.keys = q.keys[:0]
	q.items = q.items[:0]
	q.dead = q.dead[:0]
	clear(q.tree)
	q.head = 0
	q.live = 0
}
