package pendq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// refQueue is the naive sorted-slice reference model the optimized queue
// must agree with operation for operation.
type refQueue struct {
	keys  []float64
	items []int
}

func (r *refQueue) Len() int { return len(r.keys) }

func (r *refQueue) Push(key float64, item int) {
	r.keys = append(r.keys, key)
	r.items = append(r.items, item)
}

func (r *refQueue) CountIn(lo, hi float64) int {
	if hi <= lo {
		return 0
	}
	a := sort.SearchFloat64s(r.keys, lo)
	b := sort.SearchFloat64s(r.keys, hi)
	return b - a
}

func (r *refQueue) PopFirstIn(lo, hi float64) (float64, int, bool) {
	i := sort.SearchFloat64s(r.keys, lo)
	if hi <= lo || i >= len(r.keys) || r.keys[i] >= hi {
		return 0, 0, false
	}
	k, it := r.keys[i], r.items[i]
	r.keys = append(r.keys[:i], r.keys[i+1:]...)
	r.items = append(r.items[:i], r.items[i+1:]...)
	return k, it, true
}

func (r *refQueue) FirstIn(lo, hi float64) (float64, int, bool) {
	i := sort.SearchFloat64s(r.keys, lo)
	if hi <= lo || i >= len(r.keys) || r.keys[i] >= hi {
		return 0, 0, false
	}
	return r.keys[i], r.items[i], true
}

func (r *refQueue) DiscardBelow(horizon float64, fn func(float64, int)) int {
	cut := sort.SearchFloat64s(r.keys, horizon)
	for i := 0; i < cut; i++ {
		if fn != nil {
			fn(r.keys[i], r.items[i])
		}
	}
	r.keys = append(r.keys[:0], r.keys[cut:]...)
	r.items = append(r.items[:0], r.items[cut:]...)
	return cut
}

type pair struct {
	k float64
	v int
}

func (r *refQueue) All() []pair {
	out := []pair{}
	for i := range r.keys {
		out = append(out, pair{r.keys[i], r.items[i]})
	}
	return out
}

func allOf(q *Queue[int]) []pair {
	out := []pair{}
	q.ForEach(func(k float64, v int) { out = append(out, pair{k, v}) })
	return out
}

func equalPairs(a, b []pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// driveAgainstReference interleaves a random operation sequence over both
// implementations and fails on the first disagreement.
func driveAgainstReference(t *testing.T, rng *rand.Rand, steps int) {
	t.Helper()
	var q Queue[int]
	var ref refQueue
	lastKey := 0.0
	horizon := 0.0
	nextItem := 0

	window := func() (float64, float64) {
		// Windows biased to the populated key range, including empty and
		// out-of-range ones.
		span := lastKey - horizon + 1
		lo := horizon + (rng.Float64()*1.4-0.2)*span
		w := rng.Float64() * span * 0.5
		return lo, lo + w
	}

	for s := 0; s < steps; s++ {
		switch op := rng.Intn(10); {
		case op < 4: // push, occasionally with duplicate keys
			gap := rng.ExpFloat64()
			if rng.Intn(8) == 0 {
				gap = 0
			}
			lastKey += gap
			q.Push(lastKey, nextItem)
			ref.Push(lastKey, nextItem)
			nextItem++
		case op < 6: // count
			lo, hi := window()
			if got, want := q.CountIn(lo, hi), ref.CountIn(lo, hi); got != want {
				t.Fatalf("step %d: CountIn(%v,%v) = %d, reference %d", s, lo, hi, got, want)
			}
		case op < 8: // pop (and peek) oldest in window
			lo, hi := window()
			pk, pv, pok := q.FirstIn(lo, hi)
			rk, rv, rok := ref.FirstIn(lo, hi)
			if pok != rok || pk != rk || pv != rv {
				t.Fatalf("step %d: FirstIn(%v,%v) = (%v,%v,%v), reference (%v,%v,%v)", s, lo, hi, pk, pv, pok, rk, rv, rok)
			}
			gk, gv, gok := q.PopFirstIn(lo, hi)
			wk, wv, wok := ref.PopFirstIn(lo, hi)
			if gok != wok || gk != wk || gv != wv {
				t.Fatalf("step %d: PopFirstIn(%v,%v) = (%v,%v,%v), reference (%v,%v,%v)", s, lo, hi, gk, gv, gok, wk, wv, wok)
			}
		case op < 9: // advance the discard horizon
			horizon += rng.ExpFloat64() * 2
			var got, want []pair
			n := q.DiscardBelow(horizon, func(k float64, v int) { got = append(got, pair{k, v}) })
			m := ref.DiscardBelow(horizon, func(k float64, v int) { want = append(want, pair{k, v}) })
			if n != m || !equalPairs(got, want) {
				t.Fatalf("step %d: DiscardBelow(%v) = %d %v, reference %d %v", s, horizon, n, got, m, want)
			}
		default: // full-state audit
			if q.Len() != ref.Len() {
				t.Fatalf("step %d: Len = %d, reference %d", s, q.Len(), ref.Len())
			}
			if !equalPairs(allOf(&q), ref.All()) {
				t.Fatalf("step %d: ForEach disagrees\n got  %v\n want %v", s, allOf(&q), ref.All())
			}
		}
	}
	if !equalPairs(allOf(&q), ref.All()) {
		t.Fatalf("final state disagrees\n got  %v\n want %v", allOf(&q), ref.All())
	}
}

func TestQueueAgainstReferenceModel(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		driveAgainstReference(t, rng, 2000)
	}
}

func TestQueueLongRunCompaction(t *testing.T) {
	// A long churn run: pushes race a steadily advancing horizon, forcing
	// many in-place compactions while the live set stays small.
	var q Queue[int]
	var ref refQueue
	rng := rand.New(rand.NewSource(7))
	key, horizon := 0.0, 0.0
	for i := 0; i < 200000; i++ {
		key += rng.ExpFloat64()
		q.Push(key, i)
		ref.Push(key, i)
		if i%3 == 0 {
			horizon = key - 5
			q.DiscardBelow(horizon, nil)
			ref.DiscardBelow(horizon, nil)
		}
		if i%7 == 0 {
			lo := key - 4
			gk, gv, gok := q.PopFirstIn(lo, key)
			wk, wv, wok := ref.PopFirstIn(lo, key)
			if gok != wok || gk != wk || gv != wv {
				t.Fatalf("i=%d: pop (%v,%v,%v) vs (%v,%v,%v)", i, gk, gv, gok, wk, wv, wok)
			}
		}
	}
	if q.Len() != ref.Len() || !equalPairs(allOf(&q), ref.All()) {
		t.Fatalf("final state disagrees: len %d vs %d", q.Len(), ref.Len())
	}
	if c := cap(q.keys); c > 4096 {
		t.Fatalf("buffer grew to %d for a ~15-element live set — compaction not reclaiming", c)
	}
}

func TestQueueMonotonicityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order push did not panic")
		}
	}()
	var q Queue[int]
	q.Push(2, 0)
	q.Push(1, 1)
}

func TestQueueReset(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(float64(i), i)
	}
	q.Reset()
	if q.Len() != 0 || q.CountIn(0, 1000) != 0 {
		t.Fatalf("reset queue not empty: len=%d", q.Len())
	}
	q.Push(0.5, 1)
	if q.CountIn(0, 1) != 1 {
		t.Fatal("push after reset lost")
	}
}

// TestQueueSteadyStateZeroAlloc verifies the queue's own allocation
// contract: once the buffer has grown past the peak live backlog, the
// push/count/pop/discard cycle never allocates.
func TestQueueSteadyStateZeroAlloc(t *testing.T) {
	var q Queue[int]
	key := 0.0
	// Warm to a stable capacity at ~64 live items.
	for i := 0; i < 10000; i++ {
		key++
		q.Push(key, i)
		if q.Len() > 64 {
			q.DiscardBelow(key-64, nil)
		}
	}
	avg := testing.AllocsPerRun(5000, func() {
		key++
		q.Push(key, 0)
		if q.CountIn(key-10, key+1) < 1 {
			t.Fatal("lost the just-pushed item")
		}
		q.PopFirstIn(key-3, key+1)
		q.DiscardBelow(key-64, nil)
	})
	if avg != 0 {
		t.Fatalf("steady-state cycle allocates %v times per run", avg)
	}
}

// FuzzQueueAgainstReferenceModel drives the op-sequence comparison from
// fuzzer-chosen seeds.
func FuzzQueueAgainstReferenceModel(f *testing.F) {
	f.Add(int64(1), uint16(500))
	f.Add(int64(99), uint16(1500))
	f.Fuzz(func(t *testing.T, seed int64, steps uint16) {
		rng := rand.New(rand.NewSource(seed))
		driveAgainstReference(t, rng, int(steps%4096))
	})
}

func TestQueueNaNRejected(t *testing.T) {
	// A NaN key would slip past the monotonicity check (NaN < x and
	// x < NaN are both false) and poison every later binary search, so
	// Push rejects it explicitly.
	defer func() {
		if recover() == nil {
			t.Fatal("NaN key did not panic")
		}
	}()
	var q Queue[int]
	q.Push(1, 0)
	q.Push(math.NaN(), 1)
}
