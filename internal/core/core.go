// Package core is the high-level entry point of the library: it describes
// one operating point of the time-window multiple-access protocol in the
// paper's own parameterization (τ, M, ρ′, K) and exposes every analysis
// the reproduction supports — the analytic loss models of §4, the event
// simulators, the semi-Markov decision model of §3, and scripted traces.
//
// The package wires together the specialized internal packages; see
// windowctl (the module root) for the re-exported public surface.
package core

import (
	"fmt"
	"math"
	"strings"

	"windowctl/internal/dist"
	"windowctl/internal/fault"
	"windowctl/internal/metrics"
	"windowctl/internal/protocol"
	"windowctl/internal/protocol/acdc"
	"windowctl/internal/protocol/tournament"
	"windowctl/internal/queueing"
	"windowctl/internal/sim"
	"windowctl/internal/smdp"
	"windowctl/internal/trace"
	"windowctl/internal/window"

	// Link the full protocol zoo into the registry, so every protocol is
	// reachable by name from System.Protocol, the sweep discipline axis
	// and the CLIs' -protocol flag.
	_ "windowctl/internal/protocol/zoo"
)

// Discipline selects the scheduling discipline — the paper's controlled
// protocol or one of the uncontrolled [Kurose 83] baselines.
type Discipline int

// Discipline values.
const (
	// Controlled is the paper's optimal policy: Theorem-1 window
	// placement and splitting plus sender-side discard (element (4)).
	Controlled Discipline = iota
	// FCFS is the uncontrolled global-FCFS baseline.
	FCFS
	// LCFS is the uncontrolled global-LCFS baseline.
	LCFS
	// Random is the uncontrolled random-order baseline.
	Random
	// Tournament is Galtier's constant-window tournament MAC
	// (internal/protocol/tournament).
	Tournament
	// ACDC is admission-control delay-constrained random access
	// (internal/protocol/acdc).
	ACDC
)

// String implements fmt.Stringer.  The returned name doubles as the
// protocol-registry selector for the discipline.
func (d Discipline) String() string {
	switch d {
	case Controlled:
		return "controlled"
	case FCFS:
		return "fcfs"
	case LCFS:
		return "lcfs"
	case Random:
		return "random"
	case Tournament:
		return tournament.Name
	case ACDC:
		return acdc.Name
	default:
		return fmt.Sprintf("discipline(%d)", int(d))
	}
}

// Disciplines returns every named discipline, in enum order.  The list
// is what ParseDiscipline accepts and what the sweep discipline axis
// can range over.
func Disciplines() []Discipline {
	return []Discipline{Controlled, FCFS, LCFS, Random, Tournament, ACDC}
}

// ParseDiscipline maps a canonical name (Discipline.String) back to the
// discipline value.
func ParseDiscipline(name string) (Discipline, error) {
	for _, d := range Disciplines() {
		if d.String() == name {
			return d, nil
		}
	}
	names := make([]string, 0, len(Disciplines()))
	for _, d := range Disciplines() {
		names = append(names, d.String())
	}
	return 0, fmt.Errorf("core: unknown discipline %q (have %s)", name, strings.Join(names, ", "))
}

// System is one protocol operating point.
type System struct {
	// Tau is the slot time (end-to-end propagation delay); 0 means 1.
	Tau float64
	// M is the fixed message length in slots; required.
	M float64
	// RhoPrime is the normalized offered load λ′·M·τ; required.
	RhoPrime float64
	// K is the waiting-time constraint (absolute time); required.
	K float64
	// Discipline selects the policy (default Controlled).
	Discipline Discipline
	// Protocol selects a registered protocol plugin by name (see
	// internal/protocol) — the superset of the Discipline enum, open to
	// third-party registrations.  Empty means use Discipline; setting
	// both a Protocol and a non-default Discipline is an error.  Names
	// that correspond to a discipline are normalized onto it, so the
	// analytic models keep working.
	Protocol string
	// WindowG overrides the mean initial-window content (policy element
	// (2)); 0 selects the paper's heuristic optimum G*.
	WindowG float64
	// SplitFraction overrides where windows are cut (element (3)'s
	// companion knob, a §5 extension); 0 means the paper's ½.  Only the
	// controlled discipline supports it.
	SplitFraction float64
	// Seed drives simulation randomness (and the Random discipline's
	// common sequence).
	Seed uint64
	// TxLengths, when non-nil, draws each message's transmission time
	// from this law instead of the constant M·τ (Theorem 1 requires only
	// identically distributed lengths).  Its mean should equal M·τ so
	// RhoPrime keeps its meaning.  Supported by AnalyticLoss (controlled
	// discipline) and Simulate.
	TxLengths dist.Distribution
}

// withDefaults validates and fills defaults.
func (s System) withDefaults() (System, error) {
	if s.Tau == 0 {
		s.Tau = 1
	}
	if s.Tau < 0 || s.M <= 0 || s.RhoPrime <= 0 {
		return s, fmt.Errorf("core: need positive Tau, M, RhoPrime (got %v, %v, %v)", s.Tau, s.M, s.RhoPrime)
	}
	if s.K <= 0 || math.IsNaN(s.K) {
		return s, fmt.Errorf("core: need positive K (got %v)", s.K)
	}
	if s.WindowG == 0 {
		s.WindowG = queueing.OptimalWindowContent()
	}
	if s.WindowG < 0 {
		return s, fmt.Errorf("core: negative WindowG %v", s.WindowG)
	}
	if s.SplitFraction != 0 && (s.SplitFraction <= 0 || s.SplitFraction >= 1) {
		return s, fmt.Errorf("core: SplitFraction %v outside (0,1)", s.SplitFraction)
	}
	if s.Protocol != "" {
		if s.Discipline != Controlled {
			return s, fmt.Errorf("core: set Discipline or Protocol, not both (got %v and %q)", s.Discipline, s.Protocol)
		}
		// Normalize protocol names that ARE disciplines onto the enum, so
		// the analytic models and discipline-specific checks keep working.
		if d, err := ParseDiscipline(s.Protocol); err == nil {
			s.Discipline, s.Protocol = d, ""
		} else if _, ok := protocol.Get(s.Protocol); !ok {
			return s, fmt.Errorf("core: unknown protocol %q (registered: %s)", s.Protocol, strings.Join(protocol.Names(), ", "))
		}
	}
	if s.SplitFraction != 0 && (s.Discipline != Controlled || s.Protocol != "") {
		return s, fmt.Errorf("core: SplitFraction requires the controlled discipline")
	}
	return s, nil
}

// protocolName returns the registry selector for the system's policy.
func (s System) protocolName() string {
	if s.Protocol != "" {
		return s.Protocol
	}
	return s.Discipline.String()
}

// Lambda returns the total message arrival rate λ′ = ρ′/(M·τ).
func (s System) Lambda() float64 {
	tau := s.Tau
	if tau == 0 {
		tau = 1
	}
	return s.RhoPrime / (s.M * tau)
}

// Policy materializes the window control policy for this system via
// the protocol registry.  The builtin builders reproduce the exact
// construction this method used before the registry existed (pinned by
// the engine goldens), so existing seeds keep their bit-identical runs.
func (s System) Policy() (window.Policy, error) {
	s, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	return protocol.Build(s.protocolName(), protocol.Params{
		Tau: s.Tau, M: s.M, Lambda: s.Lambda(), K: s.K,
		G: s.WindowG, SplitFraction: s.SplitFraction, Seed: s.Seed,
	})
}

// AnalyticResult carries the model prediction for one operating point.
type AnalyticResult struct {
	// Loss is the predicted fraction of messages lost.
	Loss float64
	// Rho is the offered load λ′·E[service] including windowing overhead.
	Rho float64
	// ServerIdle is P(0) (controlled discipline only; NaN otherwise).
	ServerIdle float64
	// WindowContent is the mean window content G in effect.
	WindowContent float64
}

// AnalyticLoss evaluates the §4 queueing model for the system: eq. 4.7
// for the controlled discipline, the Beneš series for FCFS and the
// busy-period transform for LCFS.  The Random discipline has no analytic
// model and returns an error.
func (s System) AnalyticLoss() (AnalyticResult, error) {
	s, err := s.withDefaults()
	if err != nil {
		return AnalyticResult{}, err
	}
	if s.Protocol != "" {
		// A registered protocol outside the discipline enum: simulation
		// only, like the Random discipline.
		return AnalyticResult{}, fmt.Errorf("core: no analytic model for protocol %q", s.Protocol)
	}
	model := queueing.ProtocolModel{Tau: s.Tau, M: s.M, RhoPrime: s.RhoPrime, TxDist: s.TxLengths}
	switch s.Discipline {
	case Controlled:
		res, err := model.ControlledLoss(s.K)
		if err != nil {
			return AnalyticResult{}, err
		}
		return AnalyticResult{
			Loss: res.Loss, Rho: res.Rho, ServerIdle: res.ServerIdle,
			WindowContent: model.WindowContent(s.K),
		}, nil
	case FCFS:
		loss, err := model.FCFSLoss(s.K)
		if err != nil {
			return AnalyticResult{}, err
		}
		svc, err := model.Service(queueing.OptimalWindowContent())
		if err != nil {
			return AnalyticResult{}, err
		}
		return AnalyticResult{
			Loss: loss, Rho: s.Lambda() * svc.Mean(), ServerIdle: math.NaN(),
			WindowContent: queueing.OptimalWindowContent(),
		}, nil
	case LCFS:
		loss, err := model.LCFSLoss(s.K)
		if err != nil {
			return AnalyticResult{}, err
		}
		svc, err := model.Service(queueing.OptimalWindowContent())
		if err != nil {
			return AnalyticResult{}, err
		}
		return AnalyticResult{
			Loss: loss, Rho: s.Lambda() * svc.Mean(), ServerIdle: math.NaN(),
			WindowContent: queueing.OptimalWindowContent(),
		}, nil
	default:
		return AnalyticResult{}, fmt.Errorf("core: no analytic model for the %v discipline", s.Discipline)
	}
}

// SimOptions tunes a simulation run.
type SimOptions struct {
	// EndTime is the simulated horizon; 0 chooses enough time for about
	// 1e5 offered messages.
	EndTime float64
	// Warmup excludes the initial transient; 0 means EndTime/20.
	Warmup float64
	// MaxBacklog aborts hopeless overloads; 0 means the sim default.
	MaxBacklog int
	// Collector, when non-nil, receives every slot-level protocol event
	// of the run (arrivals, slot outcomes, splits, discards,
	// transmissions).  When it can verify the conservation invariants —
	// as *metrics.SlotMetrics can — the run checks them and fails on
	// violation.  Not supported by SimulateReplicated (replications run
	// concurrently).
	Collector metrics.Collector
	// Faults injects imperfect channel feedback (erasures, false and
	// missed collisions) into the run; the zero value keeps feedback
	// perfect and the run bit-identical to a build without the fault
	// layer.  See fault.Config.
	Faults fault.Config
}

func (s System) simConfig(opt SimOptions) (sim.Config, error) {
	s, err := s.withDefaults()
	if err != nil {
		return sim.Config{}, err
	}
	pol, err := s.Policy()
	if err != nil {
		return sim.Config{}, err
	}
	end := opt.EndTime
	if end == 0 {
		end = 1e5 / s.Lambda()
	}
	warm := opt.Warmup
	if warm == 0 {
		warm = end / 20
	}
	return sim.Config{
		Policy: pol, Tau: s.Tau, M: s.M, Lambda: s.Lambda(), K: s.K,
		EndTime: end, Warmup: warm, Seed: s.Seed, MaxBacklog: opt.MaxBacklog,
		TxLengths: s.TxLengths, Collector: opt.Collector, Faults: opt.Faults,
	}, nil
}

// Simulate runs the fast global-view event simulation and returns the
// measured report.
func (s System) Simulate(opt SimOptions) (sim.Report, error) {
	cfg, err := s.simConfig(opt)
	if err != nil {
		return sim.Report{}, err
	}
	return sim.RunGlobal(cfg)
}

// SimulateDistributed runs the full multi-station simulation with the
// given number of stations, verifying that all stations stay in lockstep.
func (s System) SimulateDistributed(stations int, opt SimOptions) (sim.Report, error) {
	cfg, err := s.simConfig(opt)
	if err != nil {
		return sim.Report{}, err
	}
	return sim.RunMultiStation(sim.MultiConfig{
		Config: cfg, Stations: stations, VerifyLockstep: true,
	})
}

// SimulateReplicated runs n independent replications of the global-view
// simulation and aggregates cross-replication confidence intervals.
func (s System) SimulateReplicated(n int, opt SimOptions) (sim.Replicated, error) {
	cfg, err := s.simConfig(opt)
	if err != nil {
		return sim.Replicated{}, err
	}
	return sim.RunReplicated(cfg, n)
}

// SimulateHeterogeneous runs the multi-station simulation with per-station
// membership transforms (the §5 extensions: priority via window sizes,
// clock skew); one station is created per transform, nil entries meaning a
// perfectly synchronized station.
func (s System) SimulateHeterogeneous(transforms []sim.Transform, opt SimOptions) (sim.HeterogeneousReport, error) {
	cfg, err := s.simConfig(opt)
	if err != nil {
		return sim.HeterogeneousReport{}, err
	}
	return sim.RunHeterogeneous(sim.HeterogeneousConfig{Config: cfg, Transforms: transforms})
}

// DecisionModel discretizes the system into the §3 semi-Markov decision
// model (Δ = τ), valid for the controlled discipline.
func (s System) DecisionModel() (*smdp.Model, error) {
	s, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	if s.Discipline != Controlled || s.Protocol != "" {
		return nil, fmt.Errorf("core: the decision model applies to the controlled discipline")
	}
	k := int(math.Round(s.K / s.Tau))
	if k < 1 {
		return nil, fmt.Errorf("core: K=%v shorter than one slot", s.K)
	}
	m := int(math.Round(s.M))
	p := -math.Expm1(-s.Lambda() * s.Tau) // 1 − e^(−λΔ)
	return smdp.NewModel(k, m, p)
}

// Trace runs the protocol over scripted arrival times and returns the
// recorded probe sequence (the figure-1/4 view).
func (s System) Trace(arrivals []float64) (*trace.Trace, error) {
	s, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	pol, err := s.Policy()
	if err != nil {
		return nil, err
	}
	return trace.Run(trace.Config{
		Policy: pol, Arrivals: arrivals, Tau: s.Tau, M: s.M, K: s.K,
	})
}
