package core

import (
	"math"
	"testing"
)

func baseSystem() System {
	return System{M: 25, RhoPrime: 0.5, K: 50, Seed: 3}
}

func TestDefaultsAndLambda(t *testing.T) {
	s := baseSystem()
	if math.Abs(s.Lambda()-0.02) > 1e-12 {
		t.Fatalf("lambda %v", s.Lambda())
	}
	norm, err := s.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Tau != 1 || norm.WindowG <= 0 {
		t.Fatalf("defaults not applied: %+v", norm)
	}
}

func TestValidation(t *testing.T) {
	bad := []System{
		{M: 0, RhoPrime: 0.5, K: 50},
		{M: 25, RhoPrime: 0, K: 50},
		{M: 25, RhoPrime: 0.5, K: 0},
		{M: 25, RhoPrime: 0.5, K: 50, WindowG: -1},
		{M: 25, RhoPrime: 0.5, K: 50, SplitFraction: 1.5},
		{M: 25, RhoPrime: 0.5, K: 50, SplitFraction: 0.3, Discipline: FCFS},
	}
	for i, s := range bad {
		if _, err := s.AnalyticLoss(); err == nil {
			t.Errorf("case %d: invalid system accepted", i)
		}
	}
}

func TestPolicyPerDiscipline(t *testing.T) {
	for _, d := range []Discipline{Controlled, FCFS, LCFS, Random} {
		s := baseSystem()
		s.Discipline = d
		p, err := s.Policy()
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if p.Name() != d.String() {
			t.Fatalf("policy %q for discipline %v", p.Name(), d)
		}
		if (d == Controlled) != p.Discards() {
			t.Fatalf("%v: discard flag %v", d, p.Discards())
		}
	}
	s := baseSystem()
	s.Discipline = Discipline(42)
	if _, err := s.Policy(); err == nil {
		t.Fatal("unknown discipline accepted")
	}
	if s.Discipline.String() == "" {
		t.Fatal("unknown discipline has no name")
	}
}

func TestAnalyticLossAcrossDisciplines(t *testing.T) {
	ctrl := baseSystem()
	rc, err := ctrl.AnalyticLoss()
	if err != nil {
		t.Fatal(err)
	}
	f := baseSystem()
	f.Discipline = FCFS
	rf, err := f.AnalyticLoss()
	if err != nil {
		t.Fatal(err)
	}
	l := baseSystem()
	l.Discipline = LCFS
	rl, err := l.AnalyticLoss()
	if err != nil {
		t.Fatal(err)
	}
	if !(rc.Loss <= rf.Loss && rc.Loss <= rl.Loss) {
		t.Fatalf("controlled %v should dominate fcfs %v and lcfs %v", rc.Loss, rf.Loss, rl.Loss)
	}
	if rc.ServerIdle <= 0 || rc.ServerIdle >= 1 {
		t.Fatalf("controlled idle %v", rc.ServerIdle)
	}
	if !math.IsNaN(rf.ServerIdle) {
		t.Fatal("baseline idle should be NaN")
	}
	r := baseSystem()
	r.Discipline = Random
	if _, err := r.AnalyticLoss(); err == nil {
		t.Fatal("random discipline has no analytic model")
	}
}

func TestSimulateAgreesWithAnalytic(t *testing.T) {
	s := baseSystem()
	s.K = 25
	an, err := s.AnalyticLoss()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Simulate(SimOptions{EndTime: 8e5, Warmup: 5e4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Loss()-an.Loss) > 0.35*an.Loss+0.015 {
		t.Fatalf("sim %v vs analytic %v", rep.Loss(), an.Loss)
	}
}

func TestSimulateDistributed(t *testing.T) {
	s := baseSystem()
	rep, err := s.SimulateDistributed(8, SimOptions{EndTime: 1e5, Warmup: 1e4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transmissions == 0 {
		t.Fatal("nothing transmitted")
	}
}

func TestDecisionModel(t *testing.T) {
	s := baseSystem()
	mod, err := s.DecisionModel()
	if err != nil {
		t.Fatal(err)
	}
	if mod.K != 50 || mod.M != 25 {
		t.Fatalf("model shape K=%d M=%d", mod.K, mod.M)
	}
	wantP := -math.Expm1(-0.02)
	if math.Abs(mod.P-wantP) > 1e-12 {
		t.Fatalf("occupancy %v, want %v", mod.P, wantP)
	}
	f := baseSystem()
	f.Discipline = FCFS
	if _, err := f.DecisionModel(); err == nil {
		t.Fatal("decision model for baseline accepted")
	}
	tiny := baseSystem()
	tiny.K = 0.2
	if _, err := tiny.DecisionModel(); err == nil {
		t.Fatal("sub-slot K accepted")
	}
}

func TestTraceFacade(t *testing.T) {
	s := baseSystem()
	s.K = 200 // loose enough that all three scripted messages fit
	tr, err := s.Trace([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Sent) != 3 {
		t.Fatalf("sent %v", tr.Sent)
	}
}

func TestSplitFractionVariant(t *testing.T) {
	s := baseSystem()
	s.SplitFraction = 0.3
	rep, err := s.Simulate(SimOptions{EndTime: 1e5, Warmup: 1e4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Transmissions == 0 {
		t.Fatal("fractional split transmitted nothing")
	}
}
