package sched

import (
	"math"
	"testing"
	"testing/quick"

	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

func TestHMeansHandValues(t *testing.T) {
	h := HMeans(4)
	// n=2: h = (1 − p1)/(1 − p0 − p2) = (1/2)/(1/2) = 1.
	if math.Abs(h[2]-1) > 1e-12 {
		t.Fatalf("h(2) = %v, want 1", h[2])
	}
	// n=3: p = [1/8, 3/8, 3/8, 1/8];
	// h = (5/8 + 3/8·h(2)) / (1 − 2/8) = 1/(3/4) = 4/3.
	if math.Abs(h[3]-4.0/3) > 1e-12 {
		t.Fatalf("h(3) = %v, want 4/3", h[3])
	}
	if h[0] != 0 || h[1] != 0 {
		t.Fatal("h(0), h(1) must be 0")
	}
}

func TestHMeansMonotone(t *testing.T) {
	h := HMeans(100)
	for n := 3; n <= 100; n++ {
		if h[n] <= h[n-1] {
			t.Fatalf("h not increasing at n=%d: %v <= %v", n, h[n], h[n-1])
		}
	}
	// Growth is logarithmic-ish: h(100) must be modest.
	if h[100] > 15 {
		t.Fatalf("h(100) = %v implausibly large", h[100])
	}
}

// simulateH estimates h(n) by Monte Carlo using the real Resolver with n
// uniform arrivals known to collide.
func simulateH(t *testing.T, n, trials int, r *rngutil.Stream) float64 {
	t.Helper()
	p := window.Controlled{Length: window.FixedLength(1)}
	total := 0
	for tr := 0; tr < trials; tr++ {
		arr := make([]float64, n)
		for i := range arr {
			arr[i] = r.Float64()
		}
		v := window.View{Now: 1, TPast: 0, TNewest: 1, K: math.Inf(1), Tau: 1, Lambda: 1}
		rep, err := window.RunProcess(p, v, func(w window.Window) int {
			c := 0
			for _, a := range arr {
				if w.Contains(a) {
					c++
				}
			}
			return c
		})
		if err != nil {
			t.Fatal(err)
		}
		// First step is the collision (counted separately in Analyze);
		// h(n) counts subsequent wasted slots.
		total += rep.WastedSlots - 1
	}
	return float64(total) / float64(trials)
}

func TestHMeansMatchesProtocolSimulation(t *testing.T) {
	h := HMeans(8)
	r := rngutil.New(21)
	for _, n := range []int{2, 3, 5, 8} {
		est := simulateH(t, n, 40000, r)
		if math.Abs(est-h[n]) > 0.05 {
			t.Fatalf("h(%d): simulated %v, analytic %v", n, est, h[n])
		}
	}
}

func TestAnalyzeLimits(t *testing.T) {
	// Small G: almost all non-empty windows hold one message.
	o := Analyze(0.01)
	if o.ResolutionSlots > 0.02 {
		t.Fatalf("tiny G resolution slots %v", o.ResolutionSlots)
	}
	// Empty retries per success ~ 1/G for small G.
	if math.Abs(o.EmptySlots-math.Exp(-0.01)/(1-math.Exp(-0.01))) > 1e-9 {
		t.Fatalf("empty slots %v", o.EmptySlots)
	}
	if math.Abs(o.SuccessProb-(1-math.Exp(-0.01))) > 1e-12 {
		t.Fatal("success prob")
	}
	// Large G: empty probes vanish.
	o = Analyze(8)
	if o.EmptySlots > 1e-3 {
		t.Fatalf("large G empty slots %v", o.EmptySlots)
	}
	if o.ResolutionSlots < 1 {
		t.Fatalf("large G resolution %v suspiciously small", o.ResolutionSlots)
	}
}

func TestAnalyzeMatchesEndToEndSimulation(t *testing.T) {
	// Fresh Poisson(G) windows resolved by the real engine: mean wasted
	// slots per success must match Analyze(G).TotalSlots().
	r := rngutil.New(22)
	for _, g := range []float64{0.5, 1.2, 3.0} {
		p := window.Controlled{Length: window.FixedLength(1)}
		wasted, successes := 0, 0
		for successes < 30000 {
			n := r.Poisson(g)
			arr := make([]float64, n)
			for i := range arr {
				arr[i] = r.Float64()
			}
			v := window.View{Now: 1, TPast: 0, TNewest: 1, K: math.Inf(1), Tau: 1, Lambda: 1}
			rep, err := window.RunProcess(p, v, func(w window.Window) int {
				c := 0
				for _, a := range arr {
					if w.Contains(a) {
						c++
					}
				}
				return c
			})
			if err != nil {
				t.Fatal(err)
			}
			wasted += rep.WastedSlots
			if rep.Success {
				successes++
			}
		}
		got := float64(wasted) / float64(successes)
		want := Analyze(g).TotalSlots()
		if math.Abs(got-want) > 0.04*want+0.02 {
			t.Fatalf("G=%v: simulated %.4f slots/success, analytic %.4f", g, got, want)
		}
	}
}

func TestOptimalG(t *testing.T) {
	g, o := OptimalG()
	if g < 0.5 || g > 3 {
		t.Fatalf("G* = %v outside plausible range", g)
	}
	// Local optimality.
	for _, d := range []float64{-0.1, 0.1} {
		if Analyze(g+d).TotalSlots() < o.TotalSlots()-1e-9 {
			t.Fatalf("G*=%v not optimal: %v beats %v at offset %v",
				g, Analyze(g+d).TotalSlots(), o.TotalSlots(), d)
		}
	}
}

func TestSlotPMFMeanMatchesAnalyze(t *testing.T) {
	for _, g := range []float64{0.3, 1.0, 2.5} {
		pmf := SlotPMF(g, 400)
		sum, mean := 0.0, 0.0
		for j, p := range pmf {
			sum += p
			mean += float64(j) * p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("G=%v: PMF sums to %v", g, sum)
		}
		want := Analyze(g).TotalSlots()
		if math.Abs(mean-want) > 0.01*want+0.005 {
			t.Fatalf("G=%v: PMF mean %v, Analyze %v", g, mean, want)
		}
	}
}

func TestResolutionSlotPMFMean(t *testing.T) {
	for _, g := range []float64{0.3, 1.0, 2.5} {
		pmf := ResolutionSlotPMF(g, 400)
		sum, mean := 0.0, 0.0
		for j, p := range pmf {
			sum += p
			mean += float64(j) * p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("G=%v: PMF sums to %v", g, sum)
		}
		want := Analyze(g).ResolutionSlots
		if math.Abs(mean-want) > 0.01*want+0.005 {
			t.Fatalf("G=%v: resolution PMF mean %v, want %v", g, mean, want)
		}
	}
}

func TestSlotPMFAgainstSimulation(t *testing.T) {
	// Distribution-level check at G=1: compare the first few PMF entries
	// against Monte Carlo.
	g := 1.0
	r := rngutil.New(23)
	p := window.Controlled{Length: window.FixedLength(1)}
	const successesWanted = 50000
	counts := map[int]int{}
	successes := 0
	pendingEmpties := 0
	for successes < successesWanted {
		n := r.Poisson(g)
		arr := make([]float64, n)
		for i := range arr {
			arr[i] = r.Float64()
		}
		v := window.View{Now: 1, TPast: 0, TNewest: 1, K: math.Inf(1), Tau: 1, Lambda: 1}
		rep, err := window.RunProcess(p, v, func(w window.Window) int {
			c := 0
			for _, a := range arr {
				if w.Contains(a) {
					c++
				}
			}
			return c
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Success {
			pendingEmpties += rep.WastedSlots
			continue
		}
		counts[rep.WastedSlots+pendingEmpties]++
		pendingEmpties = 0
		successes++
	}
	pmf := SlotPMF(g, 200)
	for j := 0; j <= 4; j++ {
		got := float64(counts[j]) / successesWanted
		if math.Abs(got-pmf[j]) > 0.01 {
			t.Fatalf("P(S=%d): simulated %v, analytic %v", j, got, pmf[j])
		}
	}
}

func TestServiceConstructors(t *testing.T) {
	gs := GeometricService(2, 0.5, 10)
	if math.Abs(gs.Mean()-(10+1)) > 1e-12 {
		t.Fatalf("geometric service mean %v, want 11", gs.Mean())
	}
	// Zero scheduling overhead degenerates to the transmission time.
	gz := GeometricService(0, 0.5, 10)
	if math.Abs(gz.Mean()-10) > 1e-12 {
		t.Fatal("zero-overhead service mean")
	}
	es, err := ExactService(1.0, 0.5, 10, 300)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 + Analyze(1.0).TotalSlots()*0.5
	if math.Abs(es.Mean()-want) > 0.01 {
		t.Fatalf("exact service mean %v, want %v", es.Mean(), want)
	}
	if es.CDF(9.99) != 0 {
		t.Fatal("service below transmission time")
	}
}

func TestTwoPointFit(t *testing.T) {
	f, err := NewTwoPointFit(1.1, 6.0)
	if err != nil {
		t.Fatal(err)
	}
	// Exact at the anchors.
	for _, g := range []float64{1.1, 6.0} {
		got, err := f.MeanSlots(g)
		if err != nil {
			t.Fatal(err)
		}
		want := Analyze(g).TotalSlots()
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("fit not exact at anchor %v: %v vs %v", g, got, want)
		}
	}
	// In between (congested branch): within 25% of exact — quantifying
	// what the historical approximation gives up.
	worst, err := f.MaxRelativeError(1.1, 6.0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.25 {
		t.Fatalf("two-point fit error %v too large inside the anchors", worst)
	}
	if worst == 0 {
		t.Fatal("fit suspiciously exact everywhere")
	}
	// Validation.
	if _, err := NewTwoPointFit(0, 1); err == nil {
		t.Fatal("bad anchors accepted")
	}
	if _, err := NewTwoPointFit(2, 1); err == nil {
		t.Fatal("reversed anchors accepted")
	}
	if _, err := f.MeanSlots(0); err == nil {
		t.Fatal("zero content accepted")
	}
	if _, err := f.MaxRelativeError(1, 1, 5); err == nil {
		t.Fatal("bad scan range accepted")
	}
}

func TestPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { HMeans(1) },
		func() { Analyze(0) },
		func() { Analyze(math.NaN()) },
		func() { SlotPMF(0, 10) },
		func() { SlotPMF(1, 1) },
		func() { GeometricService(-1, 1, 1) },
		func() { GeometricService(1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: PMFs are non-negative and sum to 1 for arbitrary G.
func TestPMFValidProperty(t *testing.T) {
	f := func(raw uint16) bool {
		g := 0.05 + float64(raw%500)/100.0 // 0.05..5.04
		for _, pmf := range [][]float64{SlotPMF(g, 150), ResolutionSlotPMF(g, 150)} {
			sum := 0.0
			for _, p := range pmf {
				if p < -1e-12 {
					return false
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Analyze(1.3)
	}
}

func BenchmarkSlotPMF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = SlotPMF(1.3, 200)
	}
}
