package sched

import (
	"fmt"
	"math"
)

// TwoPointFit reproduces the approximation lineage of [Kurose 83] that
// §4 of the paper inherits: "these values were approximated by exactly
// determining the average scheduling time for two arrival rates and
// fitting a function to these endpoints to approximate the average
// scheduling time for intermediate arrival rates."
//
// The fit anchors the mean wasted slots per scheduled message at two
// window contents G₁ < G₂ (computed exactly by Analyze) and
// log-interpolates between them.  It is meaningful on the congested
// branch G >= G* only, where the overhead is monotone (resolution-
// dominated, growing roughly logarithmically because splitting is
// binary); across the optimum the overhead is U-shaped and no two-point
// interpolation can follow it.  The 1983 papers needed such fits because
// evaluating the recursion at every rate was costly; today Analyze is
// exact and cheap, so the fit exists to quantify what the historical
// approximation gives up (see the tests).
type TwoPointFit struct {
	g1, g2 float64
	s1, s2 float64 // exact TotalSlots at the anchors
}

// NewTwoPointFit builds the fit from two anchor contents.
func NewTwoPointFit(g1, g2 float64) (*TwoPointFit, error) {
	if g1 <= 0 || g2 <= g1 {
		return nil, fmt.Errorf("sched: need 0 < g1 < g2 (got %v, %v)", g1, g2)
	}
	return &TwoPointFit{
		g1: g1, g2: g2,
		s1: Analyze(g1).TotalSlots(),
		s2: Analyze(g2).TotalSlots(),
	}, nil
}

// MeanSlots returns the fitted mean wasted slots per scheduled message at
// window content g (clamped to the anchor interval's extrapolation being
// linear in log g).
func (f *TwoPointFit) MeanSlots(g float64) (float64, error) {
	if g <= 0 {
		return 0, fmt.Errorf("sched: non-positive content %v", g)
	}
	// Linear in log g through the two anchors.
	t := (math.Log(g) - math.Log(f.g1)) / (math.Log(f.g2) - math.Log(f.g1))
	return f.s1 + t*(f.s2-f.s1), nil
}

// MaxRelativeError scans the fit against the exact computation over
// [gLo, gHi] at n points and returns the worst relative error — the
// fidelity cost of the 1983 approximation.
func (f *TwoPointFit) MaxRelativeError(gLo, gHi float64, n int) (float64, error) {
	if gLo <= 0 || gHi <= gLo || n < 2 {
		return 0, fmt.Errorf("sched: invalid scan range")
	}
	worst := 0.0
	for i := 0; i < n; i++ {
		g := gLo * math.Pow(gHi/gLo, float64(i)/float64(n-1))
		fit, err := f.MeanSlots(g)
		if err != nil {
			return 0, err
		}
		exact := Analyze(g).TotalSlots()
		if exact > 0 {
			if rel := math.Abs(fit-exact) / exact; rel > worst {
				worst = rel
			}
		}
	}
	return worst, nil
}
