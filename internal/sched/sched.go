// Package sched analyzes the windowing (scheduling) overhead of the
// time-window protocol and implements the paper's heuristic for policy
// element (2): choose the initial window length to minimize the mean
// windowing time needed to schedule one message (§4).
//
// The central quantity is the number of *wasted* probe slots — idle and
// collision slots, each of duration τ — spent before a successful
// transmission begins.  With Poisson arrivals, a fresh initial window of
// length w holds N ~ Poisson(G) arrivals, G = λ·w, uniformly placed, and
// binary splitting with any side rule (older/newer/random — the count is
// side-symmetric, as Lemma 3 of the paper observes) gives a resolution
// cost that depends only on the content count.  Writing h(n) for the mean
// wasted slots following a collision among n messages:
//
//	h(n) = p₀·(1 + h(n)) + p₁·0 + Σ_{k=2..n} p_k·(1 + h(k)),  p_k = C(n,k)/2ⁿ
//
// (an empty half costs one idle slot and the sibling, known to hold all n,
// is split immediately; an isolated message ends the process; a colliding
// half recurses).  The package computes h(n) exactly, mixes over the
// Poisson content law, optimizes G, and exports both the paper-faithful
// geometric service model of [Kurose 83] and an exact slot-count
// distribution for higher-fidelity analytic runs.
package sched

import (
	"fmt"
	"math"

	"windowctl/internal/dist"
	"windowctl/internal/numerics"
)

// poissonCutoff returns n beyond which the Poisson(G) tail is negligible.
func poissonCutoff(g float64) int {
	n := int(g + 12*math.Sqrt(g+1) + 20)
	return n
}

// HMeans returns h(0..nMax) where h(n) is the expected number of wasted
// slots from the moment a window holding n >= 2 messages collides until a
// message transmission begins.  h(0) and h(1) are 0 by convention (those
// contents never produce the collided state).  It panics if nMax < 2.
func HMeans(nMax int) []float64 {
	if nMax < 2 {
		panic("sched: HMeans needs nMax >= 2")
	}
	h := make([]float64, nMax+1)
	// Binomial row C(n,k)/2^n computed iteratively per n.
	for n := 2; n <= nMax; n++ {
		// p[k] = C(n,k) / 2^n.
		p := binomialRow(n)
		sum := 1 - p[1] // every branch except isolation costs one slot
		for k := 2; k < n; k++ {
			sum += p[k] * h[k]
		}
		selfP := p[0] + p[n] // empty half or full half: same count again
		h[n] = sum / (1 - selfP)
	}
	return h
}

// binomialRow returns C(n,k)/2^n for k = 0..n.
func binomialRow(n int) []float64 {
	p := make([]float64, n+1)
	p[0] = math.Exp2(-float64(n))
	for k := 1; k <= n; k++ {
		p[k] = p[k-1] * float64(n-k+1) / float64(k)
	}
	return p
}

// Overhead summarizes the windowing cost of one fresh initial window with
// Poisson(G) content, per successful transmission.
type Overhead struct {
	// G is the mean number of arrivals per initial window (λ·w).
	G float64
	// ResolutionSlots is the mean number of wasted slots spent inside
	// successful windowing processes (collision resolution), per success.
	ResolutionSlots float64
	// EmptySlots is the mean number of empty initial-window probes per
	// success (a geometric retry: each process is empty w.p. e^(−G)).
	EmptySlots float64
	// SuccessProb is the probability a fresh window yields a transmission.
	SuccessProb float64
}

// TotalSlots is the mean total wasted slots per success (resolution plus
// empty probes) — the renewal-reward scheduling overhead of §4.
func (o Overhead) TotalSlots() float64 { return o.ResolutionSlots + o.EmptySlots }

// Analyze computes the Overhead for mean window content G > 0.
func Analyze(g float64) Overhead {
	if g <= 0 || math.IsNaN(g) || math.IsInf(g, 0) {
		panic(fmt.Sprintf("sched: Analyze with invalid G=%v", g))
	}
	nMax := poissonCutoff(g)
	h := HMeans(max(nMax, 2))
	// Poisson weights.
	pn := math.Exp(-g) // P(N=0)
	resolution := 0.0
	for n := 1; n <= nMax; n++ {
		pn *= g / float64(n)
		if n >= 2 {
			resolution += pn * (1 + h[n])
		}
	}
	succ := -math.Expm1(-g) // 1 − e^(−G)
	return Overhead{
		G:               g,
		ResolutionSlots: resolution / succ,
		EmptySlots:      math.Exp(-g) / succ,
		SuccessProb:     succ,
	}
}

// OptimalG returns the window content G* minimizing the mean total wasted
// slots per scheduled message — the element-(2) heuristic — along with the
// minimal overhead.  The optimum is a pure number (independent of λ, τ and
// M); callers convert it to a window length w* = G*/λ.
func OptimalG() (float64, Overhead) {
	g := numerics.GoldenSection(func(g float64) float64 {
		return Analyze(g).TotalSlots()
	}, 0.05, 8, 1e-6)
	return g, Analyze(g)
}

// ---------------------------------------------------------------------------
// Exact slot-count distributions
// ---------------------------------------------------------------------------

// SlotPMF returns the exact probability mass function of the number of
// wasted slots per scheduled message for window content G, truncated at
// maxSlots (any residual tail mass is folded into the final entry so the
// PMF sums to 1).  Entry j is P(wasted slots = j).
//
// The computation runs the branching recursion on distributions instead of
// means: the self-loop branches (empty or full half) make the slot count a
// geometric mixture, convolved with the recursively known costs of proper
// sub-collisions.
func SlotPMF(g float64, maxSlots int) []float64 {
	return slotPMF(g, maxSlots, true)
}

// ResolutionSlotPMF is SlotPMF conditioned on the fresh window being
// non-empty: empty initial probes are excluded from the count.  This is
// the per-message scheduling law appropriate for the *controlled* protocol
// under element (4), where an empty probe can only occur while no message
// is waiting (the whole unexamined span, at most K long, fits in the
// window) and therefore belongs to server idle time rather than to any
// message's service (it also reproduces the paper's boundary condition
// that scheduling delay vanishes as K → 0).
func ResolutionSlotPMF(g float64, maxSlots int) []float64 {
	return slotPMF(g, maxSlots, false)
}

func slotPMF(g float64, maxSlots int, includeEmpty bool) []float64 {
	if maxSlots < 2 {
		panic("sched: SlotPMF needs maxSlots >= 2")
	}
	if g <= 0 {
		panic("sched: SlotPMF with non-positive G")
	}
	nMax := max(poissonCutoff(g), 2)
	// D[n][j] = P(wasted = j | collided window with n arrivals).
	D := make([][]float64, nMax+1)
	for n := 2; n <= nMax; n++ {
		p := binomialRow(n)
		selfP := p[0] + p[n]
		// Branch distribution (conditional on leaving the self-loop):
		//   isolation (k=1): 0 further slots, prob p[1]/(1−selfP);
		//   sub-collision k in 2..n−1: 1 + D[k], prob p[k]/(1−selfP).
		branch := make([]float64, maxSlots)
		branch[0] = p[1] / (1 - selfP)
		for k := 2; k < n; k++ {
			w := p[k] / (1 - selfP)
			for j := 0; j < maxSlots-1; j++ {
				branch[j+1] += w * D[k][j]
			}
			// The last entry of D[k], shifted past the truncation, folds
			// into the final bin to conserve mass.
			branch[maxSlots-1] += w * D[k][maxSlots-1]
		}
		// Geometric self-loop: each loop costs one slot with prob selfP.
		D[n] = geometricMix(selfP, branch, maxSlots)
		// The collided state has already paid for its collision slot at
		// the *caller* (see below), so D[n] counts only subsequent slots.
	}
	// Fresh window: empty w.p. e^(−G) (a self-loop costing 1 slot when
	// empty probes are counted); otherwise content n=1 succeeds at once,
	// n >= 2 costs 1 collision slot plus D[n].
	p0 := math.Exp(-g)
	pn := p0
	branch := make([]float64, maxSlots)
	// Conditional weights given non-empty.
	norm := 1 - p0
	for n := 1; n <= nMax; n++ {
		pn *= g / float64(n)
		w := pn / norm
		if n == 1 {
			branch[0] += w
			continue
		}
		for j := 0; j < maxSlots-1; j++ {
			branch[j+1] += w * D[n][j]
		}
		branch[maxSlots-1] += w * D[n][maxSlots-1]
	}
	var out []float64
	if includeEmpty {
		out = geometricMix(p0, branch, maxSlots)
	} else {
		out = branch
	}
	// Repair any truncation / Poisson-cutoff rounding so Σ = 1.
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if sum > 0 {
		for j := range out {
			out[j] /= sum
		}
	}
	return out
}

// geometricMix convolves a geometric number of unit-cost self-loops
// (continue probability selfP) with the branch distribution.
func geometricMix(selfP float64, branch []float64, maxSlots int) []float64 {
	out := make([]float64, maxSlots)
	// out[j] = Σ_{l=0..j} selfP^l (1−selfP) · branch[j−l], tail folded.
	pl := 1 - selfP
	for l := 0; l < maxSlots; l++ {
		for j := l; j < maxSlots; j++ {
			out[j] += pl * branch[j-l]
		}
		pl *= selfP
	}
	// Fold the geometric tail (l >= maxSlots) into the last bin.
	tail := math.Pow(selfP, float64(maxSlots))
	out[maxSlots-1] += tail
	return out
}

// ---------------------------------------------------------------------------
// Service-time constructors for the queueing model
// ---------------------------------------------------------------------------

// GeometricService returns the paper-faithful service law of [Kurose 83]:
// a geometrically distributed number of wasted slots with the given mean
// (in slots), each of duration tau, plus the constant transmission time
// txTime.  meanSlots = 0 yields the pure transmission time.
func GeometricService(meanSlots, tau, txTime float64) dist.Distribution {
	if meanSlots < 0 || tau <= 0 || txTime < 0 {
		panic("sched: invalid GeometricService parameters")
	}
	return dist.NewShifted(dist.NewGeometricLattice(meanSlots, tau), txTime)
}

// ExactService returns the service law built from the exact slot PMF for
// content G: wasted slots distributed as SlotPMF(G), each of duration tau,
// plus the constant transmission time txTime.
func ExactService(g, tau, txTime float64, maxSlots int) (dist.Distribution, error) {
	pmf := SlotPMF(g, maxSlots)
	xs := make([]float64, len(pmf))
	for j := range pmf {
		xs[j] = txTime + float64(j)*tau
	}
	emp, err := dist.NewEmpirical(xs, pmf)
	if err != nil {
		return nil, fmt.Errorf("sched: building exact service law: %w", err)
	}
	return emp, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
