// Package profiling is the tiny pprof harness shared by the commands: a
// single Start call wires the -cpuprofile / -memprofile flags every
// command exposes into runtime/pprof, returning a stop function the
// caller defers.  Profiles are written in the format `go tool pprof`
// reads.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling as requested: a CPU profile streamed to
// cpuFile while the program runs, and a heap profile written to memFile
// when the returned stop function is called.  Either path may be empty
// to skip that profile; with both empty, Start is a no-op and stop never
// fails.  The caller must invoke stop (typically deferred from main)
// before exiting, or the profiles are incomplete.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpuOut *os.File
	if cpuFile != "" {
		cpuOut, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuOut); err != nil {
			cpuOut.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuOut != nil {
			pprof.StopCPUProfile()
			if err := cpuOut.Close(); err != nil {
				return fmt.Errorf("profiling: close cpu profile: %w", err)
			}
		}
		if memFile != "" {
			memOut, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer memOut.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(memOut); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
