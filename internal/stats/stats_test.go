package stats

import (
	"math"
	"testing"
	"testing/quick"

	"windowctl/internal/rngutil"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatal("N wrong")
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Fatalf("mean %v, want 5", a.Mean())
	}
	// Population variance is 4; sample variance = 4*8/7.
	want := 4.0 * 8 / 7
	if math.Abs(a.Variance()-want) > 1e-12 {
		t.Fatalf("variance %v, want %v", a.Variance(), want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestAccumulatorMergeEqualsSequential(t *testing.T) {
	r := rngutil.New(5)
	var whole, left, right Accumulator
	for i := 0; i < 1000; i++ {
		x := r.Normal()*3 + 1
		whole.Add(x)
		if i < 400 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatal("merged N differs")
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-10 {
		t.Fatalf("merged mean %v vs %v", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-8 {
		t.Fatalf("merged variance %v vs %v", left.Variance(), whole.Variance())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatal("merged extremes differ")
	}
}

func TestAccumulatorMergeEmptyCases(t *testing.T) {
	var a, b Accumulator
	a.Merge(&b) // both empty: no-op
	if a.N() != 0 {
		t.Fatal("merge of empties changed state")
	}
	b.Add(3)
	a.Merge(&b)
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatal("merge into empty failed")
	}
}

func TestProportion(t *testing.T) {
	var p Proportion
	for i := 0; i < 1000; i++ {
		p.Observe(i%4 == 0)
	}
	if math.Abs(p.Estimate()-0.25) > 1e-12 {
		t.Fatalf("estimate %v", p.Estimate())
	}
	lo, hi := p.ConfidenceInterval(0.95)
	if lo >= 0.25 || hi <= 0.25 {
		t.Fatalf("CI [%v, %v] does not cover estimate", lo, hi)
	}
	if hi-lo > 0.06 {
		t.Fatalf("CI too wide: [%v, %v]", lo, hi)
	}
}

func TestProportionEdgeCases(t *testing.T) {
	var p Proportion
	if p.Estimate() != 0 {
		t.Fatal("empty proportion estimate")
	}
	lo, hi := p.ConfidenceInterval(0.95)
	if lo != 0 || hi != 0 {
		t.Fatal("empty proportion CI")
	}
	// All failures: Wilson CI must stay within [0, 1].
	for i := 0; i < 50; i++ {
		p.Observe(false)
	}
	lo, hi = p.ConfidenceInterval(0.99)
	if lo < 0 || hi > 1 || lo > hi {
		t.Fatalf("degenerate CI [%v, %v]", lo, hi)
	}
}

func TestHistogramCDFAndTail(t *testing.T) {
	h := NewHistogram(0.1, 100) // covers [0, 10)
	r := rngutil.New(7)
	const n = 200000
	for i := 0; i < n; i++ {
		h.Add(r.Exp(1))
	}
	for _, x := range []float64{0.5, 1, 2, 3} {
		want := 1 - math.Exp(-x)
		if math.Abs(h.CDF(x)-want) > 0.01 {
			t.Fatalf("CDF(%v) = %v, want %v", x, h.CDF(x), want)
		}
		if math.Abs(h.Tail(x)-(1-want)) > 0.01 {
			t.Fatalf("Tail(%v) = %v", x, h.Tail(x))
		}
	}
	if math.Abs(h.Mean()-1) > 0.01 {
		t.Fatalf("histogram mean %v", h.Mean())
	}
	if h.N() != n {
		t.Fatal("N wrong")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0.01, 200)
	r := rngutil.New(8)
	for i := 0; i < 100000; i++ {
		h.Add(r.Float64()) // uniform [0,1)
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if math.Abs(h.Quantile(q)-q) > 0.01 {
			t.Fatalf("quantile(%v) = %v", q, h.Quantile(q))
		}
	}
	if h.Quantile(0) != 0 {
		t.Fatal("quantile(0)")
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(1, 10)
	h.Add(100)
	h.Add(0.5)
	if h.CDF(50) != 0.5 {
		t.Fatalf("overflow handling: CDF(50)=%v", h.CDF(50))
	}
	if h.Tail(1000) != 0.5 {
		// Overflowed mass can never be claimed as <= x.
		t.Fatalf("overflow tail: %v", h.Tail(1000))
	}
	if !math.IsInf(h.Quantile(0.9), 1) {
		t.Fatal("quantile beyond non-overflow mass should be +Inf")
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative observation accepted")
		}
	}()
	NewHistogram(1, 10).Add(-0.1)
}

func TestMeanCI(t *testing.T) {
	samples := []float64{9.8, 10.2, 10.1, 9.9, 10.0, 10.0, 9.95, 10.05}
	mean, hw, err := MeanCI(samples, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-10) > 0.01 {
		t.Fatalf("mean %v", mean)
	}
	if hw <= 0 || hw > 0.2 {
		t.Fatalf("half width %v", hw)
	}
	if _, _, err := MeanCI([]float64{1}, 0.95); err == nil {
		t.Fatal("single sample CI accepted")
	}
}

func TestMeanCICoverage(t *testing.T) {
	// Empirically verify ~95% coverage of a known mean.
	r := rngutil.New(9)
	const trials = 400
	covered := 0
	for tr := 0; tr < trials; tr++ {
		samples := make([]float64, 20)
		for i := range samples {
			samples[i] = r.Normal() + 5
		}
		mean, hw, err := MeanCI(samples, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if mean-hw <= 5 && 5 <= mean+hw {
			covered++
		}
	}
	rate := float64(covered) / trials
	if rate < 0.90 || rate > 0.99 {
		t.Fatalf("CI coverage %v, want ~0.95", rate)
	}
}

func TestBatchMeans(t *testing.T) {
	r := rngutil.New(10)
	series := make([]float64, 10000)
	// AR(1)-ish correlated series around 3.
	x := 3.0
	for i := range series {
		x = 0.7*x + 0.3*(3+r.Normal())
		series[i] = x
	}
	mean, hw, err := BatchMeans(series, 20, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-3) > 3*hw+0.1 {
		t.Fatalf("batch means %v ± %v far from 3", mean, hw)
	}
	if _, _, err := BatchMeans(series[:10], 20, 0.95); err == nil {
		t.Fatal("short series accepted")
	}
	if _, _, err := BatchMeans(series, 1, 0.95); err == nil {
		t.Fatal("single batch accepted")
	}
}

func TestQuantileFunctionSamples(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("quantile extremes")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Fatalf("median %v", Quantile(xs, 0.5))
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:    0,
		0.975:  1.959963985,
		0.025:  -1.959963985,
		0.8413: 0.99982, // ~Φ(1)
		0.999:  3.090232306,
	}
	for p, want := range cases {
		if got := NormalQuantile(p); math.Abs(got-want) > 1e-3 {
			t.Fatalf("NormalQuantile(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	// Φ(Φ⁻¹(p)) = p via erf from stdlib math.
	for p := 0.01; p < 1; p += 0.01 {
		z := NormalQuantile(p)
		phi := 0.5 * (1 + math.Erf(z/math.Sqrt2))
		if math.Abs(phi-p) > 1e-6 {
			t.Fatalf("round trip at %v: %v", p, phi)
		}
	}
}

func TestStudentTQuantile(t *testing.T) {
	// Reference values (two-sided 95% → p = 0.975).
	cases := []struct {
		df   int
		want float64
	}{
		{5, 2.5706}, {10, 2.2281}, {30, 2.0423}, {100, 1.9840},
	}
	for _, c := range cases {
		got := StudentTQuantile(0.975, c.df)
		if math.Abs(got-c.want) > 0.02 {
			t.Fatalf("t(0.975, %d) = %v, want %v", c.df, got, c.want)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NormalQuantile(0) },
		func() { NormalQuantile(1) },
		func() { StudentTQuantile(0.9, 0) },
		func() { NewHistogram(0, 5) },
		func() { NewHistogram(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: accumulator mean always lies within [min, max].
func TestAccumulatorBoundsProperty(t *testing.T) {
	f := func(seed uint64, count uint8) bool {
		n := int(count%50) + 1
		r := rngutil.New(seed)
		var a Accumulator
		for i := 0; i < n; i++ {
			a.Add(r.Normal() * 100)
		}
		return a.Mean() >= a.Min()-1e-9 && a.Mean() <= a.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram CDF is monotone.
func TestHistogramMonotoneProperty(t *testing.T) {
	r := rngutil.New(11)
	h := NewHistogram(0.05, 100)
	for i := 0; i < 5000; i++ {
		h.Add(r.Exp(0.7))
	}
	f := func(a, b float64) bool {
		x := math.Mod(math.Abs(a), 6)
		y := x + math.Mod(math.Abs(b), 6)
		return h.CDF(x) <= h.CDF(y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
