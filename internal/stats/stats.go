// Package stats provides the output-analysis tools used by the simulation
// harness: numerically stable online moment accumulation (Welford),
// fixed-bin histograms and empirical distributions for waiting times,
// Student-t confidence intervals across independent replications, and the
// batch-means method for single long runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator collects online mean and variance using Welford's algorithm,
// which is stable for the long runs (10⁶–10⁸ samples) the simulator emits.
type Accumulator struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance (0 with < 2 observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min and Max return the observed extremes (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// Merge folds another accumulator into this one (parallel Welford merge).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.mean += delta * float64(b.n) / float64(n)
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n = n
}

// String summarizes the accumulator.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		a.n, a.Mean(), a.StdDev(), a.min, a.max)
}

// ---------------------------------------------------------------------------
// Proportion (loss-rate) estimation
// ---------------------------------------------------------------------------

// Proportion counts successes out of trials — the natural estimator for the
// paper's loss fraction — and provides a normal-approximation confidence
// interval.
type Proportion struct {
	Successes, Trials int64
}

// Observe records one Bernoulli outcome.
func (p *Proportion) Observe(success bool) {
	p.Trials++
	if success {
		p.Successes++
	}
}

// Estimate returns the point estimate (0 when no trials).
func (p *Proportion) Estimate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// ConfidenceInterval returns a two-sided interval at the given confidence
// level (e.g. 0.95) using the Wilson score, which behaves well for the
// near-zero loss rates of lightly loaded runs.
func (p *Proportion) ConfidenceInterval(level float64) (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 0
	}
	z := NormalQuantile((1 + level) / 2)
	n := float64(p.Trials)
	phat := p.Estimate()
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z / denom * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// ---------------------------------------------------------------------------
// Histogram / empirical CDF
// ---------------------------------------------------------------------------

// Histogram is a fixed-width bin histogram over [0, BinWidth·len(bins)),
// with an overflow bin.  It doubles as an empirical CDF for waiting times.
type Histogram struct {
	BinWidth float64
	bins     []int64
	overflow int64
	total    int64
	sum      float64
}

// NewHistogram creates a histogram with the given bin width and count; it
// panics on non-positive arguments.
func NewHistogram(binWidth float64, bins int) *Histogram {
	if binWidth <= 0 || bins <= 0 {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{BinWidth: binWidth, bins: make([]int64, bins)}
}

// Add records a non-negative observation (negative values panic: waiting
// times cannot be negative, so a negative input is a simulator bug we want
// to fail loudly on).
func (h *Histogram) Add(x float64) {
	if x < 0 {
		panic(fmt.Sprintf("stats: negative histogram observation %v", x))
	}
	i := int(x / h.BinWidth)
	if i >= len(h.bins) {
		h.overflow++
	} else {
		h.bins[i]++
	}
	h.total++
	h.sum += x
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.total }

// SameShape reports whether the two histograms have identical bin width
// and bin count, i.e. whether their bins are directly comparable.
func (h *Histogram) SameShape(o *Histogram) bool {
	return h.BinWidth == o.BinWidth && len(h.bins) == len(o.bins)
}

// Merge folds another histogram's counts into this one; the shapes must
// match (it panics otherwise — merging incompatible bins is a caller
// bug, not a recoverable condition).
func (h *Histogram) Merge(o *Histogram) {
	if !h.SameShape(o) {
		panic("stats: merging histograms of different shape")
	}
	for i, c := range o.bins {
		h.bins[i] += c
	}
	h.overflow += o.overflow
	h.total += o.total
	h.sum += o.sum
}

// Mean returns the exact mean of the raw observations (not binned).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// CDF returns the empirical P(X <= x) with sub-bin linear interpolation.
func (h *Histogram) CDF(x float64) float64 {
	if h.total == 0 || x < 0 {
		return 0
	}
	i := int(x / h.BinWidth)
	if i >= len(h.bins) {
		return float64(h.total-h.overflow) / float64(h.total)
	}
	var below int64
	for j := 0; j < i; j++ {
		below += h.bins[j]
	}
	frac := x/h.BinWidth - float64(i)
	return (float64(below) + frac*float64(h.bins[i])) / float64(h.total)
}

// Tail returns the empirical P(X > x) — the loss estimator when x = K.
func (h *Histogram) Tail(x float64) float64 { return 1 - h.CDF(x) }

// Quantile returns the smallest x with CDF(x) >= q, or +Inf if q exceeds
// the non-overflow mass.
func (h *Histogram) Quantile(q float64) float64 {
	if q <= 0 {
		return 0
	}
	target := q * float64(h.total)
	var cum int64
	for i, c := range h.bins {
		if float64(cum)+float64(c) >= target {
			inBin := (target - float64(cum)) / float64(c)
			return (float64(i) + inBin) * h.BinWidth
		}
		cum += c
	}
	return math.Inf(1)
}

// ---------------------------------------------------------------------------
// Sample-based helpers
// ---------------------------------------------------------------------------

// MeanCI returns the sample mean and its two-sided Student-t confidence
// half-width at the given level for the supplied (independent) samples.
func MeanCI(samples []float64, level float64) (mean, halfWidth float64, err error) {
	n := len(samples)
	if n < 2 {
		return 0, 0, fmt.Errorf("stats: need >= 2 samples for a CI, got %d", n)
	}
	var acc Accumulator
	for _, s := range samples {
		acc.Add(s)
	}
	tq := StudentTQuantile((1+level)/2, n-1)
	return acc.Mean(), tq * acc.StdDev() / math.Sqrt(float64(n)), nil
}

// BatchMeans splits a single correlated series into nBatches contiguous
// batches and returns the batch means, the overall mean and the Student-t
// half-width at the given level.  Standard output analysis for one long
// steady-state run.
func BatchMeans(series []float64, nBatches int, level float64) (mean, halfWidth float64, err error) {
	if nBatches < 2 {
		return 0, 0, fmt.Errorf("stats: need >= 2 batches")
	}
	if len(series) < 2*nBatches {
		return 0, 0, fmt.Errorf("stats: series of %d too short for %d batches", len(series), nBatches)
	}
	per := len(series) / nBatches
	means := make([]float64, nBatches)
	for b := 0; b < nBatches; b++ {
		sum := 0.0
		for i := b * per; i < (b+1)*per; i++ {
			sum += series[i]
		}
		means[b] = sum / float64(per)
	}
	return firstTwo(MeanCI(means, level))
}

func firstTwo(a, b float64, err error) (float64, float64, error) { return a, b, err }

// Quantile returns the q-quantile (0 <= q <= 1) of the samples using linear
// interpolation between order statistics.  The input is not modified.
func Quantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}

// ---------------------------------------------------------------------------
// Quantile functions (no stdlib equivalents)
// ---------------------------------------------------------------------------

// NormalQuantile returns Φ⁻¹(p) for 0 < p < 1 using the Acklam rational
// approximation (|relative error| < 1.15e-9).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: NormalQuantile p=%v outside (0,1)", p))
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// StudentTQuantile returns the p-quantile of Student's t with df degrees of
// freedom, computed by Cornish–Fisher expansion around the normal quantile;
// accuracy is better than 1e-3 for df >= 3, which is all a CI needs.
func StudentTQuantile(p float64, df int) float64 {
	if df <= 0 {
		panic("stats: StudentTQuantile with df <= 0")
	}
	z := NormalQuantile(p)
	n := float64(df)
	z3 := z * z * z
	z5 := z3 * z * z
	z7 := z5 * z * z
	g1 := (z3 + z) / 4
	g2 := (5*z5 + 16*z3 + 3*z) / 96
	g3 := (3*z7 + 19*z5 + 17*z3 - 15*z) / 384
	return z + g1/n + g2/(n*n) + g3/(n*n*n)
}
