package smdp

import (
	"fmt"
	"math"

	"windowctl/internal/linalg"
)

// Policy assigns a window length to every state; Policy[0] is the wait
// pseudo-action 0.
type Policy []int

// Solution is the result of policy iteration or of a single policy
// evaluation.
type Solution struct {
	// Policy is the (final) window-length rule.
	Policy Policy
	// Gain is the long-run average pseudo loss per slot.
	Gain float64
	// LossFraction is the long-run fraction of messages lost
	// (Gain / arrivals-per-slot) — the quantity figure 7 plots.
	LossFraction float64
	// Values are the relative values v_i (v_0 = 0), appendix A's {v_j}.
	Values []float64
	// Iterations counts policy-improvement rounds (1 for Evaluate).
	Iterations int
}

// HeuristicPolicy is the paper's element-(2) heuristic transplanted into
// the discrete model: use the window size closest to gStar/P messages of
// expected content, clamped to the available span.
func (m *Model) HeuristicPolicy(gStar float64) Policy {
	want := int(math.Round(gStar / m.P))
	if want < 1 {
		want = 1
	}
	pol := make(Policy, m.K+1)
	for i := 1; i <= m.K; i++ {
		a := want
		if a > i {
			a = i
		}
		pol[i] = a
	}
	return pol
}

// validatePolicy checks feasibility.
func (m *Model) validatePolicy(pol Policy) error {
	if len(pol) != m.K+1 {
		return fmt.Errorf("smdp: policy has %d entries, want %d", len(pol), m.K+1)
	}
	if pol[0] != 0 {
		return fmt.Errorf("smdp: state 0 must use the wait action")
	}
	for i := 1; i <= m.K; i++ {
		if pol[i] < 1 || pol[i] > i {
			return fmt.Errorf("smdp: action %d infeasible in state %d", pol[i], i)
		}
	}
	return nil
}

// Evaluate performs the value-determination step (appendix A, equation
// A1): it solves v_i + g·τ̄_i = r_i + Σ_j p_ij v_j with v_0 = 0 for the
// given stationary policy, returning its gain and relative values.
func (m *Model) Evaluate(pol Policy) (Solution, error) {
	if err := m.validatePolicy(pol); err != nil {
		return Solution{}, err
	}
	n := m.K + 1
	// Unknowns: x = (v_1, …, v_K, g) with v_0 pinned to 0.  The equation
	// for state i reads v_i + g·τ̄_i − Σ_j p_ij v_j = r_i; the v_0 terms
	// vanish.  Rows 0..K−1 hold states 1..K; the last row holds state 0.
	A := linalg.NewMatrix(n, n)
	b := make([]float64, n)
	for i := 0; i <= m.K; i++ {
		tr, err := m.Transitions(i, pol[i])
		if err != nil {
			return Solution{}, err
		}
		row := i - 1
		if i == 0 {
			row = n - 1
		}
		for j := 1; j <= m.K; j++ {
			A.Set(row, j-1, -tr.NextProb[j])
		}
		if i >= 1 {
			A.Add(row, i-1, 1) // the +v_i term
		}
		A.Set(row, n-1, tr.ExpTime) // the +g·τ̄_i term
		b[row] = tr.ExpLoss
	}
	x, err := linalg.Solve(A, b)
	if err != nil {
		return Solution{}, fmt.Errorf("smdp: value determination: %w", err)
	}
	values := make([]float64, m.K+1)
	copy(values[1:], x[:m.K])
	g := x[n-1]
	return Solution{
		Policy:       append(Policy(nil), pol...),
		Gain:         g,
		LossFraction: g / m.ArrivalRate(),
		Values:       values,
		Iterations:   1,
	}, nil
}

// StationaryDistribution returns the stationary distribution of the
// embedded decision chain under the given policy (π solving π = πP), the
// fraction of *time* spent in each state (duration-weighted), and an
// independent estimate of the gain via the renewal-reward identity
//
//	g = Σ_i π_i·r_i / Σ_i π_i·τ̄_i ,
//
// which the tests check against Evaluate — two different computations of
// the same quantity (linear value equations vs. stationary averaging).
func (m *Model) StationaryDistribution(pol Policy) (embedded, timeWeighted []float64, gain float64, err error) {
	if err := m.validatePolicy(pol); err != nil {
		return nil, nil, 0, err
	}
	n := m.K + 1
	// Solve π(P − I) = 0 with Σπ = 1: transpose into (Pᵀ − I)π = 0 and
	// replace the last equation by the normalization.
	A := linalg.NewMatrix(n, n)
	b := make([]float64, n)
	losses := make([]float64, n)
	times := make([]float64, n)
	for i := 0; i <= m.K; i++ {
		tr, err := m.Transitions(i, pol[i])
		if err != nil {
			return nil, nil, 0, err
		}
		losses[i] = tr.ExpLoss
		times[i] = tr.ExpTime
		for j := 0; j <= m.K; j++ {
			A.Add(j, i, tr.NextProb[j]) // column i of Pᵀ rows
		}
	}
	for i := 0; i < n; i++ {
		A.Add(i, i, -1)
	}
	for j := 0; j < n; j++ {
		A.Set(n-1, j, 1) // normalization row
	}
	b[n-1] = 1
	pi, err := linalg.Solve(A, b)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("smdp: stationary solve: %w", err)
	}
	// Clamp tiny negative round-off and renormalize.
	sum := 0.0
	for i := range pi {
		if pi[i] < 0 {
			pi[i] = 0
		}
		sum += pi[i]
	}
	for i := range pi {
		pi[i] /= sum
	}
	lossRate, timeRate := 0.0, 0.0
	tw := make([]float64, n)
	for i := range pi {
		lossRate += pi[i] * losses[i]
		timeRate += pi[i] * times[i]
		tw[i] = pi[i] * times[i]
	}
	for i := range tw {
		tw[i] /= timeRate
	}
	return pi, tw, lossRate / timeRate, nil
}

// PolicyIteration runs Howard's algorithm from the heuristic policy (or
// from the supplied initial policy, if non-nil) and returns the optimal
// window-length rule with its gain.  It errors if the iteration fails to
// converge within maxRounds.
func (m *Model) PolicyIteration(initial Policy, maxRounds int) (Solution, error) {
	if maxRounds <= 0 {
		maxRounds = 100
	}
	pol := initial
	if pol == nil {
		pol = m.HeuristicPolicy(1.0)
	}
	if err := m.validatePolicy(pol); err != nil {
		return Solution{}, err
	}
	var sol Solution
	for round := 1; round <= maxRounds; round++ {
		var err error
		sol, err = m.Evaluate(pol)
		if err != nil {
			return Solution{}, err
		}
		// Improvement: minimize the test quantity
		// r_i^a − g·τ̄_i^a + Σ_j p_ij^a v_j  (appendix A, equation A2,
		// written for minimization).
		improved := false
		next := append(Policy(nil), pol...)
		for i := 1; i <= m.K; i++ {
			bestA, bestQ := pol[i], math.Inf(1)
			for _, a := range m.Actions(i) {
				tr, err := m.Transitions(i, a)
				if err != nil {
					return Solution{}, err
				}
				q := tr.ExpLoss - sol.Gain*tr.ExpTime
				for j := 1; j <= m.K; j++ {
					q += tr.NextProb[j] * sol.Values[j]
				}
				if q < bestQ-1e-12 {
					bestQ, bestA = q, a
				}
			}
			if bestA != pol[i] {
				// Only adopt strictly better actions to avoid cycling.
				curTr, err := m.Transitions(i, pol[i])
				if err != nil {
					return Solution{}, err
				}
				curQ := curTr.ExpLoss - sol.Gain*curTr.ExpTime
				for j := 1; j <= m.K; j++ {
					curQ += curTr.NextProb[j] * sol.Values[j]
				}
				if bestQ < curQ-1e-10 {
					next[i] = bestA
					improved = true
				}
			}
		}
		if !improved {
			sol.Iterations = round
			return sol, nil
		}
		pol = next
	}
	return Solution{}, fmt.Errorf("smdp: policy iteration did not converge in %d rounds", maxRounds)
}
