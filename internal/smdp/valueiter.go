package smdp

import (
	"fmt"
	"math"
)

// ValueIteration solves the same average-cost semi-Markov decision
// problem as PolicyIteration, by relative value iteration on the
// uniformized chain — an independent algorithm whose agreement with
// Howard's method (asserted by the tests) validates the appendix-A
// machinery.
//
// Uniformization: with per-decision durations τ̄_i^a, the average-cost
// optimality equation
//
//	h(i) = min_a { r_i^a − g·τ̄_i^a + Σ_j p_ij^a h(j) }
//
// is solved by iterating the data-transformed operator and extracting g
// from the span of successive iterates (the standard SMDP-to-MDP
// transformation of Schweitzer; all durations here are >= 1 slot, so the
// transformation constant eta = 0.5 is safely inside (0, min τ̄)).
func (m *Model) ValueIteration(tol float64, maxIters int) (Solution, error) {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIters <= 0 {
		maxIters = 200000
	}
	const eta = 0.5 // transformation constant, < every τ̄_i^a (all >= 1)

	// Precompute per-(state, action) data.
	type actData struct {
		a    int
		loss float64
		time float64
		next []float64
	}
	acts := make([][]actData, m.K+1)
	for i := 0; i <= m.K; i++ {
		for _, a := range m.Actions(i) {
			tr, err := m.Transitions(i, a)
			if err != nil {
				return Solution{}, err
			}
			acts[i] = append(acts[i], actData{a: a, loss: tr.ExpLoss, time: tr.ExpTime, next: tr.NextProb})
		}
	}

	h := make([]float64, m.K+1)
	hNew := make([]float64, m.K+1)
	pol := make(Policy, m.K+1)
	for iter := 0; iter < maxIters; iter++ {
		for i := 0; i <= m.K; i++ {
			best := math.Inf(1)
			bestA := 0
			for _, ad := range acts[i] {
				// Data transformation: cost per unit time with
				// self-loop smoothing.
				sum := 0.0
				for j := 1; j <= m.K; j++ {
					sum += ad.next[j] * h[j]
				}
				sum += ad.next[0] * h[0]
				q := ad.loss/ad.time + eta/ad.time*sum + (1-eta/ad.time)*h[i]
				if q < best {
					best = q
					bestA = ad.a
				}
			}
			hNew[i] = best
			pol[i] = bestA
		}
		// Span convergence test: max and min of hNew − h.
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range h {
			d := hNew[i] - h[i]
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		copy(h, hNew)
		if hi-lo < tol {
			g := (hi + lo) / 2
			values := make([]float64, m.K+1)
			base := h[0]
			for i := range values {
				values[i] = h[i] - base
			}
			return Solution{
				Policy:       append(Policy(nil), pol...),
				Gain:         g,
				LossFraction: g / m.ArrivalRate(),
				Values:       values,
				Iterations:   iter + 1,
			}, nil
		}
	}
	return Solution{}, fmt.Errorf("smdp: value iteration did not converge in %d sweeps", maxIters)
}
