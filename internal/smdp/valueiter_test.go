package smdp

import (
	"math"
	"testing"
)

// TestValueIterationMatchesPolicyIteration: two independent solution
// algorithms for the appendix-A decision problem must agree on the
// optimal gain.
func TestValueIterationMatchesPolicyIteration(t *testing.T) {
	cases := []struct {
		k, m int
		p    float64
	}{
		{15, 5, 0.2},
		{30, 10, 0.08},
		{40, 25, 0.03},
	}
	for _, c := range cases {
		mod := mustModel(t, c.k, c.m, c.p)
		pi, err := mod.PolicyIteration(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		vi, err := mod.ValueIteration(1e-11, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pi.Gain-vi.Gain) > 1e-7*(1+pi.Gain) {
			t.Errorf("K=%d M=%d p=%v: PI gain %v vs VI gain %v", c.k, c.m, c.p, pi.Gain, vi.Gain)
		}
		// The value-iteration policy must be at least as good as the
		// policy-iteration one when evaluated exactly (ties allowed).
		viEval, err := mod.Evaluate(vi.Policy)
		if err != nil {
			t.Fatalf("VI policy infeasible: %v", err)
		}
		if viEval.Gain > pi.Gain+1e-9 {
			t.Errorf("VI policy gain %v worse than PI %v", viEval.Gain, pi.Gain)
		}
	}
}

func TestValueIterationHandComputableK1(t *testing.T) {
	p := 0.3
	mDur := 4
	mod := mustModel(t, 1, mDur, p)
	vi, err := mod.ValueIteration(1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := p * p * float64(mDur-1) / ((1-p)*1 + p*float64(mDur))
	if math.Abs(vi.Gain-want) > 1e-9 {
		t.Fatalf("VI gain %v, hand value %v", vi.Gain, want)
	}
}

func TestValueIterationDivergenceGuard(t *testing.T) {
	mod := mustModel(t, 20, 8, 0.1)
	if _, err := mod.ValueIteration(1e-16, 3); err == nil {
		t.Fatal("impossible tolerance within 3 sweeps accepted")
	}
}
