package smdp

import (
	"math"
	"testing"

	"windowctl/internal/rngutil"
)

func mustModel(t *testing.T, k, m int, p float64) *Model {
	t.Helper()
	mod, err := NewModel(k, m, p)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func TestNewModelValidation(t *testing.T) {
	cases := []struct {
		k, m int
		p    float64
	}{
		{0, 5, 0.1}, {5, 0, 0.1}, {5, 5, 0}, {5, 5, 1}, {5, 5, -0.2},
	}
	for i, c := range cases {
		if _, err := NewModel(c.k, c.m, c.p); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestResolveFreshProbabilitiesSum(t *testing.T) {
	for _, p := range []float64{0.05, 0.3, 0.7} {
		mod := mustModel(t, 64, 10, p)
		for _, a := range []int{1, 2, 3, 7, 16, 33, 64} {
			sum := 0.0
			for _, o := range mod.ResolveFresh(a) {
				if o.Prob < 0 {
					t.Fatalf("negative probability at a=%d", a)
				}
				sum += o.Prob
			}
			if math.Abs(sum-1) > 1e-10 {
				t.Fatalf("p=%v a=%d: outcome mass %v", p, a, sum)
			}
		}
	}
}

func TestResolveFreshSingleUnit(t *testing.T) {
	// A one-unit window cannot collide: idle w.p. q, success w.p. p.
	p := 0.3
	mod := mustModel(t, 8, 5, p)
	outs := mod.ResolveFresh(1)
	if len(outs) != 2 {
		t.Fatalf("outcomes: %+v", outs)
	}
	for _, o := range outs {
		if o.Examined != 1 {
			t.Fatalf("one-unit window examined %d", o.Examined)
		}
		if o.Success && (math.Abs(o.Prob-p) > 1e-12 || o.Sigma != 5) {
			t.Fatalf("success outcome %+v", o)
		}
		if !o.Success && (math.Abs(o.Prob-0.7) > 1e-12 || o.Sigma != 1) {
			t.Fatalf("idle outcome %+v", o)
		}
	}
}

func TestResolveFreshTwoUnitsHandComputed(t *testing.T) {
	// a=2: both occupied w.p. p² -> collision, then the older unit (1 of
	// them) succeeds: σ = 1 + 0 + M, e = 1.
	p := 0.4
	q := 1 - p
	mod := mustModel(t, 8, 3, p)
	var collision *Outcome
	for _, o := range mod.ResolveFresh(2) {
		o := o
		if o.Sigma == 1+0+3 && o.Examined == 1 {
			collision = &o
		}
	}
	if collision == nil {
		t.Fatal("collision outcome missing")
	}
	if math.Abs(collision.Prob-p*p) > 1e-12 {
		t.Fatalf("collision prob %v, want %v", collision.Prob, p*p)
	}
	_ = q
}

// monteCarloResolve replays the discrete resolution directly (independent
// implementation) to cross-check ResolveFresh.
func monteCarloResolve(a, m int, p float64, r *rngutil.Stream) (sigma, examined int, success bool) {
	occ := make([]bool, a)
	n := 0
	for i := range occ {
		occ[i] = r.Bernoulli(p)
		if occ[i] {
			n++
		}
	}
	count := func(lo, hi int) int {
		c := 0
		for i := lo; i < hi; i++ {
			if occ[i] {
				c++
			}
		}
		return c
	}
	type win struct{ lo, hi int }
	w := win{0, a}
	sibling := win{-1, -1}
	for {
		c := count(w.lo, w.hi)
		switch {
		case c == 0:
			sigma++
			examined += w.hi - w.lo
			if sibling.lo < 0 {
				return sigma, examined, false
			}
			// Split the sibling (known >= 2).
			mid := sibling.lo + (sibling.hi-sibling.lo+1)/2
			w, sibling = win{sibling.lo, mid}, win{mid, sibling.hi}
		case c == 1:
			sigma += m
			examined += w.hi - w.lo
			return sigma, examined, true
		default:
			sigma++
			mid := w.lo + (w.hi-w.lo+1)/2
			w, sibling = win{w.lo, mid}, win{mid, w.hi}
		}
	}
}

func TestResolveFreshAgainstMonteCarlo(t *testing.T) {
	r := rngutil.New(55)
	for _, tc := range []struct {
		a int
		p float64
	}{{4, 0.3}, {7, 0.25}, {16, 0.12}, {5, 0.6}} {
		mod := mustModel(t, 64, 9, tc.p)
		wantSigma, wantExam, wantSucc := 0.0, 0.0, 0.0
		for _, o := range mod.ResolveFresh(tc.a) {
			wantSigma += o.Prob * float64(o.Sigma)
			wantExam += o.Prob * float64(o.Examined)
			if o.Success {
				wantSucc += o.Prob
			}
		}
		const n = 200000
		var gotSigma, gotExam, gotSucc float64
		for i := 0; i < n; i++ {
			s, e, ok := monteCarloResolve(tc.a, 9, tc.p, r)
			gotSigma += float64(s)
			gotExam += float64(e)
			if ok {
				gotSucc++
			}
		}
		gotSigma /= n
		gotExam /= n
		gotSucc /= n
		if math.Abs(gotSigma-wantSigma) > 0.03*wantSigma+0.01 {
			t.Fatalf("a=%d p=%v: E[σ] MC %v vs exact %v", tc.a, tc.p, gotSigma, wantSigma)
		}
		if math.Abs(gotExam-wantExam) > 0.03*wantExam+0.01 {
			t.Fatalf("a=%d p=%v: E[e] MC %v vs exact %v", tc.a, tc.p, gotExam, wantExam)
		}
		if math.Abs(gotSucc-wantSucc) > 0.01 {
			t.Fatalf("a=%d p=%v: P(succ) MC %v vs exact %v", tc.a, tc.p, gotSucc, wantSucc)
		}
	}
}

func TestTransitionsMassAndBounds(t *testing.T) {
	mod := mustModel(t, 20, 5, 0.2)
	for i := 0; i <= 20; i++ {
		for _, a := range mod.Actions(i) {
			tr, err := mod.Transitions(i, a)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for _, p := range tr.NextProb {
				if p < 0 {
					t.Fatal("negative transition probability")
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-10 {
				t.Fatalf("state %d action %d: transition mass %v", i, a, sum)
			}
			if tr.ExpLoss < 0 || tr.ExpTime < 1 {
				t.Fatalf("state %d action %d: loss %v time %v", i, a, tr.ExpLoss, tr.ExpTime)
			}
		}
	}
}

func TestTransitionsErrors(t *testing.T) {
	mod := mustModel(t, 10, 5, 0.2)
	if _, err := mod.Transitions(11, 1); err == nil {
		t.Fatal("state beyond K accepted")
	}
	if _, err := mod.Transitions(5, 0); err == nil {
		t.Fatal("wait action outside state 0 accepted")
	}
	if _, err := mod.Transitions(5, 6); err == nil {
		t.Fatal("window longer than span accepted")
	}
}

func TestEvaluateHandComputableK1(t *testing.T) {
	// K=1: state 1 self-loops under a=1.  Loss rate
	// g = p·P·(M−1) / (q·1 + p·M).
	p := 0.3
	mDur := 4
	mod := mustModel(t, 1, mDur, p)
	sol, err := mod.Evaluate(Policy{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := p * p * float64(mDur-1) / ((1-p)*1 + p*float64(mDur))
	if math.Abs(sol.Gain-want) > 1e-10 {
		t.Fatalf("gain %v, hand value %v", sol.Gain, want)
	}
	if math.Abs(sol.LossFraction-want/p) > 1e-10 {
		t.Fatalf("loss fraction %v", sol.LossFraction)
	}
}

// chainSimulate runs the Markov chain of a fixed policy directly and
// measures the empirical loss rate.
func chainSimulate(mod *Model, pol Policy, steps int, seed uint64) float64 {
	r := rngutil.New(seed)
	state := 0
	lossSum, timeSum := 0.0, 0.0
	for s := 0; s < steps; s++ {
		tr, err := mod.Transitions(state, pol[state])
		if err != nil {
			panic(err)
		}
		lossSum += tr.ExpLoss
		timeSum += tr.ExpTime
		u := r.Float64()
		acc := 0.0
		next := mod.K
		for j, pj := range tr.NextProb {
			acc += pj
			if u < acc {
				next = j
				break
			}
		}
		state = next
	}
	return lossSum / timeSum
}

func TestEvaluateMatchesChainSimulation(t *testing.T) {
	mod := mustModel(t, 25, 8, 0.15)
	pol := mod.HeuristicPolicy(1.1)
	sol, err := mod.Evaluate(pol)
	if err != nil {
		t.Fatal(err)
	}
	sim := chainSimulate(mod, pol, 400000, 3)
	if math.Abs(sim-sol.Gain) > 0.03*sol.Gain+1e-4 {
		t.Fatalf("chain sim %v vs evaluated gain %v", sim, sol.Gain)
	}
}

func TestPolicyIterationImproves(t *testing.T) {
	mod := mustModel(t, 30, 10, 0.1)
	// Start from a deliberately bad policy: always window a single unit.
	bad := make(Policy, 31)
	for i := 1; i <= 30; i++ {
		bad[i] = 1
	}
	badSol, err := mod.Evaluate(bad)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := mod.PolicyIteration(bad, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Gain > badSol.Gain+1e-12 {
		t.Fatalf("optimal gain %v worse than initial %v", opt.Gain, badSol.Gain)
	}
	if opt.Iterations < 2 {
		t.Fatal("no improvement round happened from the bad policy")
	}
	// The optimum must also dominate the heuristic and a spread of fixed
	// policies.
	heur, err := mod.Evaluate(mod.HeuristicPolicy(1.0884))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Gain > heur.Gain+1e-10 {
		t.Fatalf("optimal gain %v worse than heuristic %v", opt.Gain, heur.Gain)
	}
	for _, g := range []float64{0.5, 2.0, 3.0} {
		s, err := mod.Evaluate(mod.HeuristicPolicy(g))
		if err != nil {
			t.Fatal(err)
		}
		if opt.Gain > s.Gain+1e-10 {
			t.Fatalf("optimal gain %v worse than fixed-G(%v) %v", opt.Gain, g, s.Gain)
		}
	}
}

func TestPolicyIterationFromNilStartsAtHeuristic(t *testing.T) {
	mod := mustModel(t, 15, 5, 0.2)
	sol, err := mod.PolicyIteration(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Policy) != 16 || sol.Policy[0] != 0 {
		t.Fatalf("policy shape: %v", sol.Policy)
	}
}

func TestLossFractionMonotoneInK(t *testing.T) {
	prev := 1.1
	for _, k := range []int{10, 20, 40, 80} {
		mod := mustModel(t, k, 10, 0.08)
		sol, err := mod.PolicyIteration(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sol.LossFraction > prev+1e-9 {
			t.Fatalf("K=%d: loss %v not below %v", k, sol.LossFraction, prev)
		}
		if sol.LossFraction < -1e-12 || sol.LossFraction > 1 {
			t.Fatalf("loss fraction %v out of range", sol.LossFraction)
		}
		prev = sol.LossFraction
	}
}

func TestHeuristicPolicyShape(t *testing.T) {
	mod := mustModel(t, 20, 5, 0.25)
	pol := mod.HeuristicPolicy(1.0)
	// 1/0.25 = 4 messages of expected content.
	for i := 1; i <= 20; i++ {
		want := 4
		if i < 4 {
			want = i
		}
		if pol[i] != want {
			t.Fatalf("heuristic a(%d) = %d, want %d", i, pol[i], want)
		}
	}
}

func TestStationaryDistributionGainIdentity(t *testing.T) {
	// Renewal-reward via the stationary distribution must equal the gain
	// from the value equations — two independent computations.
	mod := mustModel(t, 25, 8, 0.12)
	for _, pol := range []Policy{mod.HeuristicPolicy(1.0), mod.HeuristicPolicy(2.5)} {
		sol, err := mod.Evaluate(pol)
		if err != nil {
			t.Fatal(err)
		}
		embedded, timeWeighted, gain, err := mod.StationaryDistribution(pol)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gain-sol.Gain) > 1e-9*(1+sol.Gain) {
			t.Fatalf("stationary gain %v vs evaluated %v", gain, sol.Gain)
		}
		for _, pi := range [][]float64{embedded, timeWeighted} {
			sum := 0.0
			for _, p := range pi {
				if p < 0 {
					t.Fatal("negative stationary mass")
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("stationary mass %v", sum)
			}
		}
	}
	// Bad policies rejected.
	if _, _, _, err := mod.StationaryDistribution(Policy{0}); err == nil {
		t.Fatal("short policy accepted")
	}
}

func TestEvaluateRejectsBadPolicies(t *testing.T) {
	mod := mustModel(t, 5, 3, 0.2)
	if _, err := mod.Evaluate(Policy{0, 1, 2}); err == nil {
		t.Fatal("short policy accepted")
	}
	if _, err := mod.Evaluate(Policy{1, 1, 1, 1, 1, 1}); err == nil {
		t.Fatal("non-wait action in state 0 accepted")
	}
	if _, err := mod.Evaluate(Policy{0, 1, 3, 1, 1, 1}); err == nil {
		t.Fatal("infeasible window accepted")
	}
}

func BenchmarkPolicyIterationK60(b *testing.B) {
	mod, err := NewModel(60, 25, 0.04)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mod.PolicyIteration(nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}
