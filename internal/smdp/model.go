// Package smdp implements the semi-Markov decision model of §3 of the
// paper and Howard policy iteration over it (appendix A).
//
// Time is discrete in units of Δ = τ (one probe slot), small enough that a
// unit holds at most one message arrival (probability P).  The state is
// the paper's pseudo-time span i ∈ {0, …, K}: the number of time units
// that may still contain untransmitted arrivals.  Policy element (4)
// clamps the span at K; each clamped unit carries an untransmitted message
// with probability P, which is the one-step pseudo loss.
//
// A decision in state i >= 1 selects the initial window length a ∈
// {1, …, i} (policy element (2) — the element the paper could not
// characterize in closed form).  Elements (1) and (3) are fixed at their
// Theorem-1 optima (oldest position, older half first); under them pseudo
// and actual time coincide (Lemma 2), so the model's pseudo loss is the
// controlled protocol's actual loss.  The windowing process is resolved
// *exactly* over the discrete window: occupancy is i.i.d. Bernoulli(P) and
// the splitting recursion is enumerated with conditioning, not simulated.
//
// Policy iteration then yields the true optimal window-size rule a*(i) and
// the minimal long-run loss — the quantity the paper approximated with the
// min-mean-scheduling-time heuristic.  The package also evaluates that
// heuristic policy so the two can be compared (see the ablation bench).
package smdp

import (
	"fmt"
	"math"
)

// Model is the discrete decision model.
type Model struct {
	// K is the time constraint in units of Δ = τ; the state space is
	// {0, …, K}.
	K int
	// M is the message transmission time in slots.
	M int
	// P is the probability a time unit contains a message arrival
	// (P = 1 − e^(−λΔ)).
	P float64

	// splitMemo caches the resolution law of collided windows by size.
	splitMemo map[int][]wePair
}

// wePair is one outcome of resolving a window known to hold >= 2 messages:
// w wasted slots (idle + collision probes after the initial collision) and
// e examined units, with its probability.
type wePair struct {
	w, e int
	prob float64
}

// Outcome is one aggregated windowing-process result.
type Outcome struct {
	// Sigma is the elapsed time in slots until the next decision.
	Sigma int
	// Examined is the number of window units proven clear.
	Examined int
	// Success reports whether a message was transmitted.
	Success bool
	// Prob is the outcome probability.
	Prob float64
}

// NewModel validates and returns a Model.
func NewModel(k, m int, p float64) (*Model, error) {
	if k < 1 {
		return nil, fmt.Errorf("smdp: K=%d must be >= 1", k)
	}
	if m < 1 {
		return nil, fmt.Errorf("smdp: M=%d must be >= 1", m)
	}
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("smdp: occupancy P=%v must lie in (0,1)", p)
	}
	return &Model{K: k, M: m, P: p, splitMemo: map[int][]wePair{}}, nil
}

// binomTail returns P(Bin(n, p) >= lo) for lo in {1, 2}.
func (m *Model) binomTail(n, lo int) float64 {
	q := 1 - m.P
	p0 := math.Pow(q, float64(n))
	switch lo {
	case 1:
		return 1 - p0
	case 2:
		p1 := float64(n) * m.P * math.Pow(q, float64(n-1))
		return 1 - p0 - p1
	default:
		panic("smdp: binomTail supports lo in {1,2}")
	}
}

// splitGE2 returns the exact resolution law of a window of a units known
// to contain at least two messages, after its (already counted) initial
// collision: the distribution of (wasted slots, examined units) until the
// success transmission begins.  The split puts ceil(a/2) units in the
// older half, which is always probed first (Theorem 1).
func (m *Model) splitGE2(a int) []wePair {
	if a < 2 {
		panic(fmt.Sprintf("smdp: splitGE2(%d)", a))
	}
	if out, ok := m.splitMemo[a]; ok {
		return out
	}
	q := 1 - m.P
	aL := (a + 1) / 2
	aR := a - aL
	z := m.binomTail(a, 2)
	acc := map[[2]int]float64{}

	// E1: the older half holds exactly one message — it is transmitted and
	// the older half (aL units) is proven clear; the newer half rejoins
	// the unexamined region.
	pE1 := float64(aL) * m.P * math.Pow(q, float64(aL-1)) * m.binomTail(aR, 1) / z
	if pE1 > 0 {
		acc[[2]int{0, aL}] += pE1
	}
	// E0: the older half is empty (one idle slot, aL units cleared); the
	// newer half is then known to hold >= 2 and is split immediately.
	if aR >= 2 {
		pE0 := math.Pow(q, float64(aL)) * m.binomTail(aR, 2) / z
		if pE0 > 0 {
			for _, sub := range m.splitGE2(aR) {
				acc[[2]int{1 + sub.w, aL + sub.e}] += pE0 * sub.prob
			}
		}
	}
	// E2: the older half itself collides (one collision slot); the newer
	// half rejoins the unexamined region unprobed.
	if aL >= 2 {
		pE2 := m.binomTail(aL, 2) / z
		if pE2 > 0 {
			for _, sub := range m.splitGE2(aL) {
				acc[[2]int{1 + sub.w, sub.e}] += pE2 * sub.prob
			}
		}
	}

	out := make([]wePair, 0, len(acc))
	for k, p := range acc {
		out = append(out, wePair{w: k[0], e: k[1], prob: p})
	}
	m.splitMemo[a] = out
	return out
}

// ResolveFresh returns the exact law of one windowing process started on a
// fresh window of a >= 1 units.
func (m *Model) ResolveFresh(a int) []Outcome {
	if a < 1 {
		panic(fmt.Sprintf("smdp: ResolveFresh(%d)", a))
	}
	q := 1 - m.P
	var out []Outcome
	p0 := math.Pow(q, float64(a))
	out = append(out, Outcome{Sigma: 1, Examined: a, Success: false, Prob: p0})
	p1 := float64(a) * m.P * math.Pow(q, float64(a-1))
	out = append(out, Outcome{Sigma: m.M, Examined: a, Success: true, Prob: p1})
	if a >= 2 {
		pc := m.binomTail(a, 2)
		for _, sub := range m.splitGE2(a) {
			out = append(out, Outcome{
				Sigma:    1 + sub.w + m.M,
				Examined: sub.e,
				Success:  true,
				Prob:     pc * sub.prob,
			})
		}
	}
	return out
}

// Transition aggregates one (state, action) pair.
type Transition struct {
	// NextProb[j] is the probability the next state is j.
	NextProb []float64
	// ExpLoss is the expected number of messages discarded by the clamp
	// (the one-step pseudo loss r_i^a of appendix A).
	ExpLoss float64
	// ExpTime is the expected slots until the next decision (τ̄_i^a).
	ExpTime float64
}

// Actions returns the feasible window lengths in state i: {1..i}, or the
// single "wait one slot" pseudo-action (encoded as 0) when i = 0.
func (m *Model) Actions(i int) []int {
	if i == 0 {
		return []int{0}
	}
	acts := make([]int, i)
	for a := 1; a <= i; a++ {
		acts[a-1] = a
	}
	return acts
}

// Transitions computes the exact transition law for choosing window length
// a in state i.  Action 0 (wait) is valid only in state 0.
func (m *Model) Transitions(i, a int) (Transition, error) {
	if i < 0 || i > m.K {
		return Transition{}, fmt.Errorf("smdp: state %d outside [0, %d]", i, m.K)
	}
	t := Transition{NextProb: make([]float64, m.K+1)}
	if a == 0 {
		if i != 0 {
			return Transition{}, fmt.Errorf("smdp: wait action only valid in state 0")
		}
		// One slot passes; one new unit of time accrues.
		j := 1
		if j > m.K {
			j = m.K
		}
		t.NextProb[j] = 1
		t.ExpTime = 1
		return t, nil
	}
	if a < 1 || a > i {
		return Transition{}, fmt.Errorf("smdp: action %d infeasible in state %d", a, i)
	}
	for _, o := range m.ResolveFresh(a) {
		raw := i - o.Examined + o.Sigma
		over := raw - m.K
		if over < 0 {
			over = 0
		}
		j := raw - over
		t.NextProb[j] += o.Prob
		t.ExpLoss += o.Prob * m.P * float64(over)
		t.ExpTime += o.Prob * float64(o.Sigma)
	}
	return t, nil
}

// ArrivalRate returns the expected arrivals per slot (= P).
func (m *Model) ArrivalRate() float64 { return m.P }
