package station

import (
	"math"
	"testing"
	"testing/quick"

	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

func newStation(seed uint64, rate float64) *Station {
	var nextID int64
	return New(0, Poisson{Rate: rate}, rngutil.New(seed), &nextID)
}

func TestPoissonGenerationRate(t *testing.T) {
	s := newStation(1, 2.0)
	s.GenerateUntil(10000)
	got := float64(s.Created()) / 10000
	if math.Abs(got-2) > 0.05 {
		t.Fatalf("generation rate %v, want 2", got)
	}
}

func TestGenerateUntilIncremental(t *testing.T) {
	a := newStation(5, 1)
	b := newStation(5, 1)
	a.GenerateUntil(100)
	for x := 0.0; x <= 100; x += 0.7 {
		b.GenerateUntil(x)
	}
	b.GenerateUntil(100)
	if a.Created() != b.Created() {
		t.Fatalf("incremental generation differs: %d vs %d", a.Created(), b.Created())
	}
	if a.QueueLen() != b.QueueLen() {
		t.Fatal("queues differ")
	}
}

func TestCountAndPop(t *testing.T) {
	s := newStation(2, 1)
	s.GenerateUntil(50)
	w := window.Window{Start: 10, End: 20}
	n := s.CountIn(w)
	// Cross-check by popping until empty.
	popped := 0
	for {
		m, ok := s.PopOldestIn(w)
		if !ok {
			break
		}
		if !w.Contains(m.Arrival) {
			t.Fatalf("popped %v outside window", m.Arrival)
		}
		popped++
	}
	if popped != n {
		t.Fatalf("CountIn=%d but popped %d", n, popped)
	}
	if s.CountIn(w) != 0 {
		t.Fatal("window still non-empty after draining")
	}
}

func TestPopOldestOrder(t *testing.T) {
	s := newStation(3, 1)
	s.GenerateUntil(30)
	w := window.Window{Start: 0, End: 30}
	prev := -1.0
	for {
		m, ok := s.PopOldestIn(w)
		if !ok {
			break
		}
		if m.Arrival < prev {
			t.Fatal("pop order not ascending")
		}
		prev = m.Arrival
	}
}

func TestDiscardArrivedBefore(t *testing.T) {
	s := newStation(4, 1)
	s.GenerateUntil(40)
	total := s.QueueLen()
	dropped := s.DiscardArrivedBefore(20)
	for _, m := range dropped {
		if m.Arrival >= 20 {
			t.Fatalf("dropped fresh message at %v", m.Arrival)
		}
	}
	if s.QueueLen()+len(dropped) != total {
		t.Fatal("messages lost in discard")
	}
	if old, ok := s.Oldest(); ok && old.Arrival < 20 {
		t.Fatal("old message survived discard")
	}
	// Idempotent.
	if len(s.DiscardArrivedBefore(20)) != 0 {
		t.Fatal("second discard dropped messages")
	}
}

func TestOldestEmpty(t *testing.T) {
	s := newStation(6, 1)
	if _, ok := s.Oldest(); ok {
		t.Fatal("empty station has an oldest message")
	}
}

func TestUniqueIDsAcrossStations(t *testing.T) {
	var nextID int64
	r := rngutil.New(9)
	sts := make([]*Station, 4)
	for i := range sts {
		sts[i] = New(i, Poisson{Rate: 1}, r.Spawn(), &nextID)
	}
	seen := map[int64]bool{}
	for _, s := range sts {
		s.GenerateUntil(100)
		w := window.Window{Start: 0, End: 101}
		for {
			m, ok := s.PopOldestIn(w)
			if !ok {
				break
			}
			if seen[m.ID] {
				t.Fatalf("duplicate message ID %d", m.ID)
			}
			if m.Origin != s.ID() {
				t.Fatal("origin mismatch")
			}
			seen[m.ID] = true
		}
	}
}

func TestOnOffMeanRate(t *testing.T) {
	o := &OnOff{OnRate: 50, MeanOn: 1.0, MeanOff: 1.5}
	want := 50 * 1.0 / 2.5
	if math.Abs(o.MeanRate()-want) > 1e-12 {
		t.Fatalf("MeanRate %v, want %v", o.MeanRate(), want)
	}
	var nextID int64
	s := New(0, o, rngutil.New(11), &nextID)
	s.GenerateUntil(5000)
	got := float64(s.Created()) / 5000
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("on/off empirical rate %v, want %v", got, want)
	}
}

func TestOnOffBurstiness(t *testing.T) {
	// Index of dispersion of counts over short intervals must exceed 1
	// (Poisson would be ~1): the defining property of talkspurt traffic.
	o := &OnOff{OnRate: 40, MeanOn: 0.5, MeanOff: 2}
	var nextID int64
	s := New(0, o, rngutil.New(12), &nextID)
	s.GenerateUntil(4000)
	w := 1.0 // counting window
	counts := make([]float64, 4000)
	all := window.Window{Start: 0, End: 4001}
	for {
		m, ok := s.PopOldestIn(all)
		if !ok {
			break
		}
		idx := int(m.Arrival / w)
		if idx < len(counts) {
			counts[idx]++
		}
	}
	mean, varsum := 0.0, 0.0
	for _, c := range counts {
		mean += c
	}
	mean /= float64(len(counts))
	for _, c := range counts {
		varsum += (c - mean) * (c - mean)
	}
	iod := varsum / float64(len(counts)) / mean
	if iod < 1.5 {
		t.Fatalf("on/off index of dispersion %v, expected bursty (> 1.5)", iod)
	}
}

func TestConstructorPanics(t *testing.T) {
	var id int64
	r := rngutil.New(1)
	for i, fn := range []func(){
		func() { New(0, nil, r, &id) },
		func() { New(0, Poisson{Rate: 1}, nil, &id) },
		func() { New(0, Poisson{Rate: 1}, r, nil) },
		func() {
			o := &OnOff{}
			var nid int64
			s := New(0, o, rngutil.New(2), &nid)
			s.GenerateUntil(1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// Property: the queue is always sorted by arrival and CountIn is
// consistent with membership.
func TestQueueSortedProperty(t *testing.T) {
	f := func(seed uint64, horizon uint8) bool {
		s := newStation(seed, 1.5)
		s.GenerateUntil(float64(horizon%50) + 1)
		prev := -1.0
		w := window.Window{Start: 0, End: 1e9}
		n := s.CountIn(w)
		if n != s.QueueLen() {
			return false
		}
		for {
			m, ok := s.PopOldestIn(w)
			if !ok {
				break
			}
			if m.Arrival < prev {
				return false
			}
			prev = m.Arrival
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
