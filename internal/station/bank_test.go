package station

// Bank-vs-Station oracle: the struct-of-arrays population must generate
// the exact arrival sequence that one Station object per index would,
// stream for stream and draw for draw, because the multi-station
// engine's bit-equality with its per-station reference rests on it.

import (
	"math"
	"sort"
	"testing"

	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

type refArrival struct {
	at     float64
	origin int
}

// referenceArrivals drains one Station object per index — seeded the
// way the legacy engine did, root.Spawn() in index order — and returns
// every arrival with time <= t in global (time, station) order.
func referenceArrivals(n int, seed uint64, rate float64, arrivals func(int) ArrivalProcess, t float64) []refArrival {
	root := rngutil.New(seed)
	var nextID int64
	var all []refArrival
	for i := 0; i < n; i++ {
		proc := ArrivalProcess(Poisson{Rate: rate})
		if arrivals != nil {
			proc = arrivals(i)
		}
		s := New(i, proc, root.Spawn(), &nextID)
		s.GenerateUntil(t)
		for {
			m, ok := s.PopOldestIn(window.Window{Start: math.Inf(-1), End: math.Inf(1)})
			if !ok {
				break
			}
			all = append(all, refArrival{at: m.Arrival, origin: m.Origin})
		}
	}
	sort.Slice(all, func(x, y int) bool {
		if all[x].at != all[y].at {
			return all[x].at < all[y].at
		}
		return all[x].origin < all[y].origin
	})
	return all
}

func bankArrivals(t *testing.T, n int, seed uint64, rate float64, arrivals func(int) ArrivalProcess, workers int, until float64) []refArrival {
	t.Helper()
	b, err := NewBank(n, seed, rate, arrivals, workers)
	if err != nil {
		t.Fatal(err)
	}
	// Generate in bursts so the due/not-due boundary logic is exercised,
	// not just one final sweep.
	for at := until / 8; at < until; at += until / 8 {
		b.GenerateUntil(at)
	}
	b.GenerateUntil(until)
	var all []refArrival
	b.ForEach(func(at float64, origin int32) {
		all = append(all, refArrival{at: at, origin: int(origin)})
	})
	if b.Len() != len(all) || int(b.Created()) != len(all) {
		t.Fatalf("bookkeeping mismatch: Len=%d Created=%d ForEach=%d", b.Len(), b.Created(), len(all))
	}
	return all
}

func sameArrivals(t *testing.T, got, want []refArrival) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("arrival count mismatch: got %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("arrival %d mismatch: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBankMatchesStationsPoisson(t *testing.T) {
	const n, seed, until = 25, 41, 4000.0
	want := referenceArrivals(n, seed, 0.02, nil, until)
	if len(want) == 0 {
		t.Fatal("reference generated no arrivals; the oracle is vacuous")
	}
	sameArrivals(t, bankArrivals(t, n, seed, 0.02, nil, 1, until), want)
}

func TestBankMatchesStationsOnOff(t *testing.T) {
	const n, seed, until = 8, 43, 8000.0
	factory := func(int) ArrivalProcess {
		return &OnOff{OnRate: 0.05, MeanOn: 100, MeanOff: 300}
	}
	want := referenceArrivals(n, seed, 0, factory, until)
	if len(want) == 0 {
		t.Fatal("reference generated no arrivals; the oracle is vacuous")
	}
	sameArrivals(t, bankArrivals(t, n, seed, 0, factory, 1, until), want)
}

// TestBankWorkersBitIdentical pins the sharded initialization: child
// stream identity is positional, so any worker count must build the
// same population state and hence the same arrival sequence.
func TestBankWorkersBitIdentical(t *testing.T) {
	const n, seed, until = 100, 47, 2000.0
	want := bankArrivals(t, n, seed, 0.01, nil, 1, until)
	for _, workers := range []int{2, 7, 64, 200} {
		sameArrivals(t, bankArrivals(t, n, seed, 0.01, nil, workers, until), want)
	}
}

// TestBankWindowOps exercises the shared multiset against a sorted-slice
// model: counting, oldest-in-window extraction and horizon discards.
func TestBankWindowOps(t *testing.T) {
	const n, seed, until = 10, 53, 5000.0
	b, err := NewBank(n, seed, 0.02, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.GenerateUntil(until)
	var model []refArrival
	b.ForEach(func(at float64, origin int32) {
		model = append(model, refArrival{at: at, origin: int(origin)})
	})
	if len(model) < 20 {
		t.Fatalf("want a rich backlog, got %d arrivals", len(model))
	}

	w := window.Window{Start: model[3].at, End: model[len(model)/2].at}
	wantIn := 0
	for _, m := range model {
		if m.at >= w.Start && m.at < w.End {
			wantIn++
		}
	}
	if got := b.CountIn(w); got != wantIn {
		t.Fatalf("CountIn(%v) = %d, want %d", w, got, wantIn)
	}

	at, origin, ok := b.PopOldestIn(w)
	if !ok || at != model[3].at || int(origin) != model[3].origin {
		t.Fatalf("PopOldestIn(%v) = (%v, %d, %v), want (%v, %d, true)",
			w, at, origin, ok, model[3].at, model[3].origin)
	}
	if got := b.CountIn(w); got != wantIn-1 {
		t.Fatalf("CountIn after pop = %d, want %d", got, wantIn-1)
	}

	horizon := model[6].at
	wantDrop, seen := 0, 0
	for i, m := range model {
		if i != 3 && m.at < horizon {
			wantDrop++
		}
	}
	dropped := b.DiscardBelowFunc(horizon, func(float64) { seen++ })
	if dropped != wantDrop || seen != wantDrop {
		t.Fatalf("DiscardBelowFunc dropped %d (callback %d), want %d", dropped, seen, wantDrop)
	}
	if b.Len() != len(model)-1-wantDrop {
		t.Fatalf("Len after discard = %d, want %d", b.Len(), len(model)-1-wantDrop)
	}
}

func TestBankRejectsBadInput(t *testing.T) {
	if _, err := NewBank(0, 1, 1, nil, 1); err == nil {
		t.Fatal("zero stations accepted")
	}
	if _, err := NewBank(4, 1, 1, func(int) ArrivalProcess { return nil }, 1); err == nil {
		t.Fatal("nil arrival process accepted")
	}
}
