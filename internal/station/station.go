// Package station models the distributed senders of the multiple-access
// network: each station generates its own message arrivals, holds the
// pending ones in a local queue ordered by arrival time, and participates
// in the window protocol by transmitting exactly when one of its pending
// messages falls inside the commonly enabled window.
//
// Arrival generation is pluggable.  The paper's analysis assumes Poisson
// traffic; the packetized-voice example uses an on/off (talkspurt) source,
// whose superposition across many stations the Poisson analysis
// approximates.
package station

import (
	"fmt"
	"math"

	"windowctl/internal/metrics"
	"windowctl/internal/pendq"
	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

// Message is one fixed-length message awaiting transmission.
type Message struct {
	// ID is unique across the simulation.
	ID int64
	// Origin is the generating station's index.
	Origin int
	// Arrival is the absolute arrival time at the sending station.
	Arrival float64
}

// ArrivalProcess generates successive inter-arrival gaps.
type ArrivalProcess interface {
	// NextGap returns the time from the previous arrival to the next one;
	// it must be strictly positive.
	NextGap(r *rngutil.Stream) float64
	// String describes the process.
	String() string
}

// Poisson is a Poisson arrival process with the given rate.
type Poisson struct{ Rate float64 }

// NextGap implements ArrivalProcess.
func (p Poisson) NextGap(r *rngutil.Stream) float64 { return r.Exp(p.Rate) }

// String implements ArrivalProcess.
func (p Poisson) String() string { return fmt.Sprintf("Poisson(rate=%g)", p.Rate) }

// OnOff is a two-state talkspurt source: during an ON period (mean
// duration MeanOn) arrivals are Poisson at OnRate; OFF periods (mean
// MeanOff) generate nothing.  Both period lengths are exponential.  It
// models a packetized-voice speaker, the motivating application of the
// paper's introduction.
type OnOff struct {
	// OnRate is the arrival rate while talking.
	OnRate float64
	// MeanOn and MeanOff are the mean talkspurt and silence durations.
	MeanOn, MeanOff float64

	on        bool
	stateLeft float64
}

// NextGap implements ArrivalProcess.
func (o *OnOff) NextGap(r *rngutil.Stream) float64 {
	if o.OnRate <= 0 || o.MeanOn <= 0 || o.MeanOff <= 0 {
		panic("station: OnOff needs positive OnRate, MeanOn, MeanOff")
	}
	gap := 0.0
	for {
		if !o.on {
			// Skip the rest of the silence, then start a talkspurt.
			gap += o.stateLeft
			o.stateLeft = r.Exp(1 / o.MeanOn)
			o.on = true
		}
		candidate := r.Exp(o.OnRate)
		if candidate <= o.stateLeft {
			o.stateLeft -= candidate
			return gap + candidate
		}
		// Talkspurt ended before the next packet: enter silence.
		gap += o.stateLeft
		o.on = false
		o.stateLeft = r.Exp(1 / o.MeanOff)
	}
}

// MeanRate returns the long-run arrival rate of the on/off source.
func (o *OnOff) MeanRate() float64 {
	return o.OnRate * o.MeanOn / (o.MeanOn + o.MeanOff)
}

// String implements ArrivalProcess.
func (o *OnOff) String() string {
	return fmt.Sprintf("OnOff(onRate=%g, on=%g, off=%g)", o.OnRate, o.MeanOn, o.MeanOff)
}

// Station is one sender.
type Station struct {
	id        int
	proc      ArrivalProcess
	rng       *rngutil.Stream
	nextID    *int64 // shared message-ID counter
	nextAt    float64
	queue     pendq.Queue[Message] // pending messages, keyed by arrival time
	created   int64
	collector metrics.Collector // nil unless Observe was called
}

// New creates a station.  nextID is a shared counter used to assign
// globally unique message IDs; pass the same pointer to every station.
func New(id int, proc ArrivalProcess, rng *rngutil.Stream, nextID *int64) *Station {
	if proc == nil || rng == nil || nextID == nil {
		panic("station: nil dependency")
	}
	s := &Station{id: id, proc: proc, rng: rng, nextID: nextID}
	s.nextAt = proc.NextGap(rng)
	return s
}

// ID returns the station index.
func (s *Station) ID() int { return s.id }

// Observe attaches a metrics collector: generated arrivals and element-(4)
// discards at this station are reported to it.  Pass nil to detach.  The
// same collector may be shared by every station of a simulation — message
// events are disjoint across stations.
func (s *Station) Observe(c metrics.Collector) { s.collector = c }

// GenerateUntil materializes every arrival with time <= t into the queue
// and returns how many were added.
func (s *Station) GenerateUntil(t float64) int {
	added := 0
	for s.nextAt <= t {
		id := *s.nextID
		*s.nextID++
		s.queue.Push(s.nextAt, Message{ID: id, Origin: s.id, Arrival: s.nextAt})
		s.created++
		added++
		gap := s.proc.NextGap(s.rng)
		if gap <= 0 {
			panic("station: arrival process returned non-positive gap")
		}
		s.nextAt += gap
	}
	if s.collector != nil && added > 0 {
		s.collector.RecordArrivals(int64(added))
	}
	return added
}

// NextArrivalAt returns the time of the next not-yet-materialized arrival.
func (s *Station) NextArrivalAt() float64 { return s.nextAt }

// QueueLen returns the number of pending messages.
func (s *Station) QueueLen() int { return s.queue.Len() }

// Created returns the total number of messages generated so far.
func (s *Station) Created() int64 { return s.created }

// CountIn returns how many pending messages have arrival times inside w.
func (s *Station) CountIn(w window.Window) int {
	return s.queue.CountIn(w.Start, w.End)
}

// PopOldestIn removes and returns the oldest pending message inside w.
func (s *Station) PopOldestIn(w window.Window) (Message, bool) {
	_, m, ok := s.queue.PopFirstIn(w.Start, w.End)
	return m, ok
}

// DiscardArrivedBeforeFunc removes every pending message with arrival
// time strictly below the horizon (policy element (4)), calling fn (if
// non-nil) on each in arrival order, and returns how many were dropped.
// It is the allocation-free form the simulation engines use per decision
// epoch.
func (s *Station) DiscardArrivedBeforeFunc(horizon float64, fn func(Message)) int {
	var n int
	if fn == nil {
		n = s.queue.DiscardBelow(horizon, nil)
	} else {
		n = s.queue.DiscardBelow(horizon, func(_ float64, m Message) { fn(m) })
	}
	if n > 0 && s.collector != nil {
		s.collector.RecordDiscards(int64(n))
	}
	return n
}

// DiscardArrivedBefore removes and returns every pending message with
// arrival time strictly below the horizon.  It allocates the returned
// slice; hot paths should use DiscardArrivedBeforeFunc.
func (s *Station) DiscardArrivedBefore(horizon float64) []Message {
	var dropped []Message
	s.DiscardArrivedBeforeFunc(horizon, func(m Message) { dropped = append(dropped, m) })
	return dropped
}

// Oldest returns the oldest pending message without removing it.
func (s *Station) Oldest() (Message, bool) {
	_, m, ok := s.queue.FirstIn(math.Inf(-1), math.Inf(1))
	return m, ok
}
