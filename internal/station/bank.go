package station

import (
	"fmt"
	"math"
	"sync"

	"windowctl/internal/metrics"
	"windowctl/internal/pendq"
	"windowctl/internal/rngutil"
	"windowctl/internal/window"
)

// Bank is a whole station population in struct-of-arrays form: flat,
// index-parallel slices of per-station arrival state plus one shared
// pending multiset, in place of a slice of Station objects.
//
// The multi-station engine's fast path exploits the protocol's symmetry:
// under common channel feedback every station's resolver and tracker pass
// through identical states, so the only thing distinguishing station i
// from station j is its private arrival stream.  The Bank therefore keeps
// exactly that — one xoshiro stream, one next-arrival time and (when
// sources are heterogeneous) one ArrivalProcess per station — and merges
// the M streams into a single global arrival order with an index min-heap
// keyed by next-arrival time.  Materialized arrivals land in one shared
// pendq.Queue keyed by arrival time, whose Fenwick machinery answers the
// per-slot window queries in O(log backlog) independent of M.
//
// Per-station memory is 56 bytes (stream 48, nextAt 8) plus 4 heap bytes,
// so a million stations fit in ~64 MB with zero per-station allocations.
//
// Stream identity is positional: station i draws from
// rngutil.Seeded(rngutil.ChildSeed(seed, i+1)), the exact stream the i-th
// Spawn of a root New(seed) yields.  Because child identity is a pure
// function of (seed, i), initialization shards across any number of
// workers bit-identically; it is also how the Bank reproduces the legacy
// one-object-per-station engine draw for draw.
type Bank struct {
	n       int
	rate    float64          // uniform Poisson rate, used when procs is nil
	procs   []ArrivalProcess // per-station sources; nil for uniform Poisson
	streams []rngutil.Stream
	nextAt  []float64          // next not-yet-materialized arrival per station
	heap    []int32            // station indices ordered by (nextAt, index)
	pending pendq.Queue[int32] // origin station per pending message, keyed by arrival
	created int64
	col     metrics.Collector

	// discardFn/discardAdapter relay pendq discard callbacks without a
	// per-call closure: the adapter is bound once, the target swaps.
	discardFn      func(arrival float64)
	discardAdapter func(key float64, item int32)
}

// NewBank creates the population.  Station i's arrivals come from
// arrivals(i) when the factory is non-nil (it is called sequentially in
// index order, so stateful factories are safe) and from Poisson(rate)
// otherwise.  workers shards the stream seeding and first-gap draws;
// any value produces identical state (<= 1 runs inline).
func NewBank(n int, seed uint64, rate float64, arrivals func(int) ArrivalProcess, workers int) (*Bank, error) {
	if n < 1 {
		return nil, fmt.Errorf("station: need >= 1 station, got %d", n)
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("station: %d stations exceed the int32 index space", n)
	}
	b := &Bank{
		n:       n,
		rate:    rate,
		streams: make([]rngutil.Stream, n),
		nextAt:  make([]float64, n),
		heap:    make([]int32, n),
	}
	if arrivals != nil {
		b.procs = make([]ArrivalProcess, n)
		for i := range b.procs {
			p := arrivals(i)
			if p == nil {
				return nil, fmt.Errorf("station: arrival factory returned nil for station %d", i)
			}
			b.procs[i] = p
		}
	}
	if workers > n {
		workers = n
	}
	init := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b.streams[i] = rngutil.Seeded(rngutil.ChildSeed(seed, uint64(i)+1))
			b.nextAt[i] = b.gap(i)
			b.heap[i] = int32(i)
		}
	}
	if workers <= 1 {
		init(0, n)
	} else {
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				init(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	for i := n/2 - 1; i >= 0; i-- {
		b.siftDown(i)
	}
	b.discardAdapter = func(key float64, _ int32) { b.discardFn(key) }
	return b, nil
}

// gap draws station i's next inter-arrival gap.
func (b *Bank) gap(i int) float64 {
	var g float64
	if b.procs == nil {
		g = b.streams[i].Exp(b.rate)
	} else {
		g = b.procs[i].NextGap(&b.streams[i])
	}
	if g <= 0 {
		panic("station: arrival process returned non-positive gap")
	}
	return g
}

func (b *Bank) less(x, y int32) bool {
	ax, ay := b.nextAt[x], b.nextAt[y]
	return ax < ay || (ax == ay && x < y)
}

func (b *Bank) siftDown(i int) {
	h := b.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && b.less(h[r], h[l]) {
			m = r
		}
		if !b.less(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Stations returns the population size.
func (b *Bank) Stations() int { return b.n }

// Observe attaches a metrics collector for arrival and discard events.
func (b *Bank) Observe(c metrics.Collector) { b.col = c }

// GenerateUntil materializes every arrival across the population with
// time <= t into the shared pending set, in global arrival order, and
// returns how many were added.  Each materialized arrival costs one
// O(log M) heap repair; a peek that finds nothing due costs O(1).
func (b *Bank) GenerateUntil(t float64) int {
	added := 0
	for {
		s := b.heap[0]
		at := b.nextAt[s]
		if at > t {
			break
		}
		b.pending.Push(at, s)
		b.created++
		added++
		b.nextAt[s] = at + b.gap(int(s))
		b.siftDown(0)
	}
	if added > 0 && b.col != nil {
		b.col.RecordArrivals(int64(added))
	}
	return added
}

// NextArrivalAt returns the time of the population's next
// not-yet-materialized arrival.
func (b *Bank) NextArrivalAt() float64 { return b.nextAt[b.heap[0]] }

// Len returns the number of pending messages across all stations.
func (b *Bank) Len() int { return b.pending.Len() }

// Created returns the total number of messages generated so far.
func (b *Bank) Created() int64 { return b.created }

// CountIn returns how many pending messages arrived inside w.
func (b *Bank) CountIn(w window.Window) int {
	return b.pending.CountIn(w.Start, w.End)
}

// PopOldestIn removes the oldest pending message inside w, returning its
// arrival time and origin station.
func (b *Bank) PopOldestIn(w window.Window) (arrival float64, origin int32, ok bool) {
	return b.pending.PopFirstIn(w.Start, w.End)
}

// DiscardBelowFunc removes every pending message with arrival time
// strictly below the horizon (policy element (4)), calling fn (if
// non-nil) on each arrival time in order, and returns how many were
// dropped.
func (b *Bank) DiscardBelowFunc(horizon float64, fn func(arrival float64)) int {
	var n int
	if fn == nil {
		n = b.pending.DiscardBelow(horizon, nil)
	} else {
		b.discardFn = fn
		n = b.pending.DiscardBelow(horizon, b.discardAdapter)
		b.discardFn = nil
	}
	if n > 0 && b.col != nil {
		b.col.RecordDiscards(int64(n))
	}
	return n
}

// ForEach calls fn on every pending message in arrival order.
func (b *Bank) ForEach(fn func(arrival float64, origin int32)) {
	b.pending.ForEach(fn)
}
