package window

import (
	"fmt"
	"math"

	"windowctl/internal/rngutil"
)

// View is the protocol state a policy sees when it must make a decision
// (the paper's §2: a decision is made each time an initial window is
// selected, and at each split).
type View struct {
	// Now is the current time; windows may not extend beyond it.
	Now float64
	// TPast is the oldest point in time — never older than the discard
	// horizon — that may still contain untransmitted arrivals.
	TPast float64
	// TNewest is the most recent unexamined time (equals Now except for
	// policies that leave interior gaps, where it is the supremum of the
	// unexamined region; for all policies here it is Now).
	TNewest float64
	// K is the time constraint; +Inf when no constraint applies.
	K float64
	// Tau is the slot time (end-to-end propagation delay).
	Tau float64
	// Lambda is the estimated network-wide message arrival rate, used by
	// window-length rules.
	Lambda float64
	// Cleared, when non-nil, exposes the intervals known to contain no
	// untransmitted arrivals, letting policies measure and skip gaps
	// (pseudo-time placement).  Policies must treat it as read-only.
	Cleared *IntervalSet
	// MinSplitLen, when positive, makes the windowing process give up
	// (end without success) instead of splitting a window shorter than
	// this.  A perfectly synchronized network never needs it — splitting
	// always terminates on distinct arrival times — but stations with
	// inconsistent views (clock skew, heterogeneous window sizes) can
	// produce *phantom* collisions whose resolution would otherwise split
	// empty windows forever.
	MinSplitLen float64
}

// LengthRule chooses the initial window length (the paper's policy element
// (2)) from the current view.  The returned value is clamped by the caller
// so the window never extends beyond View.Now.
type LengthRule func(v View) float64

// FixedG returns a LengthRule choosing length g/λ, i.e. holding the mean
// number of arrivals per initial window at g.  The element-(2) heuristic of
// §4 computes the g minimizing mean scheduling time (see internal/sched);
// this rule applies such a precomputed g.
func FixedG(g float64) LengthRule {
	if g <= 0 {
		panic("window: FixedG requires g > 0")
	}
	return func(v View) float64 {
		if v.Lambda <= 0 {
			return math.Inf(1) // no rate information: take everything offered
		}
		return g / v.Lambda
	}
}

// FixedLength returns a LengthRule with a constant window length.
func FixedLength(l float64) LengthRule {
	if l <= 0 {
		panic("window: FixedLength requires l > 0")
	}
	return func(View) float64 { return l }
}

// Policy supplies the four control elements of §2.  Implementations must
// be deterministic functions of their inputs (plus, for the Random policy,
// an explicitly seeded common random sequence) so every station makes the
// same decision from the same feedback.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// InitialWindow chooses the initial window (elements (1) and (2)).
	// The engine clamps the result to end no later than v.Now.
	InitialWindow(v View) Window
	// ChooseSide picks which part of a split window to enable first
	// (element (3)); depth counts splits within the current windowing
	// process, starting at 0.
	ChooseSide(v View, w Window, depth int) Side
	// SplitFraction gives the cut point of a split as a fraction of the
	// window (the paper always halves; the §5 extension explores others).
	SplitFraction(v View, w Window, depth int) float64
	// Discards reports whether element (4) is in force: senders discard
	// messages whose delay already exceeds K.
	Discards() bool
}

// ---------------------------------------------------------------------------
// Controlled — the paper's optimal policy (Theorem 1 + element (4))
// ---------------------------------------------------------------------------

// Controlled is the paper's optimal control policy: the initial window
// begins at TPast (the point closest to, but not exceeding, K in the past
// that may contain untransmitted messages), the older half of a split is
// enabled first, and messages older than K are discarded at the sender.
// Transmitted messages therefore leave in global FCFS order and every
// transmitted message meets its deadline (§3.2, Theorem 1).
type Controlled struct {
	// Length is the element-(2) rule; required.
	Length LengthRule
	// Fraction is the split fraction; 0 means the paper's ½.
	Fraction float64
}

// Name implements Policy.
func (c Controlled) Name() string { return "controlled" }

// InitialWindow implements Policy.
func (c Controlled) InitialWindow(v View) Window {
	l := c.Length(v)
	return Window{Start: v.TPast, End: v.TPast + l}
}

// ChooseSide implements Policy: always the older half (Theorem 1).
func (c Controlled) ChooseSide(View, Window, int) Side { return Older }

// SplitFraction implements Policy.
func (c Controlled) SplitFraction(View, Window, int) float64 {
	if c.Fraction > 0 {
		return c.Fraction
	}
	return 0.5
}

// Discards implements Policy: element (4) is in force.
func (c Controlled) Discards() bool { return true }

// ---------------------------------------------------------------------------
// FCFS — the uncontrolled global-FCFS baseline of [Kurose 83]
// ---------------------------------------------------------------------------

// FCFS is the [Kurose 83] baseline providing network-wide first-come
// first-served order: windows start at the oldest unexamined time and the
// older half of a split goes first, but *every* message is eventually
// transmitted — messages late for their deadline still consume the channel
// and are discarded only at the receiver.
type FCFS struct {
	// Length is the element-(2) rule; required.
	Length LengthRule
}

// Name implements Policy.
func (f FCFS) Name() string { return "fcfs" }

// InitialWindow implements Policy.
func (f FCFS) InitialWindow(v View) Window {
	l := f.Length(v)
	return Window{Start: v.TPast, End: v.TPast + l}
}

// ChooseSide implements Policy.
func (f FCFS) ChooseSide(View, Window, int) Side { return Older }

// SplitFraction implements Policy.
func (f FCFS) SplitFraction(View, Window, int) float64 { return 0.5 }

// Discards implements Policy.
func (f FCFS) Discards() bool { return false }

// ---------------------------------------------------------------------------
// LCFS — the uncontrolled global-LCFS baseline of [Kurose 83]
// ---------------------------------------------------------------------------

// LCFS is the [Kurose 83] baseline providing network-wide last-come
// first-served order: the initial window ends at the most recent
// unexamined instant and covers the newest Length's worth of *unexamined*
// time — cleared gaps are skipped over, so the policy is last-come
// first-served on the pseudo-time axis of §3.1.  The newer part of a
// split is enabled first.  Measuring the window in unexamined time keeps
// the protocol work-conserving: old pending messages are eventually swept
// up during idle periods instead of starving behind cleared fresh time,
// as [Kurose 83] requires (all messages are eventually transmitted).
type LCFS struct {
	// Length is the element-(2) rule; required.
	Length LengthRule
}

// Name implements Policy.
func (l LCFS) Name() string { return "lcfs" }

// InitialWindow implements Policy.
func (l LCFS) InitialWindow(v View) Window {
	ln := l.Length(v)
	start := v.TNewest - ln
	if v.Cleared != nil {
		start = v.Cleared.StartForUncoveredMeasure(v.TPast, v.TNewest, ln)
	}
	if start < v.TPast {
		start = v.TPast
	}
	return Window{Start: start, End: v.TNewest}
}

// ChooseSide implements Policy.
func (l LCFS) ChooseSide(View, Window, int) Side { return Newer }

// SplitFraction implements Policy.
func (l LCFS) SplitFraction(View, Window, int) float64 { return 0.5 }

// Discards implements Policy.
func (l LCFS) Discards() bool { return false }

// ---------------------------------------------------------------------------
// Random — the RANDOM-order baseline of [Kurose 83]
// ---------------------------------------------------------------------------

// Random is the [Kurose 83] baseline that schedules messages in an order
// uncorrelated with their arrival times: the initial window is placed
// uniformly at random in the unexamined span and each split side is a fair
// coin flip.  All stations must be given the *same* seed so the common
// random sequence keeps them in lockstep (common randomness substitutes
// for the shared deterministic rule of the other policies).
type Random struct {
	// Length is the element-(2) rule; required.
	Length LengthRule
	// Rng is the common random sequence shared by all stations; required.
	Rng *rngutil.Stream
}

// Name implements Policy.
func (r Random) Name() string { return "random" }

// InitialWindow implements Policy.
func (r Random) InitialWindow(v View) Window {
	l := r.Length(v)
	span := v.TNewest - v.TPast
	if l >= span {
		return Window{Start: v.TPast, End: v.TNewest}
	}
	start := v.TPast + r.Rng.Float64()*(span-l)
	return Window{Start: start, End: start + l}
}

// ChooseSide implements Policy.
func (r Random) ChooseSide(View, Window, int) Side {
	if r.Rng.Bernoulli(0.5) {
		return Older
	}
	return Newer
}

// SplitFraction implements Policy.
func (r Random) SplitFraction(View, Window, int) float64 { return 0.5 }

// Discards implements Policy.
func (r Random) Discards() bool { return false }

// ---------------------------------------------------------------------------
// ControlledVariant — deliberately sub-optimal, for Theorem-1 ablations
// ---------------------------------------------------------------------------

// ControlledVariant keeps policy element (4) (sender discard) but lets the
// Theorem-1 elements be degraded: the initial window may start later than
// t_past (a position lag) and the newer half of a split may be enabled
// first.  Theorem 1 predicts every such variant loses at least as many
// messages as Controlled; the tests and ablation benches verify that
// empirically on the actual (not pseudo) loss.
type ControlledVariant struct {
	// Length is the element-(2) rule; required.
	Length LengthRule
	// Side selects which half of a split to enable first.
	Side Side
	// PositionLag shifts the initial window start to TPast + PositionLag
	// (clamped so the window still fits); 0 reproduces the optimal
	// position.
	PositionLag float64
}

// Name implements Policy.
func (c ControlledVariant) Name() string {
	return fmt.Sprintf("controlled-variant(side=%v,lag=%g)", c.Side, c.PositionLag)
}

// InitialWindow implements Policy.
func (c ControlledVariant) InitialWindow(v View) Window {
	l := c.Length(v)
	start := v.TPast + c.PositionLag
	if start+l > v.TNewest {
		start = v.TNewest - l
	}
	if start < v.TPast {
		start = v.TPast
	}
	return Window{Start: start, End: start + l}
}

// ChooseSide implements Policy.
func (c ControlledVariant) ChooseSide(View, Window, int) Side { return c.Side }

// SplitFraction implements Policy.
func (c ControlledVariant) SplitFraction(View, Window, int) float64 { return 0.5 }

// Discards implements Policy: element (4) stays in force.
func (c ControlledVariant) Discards() bool { return true }

// ForkablePolicy is implemented by policies that carry per-run mutable
// state (a common random sequence).  Fork returns an independent replica
// that will make exactly the same future decision sequence, so that each
// station in a distributed simulation can hold its own copy and stay in
// lockstep — modelling stations that agreed on a shared pseudo-random
// seed.
type ForkablePolicy interface {
	Policy
	// Fork replicates the policy at its current state.
	Fork() Policy
}

// Fork implements ForkablePolicy.
func (r Random) Fork() Policy {
	return Random{Length: r.Length, Rng: r.Rng.Clone()}
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

// SelfValidating is implemented by policies that can check their own
// static configuration.  Validate consults it for policy types it does
// not know structurally, so protocol plugins (internal/protocol) get
// the same fail-fast misconfiguration errors as the builtin policies.
type SelfValidating interface {
	// ValidatePolicy reports a configuration error, or nil.
	ValidatePolicy() error
}

// Validate checks a policy's static configuration, returning an error for
// missing required fields.  The engine calls it once at start-up.
func Validate(p Policy) error {
	if sv, ok := p.(SelfValidating); ok {
		if err := sv.ValidatePolicy(); err != nil {
			return err
		}
	}
	switch q := p.(type) {
	case Controlled:
		if q.Length == nil {
			return fmt.Errorf("window: Controlled policy needs a Length rule")
		}
		if q.Fraction < 0 || q.Fraction >= 1 {
			return fmt.Errorf("window: Controlled split fraction %v outside [0,1)", q.Fraction)
		}
	case FCFS:
		if q.Length == nil {
			return fmt.Errorf("window: FCFS policy needs a Length rule")
		}
	case LCFS:
		if q.Length == nil {
			return fmt.Errorf("window: LCFS policy needs a Length rule")
		}
	case Random:
		if q.Length == nil {
			return fmt.Errorf("window: Random policy needs a Length rule")
		}
		if q.Rng == nil {
			return fmt.Errorf("window: Random policy needs a common Rng")
		}
	case ControlledVariant:
		if q.Length == nil {
			return fmt.Errorf("window: ControlledVariant policy needs a Length rule")
		}
		if q.PositionLag < 0 {
			return fmt.Errorf("window: negative position lag %v", q.PositionLag)
		}
	}
	return nil
}
