package window

import (
	"strings"
	"testing"
)

func newTestResolver(t *testing.T, tolerant bool) *Resolver {
	t.Helper()
	v := View{TPast: 0, TNewest: 10, Tau: 1, Lambda: 0.1}
	r, err := NewResolver(Controlled{Length: FixedG(1.1)}, v)
	if err != nil {
		t.Fatal(err)
	}
	r.SetFaultTolerant(tolerant)
	return r
}

// TestFeedbackString is the regression test for the Stringer: every named
// value renders its name and out-of-range values render stdlib-stringer
// style instead of masquerading as "collision" (the bug this replaces).
func TestFeedbackString(t *testing.T) {
	cases := map[Feedback]string{
		Idle:         "idle",
		Success:      "success",
		Collision:    "collision",
		Erased:       "erased",
		Feedback(17): "Feedback(17)",
		Feedback(-3): "Feedback(-3)",
	}
	for fb, want := range cases {
		if got := fb.String(); got != want {
			t.Errorf("Feedback(%d).String() = %q, want %q", int(fb), got, want)
		}
	}
}

// TestErasedPanicsWithoutFaultTolerance: a perfect-feedback resolver must
// refuse Erased loudly — silently recovering would hide an engine bug.
func TestErasedPanicsWithoutFaultTolerance(t *testing.T) {
	r := newTestResolver(t, false)
	defer func() {
		if err := recover(); err == nil || !strings.Contains(err.(string), "erased") {
			t.Fatalf("want erased-feedback panic, got %v", err)
		}
	}()
	r.OnFeedback(Erased)
}

// TestErasureRecoveryReleasesWindows: an erasure aborts the process, the
// enabled (and any sibling) window rejoins the unexamined region, nothing
// is marked examined, and the resolver reports the recovery.
func TestErasureRecoveryReleasesWindows(t *testing.T) {
	r := newTestResolver(t, true)
	r.OnFeedback(Collision) // split: enabled half + unknown sibling
	enabled, sibling := r.Enabled(), r.sibling
	r.OnFeedback(Erased)
	if !r.Done() || r.Success() || !r.Recovered() {
		t.Fatalf("after erasure: done=%v success=%v recovered=%v", r.Done(), r.Success(), r.Recovered())
	}
	if len(r.Examined()) != 0 {
		t.Fatalf("erasure marked %v examined", r.Examined())
	}
	rel := r.Released()
	found := map[Window]bool{}
	for _, w := range rel {
		found[w] = true
	}
	if !found[enabled] || !found[sibling] {
		t.Fatalf("released %v, want both %v and %v", rel, enabled, sibling)
	}
}

// TestSplitDepthRecovery: persistent phantom collisions blow the split
// depth bound; a fault-tolerant resolver must give up and release instead
// of panicking, and the perfect-feedback resolver must still panic.
func TestSplitDepthRecovery(t *testing.T) {
	r := newTestResolver(t, true)
	for i := 0; i < maxSplitDepth+2 && !r.Done(); i++ {
		r.OnFeedback(Collision)
	}
	if !r.Done() || !r.Recovered() || r.Success() {
		t.Fatalf("depth blow-up: done=%v recovered=%v success=%v", r.Done(), r.Recovered(), r.Success())
	}
	if len(r.Released()) == 0 {
		t.Fatal("depth blow-up released nothing")
	}

	p := newTestResolver(t, false)
	defer func() {
		if recover() == nil {
			t.Fatal("perfect-feedback resolver survived a blown split depth")
		}
	}()
	for i := 0; i < maxSplitDepth+2 && !p.Done(); i++ {
		p.OnFeedback(Collision)
	}
}

// TestMinSplitLenRecoveredFlag: the phantom give-up is a recovery only in
// fault-tolerant mode — in perfect-feedback heterogeneous operation it is
// expected behavior, not a fault recovery.
func TestMinSplitLenRecoveredFlag(t *testing.T) {
	for _, tolerant := range []bool{false, true} {
		v := View{TPast: 0, TNewest: 10, Tau: 1, Lambda: 0.1, MinSplitLen: 8}
		r, err := NewResolver(Controlled{Length: FixedG(1.1)}, v)
		if err != nil {
			t.Fatal(err)
		}
		r.SetFaultTolerant(tolerant)
		for i := 0; i < maxSplitDepth && !r.Done(); i++ {
			r.OnFeedback(Collision)
		}
		if !r.Done() {
			t.Fatal("MinSplitLen give-up never triggered")
		}
		if r.Recovered() != tolerant {
			t.Errorf("tolerant=%v: Recovered()=%v", tolerant, r.Recovered())
		}
	}
}

// TestAbort: an external abort releases and recovers; after Done it is a
// no-op (desync recovery aborts every station, finished ones included).
func TestAbort(t *testing.T) {
	r := newTestResolver(t, true)
	r.Abort()
	if !r.Done() || !r.Recovered() || len(r.Released()) == 0 {
		t.Fatalf("abort: done=%v recovered=%v released=%v", r.Done(), r.Recovered(), r.Released())
	}

	s := newTestResolver(t, true)
	s.OnFeedback(Success)
	if !s.Done() || !s.Success() {
		t.Fatal("success did not finish the process")
	}
	s.Abort()
	if s.Recovered() || !s.Success() {
		t.Fatal("Abort after Done was not a no-op")
	}
}

// TestFaultTolerantIdenticalOnCleanFeedback: with fault-free feedback a
// fault-tolerant resolver must be byte-for-byte the plain state machine.
func TestFaultTolerantIdenticalOnCleanFeedback(t *testing.T) {
	feeds := []Feedback{Collision, Idle, Collision, Success}
	a := newTestResolver(t, false)
	b := newTestResolver(t, true)
	for _, fb := range feeds {
		if a.Done() != b.Done() || a.Enabled() != b.Enabled() {
			t.Fatalf("state diverged before feedback %v", fb)
		}
		if a.Done() {
			break
		}
		a.OnFeedback(fb)
		b.OnFeedback(fb)
	}
	if a.Success() != b.Success() || len(a.Examined()) != len(b.Examined()) || b.Recovered() {
		t.Fatalf("clean-feedback runs diverged: %v vs %v (recovered=%v)",
			a.Examined(), b.Examined(), b.Recovered())
	}
}
