// Package window implements the time-window group random-access protocol
// of Kurose, Schwartz and Yemini (1983) and the control policies that
// govern it.
//
// The protocol grants transmission rights to every station holding a
// message whose *arrival time* falls inside a commonly agreed window of
// past time.  Ternary channel feedback (idle / success / collision) drives
// a splitting procedure that isolates a single message.  A control policy
// supplies the paper's four decision elements:
//
//	(1) where the initial window starts,
//	(2) how long the initial window is,
//	(3) which part of a split window is enabled first,
//	(4) whether messages older than the constraint K are discarded.
//
// The package is deliberately independent of how arrivals are generated:
// the windowing process is executed against a content oracle (the global
// simulator) or against real channel feedback (the multi-station
// simulator), and is unit-testable against synthetic oracles.
package window

import (
	"fmt"
	"math"
	"sort"
)

// Window is a half-open interval [Start, End) of (absolute) time.
type Window struct {
	Start, End float64
}

// Len returns the window's length.
func (w Window) Len() float64 { return w.End - w.Start }

// Empty reports whether the window has no extent.
func (w Window) Empty() bool { return w.End <= w.Start }

// Contains reports whether t lies in [Start, End).
func (w Window) Contains(t float64) bool { return t >= w.Start && t < w.End }

// Split cuts the window at Start + frac·Len and returns the older and
// newer parts.  It panics unless 0 < frac < 1.
func (w Window) Split(frac float64) (older, newer Window) {
	if frac <= 0 || frac >= 1 {
		panic(fmt.Sprintf("window: split fraction %v outside (0,1)", frac))
	}
	mid := w.Start + frac*w.Len()
	return Window{w.Start, mid}, Window{mid, w.End}
}

// String formats the window for traces.
func (w Window) String() string { return fmt.Sprintf("[%.4g, %.4g)", w.Start, w.End) }

// Side selects one part of a split window.
type Side int

// Side values.
const (
	// Older selects the part containing earlier arrival times.
	Older Side = iota
	// Newer selects the part containing later arrival times.
	Newer
)

// String implements fmt.Stringer.
func (s Side) String() string {
	if s == Older {
		return "older"
	}
	return "newer"
}

// ---------------------------------------------------------------------------
// IntervalSet
// ---------------------------------------------------------------------------

// IntervalSet is a set of disjoint half-open intervals of time, kept sorted
// and coalesced.  The protocol uses it to record the intervals *known to
// contain no untransmitted arrivals* (the shaded regions of the paper's
// figure 2).  Its complement — within the horizon — is the region that may
// still contain untransmitted messages.
type IntervalSet struct {
	iv []Window // sorted, disjoint, non-empty
}

// Add inserts [w.Start, w.End), coalescing with any overlapping or
// adjacent members.  Empty windows are ignored.  The insertion is
// copy-based and in place: once the backing array has grown to the
// set's working size, Add never allocates — the simulation hot path
// (Tracker.Commit after every windowing process) depends on this.
func (s *IntervalSet) Add(w Window) {
	if w.Empty() {
		return
	}
	// Find insertion point: the first interval whose End >= w.Start.
	i, n := 0, len(s.iv)
	for i < n {
		mid := int(uint(i+n) >> 1)
		if s.iv[mid].End < w.Start {
			i = mid + 1
		} else {
			n = mid
		}
	}
	j := i
	lo, hi := w.Start, w.End
	for j < len(s.iv) && s.iv[j].Start <= hi {
		if s.iv[j].Start < lo {
			lo = s.iv[j].Start
		}
		if s.iv[j].End > hi {
			hi = s.iv[j].End
		}
		j++
	}
	merged := Window{lo, hi}
	if j == i {
		// Pure insertion: open one slot at i.
		s.iv = append(s.iv, Window{})
		copy(s.iv[i+1:], s.iv[i:])
		s.iv[i] = merged
		return
	}
	// Replace the merged run [i, j) with the single coalesced interval.
	s.iv[i] = merged
	if j < len(s.iv) {
		copy(s.iv[i+1:], s.iv[j:])
	}
	s.iv = s.iv[:len(s.iv)-(j-i)+1]
}

// Covers reports whether t lies inside some member interval.
func (s *IntervalSet) Covers(t float64) bool {
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].End > t })
	return i < len(s.iv) && s.iv[i].Contains(t)
}

// OldestUncovered returns the smallest t in [lo, hi) not covered by the
// set, and ok=false if the whole range is covered.
func (s *IntervalSet) OldestUncovered(lo, hi float64) (float64, bool) {
	if hi <= lo {
		return 0, false
	}
	t := lo
	i := sort.Search(len(s.iv), func(i int) bool { return s.iv[i].End > t })
	for i < len(s.iv) && s.iv[i].Start <= t {
		t = s.iv[i].End
		i++
	}
	if t >= hi {
		return 0, false
	}
	return t, true
}

// NewestUncovered returns the supremum u <= hi such that time just below u
// is uncovered within [lo, hi), and ok=false if the whole range is covered.
// It is the "most recent unexamined time", used by LCFS-style policies.
func (s *IntervalSet) NewestUncovered(lo, hi float64) (float64, bool) {
	if hi <= lo {
		return 0, false
	}
	u := hi
	for i := len(s.iv) - 1; i >= 0; i-- {
		w := s.iv[i]
		if w.End < u {
			break // uncovered gap (w.End, u) exists
		}
		if w.Start < u {
			u = w.Start // w covers right up to u; slide down
		}
	}
	if u <= lo {
		return 0, false
	}
	return u, true
}

// TrimBelow removes all covered mass below t (a horizon advance); interval
// parts above t are retained.  In place and allocation-free: the surviving
// suffix is shifted down over the dropped prefix.
func (s *IntervalSet) TrimBelow(t float64) {
	// Binary search for the first interval with End > t; everything below
	// is dropped wholesale.
	cut, n := 0, len(s.iv)
	for cut < n {
		mid := int(uint(cut+n) >> 1)
		if s.iv[mid].End <= t {
			cut = mid + 1
		} else {
			n = mid
		}
	}
	if cut == len(s.iv) {
		s.iv = s.iv[:0]
		return
	}
	if s.iv[cut].Start < t {
		s.iv[cut].Start = t
	}
	if cut > 0 {
		m := copy(s.iv, s.iv[cut:])
		s.iv = s.iv[:m]
	}
}

// UncoveredMeasure returns the total uncovered length within [lo, hi).
func (s *IntervalSet) UncoveredMeasure(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	covered := 0.0
	for _, w := range s.iv {
		a, b := math.Max(w.Start, lo), math.Min(w.End, hi)
		if b > a {
			covered += b - a
		}
	}
	return (hi - lo) - covered
}

// StartForUncoveredMeasure returns the largest s in [lo, hi] such that the
// uncovered measure of [s, hi) is at least measure — i.e. the start of a
// window, anchored at hi, containing the newest `measure` worth of
// unexamined time (cleared gaps are skipped over, the pseudo-time view of
// §3.1).  If less than `measure` uncovered time is available, lo is
// returned.
func (s *IntervalSet) StartForUncoveredMeasure(lo, hi, measure float64) float64 {
	if hi <= lo || measure <= 0 {
		return hi
	}
	need := measure
	cur := hi
	for i := len(s.iv) - 1; i >= 0; i-- {
		w := s.iv[i]
		if w.End >= cur {
			// Interval touches or lies above the cursor: slide below it.
			if w.Start < cur {
				cur = w.Start
			}
			if cur <= lo {
				return lo
			}
			continue
		}
		// Uncovered gap (max(w.End, lo), cur).
		gapLo := w.End
		if gapLo < lo {
			gapLo = lo
		}
		if gap := cur - gapLo; gap >= need {
			return cur - need
		} else {
			need -= gap
		}
		cur = w.Start
		if cur <= lo {
			return lo
		}
	}
	if gap := cur - lo; gap >= need {
		return cur - need
	}
	return lo
}

// Intervals returns a copy of the member intervals.  Hot paths should
// prefer AppendTo, which reuses the caller's buffer.
func (s *IntervalSet) Intervals() []Window {
	return append([]Window(nil), s.iv...)
}

// AppendTo appends the member intervals to dst and returns the extended
// slice — the non-copying counterpart of Intervals for callers that reuse
// a buffer across calls.  The appended windows are values; the set keeps
// ownership of nothing in dst.
func (s *IntervalSet) AppendTo(dst []Window) []Window {
	return append(dst, s.iv...)
}

// Len returns the number of disjoint member intervals.
func (s *IntervalSet) Len() int { return len(s.iv) }
