package window

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"windowctl/internal/rngutil"
)

func TestWindowBasics(t *testing.T) {
	w := Window{2, 5}
	if w.Len() != 3 {
		t.Fatal("len")
	}
	if w.Empty() {
		t.Fatal("non-empty window reported empty")
	}
	if !w.Contains(2) || w.Contains(5) || !w.Contains(4.999) {
		t.Fatal("half-open membership wrong")
	}
	o, n := w.Split(0.5)
	if o.Start != 2 || o.End != 3.5 || n.Start != 3.5 || n.End != 5 {
		t.Fatalf("split: %v %v", o, n)
	}
	o, n = w.Split(1.0 / 3)
	if math.Abs(o.End-3) > 1e-12 || n.Start != o.End {
		t.Fatalf("fractional split: %v %v", o, n)
	}
	if (Window{3, 3}).Empty() != true {
		t.Fatal("zero-length window not empty")
	}
}

func TestWindowSplitPanics(t *testing.T) {
	for _, frac := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Split(%v) did not panic", frac)
				}
			}()
			Window{0, 1}.Split(frac)
		}()
	}
}

// --- IntervalSet ------------------------------------------------------------

func TestIntervalSetAddCoalesce(t *testing.T) {
	var s IntervalSet
	s.Add(Window{1, 2})
	s.Add(Window{3, 4})
	if s.Len() != 2 {
		t.Fatalf("want 2 intervals, got %d", s.Len())
	}
	s.Add(Window{2, 3}) // bridges the gap
	if s.Len() != 1 {
		t.Fatalf("coalesce failed: %v", s.Intervals())
	}
	iv := s.Intervals()
	if iv[0].Start != 1 || iv[0].End != 4 {
		t.Fatalf("merged = %v", iv[0])
	}
	// Overlapping add.
	s.Add(Window{3.5, 6})
	iv = s.Intervals()
	if s.Len() != 1 || iv[0].End != 6 {
		t.Fatalf("overlap merge failed: %v", iv)
	}
	// Empty add is a no-op.
	s.Add(Window{7, 7})
	if s.Len() != 1 {
		t.Fatal("empty window added")
	}
}

func TestIntervalSetCovers(t *testing.T) {
	var s IntervalSet
	s.Add(Window{1, 2})
	s.Add(Window{4, 5})
	cases := map[float64]bool{0.5: false, 1: true, 1.99: true, 2: false, 3: false, 4.5: true, 5: false}
	for x, want := range cases {
		if got := s.Covers(x); got != want {
			t.Errorf("Covers(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestOldestUncovered(t *testing.T) {
	var s IntervalSet
	s.Add(Window{1, 2})
	s.Add(Window{4, 5})
	if p, ok := s.OldestUncovered(0, 10); !ok || p != 0 {
		t.Fatalf("oldest from 0: %v %v", p, ok)
	}
	if p, ok := s.OldestUncovered(1, 10); !ok || p != 2 {
		t.Fatalf("oldest from inside interval: %v %v", p, ok)
	}
	if p, ok := s.OldestUncovered(1.5, 10); !ok || p != 2 {
		t.Fatalf("oldest from 1.5: %v %v", p, ok)
	}
	if _, ok := s.OldestUncovered(1, 2); ok {
		t.Fatal("fully covered range reported uncovered point")
	}
	if _, ok := s.OldestUncovered(5, 5); ok {
		t.Fatal("empty range reported uncovered point")
	}
	// Chained coverage: [1,2) ∪ [2,3) behaves like [1,3).
	s.Add(Window{2, 3})
	if p, ok := s.OldestUncovered(1, 10); !ok || p != 3 {
		t.Fatalf("chained coverage: %v %v", p, ok)
	}
}

func TestNewestUncovered(t *testing.T) {
	var s IntervalSet
	s.Add(Window{1, 2})
	s.Add(Window{4, 5})
	if u, ok := s.NewestUncovered(0, 10); !ok || u != 10 {
		t.Fatalf("newest with free top: %v %v", u, ok)
	}
	if u, ok := s.NewestUncovered(0, 5); !ok || u != 4 {
		t.Fatalf("newest ending at covered top: %v %v", u, ok)
	}
	if u, ok := s.NewestUncovered(0, 4.5); !ok || u != 4 {
		t.Fatalf("newest inside covered top: %v %v", u, ok)
	}
	if _, ok := s.NewestUncovered(1, 2); ok {
		t.Fatal("fully covered range")
	}
	// Adjacent intervals at the top: [3,4) ∪ [4,5) from 5 slides to 3.
	s.Add(Window{3, 4})
	if u, ok := s.NewestUncovered(0, 5); !ok || u != 3 {
		t.Fatalf("adjacent slide: %v %v", u, ok)
	}
}

func TestTrimBelow(t *testing.T) {
	var s IntervalSet
	s.Add(Window{1, 3})
	s.Add(Window{5, 7})
	s.TrimBelow(2)
	iv := s.Intervals()
	if len(iv) != 2 || iv[0].Start != 2 || iv[0].End != 3 {
		t.Fatalf("trim partial: %v", iv)
	}
	s.TrimBelow(4)
	iv = s.Intervals()
	if len(iv) != 1 || iv[0].Start != 5 {
		t.Fatalf("trim whole interval: %v", iv)
	}
	s.TrimBelow(100)
	if s.Len() != 0 {
		t.Fatal("trim everything")
	}
}

func TestUncoveredMeasure(t *testing.T) {
	var s IntervalSet
	s.Add(Window{1, 2})
	s.Add(Window{3, 4})
	if m := s.UncoveredMeasure(0, 5); math.Abs(m-3) > 1e-12 {
		t.Fatalf("measure = %v, want 3", m)
	}
	if m := s.UncoveredMeasure(1, 2); m != 0 {
		t.Fatalf("covered measure = %v", m)
	}
	if m := s.UncoveredMeasure(5, 5); m != 0 {
		t.Fatal("empty range measure")
	}
	if m := s.UncoveredMeasure(1.5, 3.5); math.Abs(m-1) > 1e-12 {
		t.Fatalf("partial overlap measure = %v", m)
	}
}

func TestStartForUncoveredMeasure(t *testing.T) {
	var s IntervalSet
	s.Add(Window{4, 8}) // cleared gap in the middle
	// Uncovered within [0, 10): [0,4) and [8,10).
	// Newest 1 unit: [9, 10).
	if got := s.StartForUncoveredMeasure(0, 10, 1); math.Abs(got-9) > 1e-12 {
		t.Fatalf("1 unit: start %v, want 9", got)
	}
	// Newest 2 units: exactly the top gap.
	if got := s.StartForUncoveredMeasure(0, 10, 2); math.Abs(got-8) > 1e-12 {
		t.Fatalf("2 units: start %v, want 8", got)
	}
	// Newest 3 units: skip the cleared [4,8) and take [3,4) too.
	if got := s.StartForUncoveredMeasure(0, 10, 3); math.Abs(got-3) > 1e-12 {
		t.Fatalf("3 units: start %v, want 3", got)
	}
	// More than available (6 units): clamp to lo.
	if got := s.StartForUncoveredMeasure(0, 10, 100); got != 0 {
		t.Fatalf("oversize: start %v, want 0", got)
	}
	// Degenerate inputs.
	if got := s.StartForUncoveredMeasure(5, 5, 1); got != 5 {
		t.Fatal("empty range")
	}
	if got := s.StartForUncoveredMeasure(0, 10, 0); got != 10 {
		t.Fatal("zero measure")
	}
	// lo inside a gap below an interval.
	if got := s.StartForUncoveredMeasure(3.5, 10, 3); got != 3.5 {
		t.Fatalf("clamp at lo: %v", got)
	}
	// Interval covering hi exactly: cursor slides below it.
	var top IntervalSet
	top.Add(Window{6, 10})
	if got := top.StartForUncoveredMeasure(0, 10, 2); math.Abs(got-4) > 1e-12 {
		t.Fatalf("covered top: %v, want 4", got)
	}
}

// Property: the window returned by StartForUncoveredMeasure has exactly
// min(measure, available) uncovered mass.
func TestStartForUncoveredMeasureProperty(t *testing.T) {
	f := func(seed uint64, n uint8, rawMeasure uint8) bool {
		r := rngutil.New(seed)
		var s IntervalSet
		for i := 0; i < int(n%10); i++ {
			a := r.Float64() * 10
			s.Add(Window{a, a + r.Float64()*2})
		}
		lo, hi := 0.0, 10.0
		measure := float64(rawMeasure%80)/10 + 0.1
		start := s.StartForUncoveredMeasure(lo, hi, measure)
		if start < lo || start > hi {
			return false
		}
		got := s.UncoveredMeasure(start, hi)
		avail := s.UncoveredMeasure(lo, hi)
		want := math.Min(measure, avail)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: after arbitrary adds, intervals are sorted, disjoint, non-empty.
func TestIntervalSetInvariantProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rngutil.New(seed)
		var s IntervalSet
		for i := 0; i < int(n%40)+1; i++ {
			a := r.Float64() * 10
			s.Add(Window{a, a + r.Float64()*3})
		}
		iv := s.Intervals()
		for i, w := range iv {
			if w.Empty() {
				return false
			}
			if i > 0 && iv[i-1].End >= w.Start {
				return false // must be disjoint AND non-adjacent (coalesced)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- Policies ----------------------------------------------------------------

func TestValidate(t *testing.T) {
	rng := rngutil.New(1)
	good := []Policy{
		Controlled{Length: FixedG(1)},
		Controlled{Length: FixedLength(2), Fraction: 0.3},
		FCFS{Length: FixedG(1)},
		LCFS{Length: FixedG(1)},
		Random{Length: FixedG(1), Rng: rng},
	}
	for _, p := range good {
		if err := Validate(p); err != nil {
			t.Errorf("%s: unexpected error %v", p.Name(), err)
		}
	}
	bad := []Policy{
		Controlled{},
		Controlled{Length: FixedG(1), Fraction: 1.5},
		FCFS{},
		LCFS{},
		Random{Length: FixedG(1)},
		Random{Rng: rng},
	}
	for i, p := range bad {
		if err := Validate(p); err == nil {
			t.Errorf("bad case %d (%s): validation passed", i, p.Name())
		}
	}
}

func TestLengthRules(t *testing.T) {
	v := View{Lambda: 2}
	if l := FixedG(3)(v); math.Abs(l-1.5) > 1e-12 {
		t.Fatalf("FixedG length %v", l)
	}
	if l := FixedG(3)(View{Lambda: 0}); !math.IsInf(l, 1) {
		t.Fatal("FixedG without rate should be unbounded")
	}
	if l := FixedLength(2.5)(v); l != 2.5 {
		t.Fatal("FixedLength")
	}
	for _, fn := range []func(){func() { FixedG(0) }, func() { FixedLength(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPolicyWindowPlacement(t *testing.T) {
	v := View{Now: 100, TPast: 90, TNewest: 100, K: 20, Tau: 1, Lambda: 1}
	// Controlled and FCFS anchor at TPast.
	cw := Controlled{Length: FixedLength(4)}.InitialWindow(v)
	if cw.Start != 90 || cw.End != 94 {
		t.Fatalf("controlled window %v", cw)
	}
	fw := FCFS{Length: FixedLength(4)}.InitialWindow(v)
	if fw.Start != 90 || fw.End != 94 {
		t.Fatalf("fcfs window %v", fw)
	}
	// LCFS anchors at TNewest.
	lw := LCFS{Length: FixedLength(4)}.InitialWindow(v)
	if lw.Start != 96 || lw.End != 100 {
		t.Fatalf("lcfs window %v", lw)
	}
	// LCFS clamps to TPast when the span is short.
	lw = LCFS{Length: FixedLength(40)}.InitialWindow(v)
	if lw.Start != 90 || lw.End != 100 {
		t.Fatalf("lcfs clamped window %v", lw)
	}
	// Random stays within the span.
	rp := Random{Length: FixedLength(4), Rng: rngutil.New(3)}
	for i := 0; i < 100; i++ {
		w := rp.InitialWindow(v)
		if w.Start < 90 || w.End > 100 || math.Abs(w.Len()-4) > 1e-9 {
			t.Fatalf("random window %v", w)
		}
	}
	// Random with oversize length takes the whole span.
	w := Random{Length: FixedLength(40), Rng: rngutil.New(3)}.InitialWindow(v)
	if w.Start != 90 || w.End != 100 {
		t.Fatalf("random oversize %v", w)
	}
}

func TestPolicySides(t *testing.T) {
	v := View{}
	w := Window{0, 1}
	if (Controlled{Length: FixedG(1)}).ChooseSide(v, w, 0) != Older {
		t.Fatal("controlled must pick older")
	}
	if (FCFS{Length: FixedG(1)}).ChooseSide(v, w, 0) != Older {
		t.Fatal("fcfs must pick older")
	}
	if (LCFS{Length: FixedG(1)}).ChooseSide(v, w, 0) != Newer {
		t.Fatal("lcfs must pick newer")
	}
	rp := Random{Length: FixedG(1), Rng: rngutil.New(4)}
	sawOlder, sawNewer := false, false
	for i := 0; i < 100; i++ {
		if rp.ChooseSide(v, w, 0) == Older {
			sawOlder = true
		} else {
			sawNewer = true
		}
	}
	if !sawOlder || !sawNewer {
		t.Fatal("random side never varied")
	}
}

func TestDiscardFlags(t *testing.T) {
	if !(Controlled{Length: FixedG(1)}).Discards() {
		t.Fatal("controlled must discard")
	}
	for _, p := range []Policy{FCFS{Length: FixedG(1)}, LCFS{Length: FixedG(1)},
		Random{Length: FixedG(1), Rng: rngutil.New(1)}} {
		if p.Discards() {
			t.Fatalf("%s must not discard", p.Name())
		}
	}
}

func TestControlledVariant(t *testing.T) {
	v := View{Now: 100, TPast: 90, TNewest: 100, K: 20, Tau: 1, Lambda: 1}
	cv := ControlledVariant{Length: FixedLength(4), Side: Newer, PositionLag: 3}
	w := cv.InitialWindow(v)
	if w.Start != 93 || w.End != 97 {
		t.Fatalf("lagged window %v", w)
	}
	if cv.ChooseSide(v, w, 0) != Newer {
		t.Fatal("side override ignored")
	}
	if !cv.Discards() {
		t.Fatal("variant must keep element (4)")
	}
	if cv.SplitFraction(v, w, 0) != 0.5 {
		t.Fatal("variant splits in half")
	}
	if cv.Name() == "" {
		t.Fatal("empty name")
	}
	// Lag beyond the span clamps so the window still fits.
	cv.PositionLag = 100
	w = cv.InitialWindow(v)
	if w.Start < 90 || w.End > 100 {
		t.Fatalf("clamped window %v", w)
	}
	// Validation.
	if err := Validate(ControlledVariant{Length: FixedLength(1)}); err != nil {
		t.Fatal(err)
	}
	if err := Validate(ControlledVariant{}); err == nil {
		t.Fatal("missing length accepted")
	}
	if err := Validate(ControlledVariant{Length: FixedLength(1), PositionLag: -1}); err == nil {
		t.Fatal("negative lag accepted")
	}
}

func TestMinSplitLenGivesUpOnPhantoms(t *testing.T) {
	// Simulate a phantom collision: the oracle reports 2 for every window
	// wider than epsilon and 0 below — no splitting can ever isolate a
	// message.  With MinSplitLen set, the process must terminate without
	// success instead of panicking at the depth bound.
	p := Controlled{Length: FixedLength(4)}
	v := view(10, 0)
	v.MinSplitLen = 1e-3
	rep, err := RunProcess(p, v, func(w Window) int {
		if w.Len() > 1e-3 {
			return 2
		}
		return 0
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Success {
		t.Fatal("phantom process succeeded")
	}
	if len(rep.Steps) > 60 {
		t.Fatalf("too many probes before giving up: %d", len(rep.Steps))
	}
}

// --- Resolver / RunProcess ----------------------------------------------------

// oracle builds a content function over a fixed set of arrival times.
func oracle(arrivals []float64) func(Window) int {
	s := append([]float64(nil), arrivals...)
	sort.Float64s(s)
	return func(w Window) int {
		lo := sort.SearchFloat64s(s, w.Start)
		hi := sort.SearchFloat64s(s, w.End)
		return hi - lo
	}
}

func view(now, tpast float64) View {
	return View{Now: now, TPast: tpast, TNewest: now, K: math.Inf(1), Tau: 1, Lambda: 1}
}

func TestProcessEmptyInitialWindow(t *testing.T) {
	// Figure 1a: no arrivals in the initial window.
	p := Controlled{Length: FixedLength(4)}
	rep, err := RunProcess(p, view(10, 0), oracle(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Success {
		t.Fatal("empty process succeeded")
	}
	if len(rep.Steps) != 1 || rep.Steps[0].Outcome != Idle {
		t.Fatalf("steps = %+v", rep.Steps)
	}
	if rep.WastedSlots != 1 {
		t.Fatalf("wasted = %d", rep.WastedSlots)
	}
	if len(rep.Examined) != 1 || rep.Examined[0] != (Window{0, 4}) {
		t.Fatalf("examined = %v", rep.Examined)
	}
}

func TestProcessImmediateSuccess(t *testing.T) {
	p := Controlled{Length: FixedLength(4)}
	rep, err := RunProcess(p, view(10, 0), oracle([]float64{2.5}))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatal("single-arrival process failed")
	}
	if rep.WastedSlots != 0 {
		t.Fatalf("wasted = %d, want 0", rep.WastedSlots)
	}
	if !rep.SuccessWindow.Contains(2.5) {
		t.Fatalf("success window %v misses arrival", rep.SuccessWindow)
	}
}

func TestProcessCollisionThenSplit(t *testing.T) {
	// Figure 1b-1d: two arrivals collide; the older half isolates one.
	// Window [0,4); arrivals at 0.5 and 3.0.
	// Probe [0,4): collision. Split -> older [0,2) enabled.
	// Probe [0,2): success (0.5 transmitted). [2,4) released.
	p := Controlled{Length: FixedLength(4)}
	rep, err := RunProcess(p, view(10, 0), oracle([]float64{0.5, 3.0}))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatal("no success")
	}
	if len(rep.Steps) != 2 {
		t.Fatalf("steps = %+v", rep.Steps)
	}
	if rep.Steps[0].Outcome != Collision || rep.Steps[1].Outcome != Success {
		t.Fatalf("outcomes = %+v", rep.Steps)
	}
	if !rep.SuccessWindow.Contains(0.5) || rep.SuccessWindow.Contains(3.0) {
		t.Fatalf("wrong message isolated: %v", rep.SuccessWindow)
	}
	if rep.WastedSlots != 1 {
		t.Fatalf("wasted = %d", rep.WastedSlots)
	}
	// The newer half [2,4) must be released, not examined.
	if len(rep.Released) != 1 || rep.Released[0] != (Window{2, 4}) {
		t.Fatalf("released = %v", rep.Released)
	}
}

func TestProcessIdleHalfSplitsSibling(t *testing.T) {
	// Both arrivals in the newer half: older probe idle, sibling is known
	// to contain >= 2 and is split immediately (figure 1 narrative).
	// Window [0,4); arrivals at 2.2 and 3.7.
	// Probe [0,4): collision -> older [0,2).
	// Probe [0,2): idle -> sibling [2,4) split -> older [2,3).
	// Probe [2,3): success (2.2). [3,4) released.
	p := Controlled{Length: FixedLength(4)}
	rep, err := RunProcess(p, view(10, 0), oracle([]float64{2.2, 3.7}))
	if err != nil {
		t.Fatal(err)
	}
	want := []Feedback{Collision, Idle, Success}
	if len(rep.Steps) != len(want) {
		t.Fatalf("steps = %+v", rep.Steps)
	}
	for i, fb := range want {
		if rep.Steps[i].Outcome != fb {
			t.Fatalf("step %d outcome %v, want %v", i, rep.Steps[i].Outcome, fb)
		}
	}
	if !rep.SuccessWindow.Contains(2.2) {
		t.Fatalf("wrong message: %v", rep.SuccessWindow)
	}
	if rep.WastedSlots != 2 {
		t.Fatalf("wasted = %d", rep.WastedSlots)
	}
}

func TestProcessDeepSplit(t *testing.T) {
	// Two very close arrivals force repeated splitting.
	p := Controlled{Length: FixedLength(4)}
	rep, err := RunProcess(p, view(10, 0), oracle([]float64{1.0001, 1.0002}))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Success {
		t.Fatal("no success")
	}
	if !rep.SuccessWindow.Contains(1.0001) || rep.SuccessWindow.Contains(1.0002) {
		t.Fatalf("FCFS order violated: %v", rep.SuccessWindow)
	}
	if len(rep.Steps) < 5 {
		t.Fatalf("expected deep splitting, got %d steps", len(rep.Steps))
	}
}

func TestControlledTransmitsOldestArrival(t *testing.T) {
	// Theorem 1 behaviour: the controlled policy isolates the *oldest*
	// pending arrival whatever the configuration.
	r := rngutil.New(77)
	p := Controlled{Length: FixedLength(8)}
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(6) + 1
		arr := make([]float64, n)
		for i := range arr {
			arr[i] = r.Float64() * 8
		}
		rep, err := RunProcess(p, view(9, 0), oracle(arr))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Success {
			t.Fatal("nonempty window gave no success")
		}
		oldest := arr[0]
		for _, a := range arr {
			if a < oldest {
				oldest = a
			}
		}
		if !rep.SuccessWindow.Contains(oldest) {
			t.Fatalf("trial %d: oldest %v not in success window %v (arrivals %v)",
				trial, oldest, rep.SuccessWindow, arr)
		}
		// The success window must contain exactly one arrival.
		if oracle(arr)(rep.SuccessWindow) != 1 {
			t.Fatalf("success window %v holds %d arrivals", rep.SuccessWindow, oracle(arr)(rep.SuccessWindow))
		}
	}
}

func TestLCFSTransmitsNewestArrival(t *testing.T) {
	r := rngutil.New(78)
	p := LCFS{Length: FixedLength(8)}
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(6) + 1
		arr := make([]float64, n)
		for i := range arr {
			arr[i] = r.Float64() * 8
		}
		v := View{Now: 8, TPast: 0, TNewest: 8, K: math.Inf(1), Tau: 1, Lambda: 1}
		rep, err := RunProcess(p, v, oracle(arr))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Success {
			t.Fatal("nonempty window gave no success")
		}
		newest := arr[0]
		for _, a := range arr {
			if a > newest {
				newest = a
			}
		}
		if !rep.SuccessWindow.Contains(newest) {
			t.Fatalf("trial %d: newest %v not isolated (window %v, arrivals %v)",
				trial, newest, rep.SuccessWindow, arr)
		}
	}
}

// Property: for any arrival set, a successful process's examined+released
// windows exactly tile the initial window, and the success window holds
// exactly one arrival.
func TestProcessTilingProperty(t *testing.T) {
	f := func(seed uint64, count uint8) bool {
		r := rngutil.New(seed)
		n := int(count % 8)
		arr := make([]float64, n)
		for i := range arr {
			arr[i] = r.Float64() * 6
		}
		p := Controlled{Length: FixedLength(6)}
		rep, err := RunProcess(p, view(7, 0), oracle(arr))
		if err != nil {
			return false
		}
		// Tiling check: total measure of examined + released equals the
		// initial window length, with no overlaps.
		var all []Window
		all = append(all, rep.Examined...)
		all = append(all, rep.Released...)
		sort.Slice(all, func(i, j int) bool { return all[i].Start < all[j].Start })
		total := 0.0
		for i, w := range all {
			total += w.Len()
			if i > 0 && all[i-1].End > w.Start+1e-12 {
				return false // overlap
			}
		}
		if math.Abs(total-6) > 1e-9 {
			return false
		}
		if n == 0 {
			return !rep.Success
		}
		if !rep.Success {
			return false
		}
		return oracle(arr)(rep.SuccessWindow) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResolverMisuse(t *testing.T) {
	p := Controlled{Length: FixedLength(4)}
	r, err := NewResolver(p, view(10, 0))
	if err != nil {
		t.Fatal(err)
	}
	r.OnFeedback(Idle) // empty initial window: done
	if !r.Done() || r.Success() {
		t.Fatal("state after idle initial window")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("OnFeedback after done did not panic")
			}
		}()
		r.OnFeedback(Idle)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SuccessWindow on failed process did not panic")
			}
		}()
		r.SuccessWindow()
	}()
}

func TestResolverClampAndErrors(t *testing.T) {
	p := Controlled{Length: FixedLength(100)}
	r, err := NewResolver(p, view(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	w := r.Enabled()
	if w.Start != 4 || w.End != 10 {
		t.Fatalf("clamped window %v", w)
	}
	// Degenerate view: TPast == Now.
	if _, err := NewResolver(p, view(10, 10)); err == nil {
		t.Fatal("empty clamped window accepted")
	}
}

func TestRunProcessOracleError(t *testing.T) {
	p := Controlled{Length: FixedLength(4)}
	_, err := RunProcess(p, view(10, 0), func(Window) int { return -1 })
	if err == nil {
		t.Fatal("negative oracle accepted")
	}
}

func TestCoincidentArrivalsPanic(t *testing.T) {
	p := Controlled{Length: FixedLength(4)}
	defer func() {
		if recover() == nil {
			t.Fatal("coincident arrivals did not panic")
		}
	}()
	_, _ = RunProcess(p, view(10, 0), oracle([]float64{1, 1}))
}

// --- Tracker -------------------------------------------------------------------

func TestTrackerHorizon(t *testing.T) {
	tr := NewTracker(0, 5, true)
	if tr.Horizon(3) != 0 {
		t.Fatal("horizon before K elapsed")
	}
	if tr.Horizon(8) != 3 {
		t.Fatal("horizon after K elapsed")
	}
	tr2 := NewTracker(0, 5, false)
	if tr2.Horizon(100) != 0 {
		t.Fatal("non-discarding horizon must stay at start")
	}
}

func TestTrackerTPastProgression(t *testing.T) {
	tr := NewTracker(0, math.Inf(1), false)
	if tr.TPast(10) != 0 {
		t.Fatal("initial t_past")
	}
	tr.Commit(10, []Window{{0, 4}})
	if tr.TPast(10) != 4 {
		t.Fatalf("t_past after prefix commit: %v", tr.TPast(10))
	}
	// Interior examined window leaves t_past at the older gap.
	tr.Commit(10, []Window{{6, 8}})
	if tr.TPast(10) != 4 {
		t.Fatalf("t_past with interior gap: %v", tr.TPast(10))
	}
	if tr.TNewest(10) != 10 {
		t.Fatalf("t_newest: %v", tr.TNewest(10))
	}
	// Covering the top: newest slides to the end of the youngest gap.
	// Cleared = [0,4) ∪ [6,10), so the only gap is [4,6) and TNewest = 6.
	tr.Commit(10, []Window{{8, 10}})
	if tr.TNewest(10) != 6 {
		t.Fatalf("t_newest with covered top: %v", tr.TNewest(10))
	}
	if m := tr.UnexaminedSpan(10); math.Abs(m-2) > 1e-12 {
		t.Fatalf("unexamined span %v, want 2 ([4,6))", m)
	}
}

func TestTrackerDiscardAdvancesTPast(t *testing.T) {
	tr := NewTracker(0, 5, true)
	// Nothing examined: at time 12 the horizon alone sets t_past = 7.
	if tr.TPast(12) != 7 {
		t.Fatalf("t_past = %v, want horizon 7", tr.TPast(12))
	}
	// Examined mass below the horizon is trimmed away on Commit.
	tr.Commit(12, []Window{{0, 2}})
	if len(tr.ClearedIntervals()) != 0 {
		t.Fatalf("sub-horizon interval kept: %v", tr.ClearedIntervals())
	}
}

func TestTrackerView(t *testing.T) {
	tr := NewTracker(0, 5, true)
	v := tr.View(12, 0.5, 2)
	if v.Now != 12 || v.TPast != 7 || v.TNewest != 12 || v.K != 5 || v.Tau != 0.5 || v.Lambda != 2 {
		t.Fatalf("view = %+v", v)
	}
}

func TestTrackerPanicsOnBadK(t *testing.T) {
	for _, k := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("K=%v accepted", k)
				}
			}()
			NewTracker(0, k, true)
		}()
	}
}

// Property: under the controlled policy the cleared set is always a single
// prefix interval — Theorem 1's "no gaps" corollary.
func TestControlledNoGapsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rngutil.New(seed)
		tr := NewTracker(0, math.Inf(1), false)
		now := 5.0
		p := Controlled{Length: FixedLength(2)}
		// Pending arrivals anywhere in the past.
		var pending []float64
		for i := 0; i < 10; i++ {
			pending = append(pending, r.Float64()*now)
		}
		sort.Float64s(pending)
		for round := 0; round < 15; round++ {
			v := tr.View(now, 0.1, 1)
			if v.TPast >= v.TNewest {
				return false
			}
			rep, err := RunProcess(p, v, oracle(pending))
			if err != nil {
				return false
			}
			tr.Commit(now, rep.Examined)
			if rep.Success {
				// Remove the transmitted arrival.
				for i, a := range pending {
					if rep.SuccessWindow.Contains(a) {
						pending = append(pending[:i], pending[i+1:]...)
						break
					}
				}
			}
			now += 0.1 * float64(len(rep.Steps))
			// Invariant: cleared region is empty or one prefix interval.
			iv := tr.ClearedIntervals()
			if len(iv) > 1 {
				return false
			}
			if len(iv) == 1 && math.Abs(iv[0].Start-0) > 1e-12 && iv[0].Start > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
