package window

import (
	"fmt"

	"windowctl/internal/metrics"
)

// Feedback is the ternary outcome of one probe slot, observable by every
// station within τ: nobody transmitted, exactly one transmitted, or a
// collision occurred.
type Feedback int

// Feedback values.
const (
	// Idle: no station had an arrival in the enabled window.
	Idle Feedback = iota
	// Success: exactly one station transmitted.
	Success
	// Collision: two or more stations transmitted.
	Collision
	// Erased: the station could not classify the slot at all (imperfect
	// sensing; injected by internal/fault).  Perfect-feedback resolvers
	// never see it; a fault-tolerant resolver treats it conservatively by
	// aborting the process to a bounded re-enable of its window.
	Erased
)

// String implements fmt.Stringer.  Out-of-range values render as
// "Feedback(n)", stdlib-stringer style, so corrupted feedback shows up in
// logs instead of masquerading as a collision.
func (f Feedback) String() string {
	switch f {
	case Idle:
		return "idle"
	case Success:
		return "success"
	case Collision:
		return "collision"
	case Erased:
		return "erased"
	default:
		return fmt.Sprintf("Feedback(%d)", int(f))
	}
}

// maxSplitDepth bounds the splitting recursion.  Each split halves the
// window, so 100 splits reduce any float64 interval below one ulp; hitting
// the bound means two messages share an arrival time, which has probability
// zero under the continuous arrival models and indicates a caller bug.
const maxSplitDepth = 100

// Step records one probe of a windowing process.
type Step struct {
	// Enabled is the window that was probed.
	Enabled Window
	// Outcome is the channel feedback for the probe.
	Outcome Feedback
}

// Resolver is the deterministic state machine of a single windowing
// process (the paper's figure 1): it proposes windows and consumes channel
// feedback until either a single message transmission begins or the initial
// window is found empty.  Every station runs an identical Resolver on the
// common feedback, which is how the distributed stations stay in agreement.
type Resolver struct {
	policy    Policy
	view      View
	collector metrics.Collector // nil unless Observe was called

	enabled    Window
	sibling    Window // other half of the last split; status unknown
	hasSibling bool
	depth      int

	done          bool
	success       bool
	faultTolerant bool
	recovered     bool

	steps    []Step
	examined []Window // intervals proven to hold no untransmitted arrivals
	released []Window // intervals returned, status unknown, to the unexamined region
}

// NewResolver starts a windowing process: the policy's initial window is
// selected (clamped to [view.TPast, view.TNewest]) and enabled.  It returns
// an error if the clamped window is empty.
func NewResolver(p Policy, v View) (*Resolver, error) {
	r := &Resolver{}
	if err := r.Reset(p, v); err != nil {
		return nil, err
	}
	return r, nil
}

// Reset recycles the resolver for a fresh windowing process, reusing the
// steps/examined/released backing arrays so that a long-lived resolver
// stops allocating once they reach the working size of its processes.
// The attached collector and the fault-tolerance mode survive the reset
// (the engines set both once, up front).  It returns the same error as
// NewResolver when the clamped initial window is empty; on error the
// resolver is left done-without-success so a stale Enabled window cannot
// be probed by accident.
func (r *Resolver) Reset(p Policy, v View) error {
	r.policy = p
	r.view = v
	r.hasSibling = false
	r.depth = 0
	r.success = false
	r.recovered = false
	r.steps = r.steps[:0]
	r.examined = r.examined[:0]
	r.released = r.released[:0]

	w := p.InitialWindow(v)
	if w.Start < v.TPast {
		w.Start = v.TPast
	}
	if w.End > v.TNewest {
		w.End = v.TNewest
	}
	if w.Empty() {
		r.done = true
		return fmt.Errorf("window: initial window %v empty after clamping to [%v, %v]",
			w, v.TPast, v.TNewest)
	}
	r.done = false
	r.enabled = w
	return nil
}

// Observe attaches a metrics collector to the process: every window
// split is reported to it.  Pass nil to detach.  In the multi-station
// simulation only one station's resolver should observe, or splits are
// counted once per station.
func (r *Resolver) Observe(c metrics.Collector) { r.collector = c }

// Enabled returns the currently enabled window.  Stations transmit in the
// next slot exactly when they hold a message whose arrival time lies in it.
func (r *Resolver) Enabled() Window { return r.enabled }

// Done reports whether the process has ended (success or empty initial
// window).
func (r *Resolver) Done() bool { return r.done }

// Success reports whether the process ended with a message transmission.
func (r *Resolver) Success() bool { return r.success }

// SetFaultTolerant switches the resolver into imperfect-feedback
// operation: Erased feedback and a blown split-depth bound abort the
// process to a bounded re-enable of its window (the enabled and sibling
// windows rejoin the unexamined region and are re-probed by later
// processes) instead of panicking.  The perfect-feedback state machine is
// untouched — with fault-free feedback a fault-tolerant resolver behaves
// identically to a plain one.
func (r *Resolver) SetFaultTolerant(on bool) { r.faultTolerant = on }

// Recovered reports whether the process ended through the recovery path
// (erasure, phantom-collision give-up, blown split depth, or an external
// Abort) rather than by completing normally.
func (r *Resolver) Recovered() bool { return r.recovered }

// Abort ends the process through the recovery path from outside the state
// machine — the engines use it to implement the network-wide recovery
// protocol after a detected inter-station desynchronization.  The enabled
// and sibling windows are released back to the unexamined region.  Abort
// after Done is a no-op (a desync recovery aborts every station's
// resolver, some of which may already have finished).
func (r *Resolver) Abort() {
	if r.done {
		return
	}
	r.recover()
}

// recover releases everything of unknown status and ends the process
// without a transmission: the released intervals rejoin the unexamined
// region, so the next decision epoch re-enables them (bounded re-enable)
// and element-(4) deadline discards keep working on whatever they hold.
func (r *Resolver) recover() {
	r.released = append(r.released, r.enabled)
	if r.hasSibling {
		r.released = append(r.released, r.sibling)
		r.hasSibling = false
	}
	r.recovered = true
	r.done = true
}

// SuccessWindow returns the window containing exactly the transmitted
// message's arrival; it panics unless Done and Success.
func (r *Resolver) SuccessWindow() Window {
	if !r.done || !r.success {
		panic("window: SuccessWindow on unfinished or unsuccessful process")
	}
	return r.steps[len(r.steps)-1].Enabled
}

// Steps returns the probes made so far.
func (r *Resolver) Steps() []Step { return r.steps }

// WastedSlots counts the idle and collision probes so far — the process's
// contribution to scheduling time, each costing τ.
func (r *Resolver) WastedSlots() int {
	n := 0
	for _, s := range r.steps {
		if s.Outcome != Success {
			n++
		}
	}
	return n
}

// Examined returns the intervals this process proved clear of
// untransmitted arrivals (idle windows plus the success window).
func (r *Resolver) Examined() []Window { return r.examined }

// Released returns intervals of unknown status returned to the unexamined
// region (unprobed siblings abandoned when the process ended or split
// elsewhere).
func (r *Resolver) Released() []Window { return r.released }

// OnFeedback advances the state machine with the feedback of the probe of
// Enabled.  Calling it after Done panics.
func (r *Resolver) OnFeedback(fb Feedback) {
	if r.done {
		panic("window: OnFeedback after process completed")
	}
	r.steps = append(r.steps, Step{Enabled: r.enabled, Outcome: fb})
	switch fb {
	case Idle:
		r.examined = append(r.examined, r.enabled)
		if !r.hasSibling {
			// Empty initial window: the process ends without a transmission.
			r.done = true
			return
		}
		// The enabled half was empty, so the sibling is known to contain
		// two or more arrivals: split it immediately (figure 1 text).
		r.split(r.sibling)
	case Success:
		// Exactly one arrival was in the enabled window; it is now being
		// transmitted, so the window is clear.  Any sibling's status is
		// unknown — it simply rejoins the unexamined region.
		r.examined = append(r.examined, r.enabled)
		if r.hasSibling {
			r.released = append(r.released, r.sibling)
			r.hasSibling = false
		}
		r.success = true
		r.done = true
	case Collision:
		// Two or more arrivals in the enabled window: abandon any unknown
		// sibling and split the enabled window.
		if r.hasSibling {
			r.released = append(r.released, r.sibling)
			r.hasSibling = false
		}
		r.split(r.enabled)
	case Erased:
		// The station could not classify the slot: the enabled window's
		// status is unknown.  A fault-tolerant resolver treats the erasure
		// conservatively — nothing is marked examined, the process aborts,
		// and the released windows are re-enabled by a later process.
		if !r.faultTolerant {
			panic("window: erased feedback on a perfect-feedback resolver")
		}
		r.recover()
	default:
		panic(fmt.Sprintf("window: unknown feedback %d", fb))
	}
}

// split cuts w (believed to contain >= 2 arrivals) and enables the side
// the policy selects; the other side becomes the unknown sibling.  When
// the view sets MinSplitLen and w is already shorter, the belief is
// treated as phantom (inconsistent stations) and the process gives up.
func (r *Resolver) split(w Window) {
	if r.view.MinSplitLen > 0 && w.Len() < r.view.MinSplitLen {
		r.released = append(r.released, w)
		r.hasSibling = false
		r.recovered = r.faultTolerant // phantom collision under faults: a recovery
		r.done = true
		return
	}
	if r.depth >= maxSplitDepth {
		if r.faultTolerant {
			// Split depth blowing up means the ">= 2 arrivals" belief is
			// phantom (false collisions): give the window back and abort
			// instead of panicking.
			r.released = append(r.released, w)
			r.hasSibling = false
			r.recovered = true
			r.done = true
			return
		}
		panic(fmt.Sprintf("window: split depth %d exceeded on %v — coincident arrival times?",
			maxSplitDepth, w))
	}
	if r.collector != nil {
		r.collector.RecordSplit()
	}
	frac := r.policy.SplitFraction(r.view, w, r.depth)
	older, newer := w.Split(frac)
	side := r.policy.ChooseSide(r.view, w, r.depth)
	r.depth++
	if side == Older {
		r.enabled, r.sibling = older, newer
	} else {
		r.enabled, r.sibling = newer, older
	}
	r.hasSibling = true
}

// ProcessReport summarizes one complete windowing process.
type ProcessReport struct {
	// Steps lists every probe in order.
	Steps []Step
	// Success reports whether a message transmission began.
	Success bool
	// SuccessWindow holds the transmitted message's arrival time (valid
	// only when Success).
	SuccessWindow Window
	// Examined lists intervals proven clear.
	Examined []Window
	// Released lists unknown-status intervals returned to the unexamined
	// region.
	Released []Window
	// WastedSlots counts idle + collision probes (scheduling time in τ).
	WastedSlots int
}

// RunProcess executes one full windowing process against a content oracle:
// count must return the number of pending (untransmitted) message arrivals
// whose arrival time lies in the given window.  It is the global-view
// execution mode used by the fast simulator and by the unit tests; the
// multi-station simulator instead drives Resolver with real feedback.
func RunProcess(p Policy, v View, count func(Window) int) (ProcessReport, error) {
	return RunProcessObserved(p, v, count, nil)
}

// RunProcessObserved is RunProcess with a metrics collector attached to
// the process (nil behaves exactly like RunProcess); window splits are
// reported to it as they happen.
func RunProcessObserved(p Policy, v View, count func(Window) int, c metrics.Collector) (ProcessReport, error) {
	r, err := NewResolver(p, v)
	if err != nil {
		return ProcessReport{}, err
	}
	r.Observe(c)
	for !r.Done() {
		n := count(r.Enabled())
		if n < 0 {
			return ProcessReport{}, fmt.Errorf("window: content oracle returned %d", n)
		}
		switch {
		case n == 0:
			r.OnFeedback(Idle)
		case n == 1:
			r.OnFeedback(Success)
		default:
			r.OnFeedback(Collision)
		}
	}
	rep := ProcessReport{
		Steps:       r.Steps(),
		Success:     r.Success(),
		Examined:    r.Examined(),
		Released:    r.Released(),
		WastedSlots: r.WastedSlots(),
	}
	if r.Success() {
		rep.SuccessWindow = r.SuccessWindow()
	}
	return rep, nil
}
