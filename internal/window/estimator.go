package window

import (
	"fmt"
	"math"
)

// RateEstimator estimates the network-wide message arrival rate from the
// protocol's own observations, so that the element-(2) window-length rule
// can be applied without knowing λ′ a priori — every station sees the
// same channel feedback, so every station's estimator stays identical and
// the common-decision property is preserved.
//
// The estimate is an exponentially weighted density: each completed
// windowing process proves some measure of time clear while transmitting
// some number of messages out of it; the ratio is an unbiased density
// sample for the examined region (messages discarded by element (4) died
// in *unexamined* time, which never enters the estimate, so the content
// density the window sizing needs — that of still-alive regions — is what
// is being measured).
type RateEstimator struct {
	rate     float64
	halfLife float64
	seeded   bool
}

// NewRateEstimator creates an estimator starting from the initial guess;
// halfLife is the examined-time measure over which old observations lose
// half their weight.
func NewRateEstimator(initial, halfLife float64) *RateEstimator {
	if initial <= 0 || halfLife <= 0 {
		panic(fmt.Sprintf("window: invalid estimator parameters (%v, %v)", initial, halfLife))
	}
	return &RateEstimator{rate: initial, halfLife: halfLife}
}

// Observe folds in one completed windowing process: messages transmitted
// out of the given measure of examined time.  Zero-measure observations
// are ignored.
func (e *RateEstimator) Observe(messages int, examinedMeasure float64) {
	if messages < 0 {
		panic("window: negative message count")
	}
	if examinedMeasure <= 0 {
		return
	}
	density := float64(messages) / examinedMeasure
	decay := math.Exp2(-examinedMeasure / e.halfLife)
	e.rate = decay*e.rate + (1-decay)*density
	e.seeded = true
	// Keep the estimate strictly positive so window lengths stay finite.
	if e.rate < 1e-12 {
		e.rate = 1e-12
	}
}

// Rate returns the current estimate.
func (e *RateEstimator) Rate() float64 { return e.rate }

// Seeded reports whether any observation has been folded in.
func (e *RateEstimator) Seeded() bool { return e.seeded }
