package window

import (
	"fmt"
	"math"
)

// RateEstimator estimates the network-wide message arrival rate from the
// protocol's own observations, so that the element-(2) window-length rule
// can be applied without knowing λ′ a priori — every station sees the
// same channel feedback, so every station's estimator stays identical and
// the common-decision property is preserved.
//
// The estimate is an exponentially weighted density: each completed
// windowing process proves some measure of time clear while transmitting
// some number of messages out of it; the ratio is an unbiased density
// sample for the examined region (messages discarded by element (4) died
// in *unexamined* time, which never enters the estimate, so the content
// density the window sizing needs — that of still-alive regions — is what
// is being measured).
type RateEstimator struct {
	rate     float64
	halfLife float64
	seeded   bool
}

// NewRateEstimator creates an estimator starting from the initial guess;
// halfLife is the examined-time measure over which old observations lose
// half their weight.
func NewRateEstimator(initial, halfLife float64) *RateEstimator {
	if initial <= 0 || halfLife <= 0 {
		panic(fmt.Sprintf("window: invalid estimator parameters (%v, %v)", initial, halfLife))
	}
	return &RateEstimator{rate: initial, halfLife: halfLife}
}

// The estimate is clamped to [MinRate, MaxRate] after every observation
// so a pathological sample can never drive it to zero (infinite windows)
// or to infinity (zero-length windows); within those bounds the estimator
// is the pure exponentially weighted density.
const (
	// MinRate is the smallest value Rate can return.
	MinRate = 1e-12
	// MaxRate is the largest value Rate can return.
	MaxRate = 1e12
)

// Observe folds in one completed windowing process: messages transmitted
// out of the given measure of examined time.  Zero-measure and non-finite
// observations are ignored: a NaN measure would otherwise poison the rate
// permanently (NaN propagates through every later decay step), and an
// infinite measure would zero the decay and collapse the estimate in one
// step.  The updated rate is clamped to [MinRate, MaxRate].
func (e *RateEstimator) Observe(messages int, examinedMeasure float64) {
	if messages < 0 {
		panic("window: negative message count")
	}
	if examinedMeasure <= 0 || math.IsNaN(examinedMeasure) || math.IsInf(examinedMeasure, 0) {
		return
	}
	// The density itself is clamped first: a tiny measure can push it
	// past MaxFloat64, and multiplying that +Inf by an underflowed
	// (1-decay) of 0 would manufacture a NaN.
	density := float64(messages) / examinedMeasure
	if density > MaxRate {
		density = MaxRate
	}
	decay := math.Exp2(-examinedMeasure / e.halfLife)
	rate := decay*e.rate + (1-decay)*density
	// Clamp so window lengths derived from the rate stay finite and
	// positive; an overflow-scale measure (decay underflows to 0, density
	// underflows toward 0) lands on MinRate instead of destroying the
	// estimator.
	switch {
	case math.IsNaN(rate) || rate < MinRate:
		rate = MinRate
	case rate > MaxRate:
		rate = MaxRate
	}
	e.rate = rate
	e.seeded = true
}

// Rate returns the current estimate.
func (e *RateEstimator) Rate() float64 { return e.rate }

// Seeded reports whether any observation has been folded in.
func (e *RateEstimator) Seeded() bool { return e.seeded }
