package window

import (
	"fmt"
	"math"
)

// Tracker maintains a station's view of the time axis across windowing
// processes (the paper's figure 2): which intervals are known to contain no
// untransmitted arrivals, and — derived from that — the oldest point that
// may still contain one (t_past).  Under the optimal (controlled) policy
// the cleared region is a single prefix and t_past is one number, exactly
// as Theorem 1's corollary promises; for the uncontrolled baselines the
// cleared region can be fragmented and the Tracker keeps the full interval
// set.
type Tracker struct {
	start    float64
	k        float64
	discards bool
	cleared  IntervalSet
}

// NewTracker creates a Tracker for a protocol starting at the given time
// with constraint k (use math.Inf(1) for unconstrained operation).
// discards enables policy element (4): everything older than k in the past
// is treated as examined.  It panics if k <= 0.
func NewTracker(start, k float64, discards bool) *Tracker {
	if k <= 0 || math.IsNaN(k) {
		panic(fmt.Sprintf("window: invalid time constraint %v", k))
	}
	return &Tracker{start: start, k: k, discards: discards}
}

// Horizon returns the oldest time that still matters at the given instant:
// now − K under element (4), or the protocol start time otherwise.
func (t *Tracker) Horizon(now float64) float64 {
	if !t.discards {
		return t.start
	}
	h := now - t.k
	if h < t.start {
		return t.start
	}
	return h
}

// TPast returns the oldest point at or after the horizon that may contain
// untransmitted arrivals.
func (t *Tracker) TPast(now float64) float64 {
	h := t.Horizon(now)
	if p, ok := t.cleared.OldestUncovered(h, now); ok {
		return p
	}
	// Everything up to now is cleared (possible only immediately at start).
	return now
}

// TNewest returns the most recent unexamined instant (the end of the
// youngest uncovered gap), never exceeding now.
func (t *Tracker) TNewest(now float64) float64 {
	h := t.Horizon(now)
	if u, ok := t.cleared.NewestUncovered(h, now); ok {
		return u
	}
	return now
}

// View assembles the policy View for a decision at the given instant.
func (t *Tracker) View(now, tau, lambda float64) View {
	return View{
		Now:     now,
		TPast:   t.TPast(now),
		TNewest: t.TNewest(now),
		K:       t.k,
		Tau:     tau,
		Lambda:  lambda,
		Cleared: &t.cleared,
	}
}

// Commit records the intervals a finished windowing process proved clear,
// and trims bookkeeping below the horizon.
func (t *Tracker) Commit(now float64, examined []Window) {
	for _, w := range examined {
		t.cleared.Add(w)
	}
	t.cleared.TrimBelow(t.Horizon(now))
}

// UnexaminedSpan returns the total measure of time in [horizon, now] that
// may still contain untransmitted arrivals — the pseudo-time state of §3.1.
func (t *Tracker) UnexaminedSpan(now float64) float64 {
	return t.cleared.UncoveredMeasure(t.Horizon(now), now)
}

// PseudoDelay returns the pseudo delay (§3.1/figure 3) of a message that
// arrived at the given time: the measure of time between its arrival and
// now that has not been proven clear — i.e. its delay on the compressed
// pseudo-time axis.  By construction it never exceeds the actual delay
// (Lemma 1), and under the Theorem-1 policy the two are equal for every
// live message (Lemma 2); the simulation tests verify both properties.
func (t *Tracker) PseudoDelay(now, arrival float64) float64 {
	if arrival > now {
		panic(fmt.Sprintf("window: pseudo delay of a future arrival (%v > %v)", arrival, now))
	}
	return t.cleared.UncoveredMeasure(arrival, now)
}

// ClearedIntervals returns a copy of the currently tracked cleared
// intervals (for traces and tests).
func (t *Tracker) ClearedIntervals() []Window { return t.cleared.Intervals() }

// AppendCleared appends the currently cleared intervals to dst and
// returns the extended slice — the buffer-reusing form of
// ClearedIntervals for per-slot callers such as the tracer.
func (t *Tracker) AppendCleared(dst []Window) []Window { return t.cleared.AppendTo(dst) }

// Discards reports whether element (4) is in force.
func (t *Tracker) Discards() bool { return t.discards }

// K returns the time constraint.
func (t *Tracker) K() float64 { return t.k }

// Start returns the protocol epoch.
func (t *Tracker) Start() float64 { return t.start }
