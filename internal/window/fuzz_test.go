package window

import (
	"math"
	"sort"
	"testing"

	"windowctl/internal/rngutil"
)

// FuzzIntervalSet feeds arbitrary interval sequences into the set and
// checks the structural invariants plus query consistency against a
// brute-force reference implementation.
func FuzzIntervalSet(f *testing.F) {
	f.Add(uint64(1), uint8(4))
	f.Add(uint64(42), uint8(17))
	f.Add(uint64(999), uint8(60))
	f.Fuzz(func(t *testing.T, seed uint64, n uint8) {
		r := rngutil.New(seed)
		var s IntervalSet
		var raw []Window
		for i := 0; i < int(n%32)+1; i++ {
			a := r.Float64() * 20
			w := Window{a, a + r.Float64()*4}
			s.Add(w)
			raw = append(raw, w)
		}
		// Invariant: sorted, disjoint, coalesced, non-empty.
		iv := s.Intervals()
		for i, w := range iv {
			if w.Empty() {
				t.Fatal("empty member")
			}
			if i > 0 && iv[i-1].End >= w.Start {
				t.Fatal("overlap or missed coalesce")
			}
		}
		// Covers agrees with the raw windows.
		for probe := 0.0; probe < 25; probe += 0.37 {
			want := false
			for _, w := range raw {
				if w.Contains(probe) {
					want = true
					break
				}
			}
			if got := s.Covers(probe); got != want {
				t.Fatalf("Covers(%v) = %v, reference %v", probe, got, want)
			}
		}
		// UncoveredMeasure is consistent with pointwise sampling.
		lo, hi := 0.0, 25.0
		const samples = 2000
		covered := 0
		for i := 0; i < samples; i++ {
			x := lo + (hi-lo)*(float64(i)+0.5)/samples
			if s.Covers(x) {
				covered++
			}
		}
		approx := (hi - lo) * float64(samples-covered) / samples
		if got := s.UncoveredMeasure(lo, hi); math.Abs(got-approx) > 0.3 {
			t.Fatalf("UncoveredMeasure %v vs sampled %v", got, approx)
		}
	})
}

// FuzzResolver runs complete windowing processes over arbitrary arrival
// sets and checks the protocol invariants: exactly-one-message success
// windows, tiling of the initial window, termination.
func FuzzResolver(f *testing.F) {
	f.Add(uint64(7), uint8(3), false)
	f.Add(uint64(100), uint8(0), true)
	f.Add(uint64(31337), uint8(9), false)
	f.Fuzz(func(t *testing.T, seed uint64, count uint8, lcfs bool) {
		r := rngutil.New(seed)
		n := int(count % 12)
		arr := make([]float64, n)
		for i := range arr {
			arr[i] = r.Float64() * 10
		}
		sort.Float64s(arr)
		// Reject coincident arrivals (probability ~0 in the real model).
		for i := 1; i < n; i++ {
			if arr[i] == arr[i-1] {
				return
			}
		}
		var p Policy = Controlled{Length: FixedLength(10)}
		if lcfs {
			p = LCFS{Length: FixedLength(10)}
		}
		v := View{Now: 10, TPast: 0, TNewest: 10, K: math.Inf(1), Tau: 1, Lambda: 1}
		oracle := func(w Window) int {
			lo := sort.SearchFloat64s(arr, w.Start)
			hi := sort.SearchFloat64s(arr, w.End)
			return hi - lo
		}
		rep, err := RunProcess(p, v, oracle)
		if err != nil {
			t.Fatal(err)
		}
		if (n > 0) != rep.Success {
			t.Fatalf("success=%v with %d arrivals", rep.Success, n)
		}
		if rep.Success && oracle(rep.SuccessWindow) != 1 {
			t.Fatalf("success window holds %d arrivals", oracle(rep.SuccessWindow))
		}
		// Examined windows must contain no untransmitted arrivals: every
		// arrival inside an examined window must be the transmitted one.
		for _, w := range rep.Examined {
			c := oracle(w)
			if c > 0 && !(rep.Success && w == rep.SuccessWindow && c == 1) {
				t.Fatalf("examined window %v still holds %d arrivals", w, c)
			}
		}
		// Tiling: examined + released measures sum to the initial window.
		total := 0.0
		for _, w := range rep.Examined {
			total += w.Len()
		}
		for _, w := range rep.Released {
			total += w.Len()
		}
		if math.Abs(total-10) > 1e-9 {
			t.Fatalf("tiling measure %v != 10", total)
		}
	})
}
