package window

import (
	"math"
	"testing"
)

// The regression this file pins: Observe used to accept any non-NaN-check
// measure, so a single NaN examinedMeasure turned the rate into NaN
// forever (every later decay step propagates it) and a +Inf measure
// collapsed the estimate to the floor in one step.  A long-running
// process (cmd/windowd) feeds the estimator from live observations and
// must survive whatever arithmetic the engine hands it.
func TestRateEstimatorRejectsNonFinite(t *testing.T) {
	cases := []struct {
		name     string
		messages int
		measure  float64
	}{
		{"nan measure", 1, math.NaN()},
		{"+inf measure", 1, math.Inf(1)},
		{"-inf measure", 1, math.Inf(-1)},
		{"zero measure", 3, 0},
		{"negative measure", 3, -5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewRateEstimator(0.5, 100)
			e.Observe(tc.messages, tc.measure)
			if e.Seeded() {
				t.Errorf("Observe(%d, %v) was folded in; want ignored", tc.messages, tc.measure)
			}
			if got := e.Rate(); got != 0.5 {
				t.Errorf("Rate() = %v after Observe(%d, %v); want initial 0.5", got, tc.messages, tc.measure)
			}
			// The estimator must still work after the bad sample.
			e.Observe(1, 2)
			if !e.Seeded() || math.IsNaN(e.Rate()) || e.Rate() <= 0 {
				t.Errorf("estimator unusable after bad sample: seeded=%v rate=%v", e.Seeded(), e.Rate())
			}
		})
	}
}

// A NaN must not survive a *sequence* of observations either: this is the
// exact poisoning scenario — one bad sample, then thousands of good ones
// that can never repair the estimate.
func TestRateEstimatorNotPoisonedByNaN(t *testing.T) {
	e := NewRateEstimator(1, 10)
	e.Observe(2, 4) // good
	before := e.Rate()
	e.Observe(1, math.NaN()) // bad: must be a no-op
	if got := e.Rate(); got != before {
		t.Fatalf("NaN observation changed the rate: %v -> %v", before, got)
	}
	for i := 0; i < 1000; i++ {
		e.Observe(1, 2)
	}
	if r := e.Rate(); math.IsNaN(r) || r < MinRate || r > MaxRate {
		t.Fatalf("rate %v outside [MinRate, MaxRate] after recovery sequence", r)
	}
	// 1 message per 2 units of examined time: the estimate should have
	// converged near density 0.5.
	if r := e.Rate(); math.Abs(r-0.5) > 0.05 {
		t.Fatalf("rate %v did not converge toward 0.5", r)
	}
}

// Overflow-scale (but finite) measures must clamp, not destroy: the decay
// underflows to 0 and the density toward 0, so the estimate lands on the
// documented MinRate floor and later observations pull it back up.
func TestRateEstimatorOverflowScaleMeasures(t *testing.T) {
	cases := []struct {
		name     string
		messages int
		measure  float64
		check    func(t *testing.T, rate float64)
	}{
		{"huge measure floors the rate", 1, 1e308, func(t *testing.T, rate float64) {
			if rate != MinRate {
				t.Errorf("Rate() = %v, want clamp %v", rate, MinRate)
			}
		}},
		// A denormal-scale measure overflows the density past MaxFloat64;
		// its EWMA weight (1-decay) simultaneously underflows to 0, so the
		// unclamped product would be 0·Inf = NaN.  The sample must instead
		// carry its (negligible) clamped weight and leave the rate intact.
		{"huge density is weightless, not NaN", math.MaxInt32, 1e-306, func(t *testing.T, rate float64) {
			if math.IsNaN(rate) {
				t.Fatal("rate is NaN: 0·Inf leaked through the EWMA mix")
			}
			if math.Abs(rate-1) > 1e-6 {
				t.Errorf("Rate() = %v, want ≈1 (near-zero-weight sample)", rate)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewRateEstimator(1, 100)
			e.Observe(tc.messages, tc.measure)
			tc.check(t, e.Rate())
			if !e.Seeded() {
				t.Error("finite observation should seed the estimator")
			}
			// Recovery: ordinary observations move the estimate back into
			// sensible territory (1000 units of measure = 10 half-lives).
			for i := 0; i < 1000; i++ {
				e.Observe(1, 1)
			}
			if r := e.Rate(); math.Abs(r-1) > 0.1 {
				t.Errorf("rate %v did not recover toward 1 after clamp", r)
			}
		})
	}
}

func TestRateEstimatorRateAlwaysInBounds(t *testing.T) {
	e := NewRateEstimator(1, 50)
	meas := []float64{1, 1e-300, 1e300, 3, math.Inf(1), 0.25, math.NaN(), 7}
	for i, m := range meas {
		e.Observe(i%3, m)
		if r := e.Rate(); math.IsNaN(r) || r < MinRate || r > MaxRate {
			t.Fatalf("after Observe(%d, %v): rate %v outside [%v, %v]", i%3, m, r, MinRate, MaxRate)
		}
	}
}
