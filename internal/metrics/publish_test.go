package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"sync"
	"testing"
)

// The regression this file pins: Publish used to call expvar.Publish
// directly, which panics on a duplicate name.  A long-running server
// (cmd/windowd) republishes after every engine swap, so re-publishing the
// same name must replace the variable, not crash the process.
func TestPublishIdempotent(t *testing.T) {
	a := NewSlotMetrics(1, 10)
	a.RecordArrivals(7)
	if err := a.Publish("test_publish_idempotent"); err != nil {
		t.Fatalf("first Publish: %v", err)
	}

	b := NewSlotMetrics(1, 10)
	b.RecordArrivals(42)
	if err := b.Publish("test_publish_idempotent"); err != nil {
		t.Fatalf("re-Publish of the same name: %v", err)
	}

	v := expvar.Get("test_publish_idempotent")
	if v == nil {
		t.Fatal("variable vanished after re-publish")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("published variable is not snapshot JSON: %v", err)
	}
	if snap.Arrivals != 42 {
		t.Errorf("published snapshot has Arrivals = %d, want 42 (the replacement collector)", snap.Arrivals)
	}
}

// A name owned by a foreign expvar registration (one we did not make via
// PublishVar) cannot be replaced — expvar has no delete — so PublishVar
// must report an error instead of panicking or silently shadowing.
func TestPublishForeignNameErrors(t *testing.T) {
	expvar.NewInt("test_publish_foreign")
	m := NewSlotMetrics(1, 10)
	if err := m.Publish("test_publish_foreign"); err == nil {
		t.Fatal("Publish over a foreign expvar name: got nil error")
	}
}

// The windowd scrape path: one goroutine records protocol events while
// others snapshot the shared collector.  Run under -race this verifies
// Shared's locking actually covers every counter the snapshot reads.
func TestSharedConcurrentSnapshot(t *testing.T) {
	s := NewShared(1, 100)
	const events = 2000

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < events; i++ {
			s.RecordArrivals(3)
			s.RecordSlots(SlotIdle, 1, 1)
			s.RecordSlots(SlotSuccess, 1, 3)
			s.RecordTransmission(1.5, true)
			s.RecordTransmission(0.5, false)
			s.RecordDiscards(1)
			s.RecordSplit()
			s.RecordFault(FaultErasure)
			s.RecordRecovery()
		}
	}()

	wg.Add(2)
	for r := 0; r < 2; r++ {
		go func() {
			defer wg.Done()
			for i := 0; i < events/4; i++ {
				snap := s.Snapshot()
				// Conservation of the snapshot itself: every transmission is
				// an arrival, so the reader must never observe more
				// transmissions than arrivals even mid-run.
				if snap.Transmissions+snap.Discards > snap.Arrivals {
					panic(fmt.Sprintf("torn snapshot: tx %d + discards %d > arrivals %d",
						snap.Transmissions, snap.Discards, snap.Arrivals))
				}
				_ = s.Format()
				_ = s.WaitQuantile(0.95)
				_ = s.Checkpoint()
			}
		}()
	}
	wg.Wait()

	snap := s.Snapshot()
	if snap.Arrivals != 3*events {
		t.Errorf("Arrivals = %d, want %d", snap.Arrivals, 3*events)
	}
	if snap.Transmissions != 2*events {
		t.Errorf("Transmissions = %d, want %d", snap.Transmissions, 2*events)
	}
	if snap.Accepted != events || snap.Late != events {
		t.Errorf("Accepted = %d, Late = %d, want %d each", snap.Accepted, snap.Late, events)
	}
	if snap.Discards != events {
		t.Errorf("Discards = %d, want %d", snap.Discards, events)
	}
}

// Shared must satisfy the engine-facing interfaces so it can be dropped
// into sim.Config.Metrics / FaultObserver directly.
var (
	_ Collector           = (*Shared)(nil)
	_ FaultObserver       = (*Shared)(nil)
	_ ConservationChecker = (*Shared)(nil)
)
