package metrics

import (
	"expvar"
	"sync"
)

// Shared is the concurrency-safe form of SlotMetrics: every Collector,
// FaultObserver and ConservationChecker method and every read-out
// (Snapshot, Format, quantiles) takes an internal mutex, so one engine
// goroutine can record events while any number of scrape handlers
// snapshot the counters — the operating mode of a long-running server
// (cmd/windowd) whose /debug/vars and /metrics endpoints are hit while
// the scheduler is stepping.
//
// A plain SlotMetrics stays the right collector for batch runs: it is
// allocation- and lock-free on the hot path.  Shared trades one uncontended
// mutex acquisition per recorded event for scrape safety; the engines
// batch their Record calls, so the cost is a few locks per protocol slot.
type Shared struct {
	mu sync.Mutex
	m  SlotMetrics
}

// NewShared creates a Shared collector whose accepted-wait histogram has
// the given bin width and count (use binWidth = τ and enough bins to
// cover K, as NewSlotMetrics does).  It panics on non-positive arguments.
func NewShared(binWidth float64, bins int) *Shared {
	s := &Shared{}
	s.m = *NewSlotMetrics(binWidth, bins)
	return s
}

// RecordArrivals implements Collector.
func (s *Shared) RecordArrivals(n int64) {
	s.mu.Lock()
	s.m.RecordArrivals(n)
	s.mu.Unlock()
}

// RecordSlots implements Collector.
func (s *Shared) RecordSlots(o SlotOutcome, n int64, channelTime float64) {
	s.mu.Lock()
	s.m.RecordSlots(o, n, channelTime)
	s.mu.Unlock()
}

// RecordSplit implements Collector.
func (s *Shared) RecordSplit() {
	s.mu.Lock()
	s.m.RecordSplit()
	s.mu.Unlock()
}

// RecordDiscards implements Collector.
func (s *Shared) RecordDiscards(n int64) {
	s.mu.Lock()
	s.m.RecordDiscards(n)
	s.mu.Unlock()
}

// RecordTransmission implements Collector.
func (s *Shared) RecordTransmission(wait float64, accepted bool) {
	s.mu.Lock()
	s.m.RecordTransmission(wait, accepted)
	s.mu.Unlock()
}

// RecordEndPending implements Collector.
func (s *Shared) RecordEndPending(lost, censored int64) {
	s.mu.Lock()
	s.m.RecordEndPending(lost, censored)
	s.mu.Unlock()
}

// RecordFault implements FaultObserver.
func (s *Shared) RecordFault(k FaultKind) {
	s.mu.Lock()
	s.m.RecordFault(k)
	s.mu.Unlock()
}

// RecordRecovery implements FaultObserver.
func (s *Shared) RecordRecovery() {
	s.mu.Lock()
	s.m.RecordRecovery()
	s.mu.Unlock()
}

// RecordDesync implements FaultObserver.
func (s *Shared) RecordDesync() {
	s.mu.Lock()
	s.m.RecordDesync()
	s.mu.Unlock()
}

// Checkpoint implements ConservationChecker.
func (s *Shared) Checkpoint() Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Checkpoint()
}

// CheckConservation implements ConservationChecker.
func (s *Shared) CheckConservation(since Checkpoint, resident int64, elapsed float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.CheckConservation(since, resident, elapsed)
}

// Snapshot returns a consistent view of the counters and derived rates:
// all fields are read under one lock acquisition, so a snapshot taken
// mid-run never mixes counter values from different instants.
func (s *Shared) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Snapshot()
}

// Format renders the counters as the aligned human-readable text block
// of SlotMetrics.Format, under the lock.
func (s *Shared) Format() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m.Format()
}

// WaitQuantile returns the q-quantile of the accepted waiting times
// (+Inf when q falls in the histogram's overflow region, 0 when the
// collector has no histogram or no observations).
func (s *Shared) WaitQuantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m.WaitHist == nil || s.m.WaitHist.N() == 0 {
		return 0
	}
	return s.m.WaitHist.Quantile(q)
}

// Var returns the collector as an expvar variable rendering the current
// Snapshot as JSON.
func (s *Shared) Var() expvar.Var {
	return expvar.Func(func() any { return s.Snapshot() })
}

// Publish registers the collector in the process-wide expvar registry
// under the given name, with the same idempotent-replace semantics as
// SlotMetrics.Publish.
func (s *Shared) Publish(name string) error { return PublishVar(name, s.Var()) }
