package metrics

import (
	"encoding/json"
	"strings"
	"testing"

	"windowctl/internal/stats"
)

func TestSlotOutcomeString(t *testing.T) {
	cases := map[SlotOutcome]string{
		SlotIdle:       "idle",
		SlotSuccess:    "success",
		SlotCollision:  "collision",
		SlotOutcome(9): "outcome(9)",
	}
	for o, want := range cases {
		if got := o.String(); got != want {
			t.Errorf("SlotOutcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

func TestSlotMetricsCounting(t *testing.T) {
	m := NewSlotMetrics(1, 100)
	m.RecordArrivals(3)
	m.RecordArrivals(2)
	m.RecordSlots(SlotIdle, 4, 4)
	m.RecordSlots(SlotSuccess, 2, 50)
	m.RecordSlots(SlotCollision, 3, 3)
	m.RecordSplit()
	m.RecordSplit()
	m.RecordDiscards(1)
	m.RecordTransmission(10, true)
	m.RecordTransmission(80, false)
	m.RecordEndPending(1, 1)

	if m.Arrivals != 5 {
		t.Errorf("Arrivals = %d, want 5", m.Arrivals)
	}
	if m.IdleSlots != 4 || m.SuccessSlots != 2 || m.CollisionSlots != 3 {
		t.Errorf("slots = %d/%d/%d, want 4/2/3", m.IdleSlots, m.SuccessSlots, m.CollisionSlots)
	}
	if m.Splits != 2 {
		t.Errorf("Splits = %d, want 2", m.Splits)
	}
	if m.Transmissions != 2 || m.Accepted != 1 || m.Late != 1 {
		t.Errorf("transmissions = %d (accepted %d, late %d), want 2 (1, 1)",
			m.Transmissions, m.Accepted, m.Late)
	}
	if got := m.ElapsedTime(); got != 57 {
		t.Errorf("ElapsedTime = %v, want 57", got)
	}
	if got := m.Utilization(); got != 50.0/57 {
		t.Errorf("Utilization = %v, want %v", got, 50.0/57)
	}
	// Lost = discards(1) + late(1) + pending lost(1); decided = 1 + 3.
	if got := m.Lost(); got != 3 {
		t.Errorf("Lost = %d, want 3", got)
	}
	if got := m.Loss(); got != 0.75 {
		t.Errorf("Loss = %v, want 0.75", got)
	}
	if got := m.DiscardFraction(); got != 0.2 {
		t.Errorf("DiscardFraction = %v, want 0.2", got)
	}
	// Only the accepted wait lands in the histogram.
	if n := m.WaitHist.N(); n != 1 {
		t.Errorf("WaitHist.N = %d, want 1", n)
	}
}

func TestZeroValueDerived(t *testing.T) {
	var m SlotMetrics
	if m.Utilization() != 0 || m.Loss() != 0 || m.DiscardFraction() != 0 {
		t.Errorf("zero-value derived rates should be 0, got util=%v loss=%v disc=%v",
			m.Utilization(), m.Loss(), m.DiscardFraction())
	}
	m.RecordTransmission(1, true) // no histogram: must not panic
}

func TestRecordSlotsUnknownOutcomePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RecordSlots(outcome(7)) did not panic")
		}
	}()
	new(SlotMetrics).RecordSlots(SlotOutcome(7), 1, 1)
}

// TestNopNoAlloc pins the zero-cost claim of the no-op path: storing Nop
// in the interface and calling every method allocates nothing.
func TestNopNoAlloc(t *testing.T) {
	col := OrNop(nil)
	if _, ok := col.(Nop); !ok {
		t.Fatalf("OrNop(nil) = %T, want Nop", col)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		col.RecordArrivals(1)
		col.RecordSlots(SlotSuccess, 1, 25)
		col.RecordSplit()
		col.RecordDiscards(1)
		col.RecordTransmission(1, true)
		col.RecordEndPending(0, 0)
	})
	if allocs != 0 {
		t.Errorf("no-op collector allocates %v per event batch, want 0", allocs)
	}
}

func TestOrNopPassesThrough(t *testing.T) {
	m := new(SlotMetrics)
	if OrNop(m) != Collector(m) {
		t.Error("OrNop(non-nil) should return its argument")
	}
}

func TestCheckConservation(t *testing.T) {
	m := new(SlotMetrics)
	start := m.Checkpoint()
	m.RecordArrivals(10)
	m.RecordSlots(SlotIdle, 5, 5)
	m.RecordSlots(SlotSuccess, 6, 150)
	m.RecordSlots(SlotCollision, 2, 2)
	m.RecordTransmission(1, true)
	for i := 0; i < 5; i++ {
		m.RecordTransmission(3, true)
	}
	m.RecordDiscards(2)

	// 10 arrivals = 6 transmissions + 2 discards + 2 resident; 157 time.
	if err := m.CheckConservation(start, 2, 157); err != nil {
		t.Errorf("conservation should hold: %v", err)
	}
	if err := m.CheckConservation(start, 3, 157); err == nil {
		t.Error("message conservation violation not detected")
	} else if !strings.Contains(err.Error(), "message conservation") {
		t.Errorf("unexpected error: %v", err)
	}
	if err := m.CheckConservation(start, 2, 200); err == nil {
		t.Error("slot-time conservation violation not detected")
	} else if !strings.Contains(err.Error(), "slot-time conservation") {
		t.Errorf("unexpected error: %v", err)
	}
	// The time check is tolerant of float accumulation order.
	if err := m.CheckConservation(start, 2, 157+1e-9); err != nil {
		t.Errorf("tolerance too tight: %v", err)
	}
}

// TestCheckpointDelta verifies that a reused collector (one aggregating
// several sequential runs, as cmd/sweep does) is checked per run, over
// the delta since its checkpoint only.
func TestCheckpointDelta(t *testing.T) {
	m := new(SlotMetrics)
	// Run 1: 4 arrivals, 3 transmitted, 1 resident.
	m.RecordArrivals(4)
	m.RecordSlots(SlotSuccess, 3, 75)
	for i := 0; i < 3; i++ {
		m.RecordTransmission(1, true)
	}
	if err := m.CheckConservation(Checkpoint{}, 1, 75); err != nil {
		t.Fatalf("run 1: %v", err)
	}
	// Run 2 events land on top; only the delta must balance.
	cp := m.Checkpoint()
	m.RecordArrivals(2)
	m.RecordSlots(SlotIdle, 10, 10)
	m.RecordSlots(SlotSuccess, 2, 50)
	m.RecordTransmission(1, true)
	m.RecordTransmission(2, true)
	if err := m.CheckConservation(cp, 0, 60); err != nil {
		t.Errorf("run 2 delta: %v", err)
	}
	if err := m.CheckConservation(Checkpoint{}, 1, 135); err != nil {
		t.Errorf("whole history: %v", err)
	}
}

func TestMerge(t *testing.T) {
	a := NewSlotMetrics(1, 10)
	b := NewSlotMetrics(1, 10)
	a.RecordArrivals(2)
	a.RecordSlots(SlotIdle, 1, 1)
	a.RecordTransmission(0.5, true)
	b.RecordArrivals(3)
	b.RecordSlots(SlotCollision, 2, 2)
	b.RecordSplit()
	b.RecordTransmission(1.5, true)

	a.Merge(b)
	if a.Arrivals != 5 || a.CollisionSlots != 2 || a.Splits != 1 || a.Accepted != 2 {
		t.Errorf("merged counters wrong: %+v", a)
	}
	if a.WaitHist == nil || a.WaitHist.N() != 2 {
		t.Fatalf("same-shape histograms should merge, got %v", a.WaitHist)
	}

	// Shape mismatch drops the histogram rather than mixing bins.
	c := NewSlotMetrics(2, 10)
	a.Merge(c)
	if a.WaitHist != nil {
		t.Error("merging different-shape histograms should drop the histogram")
	}
}

func TestHistogramMergePanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Histogram.Merge with different shapes did not panic")
		}
	}()
	stats.NewHistogram(1, 10).Merge(stats.NewHistogram(2, 10))
}

func TestSnapshotAndVar(t *testing.T) {
	m := NewSlotMetrics(1, 10)
	m.RecordArrivals(2)
	m.RecordSlots(SlotSuccess, 2, 50)
	m.RecordTransmission(3, true)
	m.RecordTransmission(4, true)

	s := m.Snapshot()
	if s.Arrivals != 2 || s.SuccessSlots != 2 || s.Utilization != 1 {
		t.Errorf("snapshot wrong: %+v", s)
	}
	if s.WaitCount != 2 || s.WaitMean != 3.5 {
		t.Errorf("snapshot wait stats wrong: count %d mean %v", s.WaitCount, s.WaitMean)
	}

	// The expvar rendering must be valid JSON with the snapshot fields.
	var decoded Snapshot
	if err := json.Unmarshal([]byte(m.Var().String()), &decoded); err != nil {
		t.Fatalf("Var() is not JSON: %v", err)
	}
	if decoded != s {
		t.Errorf("Var() decoded to %+v, want %+v", decoded, s)
	}
}

func TestFormat(t *testing.T) {
	m := NewSlotMetrics(1, 10)
	m.RecordArrivals(1)
	m.RecordSlots(SlotSuccess, 1, 25)
	m.RecordTransmission(2, true)
	out := m.Format()
	for _, want := range []string{"slots", "channel time", "utilization", "messages", "loss", "accepted wait"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
	// Without accepted transmissions the wait line is omitted.
	if out := new(SlotMetrics).Format(); strings.Contains(out, "accepted wait") {
		t.Errorf("empty collector should omit the wait line:\n%s", out)
	}
}

func TestFaultKindString(t *testing.T) {
	cases := map[FaultKind]string{
		FaultErasure:         "erasure",
		FaultFalseCollision:  "false-collision",
		FaultMissedCollision: "missed-collision",
		FaultKind(9):         "FaultKind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("FaultKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestFaultCounters(t *testing.T) {
	m := &SlotMetrics{}
	m.RecordFault(FaultErasure)
	m.RecordFault(FaultErasure)
	m.RecordFault(FaultFalseCollision)
	m.RecordFault(FaultMissedCollision)
	m.RecordRecovery()
	m.RecordDesync()
	if m.Erasures != 2 || m.FalseCollisions != 1 || m.MissedCollisions != 1 {
		t.Fatalf("fault counters %d/%d/%d", m.Erasures, m.FalseCollisions, m.MissedCollisions)
	}
	if m.Faults() != 4 || m.Recoveries != 1 || m.Desyncs != 1 {
		t.Fatalf("totals faults=%d recoveries=%d desyncs=%d", m.Faults(), m.Recoveries, m.Desyncs)
	}

	other := &SlotMetrics{}
	other.RecordFault(FaultErasure)
	other.RecordRecovery()
	m.Merge(other)
	if m.Erasures != 3 || m.Recoveries != 2 {
		t.Fatalf("merge lost fault counters: erasures=%d recoveries=%d", m.Erasures, m.Recoveries)
	}

	s := m.Snapshot()
	if s.Erasures != 3 || s.FalseCollisions != 1 || s.MissedCollisions != 1 || s.Recoveries != 2 || s.Desyncs != 1 {
		t.Fatalf("snapshot fault fields %+v", s)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("unknown fault kind accepted")
		}
	}()
	m.RecordFault(FaultKind(42))
}

// TestFormatFaultLineGated pins the output contract: fault-free runs must
// render byte-identically to a build without the fault layer (no fault
// line), while any fault, recovery or desync brings the line in.
func TestFormatFaultLineGated(t *testing.T) {
	m := &SlotMetrics{}
	m.RecordArrivals(1)
	if out := m.Format(); strings.Contains(out, "faults") {
		t.Errorf("fault-free Format() mentions faults:\n%s", out)
	}
	m.RecordFault(FaultMissedCollision)
	out := m.Format()
	for _, want := range []string{"faults", "erasures=0", "missed-collisions=1", "recoveries=0", "desyncs=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("faulty Format() missing %q:\n%s", want, out)
		}
	}
}

// faultBlindCollector implements only the base Collector interface —
// deliberately not by embedding Nop, which would bring the FaultObserver
// methods along and defeat the fallback this test exercises.
type faultBlindCollector struct{}

func (faultBlindCollector) RecordArrivals(int64)                    {}
func (faultBlindCollector) RecordSlots(SlotOutcome, int64, float64) {}
func (faultBlindCollector) RecordSplit()                            {}
func (faultBlindCollector) RecordDiscards(int64)                    {}
func (faultBlindCollector) RecordTransmission(float64, bool)        {}
func (faultBlindCollector) RecordEndPending(int64, int64)           {}

func TestFaultObserverOrNop(t *testing.T) {
	sm := &SlotMetrics{}
	if FaultObserverOrNop(sm) != FaultObserver(sm) {
		t.Fatal("SlotMetrics not recognized as a FaultObserver")
	}
	// A collector without the extension gets the no-op observer, and nil
	// stays safe.
	FaultObserverOrNop(faultBlindCollector{}).RecordFault(FaultErasure)
	FaultObserverOrNop(nil).RecordRecovery()
}
